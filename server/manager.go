package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dispersion"
	"dispersion/agg"
	"dispersion/sink"
)

// JobRequest is a job submission: the JSON body of POST /v1/jobs. It is
// the serializable mirror of dispersion.Job plus the engine coordinates
// (seed, experiment) that pin the job's randomness.
type JobRequest struct {
	// Process is the registry name of the process to run, e.g. "parallel"
	// (see GET /v1/processes for the full list).
	Process string `json:"process"`
	// Spec is the textual graph-family spec, e.g. "torus:32x32".
	Spec string `json:"spec"`
	// Origin is the common start vertex (ignored under random origins).
	Origin int `json:"origin"`
	// Trials is the number of independent realizations to run.
	Trials int `json:"trials"`
	// FirstTrial offsets the job's trial range to
	// [FirstTrial, FirstTrial+Trials); trial i still draws the split
	// stream (Seed, Experiment, i), so an offset job is a shard: its
	// results are bit-identical to the corresponding slice of one
	// contiguous run with the same coordinates. The results stream
	// addresses lines by position within the job — line p of a shard is
	// trial FirstTrial+p.
	FirstTrial int `json:"first_trial,omitempty"`
	// Seed roots all randomness of the job, including random graph
	// families built from Spec. Equal requests reproduce results exactly.
	Seed uint64 `json:"seed"`
	// Experiment namespaces the trial streams (dispersion.Engine.Experiment).
	Experiment uint64 `json:"experiment"`
	// SummaryOnly skips result buffering (and archiving) entirely: the
	// job folds every trial into its agg.Summary and keeps nothing else,
	// so resident memory is O(sketch) no matter how many trials run. The
	// results endpoint answers 410 Gone; read the summary endpoint
	// instead. The engine recycles Result memory between trials
	// (dispersion.Engine.ReuseResults), making the per-trial hot path
	// allocation-free.
	SummaryOnly bool `json:"summary_only,omitempty"`
	// Priority orders the job within its tenant's queue: higher runs
	// first, ties dispatch in submission order. Priorities never cross
	// tenants — fair share between tenants is the scheduler's weight
	// mechanism, priority is a tenant ordering its own backlog. 0 is the
	// default priority.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds how long the job may wait in the queue, in
	// milliseconds from submission: a job that has not started by its
	// deadline fails without ever running, freeing its slot for live
	// work. 0 means no deadline. The deadline does not bound the
	// running job — use Options.MaxSteps for that.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Options configure every trial identically.
	Options Options `json:"options"`
}

// Options is the JSON form of the dispersion functional options a job may
// set. The zero value configures nothing.
type Options struct {
	// Lazy makes every particle move as a lazy random walk (WithLazy).
	Lazy bool `json:"lazy,omitempty"`
	// Record keeps full trajectories in every Result (WithRecord). The
	// results stream then carries them; expect large lines.
	Record bool `json:"record,omitempty"`
	// Particles disperses k particles instead of one per vertex
	// (WithParticles); 0 leaves the default.
	Particles int `json:"particles,omitempty"`
	// RandomOrigins samples each particle's start vertex uniformly
	// (WithRandomOrigins).
	RandomOrigins bool `json:"random_origins,omitempty"`
	// MaxSteps truncates runs whose total step count exceeds it
	// (WithMaxSteps); 0 means unbounded.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// RandomPriority resolves Parallel-process settlement conflicts by a
	// random priority permutation (WithRandomPriority).
	RandomPriority bool `json:"random_priority,omitempty"`
	// SettleParam parameterizes the settle-rule processes
	// (WithSettleParam): the per-visit settle probability of
	// "sequential-geom", the minimum step count of
	// "sequential-threshold". 0 leaves the process default.
	SettleParam float64 `json:"settle_param,omitempty"`
	// Capacity sets the per-vertex capacity of the capacity processes
	// (WithCapacity); 0 leaves the default capacity 2.
	Capacity int `json:"capacity,omitempty"`
	// Capacities gives every vertex its own capacity (WithCapacities);
	// empty leaves the scalar Capacity in charge.
	Capacities []int `json:"capacities,omitempty"`
	// Batch routes the run through the batched lane scheduler with the
	// given lane width (WithBatch); 0 keeps the scalar path.
	Batch int `json:"batch,omitempty"`
}

// Build renders the JSON options as the equivalent dispersion functional
// options. It is the one JSON-to-options mapping in the repository:
// besides the server's own job submissions, the benchmark lab's suites
// files (internal/benchsuite, cmd/benchlab) reuse it so a configuration
// means exactly the same thing submitted over HTTP or benchmarked
// locally.
func (o Options) Build() []dispersion.Option {
	var opts []dispersion.Option
	if o.Lazy {
		opts = append(opts, dispersion.WithLazy())
	}
	if o.Record {
		opts = append(opts, dispersion.WithRecord())
	}
	if o.Particles > 0 {
		opts = append(opts, dispersion.WithParticles(o.Particles))
	}
	if o.RandomOrigins {
		opts = append(opts, dispersion.WithRandomOrigins())
	}
	if o.MaxSteps > 0 {
		opts = append(opts, dispersion.WithMaxSteps(o.MaxSteps))
	}
	if o.RandomPriority {
		opts = append(opts, dispersion.WithRandomPriority())
	}
	if o.SettleParam != 0 {
		opts = append(opts, dispersion.WithSettleParam(o.SettleParam))
	}
	if o.Capacity != 0 {
		opts = append(opts, dispersion.WithCapacity(o.Capacity))
	}
	if len(o.Capacities) > 0 {
		opts = append(opts, dispersion.WithCapacities(o.Capacities))
	}
	if o.Batch != 0 {
		opts = append(opts, dispersion.WithBatch(o.Batch))
	}
	return opts
}

// job renders the request as the engine's job description.
func (r JobRequest) job() dispersion.Job {
	return dispersion.Job{
		Process:    r.Process,
		Spec:       r.Spec,
		Origin:     r.Origin,
		Trials:     r.Trials,
		FirstTrial: r.FirstTrial,
		Options:    r.Options.Build(),
	}
}

// State is a job's position in its lifecycle.
type State string

// The job lifecycle: Queued -> Running -> one of the three terminal
// states Done, Failed, or Cancelled. A queued job may move straight to
// Cancelled (by Cancel or shutdown) or Failed (by its deadline).
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final, i.e. the job will produce
// no further results.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is a point-in-time snapshot of one job: the body of
// GET /v1/jobs/{id} and the elements of GET /v1/jobs.
type Status struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is the lifecycle state at snapshot time.
	State State `json:"state"`
	// Tenant is the tenant the job is accounted to: the submission's
	// X-API-Key, or "anonymous".
	Tenant string `json:"tenant,omitempty"`
	// Request echoes the accepted submission.
	Request JobRequest `json:"request"`
	// Completed is the number of trials finished so far; results with
	// index < Completed are available from the results endpoint (unless
	// the buffer has been evicted, see Evicted).
	Completed int `json:"completed"`
	// Resident is the number of results currently buffered in memory. It
	// equals Completed until the buffer is evicted, after which it is 0.
	Resident int `json:"resident"`
	// ResidentBytes estimates the heap footprint of the buffered
	// results; it is the quantity the resident-byte admission budgets
	// (ManagerOptions.MaxResidentBytes, TenantQuota.MaxResidentBytes)
	// account against, and drops to 0 on eviction.
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
	// Evicted reports that the in-memory result buffer was released after
	// the job reached a terminal state and its stream was fully consumed
	// (ManagerOptions.EvictConsumed). Further result reads below
	// Completed answer 410 Gone; a configured ResultsDir archive still
	// holds every trial — and the job's summary survives eviction, so
	// aggregate statistics stay readable (see SummaryAvailable).
	Evicted bool `json:"evicted,omitempty"`
	// SummaryAvailable reports that the job's streaming aggregate can be
	// read from the summary endpoint. Every job aggregates as results
	// arrive, so this is true from the first completed trial on — and it
	// stays true after Evicted drops the result buffer: eviction frees
	// O(trials) result memory but never the O(sketch) summary.
	SummaryAvailable bool `json:"summary_available,omitempty"`
	// Error is the failure message for StateFailed jobs.
	Error string `json:"error,omitempty"`
	// SubmittedAt, StartedAt and FinishedAt track the lifecycle; the
	// latter two are zero until the transition happens.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Job is one managed submission. All methods are safe for concurrent use;
// reads take point-in-time snapshots.
type Job struct {
	id          string
	req         JobRequest
	m           *Manager
	tenant      *tenant
	cancel      context.CancelFunc
	runCtx      context.Context
	evict       bool // ManagerOptions.EvictConsumed, frozen at submit
	summaryOnly bool // JobRequest.SummaryOnly, frozen at submit
	priority    int
	deadline    time.Time // zero = no queue deadline

	// queued and deadlineTimer belong to the scheduler and are guarded
	// by Manager.mu, never j.mu.
	queued        bool
	deadlineTimer *time.Timer

	mu        sync.Mutex
	notify    chan struct{} // closed and replaced on every append / state change
	results   []*dispersion.Result
	summary   *agg.Summary // fold-as-you-go aggregate, survives eviction
	count     int          // trials completed, surviving buffer eviction
	bytes     int64        // estimated resident bytes of results
	consumed  int          // high-water mark of results delivered via Next
	retained  int          // active results consumers (Retain/Release)
	evicted   bool
	state     State
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// ID returns the server-assigned job identifier.
func (j *Job) ID() string { return j.id }

// submittedAt returns the submission time. It is written once before the
// job is published, so it needs no lock.
func (j *Job) submittedAt() time.Time { return j.submitted }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked builds a status snapshot. Callers must hold j.mu.
func (j *Job) statusLocked() Status {
	return Status{
		ID:               j.id,
		State:            j.state,
		Tenant:           j.tenant.name,
		Request:          j.req,
		Completed:        j.count,
		Resident:         len(j.results),
		ResidentBytes:    j.bytes,
		Evicted:          j.evicted,
		SummaryAvailable: j.count > 0,
		Error:            j.errMsg,
		SubmittedAt:      j.submitted,
		StartedAt:        j.started,
		FinishedAt:       j.finished,
	}
}

// Cancel asks the job to stop. A queued job is removed from its tenant's
// queue and transitions to cancelled immediately; a running job's
// context is cancelled and the worker records the terminal state. It is
// idempotent; cancelling a terminal job has no effect.
func (j *Job) Cancel() {
	if j.m != nil && j.m.cancelQueued(j) {
		j.cancel()
		return
	}
	j.cancel()
}

// broadcast wakes every waiter. Callers must hold j.mu.
func (j *Job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// append records one completed trial, in order: the result is folded
// into the job's summary and, unless the job is summary-only, buffered
// for the results stream (charging its estimated bytes to the job's
// tenant and the manager's global resident budget). Summary-only jobs
// run under Engine.ReuseResults, so res must not be retained for them.
func (j *Job) append(res *dispersion.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.summary.Add(res)
	if !j.summaryOnly {
		j.results = append(j.results, res)
		sz := resultBytes(res)
		j.bytes += sz
		j.tenant.resident.Add(sz)
		j.m.resident.Add(sz)
	}
	j.tenant.trials.Add(1)
	j.count++
	j.broadcast()
}

// SummaryJSON marshals the job's streaming aggregate atomically with a
// status snapshot, so the returned completed-trials count is exactly
// the number of results folded into the returned bytes.
func (j *Job) SummaryJSON() ([]byte, Status, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, err := json.Marshal(j.summary)
	return b, j.statusLocked(), err
}

// Retain registers an active results consumer (a streaming request).
// While any consumer is retained the buffer is never evicted, so a stream
// that began before the job finished can always run to its end. Pair
// every Retain with exactly one Release.
func (j *Job) Retain() {
	j.mu.Lock()
	j.retained++
	j.mu.Unlock()
}

// Release ends a Retain registration and applies the eviction policy: on
// a manager with EvictConsumed set, once the job is terminal, its stream
// has been consumed through the final result (see MarkConsumed), and no
// consumer remains registered, the in-memory buffer is dropped.
func (j *Job) Release() {
	j.mu.Lock()
	j.retained--
	j.maybeEvictLocked()
	j.mu.Unlock()
}

// MarkConsumed records that a consumer successfully delivered every
// result line in [from, to) to its client. Consumption is tracked as a
// contiguous prefix: a range starting at or below the current mark
// extends it, while a range that would leave an undelivered gap below is
// ignored — so a reader that only ever streamed ?from=5 never lets
// results 0..4 be evicted. Callers must mark only lines whose writes
// completed; fetching a result with Next does not count as consumption.
func (j *Job) MarkConsumed(from, to int) {
	j.mu.Lock()
	if from <= j.consumed && to > j.consumed {
		j.consumed = to
	}
	j.maybeEvictLocked()
	j.mu.Unlock()
}

// maybeEvictLocked drops the result buffer when the eviction conditions
// hold, refunding its bytes to the tenant and global resident budgets.
// Callers must hold j.mu.
func (j *Job) maybeEvictLocked() {
	if j.evict && !j.evicted && j.retained == 0 && j.state.Terminal() && j.consumed == j.count {
		j.results = nil
		j.evicted = true
		if j.bytes > 0 {
			j.tenant.resident.Add(-j.bytes)
			j.m.resident.Add(-j.bytes)
			j.bytes = 0
		}
		j.tenant.evictions.Add(1)
	}
}

// setState moves the job to a new lifecycle state, stamping the
// transition time. Terminal states never change again.
func (j *Job) setState(s State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.errMsg = errMsg
	switch {
	case s == StateRunning:
		j.started = time.Now()
	case s.Terminal():
		j.finished = time.Now()
		// A consumer may already have drained every result while the job
		// was still running; the terminal transition is then the moment
		// the buffer becomes evictable.
		j.maybeEvictLocked()
	}
	j.broadcast()
}

// Next blocks until trial i's result is available and returns it, or
// returns false once the job is terminal with fewer than i+1 results (or
// ctx is done, or the buffer was evicted). Results arrive in index order,
// so callers stream by calling Next with i = from, from+1, from+2, ...
// Fetching a result does not mark it consumed for the EvictConsumed
// policy — a streaming frontend reports successful deliveries with
// MarkConsumed, so a write that fails mid-line never counts.
func (j *Job) Next(ctx context.Context, i int) (*dispersion.Result, bool) {
	for {
		j.mu.Lock()
		if i < len(j.results) {
			res := j.results[i]
			j.mu.Unlock()
			return res, true
		}
		terminal := j.state.Terminal() || j.evicted
		wait := j.notify
		j.mu.Unlock()
		if terminal {
			return nil, false
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// Wait blocks until the job reaches a terminal state (or ctx is done)
// and returns the latest status snapshot.
func (j *Job) Wait(ctx context.Context) Status {
	for {
		j.mu.Lock()
		terminal := j.state.Terminal()
		wait := j.notify
		j.mu.Unlock()
		if terminal {
			return j.Status()
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return j.Status()
		}
	}
}

// ManagerOptions configure a Manager.
type ManagerOptions struct {
	// MaxConcurrent caps how many jobs run simultaneously; further
	// submissions queue. 0 means 2.
	MaxConcurrent int
	// EngineWorkers is passed to dispersion.Engine.Workers for every job:
	// the per-job degree of parallelism. 0 means one worker per core.
	// The setting affects scheduling only, never results.
	EngineWorkers int
	// ResultsDir, when non-empty, makes the manager persist every job's
	// trials to <ResultsDir>/<job id>.jsonl through a dispersion/sink
	// JSONL writer as they complete. NewManager probes the directory for
	// writability so a misconfigured path fails at construction, not at
	// the first job's expense.
	ResultsDir string
	// EvictConsumed bounds the memory of long-lived servers: once a job
	// is terminal, its results stream has been consumed through the final
	// trial, and no stream is still attached, the job's in-memory result
	// buffer is dropped. Status metadata (including Completed) survives;
	// re-reading an evicted range answers 410 Gone, and a ResultsDir
	// archive, if configured, still holds every trial. Off by default:
	// the historical contract keeps results for the job's lifetime so
	// completed streams can be re-read at will.
	EvictConsumed bool
	// MaxQueued caps the total number of queued jobs across all tenants;
	// submissions beyond it are rejected with a QuotaError (HTTP 429).
	// 0 means DefaultMaxQueued.
	MaxQueued int
	// MaxResidentBytes caps the estimated bytes of completed results
	// buffered in memory across all tenants; once at or above it,
	// submissions are rejected with a QuotaError until streams are
	// consumed (and, with EvictConsumed, evicted). 0 means no global
	// byte budget.
	MaxResidentBytes int64
	// DefaultQuota applies to every tenant without an entry in
	// TenantQuotas. The zero value means weight 1 and no per-tenant
	// caps.
	DefaultQuota TenantQuota
	// TenantQuotas assigns specific tenants (API keys) their own quotas
	// and fair-share weights.
	TenantQuotas map[string]TenantQuota
	// RetryAfter is the backoff hint attached to admission rejections
	// (the HTTP Retry-After header). 0 means DefaultRetryAfter.
	RetryAfter time.Duration
	// Logf, when set, receives structured (key=value) scheduler and
	// lifecycle logs: admissions, rejections, dispatches, deadline
	// expiries, and terminal transitions. log.Printf is a suitable
	// value.
	Logf func(format string, args ...any)
}

// ErrClosed is returned by Submit once Close has begun; the HTTP layer
// maps it to 503.
var ErrClosed = errors.New("server: manager is shutting down")

// Manager owns the job table and the scheduler. Create one with
// NewManager and shut it down with Close.
//
// Scheduling model: every job belongs to a tenant (its API key, or the
// shared "anonymous" tenant) and waits in that tenant's queue — ordered
// by priority, then submission — until the stride scheduler dispatches
// it. Tenants with queued work are served in proportion to their
// TenantQuota.Weight; admission control rejects submissions that would
// exceed queue or resident-byte budgets with a typed QuotaError instead
// of queuing without bound. Queued jobs consume no goroutines: workers
// are started at dispatch, so a submission flood costs O(1) goroutines
// regardless of backlog depth.
type Manager struct {
	opts     ManagerOptions
	runID    string
	baseCtx  context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup
	resident atomic.Int64 // estimated resident result bytes, all tenants

	mu          sync.Mutex
	closed      bool
	nextID      int
	jobs        map[string]*Job
	order       []string
	tenants     map[string]*tenant
	tenantOrder []string
	queued      int    // jobs waiting across all tenant queues
	running     int    // jobs currently executing
	vtime       uint64 // scheduler virtual time: pass of the last dispatch
}

// NewManager returns a running manager with the given options. When
// ResultsDir is set, the directory is probed for writability so a
// misconfigured archive path fails fast here instead of failing every
// job at run time.
func NewManager(opts ManagerOptions) (*Manager, error) {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
	}
	if opts.ResultsDir != "" {
		f, err := os.CreateTemp(opts.ResultsDir, ".probe-*")
		if err != nil {
			return nil, fmt.Errorf("server: results dir %q not writable: %w", opts.ResultsDir, err)
		}
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	// Job IDs embed a per-manager random run component so a restarted
	// server never reuses an ID — and never truncates a previous run's
	// JSONL archive in the same ResultsDir.
	var buf [3]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("server: no entropy for run id: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		opts:    opts,
		runID:   hex.EncodeToString(buf[:]),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    map[string]*Job{},
		tenants: map[string]*tenant{},
	}, nil
}

// Submit queues a request for the shared anonymous tenant. It is
// SubmitAs with an empty API key — see SubmitAs for the admission and
// scheduling contract.
func (m *Manager) Submit(req JobRequest) (*Job, error) {
	return m.SubmitAs("", req)
}

// SubmitAs validates the request and, if it is well-formed and within
// the tenant's and the server's admission budgets, queues it for
// fair-share dispatch, returning the new job. The tenant is the
// submission's API key; an empty key is accounted to the shared
// AnonymousTenant. Validation failures are reported synchronously and
// leave no job behind; budget exhaustion returns a *QuotaError (mapped
// to 429 + Retry-After by the HTTP layer); after Close has begun it
// reports ErrClosed.
func (m *Manager) SubmitAs(tenantName string, req JobRequest) (*Job, error) {
	if err := req.job().Validate(); err != nil {
		return nil, err
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("server: deadline_ms must be non-negative, got %d", req.DeadlineMS)
	}
	name := normalizeTenant(tenantName)
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		req:         req,
		m:           m,
		cancel:      cancel,
		runCtx:      ctx,
		evict:       m.opts.EvictConsumed,
		summaryOnly: req.SummaryOnly,
		priority:    req.Priority,
		notify:      make(chan struct{}),
		summary:     agg.NewSummary(),
		state:       StateQueued,
		submitted:   time.Now(),
	}
	if req.DeadlineMS > 0 {
		j.deadline = j.submitted.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		cancel()
		return nil, ErrClosed
	}
	t := m.tenantLocked(name)
	if err := m.admitLocked(t); err != nil {
		cancel()
		return nil, err
	}
	m.nextID++
	j.id = fmt.Sprintf("j%s-%06d", m.runID, m.nextID)
	j.tenant = t
	t.submitted++
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.enqueueLocked(j)
	if !j.deadline.IsZero() {
		j.deadlineTimer = time.AfterFunc(time.Until(j.deadline), func() { m.expireJob(j) })
	}
	m.logf("evt=admit tenant=%s job=%s priority=%d deadline_ms=%d queued=%d",
		t.name, j.id, j.priority, req.DeadlineMS, m.queued)
	m.dispatchLocked()
	return j, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Close rejects further submissions, cancels every queued and running
// job, and waits for all workers to exit (so configured JSONL archives
// are complete when it returns).
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	// Queued jobs have no goroutine to observe the context: cancel them
	// here, under the same lock that fences dispatch.
	for _, t := range m.tenants {
		for _, j := range t.queue {
			j.queued = false
			if j.deadlineTimer != nil {
				j.deadlineTimer.Stop()
			}
			t.cancelled++
			j.setState(StateCancelled, "")
			j.cancel()
		}
		t.queue = nil
	}
	m.queued = 0
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
}

// run executes one dispatched job: stream trials into the job buffer
// (and the JSONL archive, if configured), record the terminal state, and
// hand the freed slot back to the scheduler.
func (m *Manager) run(ctx context.Context, j *Job) {
	defer m.wg.Done()
	defer j.cancel()
	defer m.finishJob(j)
	if ctx.Err() != nil {
		j.setState(StateCancelled, "")
		return
	}
	j.setState(StateRunning, "")

	each := j.appendEach()
	var archive *os.File
	if m.opts.ResultsDir != "" && !j.summaryOnly {
		f, err := os.Create(filepath.Join(m.opts.ResultsDir, j.id+".jsonl"))
		if err != nil {
			j.setState(StateFailed, err.Error())
			return
		}
		archive = f
		each = sink.Tee(sinkFunc(each), sink.NewJSONL(f))
	}

	eng := dispersion.Engine{
		Seed:       j.req.Seed,
		Experiment: j.req.Experiment,
		Workers:    m.opts.EngineWorkers,
		// A summary-only job retains nothing per trial — the fold reads
		// scalars only — so the engine can recycle Result memory.
		ReuseResults: j.summaryOnly,
	}
	err := eng.Run(ctx, j.req.job(), each)
	// Close the archive before the terminal-state transition: a close
	// error means the archive may have lost its final buffered bytes, and
	// a job must not report done over a truncated archive.
	if archive != nil {
		if cerr := archive.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("results archive: %w", cerr)
		}
	}
	switch {
	case err == nil:
		j.setState(StateDone, "")
	case errors.Is(err, context.Canceled):
		j.setState(StateCancelled, "")
	default:
		j.setState(StateFailed, err.Error())
	}
}

// appendEach returns the Engine.Run callback that feeds the job buffer.
func (j *Job) appendEach() func(dispersion.Trial) error {
	return func(t dispersion.Trial) error {
		j.append(t.Result)
		return nil
	}
}

// sinkFunc adapts a plain callback to the sink.Writer interface so it can
// be teed with real sinks.
type sinkFunc func(dispersion.Trial) error

// Write invokes the wrapped callback.
func (f sinkFunc) Write(t dispersion.Trial) error { return f(t) }
