package server_test

// controlplane_test.go covers the scheduler and control plane: FIFO
// dispatch, bounded goroutines under submission floods, weighted fair
// share, admission control (429 + Retry-After, tenant isolation,
// resident-byte budgets), priority and deadline ordering, the /metrics
// endpoint, the bounded ?wait=1 long-poll, the ResultsDir probe, and a
// churn storm for the race detector.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dispersion/server"
)

// plugRequest is a job that occupies a run slot for a long, comfortable
// window (one engine worker, many trials on a sizeable graph) so tests
// can fill queues deterministically behind it, then Cancel it to open
// the floodgates.
func plugRequest() server.JobRequest {
	return server.JobRequest{Process: "parallel", Spec: "complete:256", Trials: 1 << 30, Seed: 1}
}

// quickRequest is a job that finishes in microseconds once dispatched.
func quickRequest(trials int) server.JobRequest {
	return server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: trials, Seed: 1}
}

// waitState polls until the job reaches want or the deadline expires.
func waitState(t *testing.T, j *server.Job, want server.State) server.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := j.Status()
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %q, want %q", st.ID, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// newManager builds a manager torn down with the test.
func newManager(t *testing.T, opts server.ManagerOptions) *server.Manager {
	t.Helper()
	m, err := server.NewManager(opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

// Equal-weight submissions under MaxConcurrent=1 must dispatch in
// submission order — the documented FIFO contract the old
// goroutine-parked-on-channel dispatch only delivered by accident of
// runtime wakeup order.
func TestFIFODispatchOrderSingleTenant(t *testing.T) {
	m := newManager(t, server.ManagerOptions{MaxConcurrent: 1, EngineWorkers: 1})
	plug, err := m.Submit(plugRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plug, server.StateRunning)

	const n = 8
	jobs := make([]*server.Job, n)
	for i := range jobs {
		j, err := m.Submit(quickRequest(1))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	plug.Cancel()
	for i, j := range jobs {
		if st := j.Wait(t.Context()); st.State != server.StateDone {
			t.Fatalf("job %d: state %q (%s), want done", i, st.State, st.Error)
		}
	}
	for i := 1; i < n; i++ {
		prev, cur := jobs[i-1].Status(), jobs[i].Status()
		if !prev.StartedAt.Before(cur.StartedAt) {
			t.Errorf("dispatch out of submission order: job %d started %v, job %d started %v",
				i-1, prev.StartedAt, i, cur.StartedAt)
		}
	}
}

// A submission flood must not grow goroutines with queue depth: queued
// jobs hold no goroutine, workers start only at dispatch.
func TestSubmissionFloodBoundedGoroutines(t *testing.T) {
	m := newManager(t, server.ManagerOptions{MaxConcurrent: 1, EngineWorkers: 1})
	plug, err := m.Submit(plugRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plug, server.StateRunning)
	base := runtime.NumGoroutine()

	const flood = 300
	jobs := make([]*server.Job, flood)
	for i := range jobs {
		j, err := m.Submit(quickRequest(1))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	if got := runtime.NumGoroutine(); got > base+50 {
		t.Fatalf("goroutines grew from %d to %d across a %d-job flood; queued jobs must not hold goroutines", base, got, flood)
	}
	plug.Cancel()
	for i, j := range jobs {
		if st := j.Wait(t.Context()); st.State != server.StateDone {
			t.Fatalf("job %d: state %q (%s), want done", i, st.State, st.Error)
		}
	}
}

// Under saturation, two tenants' dispatch (and with equal job sizes,
// completed-trial) shares must track their configured 3:1 weights within
// 10%.
func TestFairShareWeightedDispatch(t *testing.T) {
	const perTenant = 40
	m := newManager(t, server.ManagerOptions{
		MaxConcurrent: 1,
		EngineWorkers: 1,
		TenantQuotas: map[string]server.TenantQuota{
			"a": {Weight: 3},
			"b": {Weight: 1},
		},
	})
	plug, err := m.SubmitAs("plug", plugRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plug, server.StateRunning)

	var jobs []*server.Job
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"a", "b"} {
			j, err := m.SubmitAs(tenant, quickRequest(3))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	plug.Cancel()
	stats := make([]server.Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.Wait(t.Context())
		if st.State != server.StateDone {
			t.Fatalf("job %s: state %q (%s), want done", st.ID, st.State, st.Error)
		}
		stats = append(stats, j.Status())
	}
	sort.Slice(stats, func(i, k int) bool { return stats[i].StartedAt.Before(stats[k].StartedAt) })

	// While both queues are non-empty the stride scheduler dispatches
	// a:b = 3:1. Tenant a's queue drains after 40/0.75 ≈ 53 dispatches,
	// so judge the contended prefix only.
	const window = 32
	countA := 0
	for _, st := range stats[:window] {
		if st.Tenant == "a" {
			countA++
		}
	}
	wantA := window * 3 / 4
	if diff := countA - wantA; diff < -3 || diff > 3 {
		t.Errorf("tenant a won %d of the first %d dispatches, want %d ±3 (weight 3 of 4)", countA, window, wantA)
	}
	// Trials follow dispatches: equal job sizes, so the trial share must
	// match the dispatch share.
	trialsA := countA * 3
	total := window * 3
	if share := float64(trialsA) / float64(total); share < 0.75*0.9 || share > 0.75*1.1 {
		t.Errorf("tenant a completed-trial share %.3f in the contended window, want 0.75 ±10%%", share)
	}
}

// submitHTTP posts a request under an API key and returns the response
// status code, Retry-After header, and decoded job status (for 201s).
func submitHTTP(t *testing.T, ts *httptest.Server, apiKey string, req server.JobRequest) (int, string, server.Status) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		hreq.Header.Set(server.APIKeyHeader, apiKey)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), st
}

// Queue exhaustion must shed load with 429 + Retry-After, and one
// tenant's flood must never consume another tenant's admission budget.
func TestAdmissionControlHTTP(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{
		MaxConcurrent: 1,
		EngineWorkers: 1,
		MaxQueued:     64,
		TenantQuotas: map[string]server.TenantQuota{
			"keyA": {MaxQueued: 2},
		},
	})
	code, _, plugSt := submitHTTP(t, ts, "", plugRequest())
	if code != http.StatusCreated {
		t.Fatalf("plug submit: status %d", code)
	}
	plug, _ := m.Get(plugSt.ID)
	waitState(t, plug, server.StateRunning)

	// Tenant keyA may queue 2 jobs; the 3rd is shed with a backoff hint.
	for i := 0; i < 2; i++ {
		if code, _, _ := submitHTTP(t, ts, "keyA", quickRequest(1)); code != http.StatusCreated {
			t.Fatalf("keyA submit %d: status %d, want 201", i, code)
		}
	}
	code, retryAfter, _ := submitHTTP(t, ts, "keyA", quickRequest(1))
	if code != http.StatusTooManyRequests {
		t.Fatalf("keyA over-quota submit: status %d, want 429", code)
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", retryAfter)
	}
	// keyA's exhausted quota must not affect keyB.
	if code, _, _ := submitHTTP(t, ts, "keyB", quickRequest(1)); code != http.StatusCreated {
		t.Fatalf("keyB submit during keyA flood: status %d, want 201", code)
	}
	plug.Cancel()
}

// The global queue bound sheds anonymous submissions too.
func TestGlobalQueueBound(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{
		MaxConcurrent: 1,
		EngineWorkers: 1,
		MaxQueued:     3,
	})
	code, _, plugSt := submitHTTP(t, ts, "", plugRequest())
	if code != http.StatusCreated {
		t.Fatalf("plug submit: status %d", code)
	}
	plug, _ := m.Get(plugSt.ID)
	waitState(t, plug, server.StateRunning)
	for i := 0; i < 3; i++ {
		if code, _, _ := submitHTTP(t, ts, "", quickRequest(1)); code != http.StatusCreated {
			t.Fatalf("submit %d: status %d, want 201", i, code)
		}
	}
	code, retryAfter, _ := submitHTTP(t, ts, "", quickRequest(1))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: status %d, want 429", code)
	}
	if retryAfter == "" {
		t.Error("429 response missing Retry-After header")
	}
	plug.Cancel()
}

// Within one tenant, higher priority dispatches first; a queued job
// whose deadline passes fails without ever running.
func TestPriorityAndDeadline(t *testing.T) {
	m := newManager(t, server.ManagerOptions{MaxConcurrent: 1, EngineWorkers: 1})
	plug, err := m.Submit(plugRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plug, server.StateRunning)

	lowFirst, err := m.Submit(quickRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	lowSecond, err := m.Submit(quickRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	highReq := quickRequest(1)
	highReq.Priority = 10
	high, err := m.Submit(highReq)
	if err != nil {
		t.Fatal(err)
	}

	doomedReq := quickRequest(1)
	doomedReq.DeadlineMS = 50
	doomed, err := m.Submit(doomedReq)
	if err != nil {
		t.Fatal(err)
	}
	if st := doomed.Wait(t.Context()); st.State != server.StateFailed {
		t.Fatalf("deadlined job: state %q, want failed", st.State)
	} else {
		if !strings.Contains(st.Error, "deadline") {
			t.Errorf("deadlined job error = %q, want a deadline message", st.Error)
		}
		if !st.StartedAt.IsZero() {
			t.Errorf("deadlined job has StartedAt %v, want never started", st.StartedAt)
		}
	}

	plug.Cancel()
	for _, j := range []*server.Job{lowFirst, lowSecond, high} {
		if st := j.Wait(t.Context()); st.State != server.StateDone {
			t.Fatalf("job %s: state %q (%s), want done", st.ID, st.State, st.Error)
		}
	}
	hi, l1, l2 := high.Status(), lowFirst.Status(), lowSecond.Status()
	if !hi.StartedAt.Before(l1.StartedAt) {
		t.Errorf("priority 10 started %v, after priority 0 at %v", hi.StartedAt, l1.StartedAt)
	}
	if !l1.StartedAt.Before(l2.StartedAt) {
		t.Errorf("equal-priority jobs out of FIFO order: %v then %v", l1.StartedAt, l2.StartedAt)
	}
}

// Resident-byte budgets gate admission per tenant and globally, and
// eviction refunds the budget.
func TestResidentBytesBudget(t *testing.T) {
	m := newManager(t, server.ManagerOptions{
		MaxConcurrent: 1,
		EvictConsumed: true,
		TenantQuotas: map[string]server.TenantQuota{
			"a": {MaxResidentBytes: 1},
		},
	})
	j, err := m.SubmitAs("a", quickRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(t.Context()); st.State != server.StateDone {
		t.Fatalf("job: state %q (%s), want done", st.State, st.Error)
	}
	if st := j.Status(); st.ResidentBytes <= 0 {
		t.Fatalf("done job reports ResidentBytes %d, want > 0", st.ResidentBytes)
	}

	var qe *server.QuotaError
	if _, err := m.SubmitAs("a", quickRequest(1)); !errors.As(err, &qe) {
		t.Fatalf("over-byte-budget submit: err %v, want *QuotaError", err)
	} else if qe.Reason != server.ReasonResidentBytes || qe.Scope != "tenant" {
		t.Errorf("QuotaError = %+v, want tenant/resident-bytes", qe)
	}
	if _, err := m.SubmitAs("b", quickRequest(1)); err != nil {
		t.Fatalf("tenant b blocked by tenant a's byte budget: %v", err)
	}

	// Consuming the stream evicts the buffer and refunds the budget.
	j.MarkConsumed(0, 2)
	if st := j.Status(); !st.Evicted || st.ResidentBytes != 0 {
		t.Fatalf("after full consumption: evicted=%t resident_bytes=%d, want evicted with 0 bytes", st.Evicted, st.ResidentBytes)
	}
	if _, err := m.SubmitAs("a", quickRequest(1)); err != nil {
		t.Fatalf("submit after eviction refunded the budget: %v", err)
	}
}

// The global resident-byte budget sheds all tenants once exhausted.
func TestGlobalResidentBytesBudget(t *testing.T) {
	m := newManager(t, server.ManagerOptions{MaxConcurrent: 1, MaxResidentBytes: 1})
	j, err := m.Submit(quickRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(t.Context()); st.State != server.StateDone {
		t.Fatalf("job: state %q, want done", st.State)
	}
	var qe *server.QuotaError
	if _, err := m.SubmitAs("other", quickRequest(1)); !errors.As(err, &qe) {
		t.Fatalf("submit over global byte budget: err %v, want *QuotaError", err)
	} else if qe.Scope != "global" || qe.Reason != server.ReasonResidentBytes {
		t.Errorf("QuotaError = %+v, want global/resident-bytes", qe)
	}
}

// parseMetrics reads Prometheus text format into sample-name -> value.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad metrics value in %q: %v", line, err)
		}
		out[name] = f
	}
	return out
}

// /metrics must report queue depth, per-state job counts, rejections and
// trials consistent with the test's own accounting.
func TestMetricsEndpoint(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{
		MaxConcurrent: 1,
		EngineWorkers: 1,
		TenantQuotas: map[string]server.TenantQuota{
			"keyA": {MaxQueued: 1},
		},
	})
	// Anonymous: 2 jobs done, 3 trials total. keyA: 1 done (1 trial),
	// then 1 queued and 1 rejected behind the plug. The plug runs under
	// its own tenant so its ever-growing trial count stays out of the
	// asserted counters.
	for _, trials := range []int{1, 2} {
		st := submit(t, ts, quickRequest(trials))
		j, _ := m.Get(st.ID)
		if got := j.Wait(t.Context()); got.State != server.StateDone {
			t.Fatalf("job: state %q, want done", got.State)
		}
	}
	code, _, doneSt := submitHTTP(t, ts, "keyA", quickRequest(1))
	if code != http.StatusCreated {
		t.Fatalf("keyA submit: status %d", code)
	}
	if doneJob, ok := m.Get(doneSt.ID); !ok {
		t.Fatalf("submitted job %s not found", doneSt.ID)
	} else if got := doneJob.Wait(t.Context()); got.State != server.StateDone {
		t.Fatalf("keyA job: state %q, want done", got.State)
	}

	plug, err := m.SubmitAs("plugTenant", plugRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plug, server.StateRunning)
	queued, err := m.SubmitAs("keyA", quickRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := submitHTTP(t, ts, "keyA", quickRequest(1)); code != http.StatusTooManyRequests {
		t.Fatalf("keyA over-quota submit: status %d, want 429", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if !strings.Contains(string(body), "# TYPE dispersion_jobs_total counter") {
		t.Error("metrics output missing # TYPE metadata for dispersion_jobs_total")
	}
	got := parseMetrics(t, string(body))
	want := map[string]float64{
		"dispersion_queue_depth":                                                        1,
		"dispersion_jobs_running":                                                       1,
		`dispersion_jobs_total{tenant="anonymous",state="done"}`:                        2,
		`dispersion_jobs_total{tenant="keyA",state="done"}`:                             1,
		`dispersion_trials_completed_total{tenant="anonymous"}`:                         3,
		`dispersion_trials_completed_total{tenant="keyA"}`:                              1,
		`dispersion_jobs_submitted_total{tenant="keyA"}`:                                2,
		`dispersion_tenant_jobs_queued{tenant="keyA"}`:                                  1,
		`dispersion_admission_rejected_total{tenant="keyA",reason="tenant-queue-full"}`: 1,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
	if got["dispersion_resident_bytes_total"] <= 0 {
		t.Errorf("dispersion_resident_bytes_total = %v, want > 0 with buffered results",
			got["dispersion_resident_bytes_total"])
	}
	plug.Cancel()
	queued.Wait(t.Context())
}

// The ?wait=1 summary long-poll must not pin a handler on a
// never-finishing job: at SummaryMaxWait it answers the current
// snapshot with a Retry-After hint.
func TestSummaryWaitBounded(t *testing.T) {
	m := newManager(t, server.ManagerOptions{MaxConcurrent: 1, EngineWorkers: 1})
	srv := server.New(m)
	srv.SummaryMaxWait = 50 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	plug, err := m.Submit(plugRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plug, server.StateRunning)

	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, plug.ID()))
	if err != nil {
		t.Fatal(err)
	}
	waited := time.Since(start)
	var sr server.SummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bounded wait: status %d, want 200", resp.StatusCode)
	}
	if waited > 5*time.Second {
		t.Fatalf("bounded wait blocked %v despite a 50ms SummaryMaxWait", waited)
	}
	if sr.State.Terminal() {
		t.Fatalf("long-poll on a running plug returned terminal state %q", sr.State)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("non-terminal bounded ?wait=1 response missing Retry-After hint")
	}

	// A terminal job's ?wait=1 still answers immediately with no hint.
	plug.Cancel()
	plug.Wait(t.Context())
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, plug.ID()))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	resp.Body.Close()
	if !sr.State.Terminal() {
		t.Errorf("post-cancel ?wait=1 state = %q, want terminal", sr.State)
	}
	if h := resp.Header.Get("Retry-After"); h != "" {
		t.Errorf("terminal ?wait=1 response has Retry-After %q, want none", h)
	}
}

// A misconfigured ResultsDir must fail at construction, not at the first
// job's expense.
func TestResultsDirProbe(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "does", "not", "exist")
	if _, err := server.NewManager(server.ManagerOptions{ResultsDir: bad}); err == nil {
		t.Fatalf("NewManager(ResultsDir=%q) = nil error, want a writability failure", bad)
	}
	m, err := server.NewManager(server.ManagerOptions{ResultsDir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewManager with a writable dir: %v", err)
	}
	m.Close()
}

// A submit/cancel/deadline/evict storm across tenants must leave every
// job terminal and the goroutine count settled. CI runs this under
// -race -count=2.
func TestSchedulerChurnStorm(t *testing.T) {
	m := newManager(t, server.ManagerOptions{
		MaxConcurrent: 4,
		EngineWorkers: 1,
		EvictConsumed: true,
		TenantQuotas: map[string]server.TenantQuota{
			"t0": {Weight: 3},
			"t1": {Weight: 2, MaxRunning: 2},
		},
	})
	base := runtime.NumGoroutine()
	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobs []*server.Job
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := quickRequest(1 + i%3)
				req.Priority = (w + i) % 5
				if i%7 == 3 {
					req.DeadlineMS = 1
				}
				j, err := m.SubmitAs(fmt.Sprintf("t%d", w%3), req)
				if err != nil {
					var qe *server.QuotaError
					if errors.As(err, &qe) {
						continue // shed under load: acceptable
					}
					t.Errorf("worker %d submit %d: %v", w, i, err)
					return
				}
				if i%5 == 2 {
					j.Cancel()
				}
				if i%4 == 1 {
					j.MarkConsumed(0, 1+i%3)
				}
				mu.Lock()
				jobs = append(jobs, j)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, j := range jobs {
		if st := j.Wait(t.Context()); !st.State.Terminal() {
			t.Fatalf("job %s: non-terminal state %q after storm", st.ID, st.State)
		}
	}
	// Workers unwind after their jobs report terminal; give them a
	// moment before judging the goroutine count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines settled at %d, started at %d: storm leaked workers", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
