package server_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"dispersion/agg"
	"dispersion/server"
)

// A million-vertex implicit family runs end to end over HTTP: the spec
// string routes to the implicit torus backend inside the job, summary_only
// keeps resident state at O(sketch), and the summary comes back with the
// full trial mass. This is the serving-layer leg of the O(particles)
// acceptance: the request would be hopeless if the server materialized
// adjacency or dense occupancy per trial.
func TestMillionVertexSummaryOnlyJob(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	req := server.JobRequest{
		Process:     "sequential",
		Spec:        "torus:1024x1024",
		Trials:      2,
		Seed:        4,
		Experiment:  9,
		SummaryOnly: true,
		Options:     server.Options{Particles: 4096},
	}
	st := submit(t, ts, req)
	sr := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, st.ID))
	if sr.State != server.StateDone || sr.Completed != req.Trials {
		t.Fatalf("million-vertex job state/completed = %s/%d", sr.State, sr.Completed)
	}
	var sum agg.Summary
	if err := json.Unmarshal(sr.Summary, &sum); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	if sum.Trials != int64(req.Trials) {
		t.Fatalf("summary folded %d trials, want %d", sum.Trials, req.Trials)
	}
	if sum.Makespan.Moments.Mean() <= 0 {
		t.Fatal("summary carries no makespan mass")
	}
	if final := getStatus(t, ts, st.ID); final.Resident != 0 {
		t.Errorf("summary-only job buffered %d results", final.Resident)
	}
}
