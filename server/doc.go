// Package server turns the deterministic dispersion.Engine into a
// long-running simulation service: clients submit Jobs over HTTP and
// stream per-trial Results back as NDJSON while the job is still running.
//
// The package has two layers:
//
//   - Manager — the transport-independent job manager and scheduler. It
//     validates and admits submissions under per-tenant and global
//     budgets, dispatches queued jobs by weighted fair share, runs each
//     job on its own context under a bounded run-slot pool, buffers
//     results in trial order for resumable streaming, and optionally
//     persists every job's trials as JSONL through dispersion/sink.
//
//   - Server — the HTTP layer (an http.Handler) exposing the v1 API:
//
//     POST   /v1/jobs              submit a job (JSON body), returns its status
//     GET    /v1/jobs              list all job statuses
//     GET    /v1/jobs/{id}         poll one job's status and progress
//     GET    /v1/jobs/{id}/summary streaming aggregate (agg.Summary); ?wait=1 blocks until terminal
//     GET    /v1/jobs/{id}/results stream results as NDJSON; ?from=K resumes at line K
//     DELETE /v1/jobs/{id}         cancel a job
//     GET    /v1/processes         registered processes and graph-spec kinds
//     GET    /metrics              control-plane metrics, Prometheus text format
//     GET    /healthz              liveness probe
//
//     The status and results routes also accept ?view=summary, answering
//     the summary endpoint's body in place of their own.
//
// # Control plane
//
// Submissions are accounted to a tenant: the value of the X-API-Key
// request header (APIKeyHeader), or the shared AnonymousTenant without
// one. Each tenant has a TenantQuota — fair-share weight plus optional
// caps on queued jobs, running jobs, and resident result-buffer bytes —
// from ManagerOptions.TenantQuotas or DefaultQuota. Admission control
// rejects submissions that would exceed a tenant or global budget with a
// typed *QuotaError, which the HTTP layer maps to 429 Too Many Requests
// plus a Retry-After header; nothing queues without bound, and queued
// jobs hold no goroutines (workers start at dispatch). Dispatch is
// stride scheduling over the per-tenant queues: under contention each
// tenant's dispatch share converges to its weight's share of the active
// weights. Within one tenant, jobs run highest priority first
// (JobRequest.Priority), submission order within a priority; a job with
// deadline_ms set fails without ever running if it cannot start in
// time. GET /metrics exposes queue depth, running and resident-byte
// gauges plus per-tenant submission/terminal-state/trial/rejection/
// eviction counters in the Prometheus text format, and the ?wait=1
// summary long-poll is bounded by Server.SummaryMaxWait (non-terminal
// answers carry Retry-After: 1).
//
// Every NDJSON line is a sink.Record: {"trial": i, "result": {...}}.
// Results are bit-for-bit identical to a direct Engine.Run with the same
// (seed, experiment, trials) — the engine derives trial i's randomness
// from the split stream (seed, experiment, i), independent of worker
// counts — so a stream interrupted after k lines and resumed with
// ?from=k continues without gaps, duplicates, or divergence. When the
// stream ends because the job reached a terminal state, that state is
// sent as the X-Job-State HTTP trailer (TrailerJobState), letting
// resuming clients tell a finished job from a cut connection.
//
// A job may be a shard of a larger logical run: first_trial offsets its
// trial range to [first_trial, first_trial+trials) while trial i keeps
// the split stream (seed, experiment, i), so disjoint-range jobs
// composed by dispersion/shard reproduce one contiguous run exactly.
//
// Completed results are kept in memory for the lifetime of the job by
// default (they are what makes ?from= resumption and late consumers
// possible), so a job's memory footprint is proportional to Trials times
// the per-Result size; use the JSONL persistence directory for archival
// beyond that. Long-lived servers can instead bound memory with
// ManagerOptions.EvictConsumed, which drops a job's buffer once it is
// terminal and its stream has been consumed through the final trial —
// re-reads of an evicted range then answer 410 Gone.
//
// # Summaries and eviction
//
// Independently of result buffering, every job folds each completed
// trial into a mergeable agg.Summary (moments, quantile sketch and
// makespan histogram over Makespan and TotalSteps) under the job lock.
// The summary is O(sketch) — kilobytes regardless of Trials — and is
// deliberately NOT dropped by EvictConsumed: after eviction the raw
// trials answer 410 Gone while the summary endpoint keeps serving, and
// Status.SummaryAvailable distinguishes "buffer evicted, aggregate
// still readable" from "nothing left". Jobs submitted with
// summary_only never buffer (or archive) results at all: the engine
// recycles Result memory between trials, the results endpoint answers
// 410 Gone from the start, and resident memory stays O(sketch) for
// arbitrarily large Trials — the mode built for million-trial runs
// that only need E[T], quantiles and the makespan CDF.
package server
