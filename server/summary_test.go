package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"dispersion/agg"
	"dispersion/internal/stats"
	"dispersion/server"
	"dispersion/sink"
)

// getSummary fetches a job's summary, optionally blocking for the
// terminal state, from the given path form ("/summary" or
// "?view=summary" on another route).
func getSummary(t *testing.T, ts *httptest.Server, url string) server.SummaryResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, msg)
	}
	var sr server.SummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode summary response: %v", err)
	}
	return sr
}

// A finished job's summary must agree with an offline statistics pass
// over the very trials the job streamed.
func TestSummaryMatchesOfflineStats(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	req := server.JobRequest{Process: "sequential", Spec: "complete:12", Trials: 120, Seed: 9, Experiment: 2}
	st := submit(t, ts, req)

	sr := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, st.ID))
	if sr.State != server.StateDone || sr.Completed != req.Trials {
		t.Fatalf("summary response state/completed = %s/%d", sr.State, sr.Completed)
	}
	var sum agg.Summary
	if err := json.Unmarshal(sr.Summary, &sum); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	if sum.Trials != int64(req.Trials) || sum.Process != "sequential" {
		t.Fatalf("summary identity %q/%d", sum.Process, sum.Trials)
	}

	// Recompute offline from the results stream the same server serves.
	var makespans []float64
	for _, line := range stream(t, ts, st.ID, 0) {
		var rec sink.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		makespans = append(makespans, rec.Result.Makespan())
	}
	sort.Float64s(makespans)
	off := stats.Summarize(makespans)
	if math.Abs(sum.Makespan.Moments.Mean()-off.Mean) > 1e-9*off.Mean {
		t.Errorf("mean %v, offline %v", sum.Makespan.Moments.Mean(), off.Mean)
	}
	for _, q := range []float64{0.5, 0.99} {
		got := sum.Makespan.Quantiles.Query(q)
		want := stats.Quantile(makespans, q)
		if math.Abs(got-want) > 2*agg.DefaultAlpha*want {
			t.Errorf("q%v = %v, offline %v", q, got, want)
		}
	}
	// CDF exactness at a bucket edge: pick an edge inside the range.
	h := sum.Makespan.Histogram
	edge := 2 * h.Width()
	var below int
	for _, m := range makespans {
		if m < edge {
			below++
		}
	}
	if got, want := h.CDF(edge), float64(below)/float64(len(makespans)); got != want {
		t.Errorf("CDF(%v) = %v, offline %v", edge, got, want)
	}

	// ?view=summary on both the status and results routes answers the
	// same document.
	viaStatus := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s?view=summary", ts.URL, st.ID))
	viaResults := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/results?view=summary", ts.URL, st.ID))
	if !bytes.Equal(viaStatus.Summary, sr.Summary) || !bytes.Equal(viaResults.Summary, sr.Summary) {
		t.Error("?view=summary diverged from the summary endpoint")
	}
}

// Summary-only jobs buffer nothing: Resident stays 0, the results
// endpoint answers 410 pointing at the summary, and the summary itself
// is byte-identical to a buffered run of the same request.
func TestSummaryOnlyJob(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	req := server.JobRequest{Process: "parallel", Spec: "complete:24", Trials: 80, Seed: 4, Experiment: 7}

	buffered := submit(t, ts, req)
	want := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, buffered.ID))

	req.SummaryOnly = true
	st := submit(t, ts, req)
	sr := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, st.ID))
	if sr.State != server.StateDone || sr.Completed != req.Trials {
		t.Fatalf("summary-only job state/completed = %s/%d", sr.State, sr.Completed)
	}
	if !bytes.Equal(sr.Summary, want.Summary) {
		t.Errorf("summary-only summary differs from buffered run:\n%s\n%s", sr.Summary, want.Summary)
	}

	final := getStatus(t, ts, st.ID)
	if final.Resident != 0 {
		t.Errorf("summary-only job buffered %d results", final.Resident)
	}
	if !final.SummaryAvailable {
		t.Error("summary-only job does not report its summary available")
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("results of a summary-only job: status %d, want 410", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(apiErr.Error), []byte("/summary")) {
		t.Errorf("410 body does not point at the summary endpoint: %q", apiErr.Error)
	}
}

// Eviction frees the result buffer but never the summary: after a full
// consume-and-evict cycle the status says so and the summary still
// serves.
func TestSummarySurvivesEviction(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{EvictConsumed: true})
	req := server.JobRequest{Process: "sequential", Spec: "cycle:16", Trials: 30, Seed: 2, Experiment: 3}
	st := submit(t, ts, req)

	before := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary?wait=1", ts.URL, st.ID))
	stream(t, ts, st.ID, 0) // full consumption triggers eviction

	evicted := getStatus(t, ts, st.ID)
	if !evicted.Evicted {
		t.Fatal("job not evicted after full consumption")
	}
	if !evicted.SummaryAvailable {
		t.Error("evicted status does not report the summary available")
	}
	after := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary", ts.URL, st.ID))
	if !bytes.Equal(before.Summary, after.Summary) {
		t.Error("summary changed across eviction")
	}

	// The results buffer itself is gone.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("evicted results: status %d, want 410", resp.StatusCode)
	}
}

// A mid-run summary snapshot is internally consistent: Completed equals
// the trials folded in, even while the job is still appending.
func TestSummaryMidRunConsistency(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	// A slow-ish job: large graph, many trials.
	req := server.JobRequest{Process: "sequential", Spec: "complete:64", Trials: 400, Seed: 5, Experiment: 1}
	st := submit(t, ts, req)
	for {
		sr := getSummary(t, ts, fmt.Sprintf("%s/v1/jobs/%s/summary", ts.URL, st.ID))
		var sum agg.Summary
		if err := json.Unmarshal(sr.Summary, &sum); err != nil {
			t.Fatalf("decode mid-run summary: %v", err)
		}
		if sum.Trials != int64(sr.Completed) {
			t.Fatalf("summary covers %d trials but response says %d completed", sum.Trials, sr.Completed)
		}
		if sr.State == server.StateDone {
			if sr.Completed != req.Trials {
				t.Fatalf("done with %d completed", sr.Completed)
			}
			return
		}
	}
}
