package server

// scheduler.go is the manager's control plane: per-tenant accounting
// keyed by API key, admission control with typed rejections, and
// weighted fair-share (stride) dispatch over per-tenant queues. The
// Manager's job table and lifecycle live in manager.go; everything that
// decides WHO runs WHEN — and who is told to come back later — lives
// here.

import (
	"fmt"
	"sync/atomic"
	"time"

	"dispersion"
)

// AnonymousTenant is the tenant every submission without an API key is
// accounted to. All anonymous clients share its quotas.
const AnonymousTenant = "anonymous"

// DefaultMaxQueued is the global queued-job backlog bound applied when
// ManagerOptions.MaxQueued is zero. A bounded default is deliberate: the
// historical manager queued without limit, so a submission flood grew
// the job table (and one parked goroutine per job) until the process
// died.
const DefaultMaxQueued = 1024

// DefaultRetryAfter is the Retry-After hint attached to admission
// rejections when ManagerOptions.RetryAfter is zero.
const DefaultRetryAfter = time.Second

// strideScale is the stride numerator: a tenant of weight w advances its
// pass by strideScale/w per dispatched job, so relative dispatch rates
// converge to the weight ratios.
const strideScale = 1 << 16

// TenantQuota caps one tenant's footprint on the server and sets its
// fair-share weight. The zero value means: weight 1 and no per-tenant
// caps (the manager's global budgets still apply).
type TenantQuota struct {
	// Weight is the tenant's fair-share weight: under contention a
	// tenant's dispatch (and, with equal job sizes, completed-trial)
	// share converges to Weight over the sum of active tenants' weights.
	// 0 means 1.
	Weight int
	// MaxQueued caps how many of the tenant's jobs may wait in its queue
	// at once; further submissions are rejected with a QuotaError.
	// 0 means no per-tenant cap.
	MaxQueued int
	// MaxRunning caps how many of the tenant's jobs may run
	// simultaneously, regardless of free global slots. 0 means no
	// per-tenant cap (the global MaxConcurrent still applies).
	MaxRunning int
	// MaxResidentBytes caps the estimated bytes of completed results the
	// tenant may keep buffered in memory; once at or above it, further
	// submissions are rejected until streams are consumed (and, with
	// EvictConsumed, evicted). 0 means no per-tenant cap.
	MaxResidentBytes int64
}

// weight returns the effective stride weight.
func (q TenantQuota) weight() uint64 {
	if q.Weight > 0 {
		return uint64(q.Weight)
	}
	return 1
}

// Admission-rejection reasons, as reported by QuotaError.Reason and the
// "reason" label of the dispersion_admission_rejected_total metric
// (prefixed there by the scope, e.g. "tenant-queue-full").
const (
	// ReasonQueueFull reports a queued-job budget (global MaxQueued or
	// TenantQuota.MaxQueued) at capacity.
	ReasonQueueFull = "queue-full"
	// ReasonResidentBytes reports a resident result-buffer byte budget
	// (global MaxResidentBytes or TenantQuota.MaxResidentBytes) at
	// capacity.
	ReasonResidentBytes = "resident-bytes"
)

// QuotaError is the typed admission-control rejection returned by Submit
// and SubmitAs when a global or per-tenant budget is exhausted. The HTTP
// layer maps it to 429 Too Many Requests with a Retry-After header; a
// well-behaved client (dispersion/shard honours this) backs off for
// RetryAfter instead of hammering the server or burning its retry
// budget.
type QuotaError struct {
	// Tenant is the tenant the rejected submission was accounted to.
	Tenant string
	// Scope is "global" for a server-wide budget, "tenant" for one of
	// the tenant's own quotas.
	Scope string
	// Reason is ReasonQueueFull or ReasonResidentBytes.
	Reason string
	// Limit is the budget that was exhausted (jobs or bytes, per
	// Reason).
	Limit int64
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// Error renders the rejection with its scope, limit, and backoff hint.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: %s %s budget exhausted for tenant %q (limit %d): retry after %s",
		e.Scope, e.Reason, e.Tenant, e.Limit, e.RetryAfter)
}

// tenant is the scheduler's per-API-key accounting record. Queue, pass,
// run counts and the plain counters are guarded by Manager.mu; the
// atomics are updated from job callbacks that must not take it.
type tenant struct {
	name    string
	quota   TenantQuota
	pass    uint64 // stride pass: the eligible tenant with the lowest runs next
	queue   []*Job // waiting jobs: priority desc, then submission order
	running int

	resident  atomic.Int64 // estimated buffered result bytes
	trials    atomic.Int64 // completed trials, across all jobs
	evictions atomic.Int64 // result buffers dropped by EvictConsumed

	submitted int64
	done      int64
	failed    int64
	cancelled int64
	expired   int64 // queued jobs failed by their deadline
	rejected  map[string]int64
}

// normalizeTenant maps the empty API key to the shared anonymous tenant.
func normalizeTenant(name string) string {
	if name == "" {
		return AnonymousTenant
	}
	return name
}

// tenantLocked returns the named tenant's record, creating it (with its
// configured or default quota) on first use. Callers hold m.mu.
func (m *Manager) tenantLocked(name string) *tenant {
	if t, ok := m.tenants[name]; ok {
		return t
	}
	q := m.opts.DefaultQuota
	if tq, ok := m.opts.TenantQuotas[name]; ok {
		q = tq
	}
	t := &tenant{name: name, quota: q, rejected: map[string]int64{}}
	m.tenants[name] = t
	m.tenantOrder = append(m.tenantOrder, name)
	return t
}

// retryAfter returns the configured admission backoff hint.
func (m *Manager) retryAfter() time.Duration {
	if m.opts.RetryAfter > 0 {
		return m.opts.RetryAfter
	}
	return DefaultRetryAfter
}

// maxQueued returns the effective global queued-job bound.
func (m *Manager) maxQueued() int {
	if m.opts.MaxQueued > 0 {
		return m.opts.MaxQueued
	}
	return DefaultMaxQueued
}

// admitLocked applies every admission budget to a submission for t and
// returns the QuotaError to reject it with, or nil to admit. Callers
// hold m.mu.
func (m *Manager) admitLocked(t *tenant) error {
	reject := func(scope, reason string, limit int64) error {
		t.rejected[scope+"-"+reason]++
		m.logf("evt=reject tenant=%s scope=%s reason=%s limit=%d", t.name, scope, reason, limit)
		return &QuotaError{
			Tenant: t.name, Scope: scope, Reason: reason,
			Limit: limit, RetryAfter: m.retryAfter(),
		}
	}
	if gq := m.maxQueued(); m.queued >= gq {
		return reject("global", ReasonQueueFull, int64(gq))
	}
	if q := t.quota.MaxQueued; q > 0 && len(t.queue) >= q {
		return reject("tenant", ReasonQueueFull, int64(q))
	}
	if b := m.opts.MaxResidentBytes; b > 0 && m.resident.Load() >= b {
		return reject("global", ReasonResidentBytes, b)
	}
	if b := t.quota.MaxResidentBytes; b > 0 && t.resident.Load() >= b {
		return reject("tenant", ReasonResidentBytes, b)
	}
	return nil
}

// enqueueLocked inserts j into its tenant's queue keeping the dispatch
// order: higher priority first, submission order within a priority. A
// tenant whose queue was empty has its pass floored to the scheduler's
// virtual time, so idle periods never accumulate dispatch credit.
// Callers hold m.mu.
func (m *Manager) enqueueLocked(j *Job) {
	t := j.tenant
	if len(t.queue) == 0 && t.pass < m.vtime {
		t.pass = m.vtime
	}
	i := len(t.queue)
	for i > 0 && t.queue[i-1].priority < j.priority {
		i--
	}
	t.queue = append(t.queue, nil)
	copy(t.queue[i+1:], t.queue[i:])
	t.queue[i] = j
	j.queued = true
	m.queued++
}

// removeQueuedLocked takes j out of its tenant's queue; it reports false
// when the job is not queued (already dispatched, expired, or
// cancelled). Callers hold m.mu.
func (m *Manager) removeQueuedLocked(j *Job) bool {
	if !j.queued {
		return false
	}
	t := j.tenant
	for i, q := range t.queue {
		if q == j {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	j.queued = false
	m.queued--
	if j.deadlineTimer != nil {
		j.deadlineTimer.Stop()
	}
	return true
}

// nextTenantLocked picks the dispatch-eligible tenant with the lowest
// stride pass (ties broken by first-use order, keeping the scan
// deterministic), or nil when nothing can run. Callers hold m.mu.
func (m *Manager) nextTenantLocked() *tenant {
	var best *tenant
	for _, name := range m.tenantOrder {
		t := m.tenants[name]
		if len(t.queue) == 0 {
			continue
		}
		if r := t.quota.MaxRunning; r > 0 && t.running >= r {
			continue
		}
		if best == nil || t.pass < best.pass {
			best = t
		}
	}
	return best
}

// dispatchLocked fills free run slots: repeatedly pick the fair-share
// tenant, pop the head of its queue, and start the job's worker
// goroutine. Queued jobs whose deadline has passed are failed here
// without ever running (the per-job expiry timer is the primary
// mechanism; this is the backstop for timers that lag the clock).
// Callers hold m.mu.
func (m *Manager) dispatchLocked() {
	for m.running < m.opts.MaxConcurrent {
		t := m.nextTenantLocked()
		if t == nil {
			return
		}
		j := t.queue[0]
		m.removeQueuedLocked(j)
		if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
			m.expireLocked(j)
			continue
		}
		m.vtime = t.pass
		t.pass += strideScale / t.quota.weight()
		t.running++
		m.running++
		// Registering with the WaitGroup under m.mu keeps Add
		// happens-before Close's Wait: Close drains the queues under the
		// same lock before waiting.
		m.wg.Add(1)
		m.logf("evt=dispatch tenant=%s job=%s priority=%d queued=%d", t.name, j.id, j.priority, m.queued)
		go m.run(j.runCtx, j)
	}
}

// expireLocked fails a job (already removed from its queue) whose
// deadline passed before it could start. Callers hold m.mu.
func (m *Manager) expireLocked(j *Job) {
	t := j.tenant
	t.expired++
	t.failed++
	m.logf("evt=deadline_expired tenant=%s job=%s waited=%s", t.name, j.id, time.Since(j.submittedAt()))
	j.setState(StateFailed, fmt.Sprintf("deadline exceeded before start (deadline_ms=%d)", j.req.DeadlineMS))
	j.cancel()
}

// expireJob is the deadline timer callback: if the job is still queued
// when its deadline fires, it is failed without ever running.
func (m *Manager) expireJob(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.removeQueuedLocked(j) {
		return
	}
	m.expireLocked(j)
}

// cancelQueued removes a still-queued job on Cancel, transitioning it to
// cancelled directly (a queued job has no goroutine watching its
// context). It reports whether the job was dequeued.
func (m *Manager) cancelQueued(j *Job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.removeQueuedLocked(j) {
		return false
	}
	j.tenant.cancelled++
	m.logf("evt=cancel_queued tenant=%s job=%s", j.tenant.name, j.id)
	j.setState(StateCancelled, "")
	return true
}

// finishJob retires a finished worker: release the run slot, count the
// terminal state, and dispatch whatever the freed slot admits.
func (m *Manager) finishJob(j *Job) {
	st := j.Status()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	j.tenant.running--
	switch st.State {
	case StateDone:
		j.tenant.done++
	case StateFailed:
		j.tenant.failed++
	case StateCancelled:
		j.tenant.cancelled++
	}
	m.logf("evt=finish tenant=%s job=%s state=%s completed=%d", j.tenant.name, j.id, st.State, st.Completed)
	m.dispatchLocked()
}

// resultBytes estimates the resident heap footprint of one buffered
// result: the struct itself plus its slice payloads. It is an
// accounting estimate for admission control, not an exact heap
// measurement.
func resultBytes(res *dispersion.Result) int64 {
	const structOverhead = 200 // Result struct + interior pointers, rounded up
	const sliceHeader = 24
	n := int64(structOverhead)
	n += int64(len(res.Steps)) * 8
	n += int64(len(res.SettledAt)) * 4
	n += int64(len(res.SettleOrder)) * 4
	n += int64(len(res.SettleClock)) * 8
	n += int64(len(res.SettleTimes)) * 8
	for _, tr := range res.Trajectories {
		n += sliceHeader + int64(len(tr))*4
	}
	return n
}

// logf emits a structured (key=value) control-plane log line through
// ManagerOptions.Logf, if configured.
func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}
