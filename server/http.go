package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/sink"
)

// APIKeyHeader is the request header that names the submitting tenant
// for quota accounting and fair-share scheduling. Requests without it
// are accounted to the shared AnonymousTenant. The header is an
// identity, not a credential: the server applies quotas per key but does
// not authenticate keys.
const APIKeyHeader = "X-API-Key"

// DefaultSummaryMaxWait bounds the ?wait=1 summary long-poll when
// Server.SummaryMaxWait is zero: a request whose job is still running
// after this long gets the current snapshot plus a Retry-After hint
// instead of holding the handler goroutine indefinitely.
const DefaultSummaryMaxWait = 30 * time.Second

// Server is the HTTP layer over a Manager: an http.Handler serving the
// /v1 job API documented in the package comment and README.md.
type Server struct {
	m   *Manager
	mux *http.ServeMux

	// SummaryMaxWait bounds how long a ?wait=1 summary request may block
	// before answering with the current (possibly non-terminal) snapshot
	// and a Retry-After header. 0 means DefaultSummaryMaxWait. Set it
	// before serving requests.
	SummaryMaxWait time.Duration
	// DisableMetrics makes GET /metrics answer 404. Set it before
	// serving requests.
	DisableMetrics bool
}

// New returns a Server over the given manager. The caller keeps ownership
// of the manager (and is responsible for closing it).
func New(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/summary", s.summary)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.results)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/processes", s.processes)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s
}

// ServeHTTP dispatches to the v1 routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON body of every non-2xx response.
type apiError struct {
	// Error is the human-readable failure message.
	Error string `json:"error"`
}

// writeJSON renders v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// fail renders an error response.
func fail(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// job resolves the {id} path element, rendering a 404 on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		fail(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j, ok
}

// submit handles POST /v1/jobs: decode, validate, and queue the request
// under the tenant named by the X-API-Key header, echoing the new job's
// status with a Location header. Admission-control rejections answer
// 429 Too Many Requests with a Retry-After header (in seconds, rounded
// up) carrying the scheduler's backoff hint.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	j, err := s.m.SubmitAs(r.Header.Get(APIKeyHeader), req)
	if errors.Is(err, ErrClosed) {
		fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	var qe *QuotaError
	if errors.As(err, &qe) {
		w.Header().Set("Retry-After", retryAfterSeconds(qe.RetryAfter))
		fail(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusCreated, j.Status())
}

// retryAfterSeconds renders a backoff hint as a Retry-After header value:
// integral seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// metrics handles GET /metrics: the manager's control-plane counters in
// the Prometheus text exposition format (see Manager.WriteMetrics).
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if s.DisableMetrics {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.m.WriteMetrics(w)
}

// list handles GET /v1/jobs.
func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

// status handles GET /v1/jobs/{id}. With ?view=summary it answers the
// summary endpoint's body instead of the plain status.
func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("view") == "summary" {
		s.writeSummary(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// SummaryResponse is the body of GET /v1/jobs/{id}/summary (and of
// ?view=summary): the job's streaming aggregate plus enough status to
// interpret it.
type SummaryResponse struct {
	// ID is the job identifier; State its lifecycle state at snapshot
	// time.
	ID    string `json:"id"`
	State State  `json:"state"`
	// Completed is the number of trials folded into Summary — the two
	// are snapshotted atomically, so Summary covers exactly the first
	// Completed trials.
	Completed int `json:"completed"`
	// Summary is the agg.Summary JSON. Its rendering is canonical:
	// merged shard summaries over the same trial multiset are
	// byte-identical to a contiguous run's.
	Summary json.RawMessage `json:"summary"`
}

// summary handles GET /v1/jobs/{id}/summary: the job's streaming
// aggregate, available while the job runs (covering the trials
// completed so far), after it finishes, and — unlike the results
// buffer — after eviction. With ?wait=1 the request first blocks until
// the job reaches a terminal state, so one round trip fetches a final
// summary.
func (s *Server) summary(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.writeSummary(w, r, j)
}

// writeSummary renders a job's summary snapshot, honouring ?wait=1. The
// long-poll is bounded by Server.SummaryMaxWait: a job still running at
// the bound answers with its current snapshot and a Retry-After: 1
// header, so a never-finishing job cannot pin handler goroutines — the
// client polls again instead.
func (s *Server) writeSummary(w http.ResponseWriter, r *http.Request, j *Job) {
	if r.URL.Query().Get("wait") == "1" {
		maxWait := s.SummaryMaxWait
		if maxWait <= 0 {
			maxWait = DefaultSummaryMaxWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), maxWait)
		st := j.Wait(ctx)
		cancel()
		if !st.State.Terminal() {
			w.Header().Set("Retry-After", "1")
		}
	}
	b, st, err := j.SummaryJSON()
	if err != nil {
		fail(w, http.StatusInternalServerError, "marshal summary: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, SummaryResponse{
		ID: st.ID, State: st.State, Completed: st.Completed, Summary: b,
	})
}

// cancel handles DELETE /v1/jobs/{id}. Cancellation is idempotent: the
// response is the job's status after the cancel took effect, with state
// "cancelled" unless the job had already finished.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	// The run goroutine records the terminal state asynchronously; wait
	// for it so the response reflects the cancellation.
	writeJSON(w, http.StatusOK, j.Wait(r.Context()))
}

// TrailerJobState is the HTTP trailer the results stream sends when the
// job's terminal state ends it: "done", "failed", or "cancelled". A
// stream that stops without this trailer was cut by the transport (or by
// the client), not by the job — a resuming client (and the
// dispersion/shard coordinator) uses the distinction to decide between
// reconnecting with ?from= and resubmitting the remaining trial range.
const TrailerJobState = "X-Job-State"

// results handles GET /v1/jobs/{id}/results: an NDJSON stream of
// sink.Record lines in trial order, starting at line ?from= (default 0)
// and following the job live until it reaches a terminal state.
// Reconnecting with from = <number of lines already seen> resumes
// exactly, because trial i's result is a pure function of the job
// request. from addresses stream lines, not absolute trial indices: line
// p of a job carries trial FirstTrial+p.
//
// When the stream ends because the job reached a terminal state, that
// state is exposed as the TrailerJobState HTTP trailer.
//
// On a manager with EvictConsumed set, a fully consumed terminal job's
// buffer is dropped; re-reading lines below Completed then answers
// 410 Gone instead of silently serving an empty stream. Summary-only
// jobs never buffer results at all and answer 410 immediately; their
// aggregate is at the summary endpoint (also reachable here as
// ?view=summary).
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("view") == "summary" {
		s.writeSummary(w, r, j)
		return
	}
	if j.Status().Request.SummaryOnly {
		fail(w, http.StatusGone,
			"job runs summary_only and buffers no results; GET /v1/jobs/%s/summary instead", j.ID())
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			fail(w, http.StatusBadRequest, "bad from=%q (want a non-negative line index)", q)
			return
		}
		from = v
	}
	// Registering the stream as a consumer defers buffer eviction
	// (ManagerOptions.EvictConsumed) until this request has finished.
	j.Retain()
	defer j.Release()
	st := j.Status()
	jobReq := st.Request
	if from > jobReq.Trials {
		fail(w, http.StatusBadRequest, "from=%d beyond the job's %d trials", from, jobReq.Trials)
		return
	}
	if st.Evicted && from < st.Completed {
		fail(w, http.StatusGone,
			"results evicted after full consumption; resubmit the job (or read the archive) to recover trials")
		return
	}
	first := jobReq.FirstTrial
	w.Header().Set("Trailer", TrailerJobState)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	out := sink.NewJSONL(w)
	// Only lines whose Write completed count as consumed for the
	// eviction policy, so a connection cut mid-line leaves that trial
	// unconsumed for the reconnect. A successful Write is still not a
	// delivery ack — bytes can die in socket buffers after the final
	// line, in which case the reconnect finds the range evicted (410)
	// and recovers by resubmitting the job, losslessly, since trial
	// results are pure functions of the request.
	delivered := from
	for i := from; ; i++ {
		res, ok := j.Next(r.Context(), i)
		if !ok {
			break
		}
		if err := out.Write(dispersion.Trial{Index: first + i, Result: res}); err != nil {
			j.MarkConsumed(from, delivered)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		delivered = i + 1
	}
	j.MarkConsumed(from, delivered)
	// Next returns false either because the job is terminal or because
	// the client went away; only a terminal state ends the stream
	// authoritatively, and only then is the trailer sent.
	if st := j.Status().State; st.Terminal() {
		w.Header().Set(TrailerJobState, string(st))
	}
}

// processesResponse is the body of GET /v1/processes.
type processesResponse struct {
	// Processes lists the canonical names of every registered dispersion
	// process.
	Processes []string `json:"processes"`
	// GraphKinds lists the graph-family names a job Spec may use.
	GraphKinds []string `json:"graph_kinds"`
}

// processes handles GET /v1/processes.
func (s *Server) processes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, processesResponse{
		Processes:  dispersion.Processes(),
		GraphKinds: graphspec.Kinds(),
	})
}
