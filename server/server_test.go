package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dispersion"
	"dispersion/server"
	"dispersion/sink"
)

// newServer starts an httptest server over a fresh manager, both torn
// down with the test.
func newServer(t *testing.T, opts server.ManagerOptions) (*httptest.Server, *server.Manager) {
	t.Helper()
	m, err := server.NewManager(opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return ts, m
}

// submit posts a job request and decodes the returned status.
func submit(t *testing.T, ts *httptest.Server, req server.JobRequest) server.Status {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs: status %d: %s", resp.StatusCode, msg)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if got, want := resp.Header.Get("Location"), "/v1/jobs/"+st.ID; got != want {
		t.Errorf("Location = %q, want %q", got, want)
	}
	return st
}

// direct runs the same job straight through the engine and returns the
// expected NDJSON lines.
func direct(t *testing.T, req server.JobRequest) []string {
	t.Helper()
	eng := dispersion.Engine{Seed: req.Seed, Experiment: req.Experiment}
	var lines []string
	err := eng.Run(context.Background(), dispersion.Job{
		Process: req.Process,
		Spec:    req.Spec,
		Origin:  req.Origin,
		Trials:  req.Trials,
	}, func(tr dispersion.Trial) error {
		b, err := json.Marshal(sink.Record{Trial: tr.Index, Result: tr.Result})
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("direct Engine.Run: %v", err)
	}
	return lines
}

// stream reads the job's NDJSON results from the given index to EOF.
func stream(t *testing.T, ts *httptest.Server, id string, from int) []string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", ts.URL, id, from))
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET results: status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return lines
}

// The core acceptance path: submitted jobs stream NDJSON results
// bit-identical to a direct Engine.Run with the same coordinates.
func TestSubmitStreamMatchesEngine(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	req := server.JobRequest{
		Process: "parallel", Spec: "torus:8x8", Trials: 12, Seed: 9, Experiment: 3,
	}
	st := submit(t, ts, req)
	got := stream(t, ts, st.ID, 0)
	want := direct(t, req)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed NDJSON diverged from direct Engine.Run\n got %d lines\nwant %d lines", len(got), len(want))
	}

	// After the stream drained, the job must be done with full progress.
	final := getStatus(t, ts, st.ID)
	if final.State != server.StateDone || final.Completed != req.Trials {
		t.Errorf("final status = %s completed %d, want done %d", final.State, final.Completed, req.Trials)
	}
}

// Reconnecting mid-stream with ?from= resumes without gaps or duplicates:
// any prefix + resumed suffix equals the uninterrupted stream.
func TestResumeAcrossReconnects(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	req := server.JobRequest{
		Process: "sequential", Spec: "complete:64", Trials: 20, Seed: 4, Experiment: 1,
	}
	st := submit(t, ts, req)
	want := direct(t, req)

	// Read the first few lines, then drop the connection mid-stream.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	const cut = 7
	var prefix []string
	sc := bufio.NewScanner(resp.Body)
	for len(prefix) < cut && sc.Scan() {
		prefix = append(prefix, sc.Text())
	}
	resp.Body.Close()
	if len(prefix) != cut {
		t.Fatalf("read %d lines before disconnect, want %d", len(prefix), cut)
	}

	// Resume exactly where the client left off.
	suffix := stream(t, ts, st.ID, cut)
	if got := append(append([]string(nil), prefix...), suffix...); !reflect.DeepEqual(got, want) {
		t.Fatalf("prefix+resume diverged from uninterrupted stream (%d+%d vs %d lines)",
			len(prefix), len(suffix), len(want))
	}

	// A full re-read after completion is identical too (late consumer).
	if got := stream(t, ts, st.ID, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("post-completion re-read diverged")
	}
}

// DELETE cancels a running job: the state becomes cancelled, progress
// stops short of Trials, and open result streams terminate.
func TestCancel(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	// A job big enough to still be running when the cancel lands.
	req := server.JobRequest{
		Process: "sequential", Spec: "complete:512", Trials: 1 << 30, Seed: 1,
	}
	st := submit(t, ts, req)

	// Wait for at least one result so the job is demonstrably running.
	if lines := streamPrefix(t, ts, st.ID, 1); len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}

	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	var final server.Status
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatalf("decode cancel response: %v", err)
	}
	resp.Body.Close()
	if final.State != server.StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Completed >= req.Trials {
		t.Errorf("cancelled job completed all %d trials", final.Completed)
	}

	// The results stream of a cancelled job ends instead of hanging.
	done := make(chan []string, 1)
	go func() { done <- stream(t, ts, st.ID, 0) }()
	select {
	case lines := <-done:
		if len(lines) != final.Completed {
			t.Errorf("drained %d lines from cancelled job, status says %d", len(lines), final.Completed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("results stream of a cancelled job did not terminate")
	}

	// Cancelling again is idempotent.
	creq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(creq2)
	if err != nil {
		t.Fatalf("second DELETE: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("second DELETE status = %d, want 200", resp2.StatusCode)
	}
}

// streamPrefix reads the first n NDJSON lines and drops the connection.
func streamPrefix(t *testing.T, ts *httptest.Server, id string, n int) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for len(lines) < n && sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

func getStatus(t *testing.T, ts *httptest.Server, id string) server.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// Malformed submissions are rejected synchronously with a 400 and a JSON
// error body; unknown jobs give 404s.
func TestValidationAndErrors(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	bad := []string{
		`{"process":"nope","spec":"complete:8","trials":1}`,                  // unknown process
		`{"process":"parallel","trials":1}`,                                  // no spec
		`{"process":"parallel","spec":"blob:9","trials":1}`,                  // unknown family
		`{"process":"parallel","spec":"complete:8","trials":0}`,              // no trials
		`{"process":"parallel","spec":"complete:8","trials":1,"bogus":true}`, // unknown field
		`not json`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		var apiErr struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Errorf("body %s: non-JSON error response: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
		if apiErr.Error == "" {
			t.Errorf("body %s: empty error message", body)
		}
	}
	// Rejected submissions leave no job behind.
	resp, _ := http.Get(ts.URL + "/v1/jobs")
	var list []server.Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list) != 0 {
		t.Errorf("rejected submissions created %d jobs", len(list))
	}

	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// from= validation.
	st := submit(t, ts, server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 2})
	for _, q := range []string{"from=-1", "from=x", "from=3"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results?" + q)
		if err != nil {
			t.Fatalf("GET ?%s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET ?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// The list endpoint reports every submission in order; the processes
// endpoint names the registry.
func TestListAndProcesses(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{MaxConcurrent: 4})
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, server.JobRequest{
			Process: "uniform", Spec: "path:16", Trials: 2, Seed: uint64(i),
		})
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("manager lost job %s", id)
		}
		j.Wait(context.Background())
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	var list []server.Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list) != len(ids) {
		t.Fatalf("list has %d jobs, want %d", len(list), len(ids))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
		if st.State != server.StateDone || st.Completed != 2 {
			t.Errorf("list[%d]: state %s completed %d, want done 2", i, st.State, st.Completed)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/processes")
	if err != nil {
		t.Fatalf("GET /v1/processes: %v", err)
	}
	var procs struct {
		Processes  []string `json:"processes"`
		GraphKinds []string `json:"graph_kinds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&procs); err != nil {
		t.Fatalf("decode processes: %v", err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(procs.Processes, dispersion.Processes()) {
		t.Errorf("processes = %v", procs.Processes)
	}
	if len(procs.GraphKinds) == 0 {
		t.Error("no graph kinds reported")
	}
}

// With a results directory configured, the manager archives every job as
// JSONL whose records match the in-memory stream exactly.
func TestJSONLPersistence(t *testing.T) {
	dir := t.TempDir()
	ts, m := newServer(t, server.ManagerOptions{ResultsDir: dir})
	req := server.JobRequest{
		Process: "ct-uniform", Spec: "complete:24", Trials: 6, Seed: 2, Experiment: 8,
	}
	st := submit(t, ts, req)
	j, _ := m.Get(st.ID)
	if final := j.Wait(context.Background()); final.State != server.StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	f, err := os.Open(filepath.Join(dir, st.ID+".jsonl"))
	if err != nil {
		t.Fatalf("open archive: %v", err)
	}
	defer f.Close()
	archived, err := sink.ReadJSONL(f)
	if err != nil {
		t.Fatalf("read archive: %v", err)
	}
	want := direct(t, req)
	if len(archived) != len(want) {
		t.Fatalf("archive has %d records, want %d", len(archived), len(want))
	}
	for i, tr := range archived {
		b, _ := json.Marshal(sink.Record{Trial: tr.Index, Result: tr.Result})
		if string(b) != want[i] {
			t.Errorf("archive record %d diverged from direct run", i)
		}
	}
}

// Jobs queue behind the bounded worker pool but all finish, and options
// round-trip through the JSON form (a lazy job differs from its eager
// twin but matches a direct lazy run).
func TestWorkerPoolAndOptions(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{MaxConcurrent: 1, EngineWorkers: 2})
	eager := submit(t, ts, server.JobRequest{
		Process: "sequential", Spec: "complete:32", Trials: 5, Seed: 3,
	})
	lazy := submit(t, ts, server.JobRequest{
		Process: "sequential", Spec: "complete:32", Trials: 5, Seed: 3,
		Options: server.Options{Lazy: true},
	})
	for _, id := range []string{eager.ID, lazy.ID} {
		j, _ := m.Get(id)
		if final := j.Wait(context.Background()); final.State != server.StateDone {
			t.Fatalf("job %s finished %s: %s", id, final.State, final.Error)
		}
	}
	eagerLines := stream(t, ts, eager.ID, 0)
	lazyLines := stream(t, ts, lazy.ID, 0)
	if reflect.DeepEqual(eagerLines, lazyLines) {
		t.Error("lazy option had no effect on results")
	}

	eng := dispersion.Engine{Seed: 3, Workers: 7} // worker count must not matter
	var want []string
	err := eng.Run(context.Background(), dispersion.Job{
		Process: "sequential", Spec: "complete:32", Trials: 5,
		Options: []dispersion.Option{dispersion.WithLazy()},
	}, func(tr dispersion.Trial) error {
		b, _ := json.Marshal(sink.Record{Trial: tr.Index, Result: tr.Result})
		want = append(want, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("direct lazy run: %v", err)
	}
	if !reflect.DeepEqual(lazyLines, want) {
		t.Error("lazy job diverged from direct lazy Engine.Run")
	}
}

// The variant-workload option fields (settle_param, capacity) round-trip
// through the JSON form: a server job streams bit-identically to a direct
// engine run with the equivalent functional options.
func TestVariantOptionsRoundTrip(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{})
	cases := []struct {
		req  server.JobRequest
		opts []dispersion.Option
	}{
		{
			req: server.JobRequest{
				Process: "sequential-geom", Spec: "complete:16", Trials: 6, Seed: 13,
				Options: server.Options{SettleParam: 0.25},
			},
			opts: []dispersion.Option{dispersion.WithSettleParam(0.25)},
		},
		{
			req: server.JobRequest{
				Process: "capacity", Spec: "star:8", Trials: 6, Seed: 13,
				Options: server.Options{Capacity: 3, Particles: 10},
			},
			opts: []dispersion.Option{dispersion.WithCapacity(3), dispersion.WithParticles(10)},
		},
		{
			req: server.JobRequest{
				Process: "sequential", Spec: "wcomplete:16,0.5", Trials: 6, Seed: 13,
				Options: server.Options{Batch: 4},
			},
			opts: []dispersion.Option{dispersion.WithBatch(4)},
		},
		{
			req: server.JobRequest{
				Process: "capacity", Spec: "path:4", Trials: 6, Seed: 13,
				Options: server.Options{Capacities: []int{2, 1, 3, 1}},
			},
			opts: []dispersion.Option{dispersion.WithCapacities([]int{2, 1, 3, 1})},
		},
	}
	for _, tc := range cases {
		st := submit(t, ts, tc.req)
		j, _ := m.Get(st.ID)
		if final := j.Wait(context.Background()); final.State != server.StateDone {
			t.Fatalf("%s job finished %s: %s", tc.req.Process, final.State, final.Error)
		}
		got := stream(t, ts, st.ID, 0)

		eng := dispersion.Engine{Seed: tc.req.Seed}
		var want []string
		err := eng.Run(context.Background(), dispersion.Job{
			Process: tc.req.Process, Spec: tc.req.Spec, Trials: tc.req.Trials,
			Options: tc.opts,
		}, func(tr dispersion.Trial) error {
			b, _ := json.Marshal(sink.Record{Trial: tr.Index, Result: tr.Result})
			want = append(want, string(b))
			return nil
		})
		if err != nil {
			t.Fatalf("direct %s run: %v", tc.req.Process, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: server stream diverged from the direct engine run", tc.req.Process)
		}
	}

	// Out-of-range parameters fail the job at run time with a clear error.
	st := submit(t, ts, server.JobRequest{
		Process: "sequential-geom", Spec: "complete:8", Trials: 1, Seed: 1,
		Options: server.Options{SettleParam: 2},
	})
	j, _ := m.Get(st.ID)
	if final := j.Wait(context.Background()); final.State != server.StateFailed {
		t.Fatalf("out-of-range settle_param finished %s, want failed", final.State)
	}

	// A batch request against a process with no batched form fails too.
	st = submit(t, ts, server.JobRequest{
		Process: "parallel", Spec: "complete:8", Trials: 1, Seed: 1,
		Options: server.Options{Batch: 8},
	})
	j, _ = m.Get(st.ID)
	if final := j.Wait(context.Background()); final.State != server.StateFailed {
		t.Fatalf("batched parallel finished %s, want failed", final.State)
	}
}

// Once Close has begun, submissions are rejected with ErrClosed instead
// of racing the shutdown, and job IDs are unique across manager
// restarts so JSONL archives are never truncated by a new run.
func TestCloseFenceAndRestartUniqueIDs(t *testing.T) {
	m1, err := server.NewManager(server.ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if _, err := m1.Submit(server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 1}); !errors.Is(err, server.ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}

	m2, err := server.NewManager(server.ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j2, err := m2.Submit(server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID() == j2.ID() {
		t.Errorf("restarted manager reused job ID %s", j1.ID())
	}
}

// An offset job (first_trial > 0) is a shard: its stream is
// line-for-line identical to the matching slice of the contiguous run,
// and ?from= stays line-addressed within the shard.
func TestFirstTrialShardMatchesSlice(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	whole := server.JobRequest{
		Process: "parallel", Spec: "torus:8x8", Trials: 12, Seed: 6, Experiment: 2,
	}
	want := direct(t, whole)

	sharded := whole
	sharded.FirstTrial, sharded.Trials = 5, 7
	st := submit(t, ts, sharded)
	if got := stream(t, ts, st.ID, 0); !reflect.DeepEqual(got, want[5:12]) {
		t.Fatal("offset shard diverged from the contiguous run's slice")
	}
	// from=2 is the shard's third line, i.e. trial 7 of the logical run.
	if got := stream(t, ts, st.ID, 2); !reflect.DeepEqual(got, want[7:12]) {
		t.Fatal("?from= within an offset shard diverged")
	}
}

// streamTrailer drains a job's results stream and returns its lines plus
// the X-Job-State trailer observed at EOF.
func streamTrailer(t *testing.T, ts *httptest.Server, id string) ([]string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return lines, resp.Trailer.Get(server.TrailerJobState)
}

// The results stream announces the job's terminal state in an HTTP
// trailer, so a resuming client can tell a completed stream from a dead
// job or a cut connection.
func TestResultsTrailerReportsTerminalState(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{})

	done := submit(t, ts, server.JobRequest{
		Process: "parallel", Spec: "complete:16", Trials: 3, Seed: 1,
	})
	if _, state := streamTrailer(t, ts, done.ID); state != string(server.StateDone) {
		t.Errorf("completed job's trailer = %q, want %q", state, server.StateDone)
	}

	failed := submit(t, ts, server.JobRequest{
		Process: "parallel", Spec: "complete:not-a-number", Trials: 1,
	})
	if _, state := streamTrailer(t, ts, failed.ID); state != string(server.StateFailed) {
		t.Errorf("failed job's trailer = %q, want %q", state, server.StateFailed)
	}

	cancelled := submit(t, ts, server.JobRequest{
		Process: "sequential", Spec: "complete:512", Trials: 1 << 30, Seed: 1,
	})
	if lines := streamPrefix(t, ts, cancelled.ID, 1); len(lines) != 1 {
		t.Fatalf("got %d lines before cancel, want 1", len(lines))
	}
	j, _ := m.Get(cancelled.ID)
	j.Cancel()
	j.Wait(context.Background())
	if _, state := streamTrailer(t, ts, cancelled.ID); state != string(server.StateCancelled) {
		t.Errorf("cancelled job's trailer = %q, want %q", state, server.StateCancelled)
	}
}

// A job whose graph spec parses but fails to build surfaces as a failed
// job, not a dead server.
func TestRuntimeFailure(t *testing.T) {
	ts, m := newServer(t, server.ManagerOptions{})
	st := submit(t, ts, server.JobRequest{
		Process: "parallel", Spec: "complete:not-a-number", Trials: 1,
	})
	j, _ := m.Get(st.ID)
	final := j.Wait(context.Background())
	if final.State != server.StateFailed || final.Error == "" {
		t.Fatalf("final = %s %q, want failed with message", final.State, final.Error)
	}
	// Its results stream ends immediately with zero records.
	if lines := stream(t, ts, st.ID, 0); len(lines) != 0 {
		t.Errorf("failed job streamed %d records", len(lines))
	}
}

// Manager-level eviction contract: with EvictConsumed, the in-memory
// buffer is dropped exactly when the job is terminal, fully consumed, and
// no consumer is still retained — and not a moment earlier.
func TestManagerEvictConsumed(t *testing.T) {
	_, m := newServer(t, server.ManagerOptions{EvictConsumed: true})
	j, err := m.Submit(server.JobRequest{
		Process: "sequential", Spec: "complete:16", Trials: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Two consumers attach; the first drains the stream to its end.
	j.Retain()
	j.Release() // a consumer that reads nothing must not block eviction later
	j.Retain()
	second := j
	second.Retain()
	delivered := 0
	for i := 0; ; i++ {
		if _, ok := j.Next(ctx, i); !ok {
			break
		}
		delivered = i + 1
	}
	j.MarkConsumed(0, delivered)
	st := j.Wait(ctx)
	if st.State != server.StateDone || st.Completed != 6 {
		t.Fatalf("job finished as %s with %d completed, want done/6", st.State, st.Completed)
	}

	// Terminal + consumed, but two consumers still retained: no eviction.
	if st := j.Status(); st.Evicted || st.Resident != 6 {
		t.Fatalf("evicted with consumers attached: evicted=%v resident=%d", st.Evicted, st.Resident)
	}
	j.Release()
	if st := j.Status(); st.Evicted {
		t.Fatal("evicted while one consumer still attached")
	}
	second.Release()
	st = j.Status()
	if !st.Evicted || st.Resident != 0 {
		t.Fatalf("after last release: evicted=%v resident=%d, want true/0", st.Evicted, st.Resident)
	}
	// Status metadata survives the buffer.
	if st.Completed != 6 || st.State != server.StateDone {
		t.Fatalf("eviction corrupted status: %+v", st)
	}
	// The evicted buffer serves no further results.
	if _, ok := j.Next(ctx, 0); ok {
		t.Fatal("Next returned a result from an evicted buffer")
	}
}

// A partially consumed stream never triggers eviction: kill/resume flows
// (the shard coordinator) rely on the tail staying resident.
func TestManagerEvictRequiresFullConsumption(t *testing.T) {
	_, m := newServer(t, server.ManagerOptions{EvictConsumed: true})
	j, err := m.Submit(server.JobRequest{
		Process: "sequential", Spec: "complete:16", Trials: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j.Retain()
	for i := 0; i < 3; i++ {
		if _, ok := j.Next(ctx, i); !ok {
			t.Fatalf("result %d unavailable", i)
		}
	}
	j.MarkConsumed(0, 3)
	j.Wait(ctx)
	j.Release()
	if st := j.Status(); st.Evicted || st.Resident != 6 {
		t.Fatalf("partially consumed job evicted: evicted=%v resident=%d", st.Evicted, st.Resident)
	}
	// A delivery range that leaves a gap below the contiguous mark must
	// not count (a reader that skipped lines 3..4 proves nothing about
	// them).
	j.MarkConsumed(5, 6)
	if st := j.Status(); st.Evicted {
		t.Fatal("gap-leaving consumption evicted the buffer")
	}
	// Fetching results without marking them delivered must not evict
	// either (a mid-write connection cut fetches but never delivers).
	j.Retain()
	for i := 3; i < 6; i++ {
		if _, ok := j.Next(ctx, i); !ok {
			t.Fatalf("result %d unavailable after resume", i)
		}
	}
	j.Release()
	if st := j.Status(); st.Evicted {
		t.Fatal("unmarked Next fetches evicted the buffer")
	}
	// Draining the remainder (a resumed stream) completes consumption.
	j.Retain()
	j.MarkConsumed(3, 6)
	j.Release()
	if st := j.Status(); !st.Evicted {
		t.Fatal("fully consumed job not evicted after resumed drain")
	}
}

// HTTP-level eviction: after a full stream read on an evicting manager,
// re-reading the range answers 410 Gone, reading from the end still
// answers an empty 200 stream with the terminal trailer, and the status
// endpoint reports the eviction.
func TestHTTPEvictConsumed(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{EvictConsumed: true})
	req := server.JobRequest{Process: "parallel", Spec: "torus:6x6", Trials: 5, Seed: 3}
	st := submit(t, ts, req)
	want := direct(t, req)
	if got := stream(t, ts, st.ID, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("streamed NDJSON diverged from direct Engine.Run before eviction")
	}

	// The completed read triggered eviction (poll briefly: the handler's
	// Release runs after the response body is finished).
	deadline := time.Now().Add(5 * time.Second)
	var final server.Status
	for {
		final = getStatus(t, ts, st.ID)
		if final.Evicted || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !final.Evicted || final.Resident != 0 || final.Completed != req.Trials {
		t.Fatalf("status after consumption = %+v, want evicted with completed=%d", final, req.Trials)
	}

	// Evicted range: 410.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=0", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("re-read of evicted results: status %d, want 410", resp.StatusCode)
	}

	// Reading from the end is still a valid empty stream with trailer.
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", ts.URL, st.ID, req.Trials))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("tail read: status %d body %q, want empty 200", resp.StatusCode, body)
	}
	if tr := resp.Trailer.Get(server.TrailerJobState); tr != string(server.StateDone) {
		t.Fatalf("tail read trailer = %q, want done", tr)
	}
}

// Without EvictConsumed nothing changes: full streams stay re-readable
// and the status never reports eviction (the historical contract).
func TestNoEvictionByDefault(t *testing.T) {
	ts, _ := newServer(t, server.ManagerOptions{})
	req := server.JobRequest{Process: "sequential", Spec: "complete:12", Trials: 4, Seed: 2}
	st := submit(t, ts, req)
	first := stream(t, ts, st.ID, 0)
	second := stream(t, ts, st.ID, 0)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-read diverged without eviction")
	}
	if fin := getStatus(t, ts, st.ID); fin.Evicted || fin.Resident != req.Trials {
		t.Fatalf("default manager evicted: %+v", fin)
	}
}
