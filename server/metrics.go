package server

// metrics.go renders the control plane's counters in the Prometheus text
// exposition format (version 0.0.4), stdlib-only: the GET /metrics
// handler calls Manager.WriteMetrics, which snapshots every tenant under
// the manager lock and writes one sample per (metric, label set).

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// metricsSnapshot is one tenant's counters, copied under m.mu so a
// scrape observes a consistent point in time.
type metricsSnapshot struct {
	name      string
	queued    int
	running   int
	submitted int64
	done      int64
	failed    int64
	cancelled int64
	expired   int64
	trials    int64
	evictions int64
	resident  int64
	rejected  map[string]int64
}

// WriteMetrics writes the manager's control-plane metrics to w in the
// Prometheus text exposition format. All series are labelled by tenant;
// the global gauges (queue depth, running jobs, resident bytes) are
// additionally exported unlabelled so a dashboard needs no sum() to see
// server totals. Counters are cumulative since the manager started.
func (m *Manager) WriteMetrics(w io.Writer) error {
	m.mu.Lock()
	snaps := make([]metricsSnapshot, 0, len(m.tenantOrder))
	for _, name := range m.tenantOrder {
		t := m.tenants[name]
		s := metricsSnapshot{
			name:      name,
			queued:    len(t.queue),
			running:   t.running,
			submitted: t.submitted,
			done:      t.done,
			failed:    t.failed,
			cancelled: t.cancelled,
			expired:   t.expired,
			trials:    t.trials.Load(),
			evictions: t.evictions.Load(),
			resident:  t.resident.Load(),
		}
		if len(t.rejected) > 0 {
			s.rejected = make(map[string]int64, len(t.rejected))
			for k, v := range t.rejected {
				s.rejected[k] = v
			}
		}
		snaps = append(snaps, s)
	}
	queued, running := m.queued, m.running
	m.mu.Unlock()
	resident := m.resident.Load()

	bw := bufio.NewWriter(w)
	header := func(name, help, typ string) {
		bw.WriteString("# HELP " + name + " " + help + "\n")
		bw.WriteString("# TYPE " + name + " " + typ + "\n")
	}
	sample := func(name, labels string, v int64) {
		bw.WriteString(name)
		if labels != "" {
			bw.WriteString("{" + labels + "}")
		}
		bw.WriteString(" " + strconv.FormatInt(v, 10) + "\n")
	}
	tl := func(s metricsSnapshot) string {
		return `tenant="` + escapeLabel(s.name) + `"`
	}

	header("dispersion_queue_depth", "Jobs waiting in all tenant queues.", "gauge")
	sample("dispersion_queue_depth", "", int64(queued))
	header("dispersion_jobs_running", "Jobs currently executing.", "gauge")
	sample("dispersion_jobs_running", "", int64(running))
	header("dispersion_resident_bytes_total", "Estimated bytes of buffered results across all tenants.", "gauge")
	sample("dispersion_resident_bytes_total", "", resident)

	header("dispersion_tenant_jobs_queued", "Jobs waiting in the tenant's queue.", "gauge")
	for _, s := range snaps {
		sample("dispersion_tenant_jobs_queued", tl(s), int64(s.queued))
	}
	header("dispersion_tenant_jobs_running", "Tenant jobs currently executing.", "gauge")
	for _, s := range snaps {
		sample("dispersion_tenant_jobs_running", tl(s), int64(s.running))
	}
	header("dispersion_tenant_resident_bytes", "Estimated bytes of the tenant's buffered results.", "gauge")
	for _, s := range snaps {
		sample("dispersion_tenant_resident_bytes", tl(s), s.resident)
	}
	header("dispersion_jobs_submitted_total", "Jobs admitted, by tenant.", "counter")
	for _, s := range snaps {
		sample("dispersion_jobs_submitted_total", tl(s), s.submitted)
	}
	header("dispersion_jobs_total", "Jobs that reached a terminal state, by tenant and state.", "counter")
	for _, s := range snaps {
		sample("dispersion_jobs_total", tl(s)+`,state="done"`, s.done)
		sample("dispersion_jobs_total", tl(s)+`,state="failed"`, s.failed)
		sample("dispersion_jobs_total", tl(s)+`,state="cancelled"`, s.cancelled)
	}
	header("dispersion_deadline_expired_total", "Queued jobs failed by their deadline before starting, by tenant.", "counter")
	for _, s := range snaps {
		sample("dispersion_deadline_expired_total", tl(s), s.expired)
	}
	header("dispersion_trials_completed_total", "Completed trials, by tenant. rate() of this is trials/sec.", "counter")
	for _, s := range snaps {
		sample("dispersion_trials_completed_total", tl(s), s.trials)
	}
	header("dispersion_evictions_total", "Result buffers dropped by the EvictConsumed policy, by tenant.", "counter")
	for _, s := range snaps {
		sample("dispersion_evictions_total", tl(s), s.evictions)
	}
	header("dispersion_admission_rejected_total", "Submissions rejected by admission control, by tenant and reason.", "counter")
	for _, s := range snaps {
		reasons := make([]string, 0, len(s.rejected))
		for r := range s.rejected {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			sample("dispersion_admission_rejected_total",
				tl(s)+`,reason="`+escapeLabel(r)+`"`, s.rejected[r])
		}
	}
	return bw.Flush()
}

// escapeLabel escapes a Prometheus label value: backslash, double quote
// and newline, per the text exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
