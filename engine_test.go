package dispersion_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dispersion"
	"dispersion/internal/bench"
	"dispersion/internal/core"
	"dispersion/internal/graph"
)

// collect gathers every trial result of a job, asserting in-order
// streaming delivery.
func collect(t *testing.T, eng dispersion.Engine, job dispersion.Job) []*dispersion.Result {
	t.Helper()
	out := make([]*dispersion.Result, 0, job.Trials)
	err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
		if tr.Index != len(out) {
			t.Fatalf("trial delivered out of order: got index %d, want %d", tr.Index, len(out))
		}
		out = append(out, tr.Result)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEngineWorkerCountInvariance is the headline determinism contract:
// the same seed returns identical Results for 1 worker and N workers.
func TestEngineWorkerCountInvariance(t *testing.T) {
	for _, process := range []string{
		"sequential", "parallel", "ct-uniform",
		"sequential-geom", "sequential-threshold", "capacity", "capacity-parallel",
	} {
		t.Run(process, func(t *testing.T) {
			job := dispersion.Job{
				Process: process,
				Spec:    "torus:6x6",
				Trials:  40,
				Options: []dispersion.Option{dispersion.WithRecord()},
			}
			serial := collect(t, dispersion.Engine{Seed: 11, Experiment: 5, Workers: 1}, job)
			parallel := collect(t, dispersion.Engine{Seed: 11, Experiment: 5, Workers: 8}, job)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatal("engine results differ between 1 worker and 8 workers")
			}
		})
	}
}

// TestEngineMatchesLegacyHarness pins the engine's trial streams to the
// internal bench sampler's: same (seed, experiment) must yield the same
// sample vector the pre-facade harness produced.
func TestEngineMatchesLegacyHarness(t *testing.T) {
	g := graph.Complete(48)
	const trials, seed, exp = 60, 9, 77
	want := bench.SampleDispersion(g, 0, bench.Par, core.Options{}, trials, seed, exp)
	got, err := dispersion.Engine{Seed: seed, Experiment: exp}.Sample(
		context.Background(),
		dispersion.Job{Process: "parallel", Graph: g, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("engine sample differs from legacy bench.SampleDispersion")
	}
}

func TestEngineSpecVsGraph(t *testing.T) {
	g := graph.Complete(32)
	job := func(j dispersion.Job) []float64 {
		xs, err := dispersion.Engine{Seed: 4}.Sample(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		return xs
	}
	bySpec := job(dispersion.Job{Process: "uniform", Spec: "complete:32", Trials: 20})
	byGraph := job(dispersion.Job{Process: "uniform", Graph: g, Trials: 20})
	if !reflect.DeepEqual(bySpec, byGraph) {
		t.Fatal("spec-built and pre-built graphs disagree")
	}
}

func TestEngineTotalSteps(t *testing.T) {
	xs, err := dispersion.Engine{Seed: 2}.TotalSteps(context.Background(),
		dispersion.Job{Process: "sequential", Spec: "cycle:24", Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 10 {
		t.Fatalf("got %d samples, want 10", len(xs))
	}
	for i, x := range xs {
		if x < 0 {
			t.Errorf("trial %d: negative total steps %v", i, x)
		}
	}
}

func TestEngineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	err := dispersion.Engine{Seed: 1, Workers: 2}.Run(ctx,
		dispersion.Job{Process: "sequential", Spec: "complete:64", Trials: 100000},
		func(tr dispersion.Trial) error {
			delivered++
			if delivered == 3 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= 100000 {
		t.Fatal("cancellation did not stop the stream")
	}
}

func TestEngineCallbackError(t *testing.T) {
	sentinel := errors.New("stop here")
	delivered := 0
	err := dispersion.Engine{Seed: 1}.Run(context.Background(),
		dispersion.Job{Process: "sequential", Spec: "complete:16", Trials: 1000},
		func(tr dispersion.Trial) error {
			delivered++
			if delivered == 5 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if delivered != 5 {
		t.Fatalf("delivered %d trials after error, want 5", delivered)
	}
}

func TestEngineTrialError(t *testing.T) {
	// Origin out of range: every trial fails; the first error surfaces.
	err := dispersion.Engine{Seed: 1}.Run(context.Background(),
		dispersion.Job{Process: "sequential", Spec: "complete:8", Origin: 99, Trials: 10}, nil)
	if err == nil {
		t.Fatal("invalid origin accepted")
	}
}

func TestEngineJobValidation(t *testing.T) {
	ctx := context.Background()
	cases := []dispersion.Job{
		{Process: "bogus", Spec: "complete:8", Trials: 1},
		{Process: "sequential", Trials: 1},                        // no graph, no spec
		{Process: "sequential", Spec: "complete:nope", Trials: 1}, // bad spec
		{Process: "sequential", Spec: "complete:8"},               // zero trials
		{Process: "sequential", Spec: "complete:8", Trials: -3},   // negative trials
	}
	for i, job := range cases {
		if err := (dispersion.Engine{}).Run(ctx, job, nil); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

// TestEngineNilCallback checks that results can be discarded.
func TestEngineNilCallback(t *testing.T) {
	if err := (dispersion.Engine{Seed: 3}).Run(context.Background(),
		dispersion.Job{Process: "parallel", Spec: "complete:16", Trials: 8}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEngineReuseResultsEquivalence: recycling result cells must never
// change what a callback observes trial by trial.
func TestEngineReuseResultsEquivalence(t *testing.T) {
	for _, process := range []string{"sequential", "uniform", "ct-uniform"} {
		job := dispersion.Job{Process: process, Spec: "torus:6x6", Trials: 30}
		sample := func(reuse bool) []float64 {
			eng := dispersion.Engine{Seed: 8, Experiment: 2, ReuseResults: reuse}
			var out []float64
			err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
				// Reduce inside the callback: under reuse the Result must
				// not be retained past the call.
				out = append(out, tr.Result.Makespan(), float64(tr.Result.TotalSteps))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		if !reflect.DeepEqual(sample(false), sample(true)) {
			t.Fatalf("%s: ReuseResults changed observed trial values", process)
		}
	}
}

// TestEngineSteadyStateZeroAllocs is the perf regression guard for the
// zero-allocation hot path: a non-Record job on a registered process,
// run with ReuseResults, must not allocate per trial in steady state.
// It is backed by the same allocation accounting as -benchmem
// (testing.BenchmarkResult.AllocsPerOp): the fixed per-run setup divides
// across b.N trials and the quotient must round to zero.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs a long steady-state run")
	}
	if raceEnabled {
		// The race detector makes sync.Pool drop items at random (to
		// widen race coverage), so per-trial allocation counts are not
		// meaningful under -race.
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	for _, process := range []string{
		"sequential", "parallel",
		"sequential-geom", "sequential-threshold", "capacity", "capacity-parallel",
	} {
		res := testing.Benchmark(func(b *testing.B) {
			eng := dispersion.Engine{Seed: 1, ReuseResults: true, Workers: 2}
			b.ReportAllocs()
			err := eng.Run(context.Background(), dispersion.Job{
				Process: process, Spec: "complete:64", Trials: b.N,
			}, func(dispersion.Trial) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
		})
		if res.N < 1000 {
			t.Fatalf("%s: benchmark harness ran only %d trials; too few to amortize setup", process, res.N)
		}
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Errorf("%s: steady-state engine loop allocates %d allocs/op (%d B/op), want 0",
				process, allocs, res.AllocedBytesPerOp())
		}
	}
}
