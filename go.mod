module dispersion

go 1.24
