package dispersion_test

import (
	"context"
	"fmt"
	"log"

	"dispersion"
	"dispersion/graphspec"
)

// The one-shot entry point: run a single realization of a registered
// process and inspect the merged result.
func ExampleRun() {
	g, err := graphspec.Build("complete:64", 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dispersion.Run("sequential", g, 0, 2019)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("process:", res.Process)
	fmt.Println("particles settled:", len(res.SettledAt)-res.Unsettled())
	fmt.Println("dispersion:", res.Dispersion)
	// Output:
	// process: sequential
	// particles settled: 64
	// dispersion: 89
}

// Engine.Sample runs many deterministic trials across all cores and
// reduces each to its makespan. The same seed gives the same samples for
// any Workers setting.
func ExampleEngine_Sample() {
	eng := dispersion.Engine{Seed: 7, Experiment: 1}
	xs, err := eng.Sample(context.Background(), dispersion.Job{
		Process: "parallel",
		Spec:    "torus:8x8",
		Trials:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(xs)
	// Output:
	// [188 266 272 125]
}

// Engine.Run streams full per-trial results in trial order without
// buffering the whole run, and stops early on context cancellation or a
// callback error.
func ExampleEngine_Run() {
	eng := dispersion.Engine{Seed: 3}
	err := eng.Run(context.Background(), dispersion.Job{
		Process: "ct-uniform",
		Spec:    "complete:32",
		Trials:  3,
	}, func(t dispersion.Trial) error {
		fmt.Printf("trial %d: time %.2f, total steps %d\n",
			t.Index, t.Result.Time, t.Result.TotalSteps)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// trial 0: time 65.80, total steps 137
	// trial 1: time 17.00, total steps 76
	// trial 2: time 53.57, total steps 124
}

// Options configure a run; the registry also exposes pre-composed lazy
// variants of every process.
func ExampleLookup() {
	p, err := dispersion.Lookup("lazy-seq")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name(), p.Continuous())
	// Output:
	// lazy-sequential false
}

func ExampleProcesses() {
	for _, name := range dispersion.Processes() {
		fmt.Println(name)
	}
	// Output:
	// capacity
	// capacity-parallel
	// ct-sequential
	// ct-uniform
	// lazy-capacity
	// lazy-capacity-parallel
	// lazy-ct-sequential
	// lazy-ct-uniform
	// lazy-parallel
	// lazy-sequential
	// lazy-sequential-geom
	// lazy-sequential-threshold
	// lazy-uniform
	// parallel
	// sequential
	// sequential-geom
	// sequential-threshold
	// uniform
}
