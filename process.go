package dispersion

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dispersion/internal/core"
)

// Process is one dispersion-process variant. Implementations are
// registered under a canonical name (plus aliases) and looked up with
// Lookup; the built-in registry covers the paper's five processes and
// their lazy variants.
type Process interface {
	// Name is the canonical registry name, e.g. "sequential".
	Name() string
	// Continuous reports whether results carry a real-valued clock
	// (Result.Time / Result.SettleTimes).
	Continuous() bool
	// Run executes one realization on g from origin, drawing randomness
	// from r. It must be deterministic given (g, origin, r state, opts).
	Run(g *Graph, origin int, r *Source, opts ...Option) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Process{}
	canonical  []string
)

// Register adds a process to the registry under its canonical name and
// any aliases. It panics on a duplicate name, mirroring database/sql.
func Register(p Process, aliases ...string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, name := range append([]string{p.Name()}, aliases...) {
		if _, dup := registry[name]; dup {
			panic("dispersion: duplicate process name " + name)
		}
		registry[name] = p
	}
	canonical = append(canonical, p.Name())
	sort.Strings(canonical)
}

// Lookup returns the process registered under name (canonical or alias).
func Lookup(name string) (Process, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("dispersion: unknown process %q (want one of %s)",
		name, strings.Join(canonical, "|"))
}

// Processes returns the canonical names of all registered processes in
// sorted order.
func Processes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), canonical...)
}

// coreProcess adapts one internal process function to the Process
// interface. forced options (e.g. laziness for the lazy variants) are
// applied before the caller's options.
type coreProcess struct {
	name       string
	continuous bool
	forced     []Option
	run        func(g *Graph, origin int, opt core.Options, r *Source) (*Result, error)
}

func (p *coreProcess) Name() string     { return p.name }
func (p *coreProcess) Continuous() bool { return p.continuous }

func (p *coreProcess) Run(g *Graph, origin int, r *Source, opts ...Option) (*Result, error) {
	opt := buildOptions(append(append([]Option(nil), p.forced...), opts...))
	res, err := p.run(g, origin, opt, r)
	if err != nil {
		return nil, err
	}
	res.Process = p.name
	return res, nil
}

// discrete adapts a discrete-time internal process.
func discrete(f func(*Graph, int, core.Options, *Source) (*core.Result, error)) func(*Graph, int, core.Options, *Source) (*Result, error) {
	return func(g *Graph, origin int, opt core.Options, r *Source) (*Result, error) {
		res, err := f(g, origin, opt, r)
		if err != nil {
			return nil, err
		}
		return newResult(res), nil
	}
}

// continuousTime adapts a continuous-time internal process.
func continuousTime(f func(*Graph, int, core.Options, *Source) (*core.CTResult, error)) func(*Graph, int, core.Options, *Source) (*Result, error) {
	return func(g *Graph, origin int, opt core.Options, r *Source) (*Result, error) {
		res, err := f(g, origin, opt, r)
		if err != nil {
			return nil, err
		}
		return newCTResult(res), nil
	}
}

func init() {
	variants := []struct {
		name       string
		aliases    []string
		continuous bool
		run        func(*Graph, int, core.Options, *Source) (*Result, error)
	}{
		{"sequential", []string{"seq"}, false, discrete(core.Sequential)},
		{"parallel", []string{"par"}, false, discrete(core.Parallel)},
		{"uniform", []string{"unif"}, false, discrete(core.Uniform)},
		{"ct-uniform", []string{"ctu"}, true, continuousTime(core.CTUniform)},
		{"ct-sequential", []string{"ctseq"}, true, continuousTime(core.CTSequential)},
	}
	for _, v := range variants {
		Register(&coreProcess{
			name:       v.name,
			continuous: v.continuous,
			run:        v.run,
		}, v.aliases...)
		// The lazy variants of Theorem 4.3: the same process with the
		// laziness option forced on.
		lazyAliases := make([]string, len(v.aliases))
		for i, a := range v.aliases {
			lazyAliases[i] = "lazy-" + a
		}
		Register(&coreProcess{
			name:       "lazy-" + v.name,
			continuous: v.continuous,
			forced:     []Option{WithLazy()},
			run:        v.run,
		}, lazyAliases...)
	}
}
