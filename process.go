package dispersion

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dispersion/internal/core"
)

// Process is one dispersion-process variant. Implementations are
// registered under a canonical name (plus aliases) and looked up with
// Lookup; the built-in registry covers the paper's five processes and
// their lazy variants.
type Process interface {
	// Name is the canonical registry name, e.g. "sequential".
	Name() string
	// Continuous reports whether results carry a real-valued clock
	// (Result.Time / Result.SettleTimes).
	Continuous() bool
	// Run executes one realization on g from origin, drawing randomness
	// from r. It must be deterministic given (g, origin, r state, opts).
	// The engine hands every trial a source it may retain.
	Run(g Graph, origin int, r *Source, opts ...Option) (*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Process{}
	canonical  []string
)

// Register adds a process to the registry under its canonical name and
// any aliases. It panics on a duplicate name, mirroring database/sql; use
// RegisterErr to handle collisions programmatically.
func Register(p Process, aliases ...string) {
	if err := RegisterErr(p, aliases...); err != nil {
		panic(err)
	}
}

// RegisterErr adds a process to the registry under its canonical name and
// any aliases, reporting a descriptive error instead of panicking when any
// of the names is already taken (or repeated in the arguments). On error
// the registry is left untouched: no subset of the names is registered.
func RegisterErr(p Process, aliases ...string) error {
	names := append([]string{p.Name()}, aliases...)
	registryMu.Lock()
	defer registryMu.Unlock()
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if _, dup := registry[name]; dup {
			return fmt.Errorf("dispersion: process name %q already registered (process %q)",
				name, registry[name].Name())
		}
		if seen[name] {
			return fmt.Errorf("dispersion: process %q repeats the name %q", p.Name(), name)
		}
		seen[name] = true
	}
	for _, name := range names {
		registry[name] = p
	}
	canonical = append(canonical, p.Name())
	sort.Strings(canonical)
	return nil
}

// Lookup returns the process registered under name (canonical or alias).
func Lookup(name string) (Process, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("dispersion: unknown process %q (want one of %s)",
		name, strings.Join(canonical, "|"))
}

// Processes returns the canonical names of all registered processes in
// sorted order.
func Processes() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), canonical...)
}

// coreProcess adapts one internal *Into process function to the Process
// interface. forced options (e.g. laziness for the lazy variants) are
// applied before the caller's options. The single runInto entry point
// serves both the one-shot Run below and the engine's zero-allocation
// hot path, which threads a per-worker Scratch and a recycled result cell
// through it.
type coreProcess struct {
	name       string
	continuous bool
	forced     []Option
	runInto    func(g Graph, origin int, opt core.Options, r *Source, s *core.Scratch, ct *core.CTResult) error
	// lane names the process's batched settlement law; LaneNone (the zero
	// value) marks a process WithBatch cannot accelerate.
	lane core.LaneVariant
}

func (p *coreProcess) Name() string     { return p.name }
func (p *coreProcess) Continuous() bool { return p.continuous }

func (p *coreProcess) Run(g Graph, origin int, r *Source, opts ...Option) (*Result, error) {
	opt := buildOptions(append(append([]Option(nil), p.forced...), opts...))
	if opt.Batch != 0 {
		// One-shot batched run: a width-1 lane whose slot stream is
		// seeded by one draw from r — deterministic given r's state, and
		// the same code path the engine batches.
		if p.lane == core.LaneNone {
			return nil, fmt.Errorf("dispersion: process %q has no batched form (WithBatch covers the Sequential-family processes)", p.name)
		}
		var cr core.Result
		if err := core.RunLane(g, origin, opt, p.lane, []uint64{r.Uint64()}, nil, []*core.Result{&cr}); err != nil {
			return nil, err
		}
		res := new(Result)
		res.setCoreResult(&cr, p.name)
		return res, nil
	}
	var ct core.CTResult
	if err := p.runInto(g, origin, opt, r, nil, &ct); err != nil {
		return nil, err
	}
	res := new(Result)
	res.setCore(&ct, p.name, p.continuous)
	return res, nil
}

// discreteInto adapts a discrete-time internal process to the shared
// continuous-time result layout (the clock fields stay untouched and are
// masked off by setCore).
func discreteInto(f func(Graph, int, core.Options, *Source, *core.Scratch, *core.Result) error) func(Graph, int, core.Options, *Source, *core.Scratch, *core.CTResult) error {
	return func(g Graph, origin int, opt core.Options, r *Source, s *core.Scratch, ct *core.CTResult) error {
		return f(g, origin, opt, r, s, &ct.Result)
	}
}

func init() {
	variants := []struct {
		name       string
		aliases    []string
		continuous bool
		runInto    func(Graph, int, core.Options, *Source, *core.Scratch, *core.CTResult) error
		lane       core.LaneVariant
	}{
		{"sequential", []string{"seq"}, false, discreteInto(core.SequentialInto), core.LaneStandard},
		{"parallel", []string{"par"}, false, discreteInto(core.ParallelInto), core.LaneNone},
		{"uniform", []string{"unif"}, false, discreteInto(core.UniformInto), core.LaneNone},
		{"ct-uniform", []string{"ctu"}, true, core.CTUniformInto, core.LaneNone},
		{"ct-sequential", []string{"ctseq"}, true, core.CTSequentialInto, core.LaneNone},
		// The Proposition A.1 modified settle rules, parameterized by
		// WithSettleParam, and the capacity-c (k-particles-per-vertex)
		// load-balancing generalization, parameterized by WithCapacity.
		{"sequential-geom", []string{"geom"}, false, discreteInto(core.SequentialGeomInto), core.LaneGeom},
		{"sequential-threshold", []string{"thresh"}, false, discreteInto(core.SequentialThresholdInto), core.LaneThreshold},
		{"capacity", []string{"cap"}, false, discreteInto(core.CapacitySequentialInto), core.LaneCapacity},
		{"capacity-parallel", []string{"cap-par"}, false, discreteInto(core.CapacityParallelInto), core.LaneNone},
	}
	for _, v := range variants {
		Register(&coreProcess{
			name:       v.name,
			continuous: v.continuous,
			runInto:    v.runInto,
			lane:       v.lane,
		}, v.aliases...)
		// The lazy variants of Theorem 4.3: the same process with the
		// laziness option forced on.
		lazyAliases := make([]string, len(v.aliases))
		for i, a := range v.aliases {
			lazyAliases[i] = "lazy-" + a
		}
		Register(&coreProcess{
			name:       "lazy-" + v.name,
			continuous: v.continuous,
			forced:     []Option{WithLazy()},
			runInto:    v.runInto,
			lane:       v.lane,
		}, lazyAliases...)
	}
}
