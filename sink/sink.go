package sink

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"

	"dispersion"
)

// Writer consumes one trial at a time, in the strict trial order
// Engine.Run delivers them.
type Writer interface {
	// Write records one trial. Implementations may retain t.Result: the
	// engine hands over ownership and never reuses or mutates a
	// delivered Result.
	Write(t dispersion.Trial) error
}

// Tee adapts any number of writers into a single Engine.Run callback: each
// trial is written to every writer in argument order, stopping at (and
// returning) the first error, which also aborts the run.
func Tee(ws ...Writer) func(dispersion.Trial) error {
	return func(t dispersion.Trial) error {
		for _, w := range ws {
			if err := w.Write(t); err != nil {
				return err
			}
		}
		return nil
	}
}

// Record is the wire form of one trial in the JSONL format — and, line by
// line, the NDJSON schema of the dispersion server's results stream.
type Record struct {
	// Trial is the trial index in [0, Trials).
	Trial int `json:"trial"`
	// Result is the trial's full outcome.
	Result *dispersion.Result `json:"result"`
}

// JSONL writes one Record per line. It is the lossless sink: ReadJSONL
// reproduces the written trials exactly.
type JSONL struct {
	enc *json.Encoder
}

// NewJSONL returns a JSONL sink writing to w. Every Write emits one
// complete line; no flushing is needed beyond what w itself buffers.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write appends one trial as a JSON line.
func (s *JSONL) Write(t dispersion.Trial) error {
	return s.enc.Encode(Record{Trial: t.Index, Result: t.Result})
}

// ReadJSONL reads back a JSONL stream written by a JSONL sink (or by the
// dispersion server's results endpoint), returning the trials in file
// order. Lines have no size limit: records carrying full trajectories
// (WithRecord) can grow arbitrarily large. Records written before the
// Capacity field existed read back with Capacity 1, the per-vertex
// capacity every pre-capacity process ran under (matching ReadCSV).
func ReadJSONL(r io.Reader) ([]dispersion.Trial, error) {
	var out []dispersion.Trial
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, rerr
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec Record
			if err := json.Unmarshal(trimmed, &rec); err != nil {
				return nil, fmt.Errorf("sink: bad JSONL record %d: %w", len(out), err)
			}
			if rec.Result != nil && rec.Result.Capacity == 0 {
				rec.Result.Capacity = 1
			}
			out = append(out, dispersion.Trial{Index: rec.Trial, Result: rec.Result})
		}
		if rerr == io.EOF {
			return out, nil
		}
	}
}

// csvColumns is the fixed CSV header; Row fields mirror it in order.
var csvColumns = []string{
	"trial", "process", "continuous", "makespan",
	"dispersion", "total_steps", "time", "truncated", "unsettled", "capacity",
}

// Row is the scalar per-trial summary the CSV sink writes: everything a
// statistics pass over many trials needs, with the slice-valued Result
// fields dropped.
type Row struct {
	// Trial is the trial index in [0, Trials).
	Trial int
	// Process is the canonical process name from the Result.
	Process string
	// Continuous mirrors Result.Continuous.
	Continuous bool
	// Makespan is Result.Makespan(): the dispersion time on the process's
	// natural scale.
	Makespan float64
	// Dispersion mirrors Result.Dispersion.
	Dispersion int64
	// TotalSteps mirrors Result.TotalSteps.
	TotalSteps int64
	// Time mirrors Result.Time (zero for discrete processes).
	Time float64
	// Truncated mirrors Result.Truncated.
	Truncated bool
	// Unsettled is Result.Unsettled(): particles left unsettled, nonzero
	// only for truncated runs.
	Unsettled int
	// Capacity mirrors Result.Capacity: the per-vertex capacity the run
	// executed under (1 for the unit-capacity processes).
	Capacity int
}

// CSV writes one Row per trial under a fixed header. Call Flush after the
// run to force buffered rows out and observe any deferred write error.
type CSV struct {
	w          *csv.Writer
	headerDone bool
}

// NewCSV returns a CSV sink writing to w. The header row is emitted by
// the first Write, so an aborted zero-trial run leaves w untouched.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: csv.NewWriter(w)}
}

// Write appends one trial's scalar summary row.
func (s *CSV) Write(t dispersion.Trial) error {
	if !s.headerDone {
		if err := s.w.Write(csvColumns); err != nil {
			return err
		}
		s.headerDone = true
	}
	res := t.Result
	return s.w.Write([]string{
		strconv.Itoa(t.Index),
		res.Process,
		strconv.FormatBool(res.Continuous),
		formatFloat(res.Makespan()),
		strconv.FormatInt(res.Dispersion, 10),
		strconv.FormatInt(res.TotalSteps, 10),
		formatFloat(res.Time),
		strconv.FormatBool(res.Truncated),
		strconv.Itoa(res.Unsettled()),
		strconv.Itoa(res.Capacity),
	})
}

// Flush writes any buffered rows and returns the first error encountered
// by any Write or by the flush itself.
func (s *CSV) Flush() error {
	s.w.Flush()
	return s.w.Error()
}

// formatFloat renders a float with the shortest representation that
// round-trips exactly, so ReadCSV recovers the written value bit for bit.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ReadCSV reads back a file written by a CSV sink, returning the rows in
// file order. It validates the header. Files written before the capacity
// column existed are still accepted: their rows read back with Capacity 1,
// the per-vertex capacity every pre-capacity process ran under.
func ReadCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // header length decides; parseRow validates rows
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, nil
	}
	legacy := slices.Equal(records[0], csvColumns[:len(csvColumns)-1])
	if !legacy && !slices.Equal(records[0], csvColumns) {
		return nil, fmt.Errorf("sink: unexpected CSV header %q", records[0])
	}
	out := make([]Row, 0, len(records)-1)
	for i, rec := range records[1:] {
		row, err := parseRow(rec, legacy)
		if err != nil {
			return nil, fmt.Errorf("sink: bad CSV row %d: %w", i, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func parseRow(rec []string, legacy bool) (Row, error) {
	want := len(csvColumns)
	if legacy {
		want--
	}
	if len(rec) != want {
		return Row{}, fmt.Errorf("want %d fields, got %d", want, len(rec))
	}
	var (
		row Row
		err error
	)
	if row.Trial, err = strconv.Atoi(rec[0]); err != nil {
		return Row{}, err
	}
	row.Process = rec[1]
	if row.Continuous, err = strconv.ParseBool(rec[2]); err != nil {
		return Row{}, err
	}
	if row.Makespan, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return Row{}, err
	}
	if row.Dispersion, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
		return Row{}, err
	}
	if row.TotalSteps, err = strconv.ParseInt(rec[5], 10, 64); err != nil {
		return Row{}, err
	}
	if row.Time, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return Row{}, err
	}
	if row.Truncated, err = strconv.ParseBool(rec[7]); err != nil {
		return Row{}, err
	}
	if row.Unsettled, err = strconv.Atoi(rec[8]); err != nil {
		return Row{}, err
	}
	if legacy {
		row.Capacity = 1
		return row, nil
	}
	if row.Capacity, err = strconv.Atoi(rec[9]); err != nil {
		return Row{}, err
	}
	return row, nil
}
