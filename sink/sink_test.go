package sink_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"dispersion"
	"dispersion/sink"
)

// run collects a job's trials in memory while teeing them through the
// given writers, via the same callback path production code uses.
func run(t *testing.T, job dispersion.Job, ws ...sink.Writer) []dispersion.Trial {
	t.Helper()
	var got []dispersion.Trial
	eng := dispersion.Engine{Seed: 11, Experiment: 5}
	each := sink.Tee(ws...)
	err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
		got = append(got, tr)
		return each(tr)
	})
	if err != nil {
		t.Fatalf("Engine.Run: %v", err)
	}
	return got
}

// A JSONL round trip must reproduce the in-memory results exactly, for
// discrete and continuous-time processes alike.
func TestJSONLRoundTrip(t *testing.T) {
	for _, process := range []string{"sequential", "ct-uniform"} {
		var buf bytes.Buffer
		job := dispersion.Job{Process: process, Spec: "cycle:24", Trials: 8}
		want := run(t, job, sink.NewJSONL(&buf))
		got, err := sink.ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("%s: ReadJSONL: %v", process, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: JSONL round trip diverged\n got %+v\nwant %+v", process, got, want)
		}
	}
}

// The CSV round trip preserves every scalar column.
func TestCSVRoundTrip(t *testing.T) {
	for _, process := range []string{"parallel", "capacity"} {
		var buf bytes.Buffer
		cw := sink.NewCSV(&buf)
		job := dispersion.Job{Process: process, Spec: "complete:32", Trials: 10}
		want := run(t, job, cw)
		if err := cw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		rows, err := sink.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("ReadCSV: %v", err)
		}
		if len(rows) != len(want) {
			t.Fatalf("got %d rows, want %d", len(rows), len(want))
		}
		for i, row := range rows {
			res := want[i].Result
			ref := sink.Row{
				Trial:      want[i].Index,
				Process:    res.Process,
				Continuous: res.Continuous,
				Makespan:   res.Makespan(),
				Dispersion: res.Dispersion,
				TotalSteps: res.TotalSteps,
				Time:       res.Time,
				Truncated:  res.Truncated,
				Unsettled:  res.Unsettled(),
				Capacity:   res.Capacity,
			}
			if row != ref {
				t.Errorf("%s row %d: got %+v, want %+v", process, i, row, ref)
			}
			wantCap := 1
			if process == "capacity" {
				wantCap = 2
			}
			if row.Capacity != wantCap {
				t.Errorf("%s row %d: capacity column %d, want %d", process, i, row.Capacity, wantCap)
			}
		}
	}
}

// Files written before the capacity column existed still read back, with
// Capacity defaulted to 1.
func TestCSVLegacyHeader(t *testing.T) {
	legacy := "trial,process,continuous,makespan,dispersion,total_steps,time,truncated,unsettled\n" +
		"0,parallel,false,188,188,1122,0,false,0\n" +
		"1,sequential,false,95,95,431,0,false,0\n"
	rows, err := sink.ReadCSV(bytes.NewReader([]byte(legacy)))
	if err != nil {
		t.Fatalf("ReadCSV legacy: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, row := range rows {
		if row.Capacity != 1 {
			t.Errorf("row %d: Capacity = %d, want the pre-capacity default 1", i, row.Capacity)
		}
	}
	if rows[1].Process != "sequential" || rows[1].Dispersion != 95 {
		t.Errorf("legacy row parsed wrong: %+v", rows[1])
	}
}

// Pre-capacity JSONL records (no Capacity field) read back with the same
// default 1 as legacy CSVs.
func TestJSONLLegacyCapacity(t *testing.T) {
	legacy := `{"trial":0,"result":{"Process":"parallel","Dispersion":7,"TotalSteps":21}}` + "\n"
	trials, err := sink.ReadJSONL(bytes.NewReader([]byte(legacy)))
	if err != nil {
		t.Fatalf("ReadJSONL legacy: %v", err)
	}
	if len(trials) != 1 || trials[0].Result.Capacity != 1 {
		t.Errorf("legacy record read as %+v, want Capacity 1", trials[0].Result)
	}
}

// A CSV sink that never saw a trial leaves its writer untouched; reading
// an empty stream yields no rows.
func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	cw := sink.NewCSV(&buf)
	if err := cw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty CSV sink wrote %q", buf.String())
	}
	rows, err := sink.ReadCSV(&buf)
	if err != nil || len(rows) != 0 {
		t.Errorf("ReadCSV on empty input: rows=%v err=%v", rows, err)
	}
}

// Tee writes to every writer in order and propagates the first error.
func TestTee(t *testing.T) {
	var a, b bytes.Buffer
	job := dispersion.Job{Process: "uniform", Spec: "path:16", Trials: 3}
	run(t, job, sink.NewJSONL(&a), sink.NewJSONL(&b))
	if a.String() != b.String() {
		t.Error("teed JSONL writers diverged")
	}
	got, err := sink.ReadJSONL(&a)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != 3 {
		t.Errorf("got %d trials, want 3", len(got))
	}
}
