package sink_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"dispersion"
	"dispersion/sink"
)

// run collects a job's trials in memory while teeing them through the
// given writers, via the same callback path production code uses.
func run(t *testing.T, job dispersion.Job, ws ...sink.Writer) []dispersion.Trial {
	t.Helper()
	var got []dispersion.Trial
	eng := dispersion.Engine{Seed: 11, Experiment: 5}
	each := sink.Tee(ws...)
	err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
		got = append(got, tr)
		return each(tr)
	})
	if err != nil {
		t.Fatalf("Engine.Run: %v", err)
	}
	return got
}

// A JSONL round trip must reproduce the in-memory results exactly, for
// discrete and continuous-time processes alike.
func TestJSONLRoundTrip(t *testing.T) {
	for _, process := range []string{"sequential", "ct-uniform"} {
		var buf bytes.Buffer
		job := dispersion.Job{Process: process, Spec: "cycle:24", Trials: 8}
		want := run(t, job, sink.NewJSONL(&buf))
		got, err := sink.ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("%s: ReadJSONL: %v", process, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: JSONL round trip diverged\n got %+v\nwant %+v", process, got, want)
		}
	}
}

// The CSV round trip preserves every scalar column.
func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cw := sink.NewCSV(&buf)
	job := dispersion.Job{Process: "parallel", Spec: "complete:32", Trials: 10}
	want := run(t, job, cw)
	if err := cw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rows, err := sink.ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		res := want[i].Result
		ref := sink.Row{
			Trial:      want[i].Index,
			Process:    res.Process,
			Continuous: res.Continuous,
			Makespan:   res.Makespan(),
			Dispersion: res.Dispersion,
			TotalSteps: res.TotalSteps,
			Time:       res.Time,
			Truncated:  res.Truncated,
			Unsettled:  res.Unsettled(),
		}
		if row != ref {
			t.Errorf("row %d: got %+v, want %+v", i, row, ref)
		}
	}
}

// A CSV sink that never saw a trial leaves its writer untouched; reading
// an empty stream yields no rows.
func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	cw := sink.NewCSV(&buf)
	if err := cw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty CSV sink wrote %q", buf.String())
	}
	rows, err := sink.ReadCSV(&buf)
	if err != nil || len(rows) != 0 {
		t.Errorf("ReadCSV on empty input: rows=%v err=%v", rows, err)
	}
}

// Tee writes to every writer in order and propagates the first error.
func TestTee(t *testing.T) {
	var a, b bytes.Buffer
	job := dispersion.Job{Process: "uniform", Spec: "path:16", Trials: 3}
	run(t, job, sink.NewJSONL(&a), sink.NewJSONL(&b))
	if a.String() != b.String() {
		t.Error("teed JSONL writers diverged")
	}
	got, err := sink.ReadJSONL(&a)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != 3 {
		t.Errorf("got %d trials, want 3", len(got))
	}
}
