package sink_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"dispersion"
	"dispersion/sink"
)

// A CSV sink plugs straight into Engine.Run as the streaming callback;
// Tee lets the same run feed several sinks (or a sink plus in-memory
// collection) at once.
func ExampleNewCSV() {
	var buf bytes.Buffer
	cw := sink.NewCSV(&buf)
	eng := dispersion.Engine{Seed: 7, Experiment: 1}
	err := eng.Run(context.Background(), dispersion.Job{
		Process: "parallel",
		Spec:    "torus:8x8",
		Trials:  4,
	}, sink.Tee(cw))
	if err != nil {
		log.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		fmt.Println(line)
	}
	// Output:
	// trial,process,continuous,makespan,dispersion,total_steps,time,truncated,unsettled,capacity
	// 0,parallel,false,188,188,1122,0,false,0,1
	// 1,parallel,false,266,266,1098,0,false,0,1
	// 2,parallel,false,272,272,996,0,false,0,1
	// 3,parallel,false,125,125,862,0,false,0,1
}

// JSONL is the lossless sink: ReadJSONL reproduces the full Result of
// every trial, in order.
func ExampleReadJSONL() {
	var buf bytes.Buffer
	eng := dispersion.Engine{Seed: 3}
	err := eng.Run(context.Background(), dispersion.Job{
		Process: "ct-uniform",
		Spec:    "complete:32",
		Trials:  3,
	}, sink.Tee(sink.NewJSONL(&buf)))
	if err != nil {
		log.Fatal(err)
	}
	trials, err := sink.ReadJSONL(&buf)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range trials {
		fmt.Printf("trial %d: time %.2f, total steps %d\n",
			t.Index, t.Result.Time, t.Result.TotalSteps)
	}
	// Output:
	// trial 0: time 65.80, total steps 137
	// trial 1: time 17.00, total steps 76
	// trial 2: time 53.57, total steps 124
}
