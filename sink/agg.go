package sink

import (
	"encoding/json"
	"fmt"
	"io"

	"dispersion"
	"dispersion/agg"
)

// Aggregator is the streaming-aggregation sink: instead of persisting
// trials it folds each Result into an agg.Summary, so a million-trial
// run retains kilobytes. It reads only scalar Result fields and retains
// nothing, which makes it safe under Engine.ReuseResults — the one sink
// in this package that is.
//
// Like the other sinks, an Aggregator is not safe for concurrent Write
// calls; Engine.Run delivers trials from a single goroutine.
type Aggregator struct {
	sum *agg.Summary
}

// NewAggregator returns an aggregator folding into a fresh summary with
// default sketch parameters.
func NewAggregator() *Aggregator {
	return &Aggregator{sum: agg.NewSummary()}
}

// NewAggregatorWith returns an aggregator folding into a fresh summary
// with the given sketch parameters.
func NewAggregatorWith(cfg agg.Config) *Aggregator {
	return &Aggregator{sum: cfg.NewSummary()}
}

// Write folds one trial into the summary.
func (a *Aggregator) Write(t dispersion.Trial) error {
	a.sum.Add(t.Result)
	return nil
}

// Summary returns the summary aggregated so far. The caller may keep
// folding via Write afterwards; the returned pointer always reflects
// the latest state.
func (a *Aggregator) Summary() *agg.Summary {
	return a.sum
}

// WriteSummary writes a summary to w as a single indented JSON
// document, the same rendering the dispersion server's summary endpoint
// returns.
func WriteSummary(w io.Writer, s *agg.Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSummary reads back a summary written by WriteSummary (or fetched
// from the server's summary endpoint).
func ReadSummary(r io.Reader) (*agg.Summary, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := new(agg.Summary)
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("sink: bad summary JSON: %w", err)
	}
	return s, nil
}
