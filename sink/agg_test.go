package sink_test

import (
	"bytes"
	"context"
	"math"
	"sort"
	"testing"

	"dispersion"
	"dispersion/agg"
	"dispersion/sink"
)

// The Aggregator must produce the same summary whether it rides a
// normal run or a reuse-results run, and its statistics must agree with
// an offline pass over the identical trial set.
func TestAggregatorMatchesOfflineStats(t *testing.T) {
	job := dispersion.Job{Process: "sequential", Spec: "complete:16", Trials: 200}
	ag := sink.NewAggregator()
	trials := run(t, job, ag)
	s := ag.Summary()

	if s.Trials != int64(len(trials)) || s.Process != "sequential" {
		t.Fatalf("summary identity: %q over %d trials, want sequential over %d", s.Process, s.Trials, len(trials))
	}
	makespans := make([]float64, len(trials))
	var totals float64
	for i, tr := range trials {
		makespans[i] = tr.Result.Makespan()
		totals += float64(tr.Result.TotalSteps)
	}
	sort.Float64s(makespans)
	var sum float64
	for _, m := range makespans {
		sum += m
	}
	mean := sum / float64(len(makespans))
	if math.Abs(s.Makespan.Moments.Mean()-mean) > 1e-9*mean {
		t.Errorf("makespan mean %v, offline %v", s.Makespan.Moments.Mean(), mean)
	}
	if got := s.TotalSteps.Moments.Sum(); got != totals {
		t.Errorf("total-steps sum %v, offline %v", got, totals)
	}
	q50 := s.Makespan.Quantiles.Query(0.5)
	wantQ50 := makespans[99]
	if math.Abs(q50-wantQ50) > 2*agg.DefaultAlpha*wantQ50 {
		t.Errorf("q50 %v far from offline %v", q50, wantQ50)
	}

	// The same job under ReuseResults must fold to byte-identical state:
	// the aggregator reads scalars only and retains nothing.
	reuse := sink.NewAggregator()
	eng := dispersion.Engine{Seed: 11, Experiment: 5, ReuseResults: true}
	if err := eng.Run(context.Background(), job, sink.Tee(reuse)); err != nil {
		t.Fatalf("Engine.Run(reuse): %v", err)
	}
	var a, b bytes.Buffer
	if err := sink.WriteSummary(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteSummary(&b, reuse.Summary()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("reuse-results summary differs from ownership-transfer summary")
	}
}

func TestSummaryFileRoundTrip(t *testing.T) {
	ag := sink.NewAggregatorWith(agg.Config{Alpha: 0.02})
	run(t, dispersion.Job{Process: "parallel", Spec: "star:12", Trials: 20}, ag)

	var buf bytes.Buffer
	if err := sink.WriteSummary(&buf, ag.Summary()); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := sink.ReadSummary(&buf)
	if err != nil {
		t.Fatalf("ReadSummary: %v", err)
	}
	var again bytes.Buffer
	if err := sink.WriteSummary(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Errorf("summary file round trip changed the bytes:\n%s\n%s", first, again.Bytes())
	}
	if _, err := sink.ReadSummary(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("ReadSummary accepted truncated JSON")
	}
}
