// Package sink persists per-trial dispersion results as they stream out
// of an Engine.Run callback, so experiments at scale do not re-implement
// collection.
//
// Two formats are provided, both written one record per trial in strict
// trial order:
//
//   - JSONL ("NDJSON"): one Record — the trial index plus the full
//     dispersion.Result — as a JSON object per line. This is the lossless
//     format; it is also the wire schema the dispersion HTTP server
//     streams from GET /v1/jobs/{id}/results.
//   - CSV: one Row of scalar per-trial summaries (makespan, dispersion,
//     total steps, ...) per line, for spreadsheets and plotting. Slices
//     (per-particle steps, trajectories) are not representable in CSV and
//     are dropped.
//
// A third sink keeps nothing per trial: Aggregator folds each Result
// into a mergeable agg.Summary (moments, quantile sketch, makespan
// histogram), so arbitrarily long runs retain kilobytes. It is the only
// sink safe under Engine.ReuseResults. WriteSummary and ReadSummary
// persist summaries as JSON.
//
// Writers implement the one-method Writer interface; Tee fans a single
// Engine.Run callback out to any number of them:
//
//	cw := sink.NewCSV(f)
//	err := eng.Run(ctx, job, sink.Tee(cw))
//	// ...
//	cw.Flush()
//
// ReadJSONL and ReadCSV read files back for verification and resumption;
// a JSONL round trip reproduces the in-memory results exactly.
package sink
