package graphspec

import (
	"reflect"
	"testing"

	"dispersion/internal/graph"
)

func TestBuildValid(t *testing.T) {
	cases := []struct {
		spec  string
		wantN int
	}{
		{"path:10", 10},
		{"cycle:12", 12},
		{"complete:8", 8},
		{"star:9", 9},
		{"hypercube:4", 16},
		{"bintree:4", 15},
		{"lollipop:10", 10},
		{"hair:9", 9},
		{"pimple:12,4", 12},
		{"treepath:3,4", 11},
		{"grid:3x4", 12},
		{"torus:4x4x4", 64},
		{"regular:16,3", 16},
		{"gnp:30,0.4", 30},
		{"tree:25", 25},
		{"circulant:20,1,3", 20},
		{"rregular:24,4", 24},
		{"wcomplete:8,0.5", 8},
		{"wcomplete:6,-1", 6},
		{"wcycle:12,3", 12},
	}
	for _, c := range cases {
		g, err := Build(c.spec, 1)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("%s: N = %d, want %d", c.spec, g.N(), c.wantN)
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", c.spec)
		}
	}
}

func TestBuildDeterministicRandomFamilies(t *testing.T) {
	a, err := Build("regular:32,3", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("regular:32,3", 7)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := graph.Materialize(a)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := graph.Materialize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ac.Edges(), bc.Edges()) {
		t.Fatal("same seed, different graphs")
	}
}

func TestBuildInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "nosep", "unknown:5", "path:abc", "pimple:5", "gnp:10",
		"gnp:10,notafloat", "grid:3xq", "regular:7,3", // odd n*d
		"circulant:12", "circulant:8,0", "circulant:8,5", // offset > n/2
		"circulant:12,3,6,3",                            // repeated offset
		"rregular:16", "rregular:16,3", "rregular:16,0", // odd / zero degree
		"wcomplete:8", "wcomplete:8,x", "wcomplete:1,1", "wcomplete:8,nan",
		"wcycle:2,1", "wcycle:5,-1", "wcycle:5,0", "wcycle:5,+Inf",
	} {
		if _, err := Build(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("torus:16x16")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "torus" || s.Args != "16x16" {
		t.Errorf("Parse = %+v", s)
	}
	if s.String() != "torus:16x16" {
		t.Errorf("String() = %q", s.String())
	}
	if s.Random() {
		t.Error("torus reported as random family")
	}
	if _, err := Parse("bogus:1"); err == nil {
		t.Error("unknown kind accepted at parse time")
	}
	if _, err := Parse("noseparator"); err == nil {
		t.Error("separator-free spec accepted")
	}
}

func TestRandomFamilies(t *testing.T) {
	for spec, want := range map[string]bool{
		"regular:16,3": true, "gnp:10,0.5": true, "tree:12": true,
		"rregular:16,4": true,
		"complete:8":    false, "grid:3x3": false, "circulant:8,1": false,
		"wcomplete:8,1": false, "wcycle:8,2": false,
	} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if s.Random() != want {
			t.Errorf("%s: Random() = %v, want %v", spec, s.Random(), want)
		}
	}
}

func TestKinds(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != len(builders) {
		t.Fatalf("Kinds() has %d entries, want %d", len(kinds), len(builders))
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatal("Kinds() not sorted")
		}
	}
	for _, k := range kinds {
		if _, ok := builders[k]; !ok {
			t.Errorf("Kinds() lists unknown %q", k)
		}
	}
}
