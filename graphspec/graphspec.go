// Package graphspec parses the compact textual graph-family specs used
// across the command-line tools and the public dispersion facade:
//
//	path:N  cycle:N  complete:N  star:N  hypercube:K  bintree:LEVELS
//	lollipop:N  hair:N  pimple:N,H  treepath:LEVELS,PATHLEN
//	grid:AxB[xC...]  torus:AxB[xC...]  circulant:N,S1[,S2...]
//	regular:N,D  rregular:N,D  gnp:N,P  tree:N
//	wcomplete:N,ALPHA  wcycle:N,B
//
// The w-prefixed kinds build weighted graphs (graph.WeightedCSR) whose
// walks draw neighbors in proportion to per-edge weights through Walker
// alias tables: wcomplete weights edge {u,v} by ((u+1)(v+1))^ALPHA, and
// wcycle gives the cycle's odd-vertex edges weight B against 1.
//
// A spec names a graph family and its parameters; random families
// (regular, rregular, gnp, tree) are drawn deterministically from a
// caller-supplied seed, so the same (spec, seed) pair always builds the
// same graph.
//
// Because the spec carries the family's full structure, Build can choose
// the graph backend without constructing edges: generated families whose
// adjacency is pure arithmetic (torus, circulant, rregular, and the
// complete/cycle/path closed forms, plus cache-hostile hypercubes) come
// back as adjacency-free implicit graphs in O(1) memory, while irregular
// constructions and the rejection-sampled random families (regular, gnp,
// tree) build CSR adjacency as before. The backends are step-for-step
// bit-identical, so the choice never changes a simulation's sample path.
//
// Parse performs the syntax split and validates the family name; Build
// constructs the graph. The one-shot helper Build(spec, seed) does both.
package graphspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Spec is a parsed graph specification: a family name and its raw
// argument string. The zero Spec is invalid.
type Spec struct {
	// Kind is the graph family, e.g. "complete" or "torus".
	Kind string
	// Args is the family's raw argument string, e.g. "128" or "16x16".
	Args string
}

// String renders the spec back to its textual kind:args form.
func (s Spec) String() string { return s.Kind + ":" + s.Args }

// Random reports whether the family is drawn from the seed (regular,
// rregular, gnp, tree) rather than being a deterministic construction.
func (s Spec) Random() bool {
	b, ok := builders[s.Kind]
	return ok && b.random
}

// Parse splits a textual spec into a Spec, validating the family name.
// Argument values are validated by Build.
func Parse(spec string) (Spec, error) {
	kind, args, ok := strings.Cut(spec, ":")
	if !ok {
		return Spec{}, fmt.Errorf("graphspec: spec %q needs kind:args", spec)
	}
	if _, known := builders[kind]; !known {
		return Spec{}, fmt.Errorf("graphspec: unknown graph kind %q (want one of %s)",
			kind, strings.Join(Kinds(), "|"))
	}
	return Spec{Kind: kind, Args: args}, nil
}

// Build constructs the graph described by the spec. Random families are
// drawn deterministically from seed; deterministic families ignore it.
func (s Spec) Build(seed uint64) (graph.Graph, error) {
	b, ok := builders[s.Kind]
	if !ok {
		return nil, fmt.Errorf("graphspec: unknown graph kind %q", s.Kind)
	}
	return b.build(s, rng.New(seed))
}

// Build is the one-shot helper: Parse followed by Spec.Build.
func Build(spec string, seed uint64) (graph.Graph, error) {
	s, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(seed)
}

// Kinds returns the known family names in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// builder couples a family's constructor with whether it consumes the seed.
type builder struct {
	random bool
	build  func(s Spec, r *rng.Source) (graph.Graph, error)
}

var builders = map[string]builder{
	"path": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		if n >= 2 {
			return graph.ImplicitPath(n), nil
		}
		return graph.Path(n), nil
	}},
	"cycle": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		if n >= 3 {
			return graph.ImplicitCycle(n), nil
		}
		return graph.Cycle(n), nil
	}},
	"complete": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		if n >= 2 {
			return graph.ImplicitComplete(n), nil
		}
		return graph.Complete(n), nil
	}},
	"hypercube": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		k, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		// Small hypercubes walk faster on a cache-resident CSR adjacency
		// (see the footprint gate in internal/graph); large ones go
		// implicit, which is also the only way to fit k >= 27 in RAM.
		if k >= 1 && k <= 30 && !graph.HypercubePrefersCSR(k) {
			return graph.ImplicitHypercube(k), nil
		}
		return graph.Hypercube(k), nil
	}},
	"star":     {build: intArg(graph.Star)},
	"bintree":  {build: intArg(graph.CompleteBinaryTree)},
	"lollipop": {build: intArg(graph.Lollipop)},
	"hair":     {build: intArg(graph.CliqueWithHair)},
	"pimple": {build: intPairArg("N,H", func(n, h int) *graph.CSR {
		return graph.CliqueWithHairOnPimple(n, h)
	})},
	"treepath": {build: intPairArg("LEVELS,PATHLEN", func(lv, pl int) *graph.CSR {
		return graph.BinaryTreeWithPath(lv, pl)
	})},
	"grid":  {build: gridArg},
	"torus": {build: gridArg},
	"circulant": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		vs, err := ints(s, s.Args, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) < 2 {
			return nil, fmt.Errorf("graphspec: circulant wants N,S1[,S2...]")
		}
		return graph.ImplicitCirculant(vs[0], vs[1:])
	}},
	"regular": {random: true, build: func(s Spec, r *rng.Source) (graph.Graph, error) {
		vs, err := ints(s, s.Args, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("graphspec: regular wants N,D")
		}
		return graph.RandomRegular(vs[0], vs[1], r)
	}},
	"rregular": {random: true, build: func(s Spec, r *rng.Source) (graph.Graph, error) {
		vs, err := ints(s, s.Args, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("graphspec: rregular wants N,D")
		}
		// The permutation seed is a fixed function of the build seed, so
		// (spec, seed) pins the instance like every other random family.
		return graph.ImplicitRandomRegular(vs[0], vs[1], r.Uint64())
	}},
	"gnp": {random: true, build: func(s Spec, r *rng.Source) (graph.Graph, error) {
		nStr, pStr, ok := strings.Cut(s.Args, ",")
		if !ok {
			return nil, fmt.Errorf("graphspec: gnp wants N,P")
		}
		n, err := atoi(s, nStr)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(pStr), 64)
		if err != nil {
			return nil, fmt.Errorf("graphspec: bad probability %q", pStr)
		}
		return graph.GNP(n, p, r)
	}},
	"tree": {random: true, build: func(s Spec, r *rng.Source) (graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(n, r), nil
	}},
	"wcomplete": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		n, alpha, err := intFloatArgs(s, "N,ALPHA")
		if err != nil {
			return nil, err
		}
		return graph.WeightedComplete(n, alpha)
	}},
	"wcycle": {build: func(s Spec, _ *rng.Source) (graph.Graph, error) {
		n, bias, err := intFloatArgs(s, "N,B")
		if err != nil {
			return nil, err
		}
		return graph.WeightedCycle(n, bias)
	}},
}

// intFloatArgs splits an "INT,FLOAT" argument pair, the shape of the
// weighted-family parameters.
func intFloatArgs(s Spec, want string) (int, float64, error) {
	nStr, fStr, ok := strings.Cut(s.Args, ",")
	if !ok {
		return 0, 0, fmt.Errorf("graphspec: %s wants %s", s.Kind, want)
	}
	n, err := atoi(s, nStr)
	if err != nil {
		return 0, 0, err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(fStr), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("graphspec: bad float %q in spec %q", fStr, s.String())
	}
	return n, f, nil
}

func atoi(s Spec, v string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("graphspec: bad integer %q in spec %q", v, s.String())
	}
	return n, nil
}

func ints(s Spec, v, sep string) ([]int, error) {
	parts := strings.Split(v, sep)
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := atoi(s, p)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// intArg adapts a single-integer CSR constructor.
func intArg(ctor func(int) *graph.CSR) func(Spec, *rng.Source) (graph.Graph, error) {
	return func(s Spec, _ *rng.Source) (graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		return ctor(n), nil
	}
}

// intPairArg adapts a two-integer CSR constructor.
func intPairArg(want string, ctor func(a, b int) *graph.CSR) func(Spec, *rng.Source) (graph.Graph, error) {
	return func(s Spec, _ *rng.Source) (graph.Graph, error) {
		vs, err := ints(s, s.Args, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("graphspec: %s wants %s", s.Kind, want)
		}
		return ctor(vs[0], vs[1]), nil
	}
}

func gridArg(s Spec, _ *rng.Source) (graph.Graph, error) {
	sides, err := ints(s, s.Args, "x")
	if err != nil {
		return nil, err
	}
	if s.Kind == "torus" {
		// The torus is the flagship implicit family: the spec's sides are
		// all Build needs, so no adjacency is ever constructed. Shapes
		// the implicit backend cannot express (no effective dimension, or
		// more than it can buffer) fall back to the CSR Grid, which
		// applies the same side validations.
		if g, err := graph.ImplicitTorus(sides); err == nil {
			return g, nil
		}
		return graph.Grid(sides, true), nil
	}
	return graph.Grid(sides, false), nil
}
