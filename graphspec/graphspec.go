// Package graphspec parses the compact textual graph-family specs used
// across the command-line tools and the public dispersion facade:
//
//	path:N  cycle:N  complete:N  star:N  hypercube:K  bintree:LEVELS
//	lollipop:N  hair:N  pimple:N,H  treepath:LEVELS,PATHLEN
//	grid:AxB[xC...]  torus:AxB[xC...]  regular:N,D  gnp:N,P  tree:N
//
// A spec names a graph family and its parameters; random families
// (regular, gnp, tree) are drawn deterministically from a caller-supplied
// seed, so the same (spec, seed) pair always builds the same graph.
//
// Parse performs the syntax split and validates the family name; Build
// constructs the graph. The one-shot helper Build(spec, seed) does both.
package graphspec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Spec is a parsed graph specification: a family name and its raw
// argument string. The zero Spec is invalid.
type Spec struct {
	// Kind is the graph family, e.g. "complete" or "torus".
	Kind string
	// Args is the family's raw argument string, e.g. "128" or "16x16".
	Args string
}

// String renders the spec back to its textual kind:args form.
func (s Spec) String() string { return s.Kind + ":" + s.Args }

// Random reports whether the family is drawn from the seed (regular, gnp,
// tree) rather than being a deterministic construction.
func (s Spec) Random() bool {
	b, ok := builders[s.Kind]
	return ok && b.random
}

// Parse splits a textual spec into a Spec, validating the family name.
// Argument values are validated by Build.
func Parse(spec string) (Spec, error) {
	kind, args, ok := strings.Cut(spec, ":")
	if !ok {
		return Spec{}, fmt.Errorf("graphspec: spec %q needs kind:args", spec)
	}
	if _, known := builders[kind]; !known {
		return Spec{}, fmt.Errorf("graphspec: unknown graph kind %q (want one of %s)",
			kind, strings.Join(Kinds(), "|"))
	}
	return Spec{Kind: kind, Args: args}, nil
}

// Build constructs the graph described by the spec. Random families are
// drawn deterministically from seed; deterministic families ignore it.
func (s Spec) Build(seed uint64) (*graph.Graph, error) {
	b, ok := builders[s.Kind]
	if !ok {
		return nil, fmt.Errorf("graphspec: unknown graph kind %q", s.Kind)
	}
	return b.build(s, rng.New(seed))
}

// Build is the one-shot helper: Parse followed by Spec.Build.
func Build(spec string, seed uint64) (*graph.Graph, error) {
	s, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(seed)
}

// Kinds returns the known family names in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// builder couples a family's constructor with whether it consumes the seed.
type builder struct {
	random bool
	build  func(s Spec, r *rng.Source) (*graph.Graph, error)
}

var builders = map[string]builder{
	"path":      {build: intArg(graph.Path)},
	"cycle":     {build: intArg(graph.Cycle)},
	"complete":  {build: intArg(graph.Complete)},
	"star":      {build: intArg(graph.Star)},
	"hypercube": {build: intArg(graph.Hypercube)},
	"bintree":   {build: intArg(graph.CompleteBinaryTree)},
	"lollipop":  {build: intArg(graph.Lollipop)},
	"hair":      {build: intArg(graph.CliqueWithHair)},
	"pimple": {build: intPairArg("N,H", func(n, h int) *graph.Graph {
		return graph.CliqueWithHairOnPimple(n, h)
	})},
	"treepath": {build: intPairArg("LEVELS,PATHLEN", func(lv, pl int) *graph.Graph {
		return graph.BinaryTreeWithPath(lv, pl)
	})},
	"grid":  {build: gridArg},
	"torus": {build: gridArg},
	"regular": {random: true, build: func(s Spec, r *rng.Source) (*graph.Graph, error) {
		vs, err := ints(s, s.Args, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("graphspec: regular wants N,D")
		}
		return graph.RandomRegular(vs[0], vs[1], r)
	}},
	"gnp": {random: true, build: func(s Spec, r *rng.Source) (*graph.Graph, error) {
		nStr, pStr, ok := strings.Cut(s.Args, ",")
		if !ok {
			return nil, fmt.Errorf("graphspec: gnp wants N,P")
		}
		n, err := atoi(s, nStr)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(pStr), 64)
		if err != nil {
			return nil, fmt.Errorf("graphspec: bad probability %q", pStr)
		}
		return graph.GNP(n, p, r)
	}},
	"tree": {random: true, build: func(s Spec, r *rng.Source) (*graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(n, r), nil
	}},
}

func atoi(s Spec, v string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("graphspec: bad integer %q in spec %q", v, s.String())
	}
	return n, nil
}

func ints(s Spec, v, sep string) ([]int, error) {
	parts := strings.Split(v, sep)
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := atoi(s, p)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// intArg adapts a single-integer constructor.
func intArg(ctor func(int) *graph.Graph) func(Spec, *rng.Source) (*graph.Graph, error) {
	return func(s Spec, _ *rng.Source) (*graph.Graph, error) {
		n, err := atoi(s, s.Args)
		if err != nil {
			return nil, err
		}
		return ctor(n), nil
	}
}

// intPairArg adapts a two-integer constructor.
func intPairArg(want string, ctor func(a, b int) *graph.Graph) func(Spec, *rng.Source) (*graph.Graph, error) {
	return func(s Spec, _ *rng.Source) (*graph.Graph, error) {
		vs, err := ints(s, s.Args, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("graphspec: %s wants %s", s.Kind, want)
		}
		return ctor(vs[0], vs[1]), nil
	}
}

func gridArg(s Spec, _ *rng.Source) (*graph.Graph, error) {
	sides, err := ints(s, s.Args, "x")
	if err != nil {
		return nil, err
	}
	return graph.Grid(sides, s.Kind == "torus"), nil
}
