package graphspec_test

import (
	"testing"

	"dispersion/graphspec"
)

// FuzzParse fuzzes the graph-spec parser: it must never panic, and every
// accepted spec must round-trip through Spec.String — parsing the rendered
// form reproduces the same Spec. (Argument validation belongs to Build, so
// the round trip is purely syntactic.)
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"complete:128", "path:4", "cycle:0", "star:-1", "hypercube:16",
		"grid:4x4", "torus:8x8x8", "regular:512,4", "gnp:64,0.5", "tree:33",
		"pimple:96,4", "treepath:10,32", "bintree:9", "lollipop:32", "hair:96",
		"", ":", "complete", "complete:", ":128", "torus:4x4:extra",
		"complete:1:2", "gnp:64,0.5,9", "unknown:1", "COMPLETE:8", "torus:4xx4",
		// Implicit-backend syntaxes: the circulant offset list and the
		// seeded random-regular family, plus malformed variants.
		"circulant:256,1,7,31", "circulant:12,3,6", "circulant:9,",
		"circulant:8,1,1", "circulant:7,-2", "circulant:2,1,x",
		"rregular:1000000,4", "rregular:30,3", "rregular:16,", "rregular:,4",
		"rregular:16,4,9", "torus:1024x1024", "torus:0x4", "torus:2x2",
		// Weighted-family syntaxes: float parameters, plus malformed
		// variants (missing comma, bad float, non-positive weights).
		"wcomplete:64,0.5", "wcomplete:8,-1", "wcomplete:8,0", "wcomplete:8",
		"wcomplete:8,nan", "wcomplete:8,inf", "wcomplete:,1", "wcomplete:8,1,2",
		"wcycle:4096,3", "wcycle:9,0.25", "wcycle:5,", "wcycle:5,-2",
		"wcycle:2,1", "wcycle:x,1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := graphspec.Parse(spec)
		if err != nil {
			return
		}
		rendered := s.String()
		s2, err := graphspec.Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) accepted but re-parsing its String %q failed: %v", spec, rendered, err)
		}
		if s2 != s {
			t.Fatalf("round trip diverged: Parse(%q) = %+v, Parse(%q) = %+v", spec, s, rendered, s2)
		}
	})
}
