// Package walk provides the random-walk execution engine: single-step
// kernels for simple and lazy walks, trajectory recording, Monte-Carlo
// estimators for cover and hitting times, and a deterministic parallel
// trial runner used by every experiment.
package walk

import (
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Step advances a simple random walk one step from v: a uniformly random
// neighbour of v. It is the hot inner loop of every simulation and
// dispatches through the step kernel the graph selected at Build time
// (closed-form for arithmetic families, fused CSR otherwise); the draws
// consumed are bit-identical to the historical Degree+Neighbor lookup.
// Loops stepping many times should hoist g.Kernel() and call it directly.
func Step(g *graph.CSR, v int32, r *rng.Source) int32 {
	return g.Kernel().Step(v, r)
}

// LazyStep advances a lazy random walk one step: with probability 1/2 the
// walk stays put, otherwise it moves to a uniform neighbour.
func LazyStep(g *graph.CSR, v int32, r *rng.Source) int32 {
	if r.Bool() {
		return v
	}
	return Step(g, v, r)
}

// Trajectory records the full vertex sequence of a simple random walk of
// the given number of steps, including the start (so the result has
// steps+1 entries).
func Trajectory(g *graph.CSR, start int, steps int, r *rng.Source) []int32 {
	kern := g.Kernel()
	traj := make([]int32, steps+1)
	traj[0] = int32(start)
	v := int32(start)
	for i := 1; i <= steps; i++ {
		v = kern.Step(v, r)
		traj[i] = v
	}
	return traj
}

// HitTime runs a simple random walk from start until it first reaches
// target, returning the number of steps taken. maxSteps caps runaway
// walks; on expiry it returns maxSteps and false.
func HitTime(g *graph.CSR, start, target int, maxSteps int64, r *rng.Source) (int64, bool) {
	kern := g.Kernel()
	v := int32(start)
	var t int64
	for v != int32(target) {
		if t >= maxSteps {
			return maxSteps, false
		}
		v = kern.Step(v, r)
		t++
	}
	return t, true
}

// HitSetTime runs a simple random walk from start until it first reaches
// any vertex with inSet true.
func HitSetTime(g *graph.CSR, start int, inSet []bool, maxSteps int64, r *rng.Source) (int64, bool) {
	kern := g.Kernel()
	v := int32(start)
	var t int64
	for !inSet[v] {
		if t >= maxSteps {
			return maxSteps, false
		}
		v = kern.Step(v, r)
		t++
	}
	return t, true
}

// CoverTime runs a simple random walk from start until every vertex has
// been visited, returning the number of steps. maxSteps caps the walk.
func CoverTime(g *graph.CSR, start int, maxSteps int64, r *rng.Source) (int64, bool) {
	kern := g.Kernel()
	visited := make([]bool, g.N())
	visited[start] = true
	remaining := g.N() - 1
	v := int32(start)
	var t int64
	for remaining > 0 {
		if t >= maxSteps {
			return maxSteps, false
		}
		v = kern.Step(v, r)
		t++
		if !visited[v] {
			visited[v] = true
			remaining--
		}
	}
	return t, true
}

// MultiCoverTime runs k independent simple random walks from start in
// lockstep rounds until their union of visited vertices covers the graph,
// returning the number of rounds. This is the "cover time of multiple
// random walks" the paper's introduction contrasts with dispersion: the
// walks here never settle, so their trajectory lengths are all equal —
// none of the dispersion process's correlations arise.
func MultiCoverTime(g *graph.CSR, start, k int, maxRounds int64, r *rng.Source) (int64, bool) {
	kern := g.Kernel()
	visited := make([]bool, g.N())
	visited[start] = true
	remaining := g.N() - 1
	pos := make([]int32, k)
	for i := range pos {
		pos[i] = int32(start)
	}
	var t int64
	for remaining > 0 {
		if t >= maxRounds {
			return maxRounds, false
		}
		t++
		for i := range pos {
			pos[i] = kern.Step(pos[i], r)
			if !visited[pos[i]] {
				visited[pos[i]] = true
				remaining--
			}
		}
	}
	return t, true
}
