package walk

import (
	"math"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
)

func TestStepStaysOnNeighbors(t *testing.T) {
	g := graph.Lollipop(13)
	r := rng.New(1)
	v := int32(0)
	for i := 0; i < 10000; i++ {
		u := Step(g, v, r)
		if !g.HasEdge(int(v), int(u)) {
			t.Fatalf("step %d -> %d is not an edge", v, u)
		}
		v = u
	}
}

func TestLazyStepHalfStays(t *testing.T) {
	g := graph.Cycle(8)
	r := rng.New(2)
	stays := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if LazyStep(g, 3, r) == 3 {
			stays++
		}
	}
	if math.Abs(float64(stays)-trials/2) > 5*math.Sqrt(trials)/2 {
		t.Fatalf("lazy walk stayed %d of %d times, want ~half", stays, trials)
	}
}

func TestStepUniformOverNeighbors(t *testing.T) {
	g := graph.Star(5) // centre 0 with 4 leaves
	r := rng.New(3)
	counts := map[int32]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[Step(g, 0, r)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-trials/4) > 5*math.Sqrt(trials)*0.5 {
			t.Errorf("neighbour %d drawn %d times, want ~%d", v, c, trials/4)
		}
	}
}

func TestTrajectoryShape(t *testing.T) {
	g := graph.Path(6)
	traj := Trajectory(g, 2, 50, rng.New(4))
	if len(traj) != 51 || traj[0] != 2 {
		t.Fatalf("trajectory len %d start %d", len(traj), traj[0])
	}
	for i := 1; i < len(traj); i++ {
		if !g.HasEdge(int(traj[i-1]), int(traj[i])) {
			t.Fatalf("trajectory step %d invalid", i)
		}
	}
}

func TestHitTimeMatchesAnalytic(t *testing.T) {
	g := graph.Path(10)
	hit, err := markov.NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	want := hit.Hit(0, 5) // = 25
	rn := NewRunner(7, 1)
	res := rn.Run(4000, func(_ int, r *rng.Source) float64 {
		steps, ok := HitTime(g, 0, 5, 1<<20, r)
		if !ok {
			t.Error("hit time capped")
		}
		return float64(steps)
	})
	var sum float64
	for _, v := range res {
		sum += v
	}
	mean := sum / float64(len(res))
	if math.Abs(mean-want) > 0.08*want {
		t.Errorf("simulated hit time %.2f, analytic %.2f", mean, want)
	}
}

func TestHitSetTime(t *testing.T) {
	g := graph.Cycle(12)
	inSet := make([]bool, 12)
	inSet[6] = true
	inSet[3] = true
	steps, ok := HitSetTime(g, 0, inSet, 1<<20, rng.New(5))
	if !ok || steps < 1 {
		t.Fatalf("HitSetTime = %d ok=%v", steps, ok)
	}
	// Simulated mean vs dense solve.
	hs, err := markov.HitSetFrom(g, []int{3, 6}, false)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(9, 2)
	res := rn.Run(4000, func(_ int, r *rng.Source) float64 {
		s, _ := HitSetTime(g, 0, inSet, 1<<20, r)
		return float64(s)
	})
	var sum float64
	for _, v := range res {
		sum += v
	}
	mean := sum / float64(len(res))
	if math.Abs(mean-hs[0]) > 0.1*hs[0]+0.2 {
		t.Errorf("simulated set hit %.2f, analytic %.2f", mean, hs[0])
	}
}

func TestHitTimeCap(t *testing.T) {
	g := graph.Path(50)
	steps, ok := HitTime(g, 0, 49, 10, rng.New(6))
	if ok || steps != 10 {
		t.Fatalf("cap not honoured: steps=%d ok=%v", steps, ok)
	}
}

func TestCoverTimeCompleteCouponCollector(t *testing.T) {
	n := 32
	g := graph.Complete(n)
	rn := NewRunner(11, 3)
	res := rn.Run(3000, func(_ int, r *rng.Source) float64 {
		steps, ok := CoverTime(g, 0, 1<<24, r)
		if !ok {
			t.Error("cover capped")
		}
		return float64(steps)
	})
	var sum float64
	for _, v := range res {
		sum += v
	}
	mean := sum / float64(len(res))
	// Coupon collector on K_n: ~ (n-1) H_{n-1}.
	want := 0.0
	for k := 1; k <= n-1; k++ {
		want += float64(n-1) / float64(k)
	}
	if math.Abs(mean-want) > 0.08*want {
		t.Errorf("K_%d cover time %.1f, want ~%.1f", n, mean, want)
	}
}

func TestMultiCoverFasterThanSingle(t *testing.T) {
	// k walks cover at least as fast as one (speed-up is the point of
	// multi-walk covering; the paper contrasts it with dispersion).
	g := graph.Cycle(32)
	rn := NewRunner(21, 8)
	single := rn.Run(300, func(_ int, r *rng.Source) float64 {
		s, _ := CoverTime(g, 0, 1<<30, r)
		return float64(s)
	})
	rn2 := NewRunner(21, 9)
	multi := rn2.Run(300, func(_ int, r *rng.Source) float64 {
		s, _ := MultiCoverTime(g, 0, 8, 1<<30, r)
		return float64(s)
	})
	var s1, s8 float64
	for i := range single {
		s1 += single[i]
		s8 += multi[i]
	}
	if s8 >= s1/2 {
		t.Errorf("8 walks cover in %.0f rounds vs single %.0f steps: no speed-up", s8/300, s1/300)
	}
}

func TestMultiCoverSingleWalkMatchesCoverTime(t *testing.T) {
	// k = 1 must agree with CoverTime in distribution; compare means.
	g := graph.Complete(16)
	rn := NewRunner(22, 10)
	a := rn.Run(2000, func(_ int, r *rng.Source) float64 {
		s, _ := CoverTime(g, 0, 1<<30, r)
		return float64(s)
	})
	rn2 := NewRunner(22, 11)
	b := rn2.Run(2000, func(_ int, r *rng.Source) float64 {
		s, _ := MultiCoverTime(g, 0, 1, 1<<30, r)
		return float64(s)
	})
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	if math.Abs(ma-mb) > 0.1*ma {
		t.Errorf("k=1 multi-cover mean %.1f vs cover %.1f", mb, ma)
	}
}

func TestMultiCoverCap(t *testing.T) {
	g := graph.Path(64)
	rounds, ok := MultiCoverTime(g, 0, 2, 5, rng.New(1))
	if ok || rounds != 5 {
		t.Fatalf("cap not honoured: %d %v", rounds, ok)
	}
}

func TestRunnerDeterminism(t *testing.T) {
	g := graph.Cycle(16)
	run := func() []float64 {
		rn := NewRunner(42, 9)
		return rn.Run(64, func(_ int, r *rng.Source) float64 {
			s, _ := HitTime(g, 0, 8, 1<<20, r)
			return float64(s)
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runner not deterministic at trial %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunnerDeterminismAcrossWorkerCounts(t *testing.T) {
	g := graph.Path(12)
	run := func(workers int) []float64 {
		rn := NewRunner(5, 4)
		rn.SetWorkers(workers)
		return rn.Run(32, func(_ int, r *rng.Source) float64 {
			s, _ := HitTime(g, 0, 11, 1<<20, r)
			return float64(s)
		})
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results depend on worker count at trial %d", i)
		}
	}
}

func TestRunPairsAligned(t *testing.T) {
	rn := NewRunner(3, 5)
	a, b := rn.RunPairs(100, func(i int, r *rng.Source) (float64, float64) {
		x := float64(r.Intn(1000))
		return x, x + float64(i)
	})
	for i := range a {
		if b[i]-a[i] != float64(i) {
			t.Fatalf("pair misaligned at %d", i)
		}
	}
}
