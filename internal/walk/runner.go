package walk

import (
	"runtime"
	"sync"

	"dispersion/internal/rng"
)

// Runner executes independent Monte-Carlo trials across all cores with
// fully deterministic per-trial randomness: trial i always receives the
// stream Split(experimentID, i) of the root source, so results are
// reproducible regardless of GOMAXPROCS or scheduling order.
type Runner struct {
	root         *rng.Source
	experimentID uint64
	workers      int
}

// NewRunner returns a Runner rooted at the given seed. experimentID
// namespaces the trial streams so different experiments sharing a seed do
// not correlate.
func NewRunner(seed, experimentID uint64) *Runner {
	return &Runner{
		root:         rng.New(seed),
		experimentID: experimentID,
		workers:      runtime.GOMAXPROCS(0),
	}
}

// SetWorkers overrides the degree of parallelism (useful in tests).
func (rn *Runner) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	rn.workers = w
}

// Run executes fn for trials independent trials and returns the results in
// trial order. fn must be safe to call concurrently with distinct sources.
func (rn *Runner) Run(trials int, fn func(trial int, r *rng.Source) float64) []float64 {
	out := make([]float64, trials)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := rn.workers
	if workers > trials {
		workers = trials
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= trials {
					return
				}
				out[i] = fn(i, rn.root.Split(rn.experimentID, uint64(i)))
			}
		}()
	}
	wg.Wait()
	return out
}

// RunPairs is Run for trial functions producing two paired values (e.g.
// the sequential and parallel dispersion time under a shared coupling).
func (rn *Runner) RunPairs(trials int, fn func(trial int, r *rng.Source) (float64, float64)) ([]float64, []float64) {
	a := make([]float64, trials)
	b := make([]float64, trials)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := rn.workers
	if workers > trials {
		workers = trials
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= trials {
					return
				}
				a[i], b[i] = fn(i, rn.root.Split(rn.experimentID, uint64(i)))
			}
		}()
	}
	wg.Wait()
	return a, b
}
