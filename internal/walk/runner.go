package walk

import (
	"context"
	"runtime"
	"sync"

	"dispersion/internal/rng"
)

// Runner executes independent Monte-Carlo trials across all cores with
// fully deterministic per-trial randomness: trial i always receives the
// stream Split(experimentID, i) of the root source, so results are
// reproducible regardless of GOMAXPROCS or scheduling order.
type Runner struct {
	root         *rng.Source
	experimentID uint64
	workers      int
}

// NewRunner returns a Runner rooted at the given seed. experimentID
// namespaces the trial streams so different experiments sharing a seed do
// not correlate.
func NewRunner(seed, experimentID uint64) *Runner {
	return &Runner{
		root:         rng.New(seed),
		experimentID: experimentID,
		workers:      runtime.GOMAXPROCS(0),
	}
}

// SetWorkers overrides the degree of parallelism (useful in tests).
func (rn *Runner) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	rn.workers = w
}

// Workers returns the configured degree of parallelism.
func (rn *Runner) Workers() int { return rn.workers }

// TrialSeed returns the seed of trial i's split stream — the same
// (experimentID, i) derivation SplitInto reseeds workers with. The
// engine's batched path seeds lane slots with it, tying every batched
// trial to the same (seed, experiment, trial) lineage as its scalar
// counterpart. It only reads the root source, so concurrent calls are
// safe alongside the worker reseeds.
func (rn *Runner) TrialSeed(i int) uint64 {
	return rn.root.SplitSeed(rn.experimentID, uint64(i))
}

// streamed carries one trial outcome from a worker to the collector.
type streamed[T any] struct {
	trial int
	v     T
	err   error
}

// Stream runs fn for trials independent trials across the runner's worker
// pool and delivers every result to each in strict trial order. The trial
// randomness is the same split stream Run uses, so the sequence of values
// delivered is identical for any worker count.
//
// Unlike Run, Stream does not materialize all results: workers may run at
// most a small window ahead of the delivery cursor, so memory stays
// bounded no matter how many trials are requested. fn must be safe to
// call concurrently with distinct sources, and r is valid only for the
// duration of the call — each worker reseeds one local generator per
// trial, so a retained pointer would be overwritten by the worker's next
// trial. each is always called from a single goroutine.
//
// The first error — from ctx, fn, or each — stops the stream and is
// returned; trials past the failure point may never run. Once every
// trial has been delivered successfully, Stream returns nil even if ctx
// is cancelled afterwards.
func Stream[T any](ctx context.Context, rn *Runner, trials int,
	fn func(trial int, r *rng.Source) (T, error),
	each func(trial int, v T) error) error {
	return StreamFrom(ctx, rn, 0, trials, fn, each)
}

// StreamFrom is Stream with an offset claim cursor: it runs the trial
// range [first, first+trials) instead of [0, trials). Trial i still
// draws the split stream Split(experimentID, i), so the results of an
// offset range are bit-identical to the corresponding slice of one
// contiguous [0, n) stream — this is what lets trial ranges shard
// across jobs and machines. first must be non-negative. As with Stream,
// fn must not retain r past the call.
func StreamFrom[T any](ctx context.Context, rn *Runner, first, trials int,
	fn func(trial int, r *rng.Source) (T, error),
	each func(trial int, v T) error) error {
	return StreamState(ctx, rn, first, trials,
		func() struct{} { return struct{}{} },
		func(trial int, r *rng.Source, _ struct{}) (T, error) { return fn(trial, r) },
		each)
}

// StreamState is StreamFrom with per-worker scratch state: newState runs
// once inside each worker goroutine and its value is handed to every fn
// call that worker makes. It is the hook through which the engine threads
// a reusable per-worker Scratch (occupancy stamps, position buffers, event
// heaps) so steady-state trials allocate nothing; any worker-affine
// resource (arena, profiler, connection) threads the same way.
//
// The per-trial randomness is unchanged: trial i's source is reseeded from
// the split stream (experimentID, i) — bit-identical to the Source that
// Split would return, but written into a worker-local generator so the hot
// path performs no per-trial allocation.
//
// fn must not retain r or the state value past the call for types shared
// across calls; each trial is always called from a single goroutine.
func StreamState[T, S any](ctx context.Context, rn *Runner, first, trials int,
	newState func() S,
	fn func(trial int, r *rng.Source, state S) (T, error),
	each func(trial int, v T) error) error {
	if trials <= 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	end := first + trials
	workers := rn.workers
	if workers > trials {
		workers = trials
	}
	// Tokens bound how far completed-but-undelivered trials can run ahead
	// of the delivery cursor; the collector refunds one per delivery.
	window := 4 * workers
	if window > trials {
		window = trials
	}
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	results := make(chan streamed[T], window)
	next := first
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			var src rng.Source
			for {
				select {
				case <-ctx.Done():
					return
				case <-tokens:
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= end {
					return
				}
				rn.root.SplitInto(&src, rn.experimentID, uint64(i))
				v, err := fn(i, &src, state)
				results <- streamed[T]{trial: i, v: v, err: err}
				if err != nil {
					cancel()
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector. To keep the error path deterministic too, a trial
	// failure does not discard earlier successes: trial indices are
	// claimed in order, so every trial below the lowest failing index is
	// already in flight and will arrive; each of them is still delivered
	// before the failing trial's error is returned. A callback error
	// stops delivery at that point instead.
	var firstErr error
	failIdx := end // lowest trial index that failed (or delivery cut-off)
	pending := make(map[int]T, window)
	deliver := first
	for res := range results {
		if res.err != nil {
			if res.trial < failIdx {
				failIdx = res.trial
				firstErr = res.err
			}
			continue
		}
		pending[res.trial] = res.v
		for deliver < failIdx {
			v, ok := pending[deliver]
			if !ok {
				break
			}
			delete(pending, deliver)
			if err := each(deliver, v); err != nil {
				firstErr = err
				failIdx = deliver
				cancel()
				break
			}
			deliver++
			tokens <- struct{}{}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if deliver >= end {
		// Every trial was delivered; a parent-context cancellation that
		// landed after the last delivery is not an error of this stream.
		return nil
	}
	return ctx.Err()
}

// Run executes fn for trials independent trials and returns the results in
// trial order. fn must be safe to call concurrently with distinct sources.
func (rn *Runner) Run(trials int, fn func(trial int, r *rng.Source) float64) []float64 {
	out := make([]float64, trials)
	// fn and each cannot fail and the context is never cancelled, so
	// Stream cannot return an error here.
	_ = Stream(context.Background(), rn, trials,
		func(i int, r *rng.Source) (float64, error) { return fn(i, r), nil },
		func(i int, v float64) error { out[i] = v; return nil })
	return out
}

// RunPairs is Run for trial functions producing two paired values (e.g.
// the sequential and parallel dispersion time under a shared coupling).
func (rn *Runner) RunPairs(trials int, fn func(trial int, r *rng.Source) (float64, float64)) ([]float64, []float64) {
	a := make([]float64, trials)
	b := make([]float64, trials)
	_ = Stream(context.Background(), rn, trials,
		func(i int, r *rng.Source) ([2]float64, error) {
			x, y := fn(i, r)
			return [2]float64{x, y}, nil
		},
		func(i int, v [2]float64) error { a[i], b[i] = v[0], v[1]; return nil })
	return a, b
}
