package walk

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"dispersion/internal/rng"
)

// TestStreamOrderAndDeterminism checks that Stream delivers results in
// strict trial order with per-trial split streams, independent of the
// worker count.
func TestStreamOrderAndDeterminism(t *testing.T) {
	const trials = 200
	sample := func(workers int) []float64 {
		rn := NewRunner(42, 7)
		rn.SetWorkers(workers)
		out := make([]float64, 0, trials)
		err := Stream(context.Background(), rn, trials,
			func(i int, r *rng.Source) (float64, error) {
				return float64(i)*1e9 + float64(r.Intn(1000)), nil
			},
			func(i int, v float64) error {
				if i != len(out) {
					t.Fatalf("delivery out of order: got %d, want %d", i, len(out))
				}
				out = append(out, v)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := sample(1)
	for _, w := range []int{2, 4, 16} {
		if got := sample(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("results differ between 1 worker and %d workers", w)
		}
	}
}

// TestStreamMatchesRun pins Stream's trial streams to Run's.
func TestStreamMatchesRun(t *testing.T) {
	const trials = 64
	fn := func(i int, r *rng.Source) float64 { return r.Float64() }
	want := NewRunner(3, 9).Run(trials, fn)
	got := make([]float64, trials)
	err := Stream(context.Background(), NewRunner(3, 9), trials,
		func(i int, r *rng.Source) (float64, error) { return fn(i, r), nil },
		func(i int, v float64) error { got[i] = v; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Stream and Run disagree on the same (seed, experiment)")
	}
}

func TestStreamFnError(t *testing.T) {
	sentinel := errors.New("trial exploded")
	rn := NewRunner(1, 1)
	rn.SetWorkers(4)
	delivered := 0
	err := Stream(context.Background(), rn, 1000,
		func(i int, r *rng.Source) (int, error) {
			if i == 10 {
				return 0, sentinel
			}
			return i, nil
		},
		func(i int, v int) error { delivered++; return nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// The error path is deterministic too: every trial below the failing
	// index is delivered, nothing at or past it.
	if delivered != 10 {
		t.Fatalf("delivered %d results, want exactly the 10 below the failing trial", delivered)
	}
}

func TestStreamEachError(t *testing.T) {
	sentinel := errors.New("consumer is full")
	rn := NewRunner(1, 1)
	rn.SetWorkers(4)
	delivered := 0
	err := Stream(context.Background(), rn, 1000,
		func(i int, r *rng.Source) (int, error) { return i, nil },
		func(i int, v int) error {
			delivered++
			if delivered == 7 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if delivered != 7 {
		t.Fatalf("delivered %d results after consumer error, want 7", delivered)
	}
}

func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rn := NewRunner(1, 1)
	rn.SetWorkers(2)
	delivered := 0
	err := Stream(ctx, rn, 1<<30,
		func(i int, r *rng.Source) (int, error) { return i, nil },
		func(i int, v int) error {
			delivered++
			if delivered == 5 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= 1<<20 {
		t.Fatal("cancellation did not stop the stream promptly")
	}
}

// TestStreamFromMatchesSlice checks the sharding invariant: an offset
// range delivers results bit-identical to the corresponding slice of one
// contiguous stream, for any worker count.
func TestStreamFromMatchesSlice(t *testing.T) {
	const total = 100
	fn := func(i int, r *rng.Source) (float64, error) {
		return float64(i)*1e9 + float64(r.Intn(1000)), nil
	}
	whole := make([]float64, 0, total)
	if err := Stream(context.Background(), NewRunner(8, 3), total, fn,
		func(i int, v float64) error { whole = append(whole, v); return nil }); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ first, trials, workers int }{
		{0, 100, 2}, {0, 37, 1}, {37, 40, 3}, {77, 23, 8}, {99, 1, 4},
	} {
		rn := NewRunner(8, 3)
		rn.SetWorkers(tc.workers)
		got := make([]float64, 0, tc.trials)
		err := StreamFrom(context.Background(), rn, tc.first, tc.trials, fn,
			func(i int, v float64) error {
				if want := tc.first + len(got); i != want {
					t.Fatalf("delivery out of order: got trial %d, want %d", i, want)
				}
				got = append(got, v)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if want := whole[tc.first : tc.first+tc.trials]; !reflect.DeepEqual(got, want) {
			t.Fatalf("range [%d,%d) with %d workers diverged from the contiguous slice",
				tc.first, tc.first+tc.trials, tc.workers)
		}
	}
}

// TestStreamNoSpuriousCancelError is the regression test for the tail of
// Stream: a parent cancellation that lands after the last trial has been
// delivered must not turn a fully successful stream into an error.
func TestStreamNoSpuriousCancelError(t *testing.T) {
	const trials = 50
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rn := NewRunner(1, 1)
	rn.SetWorkers(4)
	delivered := 0
	err := Stream(ctx, rn, trials,
		func(i int, r *rng.Source) (int, error) { return i, nil },
		func(i int, v int) error {
			delivered++
			if i == trials-1 {
				// The caller cancels as soon as it has everything — the
				// natural shape of a consumer that got what it wanted.
				cancel()
			}
			return nil
		})
	if err != nil {
		t.Fatalf("fully delivered stream returned %v after post-completion cancel", err)
	}
	if delivered != trials {
		t.Fatalf("delivered %d of %d trials", delivered, trials)
	}
}

func TestStreamZeroTrials(t *testing.T) {
	if err := Stream(context.Background(), NewRunner(1, 1), 0,
		func(i int, r *rng.Source) (int, error) { return 0, nil },
		func(i int, v int) error { return fmt.Errorf("must not be called") }); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBoundedWindow checks that workers never run far ahead of the
// delivery cursor, so unbounded trial counts use bounded memory.
func TestStreamBoundedWindow(t *testing.T) {
	rn := NewRunner(1, 1)
	rn.SetWorkers(4)
	var maxAhead, deliverCursor atomic.Int64
	err := Stream(context.Background(), rn, 10000,
		func(i int, r *rng.Source) (int, error) {
			ahead := int64(i) - deliverCursor.Load()
			for {
				prev := maxAhead.Load()
				if ahead <= prev || maxAhead.CompareAndSwap(prev, ahead) {
					break
				}
			}
			return i, nil
		},
		func(i int, v int) error { deliverCursor.Store(int64(i) + 1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// The window is 4*workers = 16 tokens; allow generous slack for the
	// approximate sampling above.
	if maxAhead.Load() > 64 {
		t.Fatalf("worker ran %d trials ahead of delivery; window is not bounded", maxAhead.Load())
	}
}
