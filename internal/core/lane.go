// This file holds the batched execution lane: Options.Batch concurrent
// trials advance together through one SoA state bank, stepped by the
// graph kernel's fused StepLane loops. The scalar hot path walks one
// particle at a time, so every step's load depends on the previous step's
// RNG draw; the lane breaks that serial chain by interleaving Batch
// independent trials, giving the CPU a window of independent draws and
// occupancy probes per superstep. Results are identical in distribution
// to the scalar path and, across batched runs, bit-identical for any
// batch width, worker count or sharding: each trial draws only from its
// own counter-mode slot stream seeded by the (seed, experiment, trial)
// lineage.

package core

import (
	"fmt"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// LaneVariant selects the Sequential-family settlement law a batched lane
// run executes. LaneNone marks a process with no batched form: the
// interacting processes (Parallel, Uniform, the continuous clocks) are
// inherently cross-particle and stay scalar.
type LaneVariant uint8

const (
	// LaneNone marks a process without a batched form.
	LaneNone LaneVariant = iota
	// LaneStandard is Sequential: settle on the first vacant standing.
	LaneStandard
	// LaneGeom is SequentialGeom: accept a vacant standing with
	// probability q per visit.
	LaneGeom
	// LaneThreshold is SequentialThreshold: settle only from step T on.
	LaneThreshold
	// LaneCapacity is CapacitySequential: settle while the standing
	// vertex is below its capacity.
	LaneCapacity
)

// maxBatch bounds Options.Batch; wider lanes exceed any cache level and
// only inflate the occupancy bank.
const maxBatch = 1 << 16

// laneMaxOccBytes bounds the lane occupancy bank (width rows of n
// vertices, one byte each — four for the capacity counts). RunLane
// rejects configurations over the bound instead of silently thrashing;
// the scalar path (with its sparse backend) handles such graphs.
const laneMaxOccBytes = 1 << 28

// laneState is the SoA state bank of the batched scheduler, living on
// Scratch so steady-state lane runs allocate nothing. Slot j of the bank
// hosts one trial at a time: its RNG stream, its own occupancy row, and
// the position/particle/step counters of the trial's in-flight particle.
type laneState struct {
	src rng.LaneSource
	// n and width are the shape the bank is currently laid out for; a
	// reshape invalidates every row, so prepare clears on shape change.
	n     int
	width int
	// occ rows mirror Scratch.occ per slot: occ[j*n+v] == epochs[j] means
	// vertex v is occupied in slot j's trial. Unused by LaneCapacity.
	occ []uint8
	// cnt rows mirror Scratch.cnt per slot (epoch in the high byte,
	// count in the low 24 bits). Sized only for LaneCapacity.
	cnt []uint32
	// epochs[j] stamps slot j's current trial, so rehosting a slot is one
	// increment instead of an O(n) row clear (one real clear every 255
	// trials on wrap, as in the scalar Scratch).
	epochs []uint8
	trial  []int32 // index into the run's seeds/outs hosted by each slot
	pos    []int32 // current particle's position
	part   []int32 // index of the current particle within its trial
	steps  []int64 // current particle's step count
	total  []int64 // trial's TotalSteps so far
	idx    []int32 // active-slot list handed to StepLane
}

// prepare lays the bank out for a width-slot lane on an n-vertex graph.
// Occupancy rows survive across runs of the same shape (the per-slot
// epochs keep them correct); any reshape clears them wholesale, since
// stale stamps would land at arbitrary row offsets.
func (ls *laneState) prepare(n, width int, counts bool) {
	reset := ls.n != n || ls.width != width
	ls.n, ls.width = n, width
	ls.src.Resize(width)
	ls.trial = growI32(ls.trial, width)
	ls.pos = growI32(ls.pos, width)
	ls.part = growI32(ls.part, width)
	ls.steps = growI64(ls.steps, width)
	ls.total = growI64(ls.total, width)
	if cap(ls.epochs) < width {
		ls.epochs = make([]uint8, width)
		reset = true
	}
	ls.epochs = ls.epochs[:width]
	cells := n * width
	if counts {
		if cap(ls.cnt) < cells {
			ls.cnt = make([]uint32, cells)
		}
		ls.cnt = ls.cnt[:cells]
	} else {
		if cap(ls.occ) < cells {
			ls.occ = make([]uint8, cells)
		}
		ls.occ = ls.occ[:cells]
	}
	if reset {
		clear(ls.occ[:cap(ls.occ)])
		clear(ls.cnt[:cap(ls.cnt)])
		clear(ls.epochs)
	}
}

// beginTrial opens a fresh occupancy row for slot j's next trial.
func (ls *laneState) beginTrial(j int32) {
	ls.epochs[j]++
	if ls.epochs[j] == 0 {
		// Epoch wrapped: stale stamps in this slot's row could collide,
		// so pay one row clear (every 255 trials per slot).
		if len(ls.occ) > 0 {
			clear(ls.occ[int(j)*ls.n : (int(j)+1)*ls.n])
		}
		if len(ls.cnt) > 0 {
			clear(ls.cnt[int(j)*ls.n : (int(j)+1)*ls.n])
		}
		ls.epochs[j] = 1
	}
}

// occupied reports whether vertex v hosts a settled particle in slot j's
// trial.
func (ls *laneState) occupied(j, v int32) bool {
	return ls.occ[int(j)*ls.n+int(v)] == ls.epochs[j]
}

// occupy marks vertex v as occupied in slot j's trial.
func (ls *laneState) occupy(j, v int32) {
	ls.occ[int(j)*ls.n+int(v)] = ls.epochs[j]
}

// count returns how many settled particles vertex v hosts in slot j's
// trial.
func (ls *laneState) count(j, v int32) int32 {
	if c := ls.cnt[int(j)*ls.n+int(v)]; uint8(c>>24) == ls.epochs[j] {
		return int32(c & 0xffffff)
	}
	return 0
}

// setCount records that vertex v hosts c settled particles in slot j's
// trial.
func (ls *laneState) setCount(j, v int32, c int32) {
	ls.cnt[int(j)*ls.n+int(v)] = uint32(ls.epochs[j])<<24 | uint32(c)
}

// RunLane executes one trial per seed of the Sequential-family process
// selected by variant, advancing up to opt.Batch trials concurrently
// through the lane. seeds[i] must be the root of trial i's stream (the
// engine passes Runner.TrialSeed); outs[i] receives trial i's result,
// exactly as the scalar *Into would produce in distribution. Slots retire
// as their trials finish and immediately rehost the next pending seed, so
// the lane stays full until the tail.
//
// The scheduler alternates two phases over the active slots: a resolve
// phase (truncation check, then the variant's settlement cascade, then
// retire/rehost) touching only per-slot state, and one fused
// kern.StepLane call advancing every unresolved slot a single walk move.
// A trial's draw sequence — origin draws, lazy coins, step draws,
// acceptance coins — therefore depends only on its own slot stream,
// which is what makes batched results invariant to Batch, workers and
// sharding.
func RunLane(g graph.Graph, origin int, opt Options, variant LaneVariant, seeds []uint64, s *Scratch, outs []*Result) error {
	n := g.N()
	if len(seeds) != len(outs) {
		return fmt.Errorf("core: %d lane seeds for %d results", len(seeds), len(outs))
	}
	if opt.Batch < 1 || opt.Batch > maxBatch {
		return fmt.Errorf("core: batch width %d (want 1..%d)", opt.Batch, maxBatch)
	}
	if opt.Record {
		return fmt.Errorf("core: batched execution cannot record trajectories")
	}
	if opt.Rule != nil {
		return fmt.Errorf("core: batched execution cannot apply a custom settle rule")
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	var (
		k    int
		q    float64
		T    int64
		plan capPlan
		err  error
	)
	switch variant {
	case LaneStandard:
		k, err = opt.numParticles(n)
	case LaneGeom:
		if k, err = opt.numParticles(n); err == nil {
			q, err = opt.geomParam()
		}
	case LaneThreshold:
		if k, err = opt.numParticles(n); err == nil {
			T, err = opt.thresholdParam(n)
		}
	case LaneCapacity:
		if plan, err = opt.capacityPlan(n); err == nil {
			k, err = opt.numParticlesCap(n, plan)
		}
	default:
		return fmt.Errorf("core: process has no batched form")
	}
	if err != nil {
		return err
	}
	if len(seeds) == 0 {
		return nil
	}
	width := opt.Batch
	if width > len(seeds) {
		width = len(seeds)
	}
	if bytes := n * width * laneCellBytes(variant); bytes > laneMaxOccBytes {
		return fmt.Errorf("core: batch %d on %d vertices needs %d bytes of lane occupancy (max %d); lower the batch width",
			width, n, bytes, laneMaxOccBytes)
	}
	if s == nil {
		s = NewScratch()
	}
	ls := &s.lane
	ls.prepare(n, width, variant == LaneCapacity)
	kern := g.Kernel()

	next := 0 // next seed to host
	// host seats trial `next` on slot j: seeds the slot stream, resets the
	// result, opens a fresh occupancy row and starts particle 0. Origin
	// draws come from the slot stream, like every draw of the trial.
	host := func(j int32) {
		ls.src.Seed(int(j), seeds[next])
		ls.trial[j] = int32(next)
		res := outs[next]
		res.reset(k, false)
		if variant == LaneCapacity {
			res.Capacity = plan.uniform
		}
		ls.beginTrial(j)
		ls.part[j] = 0
		ls.steps[j] = 0
		ls.total[j] = 0
		if opt.RandomOrigins {
			ls.pos[j] = int32(ls.src.Intn(int(j), n))
		} else {
			ls.pos[j] = int32(origin)
		}
		next++
	}
	// resolve applies the truncation check and the variant's settlement
	// cascade to slot j, reporting whether the hosted trial finished. When
	// it returns false the slot's particle is standing unsettled and owes
	// exactly one walk move this superstep.
	resolve := func(j int32) bool {
		res := outs[ls.trial[j]]
		// The step that reached this standing may have exhausted the
		// budget; like the scalar loop, truncation then wins even if the
		// particle is standing on a vertex it could settle on.
		if opt.MaxSteps > 0 && ls.total[j] >= opt.MaxSteps {
			res.Truncated = true
			res.Steps[ls.part[j]] = ls.steps[j]
			res.TotalSteps = ls.total[j]
			return true
		}
		for {
			v := ls.pos[j]
			switch variant {
			case LaneStandard:
				if ls.occupied(j, v) {
					return false
				}
				ls.occupy(j, v)
			case LaneGeom:
				// The acceptance coin is drawn once per vacant standing,
				// matching the scalar draw schedule; a rejected standing
				// owes the forced move, which is this superstep's step.
				if ls.occupied(j, v) || ls.src.Float64(int(j)) >= q {
					return false
				}
				ls.occupy(j, v)
			case LaneThreshold:
				if ls.steps[j] < T || ls.occupied(j, v) {
					return false
				}
				ls.occupy(j, v)
			case LaneCapacity:
				cv := ls.count(j, v)
				if int(cv) >= plan.at(v) {
					return false
				}
				ls.setCount(j, v, cv+1)
			}
			res.settle(int(ls.part[j]), v, ls.steps[j], ls.total[j])
			ls.part[j]++
			if int(ls.part[j]) == k {
				res.TotalSteps = ls.total[j]
				return true
			}
			ls.steps[j] = 0
			if opt.RandomOrigins {
				ls.pos[j] = int32(ls.src.Intn(int(j), n))
			} else {
				ls.pos[j] = int32(origin)
			}
		}
	}

	// slow runs the full resolve/retire/rehost chain on slot j, returning
	// the slot if it still owes a walk move and -1 when it runs dry.
	slow := func(j int32) int32 {
		for resolve(j) {
			if next == len(seeds) {
				return -1
			}
			host(j)
		}
		return j
	}

	ls.idx = growI32(ls.idx, width)
	active := ls.idx[:0]
	for j := int32(0); int(j) < width; j++ {
		host(j)
		active = append(active, j)
	}
	maxSteps := opt.MaxSteps
	for {
		// Phase 1: settle, retire and rehost until every remaining active
		// slot owes a walk move. The common superstep outcome by far is
		// "still walking" — the standing vertex cannot be settled on — so
		// each variant probes that case inline and only falls into the
		// resolve cascade when a settlement (or truncation) is actually
		// due.
		keep := active[:0]
		switch variant {
		case LaneStandard, LaneGeom:
			// Geom shares the fast path: an occupied standing draws no
			// acceptance coin, exactly as in resolve's short-circuit.
			for _, j := range active {
				if (maxSteps == 0 || ls.total[j] < maxSteps) && ls.occ[int(j)*n+int(ls.pos[j])] == ls.epochs[j] {
					keep = append(keep, j)
				} else if j = slow(j); j >= 0 {
					keep = append(keep, j)
				}
			}
		case LaneThreshold:
			for _, j := range active {
				if (maxSteps == 0 || ls.total[j] < maxSteps) && (ls.steps[j] < T || ls.occ[int(j)*n+int(ls.pos[j])] == ls.epochs[j]) {
					keep = append(keep, j)
				} else if j = slow(j); j >= 0 {
					keep = append(keep, j)
				}
			}
		case LaneCapacity:
			for _, j := range active {
				v := ls.pos[j]
				if (maxSteps == 0 || ls.total[j] < maxSteps) && int(ls.count(j, v)) >= plan.at(v) {
					keep = append(keep, j)
				} else if j = slow(j); j >= 0 {
					keep = append(keep, j)
				}
			}
		}
		active = keep
		if len(active) == 0 {
			return nil
		}
		// Phase 2: one fused kernel dispatch advances every unresolved
		// slot a single move; a lazy stay still counts as a step, as in
		// the scalar walk.
		kern.StepLane(ls.pos, active, opt.Lazy, &ls.src)
		for _, j := range active {
			ls.steps[j]++
			ls.total[j]++
		}
	}
}

// laneCellBytes returns the occupancy bytes one lane cell costs under the
// variant.
func laneCellBytes(variant LaneVariant) int {
	if variant == LaneCapacity {
		return 4
	}
	return 1
}
