package core

import (
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Failure injection: every invariant Check enforces must actually trip
// when the corresponding field is corrupted.
func TestCheckCatchesCorruption(t *testing.T) {
	g := graph.Cycle(10)
	fresh := func() *Result {
		res, err := Sequential(g, 0, Options{Record: true}, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if err := fresh().Check(g); err != nil {
		t.Fatalf("pristine run rejected: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func(*Result)
	}{
		{"double settlement", func(r *Result) { r.SettledAt[2] = r.SettledAt[1] }},
		{"invalid vertex", func(r *Result) { r.SettledAt[3] = 99 }},
		{"negative vertex", func(r *Result) { r.SettledAt[3] = -1 }},
		{"total steps mismatch", func(r *Result) { r.TotalSteps += 5 }},
		{"dispersion mismatch", func(r *Result) { r.Dispersion += 1 }},
		{"clock regression", func(r *Result) {
			r.SettleClock[len(r.SettleClock)-1] = -1
		}},
		{"missing settlement record", func(r *Result) {
			r.SettleOrder = r.SettleOrder[:len(r.SettleOrder)-1]
		}},
		{"trajectory length lie", func(r *Result) {
			r.Trajectories[2] = r.Trajectories[2][:1]
		}},
		{"trajectory teleport", func(r *Result) {
			if len(r.Trajectories[4]) > 2 {
				r.Trajectories[4][1] = (r.Trajectories[4][0] + 5) % 10
			} else {
				r.Trajectories[4] = []int32{0, 5}
				r.Steps[4] = 1
				// keep totals consistent so only the walk check fires
				r.TotalSteps = 0
				for _, s := range r.Steps {
					r.TotalSteps += s
				}
				r.Dispersion = 0
				for _, s := range r.Steps {
					if s > r.Dispersion {
						r.Dispersion = s
					}
				}
			}
		}},
		{"trajectory wrong endpoint", func(r *Result) {
			traj := r.Trajectories[5]
			r.SettledAt[5] = (traj[len(traj)-1] + 1) % 10
			// repair double-settlement so only the endpoint check fires
			for i := range r.SettledAt {
				if i != 5 && r.SettledAt[i] == r.SettledAt[5] {
					r.SettledAt[i] = traj[len(traj)-1]
				}
			}
		}},
	}
	for _, tc := range cases {
		res := fresh()
		tc.corrupt(res)
		if err := res.Check(g); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

func TestCheckRejectsTruncated(t *testing.T) {
	g := graph.Cycle(32)
	res, err := Sequential(g, 0, Options{MaxSteps: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(g); err == nil {
		t.Fatal("truncated run passed Check")
	}
}
