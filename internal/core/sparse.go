// Sparse occupancy backend: when a run disperses far fewer particles than
// the graph has vertices, the dense epoch-stamped occupancy array (and the
// capacity count array) would dominate memory at O(n) even though at most
// k vertices ever hold a particle. On million-vertex implicit graphs that
// array is the only O(n) state left in the whole pipeline, so Scratch
// switches to an open-addressing hash table sized O(k) whenever the run is
// large and sparse enough (see beginRun). The dense backend is untouched
// for small or dense runs, where it is both faster and smaller.
//
// Both backends produce bit-identical RNG streams: the sparse settlement
// walk is the explicit Step loop that the Kernel contract defines
// WalkUntilVacant to be draw-for-draw equivalent to.

package core

import (
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

const (
	// sparseMinN is the smallest graph size eligible for the sparse
	// occupancy backend. Below it a dense byte array is at most 1 MiB and
	// always wins.
	sparseMinN = 1 << 20
	// sparseFactor is the density cutoff: a run goes sparse only when
	// sparseFactor·k <= n, so the table (two int32 words per slot at load
	// factor <= 1/4, i.e. <= 32 bytes per particle) stays well under the
	// n bytes the dense array would pin.
	sparseFactor = 8
	// sparseFull flags a table entry whose vertex is at capacity (or, for
	// the unit-capacity processes, simply occupied). It lives above the 24
	// bits that per-vertex counts can reach under maxCapacity.
	sparseFull = int32(1) << 30
)

// sparseOccupancy reports whether a run of k particles on n vertices uses
// the sparse backend. k may exceed n for capacity processes; those runs
// are dense by construction.
func sparseOccupancy(n, k int) bool {
	return n >= sparseMinN && k <= n/sparseFactor
}

// sparseTable is an open-addressing hash table from vertex to a packed
// occupancy word (sparseFull flag | settled count), with linear probing.
// It is sized to at least 4x the maximum number of distinct keys, so the
// load factor stays <= 1/4 and probes terminate quickly; keys are never
// deleted within a run, and reset re-empties the whole table.
type sparseTable struct {
	keys []int32 // -1 marks an empty slot
	vals []int32
	mask uint32
}

// reset prepares the table for a run settling at most k distinct vertices.
func (t *sparseTable) reset(k int) {
	size := 16
	for size < 4*k {
		size <<= 1
	}
	if cap(t.keys) < size {
		t.keys = make([]int32, size)
		t.vals = make([]int32, size)
	}
	t.keys = t.keys[:size]
	t.vals = t.vals[:size]
	for i := range t.keys {
		t.keys[i] = -1
	}
	t.mask = uint32(size - 1)
}

// slot returns the index holding v, or the empty slot where v would go.
func (t *sparseTable) slot(v int32) uint32 {
	// Final avalanche rounds of a 32-bit mixer: vertex labels are often
	// consecutive, and this spreads them across the table.
	h := uint32(v)
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	i := h & t.mask
	for t.keys[i] != -1 && t.keys[i] != v {
		i = (i + 1) & t.mask
	}
	return i
}

// get returns v's packed occupancy word, zero if absent.
func (t *sparseTable) get(v int32) int32 {
	i := t.slot(v)
	if t.keys[i] == -1 {
		return 0
	}
	return t.vals[i]
}

// set stores v's packed occupancy word, inserting the key if needed.
func (t *sparseTable) set(v int32, val int32) {
	i := t.slot(v)
	t.keys[i] = v
	t.vals[i] = val
}

// walkUntilVacant runs one particle's settlement walk from v under the
// scratch's occupancy backend: the kernel's fused WalkUntilVacant against
// the dense epoch map, or — in sparse mode — the explicit Step loop that
// the Kernel contract defines it to be draw-for-draw identical to. Either
// way the walk stops on the first vacant standing vertex or after budget
// steps, whichever comes first, and returns the final vertex and the
// number of steps consumed.
func (s *Scratch) walkUntilVacant(kern graph.Kernel, v int32, lazy bool, budget int64, r *rng.Source) (int32, int64) {
	if !s.sparse {
		return kern.WalkUntilVacant(v, lazy, s.occ, s.epoch, budget, r)
	}
	var steps int64
	for s.table.get(v)&sparseFull != 0 {
		if !lazy || !r.Bool() {
			v = kern.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}
