package core

import (
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func TestOdometerAccounting(t *testing.T) {
	g := graph.Cycle(12)
	res, err := Sequential(g, 0, Options{Record: true}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOdometer(g, res)
	if err != nil {
		t.Fatal(err)
	}
	// Total arrivals = total steps + one initial placement per particle.
	want := res.TotalSteps + int64(g.N())
	if o.Total() != want {
		t.Fatalf("odometer total %d, want %d", o.Total(), want)
	}
	// Every vertex hosts exactly one settler.
	for v, s := range o.Settling {
		if s != 1 {
			t.Fatalf("vertex %d has %d settlers", v, s)
		}
	}
	// Every vertex was visited at least once (it hosts a settler).
	for v, c := range o.Visits {
		if c < 1 {
			t.Fatalf("vertex %d never visited", v)
		}
	}
}

func TestOdometerRequiresRecording(t *testing.T) {
	g := graph.Path(5)
	res, err := Sequential(g, 0, Options{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOdometer(g, res); err == nil {
		t.Fatal("unrecorded run accepted")
	}
}

func TestOdometerOriginIsBusiest(t *testing.T) {
	// With a common origin every particle is placed there, so the origin
	// dominates the visit counts on a star (all walks alternate through
	// the centre... origin = centre).
	g := graph.Star(16)
	res, err := Sequential(g, 0, Options{Record: true}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOdometer(g, res)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := o.Max()
	if v != 0 {
		t.Fatalf("busiest vertex %d, want the centre 0", v)
	}
}

func TestExcursionCountPath(t *testing.T) {
	// On the path with the left half marked, crossings happen exactly at
	// the marked/unmarked boundary; count must match a manual recount.
	g := graph.Path(10)
	res, err := Sequential(g, 0, Options{Record: true}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, 10)
	for v := 0; v < 5; v++ {
		inSet[v] = true
	}
	got, err := ExcursionCount(res, inSet)
	if err != nil {
		t.Fatal(err)
	}
	var manual int64
	for _, traj := range res.Trajectories {
		for i := 1; i < len(traj); i++ {
			if inSet[traj[i-1]] != inSet[traj[i]] {
				manual++
			}
		}
	}
	if got != manual || got < 1 {
		t.Fatalf("excursions %d, manual %d", got, manual)
	}
}

func TestExcursionCountRequiresRecording(t *testing.T) {
	g := graph.Path(5)
	res, _ := Sequential(g, 0, Options{}, rng.New(5))
	if _, err := ExcursionCount(res, make([]bool, 5)); err == nil {
		t.Fatal("unrecorded run accepted")
	}
}
