package core

import (
	"fmt"
	"reflect"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// intoRunner adapts every *Into process to a common shape so the
// dense/sparse twin runs below can drive them uniformly.
type intoRunner func(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error

func allIntoProcesses() map[string]intoRunner {
	return map[string]intoRunner{
		"sequential": SequentialInto,
		"parallel":   ParallelInto,
		"uniform":    UniformInto,
		"geom":       SequentialGeomInto,
		"threshold":  SequentialThresholdInto,
		"cap-seq":    CapacitySequentialInto,
		"cap-par":    CapacityParallelInto,
		"ct-uniform": func(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
			var ct CTResult
			if err := CTUniformInto(g, origin, opt, r, s, &ct); err != nil {
				return err
			}
			*res = ct.Result
			return nil
		},
		"ct-sequential": func(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
			var ct CTResult
			if err := CTSequentialInto(g, origin, opt, r, s, &ct); err != nil {
				return err
			}
			*res = ct.Result
			return nil
		},
	}
}

// TestSparseOccupancyBitIdentity pins the sparse occupancy backend
// draw-for-draw and result-for-result identical to the dense epoch map:
// every registered process, on graphs small enough to check exhaustively,
// forced through the hash table via the forceSparse hook. The trailing RNG
// probe catches any divergence in the number of draws consumed.
func TestSparseOccupancyBitIdentity(t *testing.T) {
	graphs := []graph.Graph{
		graph.Complete(20),
		graph.Cycle(16),
		graph.Grid([]int{4, 4}, true),
		graph.CliqueWithHair(12),
	}
	options := map[string]Options{
		"default":       {},
		"lazy":          {Lazy: true},
		"record":        {Record: true},
		"random-origin": {RandomOrigins: true, Particles: 7},
		"few-particles": {Particles: 3},
		"truncated":     {MaxSteps: 25},
	}
	for pname, run := range allIntoProcesses() {
		for _, g := range graphs {
			for oname, opt := range options {
				var dense, sparse Result
				sd, ss := NewScratch(), NewScratch()
				ss.forceSparse = true
				rd, rs := rng.New(404), rng.New(404)
				if err := run(g, 0, opt, rd, sd, &dense); err != nil {
					t.Fatalf("%s/%s on %s dense: %v", pname, oname, g.Name(), err)
				}
				if err := run(g, 0, opt, rs, ss, &sparse); err != nil {
					t.Fatalf("%s/%s on %s sparse: %v", pname, oname, g.Name(), err)
				}
				if !ss.sparse {
					t.Fatalf("%s/%s on %s: forceSparse did not engage", pname, oname, g.Name())
				}
				if !reflect.DeepEqual(dense, sparse) {
					t.Errorf("%s/%s on %s: dense and sparse results differ\ndense:  %+v\nsparse: %+v",
						pname, oname, g.Name(), dense, sparse)
				}
				if rd.Uint64() != rs.Uint64() {
					t.Errorf("%s/%s on %s: dense and sparse consumed different draw counts",
						pname, oname, g.Name())
				}
			}
		}
	}
}

// TestSparseScratchReuse checks that one Scratch can alternate between
// sparse and dense runs (and between graphs of different sizes) without
// stale occupancy leaking across runs in either direction.
func TestSparseScratchReuse(t *testing.T) {
	s := NewScratch()
	g1, g2 := graph.Complete(24), graph.Cycle(10)
	for trial := 0; trial < 300; trial++ {
		s.forceSparse = trial%2 == 0
		g := g1
		if trial%3 == 0 {
			g = g2
		}
		var res Result
		if err := SequentialInto(g, 0, Options{}, rng.New(uint64(trial+1)), s, &res); err != nil {
			t.Fatal(err)
		}
		if err := checkPerfectDispersion(&res, g.N()); err != nil {
			t.Fatalf("trial %d on %s (sparse=%v): %v", trial, g.Name(), s.forceSparse, err)
		}
	}
}

// checkPerfectDispersion verifies an untruncated full run settled exactly
// one particle on every vertex.
func checkPerfectDispersion(res *Result, n int) error {
	seen := make(map[int32]bool, n)
	for _, v := range res.SettledAt {
		if seen[v] {
			return fmt.Errorf("vertex %d settled twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		return fmt.Errorf("only %d of %d vertices settled", len(seen), n)
	}
	return nil
}

// TestSparseOccupancyEligibility pins the automatic dense/sparse cutover.
func TestSparseOccupancyEligibility(t *testing.T) {
	cases := []struct {
		n, k int
		want bool
	}{
		{1 << 20, 1 << 17, true},        // exactly at both thresholds
		{1 << 20, 1<<17 + 1, false},     // one particle too dense
		{1<<20 - 1, 1 << 10, false},     // one vertex too small
		{1 << 24, 4096, true},           // the million-vertex target shape
		{1 << 24, 1 << 24, false},       // full dispersion stays dense
		{1 << 10, 1, false},             // small graphs always dense
		{1 << 21, 2 * (1 << 21), false}, // capacity runs with k > n stay dense
	}
	for _, c := range cases {
		if got := sparseOccupancy(c.n, c.k); got != c.want {
			t.Errorf("sparseOccupancy(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

// TestSparseTable exercises the open-addressing table directly, including
// keys engineered to collide under linear probing.
func TestSparseTable(t *testing.T) {
	var tab sparseTable
	tab.reset(64)
	for v := int32(0); v < 64; v++ {
		tab.set(v, v*3)
	}
	for v := int32(0); v < 64; v++ {
		if got := tab.get(v); got != v*3 {
			t.Fatalf("get(%d) = %d, want %d", v, got, v*3)
		}
	}
	if got := tab.get(1000); got != 0 {
		t.Fatalf("get(absent) = %d, want 0", got)
	}
	tab.reset(64)
	for v := int32(0); v < 64; v++ {
		if got := tab.get(v); got != 0 {
			t.Fatalf("after reset, get(%d) = %d, want 0", v, got)
		}
	}
	// Flag and count coexist in one word.
	tab.set(5, 7|sparseFull)
	if tab.get(5)&^sparseFull != 7 || tab.get(5)&sparseFull == 0 {
		t.Fatalf("packed word = %#x", tab.get(5))
	}
}
