package core

import (
	"fmt"
	"sort"

	"dispersion/internal/graph"
)

// PhaseClock returns the process clock at which the number of unsettled
// particles first dropped below k (the paper's τ(G, k)-style phase time,
// Section 3.1.1). k = 1 returns the final settlement clock. It returns -1
// if the run was truncated before reaching the phase.
func (res *Result) PhaseClock(n, k int) int64 {
	// After the (s+1)-th settlement, n-1-s particles are unsettled.
	// We need the first clock with n-1-s < k, i.e. s > n-1-k.
	idx := n - k // settlement index s = n-k gives n-1-s = k-1 < k
	if idx < 0 {
		idx = 0
	}
	if idx >= len(res.SettleClock) {
		return -1
	}
	return res.SettleClock[idx]
}

// UnsettledAtClock returns how many particles were still unsettled
// strictly after the given clock value.
func (res *Result) UnsettledAtClock(clock int64) int {
	settled := sort.Search(len(res.SettleClock), func(i int) bool {
		return res.SettleClock[i] > clock
	})
	return len(res.SettledAt) - settled
}

// Check verifies the structural invariants every completed dispersion run
// must satisfy: no vertex hosts more settled particles than the run's
// per-vertex capacity (one, except for the capacity processes), the
// settlement clock is non-decreasing, the recorded dispersion equals the
// max step count, and recorded trajectories (if any) are genuine walks
// ending at the settlement vertex. It is used by tests and the examples.
func (res *Result) Check(g graph.Graph) error {
	if res.Truncated {
		return fmt.Errorf("core: truncated run cannot be checked")
	}
	n := g.N()
	capacity := int32(res.Capacity)
	if capacity == 0 {
		capacity = 1
	}
	hosts := make([]int32, n)
	for i, v := range res.SettledAt {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("core: particle %d settled at invalid vertex %d", i, v)
		}
		hosts[v]++
		if hosts[v] > capacity {
			return fmt.Errorf("core: vertex %d hosts %d settled particles (capacity %d)", v, hosts[v], capacity)
		}
	}
	var total, maxSteps int64
	for _, s := range res.Steps {
		total += s
		if s > maxSteps {
			maxSteps = s
		}
	}
	if total != res.TotalSteps {
		return fmt.Errorf("core: TotalSteps %d != sum of Steps %d", res.TotalSteps, total)
	}
	if maxSteps != res.Dispersion {
		return fmt.Errorf("core: Dispersion %d != max Steps %d", res.Dispersion, maxSteps)
	}
	k := len(res.SettledAt)
	if len(res.SettleOrder) != k || len(res.SettleClock) != k {
		return fmt.Errorf("core: settlement records incomplete: %d/%d", len(res.SettleOrder), k)
	}
	for i := 1; i < k; i++ {
		if res.SettleClock[i] < res.SettleClock[i-1] {
			return fmt.Errorf("core: settlement clock decreases at %d", i)
		}
	}
	if res.Trajectories != nil {
		ec, hasEC := g.(graph.EdgeChecker)
		if !hasEC {
			return fmt.Errorf("core: %s backend cannot verify recorded trajectories (no edge test)", g.Name())
		}
		for i, traj := range res.Trajectories {
			if int64(len(traj)) != res.Steps[i]+1 {
				return fmt.Errorf("core: particle %d trajectory length %d != steps+1 %d",
					i, len(traj), res.Steps[i]+1)
			}
			for j := 1; j < len(traj); j++ {
				if traj[j] != traj[j-1] && !ec.HasEdge(int(traj[j-1]), int(traj[j])) {
					return fmt.Errorf("core: particle %d trajectory has non-edge %d->%d",
						i, traj[j-1], traj[j])
				}
			}
			if traj[len(traj)-1] != res.SettledAt[i] {
				return fmt.Errorf("core: particle %d trajectory ends at %d, settled at %d",
					i, traj[len(traj)-1], res.SettledAt[i])
			}
		}
	}
	return nil
}

// AggregateAt reconstructs the occupied set after the first k settlements,
// in settlement order. Useful for shape inspection (examples/shape2d).
func (res *Result) AggregateAt(k int) []int32 {
	if k > len(res.SettleOrder) {
		k = len(res.SettleOrder)
	}
	agg := make([]int32, 0, k)
	for i := 0; i < k; i++ {
		agg = append(agg, res.SettledAt[res.SettleOrder[i]])
	}
	return agg
}
