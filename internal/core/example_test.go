package core_test

import (
	"fmt"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Run the Sequential-IDLA on a small cycle with a fixed seed. The first
// particle settles at the origin instantly; the others walk.
func ExampleSequential() {
	g := graph.Cycle(8)
	res, err := core.Sequential(g, 0, core.Options{}, rng.New(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("particles:", len(res.Steps))
	fmt.Println("particle 0 steps:", res.Steps[0])
	fmt.Println("every vertex settled:", res.Check(g) == nil)
	// Output:
	// particles: 8
	// particle 0 steps: 0
	// every vertex settled: true
}

// The Parallel-IDLA's dispersion time equals its number of rounds: the
// last particle to settle has moved in every round.
func ExampleParallel() {
	g := graph.Complete(16)
	res, err := core.Parallel(g, 0, core.Options{}, rng.New(7))
	if err != nil {
		panic(err)
	}
	lastClock := res.SettleClock[len(res.SettleClock)-1]
	fmt.Println("dispersion equals final round:", res.Dispersion == lastClock)
	// Output:
	// dispersion equals final round: true
}

// The Section 6.2 variant with fewer particles than vertices: only k
// vertices end up occupied.
func ExampleOptions_particles() {
	g := graph.Hypercube(4)
	res, err := core.Sequential(g, 0, core.Options{Particles: 5}, rng.New(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("settled particles:", len(res.SettledAt))
	// Output:
	// settled particles: 5
}
