package core

import (
	"fmt"
	"strings"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func TestKParticlesSettleExactlyK(t *testing.T) {
	g := graph.Hypercube(5)
	for name, run := range allProcesses() {
		for _, k := range []int{1, 5, 16, 32} {
			res, err := run(g, 0, Options{Particles: k, Record: true}, rng.New(21))
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if len(res.SettledAt) != k {
				t.Fatalf("%s k=%d: %d results", name, k, len(res.SettledAt))
			}
			if err := res.Check(g); err != nil {
				t.Errorf("%s k=%d: %v", name, k, err)
			}
			seen := map[int32]bool{}
			for _, v := range res.SettledAt {
				if seen[v] {
					t.Fatalf("%s k=%d: vertex %d settled twice", name, k, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestKParticlesRejectsBadCounts(t *testing.T) {
	g := graph.Path(8)
	for _, k := range []int{-1, 9, 100} {
		_, err := Sequential(g, 0, Options{Particles: k}, rng.New(1))
		if err == nil {
			t.Errorf("Particles=%d accepted", k)
			continue
		}
		// The message must report the resolved particle count, not the
		// raw option value (they differ once defaulting applies).
		if want := fmt.Sprintf("core: %d particles", k); !strings.Contains(err.Error(), want) {
			t.Errorf("Particles=%d error %q does not report the resolved count", k, err)
		}
	}
}

func TestKParticleDispersionMonotoneOnClique(t *testing.T) {
	// Section 6.2 intuition: more particles compete for fewer vacancies,
	// so the (mean) dispersion grows with k.
	g := graph.Complete(64)
	root := rng.New(31)
	const trials = 300
	var prev float64 = -1
	for _, k := range []int{16, 32, 64} {
		var sum float64
		for i := 0; i < trials; i++ {
			res, err := Parallel(g, 0, Options{Particles: k}, root.Split(uint64(k), uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Dispersion)
		}
		mean := sum / trials
		if mean < prev {
			t.Errorf("mean parallel dispersion decreased with k: %.1f -> %.1f at k=%d", prev, mean, k)
		}
		prev = mean
	}
}

func TestRandomOriginsValid(t *testing.T) {
	g := graph.Grid([]int{5, 5}, false)
	for name, run := range allProcesses() {
		res, err := run(g, 0, Options{RandomOrigins: true, Record: true}, rng.New(41))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Check(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRandomOriginsInstantSettlements(t *testing.T) {
	// With all n particles dropped uniformly at random, many land on
	// distinct vertices and settle instantly (zero steps).
	g := graph.Complete(64)
	res, err := Parallel(g, 0, Options{RandomOrigins: true}, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, s := range res.Steps {
		if s == 0 {
			zeros++
		}
	}
	// Expected distinct-origin count ~ n(1-1/e) ≈ 40; demand at least 20.
	if zeros < 20 {
		t.Errorf("only %d instant settlements with random origins", zeros)
	}
}

func TestRandomOriginsFasterOnPath(t *testing.T) {
	// Spreading the origins must beat launching everything from the
	// endpoint of a path (where the aggregate forms a growing barrier).
	g := graph.Path(64)
	root := rng.New(47)
	const trials = 60
	var fixed, random float64
	for i := 0; i < trials; i++ {
		a, err := Sequential(g, 0, Options{}, root.Split(1, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Sequential(g, 0, Options{RandomOrigins: true}, root.Split(2, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		fixed += float64(a.Dispersion)
		random += float64(b.Dispersion)
	}
	if random > fixed*0.8 {
		t.Errorf("random origins (%.0f) not clearly faster than endpoint origin (%.0f)",
			random/trials, fixed/trials)
	}
}

func TestKParticlesSequentialFasterThanFull(t *testing.T) {
	// With k = n/4 particles on the clique each walk finds one of >= 3n/4
	// vacancies: dispersion should be far below the full process.
	g := graph.Complete(64)
	root := rng.New(53)
	const trials = 200
	var quarter, full float64
	for i := 0; i < trials; i++ {
		a, _ := Sequential(g, 0, Options{Particles: 16}, root.Split(1, uint64(i)))
		b, _ := Sequential(g, 0, Options{}, root.Split(2, uint64(i)))
		quarter += float64(a.Dispersion)
		full += float64(b.Dispersion)
	}
	if quarter > full/3 {
		t.Errorf("k=n/4 dispersion %.1f not well below full %.1f", quarter/trials, full/trials)
	}
}

func TestLastSettledVertexOnTreeIsLeaf(t *testing.T) {
	// The observation driving Theorem 3.7's proof: in the Sequential-IDLA
	// on a tree, the last vertex to be settled is always a leaf (an
	// internal vertex separates the tree, so it must fill before both of
	// its sides can).
	root := rng.New(61)
	trees := []graph.Graph{
		graph.Star(12),
		graph.Path(12),
		graph.CompleteBinaryTree(4),
		graph.RandomTree(15, root),
		graph.Comb(4, 2),
	}
	for _, g := range trees {
		for trial := 0; trial < 40; trial++ {
			res, err := Sequential(g, 0, Options{}, root.Split(9, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			lastParticle := res.SettleOrder[len(res.SettleOrder)-1]
			lastVertex := res.SettledAt[lastParticle]
			if g.Degree(int(lastVertex)) != 1 {
				t.Fatalf("%s trial %d: last settled vertex %d has degree %d, want a leaf",
					g.Name(), trial, lastVertex, g.Degree(int(lastVertex)))
			}
		}
	}
}

func TestRuleAppliesAtTimeZero(t *testing.T) {
	// The settlement rule also governs the instant settlement of the
	// first particle (ρ̃ semantics: it vetoes settling at the origin).
	g := graph.Complete(16)
	rule := func(v int32, step int64) bool { return step >= 3 }
	res, err := Sequential(g, 0, Options{Rule: rule}, rng.New(59))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Steps {
		if s < 3 {
			t.Fatalf("particle %d settled after %d steps despite rule", i, s)
		}
	}
}
