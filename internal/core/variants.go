// This file holds the registered variant workloads: the Proposition A.1
// modified settle rules (geometric acceptance and step-threshold
// settlement) and the capacity-c generalization where every vertex hosts
// up to c particles. Like the five standard processes, each comes as a
// one-shot function and an *Into variant sharing the caller's Scratch and
// Result buffers; the *Into forms are the engine's zero-allocation hot
// path and dispatch every walk through the graph's step kernel.

package core

import (
	"fmt"
	"math"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// geomParam resolves Options.SettleParam as SequentialGeom's per-visit
// settle probability q. Zero means the default 1/2; q = 1 recovers the
// standard rule.
func (o *Options) geomParam() (float64, error) {
	q := o.SettleParam
	if q == 0 {
		q = 0.5
	}
	// The negated form also rejects NaN, which would otherwise make the
	// acceptance coin unwinnable and the walk endless.
	if !(q > 0 && q <= 1) {
		return 0, fmt.Errorf("core: geometric settle probability %v (want (0,1])", q)
	}
	return q, nil
}

// thresholdParam resolves Options.SettleParam as SequentialThreshold's
// minimum step count T (the fractional part is truncated). Zero means the
// default n, the graph size; T = 0 is expressed by any negative-free
// sub-one value and recovers the standard rule.
func (o *Options) thresholdParam(n int) (int64, error) {
	if o.SettleParam == 0 {
		return int64(n), nil
	}
	// The negated range check rejects NaN (whose int64 conversion is
	// platform-defined) and an infinite or absurd threshold that could
	// never finish its forced walk.
	if !(o.SettleParam > 0 && o.SettleParam <= math.MaxInt32) {
		return 0, fmt.Errorf("core: settle threshold %v (want (0,%d]; 0 selects the default n)",
			o.SettleParam, math.MaxInt32)
	}
	return int64(o.SettleParam), nil
}

// SequentialGeom runs the Sequential process under the geometric settle
// rule of Proposition A.1: a particle standing on a vacant vertex settles
// there with probability q per visit (Options.SettleParam, default 1/2)
// and otherwise keeps walking. q = 1 recovers the standard process.
func SequentialGeom(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := SequentialGeomInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SequentialGeomInto is SequentialGeom writing into a caller-owned Result
// through the given Scratch (nil allocates a transient one). res is fully
// overwritten; the RNG stream consumed is identical to SequentialGeom's.
func SequentialGeomInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	k, err := opt.numParticles(n)
	if err != nil {
		return err
	}
	q, err := opt.geomParam()
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	s.beginRun(n, k)
	kern := g.Kernel()
	if !opt.Record {
		// Hot path: each stretch of occupied vertices runs as one kernel
		// call; the acceptance coin is drawn only on vacant standings, so
		// the draw sequence matches the recording loop below exactly.
		for i := 0; i < k; i++ {
			v := opt.startVertex(origin, n, r)
			var steps int64
			for {
				budget := int64(math.MaxInt64)
				if opt.MaxSteps > 0 {
					budget = opt.MaxSteps - res.TotalSteps
				}
				var walked int64
				v, walked = s.walkUntilVacant(kern, v, opt.Lazy, budget, r)
				steps += walked
				res.TotalSteps += walked
				if walked >= budget {
					res.Truncated = true
					res.Steps[i] = steps
					return nil
				}
				if r.Float64() < q {
					break
				}
				// Rejected the vacant vertex: one forced move, then keep
				// walking.
				v = step(kern, v, opt.Lazy, r)
				steps++
				res.TotalSteps++
				if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
					res.Truncated = true
					res.Steps[i] = steps
					return nil
				}
			}
			s.occupy(v)
			res.settle(i, v, steps, res.TotalSteps)
		}
		return nil
	}
	for i := 0; i < k; i++ {
		v := opt.startVertex(origin, n, r)
		var steps int64
		traj := []int32{v}
		// Standing on an occupied vertex draws no acceptance coin (the
		// short-circuit mirrors the hot path's WalkUntilVacant stretch).
		for s.occupied(v) || r.Float64() >= q {
			v = step(kern, v, opt.Lazy, r)
			steps++
			res.TotalSteps++
			traj = append(traj, v)
			if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
				res.Truncated = true
				res.Steps[i] = steps
				res.Trajectories[i] = traj
				return nil
			}
		}
		s.occupy(v)
		res.settle(i, v, steps, res.TotalSteps)
		res.Trajectories[i] = traj
	}
	return nil
}

// SequentialThreshold runs the Sequential process under the step-threshold
// settle rule of Proposition A.1: a particle may settle only from its T-th
// step on (Options.SettleParam, default n), at the first vacant vertex it
// then stands on. Longer forced walks can decrease the dispersion time on
// gadgets like the clique-with-hair — the paper's no-least-action example.
func SequentialThreshold(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := SequentialThresholdInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SequentialThresholdInto is SequentialThreshold writing into a
// caller-owned Result through the given Scratch (nil allocates a transient
// one). res is fully overwritten; the RNG stream consumed is identical to
// SequentialThreshold's.
func SequentialThresholdInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	k, err := opt.numParticles(n)
	if err != nil {
		return err
	}
	T, err := opt.thresholdParam(n)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	s.beginRun(n, k)
	kern := g.Kernel()
	for i := 0; i < k; i++ {
		v := opt.startVertex(origin, n, r)
		var steps int64
		var traj []int32
		if opt.Record {
			traj = append(traj, v)
		}
		// Phase one: the forced walk below the threshold, blind to
		// occupancy.
		for steps < T {
			v = step(kern, v, opt.Lazy, r)
			steps++
			res.TotalSteps++
			if opt.Record {
				traj = append(traj, v)
			}
			if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
				res.Truncated = true
				res.Steps[i] = steps
				res.Trajectories = appendTraj(res.Trajectories, i, traj, opt.Record)
				return nil
			}
		}
		// Phase two: the standard settlement walk to the first vacant
		// standing vertex, fused into one kernel call when not recording.
		if !opt.Record {
			budget := int64(math.MaxInt64)
			if opt.MaxSteps > 0 {
				budget = opt.MaxSteps - res.TotalSteps
			}
			var walked int64
			v, walked = s.walkUntilVacant(kern, v, opt.Lazy, budget, r)
			steps += walked
			res.TotalSteps += walked
			if walked >= budget {
				res.Truncated = true
				res.Steps[i] = steps
				return nil
			}
		} else {
			for s.occupied(v) {
				v = step(kern, v, opt.Lazy, r)
				steps++
				res.TotalSteps++
				traj = append(traj, v)
				if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
					res.Truncated = true
					res.Steps[i] = steps
					res.Trajectories[i] = traj
					return nil
				}
			}
		}
		s.occupy(v)
		res.settle(i, v, steps, res.TotalSteps)
		res.Trajectories = appendTraj(res.Trajectories, i, traj, opt.Record)
	}
	return nil
}

// CapacitySequential runs the capacity-c Sequential process: the
// k-particles-per-vertex load-balancing generalization where every vertex
// hosts up to c settled particles (Options.Capacity, default
// DefaultCapacity) and a particle settles on the first standing vertex
// holding fewer than c. By default c·n particles disperse, filling every
// vertex to capacity; Options.Particles lowers the count.
func CapacitySequential(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := CapacitySequentialInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CapacitySequentialInto is CapacitySequential writing into a caller-owned
// Result through the given Scratch (nil allocates a transient one). res is
// fully overwritten; the RNG stream consumed is identical to
// CapacitySequential's. Vertices at capacity are stamped into the same
// occupancy map the unit-capacity walks test, so the whole settlement walk
// still runs behind one kernel dispatch.
func CapacitySequentialInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	plan, err := opt.capacityPlan(n)
	if err != nil {
		return err
	}
	k, err := opt.numParticlesCap(n, plan)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	res.Capacity = plan.uniform
	s.beginRun(n, k)
	s.counts(n)
	kern := g.Kernel()
	if !opt.Record {
		for i := 0; i < k; i++ {
			v := opt.startVertex(origin, n, r)
			budget := int64(math.MaxInt64)
			if opt.MaxSteps > 0 {
				budget = opt.MaxSteps - res.TotalSteps
			}
			v, steps := s.walkUntilVacant(kern, v, opt.Lazy, budget, r)
			res.TotalSteps += steps
			if steps >= budget {
				res.Truncated = true
				res.Steps[i] = steps
				return nil
			}
			cv := s.count(v) + 1
			s.setCount(v, cv)
			if int(cv) == plan.at(v) {
				s.occupy(v)
			}
			res.settle(i, v, steps, res.TotalSteps)
		}
		return nil
	}
	for i := 0; i < k; i++ {
		v := opt.startVertex(origin, n, r)
		var steps int64
		traj := []int32{v}
		for s.occupied(v) {
			v = step(kern, v, opt.Lazy, r)
			steps++
			res.TotalSteps++
			traj = append(traj, v)
			if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
				res.Truncated = true
				res.Steps[i] = steps
				res.Trajectories[i] = traj
				return nil
			}
		}
		cv := s.count(v) + 1
		s.setCount(v, cv)
		if int(cv) == plan.at(v) {
			s.occupy(v)
		}
		res.settle(i, v, steps, res.TotalSteps)
		res.Trajectories[i] = traj
	}
	return nil
}

// CapacityParallel runs the capacity-c Parallel process: all particles
// start together, every round all unsettled particles move simultaneously,
// and settlement resolution in priority order lets each vertex accept
// arrivals until it holds c settled particles (Options.Capacity, default
// DefaultCapacity). Priority is least index, or a uniform permutation
// under Options.RandomPriority.
func CapacityParallel(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := CapacityParallelInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CapacityParallelInto is CapacityParallel writing into a caller-owned
// Result through the given Scratch (nil allocates a transient one). res is
// fully overwritten; the RNG stream consumed is identical to
// CapacityParallel's.
func CapacityParallelInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	plan, err := opt.capacityPlan(n)
	if err != nil {
		return err
	}
	k, err := opt.numParticlesCap(n, plan)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	res.Capacity = plan.uniform
	s.beginRun(n, k)
	s.counts(n)
	kern := g.Kernel()

	s.prio = growI32(s.prio, k)
	prio := s.prio
	for i := range prio {
		prio[i] = int32(i)
	}
	if opt.RandomPriority {
		r.Shuffle(len(prio), func(i, j int) { prio[i], prio[j] = prio[j], prio[i] })
	}
	s.pos = growI32(s.pos, k)
	pos := s.pos
	for i := range pos {
		pos[i] = opt.startVertex(origin, n, r)
	}
	if opt.Record {
		for i := 0; i < k; i++ {
			res.Trajectories[i] = []int32{pos[i]}
		}
	}
	// capAt resolves a vertex's capacity inside the round loops. The
	// uniform law (the overwhelmingly common one) keeps the historical
	// compare-against-a-constant hot loop; only vector runs pay the
	// per-vertex lookup.
	uniform := plan.caps == nil
	c := plan.uniform

	// Round 0 settlement: every vertex accepts standing particles up to
	// its capacity, in priority order. With a common origin, c of them
	// settle there instantly.
	s.active = growI32(s.active, k)[:0]
	active := s.active
	for _, p := range prio {
		at := c
		if !uniform {
			at = plan.caps[pos[p]]
		}
		if cv := s.count(pos[p]); int(cv) < at {
			s.setCount(pos[p], cv+1)
			res.settle(int(p), pos[p], 0, 0)
		} else {
			active = append(active, p)
		}
	}

	var round int64
	for len(active) > 0 {
		round++
		for _, p := range active {
			pos[p] = step(kern, pos[p], opt.Lazy, r)
			res.Steps[p]++
			res.TotalSteps++
			if opt.Record {
				res.Trajectories[p] = append(res.Trajectories[p], pos[p])
			}
		}
		// Settlement resolution in priority order: each vertex accepts
		// arrivals until it reaches capacity.
		keep := active[:0]
		if uniform {
			for _, p := range active {
				if cv := s.count(pos[p]); int(cv) < c {
					s.setCount(pos[p], cv+1)
					res.settle(int(p), pos[p], res.Steps[p], round)
				} else {
					keep = append(keep, p)
				}
			}
		} else {
			for _, p := range active {
				if cv := s.count(pos[p]); int(cv) < plan.caps[pos[p]] {
					s.setCount(pos[p], cv+1)
					res.settle(int(p), pos[p], res.Steps[p], round)
				} else {
					keep = append(keep, p)
				}
			}
		}
		active = keep
		if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
			res.Truncated = true
			return nil
		}
	}
	return nil
}
