package core

import (
	"strings"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// laneSeeds returns count deterministic trial seeds.
func laneSeeds(count int) []uint64 {
	src := rng.New(7)
	seeds := make([]uint64, count)
	for i := range seeds {
		seeds[i] = src.Uint64()
	}
	return seeds
}

// runLane runs RunLane over the seeds and returns the per-trial results.
func runLane(t *testing.T, g graph.Graph, origin int, opt Options, variant LaneVariant, seeds []uint64) []*Result {
	t.Helper()
	outs := make([]*Result, len(seeds))
	for i := range outs {
		outs[i] = new(Result)
	}
	if err := RunLane(g, origin, opt, variant, seeds, NewScratch(), outs); err != nil {
		t.Fatal(err)
	}
	return outs
}

// resultsEqual compares two results field by field.
func resultsEqual(a, b *Result) bool {
	if a.Dispersion != b.Dispersion || a.TotalSteps != b.TotalSteps ||
		a.Truncated != b.Truncated || a.Capacity != b.Capacity ||
		len(a.Steps) != len(b.Steps) || len(a.SettleOrder) != len(b.SettleOrder) {
		return false
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] || a.SettledAt[i] != b.SettledAt[i] {
			return false
		}
	}
	for i := range a.SettleOrder {
		if a.SettleOrder[i] != b.SettleOrder[i] || a.SettleClock[i] != b.SettleClock[i] {
			return false
		}
	}
	return true
}

// laneVariants enumerates every batched law with its options.
func laneVariants() map[string]struct {
	variant LaneVariant
	opt     Options
} {
	return map[string]struct {
		variant LaneVariant
		opt     Options
	}{
		"standard":         {LaneStandard, Options{}},
		"standard-lazy":    {LaneStandard, Options{Lazy: true}},
		"standard-origins": {LaneStandard, Options{RandomOrigins: true}},
		"standard-partial": {LaneStandard, Options{Particles: 5}},
		"geom":             {LaneGeom, Options{}},
		"geom-lazy":        {LaneGeom, Options{Lazy: true, SettleParam: 0.25}},
		"threshold":        {LaneThreshold, Options{}},
		"threshold-short":  {LaneThreshold, Options{SettleParam: 3}},
		"capacity":         {LaneCapacity, Options{}},
		"capacity-3":       {LaneCapacity, Options{Capacity: 3, RandomOrigins: true}},
	}
}

// TestLaneBatchInvariance pins the core determinism contract of the
// batched mode: a trial's result is a pure function of its seed, so any
// batch width yields bit-identical results for every variant.
func TestLaneBatchInvariance(t *testing.T) {
	seeds := laneSeeds(24)
	for _, g := range []graph.Graph{graph.Complete(16), graph.Cycle(17)} {
		for name, tc := range laneVariants() {
			opt := tc.opt
			opt.Batch = 1
			base := runLane(t, g, 0, opt, tc.variant, seeds)
			for _, b := range []int{3, 8, 64} {
				opt.Batch = b
				got := runLane(t, g, 0, opt, tc.variant, seeds)
				for i := range got {
					if !resultsEqual(base[i], got[i]) {
						t.Fatalf("%s %s: trial %d differs between batch 1 and batch %d", g.Name(), name, i, b)
					}
				}
			}
		}
	}
}

// TestLaneResultsCheck validates every variant's batched results against
// the structural run invariants (full occupancy, clock monotonicity,
// dispersion = max steps).
func TestLaneResultsCheck(t *testing.T) {
	seeds := laneSeeds(16)
	g := graph.Complete(12)
	for name, tc := range laneVariants() {
		opt := tc.opt
		opt.Batch = 8
		for _, res := range runLane(t, g, 0, opt, tc.variant, seeds) {
			if res.Truncated {
				t.Fatalf("%s: unexpected truncation", name)
			}
			if err := res.Check(g); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Unsettled() != 0 {
				t.Fatalf("%s: %d unsettled particles", name, res.Unsettled())
			}
		}
	}
}

// TestLaneEpochWrap crosses the per-slot epoch wrap (255 trials per slot)
// on a narrow lane and checks results still match a wide lane that never
// wraps.
func TestLaneEpochWrap(t *testing.T) {
	seeds := laneSeeds(600)
	g := graph.Complete(4)
	s := NewScratch()
	narrow := make([]*Result, len(seeds))
	for i := range narrow {
		narrow[i] = new(Result)
	}
	// One shared Scratch across two runs, so the second run's slots carry
	// epochs from the first — the reuse path the engine exercises.
	if err := RunLane(g, 0, Options{Batch: 2}, LaneStandard, seeds, s, narrow); err != nil {
		t.Fatal(err)
	}
	if err := RunLane(g, 0, Options{Batch: 2}, LaneStandard, seeds, s, narrow); err != nil {
		t.Fatal(err)
	}
	wide := runLane(t, g, 0, Options{Batch: 64}, LaneStandard, seeds)
	for i := range seeds {
		if !resultsEqual(narrow[i], wide[i]) {
			t.Fatalf("trial %d differs across the epoch wrap", i)
		}
	}
}

// TestLaneTruncation pins the batched truncation law to the scalar one:
// the budget check runs after the step, so a particle that reached a
// settleable vertex on the budget-exhausting step still truncates, and
// the partial particle's steps are included in TotalSteps.
func TestLaneTruncation(t *testing.T) {
	g := graph.Cycle(64)
	seeds := laneSeeds(32)
	opt := Options{Batch: 8, MaxSteps: 50}
	for name, variant := range map[string]LaneVariant{
		"standard": LaneStandard, "geom": LaneGeom, "capacity": LaneCapacity,
	} {
		for _, res := range runLane(t, g, 0, opt, variant, seeds) {
			if !res.Truncated {
				continue
			}
			var sum int64
			for _, s := range res.Steps {
				sum += s
			}
			if sum != res.TotalSteps {
				t.Fatalf("%s: truncated TotalSteps %d != sum of Steps %d", name, res.TotalSteps, sum)
			}
			if res.TotalSteps < opt.MaxSteps {
				t.Fatalf("%s: truncated below the budget: %d < %d", name, res.TotalSteps, opt.MaxSteps)
			}
			if res.Unsettled() == 0 {
				t.Fatalf("%s: truncated run settled everything", name)
			}
		}
	}
	// On a 64-cycle, dispersing all 64 particles within 50 total steps is
	// impossible, so every trial must truncate.
	for _, res := range runLane(t, g, 0, opt, LaneStandard, seeds) {
		if !res.Truncated {
			t.Fatal("standard: 64-cycle trial completed under a 50-step budget")
		}
	}
}

// TestLaneCapacityVector runs the batched capacity process under a
// per-vertex capacity vector and checks the aggregate fills each vertex
// to exactly its own capacity.
func TestLaneCapacityVector(t *testing.T) {
	g := graph.Complete(4)
	caps := []int{3, 1, 2, 5}
	opt := Options{Batch: 4, Capacities: caps}
	for _, res := range runLane(t, g, 0, opt, LaneCapacity, laneSeeds(12)) {
		if res.Capacity != 5 {
			t.Fatalf("Result.Capacity = %d, want the vector max 5", res.Capacity)
		}
		if len(res.Steps) != 11 {
			t.Fatalf("ran %d particles, want the summed capacity 11", len(res.Steps))
		}
		hosts := make([]int, g.N())
		for _, v := range res.SettledAt {
			hosts[v]++
		}
		for v, c := range caps {
			if hosts[v] != c {
				t.Fatalf("vertex %d hosts %d particles, want its capacity %d", v, hosts[v], c)
			}
		}
	}
}

// TestScalarCapacityVector is the scalar twin of the vector-capacity law
// on both the cnt-packed Sequential walk and the Parallel rounds.
func TestScalarCapacityVector(t *testing.T) {
	g := graph.Star(4)
	caps := []int{2, 1, 3, 1}
	for name, run := range map[string]func(Options, *rng.Source) (*Result, error){
		"sequential": func(o Options, r *rng.Source) (*Result, error) { return CapacitySequential(g, 0, o, r) },
		"parallel":   func(o Options, r *rng.Source) (*Result, error) { return CapacityParallel(g, 0, o, r) },
	} {
		res, err := run(Options{Capacities: caps}, rng.New(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Capacity != 3 {
			t.Fatalf("%s: Result.Capacity = %d, want the vector max 3", name, res.Capacity)
		}
		if len(res.Steps) != 7 {
			t.Fatalf("%s: ran %d particles, want the summed capacity 7", name, len(res.Steps))
		}
		hosts := make([]int, g.N())
		for _, v := range res.SettledAt {
			hosts[v]++
		}
		for v, c := range caps {
			if hosts[v] != c {
				t.Fatalf("%s: vertex %d hosts %d particles, want %d", name, v, hosts[v], c)
			}
		}
		if err := res.Check(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestCapacityVectorErrors checks the vector validation shared by the
// scalar and batched paths.
func TestCapacityVectorErrors(t *testing.T) {
	g := graph.Complete(4)
	for name, opt := range map[string]Options{
		"with uniform too": {Capacities: []int{1, 1, 1, 1}, Capacity: 2},
		"wrong length":     {Capacities: []int{1, 1}},
		"zero entry":       {Capacities: []int{1, 0, 1, 1}},
		"huge entry":       {Capacities: []int{1, maxCapacity + 1, 1, 1}},
		"too many":         {Capacities: []int{1, 1, 1, 1}, Particles: 5},
	} {
		if _, err := CapacitySequential(g, 0, opt, rng.New(1)); err == nil {
			t.Fatalf("%s: scalar run succeeded", name)
		}
		opt.Batch = 2
		outs := []*Result{new(Result)}
		if err := RunLane(g, 0, opt, LaneCapacity, []uint64{1}, nil, outs); err == nil {
			t.Fatalf("%s: lane run succeeded", name)
		}
	}
}

// TestLaneErrors checks the lane-specific rejections.
func TestLaneErrors(t *testing.T) {
	g := graph.Complete(4)
	outs := []*Result{new(Result)}
	seeds := []uint64{1}
	for name, tc := range map[string]struct {
		opt     Options
		variant LaneVariant
		seeds   []uint64
		outs    []*Result
		wantSub string
	}{
		"no batch":      {Options{}, LaneStandard, seeds, outs, "batch width"},
		"batch too big": {Options{Batch: maxBatch + 1}, LaneStandard, seeds, outs, "batch width"},
		"record":        {Options{Batch: 2, Record: true}, LaneStandard, seeds, outs, "record"},
		"rule":          {Options{Batch: 2, Rule: func(int32, int64) bool { return true }}, LaneStandard, seeds, outs, "settle rule"},
		"mismatch":      {Options{Batch: 2}, LaneStandard, []uint64{1, 2}, outs, "seeds"},
		"none variant":  {Options{Batch: 2}, LaneNone, seeds, outs, "no batched form"},
	} {
		err := RunLane(g, 0, tc.opt, tc.variant, tc.seeds, nil, tc.outs)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: err = %v, want substring %q", name, err, tc.wantSub)
		}
	}
	if err := RunLane(g, 99, Options{Batch: 2}, LaneStandard, seeds, nil, outs); err == nil {
		t.Fatal("invalid origin accepted")
	}
	// A huge implicit graph times a wide lane overflows the occupancy
	// bound (the width only reaches Batch when enough seeds are pending).
	big := graph.ImplicitComplete(1 << 24)
	bigSeeds := laneSeeds(64)
	bigOuts := make([]*Result, len(bigSeeds))
	for i := range bigOuts {
		bigOuts[i] = new(Result)
	}
	if err := RunLane(big, 0, Options{Batch: 64, Particles: 1}, LaneStandard, bigSeeds, nil, bigOuts); err == nil ||
		!strings.Contains(err.Error(), "occupancy") {
		t.Fatalf("occupancy bound: err = %v", err)
	}
	// Empty seed sets are a no-op.
	if err := RunLane(g, 0, Options{Batch: 2}, LaneStandard, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLaneGeomDefaultMatchesScalarParams checks geom and threshold
// parameter validation flows through the lane path.
func TestLaneParamErrors(t *testing.T) {
	g := graph.Complete(4)
	outs := []*Result{new(Result)}
	if err := RunLane(g, 0, Options{Batch: 2, SettleParam: 1.5}, LaneGeom, []uint64{1}, nil, outs); err == nil {
		t.Fatal("geom q > 1 accepted")
	}
	if err := RunLane(g, 0, Options{Batch: 2, SettleParam: -1}, LaneThreshold, []uint64{1}, nil, outs); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
