package core

import (
	"fmt"

	"dispersion/internal/graph"
)

// Odometer accumulates per-vertex visit counts over a process history —
// the observable the IDLA literature calls the odometer function (total
// activity per site). It is computed from recorded trajectories.
type Odometer struct {
	// Visits[v] counts arrivals at v over all particles, including the
	// settling arrival; the initial placement at the origin is counted
	// once per particle.
	Visits []int64
	// Settling[v] is 1 if some particle settled at v (always exactly one
	// per occupied vertex on a completed run).
	Settling []int8
}

// NewOdometer derives the odometer of a recorded run. It requires
// Options.Record to have been set.
func NewOdometer(g graph.Graph, res *Result) (*Odometer, error) {
	if res.Trajectories == nil {
		return nil, fmt.Errorf("core: odometer needs recorded trajectories")
	}
	o := &Odometer{
		Visits:   make([]int64, g.N()),
		Settling: make([]int8, g.N()),
	}
	for _, traj := range res.Trajectories {
		for _, v := range traj {
			o.Visits[v]++
		}
	}
	for _, v := range res.SettledAt {
		if v >= 0 {
			o.Settling[v]++
		}
	}
	return o, nil
}

// Total returns the total number of vertex arrivals, which equals total
// steps plus one initial placement per particle.
func (o *Odometer) Total() int64 {
	var s int64
	for _, v := range o.Visits {
		s += v
	}
	return s
}

// Max returns the busiest vertex and its visit count.
func (o *Odometer) Max() (vertex int, visits int64) {
	for v, c := range o.Visits {
		if c > visits {
			vertex, visits = v, c
		}
	}
	return vertex, visits
}

// ExcursionCount returns how many times the walk trajectories crossed the
// given vertex set boundary: the number of i->j transitions with
// inSet[i] != inSet[j], summed over all recorded trajectories. This is
// the "excursion" statistic used in the paper's path coupling
// (Theorem 5.4) and the binary-tree analysis.
func ExcursionCount(res *Result, inSet []bool) (int64, error) {
	if res.Trajectories == nil {
		return 0, fmt.Errorf("core: excursion count needs recorded trajectories")
	}
	var crossings int64
	for _, traj := range res.Trajectories {
		for i := 1; i < len(traj); i++ {
			if inSet[traj[i-1]] != inSet[traj[i]] {
				crossings++
			}
		}
	}
	return crossings, nil
}
