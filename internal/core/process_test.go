package core

import (
	"math"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

type runner func(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error)

func allProcesses() map[string]runner {
	return map[string]runner{
		"sequential": Sequential,
		"parallel":   Parallel,
		"uniform":    Uniform,
		"ctuniform": func(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
			res, err := CTUniform(g, origin, opt, r)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
	}
}

func testGraphs() []graph.Graph {
	return []graph.Graph{
		graph.Path(17),
		graph.Cycle(16),
		graph.Complete(20),
		graph.Star(15),
		graph.CompleteBinaryTree(4),
		graph.Lollipop(14),
		graph.Grid([]int{4, 4}, true),
		graph.Hypercube(4),
		graph.CliqueWithHair(12),
	}
}

func TestAllProcessesProduceValidRuns(t *testing.T) {
	for name, run := range allProcesses() {
		for _, g := range testGraphs() {
			r := rng.New(101)
			res, err := run(g, 0, Options{Record: true}, r)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, g.Name(), err)
			}
			if err := res.Check(g); err != nil {
				t.Errorf("%s on %s: %v", name, g.Name(), err)
			}
			if res.Steps[0] != 0 || res.SettledAt[0] != 0 {
				t.Errorf("%s on %s: particle 0 did not settle at origin instantly", name, g.Name())
			}
		}
	}
}

func TestProcessesDeterministic(t *testing.T) {
	g := graph.Lollipop(16)
	for name, run := range allProcesses() {
		a, err := run(g, 0, Options{}, rng.New(55))
		if err != nil {
			t.Fatal(err)
		}
		b, err := run(g, 0, Options{}, rng.New(55))
		if err != nil {
			t.Fatal(err)
		}
		if a.Dispersion != b.Dispersion || a.TotalSteps != b.TotalSteps {
			t.Errorf("%s: same seed produced different runs", name)
		}
	}
}

func TestOriginValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := Sequential(g, 7, Options{}, rng.New(1)); err == nil {
		t.Fatal("out-of-range origin accepted")
	}
	if _, err := Parallel(g, -1, Options{}, rng.New(1)); err == nil {
		t.Fatal("negative origin accepted")
	}
}

func TestDisconnectedRejected(t *testing.T) {
	b := graph.NewBuilder("disc", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sequential(g, 0, Options{}, rng.New(1)); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestParallelDispersionEqualsRounds(t *testing.T) {
	g := graph.Cycle(20)
	res, err := Parallel(g, 0, Options{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// The last particle to settle moved in every round, so its step count
	// (== Dispersion) equals the final settlement clock (round number).
	if res.SettleClock[len(res.SettleClock)-1] != res.Dispersion {
		t.Errorf("final round %d != dispersion %d",
			res.SettleClock[len(res.SettleClock)-1], res.Dispersion)
	}
}

func TestSequentialSettleClockIsTotalSteps(t *testing.T) {
	g := graph.Complete(12)
	res, err := Sequential(g, 0, Options{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.SettleClock[len(res.SettleClock)-1] != res.TotalSteps {
		t.Error("sequential settlement clock should end at TotalSteps")
	}
}

func TestMeanDominanceSeqParClique(t *testing.T) {
	// Theorem 4.1: E[τ_seq] <= E[τ_par]. Checked on K_32 with enough
	// trials that the gap (κ_cc vs π²/6, ~30%) is unmistakable.
	g := graph.Complete(32)
	const trials = 400
	var seqSum, parSum float64
	root := rng.New(2024)
	for i := 0; i < trials; i++ {
		s, err := Sequential(g, 0, Options{}, root.Split(1, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Parallel(g, 0, Options{}, root.Split(2, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		seqSum += float64(s.Dispersion)
		parSum += float64(p.Dispersion)
	}
	if parSum <= seqSum {
		t.Errorf("mean parallel dispersion %.1f not above sequential %.1f",
			parSum/trials, seqSum/trials)
	}
}

func TestTotalStepsSameMeanSeqPar(t *testing.T) {
	// Theorem 4.1 also gives equality in distribution of total steps;
	// check the means agree within Monte-Carlo error on K_24.
	g := graph.Complete(24)
	const trials = 600
	var seqSum, parSum, seqSq float64
	root := rng.New(77)
	for i := 0; i < trials; i++ {
		s, _ := Sequential(g, 0, Options{}, root.Split(1, uint64(i)))
		p, _ := Parallel(g, 0, Options{}, root.Split(2, uint64(i)))
		seqSum += float64(s.TotalSteps)
		seqSq += float64(s.TotalSteps) * float64(s.TotalSteps)
		parSum += float64(p.TotalSteps)
	}
	seqMean := seqSum / trials
	parMean := parSum / trials
	sd := math.Sqrt(seqSq/trials - seqMean*seqMean)
	if math.Abs(seqMean-parMean) > 5*sd/math.Sqrt(trials) {
		t.Errorf("total steps means differ: seq %.1f vs par %.1f (sd %.1f)",
			seqMean, parMean, sd)
	}
}

func TestCliqueSequentialCouponCollector(t *testing.T) {
	// On K_n the sequential dispersion is the longest coupon-collector
	// waiting time; its mean is κ_cc·n ≈ 1.255n (Lemma 5.1).
	g := graph.Complete(64)
	const trials = 500
	var sum float64
	root := rng.New(5)
	for i := 0; i < trials; i++ {
		res, _ := Sequential(g, 0, Options{}, root.Split(0, uint64(i)))
		sum += float64(res.Dispersion)
	}
	ratio := sum / trials / 64
	if ratio < 1.0 || ratio > 1.5 {
		t.Errorf("K_64 t_seq/n = %.3f, want ~1.255", ratio)
	}
}

func TestCliqueParallelPiSquaredOverSix(t *testing.T) {
	g := graph.Complete(64)
	const trials = 500
	var sum float64
	root := rng.New(6)
	for i := 0; i < trials; i++ {
		res, _ := Parallel(g, 0, Options{}, root.Split(0, uint64(i)))
		sum += float64(res.Dispersion)
	}
	ratio := sum / trials / 64
	want := math.Pi * math.Pi / 6
	if math.Abs(ratio-want) > 0.25 {
		t.Errorf("K_64 t_par/n = %.3f, want ~%.3f", ratio, want)
	}
}

func TestLazyRoughlyDoubles(t *testing.T) {
	// Theorem 4.3: lazy dispersion = (2+o(1))·non-lazy.
	g := graph.Cycle(48)
	const trials = 120
	var plain, lazy float64
	root := rng.New(8)
	for i := 0; i < trials; i++ {
		a, _ := Sequential(g, 0, Options{}, root.Split(1, uint64(i)))
		b, _ := Sequential(g, 0, Options{Lazy: true}, root.Split(2, uint64(i)))
		plain += float64(a.Dispersion)
		lazy += float64(b.Dispersion)
	}
	ratio := lazy / plain
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("lazy/plain dispersion ratio %.3f, want ~2", ratio)
	}
}

func TestCTUniformMatchesParallelOnClique(t *testing.T) {
	// Theorem 4.8: τ_CTU = (1+o(1))·τ_par. On K_n both concentrate.
	g := graph.Complete(64)
	const trials = 300
	var ctu, par float64
	root := rng.New(9)
	for i := 0; i < trials; i++ {
		a, err := CTUniform(g, 0, Options{}, root.Split(1, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Parallel(g, 0, Options{}, root.Split(2, uint64(i)))
		ctu += a.Time
		par += float64(b.Dispersion)
	}
	ratio := ctu / par
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("CTU/parallel dispersion ratio %.3f, want ~1", ratio)
	}
}

func TestCTSequentialTimeTracksSteps(t *testing.T) {
	g := graph.Complete(32)
	res, err := CTSequential(g, 0, Options{}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	// The slowest particle's real time is a Gamma(steps) variate; it
	// should be within a factor ~2 of its step count for steps >~ 30.
	if res.Time < float64(res.Dispersion)*0.4 || res.Time > float64(res.Dispersion)*2.5 {
		t.Errorf("CT sequential time %.1f far from discrete dispersion %d",
			res.Time, res.Dispersion)
	}
	if len(res.SettleTimes) != g.N() {
		t.Errorf("SettleTimes has %d entries, want %d", len(res.SettleTimes), g.N())
	}
}

func TestRandomPriorityStillValid(t *testing.T) {
	g := graph.Grid([]int{5, 5}, false)
	res, err := Parallel(g, 12, Options{RandomPriority: true, Record: true}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(g); err != nil {
		t.Error(err)
	}
}

func TestSettleRuleDelaysSettlement(t *testing.T) {
	// A rule that refuses settlement for the first 5 steps forces every
	// later particle to take at least 6 steps.
	g := graph.Complete(16)
	rule := func(v int32, step int64) bool { return step > 5 }
	res, err := Sequential(g, 0, Options{Rule: rule}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(g); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < g.N(); i++ {
		if res.Steps[i] <= 5 {
			t.Fatalf("particle %d settled after %d steps despite rule", i, res.Steps[i])
		}
	}
}

func TestMaxStepsTruncates(t *testing.T) {
	g := graph.Cycle(64)
	res, err := Sequential(g, 0, Options{MaxSteps: 100}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("run not truncated")
	}
	if res.TotalSteps > 100 {
		t.Fatalf("truncated run took %d steps", res.TotalSteps)
	}
	if res.Unsettled() == 0 {
		t.Fatal("truncated run claims everything settled")
	}
}

func TestPhaseClockSemantics(t *testing.T) {
	g := graph.Complete(10)
	res, err := Parallel(g, 0, Options{}, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	// PhaseClock(n, 1) is the final settlement round.
	if got := res.PhaseClock(n, 1); got != res.SettleClock[n-1] {
		t.Errorf("PhaseClock(n,1) = %d, want final clock %d", got, res.SettleClock[n-1])
	}
	// At PhaseClock(n, k), fewer than k particles are unsettled.
	for k := 1; k < n; k++ {
		c := res.PhaseClock(n, k)
		if c < 0 {
			t.Fatalf("phase %d unreached", k)
		}
		if got := res.UnsettledAtClock(c); got >= k {
			t.Errorf("after PhaseClock(n,%d)=%d still %d unsettled", k, c, got)
		}
	}
}

func TestUnsettledAtClock(t *testing.T) {
	g := graph.Complete(8)
	res, err := Parallel(g, 0, Options{}, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	// Strictly before clock 0 nothing has settled, not even particle 0.
	if got := res.UnsettledAtClock(-1); got != g.N() {
		t.Errorf("before time 0: %d unsettled, want n=%d", got, g.N())
	}
	last := res.SettleClock[len(res.SettleClock)-1]
	if got := res.UnsettledAtClock(last); got != 0 {
		t.Errorf("after final clock: %d unsettled", got)
	}
}

func TestAggregateAtGrowsFromOrigin(t *testing.T) {
	g := graph.Grid([]int{6, 6}, false)
	origin := graph.GridIndex([]int{6, 6}, []int{3, 3})
	res, err := Sequential(g, origin, Options{}, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	agg := res.AggregateAt(10)
	if len(agg) != 10 || agg[0] != int32(origin) {
		t.Fatalf("aggregate %v should start at origin %d", agg, origin)
	}
	// The aggregate is connected at every prefix (IDLA invariant: a
	// particle settles adjacent to the visited region... in fact on the
	// first unoccupied vertex of a walk started inside the aggregate).
	inAgg := map[int32]bool{int32(origin): true}
	for _, v := range agg[1:] {
		adjacent := false
		for _, u := range g.Neighbors(int(v)) {
			if inAgg[u] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("settled vertex %d not adjacent to aggregate", v)
		}
		inAgg[v] = true
	}
}

func TestUniformDispersionBetweenSeqAndPar(t *testing.T) {
	// Theorem 4.7: uniform longest walk ⪯ parallel longest walk. Check
	// means: seq <= unif-ish <= par is not exactly claimed, but
	// unif <= par is; verify with margin.
	g := graph.Complete(48)
	const trials = 400
	var unif, par float64
	root := rng.New(17)
	for i := 0; i < trials; i++ {
		u, _ := Uniform(g, 0, Options{}, root.Split(1, uint64(i)))
		p, _ := Parallel(g, 0, Options{}, root.Split(2, uint64(i)))
		unif += float64(u.Dispersion)
		par += float64(p.Dispersion)
	}
	if unif > par*1.02 {
		t.Errorf("uniform mean dispersion %.1f exceeds parallel %.1f", unif/trials, par/trials)
	}
}

func TestEveryVertexSettledExactlyOnce(t *testing.T) {
	g := graph.Hypercube(5)
	for name, run := range allProcesses() {
		res, err := run(g, 3, Options{}, rng.New(18))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := make([]bool, g.N())
		for _, v := range res.SettledAt {
			if seen[v] {
				t.Fatalf("%s: vertex %d settled twice", name, v)
			}
			seen[v] = true
		}
	}
}

func TestTreeSequentialLowerBound(t *testing.T) {
	// Theorem 3.7: t_seq(T) >= 2n-3 for trees; check the empirical mean
	// over trials clears it (with slack for Monte-Carlo noise).
	for _, g := range []graph.Graph{graph.Star(24), graph.CompleteBinaryTree(4)} {
		const trials = 200
		var sum float64
		root := rng.New(19)
		for i := 0; i < trials; i++ {
			res, _ := Sequential(g, 0, Options{}, root.Split(3, uint64(i)))
			sum += float64(res.Dispersion)
		}
		mean := sum / trials
		bound := float64(2*g.N() - 3)
		if mean < bound*0.9 {
			t.Errorf("%s: mean t_seq %.1f below tree bound %g", g.Name(), mean, bound)
		}
	}
}
