package core

import (
	"reflect"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// variantRuns maps each new variant process's one-shot form for
// table-driven tests.
func variantRuns() map[string]func(graph.Graph, int, Options, *rng.Source) (*Result, error) {
	return map[string]func(graph.Graph, int, Options, *rng.Source) (*Result, error){
		"sequential-geom":      SequentialGeom,
		"sequential-threshold": SequentialThreshold,
		"capacity":             CapacitySequential,
		"capacity-parallel":    CapacityParallel,
	}
}

// The recording and non-recording paths of every variant must consume the
// same RNG stream: same seed, same scalar outcome, and recorded
// trajectories that pass the structural Check.
func TestVariantRecordMatchesHotPath(t *testing.T) {
	g := graph.Grid([]int{4, 4}, true)
	for name, run := range variantRuns() {
		plain, err := run(g, 0, Options{}, rng.New(17))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rec, err := run(g, 0, Options{Record: true}, rng.New(17))
		if err != nil {
			t.Fatalf("%s record: %v", name, err)
		}
		if plain.Dispersion != rec.Dispersion || plain.TotalSteps != rec.TotalSteps ||
			!reflect.DeepEqual(plain.SettledAt, rec.SettledAt) {
			t.Errorf("%s: recording changed the sample path", name)
		}
		if err := rec.Check(g); err != nil {
			t.Errorf("%s: recorded run fails Check: %v", name, err)
		}
	}
}

// One-shot and *Into forms share buffers correctly: consecutive Into runs
// through one Scratch reproduce independent one-shot runs draw for draw.
func TestVariantIntoReuse(t *testing.T) {
	g := graph.Star(9)
	intos := map[string]func(graph.Graph, int, Options, *rng.Source, *Scratch, *Result) error{
		"sequential-geom":      SequentialGeomInto,
		"sequential-threshold": SequentialThresholdInto,
		"capacity":             CapacitySequentialInto,
		"capacity-parallel":    CapacityParallelInto,
	}
	for name, into := range intos {
		oneshot := variantRuns()[name]
		s := NewScratch()
		var res Result
		for trial := uint64(0); trial < 300; trial++ {
			want, err := oneshot(g, 0, Options{}, rng.New(trial))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := into(g, 0, Options{}, rng.New(trial), s, &res); err != nil {
				t.Fatalf("%s into: %v", name, err)
			}
			if res.Dispersion != want.Dispersion || res.TotalSteps != want.TotalSteps ||
				!reflect.DeepEqual(res.SettledAt, want.SettledAt) {
				t.Fatalf("%s trial %d: Into diverged from one-shot", name, trial)
			}
		}
	}
}

// Capacity bookkeeping: a full run hosts exactly c particles on every
// vertex, partial loads never exceed c anywhere.
func TestCapacityOccupancy(t *testing.T) {
	g := graph.Cycle(12)
	for name, run := range map[string]func(graph.Graph, int, Options, *rng.Source) (*Result, error){
		"capacity": CapacitySequential, "capacity-parallel": CapacityParallel,
	} {
		for _, opt := range []Options{
			{Capacity: 3},
			{Capacity: 3, Particles: 20},
			{}, // default capacity 2, full load
		} {
			res, err := run(g, 0, opt, rng.New(5))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			c := opt.Capacity
			if c == 0 {
				c = DefaultCapacity
			}
			wantK := opt.Particles
			if wantK == 0 {
				wantK = c * g.N()
			}
			if len(res.SettledAt) != wantK {
				t.Fatalf("%s: %d particles, want %d", name, len(res.SettledAt), wantK)
			}
			if res.Capacity != c {
				t.Errorf("%s: Result.Capacity = %d, want %d", name, res.Capacity, c)
			}
			hosts := make([]int, g.N())
			for _, v := range res.SettledAt {
				hosts[v]++
			}
			for v, h := range hosts {
				if h > c {
					t.Fatalf("%s: vertex %d hosts %d > capacity %d", name, v, h, c)
				}
				if wantK == c*g.N() && h != c {
					t.Fatalf("%s: full run left vertex %d at %d/%d", name, v, h, c)
				}
			}
		}
	}
}

// MaxSteps truncation fires on the variant processes and marks the run.
func TestVariantMaxSteps(t *testing.T) {
	g := graph.Cycle(64)
	for name, run := range variantRuns() {
		res, err := run(g, 0, Options{MaxSteps: 10}, rng.New(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Truncated {
			t.Errorf("%s: MaxSteps=10 did not truncate", name)
		}
		// Sequential disciplines stop mid-walk at the bound; the parallel
		// discipline checks at round granularity, overshooting by at most
		// one step per particle.
		if limit := 10 + int64(len(res.Steps)); res.TotalSteps > limit {
			t.Errorf("%s: truncated run walked %d total steps (limit %d)", name, res.TotalSteps, limit)
		}
	}
}

// Successive capacity runs through one Scratch must not leak counts
// across epochs — including across the uint8 epoch wrap.
func TestCapacityEpochWrap(t *testing.T) {
	g := graph.Complete(6)
	s := NewScratch()
	var res Result
	for trial := 0; trial < 600; trial++ {
		if err := CapacitySequentialInto(g, 0, Options{}, rng.New(uint64(trial)), s, &res); err != nil {
			t.Fatal(err)
		}
		hosts := make([]int, g.N())
		for _, v := range res.SettledAt {
			hosts[v]++
		}
		for v, h := range hosts {
			if h != DefaultCapacity {
				t.Fatalf("trial %d: vertex %d hosts %d, want %d (stale counts leaked)",
					trial, v, h, DefaultCapacity)
			}
		}
	}
}
