package core

// Scratch holds the reusable per-worker state of the trial hot path: the
// epoch-stamped occupancy map and the position/priority/active/event
// buffers every process needs. A worker allocates one Scratch and threads
// it through millions of *Into runs; steady-state trials then allocate
// nothing. A Scratch is not safe for concurrent use, and it adapts
// automatically when consecutive runs use graphs of different sizes.
type Scratch struct {
	// epoch stamps the current run: vertex v is occupied iff
	// occ[v] == epoch, so starting a new run is one increment instead of
	// an O(n) clear. Byte-wide stamps keep the occupancy footprint
	// identical to the []bool they replace (the occupied check is the
	// second-hottest memory access after the adjacency itself), at the
	// price of one real clear every 255 runs when the epoch wraps.
	epoch uint8
	occ   []uint8

	// cnt is the occupancy count array of the capacity processes: the
	// high byte of each entry is the epoch that stamped it and the low 24
	// bits the settled-particle count, so counts reset with the same O(1)
	// epoch bump as occ. Entries stamped by an older epoch read as zero.
	cnt []uint32

	// sparse selects the O(particles) occupancy backend for the current
	// run (see sparse.go): occ and cnt are left untouched and occupancy
	// lives in table instead. beginRun decides per run, so one Scratch can
	// alternate between a million-vertex sparse run and a small dense one.
	sparse bool
	// forceSparse pins every run to the sparse backend regardless of size;
	// it exists so tests can check dense/sparse bit-identity on graphs
	// small enough to enumerate.
	forceSparse bool
	table       sparseTable

	pos    []int32
	active []int32
	prio   []int32
	events eventHeap

	// lane is the SoA state bank of the batched execution mode (see
	// lane.go); it stays empty until the worker's first RunLane call.
	lane laneState
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// beginRun prepares the occupancy map for a run of k particles on n
// vertices: everything starts unoccupied. Large, sparse runs (see
// sparseOccupancy) route occupancy through the O(k) hash table instead of
// the O(n) dense arrays, which is what keeps million-vertex dispersion on
// implicit graphs resident in O(particles) memory.
func (s *Scratch) beginRun(n, k int) {
	if s.sparse = s.forceSparse || sparseOccupancy(n, k); s.sparse {
		// Capacity runs can have k > n particles, but never more than n
		// distinct occupied vertices.
		if k > n {
			k = n
		}
		s.table.reset(k)
		return
	}
	if cap(s.occ) < n {
		s.occ = make([]uint8, n)
		s.epoch = 0
	}
	s.occ = s.occ[:n]
	s.epoch++
	if s.epoch == 0 {
		// Epoch wrapped: stale stamps could collide, so pay one clear.
		// Clearing the full capacity (not just this run's prefix) keeps
		// the invariant that every stamp in the buffer is <= epoch even
		// when runs alternate between graph sizes. The count array wraps
		// on the same epoch, so it clears here too.
		clear(s.occ[:cap(s.occ)])
		clear(s.cnt[:cap(s.cnt)])
		s.epoch = 1
	}
}

// counts prepares the occupancy count array for a capacity-process run on
// n vertices; all counts start at zero. Fresh entries carry epoch stamp 0,
// which beginRun guarantees is never the live epoch. Sparse runs keep
// counts in the hash table, so there is nothing to size.
func (s *Scratch) counts(n int) {
	if s.sparse {
		return
	}
	if cap(s.cnt) < n {
		s.cnt = make([]uint32, n)
	}
	s.cnt = s.cnt[:n]
}

// count returns how many settled particles vertex v hosts this run.
func (s *Scratch) count(v int32) int32 {
	if s.sparse {
		return s.table.get(v) &^ sparseFull
	}
	if c := s.cnt[v]; uint8(c>>24) == s.epoch {
		return int32(c & 0xffffff)
	}
	return 0
}

// setCount records that vertex v hosts c settled particles this run.
func (s *Scratch) setCount(v int32, c int32) {
	if s.sparse {
		s.table.set(v, c|(s.table.get(v)&sparseFull))
		return
	}
	s.cnt[v] = uint32(s.epoch)<<24 | uint32(c)
}

// occupied reports whether vertex v hosts a settled particle this run (is
// at capacity, for the capacity processes).
func (s *Scratch) occupied(v int32) bool {
	if s.sparse {
		return s.table.get(v)&sparseFull != 0
	}
	return s.occ[v] == s.epoch
}

// occupy marks vertex v as hosting a settled particle (as being at
// capacity, for the capacity processes).
func (s *Scratch) occupy(v int32) {
	if s.sparse {
		s.table.set(v, s.table.get(v)|sparseFull)
		return
	}
	s.occ[v] = s.epoch
}

// growI32 returns a length-n slice reusing buf's backing array when it is
// large enough.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growI64 is growI32 for int64 buffers.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// reset prepares res for a fresh run of k particles, reusing every backing
// array the previous occupant of this Result left behind.
func (res *Result) reset(k int, record bool) {
	res.Dispersion = 0
	res.TotalSteps = 0
	res.Truncated = false
	res.Capacity = 1
	res.Steps = growI64(res.Steps, k)
	for i := range res.Steps {
		res.Steps[i] = 0
	}
	res.SettledAt = growI32(res.SettledAt, k)
	for i := range res.SettledAt {
		res.SettledAt[i] = -1
	}
	if cap(res.SettleOrder) < k {
		res.SettleOrder = make([]int32, 0, k)
	} else {
		res.SettleOrder = res.SettleOrder[:0]
	}
	if cap(res.SettleClock) < k {
		res.SettleClock = make([]int64, 0, k)
	} else {
		res.SettleClock = res.SettleClock[:0]
	}
	if record {
		res.Trajectories = make([][]int32, k)
	} else {
		res.Trajectories = nil
	}
}

// reset prepares a continuous-time result for a fresh run of k particles.
func (res *CTResult) reset(k int, record bool) {
	res.Result.reset(k, record)
	res.Time = 0
	if cap(res.SettleTimes) < k {
		res.SettleTimes = make([]float64, 0, k)
	} else {
		res.SettleTimes = res.SettleTimes[:0]
	}
}
