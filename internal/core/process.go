// Package core implements the paper's dispersion processes on finite
// graphs: Sequential-IDLA, Parallel-IDLA, Uniform-IDLA, their lazy
// variants, and the continuous-time Sequential and Uniform (CTU) processes
// of Section 4.3. All processes share the IDLA rule: n particles start at
// an origin vertex and each performs a random walk until it first stands on
// an unoccupied vertex, where it settles. The dispersion time is the
// maximum number of steps performed by any particle (equivalently, for the
// parallel process, the first round at which every vertex hosts a
// particle).
//
// Each process comes in two forms: a one-shot function (Sequential,
// Parallel, ...) that allocates its own state, and an *Into variant
// (SequentialInto, ...) that writes into a caller-owned Result and draws
// its working buffers from a reusable per-worker Scratch — the
// zero-allocation hot path the public engine drives. Both forms consume
// the identical RNG stream, so they are interchangeable sample path for
// sample path. Every walk step dispatches through the step Kernel the
// graph selected at build time (closed-form for arithmetic families,
// fused CSR otherwise), which is likewise draw-for-draw identical to the
// generic CSR lookup.
package core

import (
	"fmt"
	"math"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// SettleRule decides whether a particle standing on a vacant vertex
// settles there. The standard IDLA rule settles always; Proposition A.1
// studies a modified rule on the clique-with-hair showing that letting
// particles walk longer can *decrease* the dispersion time (no
// least-action principle). The step argument is the number of steps the
// particle has performed so far.
type SettleRule func(v int32, step int64) bool

// Options configures a dispersion process run.
type Options struct {
	// Lazy makes every particle move as a lazy random walk (stay with
	// probability 1/2). Theorem 4.3: this doubles dispersion up to 1+o(1).
	Lazy bool
	// Record keeps each particle's full trajectory (the rows of the
	// paper's block representation). Memory is O(total steps).
	Record bool
	// RandomPriority resolves same-round settlement conflicts in the
	// Parallel process by a uniformly random priority permutation instead
	// of least-index (the σ(L) device in the proof of Theorem 4.2).
	RandomPriority bool
	// Rule overrides the settlement rule in the Sequential process
	// (Proposition A.1). Nil means the standard rule: settle immediately.
	Rule SettleRule
	// MaxSteps aborts a run whose total step count exceeds this bound;
	// zero means no bound. Guards against misconfigured experiments.
	MaxSteps int64
	// Particles is the number of particles to disperse (the Section 6.2
	// variant with fewer particles than sites). Zero means the default:
	// n for the unit-capacity processes, Capacity·n for the capacity
	// processes. Values above the total capacity are rejected: the
	// surplus could never settle.
	Particles int
	// RandomOrigins samples each particle's start vertex uniformly at
	// random instead of using the common origin (the Section 6.2 variant
	// with random origins). Under the standard rule a particle starting
	// on an unoccupied vertex settles there instantly with zero steps;
	// the settle-rule processes instead apply their rule to that step-0
	// standing (a geom particle accepts it with probability q, a
	// threshold particle not before step T).
	RandomOrigins bool
	// SettleParam parameterizes the registered settle-rule processes of
	// Proposition A.1: the per-visit settle probability q of
	// SequentialGeom and the minimum step count T of SequentialThreshold.
	// Zero leaves each process its documented default. The standard
	// processes ignore it.
	SettleParam float64
	// Capacity is the number of particles each vertex can host in the
	// capacity processes (CapacitySequential, CapacityParallel): a
	// particle settles on a vertex holding fewer than Capacity settled
	// particles. Zero means DefaultCapacity. The unit-capacity processes
	// ignore it.
	Capacity int
	// Capacities gives every vertex its own capacity in the capacity
	// processes: vertex v hosts up to Capacities[v] settled particles. The
	// vector must have one entry per vertex, each in [1, maxCapacity], and
	// is mutually exclusive with Capacity. By default Sum(Capacities)
	// particles disperse; Result.Capacity reports the vector's maximum.
	// Nil selects the uniform law.
	Capacities []int
	// Batch selects the batched execution mode: Batch concurrent trials
	// advance together through one SoA lane per worker, stepped by the
	// graph kernel's fused lane loops. Zero (the default) is the scalar
	// path. Batched trials draw from per-trial counter-mode streams (see
	// rng's lane seed law), so their results are pure functions of (seed,
	// experiment, trial) — invariant to the batch width, worker count and
	// sharding — and distribution-identical (not bit-identical) to the
	// scalar path. Only the Sequential-family processes have a batched
	// form.
	Batch int
}

// numParticles resolves Options.Particles against the graph size.
func (o *Options) numParticles(n int) (int, error) {
	k := o.Particles
	if k == 0 {
		k = n
	}
	if k < 1 || k > n {
		return 0, fmt.Errorf("core: %d particles on %d vertices (want 1..n)", k, n)
	}
	return k, nil
}

// DefaultCapacity is the per-vertex capacity the capacity processes use
// when Options.Capacity is zero: the smallest value whose behaviour is not
// the unit-capacity Sequential/Parallel process.
const DefaultCapacity = 2

// maxCapacity bounds Options.Capacity so per-vertex counts fit the 24 bits
// the Scratch count array reserves next to its epoch stamp.
const maxCapacity = 1 << 20

// capacity resolves Options.Capacity for the capacity processes.
func (o *Options) capacity() (int, error) {
	c := o.Capacity
	if c == 0 {
		c = DefaultCapacity
	}
	if c < 1 || c > maxCapacity {
		return 0, fmt.Errorf("core: per-vertex capacity %d (want 1..%d)", c, maxCapacity)
	}
	return c, nil
}

// capPlan is the resolved per-vertex capacity law of a capacity-process
// run: either a uniform capacity or the Options.Capacities vector.
type capPlan struct {
	// uniform is the capacity every vertex shares, or the vector's maximum
	// for vector runs (what Result.Capacity reports either way).
	uniform int
	// caps is the per-vertex vector; nil selects the uniform law.
	caps []int
	// total is the summed capacity — the default (and maximum) particle
	// count.
	total int
}

// at returns vertex v's capacity under the plan.
func (p *capPlan) at(v int32) int {
	if p.caps != nil {
		return p.caps[v]
	}
	return p.uniform
}

// capacityPlan resolves Options.Capacity/Capacities for a graph with n
// vertices.
func (o *Options) capacityPlan(n int) (capPlan, error) {
	if len(o.Capacities) > 0 {
		if o.Capacity != 0 {
			return capPlan{}, fmt.Errorf("core: Capacity and Capacities are mutually exclusive")
		}
		if len(o.Capacities) != n {
			return capPlan{}, fmt.Errorf("core: %d per-vertex capacities for %d vertices", len(o.Capacities), n)
		}
		p := capPlan{caps: o.Capacities}
		for v, c := range o.Capacities {
			if c < 1 || c > maxCapacity {
				return capPlan{}, fmt.Errorf("core: vertex %d capacity %d (want 1..%d)", v, c, maxCapacity)
			}
			p.total += c
			if c > p.uniform {
				p.uniform = c
			}
		}
		return p, nil
	}
	c, err := o.capacity()
	if err != nil {
		return capPlan{}, err
	}
	return capPlan{uniform: c, total: c * n}, nil
}

// numParticlesCap resolves Options.Particles against the plan's total
// capacity. Zero means fill every vertex to capacity.
func (o *Options) numParticlesCap(n int, p capPlan) (int, error) {
	k := o.Particles
	if k == 0 {
		k = p.total
	}
	if k < 1 || k > p.total {
		return 0, fmt.Errorf("core: %d particles on %d vertices of total capacity %d (want 1..%d)", k, n, p.total, p.total)
	}
	return k, nil
}

// startVertex returns the origin for the next particle under the options.
func (o *Options) startVertex(origin, n int, r *rng.Source) int32 {
	if o.RandomOrigins {
		return int32(r.Intn(n))
	}
	return int32(origin)
}

// Result reports the outcome of a single dispersion-process run.
type Result struct {
	// Dispersion is the maximum number of random-walk steps performed by
	// any particle: the paper's τ. For the Parallel process this equals
	// the number of rounds until the last settlement.
	Dispersion int64
	// TotalSteps is the total number of jumps performed by all particles.
	// Theorem 4.1 proves this has the same distribution in the Sequential
	// and Parallel processes.
	TotalSteps int64
	// Steps[i] is the number of steps performed by particle i (in start
	// order for Sequential; fixed labels for Parallel/Uniform).
	Steps []int64
	// SettledAt[i] is the vertex where particle i settled.
	SettledAt []int32
	// SettleOrder lists particle indices in settlement order.
	SettleOrder []int32
	// SettleClock[k] is the process time at which the (k+1)-th settlement
	// happened: round number for Parallel, global tick for Uniform,
	// real time (as float bits via ClockTimes) for continuous processes,
	// cumulative step count for Sequential.
	SettleClock []int64
	// Trajectories[i] is particle i's visited vertex sequence including
	// the origin (so len = Steps[i]+1); nil unless Options.Record.
	Trajectories [][]int32
	// Truncated reports that Options.MaxSteps fired; all counts are then
	// lower bounds.
	Truncated bool
	// Capacity is the per-vertex capacity the run executed under: the
	// resolved c of a capacity process, 1 for the unit-capacity
	// processes.
	Capacity int
}

// Unsettled returns how many particles were left unsettled (only nonzero
// for truncated runs).
func (res *Result) Unsettled() int {
	n := 0
	for _, v := range res.SettledAt {
		if v < 0 {
			n++
		}
	}
	return n
}

// validateRun checks the (graph, origin) inputs shared by every process.
// Connectivity is cached at graph build time, so the check is cheap enough
// for the per-trial hot path.
func validateRun(g graph.Graph, origin int) error {
	if origin < 0 || origin >= g.N() {
		return fmt.Errorf("core: origin %d out of range [0,%d)", origin, g.N())
	}
	if !g.IsConnected() {
		return fmt.Errorf("core: graph %s is not connected", g.Name())
	}
	return nil
}

// step advances one particle one move under the configured walk law,
// dispatching through the graph's step kernel.
func step(kern graph.Kernel, v int32, lazy bool, r *rng.Source) int32 {
	if lazy && r.Bool() {
		return v
	}
	return kern.Step(v, r)
}

// Sequential runs the Sequential-IDLA process on g from origin: particles
// move one at a time, each walking until it settles, and only then does
// the next particle start. Particle 0 settles at the origin instantly.
func Sequential(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := SequentialInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SequentialInto is Sequential writing into a caller-owned Result, drawing
// its occupancy map from the given Scratch (nil allocates a transient
// one). res is fully overwritten, reusing its backing arrays; the RNG
// stream consumed is identical to Sequential's.
func SequentialInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	k, err := opt.numParticles(n)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	s.beginRun(n, k)
	kern := g.Kernel()
	rule := opt.Rule
	if rule == nil && !opt.Record {
		// Hot path: the entire settlement walk of each particle runs as
		// one scratch-dispatched kernel call (the fused dense loop, or the
		// draw-identical sparse Step loop), so the per-step arithmetic
		// (including the RNG) inlines into the kernel's concrete loop
		// instead of paying an interface dispatch per step. Draw-for-draw
		// identical to the general loop below.
		for i := 0; i < k; i++ {
			v := opt.startVertex(origin, n, r)
			budget := int64(math.MaxInt64)
			if opt.MaxSteps > 0 {
				budget = opt.MaxSteps - res.TotalSteps
			}
			v, steps := s.walkUntilVacant(kern, v, opt.Lazy, budget, r)
			res.TotalSteps += steps
			if steps >= budget {
				// The MaxSteps guard fires mid-walk, exactly as the
				// step-by-step loop would have: the particle does not
				// settle even if its last move reached a vacant vertex.
				res.Truncated = true
				res.Steps[i] = steps
				return nil
			}
			s.occupy(v)
			res.settle(i, v, steps, res.TotalSteps)
		}
		return nil
	}
	for i := 0; i < k; i++ {
		v := opt.startVertex(origin, n, r)
		var steps int64
		var traj []int32
		if opt.Record {
			traj = append(traj, v)
		}
		// A particle standing on a vacant vertex settles instantly (this
		// is how the first particle claims the origin); a settlement rule
		// may veto it, exactly as ρ̃ does in Proposition A.1.
		for s.occupied(v) || (rule != nil && !rule(v, steps)) {
			v = step(kern, v, opt.Lazy, r)
			steps++
			res.TotalSteps++
			if opt.Record {
				traj = append(traj, v)
			}
			if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
				res.Truncated = true
				res.Steps[i] = steps
				res.Trajectories = appendTraj(res.Trajectories, i, traj, opt.Record)
				return nil
			}
		}
		s.occupy(v)
		res.settle(i, v, steps, res.TotalSteps)
		res.Trajectories = appendTraj(res.Trajectories, i, traj, opt.Record)
	}
	return nil
}

// Parallel runs the Parallel-IDLA process on g from origin: all n
// particles start at the origin at round 0 (one settles there instantly),
// then in every round all unsettled particles move simultaneously; on each
// vertex that is unoccupied at the start of the round, the
// highest-priority arriving particle settles. Priority is least index, or
// a uniform permutation under Options.RandomPriority.
func Parallel(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := ParallelInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// ParallelInto is Parallel writing into a caller-owned Result, drawing its
// occupancy map and position/priority/active buffers from the given
// Scratch (nil allocates a transient one). res is fully overwritten; the
// RNG stream consumed is identical to Parallel's.
func ParallelInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	k, err := opt.numParticles(n)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	s.beginRun(n, k)
	kern := g.Kernel()

	// Priority order for settlement conflicts: least index, or a uniform
	// permutation under RandomPriority.
	s.prio = growI32(s.prio, k)
	prio := s.prio
	for i := range prio {
		prio[i] = int32(i)
	}
	if opt.RandomPriority {
		r.Shuffle(len(prio), func(i, j int) { prio[i], prio[j] = prio[j], prio[i] })
	}
	s.pos = growI32(s.pos, k)
	pos := s.pos
	for i := range pos {
		pos[i] = opt.startVertex(origin, n, r)
	}
	if opt.Record {
		for i := 0; i < k; i++ {
			res.Trajectories[i] = []int32{pos[i]}
		}
	}
	// Round 0 settlement: every particle standing on a vacant vertex
	// settles, one per vertex in priority order. With a common origin
	// this is exactly "one of them instantaneously settles at the
	// origin".
	s.active = growI32(s.active, k)[:0]
	active := s.active
	for _, p := range prio {
		if !s.occupied(pos[p]) {
			s.occupy(pos[p])
			res.settle(int(p), pos[p], 0, 0)
		} else {
			active = append(active, p)
		}
	}

	var round int64
	for len(active) > 0 {
		round++
		// Every unsettled particle moves simultaneously.
		for _, p := range active {
			pos[p] = step(kern, pos[p], opt.Lazy, r)
			res.Steps[p]++
			res.TotalSteps++
			if opt.Record {
				res.Trajectories[p] = append(res.Trajectories[p], pos[p])
			}
		}
		// Settlement resolution in priority order: one settler per vertex.
		keep := active[:0]
		for _, p := range active {
			if !s.occupied(pos[p]) {
				s.occupy(pos[p])
				res.settle(int(p), pos[p], res.Steps[p], round)
			} else {
				keep = append(keep, p)
			}
		}
		active = keep
		if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
			res.Truncated = true
			return nil
		}
	}
	return nil
}

// Uniform runs the (discrete) Uniform-IDLA of Section 4.2: at every tick a
// uniformly random unsettled particle moves one step, settling if it lands
// on an unoccupied vertex. The returned SettleClock counts ticks restricted
// to unsettled particles, which is the process's natural filtration; the
// paper's lazier convention (ticks hitting settled particles are wasted)
// changes only the clock, not any trajectory, and is recovered by the
// continuous-time process below.
func Uniform(g graph.Graph, origin int, opt Options, r *rng.Source) (*Result, error) {
	res := new(Result)
	if err := UniformInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// UniformInto is Uniform writing into a caller-owned Result, drawing its
// occupancy map and position/active buffers from the given Scratch (nil
// allocates a transient one). res is fully overwritten; the RNG stream
// consumed is identical to Uniform's.
func UniformInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *Result) error {
	n := g.N()
	k, err := opt.numParticles(n)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	s.beginRun(n, k)
	kern := g.Kernel()
	s.pos = growI32(s.pos, k)
	pos := s.pos
	for i := range pos {
		pos[i] = opt.startVertex(origin, n, r)
	}
	if opt.Record {
		for i := 0; i < k; i++ {
			res.Trajectories[i] = []int32{pos[i]}
		}
	}
	s.active = growI32(s.active, k)[:0]
	active := s.active
	for i := 0; i < k; i++ {
		if !s.occupied(pos[i]) {
			s.occupy(pos[i])
			res.settle(i, pos[i], 0, 0)
		} else {
			active = append(active, int32(i))
		}
	}
	var tick int64
	for len(active) > 0 {
		tick++
		ai := r.Intn(len(active))
		p := active[ai]
		pos[p] = step(kern, pos[p], opt.Lazy, r)
		res.Steps[p]++
		res.TotalSteps++
		if opt.Record {
			res.Trajectories[p] = append(res.Trajectories[p], pos[p])
		}
		if !s.occupied(pos[p]) {
			s.occupy(pos[p])
			res.settle(int(p), pos[p], res.Steps[p], tick)
			active[ai] = active[len(active)-1]
			active = active[:len(active)-1]
		}
		if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
			res.Truncated = true
			return nil
		}
	}
	return nil
}

func (res *Result) settle(particle int, v int32, steps, clock int64) {
	res.SettledAt[particle] = v
	res.Steps[particle] = steps
	res.SettleOrder = append(res.SettleOrder, int32(particle))
	res.SettleClock = append(res.SettleClock, clock)
	if steps > res.Dispersion {
		res.Dispersion = steps
	}
}

func appendTraj(trajs [][]int32, i int, traj []int32, record bool) [][]int32 {
	if record {
		trajs[i] = traj
	}
	return trajs
}

// event is a pending clock ring in the continuous-time processes.
type event struct {
	t float64
	p int32
}

// eventHeap is a binary min-heap on event time with inlined sift
// operations, so pushes and pops never box events through an interface —
// the allocation container/heap would charge per re-ring.
type eventHeap []event

// push inserts e, restoring the heap order.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].t <= (*h)[i].t {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		next := left
		if right := left + 1; right < last && s[right].t < s[left].t {
			next = right
		}
		if s[i].t <= s[next].t {
			break
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
	return top
}

// CTResult augments Result with the real-valued clock of a continuous-time
// process.
type CTResult struct {
	Result
	// Time is the real time at which the last particle settled: the
	// paper's τ_c-seq / τ_c-unif.
	Time float64
	// SettleTimes[k] is the real time of the (k+1)-th settlement.
	SettleTimes []float64
}

// CTUniform runs the continuous-time Uniform IDLA (CTU-IDLA) of Section
// 4.3: every unsettled particle carries an independent exponential clock
// of rate 1 and moves when it rings, settling on unoccupied vertices. It
// is simulated exactly with an event heap. Theorem 4.8: its dispersion
// time is (1+o(1))·τ_par.
func CTUniform(g graph.Graph, origin int, opt Options, r *rng.Source) (*CTResult, error) {
	res := new(CTResult)
	if err := CTUniformInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CTUniformInto is CTUniform writing into a caller-owned CTResult, drawing
// its occupancy map, position buffer and event heap from the given Scratch
// (nil allocates a transient one). res is fully overwritten; the RNG
// stream consumed is identical to CTUniform's.
func CTUniformInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *CTResult) error {
	n := g.N()
	k, err := opt.numParticles(n)
	if err != nil {
		return err
	}
	if err := validateRun(g, origin); err != nil {
		return err
	}
	if s == nil {
		s = NewScratch()
	}
	res.reset(k, opt.Record)
	s.beginRun(n, k)
	kern := g.Kernel()
	s.pos = growI32(s.pos, k)
	pos := s.pos
	for i := range pos {
		pos[i] = opt.startVertex(origin, n, r)
	}
	if opt.Record {
		for i := 0; i < k; i++ {
			res.Trajectories[i] = []int32{pos[i]}
		}
	}
	if cap(s.events) < k {
		s.events = make(eventHeap, 0, k)
	}
	s.events = s.events[:0]
	h := &s.events
	remaining := 0
	for i := 0; i < k; i++ {
		if !s.occupied(pos[i]) {
			s.occupy(pos[i])
			res.settle(i, pos[i], 0, 0)
			res.SettleTimes = append(res.SettleTimes, 0)
		} else {
			// Initial rings arrive in index order, matching the heap
			// initialisation of the historical implementation: appends
			// followed by one restore pass consume no randomness, so a
			// plain ordered push preserves the stream.
			h.push(event{t: r.ExpFloat64(), p: int32(i)})
			remaining++
		}
	}
	for remaining > 0 {
		e := h.pop()
		p := e.p
		pos[p] = step(kern, pos[p], opt.Lazy, r)
		res.Steps[p]++
		res.TotalSteps++
		if opt.Record {
			res.Trajectories[p] = append(res.Trajectories[p], pos[p])
		}
		if !s.occupied(pos[p]) {
			s.occupy(pos[p])
			res.settle(int(p), pos[p], res.Steps[p], int64(len(res.SettleOrder)))
			res.SettleTimes = append(res.SettleTimes, e.t)
			res.Time = e.t
			remaining--
		} else {
			h.push(event{t: e.t + r.ExpFloat64(), p: p})
		}
		if opt.MaxSteps > 0 && res.TotalSteps >= opt.MaxSteps {
			res.Truncated = true
			return nil
		}
	}
	return nil
}

// CTSequential runs the continuous-time Sequential IDLA: the discrete
// Sequential process with independent Exp(1) waiting times between the
// jumps of each walk. Its dispersion time is the largest total walking
// time over particles; Section 4.3 shows it equals (1+o(1))·τ_seq.
func CTSequential(g graph.Graph, origin int, opt Options, r *rng.Source) (*CTResult, error) {
	res := new(CTResult)
	if err := CTSequentialInto(g, origin, opt, r, nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CTSequentialInto is CTSequential writing into a caller-owned CTResult
// through the given Scratch (nil allocates a transient one). res is fully
// overwritten; the RNG stream consumed is identical to CTSequential's.
func CTSequentialInto(g graph.Graph, origin int, opt Options, r *rng.Source, s *Scratch, res *CTResult) error {
	if err := SequentialInto(g, origin, opt, r, s, &res.Result); err != nil {
		return err
	}
	res.Time = 0
	if cap(res.SettleTimes) < len(res.SettleOrder) {
		res.SettleTimes = make([]float64, 0, len(res.SettleOrder))
	} else {
		res.SettleTimes = res.SettleTimes[:0]
	}
	for _, p := range res.SettleOrder {
		var walkTime float64
		for st := int64(0); st < res.Steps[p]; st++ {
			walkTime += r.ExpFloat64()
		}
		res.SettleTimes = append(res.SettleTimes, walkTime)
		if walkTime > res.Time {
			res.Time = walkTime
		}
	}
	return nil
}
