// Package bounds provides the closed-form theoretical bounds stated in the
// paper, evaluated numerically so experiments can print measured-vs-bound
// comparisons: the Theorem 3.1 hitting-time upper bound, the Corollary 3.2
// worst-case ceilings, the Theorem 3.6/3.7 lower bounds, Matthews-type
// cover bounds, and the clique constants of Theorem 5.2 (κ_cc and π²/6).
package bounds

import (
	"math"
)

// PiSquaredOver6 is the limit of t_par(K_n)/n (Theorem 5.2), ≈ 1.6449.
const PiSquaredOver6 = math.Pi * math.Pi / 6

// KappaCC returns the limit κ_cc of t_seq(K_n)/n (Lemma 5.1): the
// normalised expected maximum of n independent geometric waiting times
// with success probabilities i/n — the longest waiting time in the coupon
// collector problem. Evaluated as
//
//	κ_cc = ∫_0^∞ (1 - Π_{i>=1} (1 - e^{-i x})) dx ≈ 1.2550,
//
// the limiting tail integral of max_i Geo(i/n)/n, by composite Simpson
// quadrature with the Euler product truncated at machine precision.
func KappaCC() float64 {
	integrand := func(x float64) float64 {
		if x <= 0 {
			return 1
		}
		prod := 1.0
		for i := 1; ; i++ {
			e := math.Exp(-float64(i) * x)
			if e < 1e-16 {
				break
			}
			prod *= 1 - e
			if prod < 1e-18 {
				// The product has vanished; the integrand is 1 to
				// machine precision (this is the small-x regime).
				return 1
			}
		}
		return 1 - prod
	}
	// Composite Simpson on (0, 60] with a fine grid; the integrand is
	// smooth, in (0,1], and decays like e^{-x}.
	const a, b = 1e-9, 60.0
	const steps = 60000 // even
	h := (b - a) / steps
	sum := integrand(a) + integrand(b)
	for i := 1; i < steps; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * integrand(x)
		} else {
			sum += 2 * integrand(x)
		}
	}
	return sum * h / 3
}

// Theorem31 returns the upper bound 6·t_hit(G)·log2(n) that the dispersion
// time of either process exceeds with probability at most 1/n²
// (Theorem 3.1); it also bounds the expectations up to constants.
func Theorem31(thit float64, n int) float64 {
	return 6 * thit * math.Log2(float64(n))
}

// GeneralWorstHitting returns the asymptotic worst-case maximum hitting
// time over all connected n-vertex graphs, (4/27)·n³ (Lovász [34, Theorem
// 2.1]); combined with Theorem31 it yields the Corollary 3.2 general
// ceiling O(n³ log n).
func GeneralWorstHitting(n int) float64 {
	f := float64(n)
	return 4 * f * f * f / 27
}

// RegularWorstHitting returns the O(n²) worst-case hitting ceiling for
// regular graphs ([34]); combined with Theorem31 it yields the Corollary
// 3.2 regular ceiling O(n² log n). The constant 2 is the standard bound
// 2n² for regular graphs.
func RegularWorstHitting(n int) float64 {
	f := float64(n)
	return 2 * f * f
}

// TreeLower returns the Theorem 3.7 lower bound t_seq(T) >= 2n-3 valid for
// every n-vertex tree.
func TreeLower(n int) float64 {
	return float64(2*n - 3)
}

// EdgeDegreeLower returns the Theorem 3.6 lower bound with the constant
// from its proof: the last walk needs at least half the worst commute
// time, giving t_seq(G) >= 2|E|/Δ.
func EdgeDegreeLower(edges, maxDegree int) float64 {
	return 2 * float64(edges) / float64(maxDegree)
}

// Harmonic returns the n-th harmonic number H_n.
func Harmonic(n int) float64 {
	var h float64
	for k := 1; k <= n; k++ {
		h += 1 / float64(k)
	}
	return h
}

// MatthewsCover returns the Matthews upper bound on the cover time,
// t_cov <= t_hit · H_{n-1}, which the paper contrasts with the dispersion
// bound of Theorem 3.1 (same order: t_hit·log n).
func MatthewsCover(thit float64, n int) float64 {
	return thit * Harmonic(n-1)
}

// CouponCollectorMean returns the expected number of draws to collect all
// n coupons, n·H_n: the cover-time analogue on the complete graph and the
// total-steps scale of the sequential process there.
func CouponCollectorMean(n int) float64 {
	return float64(n) * Harmonic(n)
}

// MixingLower returns the Proposition 3.9 chain of lower bounds given the
// lazy chain's second eigenvalue: t_seq = Ω(t_mix) = Ω(λ2/(1-λ2)).
func MixingLower(lambda2Lazy float64) float64 {
	if lambda2Lazy >= 1 {
		return math.Inf(1)
	}
	return lambda2Lazy / (1 - lambda2Lazy)
}
