package bounds

import (
	"math"
	"testing"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
)

func TestKappaCCValue(t *testing.T) {
	// Lemma 5.1 / [11]: κ_cc ≈ 1.255.
	k := KappaCC()
	if math.Abs(k-1.255) > 0.005 {
		t.Fatalf("κ_cc = %.5f, want ≈ 1.255", k)
	}
}

func TestKappaCCBelowPiSquaredOver6(t *testing.T) {
	// Remark 5.3: the two clique constants are distinct, κ_cc < π²/6.
	if KappaCC() >= PiSquaredOver6 {
		t.Fatal("κ_cc should be strictly below π²/6")
	}
}

func TestKappaCCMatchesSimulation(t *testing.T) {
	// The defining quantity: max of n geometrics with params i/n.
	// The max of the n geometrics has constant-order fluctuations in
	// units of n (std(T/n) ≈ 1.3), so many trials are needed for a tight
	// mean; n itself converges fast (exact E[T_n]/n at n=1000 is 1.2546).
	n := 2048
	const trials = 4000
	r := rng.New(9)
	var sum float64
	for trial := 0; trial < trials; trial++ {
		var max int64
		for i := 1; i <= n; i++ {
			// Geometric number of trials (support >= 1) with success i/n.
			g := r.Geometric(float64(i)/float64(n)) + 1
			if g > max {
				max = g
			}
		}
		sum += float64(max)
	}
	got := sum / trials / float64(n)
	// Finite-n convergence of E[T_n]/n to κ_cc is slow (O(1/log n)), so
	// the tolerance is generous; the trend is checked, not the limit.
	if math.Abs(got-KappaCC()) > 0.08 {
		t.Fatalf("simulated κ_cc %.4f vs integral %.4f", got, KappaCC())
	}
}

func TestHarmonicKnown(t *testing.T) {
	if Harmonic(1) != 1 {
		t.Fatal("H_1 != 1")
	}
	if math.Abs(Harmonic(4)-25.0/12.0) > 1e-12 {
		t.Fatalf("H_4 = %.6f", Harmonic(4))
	}
	// H_n ~ ln n + γ.
	if math.Abs(Harmonic(100000)-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatal("harmonic asymptotics off")
	}
}

func TestTheorem31HoldsOnFamilies(t *testing.T) {
	// The bound 6·t_hit·log2 n must exceed measured dispersion times.
	families := []*graph.CSR{
		graph.Complete(32),
		graph.Cycle(32),
		graph.Path(32),
		graph.Star(32),
		graph.Hypercube(5),
		graph.CompleteBinaryTree(5),
	}
	root := rng.New(4)
	for _, g := range families {
		h, err := markov.NewHitting(g)
		if err != nil {
			t.Fatal(err)
		}
		thit, _, _ := h.Max()
		bound := Theorem31(thit, g.N())
		for trial := 0; trial < 20; trial++ {
			res, err := core.Parallel(g, 0, core.Options{}, root.Split(1, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.Dispersion) > bound {
				t.Errorf("%s: dispersion %d exceeded Theorem 3.1 bound %.0f",
					g.Name(), res.Dispersion, bound)
			}
		}
	}
}

func TestTreeLowerHolds(t *testing.T) {
	// t_seq(T) >= 2n-3 in expectation for trees; means over trials clear it.
	root := rng.New(5)
	for _, g := range []*graph.CSR{graph.Star(20), graph.Path(20), graph.CompleteBinaryTree(4)} {
		const trials = 300
		var sum float64
		for i := 0; i < trials; i++ {
			res, _ := core.Sequential(g, 0, core.Options{}, root.Split(2, uint64(i)))
			sum += float64(res.Dispersion)
		}
		if mean := sum / trials; mean < TreeLower(g.N())*0.95 {
			t.Errorf("%s: mean t_seq %.1f below 2n-3 = %.0f", g.Name(), mean, TreeLower(g.N()))
		}
	}
}

func TestEdgeDegreeLowerHolds(t *testing.T) {
	root := rng.New(6)
	for _, g := range []*graph.CSR{graph.Complete(24), graph.Cycle(24), graph.Hypercube(4)} {
		const trials = 300
		var sum float64
		for i := 0; i < trials; i++ {
			res, _ := core.Sequential(g, 0, core.Options{}, root.Split(3, uint64(i)))
			sum += float64(res.Dispersion)
		}
		bound := EdgeDegreeLower(g.M(), g.MaxDegree())
		if mean := sum / trials; mean < bound*0.95 {
			t.Errorf("%s: mean t_seq %.1f below 2|E|/Δ = %.1f", g.Name(), mean, bound)
		}
	}
}

func TestGeneralWorstHittingDominatesFamilies(t *testing.T) {
	for _, g := range []*graph.CSR{graph.Lollipop(24), graph.Path(24), graph.Complete(24)} {
		h, err := markov.NewHitting(g)
		if err != nil {
			t.Fatal(err)
		}
		thit, _, _ := h.Max()
		if thit > GeneralWorstHitting(g.N()) {
			t.Errorf("%s: t_hit %.0f exceeds Lovász ceiling %.0f",
				g.Name(), thit, GeneralWorstHitting(g.N()))
		}
	}
}

func TestRegularWorstHittingDominatesRegularFamilies(t *testing.T) {
	for _, g := range []*graph.CSR{graph.Cycle(24), graph.Complete(24), graph.Hypercube(4)} {
		h, err := markov.NewHitting(g)
		if err != nil {
			t.Fatal(err)
		}
		thit, _, _ := h.Max()
		if thit > RegularWorstHitting(g.N()) {
			t.Errorf("%s: t_hit %.0f exceeds regular ceiling %.0f",
				g.Name(), thit, RegularWorstHitting(g.N()))
		}
	}
}

func TestMatthewsCoverOnClique(t *testing.T) {
	// Coupon collector: t_cov(K_n) = (n-1)·H_{n-1} <= t_hit·H_{n-1} with
	// t_hit = n-1, i.e. Matthews is tight on the clique.
	n := 50
	bound := MatthewsCover(float64(n-1), n)
	want := float64(n-1) * Harmonic(n-1)
	if math.Abs(bound-want) > 1e-9 {
		t.Fatalf("Matthews on clique %.2f, want %.2f", bound, want)
	}
}

func TestCouponCollectorMean(t *testing.T) {
	if math.Abs(CouponCollectorMean(2)-3) > 1e-12 {
		t.Fatalf("CC(2) = %.4f, want 3", CouponCollectorMean(2))
	}
}

func TestMixingLowerMonotone(t *testing.T) {
	if MixingLower(0.9) <= MixingLower(0.5) {
		t.Fatal("MixingLower should grow with λ2")
	}
	if !math.IsInf(MixingLower(1), 1) {
		t.Fatal("λ2 = 1 should give infinite bound")
	}
}
