package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	a2 := root.Split(1)
	for i := 0; i < 100; i++ {
		va, va2 := a.Uint64(), a2.Uint64()
		if va != va2 {
			t.Fatalf("Split(1) not reproducible at step %d", i)
		}
		if va == b.Uint64() {
			t.Fatalf("Split(1) and Split(2) collided at step %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(3)
	_ = a.Split(4, 5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent source")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f, want ~1", mean)
	}
}

func TestExpRate(t *testing.T) {
	r := New(14)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.ExpRate(4)
	}
	mean := sum / trials
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("ExpRate(4) mean %.4f, want ~0.25", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(15)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const trials = 100000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / trials
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*want+0.05 {
			t.Errorf("Geometric(%g) mean %.4f, want ~%.4f", p, mean, want)
		}
	}
}

func TestGeometricNonNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		return r.Geometric(0.3) >= 0 && r.Geometric(1) == 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(16)
	for _, tc := range []struct {
		n int64
		p float64
	}{{10, 0.5}, {100, 0.05}, {1000, 0.9}, {5, 1}, {5, 0}} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			v := r.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%g) = %d out of range", tc.n, tc.p, v)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+1e-9 {
			t.Errorf("Binomial(%d,%g) mean %.3f, want ~%.3f", tc.n, tc.p, mean, want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 3, 25, 100} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		tol := 5 * math.Sqrt(lambda/trials)
		if math.Abs(mean-lambda) > tol+0.01 {
			t.Errorf("Poisson(%g) mean %.3f, want ~%g", lambda, mean, lambda)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(18)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal mean %.4f var %.4f, want ~0 and ~1", mean, variance)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(19)
	const trials = 100000
	trues := 0
	for i := 0; i < trials; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-trials/2) > 5*math.Sqrt(trials)/2 {
		t.Fatalf("Bool returned true %d of %d times", trues, trials)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
