package rng

import "math/bits"

// LaneSource is the generator bank of the batched execution lane: Width
// independent splitmix64 counter-mode streams, one per lane slot, each
// advanced on demand by the slot index. Counter mode is what makes the
// bank batchable — a draw is one add and a finalizer on the slot's own
// state word, with no cross-slot dependency, so a kernel stepping a whole
// lane issues Width independent draws the CPU can overlap, where a single
// xoshiro stream would serialize them through its state.
//
// Slot streams follow the package-level lane seed law: slot j hosting
// trial i is seeded with Source.SplitSeed(experiment, i), tying the
// batched flavor to the same (seed, experiment, trial) lineage as the
// scalar path. The bounded-draw laws (Intn's multiply-shift rejection,
// Float64's 53-bit mantissa scaling, Bool's low bit) are the same as
// Source's, applied to this stream.
//
// A LaneSource is not safe for concurrent use; each worker owns one.
type LaneSource struct {
	state []uint64
}

// splitmixGamma is the splitmix64 state increment (Weyl constant); one
// LaneSource draw advances the slot state by it and finalizes.
const splitmixGamma = 0x9e3779b97f4a7c15

// Resize grows (or shrinks) the bank to width slots, reusing the backing
// array when possible. Slot states are unspecified until Seed.
func (l *LaneSource) Resize(width int) {
	if cap(l.state) < width {
		l.state = make([]uint64, width)
	}
	l.state = l.state[:width]
}

// Width returns the number of slots.
func (l *LaneSource) Width() int { return len(l.state) }

// Seed resets slot j to the stream determined by seed.
func (l *LaneSource) Seed(j int, seed uint64) { l.state[j] = seed }

// Uint64 returns the next 64 pseudo-random bits of slot j's stream.
func (l *LaneSource) Uint64(j int) uint64 {
	s := l.state[j] + splitmixGamma
	l.state[j] = s
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	s = (s ^ (s >> 27)) * 0x94d049bb133111eb
	return s ^ (s >> 31)
}

// Fill advances every slot j in [0, len(dst)) by one draw, writing slot
// j's output to dst[j] — the bulk form of Uint64 across the lane.
func (l *LaneSource) Fill(dst []uint64) {
	state := l.state[:len(dst)]
	for j := range dst {
		s := state[j] + splitmixGamma
		state[j] = s
		s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
		s = (s ^ (s >> 27)) * 0x94d049bb133111eb
		dst[j] = s ^ (s >> 31)
	}
}

// Intn returns a uniform pseudo-random integer in [0, n) from slot j's
// stream, under the same Lemire multiply-shift rejection law as
// Source.Intn. It panics if n <= 0.
func (l *LaneSource) Intn(j, n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := l.Uint64(j)
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = l.Uint64(j)
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Int31n is Intn for call sites that index int32 CSR arrays; n must fit
// in an int32.
func (l *LaneSource) Int31n(j int, n int32) int32 {
	return int32(l.Intn(j, int(n)))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1) from slot j's
// stream, under the same 53-bit law as Source.Float64.
func (l *LaneSource) Float64(j int) float64 {
	return float64(l.Uint64(j)>>11) * 0x1p-53
}

// Bool returns an unbiased pseudo-random boolean from slot j's stream,
// under the same low-bit law as Source.Bool.
func (l *LaneSource) Bool(j int) bool {
	return l.Uint64(j)&1 == 1
}
