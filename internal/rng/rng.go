// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator used by every simulation in this repository.
//
// The generator is xoshiro256** seeded through splitmix64. Unlike
// math/rand, sources here can be split into independent streams keyed by
// arbitrary identifiers, which lets parallel Monte-Carlo trials be fully
// reproducible: trial i of experiment e always derives its stream from
// (seed, e, i) regardless of scheduling.
//
// # Lane seed law
//
// The batched execution lane draws from LaneSource, a bank of splitmix64
// counter-mode streams (one per lane slot) rather than from xoshiro
// sources. Slot j hosting trial i is seeded with SplitSeed(e, i) — the
// exact 64-bit value SplitInto would expand into trial i's scalar xoshiro
// state — so scalar and batched flavors of a run share one derivation
// lineage rooted at (seed, experiment, trial). A batched trial's draw
// sequence is a pure function of those three coordinates: independent of
// the lane width, the worker count, and how trials are blocked, which
// makes batched runs bit-identical to each other across all those
// settings. Against the scalar flavor the batched stream is a different
// generator entirely, so batched results are distribution-identical, not
// bit-identical; the scalar stream itself is untouched.
package rng

import "math/bits"

// Source is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; use Split to derive independent per-goroutine streams.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the state and returns the next output of the
// splitmix64 generator. It is used to expand seeds into full xoshiro state
// and to mix stream identifiers.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Two sources
// created with the same seed produce identical output streams.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the source to the stream determined by seed.
func (r *Source) Seed(seed uint64) {
	st := seed
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
	// xoshiro must not start from the all-zero state; splitmix64 output is
	// zero for at most one of the four words, so this is unreachable in
	// practice, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

// Split returns a new Source whose stream is a deterministic function of
// the receiver's seed-lineage and the given identifiers. The receiver is
// not advanced, so Split may be called concurrently with distinct ids as
// long as the receiver itself is not being advanced.
func (r *Source) Split(ids ...uint64) *Source {
	dst := new(Source)
	r.SplitInto(dst, ids...)
	return dst
}

// SplitInto is Split writing the derived stream into dst instead of
// allocating a new Source: the form hot per-trial loops use to reseed one
// worker-local generator without a heap allocation per trial. dst is
// overwritten; the derivation is identical to Split's, so the two are
// interchangeable stream for stream.
func (r *Source) SplitInto(dst *Source, ids ...uint64) {
	dst.Seed(r.SplitSeed(ids...))
}

// SplitSeed returns the 64-bit seed of the derived stream for the given
// identifiers: SplitInto(dst, ids...) is exactly dst.Seed(r.SplitSeed(ids...)).
// Exposing the seed itself lets a different generator join the same
// derivation lineage — the batched LaneSource seeds slot streams with
// SplitSeed(experiment, trial), pinning them to the identical
// (seed, experiment, trial) coordinates as the scalar xoshiro streams
// without being those streams (see the package-level lane seed law).
func (r *Source) SplitSeed(ids ...uint64) uint64 {
	st := r.s0 ^ bits.RotateLeft64(r.s2, 17)
	for _, id := range ids {
		st ^= splitmix64(&id)
		_ = splitmix64(&st)
	}
	return splitmix64(&st)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// FillUint64 fills dst with the next len(dst) outputs of the stream,
// advancing the source exactly as len(dst) Uint64 calls would — the fill
// is draw-for-draw identical to the scalar loop (a property test pins
// this). The four state words stay in registers for the whole batch
// instead of round-tripping through the receiver once per draw, which is
// what makes bulk generation for the batched lane cheaper than the loop.
func (r *Source) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		dst[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform pseudo-random integer in [0, n). It panics if
// n <= 0. The implementation uses Lemire's multiply-shift rejection method,
// which avoids the modulo bias of naive reduction and the division of the
// classical rejection method on the common path.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Int31n is like Intn but kept for call sites that index int32 CSR arrays;
// n must fit in an int32.
func (r *Source) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bool returns an unbiased pseudo-random boolean.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomises the order of n elements using the provided
// swap function, exactly like math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
