package rng

import "math"

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inversion. Use ExpRate for other rates.
func (r *Source) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log argument is never zero.
	return -math.Log(1 - r.Float64())
}

// ExpRate returns an exponential variate with the given rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Source) ExpRate(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: ExpRate requires lambda > 0")
	}
	return r.ExpFloat64() / lambda
}

// Geometric returns the number of failures before the first success in
// independent Bernoulli(p) trials, i.e. a geometric variate supported on
// {0, 1, 2, ...} with mean (1-p)/p. It panics unless 0 < p <= 1.
//
// For small p the inversion formula floor(log(U)/log(1-p)) is used; it is
// exact in distribution and O(1) regardless of the outcome's size.
func (r *Source) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := 1 - r.Float64() // in (0, 1]
	return int64(math.Log(u) / math.Log1p(-p))
}

// Binomial returns a Binomial(n, p) variate. For small n it sums Bernoulli
// trials; for large n it uses geometric skipping, which runs in O(np+1)
// expected time. It panics if n < 0 or p is outside [0, 1].
func (r *Source) Binomial(n int64, p float64) int64 {
	if n < 0 || p < 0 || p > 1 {
		panic("rng: Binomial requires n >= 0 and 0 <= p <= 1")
	}
	if p == 0 || n == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	flip := false
	if p > 0.5 {
		p = 1 - p
		flip = true
	}
	var k int64
	if float64(n)*p < 32 {
		// Geometric skipping: jump between successes.
		i := int64(-1)
		for {
			i += 1 + r.Geometric(p)
			if i >= n {
				break
			}
			k++
		}
	} else {
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
	}
	if flip {
		k = n - k
	}
	return k
}

// Poisson returns a Poisson(lambda) variate. Small means use Knuth's
// product method; larger means split the mean and recurse, keeping each
// stage's product away from floating-point underflow.
func (r *Source) Poisson(lambda float64) int64 {
	if lambda < 0 {
		panic("rng: Poisson requires lambda >= 0")
	}
	var total int64
	for lambda > 30 {
		// A Poisson(lambda) is the sum of independent Poisson(30) and
		// Poisson(lambda-30) variates.
		total += r.poissonKnuth(30)
		lambda -= 30
	}
	return total + r.poissonKnuth(lambda)
}

func (r *Source) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	prod := 1.0
	var k int64 = -1
	for prod > limit || k < 0 {
		prod *= r.Float64()
		k++
		if prod <= limit {
			break
		}
	}
	return k
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. One of the pair is discarded to keep Source free of
// hidden state, preserving Split determinism.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
