package rng

import (
	"math/bits"
	"testing"
)

// TestFillUint64MatchesUint64 pins the bulk API to the scalar stream: a
// single FillUint64 produces exactly the values of repeated Uint64 calls,
// draw for draw, and leaves the source in the identical state.
func TestFillUint64MatchesUint64(t *testing.T) {
	for _, size := range []int{0, 1, 2, 7, 64, 1000} {
		a, b := New(42), New(42)
		// Advance both off the seed point so the fill starts mid-stream.
		for i := 0; i < 13; i++ {
			a.Uint64()
			b.Uint64()
		}
		dst := make([]uint64, size)
		a.FillUint64(dst)
		for i, got := range dst {
			if want := b.Uint64(); got != want {
				t.Fatalf("size %d: FillUint64[%d] = %#x, loop draw = %#x", size, i, got, want)
			}
		}
		if *a != *b {
			t.Fatalf("size %d: states diverge after fill: %+v vs %+v", size, *a, *b)
		}
	}
}

// TestSplitSeedMatchesSplitInto pins the SplitInto refactor: the derived
// stream is exactly Seed(SplitSeed(ids...)), for every identifier shape.
func TestSplitSeedMatchesSplitInto(t *testing.T) {
	root := New(7)
	for _, ids := range [][]uint64{{}, {0}, {1}, {3, 0}, {3, 1}, {1, 2, 3}} {
		var a, b Source
		root.SplitInto(&a, ids...)
		b.Seed(root.SplitSeed(ids...))
		if a != b {
			t.Fatalf("ids %v: SplitInto state %+v != Seed(SplitSeed) state %+v", ids, a, b)
		}
	}
}

// TestLaneSlotStreamIsSplitmix pins the lane seed law: slot j seeded with
// s produces the splitmix64 sequence started at state s, independent of
// every other slot's seed and draw schedule.
func TestLaneSlotStreamIsSplitmix(t *testing.T) {
	var l LaneSource
	l.Resize(4)
	seeds := []uint64{0, 1, 0xdeadbeef, 1 << 63}
	for j, s := range seeds {
		l.Seed(j, s)
	}
	// Interleave draws across slots in a scrambled order; each slot must
	// still see its own pure splitmix64 sequence.
	ref := make([]uint64, 4)
	copy(ref, seeds)
	drawn := make([][]uint64, 4)
	for round := 0; round < 16; round++ {
		for _, j := range []int{2, 0, 3, 1} {
			if (round+j)%3 == 0 {
				continue // uneven schedules must not matter
			}
			drawn[j] = append(drawn[j], l.Uint64(j))
		}
	}
	for j := range drawn {
		st := seeds[j]
		for i, got := range drawn[j] {
			if want := splitmix64(&st); got != want {
				t.Fatalf("slot %d draw %d = %#x, want splitmix64 %#x", j, i, got, want)
			}
		}
	}
}

// TestLaneFillMatchesUint64 pins Fill as the bulk form of one Uint64 per
// slot.
func TestLaneFillMatchesUint64(t *testing.T) {
	var a, b LaneSource
	a.Resize(8)
	b.Resize(8)
	for j := 0; j < 8; j++ {
		a.Seed(j, uint64(j)*977)
		b.Seed(j, uint64(j)*977)
	}
	dst := make([]uint64, 8)
	for round := 0; round < 5; round++ {
		a.Fill(dst)
		for j := range dst {
			if want := b.Uint64(j); dst[j] != want {
				t.Fatalf("round %d slot %d: Fill = %#x, Uint64 = %#x", round, j, dst[j], want)
			}
		}
	}
}

// TestLaneBoundedLawsMatchSource pins the lane's bounded-draw laws to the
// scalar Source's: feeding the same 64-bit outputs through Intn, Float64
// and Bool yields the same values. The raw streams differ by design; the
// reduction laws must not.
func TestLaneBoundedLawsMatchSource(t *testing.T) {
	// A scalar Source whose Uint64 sequence is replayed into the lane via
	// seeds chosen so one lane draw reproduces one scalar draw: seed the
	// slot so that splitmix64(state+gamma) equals the scalar output. That
	// inversion is awkward; instead compare against a reference
	// implementation of each law applied to the lane's own raw draws.
	var l LaneSource
	l.Resize(1)
	l.Seed(0, 12345)
	raw := LaneSource{state: []uint64{12345}}
	for i := 0; i < 2000; i++ {
		n := 1 + i%97
		got := l.Intn(0, n)
		// Reference: Lemire multiply-shift rejection on the raw stream.
		un := uint64(n)
		v := raw.Uint64(0)
		hi, lo := bits.Mul64(v, un)
		if lo < un {
			thresh := -un % un
			for lo < thresh {
				v = raw.Uint64(0)
				hi, lo = bits.Mul64(v, un)
			}
		}
		if got != int(hi) {
			t.Fatalf("draw %d: Intn(%d) = %d, reference = %d", i, n, got, int(hi))
		}
	}
	l.Seed(0, 999)
	raw.Seed(0, 999)
	for i := 0; i < 100; i++ {
		if got, want := l.Float64(0), float64(raw.Uint64(0)>>11)*0x1p-53; got != want {
			t.Fatalf("Float64 draw %d: %v != %v", i, got, want)
		}
		if got, want := l.Bool(0), raw.Uint64(0)&1 == 1; got != want {
			t.Fatalf("Bool draw %d: %v != %v", i, got, want)
		}
	}
}

// TestLaneIntnUniform is a coarse chi-square smoke of the lane's bounded
// draw: 64k draws over 16 buckets must not deviate wildly from uniform.
func TestLaneIntnUniform(t *testing.T) {
	var l LaneSource
	l.Resize(1)
	l.Seed(0, 2024)
	const n, draws = 16, 1 << 16
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[l.Intn(0, n)]++
	}
	exp := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// 99.9th percentile of chi-square with 15 degrees of freedom.
	if chi2 > 37.70 {
		t.Fatalf("lane Intn chi-square = %.2f over 15 dof (counts %v)", chi2, counts)
	}
}

// BenchmarkFillUint64 vs BenchmarkUint64Loop: the fill-vs-loop comparison
// of the bulk RNG API.
func BenchmarkFillUint64(b *testing.B) {
	r := New(1)
	dst := make([]uint64, 1024)
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FillUint64(dst)
	}
}

func BenchmarkUint64Loop(b *testing.B) {
	r := New(1)
	dst := make([]uint64, 1024)
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = r.Uint64()
		}
	}
}

// BenchmarkLaneFill measures one bulk draw across a 1024-slot lane.
func BenchmarkLaneFill(b *testing.B) {
	var l LaneSource
	l.Resize(1024)
	for j := 0; j < 1024; j++ {
		l.Seed(j, uint64(j))
	}
	dst := make([]uint64, 1024)
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Fill(dst)
	}
}
