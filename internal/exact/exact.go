// Package exact computes exact (non-Monte-Carlo) quantities of the
// Sequential-IDLA process on small graphs by dynamic programming over
// occupied sets, providing ground truth for validating the simulator in
// internal/core and the constants of Theorem 5.2 at small n.
//
// The key structure: conditional on the current occupied set S, the next
// particle performs a walk from the origin absorbed on V\S. Its settlement
// vertex follows the harmonic measure of V\S from the origin, and its walk
// length distribution is the absorption-time distribution — both exactly
// computable from the transition matrix restricted to S. Because the
// process sees only the sequence of occupied sets, every distribution of
// interest factorises over subsets.
//
// Complexity is O(2^n · poly(n) · T) for time horizons T; intended for
// n <= ~14.
package exact

import (
	"fmt"
	"math"

	"dispersion/internal/graph"
)

// maxExactN bounds the subset DP.
const maxExactN = 20

// Sequential holds the exact subset-DP machinery for a graph and origin.
type Sequential struct {
	g      *graph.CSR
	origin int
	n      int
}

// NewSequential validates inputs and returns the solver.
func NewSequential(g *graph.CSR, origin int) (*Sequential, error) {
	if g.N() > maxExactN {
		return nil, fmt.Errorf("exact: n = %d exceeds subset-DP limit %d", g.N(), maxExactN)
	}
	if origin < 0 || origin >= g.N() {
		return nil, fmt.Errorf("exact: origin %d out of range", origin)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("exact: graph not connected")
	}
	return &Sequential{g: g, origin: origin, n: g.N()}, nil
}

// stepDist advances one walk step of the distribution restricted to the
// occupied set S: mass leaving S is absorbed (recorded in absorbed).
func (e *Sequential) stepDist(s uint32, cur, next, absorbed []float64) {
	for i := range next {
		next[i] = 0
	}
	for u := 0; u < e.n; u++ {
		if cur[u] == 0 {
			continue
		}
		share := cur[u] / float64(e.g.Degree(u))
		for _, v := range e.g.Neighbors(u) {
			if s&(1<<uint(v)) != 0 {
				next[v] += share
			} else {
				absorbed[v] += share
			}
		}
	}
}

// HarmonicMeasure returns, for occupied set S (bitmask containing the
// origin), the exact settlement distribution of the next particle: the
// probability the walk from the origin first exits S at each vertex of
// V\S. Mass sums to 1 for connected graphs.
func (e *Sequential) HarmonicMeasure(s uint32) []float64 {
	absorbed := make([]float64, e.n)
	cur := make([]float64, e.n)
	next := make([]float64, e.n)
	cur[e.origin] = 1
	// Iterate until the surviving mass is negligible. The survival decay
	// rate is bounded by the absorbing chain's spectral radius < 1.
	for iter := 0; iter < 1<<20; iter++ {
		e.stepDist(s, cur, next, absorbed)
		cur, next = next, cur
		var alive float64
		for _, p := range cur {
			alive += p
		}
		if alive < 1e-14 {
			break
		}
	}
	return absorbed
}

// SettleCDF returns, for occupied set S, the joint settlement law of the
// next particle truncated at T steps: out[v][t] = P(settles at v in <= t
// steps), for t = 0..T. Entry t=0 is zero since a settling step is a move.
func (e *Sequential) SettleCDF(s uint32, T int) [][]float64 {
	out := make([][]float64, e.n)
	for v := range out {
		out[v] = make([]float64, T+1)
	}
	absorbed := make([]float64, e.n)
	cur := make([]float64, e.n)
	next := make([]float64, e.n)
	cur[e.origin] = 1
	for t := 1; t <= T; t++ {
		e.stepDist(s, cur, next, absorbed)
		cur, next = next, cur
		for v := 0; v < e.n; v++ {
			out[v][t] = absorbed[v]
		}
	}
	return out
}

// MeanAbsorptionTime returns the exact expected walk length of the next
// particle given occupied set S, by solving the absorbing system with
// dense elimination over the |S| transient states.
func (e *Sequential) MeanAbsorptionTime(s uint32) float64 {
	// Collect transient states (occupied vertices).
	var states []int
	idx := make([]int, e.n)
	for v := 0; v < e.n; v++ {
		if s&(1<<uint(v)) != 0 {
			idx[v] = len(states)
			states = append(states, v)
		}
	}
	m := len(states)
	// Solve (I - Q) h = 1 by Gaussian elimination on a local dense copy.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i, u := range states {
		a[i] = make([]float64, m)
		a[i][i] = 1
		b[i] = 1
		p := 1.0 / float64(e.g.Degree(u))
		for _, v := range e.g.Neighbors(u) {
			if s&(1<<uint(v)) != 0 {
				a[i][idx[v]] -= p
			}
		}
	}
	solveInPlace(a, b)
	return b[idx[e.origin]]
}

// ExpectedTotalSteps returns the exact E[total steps] of the full
// Sequential-IDLA: the sum over the random set sequence of per-set mean
// absorption times, computed by forward DP over subsets. By Theorem 4.1
// this equals the expected total steps of the Parallel-IDLA too.
func (e *Sequential) ExpectedTotalSteps() float64 {
	full := uint32(1)<<uint(e.n) - 1
	start := uint32(1) << uint(e.origin)
	// prob[s] = probability the occupied-set trajectory visits s.
	prob := map[uint32]float64{start: 1}
	// Process sets in increasing popcount order.
	order := subsetsByPopcount(e.n, e.origin)
	var total float64
	for _, s := range order {
		p, ok := prob[s]
		if !ok || s == full {
			continue
		}
		total += p * e.MeanAbsorptionTime(s)
		hm := e.HarmonicMeasure(s)
		for v := 0; v < e.n; v++ {
			if hm[v] > 0 {
				prob[s|1<<uint(v)] += p * hm[v]
			}
		}
	}
	return total
}

// DispersionCDF returns the exact CDF of the sequential dispersion time:
// cdf[t] = P(τ_seq <= t) for t = 0..T. It uses the factorisation
//
//	P(all particles take <= t steps) = Σ_paths Π_s P(settle in <= t | s)
//
// computed by DP over occupied sets with the per-set settlement CDFs.
func (e *Sequential) DispersionCDF(T int) []float64 {
	full := uint32(1)<<uint(e.n) - 1
	start := uint32(1) << uint(e.origin)
	order := subsetsByPopcount(e.n, e.origin)
	cdf := make([]float64, T+1)
	// f[s] = P(trajectory reaches s AND every walk so far took <= t).
	// One pass per t is wasteful; instead carry the whole t-vector.
	f := map[uint32][]float64{}
	init := make([]float64, T+1)
	for t := range init {
		init[t] = 1 // particle 0 takes 0 steps
	}
	f[start] = init
	for _, s := range order {
		fs, ok := f[s]
		if !ok {
			continue
		}
		if s == full {
			continue
		}
		settle := e.SettleCDF(s, T)
		for v := 0; v < e.n; v++ {
			if s&(1<<uint(v)) != 0 {
				continue
			}
			last := settle[v][T]
			if last == 0 {
				continue
			}
			nxt := f[s|1<<uint(v)]
			if nxt == nil {
				nxt = make([]float64, T+1)
				f[s|1<<uint(v)] = nxt
			}
			for t := 0; t <= T; t++ {
				nxt[t] += fs[t] * settle[v][t]
			}
		}
	}
	if ff := f[full]; ff != nil {
		copy(cdf, ff)
	}
	return cdf
}

// ExpectedDispersion returns the exact E[τ_seq] up to the truncation
// error of horizon T: E ≈ Σ_{t<T} (1 - cdf[t]). The second return value
// is the residual probability mass P(τ > T), an upper bound scale for the
// truncation error contribution per additional step.
func (e *Sequential) ExpectedDispersion(T int) (mean, tailMass float64) {
	cdf := e.DispersionCDF(T)
	for t := 0; t < T; t++ {
		mean += 1 - cdf[t]
	}
	return mean, 1 - cdf[T]
}

// solveInPlace performs Gaussian elimination with partial pivoting on the
// dense system a·x = b, leaving the solution in b.
func solveInPlace(a [][]float64, b []float64) {
	m := len(a)
	for k := 0; k < m; k++ {
		p := k
		for i := k + 1; i < m; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
				p = i
			}
		}
		a[k], a[p] = a[p], a[k]
		b[k], b[p] = b[p], b[k]
		piv := a[k][k]
		for i := k + 1; i < m; i++ {
			l := a[i][k] / piv
			if l == 0 {
				continue
			}
			for j := k; j < m; j++ {
				a[i][j] -= l * a[k][j]
			}
			b[i] -= l * b[k]
		}
	}
	for i := m - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < m; j++ {
			s -= a[i][j] * b[j]
		}
		b[i] = s / a[i][i]
	}
}

// subsetsByPopcount returns all subsets of [0,n) containing origin,
// ordered by increasing cardinality (so DP dependencies are satisfied).
func subsetsByPopcount(n, origin int) []uint32 {
	all := allSubsetsByPopcount(n)
	out := all[:0]
	for _, s := range all {
		if s&(1<<uint(origin)) != 0 {
			out = append(out, s)
		}
	}
	return out
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
