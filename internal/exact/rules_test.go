package exact

import (
	"math"
	"testing"

	"dispersion/internal/graph"
)

// ruleGraphs are the small cross-validation graphs: one vertex-transitive,
// one with strongly origin-dependent harmonic measures, one with a
// degree-one tail.
func ruleGraphs() []*graph.CSR {
	return []*graph.CSR{graph.Complete(5), graph.Star(5), graph.Path(4)}
}

// The zero SeqVariant must reproduce the classic arrival-absorbed solver.
func TestSeqVariantMatchesClassicTotalSteps(t *testing.T) {
	for _, g := range ruleGraphs() {
		e, err := NewSequential(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := e.ExpectedTotalSteps()
		got, err := SeqExpectedTotalSteps(g, 0, SeqVariant{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: variant DP total steps %.9f, classic %.9f", g.Name(), got, want)
		}
	}
}

// The zero SeqVariant's dispersion CDF must match the classic solver's.
func TestSeqVariantMatchesClassicCDF(t *testing.T) {
	const T = 200
	for _, g := range ruleGraphs() {
		e, err := NewSequential(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := e.DispersionCDF(T)
		got, err := SeqDispersionCDF(g, 0, SeqVariant{}, T)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt <= T; tt++ {
			if math.Abs(got[tt]-want[tt]) > 1e-9 {
				t.Fatalf("%s: cdf[%d] = %.9f, classic %.9f", g.Name(), tt, got[tt], want[tt])
			}
		}
	}
}

// A geometric rule with q = 1 and a threshold rule with T = 0 are the
// standard rule.
func TestDegenerateRulesMatchStandard(t *testing.T) {
	for _, g := range ruleGraphs() {
		want, err := SeqExpectedTotalSteps(g, 0, SeqVariant{})
		if err != nil {
			t.Fatal(err)
		}
		for name, rule := range map[string]Rule{
			"geom-q1":     {Kind: RuleGeom, Q: 1},
			"threshold-0": {Kind: RuleThreshold, T: 0},
		} {
			got, err := SeqExpectedTotalSteps(g, 0, SeqVariant{Rule: rule})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s/%s: total steps %.9f, standard %.9f", g.Name(), name, got, want)
			}
		}
	}
}

// A lazy walk doubles the expected total steps exactly: the jump sequence
// keeps its law and each jump costs an independent Geometric(1/2) number
// of ticks.
func TestLazyDoublesTotalSteps(t *testing.T) {
	for _, g := range ruleGraphs() {
		std, err := SeqExpectedTotalSteps(g, 0, SeqVariant{})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := SeqExpectedTotalSteps(g, 0, SeqVariant{Rule: Rule{Lazy: true}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lazy-2*std) > 1e-9 {
			t.Errorf("%s: lazy total steps %.9f, want 2x standard = %.9f", g.Name(), lazy, 2*std)
		}
	}
}

// On K_2 the geometric rule has a closed form. Particle 0 stands only on
// vacant vertices, so it walks R ~ (rejections of a Geom(q)) steps and
// settles on vertex R mod 2. Particle 1 pays one extra step when the
// origin is occupied (R even, probability 1/(2-q)) and two steps per
// rejection either way:
//
//	E[total] = 3(1-q)/q + 1/(2-q).
func TestGeomClosedFormK2(t *testing.T) {
	g := graph.Complete(2)
	for _, q := range []float64{0.25, 0.5, 0.9, 1} {
		got, err := SeqExpectedTotalSteps(g, 0, SeqVariant{Rule: Rule{Kind: RuleGeom, Q: q}})
		if err != nil {
			t.Fatal(err)
		}
		want := 3*(1-q)/q + 1/(2-q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("q=%v: total steps %.9f, want %.9f", q, got, want)
		}
	}
}

// The threshold rule's forced walk adds exactly T steps per walking
// particle on the complete graph... not in general, so pin K_2 where the
// parity structure makes it exact: a particle forced to walk T steps on
// K_2 lands on its start vertex for even T and on the other vertex for odd
// T, then settles at the first vacant standing.
func TestThresholdClosedFormK2(t *testing.T) {
	g := graph.Complete(2)
	for _, T := range []int{1, 2, 3, 6, 7} {
		got, err := SeqExpectedTotalSteps(g, 0, SeqVariant{Rule: Rule{Kind: RuleThreshold, T: T}})
		if err != nil {
			t.Fatal(err)
		}
		// Particle 0 walks exactly T steps, landing on vertex T mod 2 and
		// settling there (it is vacant). Particle 1 then walks its own T
		// steps, landing on the same vertex T mod 2 — occupied — and
		// needs exactly one more step to reach the vacant one.
		want := float64(2*T + 1)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("T=%d: total steps %.9f, want %.9f", T, got, want)
		}
	}
}

// SettleLaw's measure must sum to one and agree with the classic harmonic
// measure when the start is occupied under the standard rule.
func TestSettleLawMatchesHarmonicMeasure(t *testing.T) {
	for _, g := range ruleGraphs() {
		e, err := NewSequential(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []uint32{1, 3, 5} {
			if s >= uint32(1)<<uint(g.N())-1 || s&1 == 0 {
				continue
			}
			want := e.HarmonicMeasure(s)
			measure, mean, err := SettleLaw(g, 0, s, Rule{})
			if err != nil {
				t.Fatal(err)
			}
			var total float64
			for v := range measure {
				total += measure[v]
				if math.Abs(measure[v]-want[v]) > 1e-9 {
					t.Errorf("%s s=%b: measure[%d] = %.9f, harmonic %.9f", g.Name(), s, v, measure[v], want[v])
				}
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("%s s=%b: measure sums to %.12f", g.Name(), s, total)
			}
			if wantMean := e.MeanAbsorptionTime(s); math.Abs(mean-wantMean) > 1e-9 {
				t.Errorf("%s s=%b: mean %.9f, absorption solver %.9f", g.Name(), s, mean, wantMean)
			}
		}
	}
}

// The full-set solve and bad parameters must error instead of looping.
func TestRuleSolveErrors(t *testing.T) {
	g := graph.Complete(3)
	if _, _, err := SettleLaw(g, 0, 0b111, Rule{}); err == nil {
		t.Error("full occupied set accepted")
	}
	if _, _, err := SettleLaw(g, 0, 0, Rule{Kind: RuleGeom, Q: 0}); err == nil {
		t.Error("q = 0 accepted")
	}
	if _, _, err := SettleLaw(g, 0, 0, Rule{Kind: RuleGeom, Q: 1.5}); err == nil {
		t.Error("q > 1 accepted")
	}
	if _, _, err := SettleLaw(g, 0, 0, Rule{Kind: RuleThreshold, T: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := SeqExpectedTotalSteps(g, 0, SeqVariant{Particles: 4}); err == nil {
		t.Error("k > n accepted")
	}
}
