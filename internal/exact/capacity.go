package exact

import (
	"fmt"

	"dispersion/internal/graph"
)

// This file extends the exact machinery to the capacity-c Sequential
// process: every vertex hosts up to c settled particles and a walker
// settles at the first standing vertex below capacity. The DP state is the
// occupancy multiset (a count per vertex) rather than a subset, but each
// transition still only depends on the set of *full* vertices: the next
// particle walks through full vertices and is absorbed on sub-full ones,
// which is exactly SettleLaw with the full set as the occupied set. By the
// abelian (Diaconis-Fulton) property the total-steps law is shared with
// the capacity-c Parallel process, mirroring Theorem 4.1.

// checkCapacity validates the shared inputs of the capacity DPs and
// resolves the particle count (k = 0 means fill to capacity, c·n).
func checkCapacity(g *graph.CSR, origin, c, k int) (int, error) {
	n := g.N()
	if n > maxExactN {
		return 0, fmt.Errorf("exact: n = %d exceeds subset-DP limit %d", n, maxExactN)
	}
	if origin < 0 || origin >= n {
		return 0, fmt.Errorf("exact: origin %d out of range", origin)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("exact: graph not connected")
	}
	if c < 1 || c > 255 {
		return 0, fmt.Errorf("exact: capacity %d (want 1..255, the DP's count encoding)", c)
	}
	if k == 0 {
		k = c * n
	}
	if k < 1 || k > c*n {
		return 0, fmt.Errorf("exact: %d particles on %d vertices of capacity %d (want 1..%d)", k, n, c, c*n)
	}
	return k, nil
}

// checkCapacityVec validates a per-vertex capacity vector and resolves
// the particle count (k = 0 means Sum(caps), filling every vertex).
func checkCapacityVec(g *graph.CSR, origin int, caps []int, k int) (int, error) {
	n := g.N()
	if n > maxExactN {
		return 0, fmt.Errorf("exact: n = %d exceeds subset-DP limit %d", n, maxExactN)
	}
	if origin < 0 || origin >= n {
		return 0, fmt.Errorf("exact: origin %d out of range", origin)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("exact: graph not connected")
	}
	if len(caps) != n {
		return 0, fmt.Errorf("exact: %d capacities for %d vertices", len(caps), n)
	}
	total := 0
	for v, c := range caps {
		if c < 1 || c > 255 {
			return 0, fmt.Errorf("exact: capacity %d at vertex %d (want 1..255, the DP's count encoding)", c, v)
		}
		total += c
	}
	if k == 0 {
		k = total
	}
	if k < 1 || k > total {
		return 0, fmt.Errorf("exact: %d particles on capacity vector summing to %d (want 1..%d)", k, total, total)
	}
	return k, nil
}

// uniformCaps expands a scalar capacity into the vector form the DPs run
// on.
func uniformCaps(n, c int) []int {
	caps := make([]int, n)
	for v := range caps {
		caps[v] = c
	}
	return caps
}

// fullSetVec returns the bitmask of vertices whose count has reached
// their capacity.
func fullSetVec(counts []byte, caps []int) uint32 {
	var s uint32
	for v, cnt := range counts {
		if int(cnt) == caps[v] {
			s |= 1 << uint(v)
		}
	}
	return s
}

// CapacityExpectedTotalSteps returns the exact E[total steps] of the
// capacity-c Sequential process dispersing k particles from origin (k = 0
// means c·n, filling every vertex).
func CapacityExpectedTotalSteps(g *graph.CSR, origin, c, k int) (float64, error) {
	if _, err := checkCapacity(g, origin, c, k); err != nil {
		return 0, err
	}
	return CapacityVecExpectedTotalSteps(g, origin, uniformCaps(g.N(), c), k)
}

// CapacityVecExpectedTotalSteps returns the exact E[total steps] of the
// Sequential capacity process under a per-vertex capacity vector — vertex
// v hosts up to caps[v] settled particles — dispersing k particles from
// origin (k = 0 means Sum(caps)): a forward DP over occupancy multisets
// whose transitions reuse the rule-aware settlement law with the full set
// as the occupied set.
func CapacityVecExpectedTotalSteps(g *graph.CSR, origin int, caps []int, k int) (float64, error) {
	k, err := checkCapacityVec(g, origin, caps, k)
	if err != nil {
		return 0, err
	}
	n := g.N()
	laws := newLawCache(g, Rule{})
	// cur maps the occupancy multiset (one count byte per vertex) to the
	// probability the process visits it; all states in cur share the same
	// number of settled particles, so one pass per settlement suffices.
	cur := map[string]float64{string(make([]byte, n)): 1}
	var total float64
	for settled := 0; settled < k; settled++ {
		next := make(map[string]float64, len(cur)*2)
		for st, p := range cur {
			counts := []byte(st)
			measure, mean, err := laws.law(origin, fullSetVec(counts, caps))
			if err != nil {
				return 0, err
			}
			total += p * mean
			for v := 0; v < n; v++ {
				if measure[v] == 0 {
					continue
				}
				succ := append([]byte(nil), counts...)
				succ[v]++
				next[string(succ)] += p * measure[v]
			}
		}
		cur = next
	}
	return total, nil
}

// CapacityDispersionCDF returns the exact CDF of the capacity-c Sequential
// dispersion time for k particles from origin (k = 0 means c·n):
// cdf[t] = P(max per-particle steps <= t) for t = 0..T.
func CapacityDispersionCDF(g *graph.CSR, origin, c, k, T int) ([]float64, error) {
	if _, err := checkCapacity(g, origin, c, k); err != nil {
		return nil, err
	}
	return CapacityVecDispersionCDF(g, origin, uniformCaps(g.N(), c), k, T)
}

// CapacityVecDispersionCDF returns the exact dispersion-time CDF of the
// Sequential capacity process under a per-vertex capacity vector for k
// particles from origin (k = 0 means Sum(caps)): cdf[t] = P(max
// per-particle steps <= t) for t = 0..T.
func CapacityVecDispersionCDF(g *graph.CSR, origin int, caps []int, k, T int) ([]float64, error) {
	k, err := checkCapacityVec(g, origin, caps, k)
	if err != nil {
		return nil, err
	}
	n := g.N()
	// cdfCache memoizes the per-full-set settlement CDF.
	cdfCache := map[uint32][][]float64{}
	settleFor := func(s uint32) ([][]float64, error) {
		if out, ok := cdfCache[s]; ok {
			return out, nil
		}
		out, err := SettleCDF(g, origin, s, Rule{}, T)
		if err != nil {
			return nil, err
		}
		cdfCache[s] = out
		return out, nil
	}
	cdf := make([]float64, T+1)
	// f[state][t] = P(process reaches state AND every walk so far <= t).
	f := map[string][]float64{string(make([]byte, n)): ones(T + 1)}
	for settled := 0; settled < k; settled++ {
		nextF := make(map[string][]float64, len(f)*2)
		for st, fs := range f {
			counts := []byte(st)
			settle, err := settleFor(fullSetVec(counts, caps))
			if err != nil {
				return nil, err
			}
			for v := 0; v < n; v++ {
				if settle[v][T] == 0 {
					continue
				}
				succ := append([]byte(nil), counts...)
				succ[v]++
				nxt := nextF[string(succ)]
				if nxt == nil {
					nxt = make([]float64, T+1)
					nextF[string(succ)] = nxt
				}
				for t := 0; t <= T; t++ {
					nxt[t] += fs[t] * settle[v][t]
				}
			}
		}
		f = nextF
	}
	for _, fs := range f {
		for t := 0; t <= T; t++ {
			cdf[t] += fs[t]
		}
	}
	return cdf, nil
}

// CapacityExpectedDispersion returns the exact E[dispersion] of the
// capacity-c Sequential process up to the truncation error of horizon T,
// plus the residual tail mass P(τ > T).
func CapacityExpectedDispersion(g *graph.CSR, origin, c, k, T int) (mean, tailMass float64, err error) {
	cdf, err := CapacityDispersionCDF(g, origin, c, k, T)
	if err != nil {
		return 0, 0, err
	}
	for t := 0; t < T; t++ {
		mean += 1 - cdf[t]
	}
	return mean, 1 - cdf[T], nil
}

// CapacityVecExpectedDispersion returns the exact E[dispersion] of the
// Sequential capacity process under a per-vertex capacity vector up to
// the truncation error of horizon T, plus the residual tail mass
// P(τ > T).
func CapacityVecExpectedDispersion(g *graph.CSR, origin int, caps []int, k, T int) (mean, tailMass float64, err error) {
	cdf, err := CapacityVecDispersionCDF(g, origin, caps, k, T)
	if err != nil {
		return 0, 0, err
	}
	for t := 0; t < T; t++ {
		mean += 1 - cdf[t]
	}
	return mean, 1 - cdf[T], nil
}
