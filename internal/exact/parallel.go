package exact

import (
	"fmt"
	"sort"

	"dispersion/internal/graph"
)

// Parallel computes exact distributions of the Parallel-IDLA on very
// small graphs by forward dynamics over collapsed states. Because the
// dispersion time (the last settlement round) does not depend on particle
// identities, the state collapses to (occupied set, multiset of unsettled
// particle positions); settlement resolution removes one arrival per
// newly taken vertex, which is identity-free as well.
//
// State counts grow like 2^n · C(2n-2, n-1); intended for n <= ~7.
type Parallel struct {
	g      *graph.CSR
	origin int
	n      int
}

// maxExactParallelN bounds the collapsed-state dynamics.
const maxExactParallelN = 8

// NewParallel validates inputs and returns the solver.
func NewParallel(g *graph.CSR, origin int) (*Parallel, error) {
	if g.N() > maxExactParallelN {
		return nil, fmt.Errorf("exact: n = %d exceeds parallel-DP limit %d", g.N(), maxExactParallelN)
	}
	if origin < 0 || origin >= g.N() {
		return nil, fmt.Errorf("exact: origin %d out of range", origin)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("exact: graph not connected")
	}
	return &Parallel{g: g, origin: origin, n: g.N()}, nil
}

// pstate is a collapsed process state: the occupied set and the sorted
// positions of unsettled particles, encoded as a string key for maps.
type pstate struct {
	occ uint32
	pos string // sorted bytes, one per unsettled particle
}

// DispersionCDF returns cdf[t] = P(τ_par <= t) for t = 0..T.
func (e *Parallel) DispersionCDF(T int) []float64 {
	// Initial state: all n particles at the origin; one settles there at
	// round 0.
	initPos := make([]byte, e.n-1)
	for i := range initPos {
		initPos[i] = byte(e.origin)
	}
	cur := map[pstate]float64{
		{occ: 1 << uint(e.origin), pos: string(initPos)}: 1,
	}
	cdf := make([]float64, T+1)
	var done float64
	if e.n == 1 {
		for t := range cdf {
			cdf[t] = 1
		}
		return cdf
	}
	for t := 1; t <= T; t++ {
		next := make(map[pstate]float64, len(cur)*4)
		for st, p := range cur {
			e.advance(st, p, next, &done, t == 0)
		}
		// States that completed during this round contributed to done.
		cdf[t] = done
		cur = next
		if done > 1-1e-13 {
			for u := t + 1; u <= T; u++ {
				cdf[u] = cdf[t]
			}
			break
		}
	}
	return cdf
}

// advance enumerates all joint moves of the unsettled particles from st,
// applies settlement, and accumulates the successor distribution. Runs
// that finish add their mass to done.
func (e *Parallel) advance(st pstate, p float64, next map[pstate]float64, done *float64, _ bool) {
	m := len(st.pos)
	// Enumerate the joint move by mixed-radix counting over each
	// particle's neighbour choices. Probabilities are uniform products.
	choices := make([]int32, m)
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if i == m {
			e.applyRound(st.occ, choices, p*prob, next, done)
			return
		}
		v := int(st.pos[i])
		deg := e.g.Degree(v)
		w := 1.0 / float64(deg)
		for _, u := range e.g.Neighbors(v) {
			choices[i] = u
			rec(i+1, prob*w)
		}
	}
	rec(0, 1)
}

// applyRound performs settlement resolution for a realised joint move.
func (e *Parallel) applyRound(occ uint32, arrivals []int32, p float64, next map[pstate]float64, done *float64) {
	// One settler per vacant vertex with arrivals.
	var remaining []byte
	newOcc := occ
	taken := uint32(0)
	for _, v := range arrivals {
		bit := uint32(1) << uint(v)
		if newOcc&bit == 0 && taken&bit == 0 {
			taken |= bit
			newOcc |= bit
		} else {
			remaining = append(remaining, byte(v))
		}
	}
	if len(remaining) == 0 {
		*done += p
		return
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	key := pstate{occ: newOcc, pos: string(remaining)}
	next[key] += p
}

// ExpectedDispersion returns the exact E[τ_par] up to the truncation
// horizon T, with the residual tail mass.
func (e *Parallel) ExpectedDispersion(T int) (mean, tailMass float64) {
	cdf := e.DispersionCDF(T)
	for t := 0; t < T; t++ {
		mean += 1 - cdf[t]
	}
	return mean, 1 - cdf[T]
}
