package exact

import (
	"math"
	"testing"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func TestParallelCDFBasics(t *testing.T) {
	g := graph.Cycle(5)
	e, err := NewParallel(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cdf := e.DispersionCDF(300)
	if cdf[0] != 0 {
		t.Fatalf("P(τ_par = 0) = %g on n > 1", cdf[0])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1]-1e-12 {
			t.Fatalf("CDF decreases at %d", i)
		}
	}
	if cdf[len(cdf)-1] < 0.9999 {
		t.Fatalf("CDF tail %.6f", cdf[len(cdf)-1])
	}
}

func TestParallelSingletonGraph(t *testing.T) {
	g := graph.Path(1)
	e, err := NewParallel(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cdf := e.DispersionCDF(5)
	for _, v := range cdf {
		if v != 1 {
			t.Fatal("single-vertex process should finish at time 0")
		}
	}
}

func TestParallelMatchesSimulation(t *testing.T) {
	for _, g := range []*graph.CSR{graph.Complete(5), graph.Cycle(5), graph.Star(5), graph.Path(4)} {
		e, err := NewParallel(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, tail := e.ExpectedDispersion(600)
		if tail > 1e-8 {
			t.Fatalf("%s: horizon too short", g.Name())
		}
		const trials = 8000
		root := rng.New(23)
		var sum float64
		for i := 0; i < trials; i++ {
			res, err := core.Parallel(g, 0, core.Options{}, root.Split(5, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Dispersion)
		}
		mean := sum / trials
		if math.Abs(mean-want) > 0.06*want+0.3 {
			t.Errorf("%s: simulated E[τ_par] %.3f vs exact %.3f", g.Name(), mean, want)
		}
	}
}

func TestTheorem41ExactDomination(t *testing.T) {
	// Exact verification of Theorem 4.1 at small n: the parallel CDF sits
	// below the sequential CDF pointwise (τ_seq ⪯ τ_par), with no
	// Monte-Carlo error at all.
	for _, g := range []*graph.CSR{
		graph.Complete(5), graph.Cycle(5), graph.Star(6), graph.Path(4), graph.CompleteBinaryTree(2),
	} {
		seq, err := NewSequential(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallel(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		T := 500
		sc := seq.DispersionCDF(T)
		pc := par.DispersionCDF(T)
		for i := 0; i <= T; i++ {
			if pc[i] > sc[i]+1e-9 {
				t.Errorf("%s: P(τ_par<=%d)=%.6f exceeds P(τ_seq<=%d)=%.6f — domination violated",
					g.Name(), i, pc[i], i, sc[i])
				break
			}
		}
		// Strict inequality somewhere, except in degenerate tiny cases
		// (on the 3-vertex tree the two laws coincide exactly).
		if g.N() >= 5 {
			strict := false
			for i := 0; i <= T; i++ {
				if sc[i] > pc[i]+1e-9 {
					strict = true
					break
				}
			}
			if !strict {
				t.Errorf("%s: sequential and parallel CDFs identical — unexpected", g.Name())
			}
		}
	}
}

func TestExactCliqueGapMatchesTheorem52Direction(t *testing.T) {
	// Already at n=6 the parallel mean should exceed the sequential mean
	// by a visible margin (the κ_cc vs π²/6 gap in the limit).
	g := graph.Complete(6)
	seq, _ := NewSequential(g, 0)
	par, _ := NewParallel(g, 0)
	sm, st := seq.ExpectedDispersion(800)
	pm, pt := par.ExpectedDispersion(800)
	if st > 1e-9 || pt > 1e-9 {
		t.Fatal("horizon too short")
	}
	if pm <= sm*1.05 {
		t.Errorf("exact E[τ_par]=%.4f not clearly above E[τ_seq]=%.4f", pm, sm)
	}
}

func TestNewParallelValidation(t *testing.T) {
	if _, err := NewParallel(graph.Complete(9), 0); err == nil {
		t.Error("oversized graph accepted")
	}
	if _, err := NewParallel(graph.Path(4), -1); err == nil {
		t.Error("bad origin accepted")
	}
}
