package exact

import (
	"math"
	"testing"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
	"dispersion/internal/stats"
)

func TestHarmonicMeasureSumsToOne(t *testing.T) {
	g := graph.Cycle(8)
	e, err := NewSequential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint32{1, 0b111, 0b10101} {
		hm := e.HarmonicMeasure(s)
		var sum float64
		for v, p := range hm {
			if s&(1<<uint(v)) != 0 && p != 0 {
				t.Fatalf("mass on occupied vertex %d", v)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("harmonic measure sums to %.6f for set %b", sum, s)
		}
	}
}

func TestHarmonicMeasureSymmetricOnCycle(t *testing.T) {
	// With only the origin occupied on a cycle, the two neighbours each
	// receive probability 1/2.
	g := graph.Cycle(6)
	e, _ := NewSequential(g, 0)
	hm := e.HarmonicMeasure(1)
	if math.Abs(hm[1]-0.5) > 1e-12 || math.Abs(hm[5]-0.5) > 1e-12 {
		t.Fatalf("cycle harmonic measure %v", hm)
	}
}

func TestHarmonicMeasureGamblersRuin(t *testing.T) {
	// Path 0-1-2-3 with {1} occupied... origin must be in the set; take
	// origin 1, occupied {1,2}: the walk from 1 exits at 0 or 3. By
	// gambler's ruin from the middle of a length-3 segment: P(0) = 2/3.
	g := graph.Path(4)
	e, _ := NewSequential(g, 1)
	hm := e.HarmonicMeasure(0b0110)
	if math.Abs(hm[0]-2.0/3.0) > 1e-10 || math.Abs(hm[3]-1.0/3.0) > 1e-10 {
		t.Fatalf("gambler's ruin measure %v, want [2/3, 0, 0, 1/3]", hm)
	}
}

func TestMeanAbsorptionSingleOccupied(t *testing.T) {
	// Only the origin occupied: absorption takes exactly 1 step.
	g := graph.Complete(6)
	e, _ := NewSequential(g, 0)
	if got := e.MeanAbsorptionTime(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("single-vertex absorption %.6f, want 1", got)
	}
}

func TestMeanAbsorptionCliqueFormula(t *testing.T) {
	// On K_n with k occupied (origin among them), each step escapes with
	// probability (n-k)/(n-1): geometric with mean (n-1)/(n-k).
	n := 8
	g := graph.Complete(n)
	e, _ := NewSequential(g, 0)
	for _, k := range []int{1, 3, 5, 7} {
		s := uint32(1<<uint(k)) - 1 // vertices 0..k-1 occupied
		want := float64(n-1) / float64(n-k)
		if got := e.MeanAbsorptionTime(s); math.Abs(got-want) > 1e-10 {
			t.Fatalf("K_%d with %d occupied: %.6f, want %.6f", n, k, got, want)
		}
	}
}

func TestExpectedTotalStepsCliqueCouponCollector(t *testing.T) {
	// Summing the geometric means over k = 1..n-1 on K_n gives
	// (n-1)·H_{n-1}: the coupon collector total.
	n := 8
	g := graph.Complete(n)
	e, _ := NewSequential(g, 0)
	var want float64
	for k := 1; k <= n-1; k++ {
		want += float64(n-1) / float64(k)
	}
	got := e.ExpectedTotalSteps()
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("K_%d exact total steps %.6f, want %.6f", n, got, want)
	}
}

func TestExpectedTotalStepsMatchesSimulation(t *testing.T) {
	for _, g := range []*graph.CSR{graph.Cycle(7), graph.Path(7), graph.Star(7), graph.CompleteBinaryTree(3)} {
		e, err := NewSequential(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := e.ExpectedTotalSteps()
		const trials = 6000
		root := rng.New(11)
		var sum float64
		for i := 0; i < trials; i++ {
			res, err := core.Sequential(g, 0, core.Options{}, root.Split(1, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.TotalSteps)
		}
		mean := sum / trials
		if math.Abs(mean-want) > 0.05*want+0.5 {
			t.Errorf("%s: simulated total steps %.2f vs exact %.2f", g.Name(), mean, want)
		}
	}
}

func TestTotalStepsParallelMatchesExact(t *testing.T) {
	// Theorem 4.1: the parallel total steps have the same law, hence the
	// same exact mean.
	g := graph.Star(6)
	e, _ := NewSequential(g, 0)
	want := e.ExpectedTotalSteps()
	const trials = 8000
	root := rng.New(13)
	var sum float64
	for i := 0; i < trials; i++ {
		res, err := core.Parallel(g, 0, core.Options{}, root.Split(2, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.TotalSteps)
	}
	mean := sum / trials
	if math.Abs(mean-want) > 0.05*want+0.5 {
		t.Errorf("parallel total steps %.2f vs exact sequential %.2f", mean, want)
	}
}

func TestDispersionCDFMonotoneAndComplete(t *testing.T) {
	g := graph.Cycle(6)
	e, _ := NewSequential(g, 0)
	cdf := e.DispersionCDF(400)
	for t1 := 1; t1 < len(cdf); t1++ {
		if cdf[t1] < cdf[t1-1]-1e-12 {
			t.Fatalf("CDF decreases at %d", t1)
		}
	}
	if cdf[len(cdf)-1] < 0.999 {
		t.Fatalf("CDF tail %.6f, want ≈ 1", cdf[len(cdf)-1])
	}
	// τ_seq >= 1 always (some particle must take a step when n > 1).
	if cdf[0] != 0 {
		t.Fatalf("P(τ=0) = %.4f, want 0", cdf[0])
	}
}

func TestExpectedDispersionMatchesSimulation(t *testing.T) {
	for _, tc := range []struct {
		g *graph.CSR
		T int
	}{
		{graph.Complete(6), 300},
		{graph.Cycle(6), 600},
		{graph.Star(6), 300},
		{graph.Path(5), 600},
	} {
		e, err := NewSequential(tc.g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, tail := e.ExpectedDispersion(tc.T)
		if tail > 1e-6 {
			t.Fatalf("%s: horizon too short, tail %.2g", tc.g.Name(), tail)
		}
		const trials = 8000
		root := rng.New(17)
		var sum float64
		for i := 0; i < trials; i++ {
			res, err := core.Sequential(tc.g, 0, core.Options{}, root.Split(3, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Dispersion)
		}
		mean := sum / trials
		if math.Abs(mean-want) > 0.06*want+0.3 {
			t.Errorf("%s: simulated E[τ_seq] %.3f vs exact %.3f", tc.g.Name(), mean, want)
		}
	}
}

func TestDispersionCDFMatchesEmpirical(t *testing.T) {
	// Full-distribution check, not just the mean: the empirical CDF of
	// simulated dispersion times must track the exact CDF pointwise.
	g := graph.Complete(5)
	e, _ := NewSequential(g, 0)
	T := 200
	cdf := e.DispersionCDF(T)
	const trials = 6000
	root := rng.New(19)
	xs := make([]float64, trials)
	for i := range xs {
		res, err := core.Sequential(g, 0, core.Options{}, root.Split(4, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = float64(res.Dispersion)
	}
	emp := stats.NewECDF(xs)
	for _, q := range []int{2, 4, 8, 16, 32} {
		got := emp.At(float64(q))
		want := cdf[q]
		if math.Abs(got-want) > 0.03 {
			t.Errorf("P(τ<=%d): empirical %.4f vs exact %.4f", q, got, want)
		}
	}
}

func TestSequentialKappaTrendAtTinyN(t *testing.T) {
	// Exact E[τ_seq(K_n)]/n at small n sits below κ_cc and climbs toward
	// it (the limit is approached from below for the exact values).
	var prev float64
	for _, n := range []int{4, 6, 8} {
		e, _ := NewSequential(graph.Complete(n), 0)
		mean, tail := e.ExpectedDispersion(600)
		if tail > 1e-9 {
			t.Fatal("horizon too short")
		}
		ratio := mean / float64(n)
		if ratio < prev {
			t.Errorf("E[τ_seq(K_%d)]/n = %.4f decreased from %.4f", n, ratio, prev)
		}
		prev = ratio
	}
	if prev > 1.2552 {
		t.Errorf("exact clique ratio %.4f already above κ_cc at n=8", prev)
	}
}

func TestNewSequentialValidation(t *testing.T) {
	if _, err := NewSequential(graph.Complete(25), 0); err == nil {
		t.Error("oversized graph accepted")
	}
	if _, err := NewSequential(graph.Path(4), 9); err == nil {
		t.Error("bad origin accepted")
	}
	b := graph.NewBuilder("disc", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g, _ := b.Build()
	if _, err := NewSequential(g, 0); err == nil {
		t.Error("disconnected graph accepted")
	}
}
