package exact

import (
	"math"
	"testing"

	"dispersion/internal/graph"
)

// Capacity 1 with k = n particles is the standard Sequential process.
func TestCapacityOneMatchesClassic(t *testing.T) {
	for _, g := range ruleGraphs() {
		e, err := NewSequential(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := e.ExpectedTotalSteps()
		got, err := CapacityExpectedTotalSteps(g, 0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: capacity-1 total steps %.9f, classic %.9f", g.Name(), got, want)
		}

		const T = 200
		wantCDF := e.DispersionCDF(T)
		gotCDF, err := CapacityDispersionCDF(g, 0, 1, 0, T)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 0; tt <= T; tt++ {
			if math.Abs(gotCDF[tt]-wantCDF[tt]) > 1e-9 {
				t.Fatalf("%s: capacity-1 cdf[%d] = %.9f, classic %.9f", g.Name(), tt, gotCDF[tt], wantCDF[tt])
			}
		}
	}
}

// On K_2 with capacity c the process has a closed form: the first c
// particles settle at the origin with zero steps; each later particle
// starts on the (full) origin and walks exactly one step to the other
// vertex, which stays sub-full until the end. E[total] = c.
func TestCapacityClosedFormK2(t *testing.T) {
	g := graph.Complete(2)
	for _, c := range []int{1, 2, 5} {
		got, err := CapacityExpectedTotalSteps(g, 0, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(c); math.Abs(got-want) > 1e-9 {
			t.Errorf("c=%d: total steps %.9f, want %.9f", c, got, want)
		}
	}
}

// Truncating the particle count must interpolate monotonically: more
// particles never decrease the expected total steps, and k = 1 from a
// fixed origin costs zero steps.
func TestCapacityParticlesMonotone(t *testing.T) {
	g := graph.Star(5)
	const c = 2
	prev := -1.0
	for k := 1; k <= c*g.N(); k++ {
		got, err := CapacityExpectedTotalSteps(g, 0, c, k)
		if err != nil {
			t.Fatal(err)
		}
		if k == 1 && got != 0 {
			t.Errorf("k=1: total steps %.9f, want 0", got)
		}
		if got < prev-1e-12 {
			t.Errorf("k=%d: total steps %.9f below k=%d's %.9f", k, got, k-1, prev)
		}
		prev = got
	}
}

// The dispersion CDF must be a genuine CDF whose horizon captures the full
// mass, and its mean must dominate the capacity-1 mean (full vertices make
// walks longer... on K_n the extra load strictly increases dispersion).
func TestCapacityCDFShape(t *testing.T) {
	g := graph.Complete(5)
	const T = 400
	cdf, err := CapacityDispersionCDF(g, 0, 2, 0, T)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 1; t2 <= T; t2++ {
		if cdf[t2] < cdf[t2-1]-1e-12 {
			t.Fatalf("cdf decreases at %d: %.12f -> %.12f", t2, cdf[t2-1], cdf[t2])
		}
	}
	if tail := 1 - cdf[T]; tail > 1e-9 {
		t.Fatalf("horizon %d leaves tail mass %g", T, tail)
	}
	mean2, _, err := CapacityExpectedDispersion(g, 0, 2, 0, T)
	if err != nil {
		t.Fatal(err)
	}
	mean1, _, err := CapacityExpectedDispersion(g, 0, 1, 0, T)
	if err != nil {
		t.Fatal(err)
	}
	if mean2 <= mean1 {
		t.Errorf("capacity-2 mean dispersion %.4f not above capacity-1's %.4f", mean2, mean1)
	}
}

// A uniform capacity vector must reproduce the scalar-capacity DP
// exactly, for both the total-steps mean and the dispersion CDF.
func TestCapacityVecUniformMatchesScalar(t *testing.T) {
	for _, g := range []*graph.CSR{graph.Complete(4), graph.Star(4), graph.Cycle(5)} {
		for _, c := range []int{1, 2, 3} {
			caps := uniformCaps(g.N(), c)
			want, err := CapacityExpectedTotalSteps(g, 0, c, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CapacityVecExpectedTotalSteps(g, 0, caps, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s c=%d: vector total steps %.9f, scalar %.9f", g.Name(), c, got, want)
			}
		}
	}
}

// On K_2 with capacities {a, b} from origin 0 the process has a closed
// form: the first a particles settle at the origin for free, and each of
// the b later particles walks exactly one step. E[total] = b.
func TestCapacityVecClosedFormK2(t *testing.T) {
	g := graph.Complete(2)
	for _, caps := range [][]int{{1, 3}, {2, 1}, {4, 4}} {
		got, err := CapacityVecExpectedTotalSteps(g, 0, caps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(caps[1]); math.Abs(got-want) > 1e-9 {
			t.Errorf("caps=%v: total steps %.9f, want %.9f", caps, got, want)
		}
	}
}

// Raising one vertex's capacity adds settlement slots without removing
// any, so the expected total steps of a full fill can only grow; the
// vector CDF must stay a genuine CDF with no tail at a generous horizon.
func TestCapacityVecShape(t *testing.T) {
	g := graph.Star(4)
	base := []int{1, 1, 1, 1}
	prev, err := CapacityVecExpectedTotalSteps(g, 0, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, caps := range [][]int{{2, 1, 1, 1}, {2, 2, 1, 1}, {2, 2, 2, 1}, {2, 2, 2, 2}} {
		got, err := CapacityVecExpectedTotalSteps(g, 0, caps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Errorf("caps=%v: total steps %.9f below previous %.9f", caps, got, prev)
		}
		prev = got
	}

	const T = 400
	cdf, err := CapacityVecDispersionCDF(g, 0, []int{2, 1, 3, 1}, 0, T)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 1; t2 <= T; t2++ {
		if cdf[t2] < cdf[t2-1]-1e-12 {
			t.Fatalf("cdf decreases at %d: %.12f -> %.12f", t2, cdf[t2-1], cdf[t2])
		}
	}
	if tail := 1 - cdf[T]; tail > 1e-9 {
		t.Fatalf("horizon %d leaves tail mass %g", T, tail)
	}
}

// Bad vector parameters are rejected.
func TestCapacityVecErrors(t *testing.T) {
	g := graph.Complete(3)
	if _, err := CapacityVecExpectedTotalSteps(g, 0, []int{1, 1}, 0); err == nil {
		t.Error("short capacity vector accepted")
	}
	if _, err := CapacityVecExpectedTotalSteps(g, 0, []int{1, 0, 1}, 0); err == nil {
		t.Error("zero capacity entry accepted")
	}
	if _, err := CapacityVecExpectedTotalSteps(g, 0, []int{1, 2, 1}, 5); err == nil {
		t.Error("k > Sum(caps) accepted")
	}
}

// Bad parameters are rejected.
func TestCapacityErrors(t *testing.T) {
	g := graph.Complete(3)
	if _, err := CapacityExpectedTotalSteps(g, 0, 0, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := CapacityExpectedTotalSteps(g, 0, 2, 7); err == nil {
		t.Error("k > c*n accepted")
	}
	if _, err := CapacityExpectedTotalSteps(g, 9, 2, 0); err == nil {
		t.Error("origin out of range accepted")
	}
}
