package exact

import (
	"fmt"
	"math/bits"

	"dispersion/internal/graph"
)

// This file extends the subset DP to the registered variant workloads: the
// Proposition A.1 modified settle rules (geometric acceptance,
// step-threshold settlement), lazy walks, fewer particles, and random
// origins. The structural change versus the classic solver is that
// settlement is resolved on *standing* vertices rather than on arrivals: a
// rule may veto (geom, threshold) or grant (a vacant start) settlement at
// step zero, so the absorbing chain runs over all n vertices with a
// per-visit absorption probability instead of over the occupied set only.
// For the standard rule the two formulations coincide whenever the start
// is occupied.

// RuleKind names a settlement rule of the rule-aware solvers.
type RuleKind int

// The settlement rules the solvers understand, mirroring the registered
// processes: the standard rule settles at the first vacant standing
// vertex; RuleGeom settles on a vacant standing vertex with probability Q
// per visit; RuleThreshold settles at the first vacant standing vertex
// from step T on.
const (
	RuleStandard RuleKind = iota
	RuleGeom
	RuleThreshold
)

// Rule describes the walk law and settlement rule of a rule-aware solve.
// The zero Rule is the standard Sequential process.
type Rule struct {
	// Kind selects the settlement rule.
	Kind RuleKind
	// Lazy makes the walk lazy: each step stays put with probability 1/2.
	Lazy bool
	// Q is RuleGeom's per-visit settle probability, in (0, 1].
	Q float64
	// T is RuleThreshold's minimum step count before settlement.
	T int
}

// absorb returns the probability that a particle standing on vertex v at
// step t settles there, given the occupied set s.
func (rule Rule) absorb(v int, t int, s uint32) float64 {
	if s&(1<<uint(v)) != 0 {
		return 0
	}
	switch rule.Kind {
	case RuleGeom:
		return rule.Q
	case RuleThreshold:
		if t < rule.T {
			return 0
		}
		return 1
	default:
		return 1
	}
}

// validate rejects rule parameters the registered processes would reject.
func (rule Rule) validate() error {
	switch rule.Kind {
	case RuleGeom:
		if rule.Q <= 0 || rule.Q > 1 {
			return fmt.Errorf("exact: geometric settle probability %v (want (0,1])", rule.Q)
		}
	case RuleThreshold:
		if rule.T < 0 {
			return fmt.Errorf("exact: settle threshold %d (want >= 0)", rule.T)
		}
	}
	return nil
}

// settleIterCap bounds the standing-time iteration of the rule solvers;
// the surviving mass decays geometrically on connected graphs with at
// least one vacant vertex, so the cap is never reached in practice.
const settleIterCap = 1 << 20

// settleTol is the surviving-mass threshold below which a rule solve is
// considered converged.
const settleTol = 1e-14

// SettleLaw returns the settlement law of one particle walking from start
// with occupied set s under the rule: measure[v] is the probability it
// settles at vertex v, and mean its expected step count. The walk runs on
// the whole graph with per-standing-visit absorption, so a vacant start
// may settle at step zero. It errors when s leaves no vertex to settle on.
func SettleLaw(g *graph.CSR, start int, s uint32, rule Rule) ([]float64, float64, error) {
	n := g.N()
	if err := checkRuleSolve(g, start, s, rule); err != nil {
		return nil, 0, err
	}
	measure := make([]float64, n)
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[start] = 1
	var mean float64
	for t := 0; t < settleIterCap; t++ {
		alive := absorbStanding(cur, measure, s, rule, t)
		if alive < settleTol {
			return measure, mean, nil
		}
		// Every surviving unit of mass performs at least one more step:
		// E[steps] = sum over t of P(steps > t).
		mean += alive
		stepFull(g, cur, next, rule.Lazy)
		cur, next = next, cur
	}
	return nil, 0, fmt.Errorf("exact: rule solve did not converge (alive mass %g)", sum(cur))
}

// SettleCDF returns, for a particle walking from start with occupied set s
// under the rule, the joint settlement law truncated at horizon T:
// out[v][t] = P(settles at v within <= t steps), for t = 0..T. Unlike the
// arrival-absorbed Sequential.SettleCDF, entry t=0 can be positive (a
// vacant start settles with zero steps).
func SettleCDF(g *graph.CSR, start int, s uint32, rule Rule, T int) ([][]float64, error) {
	n := g.N()
	if err := checkRuleSolve(g, start, s, rule); err != nil {
		return nil, err
	}
	out := make([][]float64, n)
	for v := range out {
		out[v] = make([]float64, T+1)
	}
	absorbed := make([]float64, n)
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[start] = 1
	for t := 0; t <= T; t++ {
		absorbStanding(cur, absorbed, s, rule, t)
		for v := 0; v < n; v++ {
			out[v][t] = absorbed[v]
		}
		if t < T {
			stepFull(g, cur, next, rule.Lazy)
			cur, next = next, cur
		}
	}
	return out, nil
}

// checkRuleSolve validates the shared inputs of the rule solvers.
func checkRuleSolve(g *graph.CSR, start int, s uint32, rule Rule) error {
	n := g.N()
	if n > maxExactN {
		return fmt.Errorf("exact: n = %d exceeds subset-DP limit %d", n, maxExactN)
	}
	if start < 0 || start >= n {
		return fmt.Errorf("exact: start %d out of range", start)
	}
	if !g.IsConnected() {
		return fmt.Errorf("exact: graph not connected")
	}
	if err := rule.validate(); err != nil {
		return err
	}
	if s == uint32(1)<<uint(n)-1 {
		return fmt.Errorf("exact: occupied set leaves no vertex to settle on")
	}
	return nil
}

// absorbStanding applies one standing-time absorption pass: mass at each
// vertex settles with the rule's per-visit probability, accumulating into
// absorbed. It returns the surviving mass.
func absorbStanding(cur, absorbed []float64, s uint32, rule Rule, t int) float64 {
	var alive float64
	for v := range cur {
		if cur[v] == 0 {
			continue
		}
		if a := rule.absorb(v, t, s); a > 0 {
			absorbed[v] += a * cur[v]
			cur[v] -= a * cur[v]
		}
		alive += cur[v]
	}
	return alive
}

// stepFull advances one walk step of the distribution over the whole
// graph (no absorption; that happens on standing).
func stepFull(g *graph.CSR, cur, next []float64, lazy bool) {
	for i := range next {
		next[i] = 0
	}
	for u := range cur {
		share := cur[u]
		if share == 0 {
			continue
		}
		if lazy {
			next[u] += share / 2
			share /= 2
		}
		share /= float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			next[v] += share
		}
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SeqVariant describes a Sequential-process variant for the exact drivers
// below: a settle rule plus the particle-count and origin-policy options.
// The zero SeqVariant is the standard full process from a fixed origin.
type SeqVariant struct {
	// Rule is the walk law and settlement rule.
	Rule Rule
	// Particles is the number of particles to disperse; zero means n.
	Particles int
	// RandomOrigins starts every particle at an independent uniform
	// vertex instead of the common origin.
	RandomOrigins bool
}

// particles resolves the particle count against the graph size.
func (v SeqVariant) particles(n int) (int, error) {
	k := v.Particles
	if k == 0 {
		k = n
	}
	if k < 1 || k > n {
		return 0, fmt.Errorf("exact: %d particles on %d vertices (want 1..n)", k, n)
	}
	return k, nil
}

// starts returns the (start, weight) mixture of the variant's origin
// policy.
func (v SeqVariant) starts(origin, n int) ([]int, float64) {
	if !v.RandomOrigins {
		return []int{origin}, 1
	}
	us := make([]int, n)
	for u := range us {
		us[u] = u
	}
	return us, 1 / float64(n)
}

// SeqExpectedTotalSteps returns the exact E[total steps] of the
// Sequential-process variant: a forward DP over occupied sets where each
// transition uses the rule-aware settlement law. With the zero variant it
// reproduces Sequential.ExpectedTotalSteps.
func SeqExpectedTotalSteps(g *graph.CSR, origin int, v SeqVariant) (float64, error) {
	n := g.N()
	k, err := v.particles(n)
	if err != nil {
		return 0, err
	}
	starts, w := v.starts(origin, n)
	laws := newLawCache(g, v.Rule)
	// prob[s] = probability the occupied-set trajectory visits s. The
	// empty set is the state before the first particle: rules may send
	// even particle 0 walking, and under random origins its start varies.
	prob := map[uint32]float64{0: 1}
	var total float64
	for _, s := range allSubsetsByPopcount(n) {
		p, ok := prob[s]
		if !ok || bits.OnesCount32(s) >= k {
			continue
		}
		for _, u := range starts {
			measure, mean, err := laws.law(u, s)
			if err != nil {
				return 0, err
			}
			total += p * w * mean
			for t := 0; t < n; t++ {
				if measure[t] > 0 {
					prob[s|1<<uint(t)] += p * w * measure[t]
				}
			}
		}
	}
	return total, nil
}

// SeqDispersionCDF returns the exact CDF of the variant's dispersion time:
// cdf[t] = P(max per-particle steps <= t) for t = 0..T, by the same
// occupied-set factorisation as Sequential.DispersionCDF with rule-aware
// per-set settlement CDFs.
func SeqDispersionCDF(g *graph.CSR, origin int, v SeqVariant, T int) ([]float64, error) {
	n := g.N()
	k, err := v.particles(n)
	if err != nil {
		return nil, err
	}
	starts, w := v.starts(origin, n)
	cdf := make([]float64, T+1)
	// f[s][t] = P(trajectory reaches s AND every walk so far took <= t).
	f := map[uint32][]float64{0: ones(T + 1)}
	for _, s := range allSubsetsByPopcount(n) {
		fs, ok := f[s]
		if !ok {
			continue
		}
		if bits.OnesCount32(s) == k {
			for t := 0; t <= T; t++ {
				cdf[t] += fs[t]
			}
			continue
		}
		for _, u := range starts {
			settle, err := SettleCDF(g, u, s, v.Rule, T)
			if err != nil {
				return nil, err
			}
			for tgt := 0; tgt < n; tgt++ {
				if s&(1<<uint(tgt)) != 0 || settle[tgt][T] == 0 {
					continue
				}
				nxt := f[s|1<<uint(tgt)]
				if nxt == nil {
					nxt = make([]float64, T+1)
					f[s|1<<uint(tgt)] = nxt
				}
				for t := 0; t <= T; t++ {
					nxt[t] += w * fs[t] * settle[tgt][t]
				}
			}
		}
	}
	return cdf, nil
}

// SeqExpectedDispersion returns the variant's exact E[dispersion] up to
// the truncation error of horizon T, plus the residual tail mass P(τ > T).
func SeqExpectedDispersion(g *graph.CSR, origin int, v SeqVariant, T int) (mean, tailMass float64, err error) {
	cdf, err := SeqDispersionCDF(g, origin, v, T)
	if err != nil {
		return 0, 0, err
	}
	for t := 0; t < T; t++ {
		mean += 1 - cdf[t]
	}
	return mean, 1 - cdf[T], nil
}

// lawCache memoizes SettleLaw per (start, occupied set): the random-origin
// DPs revisit the same pair once per predecessor state.
type lawCache struct {
	g    *graph.CSR
	rule Rule
	m    map[uint64]cachedLaw
}

// cachedLaw is one memoized settlement law.
type cachedLaw struct {
	measure []float64
	mean    float64
}

func newLawCache(g *graph.CSR, rule Rule) *lawCache {
	return &lawCache{g: g, rule: rule, m: map[uint64]cachedLaw{}}
}

// law returns the memoized settlement law from start given occupied set s.
func (c *lawCache) law(start int, s uint32) ([]float64, float64, error) {
	key := uint64(start)<<32 | uint64(s)
	if l, ok := c.m[key]; ok {
		return l.measure, l.mean, nil
	}
	measure, mean, err := SettleLaw(c.g, start, s, c.rule)
	if err != nil {
		return nil, 0, err
	}
	c.m[key] = cachedLaw{measure: measure, mean: mean}
	return measure, mean, nil
}

// allSubsetsByPopcount returns every subset of [0,n) ordered by increasing
// cardinality, the traversal order of the variant DPs (which, unlike the
// classic solver, must visit sets not containing the origin).
func allSubsetsByPopcount(n int) []uint32 {
	out := make([]uint32, 0, 1<<uint(n))
	buckets := make([][]uint32, n+1)
	for s := uint32(0); s < 1<<uint(n); s++ {
		pc := popcount(s)
		buckets[pc] = append(buckets[pc], s)
	}
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// ones returns a length-n vector of ones.
func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
