package block

import (
	"testing"
	"testing/quick"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func testGraphs() []*graph.CSR {
	return []*graph.CSR{
		graph.Path(9),
		graph.Cycle(10),
		graph.Complete(12),
		graph.Star(8),
		graph.CompleteBinaryTree(3),
		graph.Lollipop(10),
		graph.Grid([]int{3, 4}, false),
		graph.CliqueWithHair(9),
	}
}

func recordSequential(t *testing.T, g *graph.CSR, seed uint64) *Block {
	t.Helper()
	res, err := core.Sequential(g, 0, core.Options{Record: true}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func recordParallel(t *testing.T, g *graph.CSR, seed uint64) *Block {
	t.Helper()
	res, err := core.Parallel(g, 0, core.Options{Record: true}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPaperWorkedExample(t *testing.T) {
	// The example block on V = {1,2,3,4} from Section 4, 0-indexed here.
	L := &Block{Rows: [][]int32{
		{0},
		{0, 1},
		{0, 1, 1, 2},
		{0, 1, 0, 1, 2, 3},
	}}
	// CP_(4,1) in the paper = CP(3, 1) here: the tail of row 3 moves onto
	// the row ending at vertex 1 (row 1).
	got, err := L.CP(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := &Block{Rows: [][]int32{
		{0},
		{0, 1, 0, 1, 2, 3},
		{0, 1, 1, 2},
		{0, 1},
	}}
	if !got.Equal(want) {
		t.Fatalf("CP(3,1) = %v, want %v", got.Rows, want.Rows)
	}
	// The paper's identity positions: CP at each row's final cell.
	for _, pos := range [][2]int{{0, 0}, {1, 1}, {2, 3}, {3, 5}} {
		id, err := L.CP(pos[0], pos[1])
		if err != nil {
			t.Fatal(err)
		}
		if !id.Equal(L) {
			t.Errorf("CP(%d,%d) should be the identity", pos[0], pos[1])
		}
	}
}

func TestCPPreservesInvariants(t *testing.T) {
	L := &Block{Rows: [][]int32{
		{0},
		{0, 1},
		{0, 1, 1, 2},
		{0, 1, 0, 1, 2, 3},
	}}
	got, err := L.CP(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalLength() != L.TotalLength() {
		t.Error("CP changed total length")
	}
	if err := got.CheckEndpoints(); err != nil {
		t.Errorf("CP broke property (2): %v", err)
	}
}

func TestFromResultRequiresRecording(t *testing.T) {
	res, err := core.Sequential(graph.Path(5), 0, core.Options{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromResult(res); err == nil {
		t.Fatal("FromResult accepted unrecorded run")
	}
}

func TestRecordedRunsSatisfyProperties(t *testing.T) {
	for _, g := range testGraphs() {
		seq := recordSequential(t, g, 42)
		if !seq.IsSequential() {
			t.Errorf("%s: recorded sequential run violates property (3)", g.Name())
		}
		if err := seq.CheckWalks(g, 0, false); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		par := recordParallel(t, g, 43)
		if !par.IsParallel() {
			t.Errorf("%s: recorded parallel run violates property (4)", g.Name())
		}
		if err := par.CheckWalks(g, 0, false); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

func TestSequentialIsNotUsuallyParallel(t *testing.T) {
	// Sanity: the two validity notions are genuinely different. On the
	// path from an endpoint, the sequential block settles vertices in
	// order, which read column-wise gives early first-occurrences.
	g := graph.Complete(16)
	found := false
	for seed := uint64(0); seed < 20 && !found; seed++ {
		seq := recordSequential(t, g, seed)
		if !seq.IsParallel() {
			found = true
		}
	}
	if !found {
		t.Error("every sequential K_16 block was also parallel-valid; checker suspect")
	}
}

func TestStPProducesValidParallel(t *testing.T) {
	for _, g := range testGraphs() {
		for seed := uint64(0); seed < 5; seed++ {
			b := recordSequential(t, g, seed)
			orig := b.Clone()
			if err := b.StP(); err != nil {
				t.Fatalf("%s seed %d: StP: %v", g.Name(), seed, err)
			}
			if !b.IsParallel() {
				t.Errorf("%s seed %d: StP output violates property (4)", g.Name(), seed)
			}
			if b.TotalLength() != orig.TotalLength() {
				t.Errorf("%s: StP changed total length %d -> %d",
					g.Name(), orig.TotalLength(), b.TotalLength())
			}
			if err := b.CheckWalks(g, 0, false); err != nil {
				t.Errorf("%s: StP output not walks: %v", g.Name(), err)
			}
			// Lemma 4.6: the longest row cannot shrink.
			if b.LongestRow() < orig.LongestRow() {
				t.Errorf("%s: StP shrank longest row %d -> %d (Lemma 4.6 violated)",
					g.Name(), orig.LongestRow(), b.LongestRow())
			}
		}
	}
}

func TestPtSProducesValidSequential(t *testing.T) {
	for _, g := range testGraphs() {
		for seed := uint64(0); seed < 5; seed++ {
			b := recordParallel(t, g, seed)
			orig := b.Clone()
			if err := b.PtS(); err != nil {
				t.Fatalf("%s seed %d: PtS: %v", g.Name(), seed, err)
			}
			if !b.IsSequential() {
				t.Errorf("%s seed %d: PtS output violates property (3)", g.Name(), seed)
			}
			if b.TotalLength() != orig.TotalLength() {
				t.Errorf("%s: PtS changed total length", g.Name())
			}
			if err := b.CheckWalks(g, 0, false); err != nil {
				t.Errorf("%s: PtS output not walks: %v", g.Name(), err)
			}
		}
	}
}

func TestBijectionRoundTrip(t *testing.T) {
	// Remark 4.5: StP and PtS are mutually inverse.
	for _, g := range testGraphs() {
		for seed := uint64(0); seed < 5; seed++ {
			seq := recordSequential(t, g, seed)
			work := seq.Clone()
			if err := work.StP(); err != nil {
				t.Fatal(err)
			}
			if err := work.PtS(); err != nil {
				t.Fatal(err)
			}
			if !work.Equal(seq) {
				t.Errorf("%s seed %d: PtS(StP(L)) != L", g.Name(), seed)
			}

			par := recordParallel(t, g, seed)
			work = par.Clone()
			if err := work.PtS(); err != nil {
				t.Fatal(err)
			}
			if err := work.StP(); err != nil {
				t.Fatal(err)
			}
			if !work.Equal(par) {
				t.Errorf("%s seed %d: StP(PtS(L)) != L", g.Name(), seed)
			}
		}
	}
}

func TestBijectionRoundTripQuick(t *testing.T) {
	g := graph.Lollipop(12)
	if err := quick.Check(func(seed uint64) bool {
		res, err := core.Sequential(g, 0, core.Options{Record: true}, rng.New(seed))
		if err != nil {
			return false
		}
		b, err := FromResult(res)
		if err != nil {
			return false
		}
		orig := b.Clone()
		if b.StP() != nil || b.PtS() != nil {
			return false
		}
		return b.Equal(orig)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLemma46DominationMechanism(t *testing.T) {
	// The coupling behind Theorem 4.1: pairing each sequential block L
	// with StP(L), the parallel longest row dominates the sequential one.
	// Checked across many seeds and graphs (already asserted per-block in
	// TestStPProducesValidParallel; here we additionally confirm strict
	// increase happens sometimes, i.e. the coupling is not vacuous).
	g := graph.Complete(16)
	strict := false
	for seed := uint64(0); seed < 30; seed++ {
		b := recordSequential(t, g, seed)
		before := b.LongestRow()
		if err := b.StP(); err != nil {
			t.Fatal(err)
		}
		if b.LongestRow() > before {
			strict = true
		}
	}
	if !strict {
		t.Error("StP never strictly increased the longest row over 30 trials")
	}
}

func TestPtSOrderRandomPriority(t *testing.T) {
	// The σ-twisted PtS of Theorem 4.2 must also produce valid sequential
	// blocks for any order fixing row 0 first.
	g := graph.Grid([]int{3, 3}, false)
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		b := recordParallel(t, g, uint64(trial))
		order := make([]int, len(b.Rows))
		for i := range order {
			order[i] = i
		}
		// Shuffle rows 1..n-1, keeping row 0 (the settled origin) first.
		r.Shuffle(len(order)-1, func(i, j int) {
			order[i+1], order[j+1] = order[j+1], order[i+1]
		})
		if err := b.PtSOrder(order); err != nil {
			t.Fatalf("PtSOrder: %v", err)
		}
		if err := b.CheckEndpoints(); err != nil {
			t.Errorf("PtSOrder broke property (2): %v", err)
		}
		if err := b.CheckWalks(g, 0, false); err != nil {
			t.Errorf("PtSOrder output not walks: %v", err)
		}
	}
}

func TestReorder(t *testing.T) {
	b := &Block{Rows: [][]int32{{0}, {0, 1}, {0, 1, 2}}}
	nb, err := b.Reorder([]int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nb.Rows[1]) != 3 || len(nb.Rows[2]) != 2 {
		t.Errorf("Reorder misplaced rows: %v", nb.Rows)
	}
	if _, err := b.Reorder([]int{0, 0, 1}); err == nil {
		t.Error("duplicate permutation entry accepted")
	}
	if _, err := b.Reorder([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
}

func makeR(n int, length int, r *rng.Source) []int32 {
	R := make([]int32, length)
	for i := range R {
		R[i] = int32(1 + r.Intn(n-1))
	}
	return R
}

func TestPtURProducesValidUniform(t *testing.T) {
	for _, g := range testGraphs() {
		for seed := uint64(0); seed < 5; seed++ {
			par := recordParallel(t, g, seed)
			r := rng.New(seed + 1000)
			// Generous R: expected ticks needed is about n * total length.
			R := makeR(g.N(), int(par.TotalLength())*g.N()*4+100, r)
			u, err := par.PtUR(R)
			if err != nil {
				t.Fatalf("%s seed %d: PtUR: %v", g.Name(), seed, err)
			}
			if !u.IsUniform() {
				t.Errorf("%s seed %d: PtUR output fails uniform validity", g.Name(), seed)
			}
			if u.TotalLength() != par.TotalLength() {
				t.Errorf("%s: PtUR changed total length %d -> %d",
					g.Name(), par.TotalLength(), u.TotalLength())
			}
			if err := u.CheckWalks(g, 0, false); err != nil {
				t.Errorf("%s: PtUR output not walks: %v", g.Name(), err)
			}
			// Theorem 4.7 mechanism: Cut & Paste from a parallel block
			// cannot increase row length, so uniform longest <= parallel.
			if u.LongestRow() > par.LongestRow() {
				t.Errorf("%s: uniform longest row %d exceeds parallel %d",
					g.Name(), u.LongestRow(), par.LongestRow())
			}
		}
	}
}

func TestPtURInverseIsStP(t *testing.T) {
	// Theorem 4.7's bijection: StP transforms the R-uniform block back
	// into the original parallel block, for any R (StP is oblivious to
	// the ordering).
	for _, g := range testGraphs() {
		for seed := uint64(0); seed < 3; seed++ {
			par := recordParallel(t, g, seed)
			r := rng.New(seed + 500)
			R := makeR(g.N(), int(par.TotalLength())*g.N()*4+100, r)
			u, err := par.PtUR(R)
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			back := u.Clone()
			if err := back.StP(); err != nil {
				t.Fatalf("%s: StP on uniform block: %v", g.Name(), err)
			}
			if !back.Equal(par) {
				t.Errorf("%s seed %d: StP(PtUR(L, R)) != L", g.Name(), seed)
			}
		}
	}
}

func TestPtURTimingConsistency(t *testing.T) {
	g := graph.Complete(10)
	par := recordParallel(t, g, 3)
	r := rng.New(4)
	R := makeR(g.N(), int(par.TotalLength())*g.N()*4+100, r)
	u, err := par.PtUR(R)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range u.Rows {
		if u.T[i][0] != 0 {
			t.Fatalf("row %d: T[0] = %d, want 0", i, u.T[i][0])
		}
		for j := 1; j < len(row); j++ {
			if u.T[i][j] <= u.T[i][j-1] {
				t.Fatalf("row %d: ticks not increasing at %d: %v", i, j, u.T[i][:j+1])
			}
			// Tick must belong to this particle in R.
			if R[u.T[i][j]-1] != int32(i) {
				t.Fatalf("row %d move %d at tick %d, but R assigns particle %d",
					i, j, u.T[i][j], R[u.T[i][j]-1])
			}
		}
	}
}

func TestPtURExhaustedR(t *testing.T) {
	g := graph.Complete(8)
	par := recordParallel(t, g, 5)
	_, err := par.PtUR(makeR(g.N(), 2, rng.New(6)))
	if err == nil {
		t.Fatal("short R accepted")
	}
}

func TestPtURRejectsBadParticle(t *testing.T) {
	g := graph.Complete(8)
	par := recordParallel(t, g, 5)
	if _, err := par.PtUR([]int32{0, 1, 2}); err == nil {
		t.Fatal("R containing particle 0 accepted")
	}
	if _, err := par.PtUR([]int32{9}); err == nil {
		t.Fatal("R containing out-of-range particle accepted")
	}
}

func TestLazyBlocksSupported(t *testing.T) {
	// Section 4.4: the coupling machinery applies verbatim to lazy walks.
	g := graph.Cycle(9)
	res, err := core.Sequential(g, 0, core.Options{Record: true, Lazy: true}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckWalks(g, 0, true); err != nil {
		t.Fatal(err)
	}
	if !b.IsSequential() {
		t.Error("lazy sequential block fails property (3)")
	}
	orig := b.Clone()
	if err := b.StP(); err != nil {
		t.Fatal(err)
	}
	if !b.IsParallel() || b.TotalLength() != orig.TotalLength() {
		t.Error("StP on lazy block misbehaved")
	}
	if err := b.PtS(); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(orig) {
		t.Error("lazy round trip failed")
	}
}

func TestCheckWalksCatchesCorruption(t *testing.T) {
	g := graph.Path(6)
	b := recordSequential(t, g, 1)
	b.Rows[2][0] = 3 // wrong origin
	if err := b.CheckWalks(g, 0, false); err == nil {
		t.Error("corrupted origin not caught")
	}
	b = recordSequential(t, g, 1)
	if len(b.Rows[2]) > 1 {
		b.Rows[2][1] = b.Rows[2][0] // illegal stay in non-lazy block
		if err := b.CheckWalks(g, 0, false); err == nil {
			t.Error("illegal stay not caught")
		}
	}
}

func TestCheckEndpointsCatchesDuplicates(t *testing.T) {
	b := &Block{Rows: [][]int32{{0, 1}, {0, 1}}}
	if err := b.CheckEndpoints(); err == nil {
		t.Error("duplicate endpoints not caught")
	}
}

func TestTotalLengthAndLongestRow(t *testing.T) {
	b := &Block{Rows: [][]int32{{0}, {0, 1, 2}, {0, 1}}}
	if b.TotalLength() != 3 {
		t.Errorf("TotalLength = %d, want 3", b.TotalLength())
	}
	if b.LongestRow() != 2 {
		t.Errorf("LongestRow = %d, want 2", b.LongestRow())
	}
}

func TestCPErrors(t *testing.T) {
	b := &Block{Rows: [][]int32{{0}, {0, 1}}}
	if _, err := b.CP(0, 5); err == nil {
		t.Error("out-of-range CP accepted")
	}
}
