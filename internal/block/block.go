// Package block implements the paper's block representation of IDLA
// process histories and the Cut & Paste machinery of Section 4: the CP
// transform, Algorithm 1 (StP: sequential-to-parallel), Algorithm 2 (PtS:
// parallel-to-sequential) and Algorithm 3 (PtUR: parallel-to-R-uniform),
// together with validity checkers for the paper's properties (2), (3) and
// (4). These bijections are what couple the dispersion times of the
// process variants (Theorems 4.1, 4.2, 4.7).
//
// A block is an irregular 2-dimensional array L with one row per particle;
// L(i, t) is the vertex occupied by particle i after its t-th jump, so row
// i has length ρ_i + 1 where ρ_i is the particle's step count. Property
// (2) — the row endpoints are distinct and cover V — is the invariant every
// transform preserves.
package block

import (
	"fmt"

	"dispersion/internal/core"
	"dispersion/internal/graph"
)

// Block is an IDLA history. Rows[i][t] is the paper's L(i, t). T, when
// non-nil, is the timing array of an R-uniform block: T[i][t] is the global
// tick at which particle i performed its t-th jump (T[i][0] = 0).
type Block struct {
	Rows [][]int32
	T    [][]int64
}

// FromResult converts a recorded process run into a block. The run must
// have been produced with Options.Record set.
func FromResult(res *core.Result) (*Block, error) {
	return FromTrajectories(res.Trajectories)
}

// FromTrajectories builds a block from recorded per-particle trajectories
// (one row per particle, rows deep-copied). It accepts the Trajectories
// field of any result type that records them; nil means the run was not
// recorded.
func FromTrajectories(trajs [][]int32) (*Block, error) {
	if trajs == nil {
		return nil, fmt.Errorf("block: result has no recorded trajectories")
	}
	rows := make([][]int32, len(trajs))
	for i, traj := range trajs {
		rows[i] = append([]int32(nil), traj...)
	}
	return &Block{Rows: rows}, nil
}

// Clone returns a deep copy.
func (b *Block) Clone() *Block {
	nb := &Block{Rows: make([][]int32, len(b.Rows))}
	for i, row := range b.Rows {
		nb.Rows[i] = append([]int32(nil), row...)
	}
	if b.T != nil {
		nb.T = make([][]int64, len(b.T))
		for i, row := range b.T {
			nb.T[i] = append([]int64(nil), row...)
		}
	}
	return nb
}

// NumRows returns the number of particles.
func (b *Block) NumRows() int { return len(b.Rows) }

// TotalLength returns m(L) = Σ ρ_i, the total number of moves recorded.
func (b *Block) TotalLength() int64 {
	var m int64
	for _, row := range b.Rows {
		m += int64(len(row) - 1)
	}
	return m
}

// LongestRow returns max_i ρ_i, the dispersion statistic of the block.
func (b *Block) LongestRow() int64 {
	var best int64
	for _, row := range b.Rows {
		if l := int64(len(row) - 1); l > best {
			best = l
		}
	}
	return best
}

// Equal reports whether two blocks have identical rows.
func (b *Block) Equal(o *Block) bool {
	if len(b.Rows) != len(o.Rows) {
		return false
	}
	for i := range b.Rows {
		if len(b.Rows[i]) != len(o.Rows[i]) {
			return false
		}
		for t := range b.Rows[i] {
			if b.Rows[i][t] != o.Rows[i][t] {
				return false
			}
		}
	}
	return true
}

// endpointIndex builds the map from endpoint vertex to owning row required
// by CP. It fails if property (2) does not hold (duplicate endpoints).
func (b *Block) endpointIndex() ([]int32, error) {
	n := len(b.Rows)
	end := make([]int32, n)
	for i := range end {
		end[i] = -1
	}
	for i, row := range b.Rows {
		v := row[len(row)-1]
		if int(v) >= n || v < 0 {
			return nil, fmt.Errorf("block: endpoint %d out of vertex range [0,%d)", v, n)
		}
		if end[v] >= 0 {
			return nil, fmt.Errorf("block: rows %d and %d share endpoint %d (property 2 violated)", end[v], i, v)
		}
		end[v] = int32(i)
	}
	return end, nil
}

// CheckEndpoints verifies the paper's property (2): the final cells of the
// rows are pairwise distinct, hence cover V when the block has n = |V|
// rows.
func (b *Block) CheckEndpoints() error {
	_, err := b.endpointIndex()
	return err
}

// CheckWalks verifies every row is a walk in g starting at origin.
// allowStay permits repeated consecutive vertices (lazy walks).
func (b *Block) CheckWalks(g *graph.CSR, origin int, allowStay bool) error {
	for i, row := range b.Rows {
		if len(row) == 0 {
			return fmt.Errorf("block: row %d empty", i)
		}
		if row[0] != int32(origin) {
			return fmt.Errorf("block: row %d starts at %d, want origin %d", i, row[0], origin)
		}
		for t := 1; t < len(row); t++ {
			if row[t] == row[t-1] {
				if !allowStay {
					return fmt.Errorf("block: row %d stays put at step %d in non-lazy block", i, t)
				}
				continue
			}
			if !g.HasEdge(int(row[t-1]), int(row[t])) {
				return fmt.Errorf("block: row %d step %d uses non-edge %d->%d", i, t, row[t-1], row[t])
			}
		}
	}
	return nil
}

// cp applies the Cut & Paste transform CP_(i,t): the cells
// (i, t+1..ρ_i) are cut and pasted after the unique row k whose endpoint
// equals L(i, t). end is the endpoint index, which cp keeps current.
// CP_(i,ρ_i) is the identity.
func (b *Block) cp(i, t int, end []int32) error {
	row := b.Rows[i]
	if t < 0 || t >= len(row) {
		return fmt.Errorf("block: CP position (%d,%d) out of range", i, t)
	}
	if t == len(row)-1 {
		return nil // identity
	}
	v := row[t]
	k := end[v]
	if k < 0 {
		return fmt.Errorf("block: no row ends at vertex %d", v)
	}
	if int(k) == i {
		return fmt.Errorf("block: CP_(%d,%d) would paste a row onto itself", i, t)
	}
	oldEndI := row[len(row)-1]
	b.Rows[k] = append(b.Rows[k], row[t+1:]...)
	b.Rows[i] = row[:t+1]
	if b.T != nil {
		b.T[k] = append(b.T[k], b.T[i][t+1:]...)
		b.T[i] = b.T[i][:t+1]
	}
	// Endpoints swap between rows i and k (property (2) is invariant).
	end[oldEndI] = k
	end[v] = int32(i)
	return nil
}

// CP applies a single public Cut & Paste transform and returns the
// transformed block, leaving the receiver untouched. Exposed for the
// worked example in the paper and for exploratory use; the algorithms use
// the in-place internal version.
func (b *Block) CP(i, t int) (*Block, error) {
	nb := b.Clone()
	end, err := nb.endpointIndex()
	if err != nil {
		return nil, err
	}
	if err := nb.cp(i, t, end); err != nil {
		return nil, err
	}
	return nb, nil
}
