package block_test

import (
	"fmt"

	"dispersion/internal/block"
)

// The worked Cut & Paste example from Section 4 of the paper, with
// vertices 0-indexed: CP_(4,1) in the paper's 1-indexed notation.
func ExampleBlock_CP() {
	L := &block.Block{Rows: [][]int32{
		{0},
		{0, 1},
		{0, 1, 1, 2},
		{0, 1, 0, 1, 2, 3},
	}}
	transformed, err := L.CP(3, 1)
	if err != nil {
		panic(err)
	}
	for _, row := range transformed.Rows {
		fmt.Println(row)
	}
	// Output:
	// [0]
	// [0 1 0 1 2 3]
	// [0 1 1 2]
	// [0 1]
}

// StP converts a sequential history into the parallel history it is
// coupled with; PtS inverts it (Remark 4.5).
func ExampleBlock_StP() {
	L := &block.Block{Rows: [][]int32{
		{0},
		{0, 1},
		{0, 1, 1, 2},
		{0, 1, 0, 1, 2, 3},
	}}
	work := L.Clone()
	if err := work.StP(); err != nil {
		panic(err)
	}
	fmt.Println("parallel-valid:", work.IsParallel())
	fmt.Println("total length preserved:", work.TotalLength() == L.TotalLength())
	fmt.Println("longest row (Lemma 4.6):", L.LongestRow(), "->", work.LongestRow())
	if err := work.PtS(); err != nil {
		panic(err)
	}
	fmt.Println("round trip restores L:", work.Equal(L))
	// Output:
	// parallel-valid: true
	// total length preserved: true
	// longest row (Lemma 4.6): 5 -> 5
	// round trip restores L: true
}
