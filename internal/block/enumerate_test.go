package block

import (
	"fmt"
	"testing"

	"dispersion/internal/graph"
)

// enumerateSequential returns every realization of the Sequential-IDLA on
// g from origin with total length <= maxLen, by DFS over all walk choices.
func enumerateSequential(g *graph.CSR, origin, maxLen int) []*Block {
	n := g.N()
	var out []*Block
	var rows [][]int32

	var nextParticle func(occupied []bool, settled, length int)
	var walkStep func(occupied []bool, settled, length int, pos int32, traj []int32)

	nextParticle = func(occupied []bool, settled, length int) {
		if settled == n {
			b := &Block{Rows: make([][]int32, n)}
			for i, r := range rows {
				b.Rows[i] = append([]int32(nil), r...)
			}
			out = append(out, b)
			return
		}
		walkStep(occupied, settled, length, int32(origin), []int32{int32(origin)})
	}
	walkStep = func(occupied []bool, settled, length int, pos int32, traj []int32) {
		if !occupied[pos] {
			// Settle here.
			occupied[pos] = true
			rows = append(rows, append([]int32(nil), traj...))
			nextParticle(occupied, settled+1, length)
			rows = rows[:len(rows)-1]
			occupied[pos] = false
			return
		}
		if length >= maxLen {
			return
		}
		for _, v := range g.Neighbors(int(pos)) {
			walkStep(occupied, settled, length+1, v, append(traj, v))
		}
	}
	occupied := make([]bool, n)
	nextParticle(occupied, 0, 0)
	return out
}

// enumerateParallel returns every realization of the Parallel-IDLA on g
// from origin with total length <= maxLen, by DFS over the joint choices
// of all unsettled particles each round.
func enumerateParallel(g *graph.CSR, origin, maxLen int) []*Block {
	n := g.N()
	var out []*Block

	type state struct {
		rows     [][]int32
		occupied []bool
		active   []int32
		length   int
	}

	var round func(st state)
	round = func(st state) {
		if len(st.active) == 0 {
			b := &Block{Rows: make([][]int32, n)}
			for i, r := range st.rows {
				b.Rows[i] = append([]int32(nil), r...)
			}
			out = append(out, b)
			return
		}
		if st.length+len(st.active) > maxLen {
			return
		}
		// Enumerate the joint move of all active particles.
		moves := make([]int32, len(st.active))
		var assign func(i int)
		assign = func(i int) {
			if i == len(moves) {
				// Apply the round: everyone moves, then settlement in
				// index order (active is kept sorted by construction).
				nst := state{
					rows:     make([][]int32, n),
					occupied: append([]bool(nil), st.occupied...),
					length:   st.length + len(st.active),
				}
				for r := range st.rows {
					nst.rows[r] = append([]int32(nil), st.rows[r]...)
				}
				for j, p := range st.active {
					nst.rows[p] = append(nst.rows[p], moves[j])
				}
				for _, p := range st.active {
					v := nst.rows[p][len(nst.rows[p])-1]
					if !nst.occupied[v] {
						nst.occupied[v] = true
					} else {
						nst.active = append(nst.active, p)
					}
				}
				round(nst)
				return
			}
			p := st.active[i]
			pos := st.rows[p][len(st.rows[p])-1]
			for _, v := range g.Neighbors(int(pos)) {
				moves[i] = v
				assign(i + 1)
			}
		}
		assign(0)
	}

	st := state{rows: make([][]int32, n), occupied: make([]bool, n)}
	for i := 0; i < n; i++ {
		st.rows[i] = []int32{int32(origin)}
	}
	st.occupied[origin] = true
	for i := 1; i < n; i++ {
		st.active = append(st.active, int32(i))
	}
	round(st)
	return out
}

func key(b *Block) string {
	return fmt.Sprint(b.Rows)
}

// TestExhaustiveBijection enumerates EVERY sequential and parallel block
// up to a length cap on tiny graphs and verifies Lemma 4.4 exhaustively:
// StP maps Seq^m bijectively onto Par^m for every total length m, with
// PtS as its inverse.
func TestExhaustiveBijection(t *testing.T) {
	cases := []struct {
		g      *graph.CSR
		maxLen int
	}{
		{graph.Complete(3), 8},
		{graph.Path(3), 8},
		{graph.Star(4), 7},
		{graph.Cycle(4), 6},
	}
	for _, tc := range cases {
		seqs := enumerateSequential(tc.g, 0, tc.maxLen)
		pars := enumerateParallel(tc.g, 0, tc.maxLen)
		if len(seqs) == 0 || len(pars) == 0 {
			t.Fatalf("%s: empty enumeration (%d seq, %d par)", tc.g.Name(), len(seqs), len(pars))
		}

		// Bucket by total length. Blocks at exactly the cap may have been
		// truncated versions of longer runs, so only lengths strictly
		// below the cap are complete classes.
		seqByLen := map[int64]map[string]*Block{}
		for _, b := range seqs {
			if !b.IsSequential() {
				t.Fatalf("%s: enumerated sequential block invalid: %v", tc.g.Name(), b.Rows)
			}
			m := b.TotalLength()
			if seqByLen[m] == nil {
				seqByLen[m] = map[string]*Block{}
			}
			seqByLen[m][key(b)] = b
		}
		parByLen := map[int64]map[string]*Block{}
		for _, b := range pars {
			if !b.IsParallel() {
				t.Fatalf("%s: enumerated parallel block invalid: %v", tc.g.Name(), b.Rows)
			}
			m := b.TotalLength()
			if parByLen[m] == nil {
				parByLen[m] = map[string]*Block{}
			}
			parByLen[m][key(b)] = b
		}

		for m := int64(0); m < int64(tc.maxLen); m++ {
			sm, pm := seqByLen[m], parByLen[m]
			if len(sm) == 0 && len(pm) == 0 {
				continue
			}
			// |Seq^m| must equal |Par^m| (Lemma 4.4).
			if len(sm) != len(pm) {
				t.Errorf("%s m=%d: |Seq|=%d but |Par|=%d", tc.g.Name(), m, len(sm), len(pm))
				continue
			}
			// StP must be an injection Seq^m -> Par^m with inverse PtS.
			images := map[string]bool{}
			for _, b := range sm {
				w := b.Clone()
				if err := w.StP(); err != nil {
					t.Fatalf("%s m=%d: StP: %v", tc.g.Name(), m, err)
				}
				k := key(w)
				if images[k] {
					t.Errorf("%s m=%d: StP not injective (collision at %s)", tc.g.Name(), m, k)
				}
				images[k] = true
				if _, ok := pm[k]; !ok {
					t.Errorf("%s m=%d: StP image %v not a parallel realization", tc.g.Name(), m, w.Rows)
				}
				if err := w.PtS(); err != nil {
					t.Fatalf("PtS: %v", err)
				}
				if !w.Equal(b) {
					t.Errorf("%s m=%d: PtS(StP(L)) != L", tc.g.Name(), m)
				}
			}
			// Injective into a set of equal finite size => bijective.
		}
	}
}

// TestEnumerationCountsSane pins down the enumeration itself on K_3 where
// the realizations can be counted by hand: particle 1 walks from 0 and
// settles in one step (2 choices); particle 2 needs k >= 1 steps staying
// on occupied vertices then escapes — for total length m there are
// exactly 2·2^(m-2) sequential realizations of length m >= 2 (2 choices
// per step of particle 2's walk... its last step is forced to the free
// vertex only when stepping off an occupied one, so each of its m-1 steps
// has 2 choices but only sequences whose first m-2 stay occupied count).
func TestEnumerationCountsSane(t *testing.T) {
	g := graph.Complete(3)
	seqs := enumerateSequential(g, 0, 6)
	byLen := map[int64]int{}
	for _, b := range seqs {
		byLen[b.TotalLength()]++
	}
	// m=2: particle 1 settles (2 ways), particle 2's single step must hit
	// the remaining free vertex: 1 way. Total 2.
	if byLen[2] != 2 {
		t.Errorf("K_3 m=2 count %d, want 2", byLen[2])
	}
	// m=3: particle 2 takes 2 steps: first to the occupied non-origin...
	// from 0 its step goes to either neighbour; exactly one is occupied
	// (2 ways for particle 1) x (1 way to stay occupied) x (then 1 forced
	// free? from the occupied vertex, neighbours are origin and free — it
	// must hit free, 1 way) = 2... plus first step to origin? impossible:
	// K_3 has no self-loops and 0 is origin itself. So 2.
	if byLen[3] != 2 {
		t.Errorf("K_3 m=3 count %d, want 2", byLen[3])
	}
}
