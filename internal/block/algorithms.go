package block

import (
	"fmt"
	"sort"
)

// IsSequential verifies the paper's property (3): reading the block in
// sequential order <S (row by row), the first occurrence of every vertex
// value is the final cell of its row. Together with property (2) this
// characterises realizations of the Sequential-IDLA.
func (b *Block) IsSequential() bool {
	if b.CheckEndpoints() != nil {
		return false
	}
	n := len(b.Rows)
	seen := make([]bool, n)
	for _, row := range b.Rows {
		for t, v := range row {
			if !seen[v] {
				seen[v] = true
				if t != len(row)-1 {
					return false
				}
			}
		}
	}
	return true
}

// IsParallel verifies the paper's property (4): reading the block in
// parallel order <P (column by column), the first occurrence of every
// vertex value is the final cell of its row.
func (b *Block) IsParallel() bool {
	if b.CheckEndpoints() != nil {
		return false
	}
	n := len(b.Rows)
	seen := make([]bool, n)
	maxLen := 0
	for _, row := range b.Rows {
		if len(row) > maxLen {
			maxLen = len(row)
		}
	}
	for t := 0; t < maxLen; t++ {
		for _, row := range b.Rows {
			if t >= len(row) {
				continue
			}
			v := row[t]
			if !seen[v] {
				seen[v] = true
				if t != len(row)-1 {
					return false
				}
			}
		}
	}
	return true
}

// StP is Algorithm 1: it transforms a sequential block into the parallel
// block of the Cut & Paste bijection, in place. The pointer sweeps the
// block in parallel order; the first time each vertex value is read, a
// Cut & Paste transform is applied at that cell.
func (b *Block) StP() error {
	n := len(b.Rows)
	end, err := b.endpointIndex()
	if err != nil {
		return err
	}
	seen := make([]bool, n)
	count := 0
	for t := 0; count < n; t++ {
		progressed := false
		for i := 0; i < n; i++ {
			if t >= len(b.Rows[i]) {
				continue
			}
			progressed = true
			v := b.Rows[i][t]
			if !seen[v] {
				seen[v] = true
				count++
				if err := b.cp(i, t, end); err != nil {
					return err
				}
			}
		}
		if !progressed {
			return fmt.Errorf("block: StP ran past all rows with %d of %d vertices seen", count, n)
		}
	}
	return nil
}

// PtS is Algorithm 2: it transforms a parallel block into the sequential
// block of the bijection, in place. It is PtSOrder with the identity row
// order.
func (b *Block) PtS() error {
	order := make([]int, len(b.Rows))
	for i := range order {
		order[i] = i
	}
	return b.PtSOrder(order)
}

// PtSOrder runs Algorithm 2 reading rows in the given order: row order[0]
// first, then order[1], and so on. This is the σ-twisted variant used in
// the proof of Theorem 4.2, where σ is a uniform permutation fixing row 0.
// The scan of each row stops at the first unseen vertex value, where a
// Cut & Paste is applied and the row is finalised.
func (b *Block) PtSOrder(order []int) error {
	n := len(b.Rows)
	if len(order) != n {
		return fmt.Errorf("block: order has %d entries, want %d", len(order), n)
	}
	end, err := b.endpointIndex()
	if err != nil {
		return err
	}
	seen := make([]bool, n)
	for _, i := range order {
		found := false
		for t := 0; t < len(b.Rows[i]); t++ {
			v := b.Rows[i][t]
			if seen[v] {
				continue
			}
			seen[v] = true
			if err := b.cp(i, t, end); err != nil {
				return err
			}
			found = true
			break
		}
		if !found {
			return fmt.Errorf("block: PtS read row %d without a new vertex", i)
		}
	}
	return nil
}

// Reorder returns the block with rows permuted so that new row i is old
// row perm[i] (the paper's σ(L) device). The timing array, if any, is
// permuted alongside.
func (b *Block) Reorder(perm []int) (*Block, error) {
	if len(perm) != len(b.Rows) {
		return nil, fmt.Errorf("block: permutation has %d entries, want %d", len(perm), len(b.Rows))
	}
	nb := &Block{Rows: make([][]int32, len(b.Rows))}
	if b.T != nil {
		nb.T = make([][]int64, len(b.T))
	}
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(b.Rows) || seen[p] {
			return nil, fmt.Errorf("block: invalid permutation entry %d", p)
		}
		seen[p] = true
		nb.Rows[i] = append([]int32(nil), b.Rows[p]...)
		if b.T != nil {
			nb.T[i] = append([]int64(nil), b.T[p]...)
		}
	}
	return nb, nil
}

// PtUR is Algorithm 3: it transforms a parallel block into the R-uniform
// block determined by the ordering sequence R, where R[t-1] in {1..n-1} is
// the index of the particle whose clock rings at global tick t (particle 0
// sits settled at the origin). As in the paper's continuous-time variant
// PtUC, when row i's clock rings the algorithm reads the first unread cell
// of the *current* row i — rows grow as Cut & Paste moves unread cells
// (and their future tick assignments) between rows. The result carries the
// timing array T with T[i][0] = 0 and T[i][j] the tick of particle i's
// j-th move; ticks ringing for an exhausted row are wasted, exactly like
// rings of settled particles in the Uniform-IDLA. An error is returned if
// R is exhausted before every vertex value has been read.
func (b *Block) PtUR(R []int32) (*Block, error) {
	n := len(b.Rows)
	rows := make([][]int32, n)
	tval := make([][]int64, n)
	for i, row := range b.Rows {
		rows[i] = append([]int32(nil), row...)
		tval[i] = make([]int64, len(row))
	}
	work := &Block{Rows: rows, T: tval}
	end, err := work.endpointIndex()
	if err != nil {
		return nil, err
	}
	seen := make([]bool, n)
	count := 0
	ptr := make([]int, n) // next unread position per row
	// Tick 0 reads every start cell (i, 0); only the origin is new, first
	// read in row 0 whose Cut & Paste is the identity (ρ_0 = 0).
	for i := 0; i < n; i++ {
		v := rows[i][0]
		if !seen[v] {
			seen[v] = true
			count++
			if err := work.cp(i, 0, end); err != nil {
				return nil, err
			}
		}
		ptr[i] = 1
	}
	for t := 0; count < n; t++ {
		if t >= len(R) {
			return nil, fmt.Errorf("block: R exhausted with %d of %d vertices seen", count, n)
		}
		p := int(R[t])
		if p < 1 || p >= n {
			return nil, fmt.Errorf("block: R[%d] = %d outside particle range [1,%d)", t, p, n)
		}
		if ptr[p] >= len(work.Rows[p]) {
			continue // wasted tick: particle p has settled
		}
		j := ptr[p]
		work.T[p][j] = int64(t + 1)
		ptr[p]++
		v := work.Rows[p][j]
		if !seen[v] {
			seen[v] = true
			count++
			if err := work.cp(p, j, end); err != nil {
				return nil, err
			}
		}
	}
	return work, nil
}

// IsUniform verifies the uniform-block property: reading cells in
// increasing timing order (starts first, ties by row), the first
// occurrence of every vertex value is the final cell of its row. The block
// must carry a timing array.
func (b *Block) IsUniform() bool {
	if b.T == nil || b.CheckEndpoints() != nil {
		return false
	}
	type cell struct {
		t    int64
		i, j int
	}
	var order []cell
	for i, row := range b.Rows {
		for j := range row {
			order = append(order, cell{b.T[i][j], i, j})
		}
	}
	sort.Slice(order, func(a, c int) bool {
		if order[a].t != order[c].t {
			return order[a].t < order[c].t
		}
		return order[a].i < order[c].i
	})
	n := len(b.Rows)
	seen := make([]bool, n)
	for _, c := range order {
		v := b.Rows[c.i][c.j]
		if !seen[v] {
			seen[v] = true
			if c.j != len(b.Rows[c.i])-1 {
				return false
			}
		}
	}
	return true
}
