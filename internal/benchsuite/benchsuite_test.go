package benchsuite

import (
	"reflect"
	"strings"
	"testing"

	"dispersion/server"
)

const sampleDoc = `{
  "defaults": {"samples": 6, "iterations": 400, "quick_iterations": 40, "warmup": 2, "workers": 1, "seed": 7},
  "suites": [
    {"name": "engine",
     "processes": ["sequential", "parallel"],
     "graphs": ["complete:64", "cycle:32"],
     "iterations": 800},
    {"name": "variants",
     "processes": ["capacity"],
     "graphs": ["complete:64"],
     "options": [{}, {"capacity": 3}, {"lazy": true, "particles": 16}],
     "samples": 4}
  ]
}`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseStringRoundTrip(t *testing.T) {
	f := parseSample(t)
	rendered := f.String()
	back, err := Parse([]byte(rendered))
	if err != nil {
		t.Fatalf("reparsing String output: %v", err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Errorf("parse → String → parse changed the file:\nfirst:  %+v\nsecond: %+v", f, back)
	}
	// And String is a fixed point: rendering the reparse is identical.
	if again := back.String(); again != rendered {
		t.Errorf("String not canonical:\nfirst:\n%s\nsecond:\n%s", rendered, again)
	}
}

func TestConfigsExpansion(t *testing.T) {
	f := parseSample(t)
	cfgs := f.Configs(false)
	var names []string
	for _, c := range cfgs {
		names = append(names, c.Name)
	}
	want := []string{
		"engine/sequential/complete:64",
		"engine/parallel/complete:64",
		"engine/sequential/cycle:32",
		"engine/parallel/cycle:32",
		"variants/capacity/complete:64",
		"variants/capacity/complete:64/capacity=3",
		"variants/capacity/complete:64/lazy,particles=16",
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("expanded names %v, want %v", names, want)
	}
	// Suite overrides defaults; unset fields inherit.
	c := cfgs[0]
	if c.Iterations != 800 || c.Samples != 6 || c.Warmup != 2 || c.Workers != 1 || c.Seed != 7 {
		t.Errorf("engine budgets: %+v", c)
	}
	v := cfgs[4]
	if v.Samples != 4 || v.Iterations != 400 {
		t.Errorf("variants budgets: %+v", v)
	}
	// The engine job of a cell carries the cell's coordinates.
	job := cfgs[5].Job()
	if job.Process != "capacity" || job.Spec != "complete:64" || job.Trials != 400 || len(job.Options) != 1 {
		t.Errorf("job: %+v", job)
	}
	if err := job.Validate(); err != nil {
		t.Errorf("expanded job does not validate: %v", err)
	}
}

func TestConfigsQuickBudgets(t *testing.T) {
	f := parseSample(t)
	quick := f.Configs(true)
	// The engine suite has no quick_iterations of its own: it inherits
	// the default 40. Same for variants.
	for _, c := range quick {
		if c.Iterations != 40 {
			t.Errorf("%s: quick iterations %d, want 40", c.Name, c.Iterations)
		}
	}
	// With no quick budget anywhere, quick mode falls back to a tenth.
	f2, err := Parse([]byte(`{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["complete:8"], "iterations": 250}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Configs(true)[0].Iterations; got != 25 {
		t.Errorf("fallback quick iterations %d, want 25", got)
	}
	// The fallback never reaches zero.
	f3, err := Parse([]byte(`{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["complete:8"], "iterations": 5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := f3.Configs(true)[0].Iterations; got != 1 {
		t.Errorf("minimum quick iterations %d, want 1", got)
	}
}

func TestParseRejectsUnknownGraph(t *testing.T) {
	_, err := Parse([]byte(`{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["moebius:9"]}]}`))
	if err == nil {
		t.Fatal("unknown graph family accepted")
	}
	// The graphspec diagnostics (naming the family and the known kinds)
	// must survive the wrapping.
	if !strings.Contains(err.Error(), `unknown graph kind "moebius"`) ||
		!strings.Contains(err.Error(), "complete") {
		t.Errorf("error %q does not carry graphspec.Parse diagnostics", err)
	}
}

func TestParseRejectsUnknownProcess(t *testing.T) {
	_, err := Parse([]byte(`{"suites": [{"name": "s", "processes": ["teleport"], "graphs": ["complete:8"]}]}`))
	if err == nil {
		t.Fatal("unknown process accepted")
	}
	if !strings.Contains(err.Error(), `unknown process "teleport"`) ||
		!strings.Contains(err.Error(), "sequential") {
		t.Errorf("error %q does not carry the registry diagnostics", err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["complete:8"], "iteraitons": 5}]}`, "iteraitons"},
		{"no suites", `{"suites": []}`, "no suites"},
		{"unnamed suite", `{"suites": [{"processes": ["sequential"], "graphs": ["complete:8"]}]}`, "no name"},
		{"slash in name", `{"suites": [{"name": "a/b", "processes": ["sequential"], "graphs": ["complete:8"]}]}`, "must not contain"},
		{"duplicate suites", `{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["complete:8"]}, {"name": "s", "processes": ["sequential"], "graphs": ["complete:8"]}]}`, "duplicate suite"},
		{"no processes", `{"suites": [{"name": "s", "graphs": ["complete:8"]}]}`, "no processes"},
		{"no graphs", `{"suites": [{"name": "s", "processes": ["sequential"]}]}`, "no graphs"},
		{"duplicate cell", `{"suites": [{"name": "s", "processes": ["sequential", "sequential"], "graphs": ["complete:8"]}]}`, "duplicate configuration"},
		{"negative budget", `{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["complete:8"], "warmup": -1}]}`, "negative budget"},
		{"trailing data", `{"suites": [{"name": "s", "processes": ["sequential"], "graphs": ["complete:8"]}]} {"x": 1}`, "trailing"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestOptionsLabelDeterministic(t *testing.T) {
	o := server.Options{Lazy: true, Particles: 16, SettleParam: 0.25, Capacity: 3}
	want := "lazy,particles=16,settle-param=0.25,capacity=3"
	if got := OptionsLabel(o); got != want {
		t.Errorf("label %q, want %q", got, want)
	}
	if got := OptionsLabel(server.Options{}); got != "" {
		t.Errorf("zero options label %q, want empty", got)
	}
}
