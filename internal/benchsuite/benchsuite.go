// Package benchsuite defines the declarative benchmark-suite files the
// benchmark lab (cmd/benchlab) and the repository benchmark harness
// (bench_test.go) both consume, in the spirit of bent's suites.toml:
// suites are data, not code. A file declares a grid of configurations —
// graph family × process × options — plus per-suite measurement budgets
// (sample count, iteration count, warmup), and every tool that measures
// "how fast is a trial" expands the same committed file into the same
// configuration list.
//
// The format is JSON (the repository's one serialization format: jobs,
// results, sketches and perf artifacts are all JSON already):
//
//	{
//	  "defaults": {"samples": 10, "iterations": 2000, "quick_iterations": 200,
//	               "warmup": 2, "workers": 1, "seed": 1},
//	  "suites": [
//	    {"name": "engine",
//	     "processes": ["sequential", "parallel"],
//	     "graphs": ["complete:512"],
//	     "options": [{}, {"lazy": true}],
//	     "iterations": 3000}
//	  ]
//	}
//
// Every suite crosses its graphs, processes and options entries into one
// configuration per cell, named "suite/process/graph" (plus a
// deterministic option label when the options entry is non-zero). Graph
// specs are validated with graphspec.Parse, process names against the
// dispersion registry, and options reuse the server's JSON schema
// (server.Options), so a suites file cannot name anything the engine
// would reject at run time.
package benchsuite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/server"
)

// Params are the measurement budgets a file's defaults section and each
// suite may set; zero fields inherit (suite from defaults, defaults from
// the package fallbacks).
type Params struct {
	// Samples is the number of repeated timed measurements per
	// configuration; confidence intervals are computed across them.
	Samples int `json:"samples,omitempty"`
	// Iterations is the number of engine trials per sample.
	Iterations int `json:"iterations,omitempty"`
	// QuickIterations is the reduced per-sample trial budget used when
	// the lab runs in quick mode (CI); zero falls back to
	// max(Iterations/10, 1).
	QuickIterations int `json:"quick_iterations,omitempty"`
	// Warmup is the number of untimed samples run first.
	Warmup int `json:"warmup,omitempty"`
	// Workers is the engine worker count (0 lets the suite/defaults
	// decide; the final fallback is 1, the stable single-threaded
	// timing mode).
	Workers int `json:"workers,omitempty"`
	// Seed roots the engine randomness of every sample, so each sample
	// times the identical trial set and the spread across samples is
	// machine noise, not workload variation.
	Seed uint64 `json:"seed,omitempty"`
}

// merge overlays p over base, field by field.
func (p Params) merge(base Params) Params {
	if p.Samples == 0 {
		p.Samples = base.Samples
	}
	if p.Iterations == 0 {
		p.Iterations = base.Iterations
	}
	if p.QuickIterations == 0 {
		p.QuickIterations = base.QuickIterations
	}
	if p.Warmup == 0 {
		p.Warmup = base.Warmup
	}
	if p.Workers == 0 {
		p.Workers = base.Workers
	}
	if p.Seed == 0 {
		p.Seed = base.Seed
	}
	return p
}

// fallback is the bottom of the Params inheritance chain.
var fallback = Params{Samples: 10, Iterations: 1000, Warmup: 1, Workers: 1, Seed: 1}

// Suite is one declared grid: every graph × process × options cell
// becomes a configuration.
type Suite struct {
	// Name labels the suite; it prefixes every configuration name.
	Name string `json:"name"`
	// Processes lists registry names (canonical or alias) to measure.
	Processes []string `json:"processes"`
	// Graphs lists graphspec strings to measure on.
	Graphs []string `json:"graphs"`
	// Options is the third grid axis: each entry configures one
	// variant of every process × graph cell. Empty means one
	// default-options variant.
	Options []server.Options `json:"options,omitempty"`
	// Params override the file defaults for this suite.
	Params
}

// File is a parsed suites file.
type File struct {
	// Defaults seed the Params of every suite.
	Defaults Params `json:"defaults,omitempty"`
	// Suites holds the declared grids, in file order.
	Suites []Suite `json:"suites"`
}

// Config is one expanded cell of a suite's grid together with its
// effective measurement budgets — everything a driver needs to measure
// it.
type Config struct {
	// Name identifies the configuration across runs and reports:
	// "suite/process/graph" plus an option label when options are set.
	Name string `json:"name"`
	// Suite is the declaring suite's name.
	Suite string `json:"suite"`
	// Process is the registry name to run.
	Process string `json:"process"`
	// Graph is the graphspec to build.
	Graph string `json:"graph"`
	// Options configure every trial (server JSON schema).
	Options server.Options `json:"options,omitempty"`
	// Samples, Iterations, Warmup, Workers and Seed are the effective
	// budgets after defaults/suite/quick resolution; Iterations is
	// already the quick budget when the file was expanded in quick
	// mode.
	Samples    int    `json:"samples"`
	Iterations int    `json:"iterations"`
	Warmup     int    `json:"warmup"`
	Workers    int    `json:"workers"`
	Seed       uint64 `json:"seed"`
}

// Job renders the configuration as the engine job that one sample runs.
func (c Config) Job() dispersion.Job {
	return dispersion.Job{
		Process: c.Process,
		Spec:    c.Graph,
		Trials:  c.Iterations,
		Options: c.Options.Build(),
	}
}

// Parse decodes and validates a suites file. Unknown JSON fields are
// rejected (a typo in a budget name must not silently measure the wrong
// thing), as are unknown graph families (with graphspec.Parse's
// diagnostics), unregistered processes, empty grids, and suites or
// expanded configurations whose names collide.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchsuite: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("benchsuite: trailing data after the suites document")
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and parses the suites file at path.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// validate checks the whole file, including that the expanded grid is
// well-formed and collision-free.
func (f *File) validate() error {
	if len(f.Suites) == 0 {
		return fmt.Errorf("benchsuite: file declares no suites")
	}
	suiteNames := map[string]bool{}
	for i := range f.Suites {
		s := &f.Suites[i]
		if s.Name == "" {
			return fmt.Errorf("benchsuite: suite %d has no name", i)
		}
		if strings.Contains(s.Name, "/") {
			return fmt.Errorf("benchsuite: suite %q: name must not contain %q", s.Name, "/")
		}
		if suiteNames[s.Name] {
			return fmt.Errorf("benchsuite: duplicate suite name %q", s.Name)
		}
		suiteNames[s.Name] = true
		if len(s.Processes) == 0 {
			return fmt.Errorf("benchsuite: suite %q lists no processes", s.Name)
		}
		if len(s.Graphs) == 0 {
			return fmt.Errorf("benchsuite: suite %q lists no graphs", s.Name)
		}
		for _, p := range s.Processes {
			if _, err := dispersion.Lookup(p); err != nil {
				return fmt.Errorf("benchsuite: suite %q: %w", s.Name, err)
			}
		}
		for _, g := range s.Graphs {
			if _, err := graphspec.Parse(g); err != nil {
				return fmt.Errorf("benchsuite: suite %q: %w", s.Name, err)
			}
		}
		for _, ps := range []Params{s.Params, f.Defaults} {
			if ps.Samples < 0 || ps.Iterations < 0 || ps.QuickIterations < 0 ||
				ps.Warmup < 0 || ps.Workers < 0 {
				return fmt.Errorf("benchsuite: suite %q: negative budget", s.Name)
			}
		}
	}
	// Expanding cannot fail past this point; check the cell names are
	// unique (two identical grid cells would silently shadow each other
	// in reports and gates).
	seen := map[string]bool{}
	for _, c := range f.Configs(false) {
		if seen[c.Name] {
			return fmt.Errorf("benchsuite: duplicate configuration %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Configs expands every suite's grid into its configurations, in file
// order (suites in declaration order; within a suite, options × graphs ×
// processes with processes fastest). quick swaps each configuration's
// iteration budget for its quick budget.
func (f *File) Configs(quick bool) []Config {
	var out []Config
	for _, s := range f.Suites {
		eff := s.Params.merge(f.Defaults).merge(fallback)
		iters := eff.Iterations
		if quick {
			iters = eff.QuickIterations
			if iters == 0 {
				iters = max(eff.Iterations/10, 1)
			}
		}
		optionSets := s.Options
		if len(optionSets) == 0 {
			optionSets = []server.Options{{}}
		}
		for _, opt := range optionSets {
			for _, g := range s.Graphs {
				for _, p := range s.Processes {
					name := s.Name + "/" + p + "/" + g
					if label := OptionsLabel(opt); label != "" {
						name += "/" + label
					}
					out = append(out, Config{
						Name:       name,
						Suite:      s.Name,
						Process:    p,
						Graph:      g,
						Options:    opt,
						Samples:    eff.Samples,
						Iterations: iters,
						Warmup:     eff.Warmup,
						Workers:    eff.Workers,
						Seed:       eff.Seed,
					})
				}
			}
		}
	}
	return out
}

// OptionsLabel renders a deterministic short label for an options entry
// ("" for the zero value), used to keep configuration names unique
// across a suite's options axis, e.g. "lazy,particles=128".
func OptionsLabel(o server.Options) string {
	var parts []string
	if o.Lazy {
		parts = append(parts, "lazy")
	}
	if o.Record {
		parts = append(parts, "record")
	}
	if o.Particles > 0 {
		parts = append(parts, fmt.Sprintf("particles=%d", o.Particles))
	}
	if o.RandomOrigins {
		parts = append(parts, "random-origins")
	}
	if o.MaxSteps > 0 {
		parts = append(parts, fmt.Sprintf("max-steps=%d", o.MaxSteps))
	}
	if o.RandomPriority {
		parts = append(parts, "random-priority")
	}
	if o.SettleParam != 0 {
		parts = append(parts, fmt.Sprintf("settle-param=%g", o.SettleParam))
	}
	if o.Capacity != 0 {
		parts = append(parts, fmt.Sprintf("capacity=%d", o.Capacity))
	}
	if len(o.Capacities) > 0 {
		caps := make([]string, len(o.Capacities))
		for i, c := range o.Capacities {
			caps[i] = strconv.Itoa(c)
		}
		parts = append(parts, "caps="+strings.Join(caps, "-"))
	}
	if o.Batch != 0 {
		parts = append(parts, fmt.Sprintf("batch=%d", o.Batch))
	}
	return strings.Join(parts, ",")
}

// String renders the file back to its canonical indented-JSON form.
// Parse(String(f)) reproduces f exactly — the round-trip identity that
// keeps committed suites files rewritable by tools.
func (f *File) String() string {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		// File holds only plain data types; MarshalIndent cannot fail.
		panic(err)
	}
	return string(out) + "\n"
}
