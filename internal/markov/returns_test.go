package markov

import (
	"math"
	"testing"

	"dispersion/internal/graph"
)

func TestTransitionProbabilityCycle(t *testing.T) {
	g := graph.Cycle(8)
	// One simple step: 1/2 to each neighbour.
	if p := TransitionProbability(g, 0, 1, 1, false); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("p^1(0,1) = %g", p)
	}
	// Two simple steps: return probability 1/2 on a cycle.
	if p := TransitionProbability(g, 0, 0, 2, false); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("p^2(0,0) = %g", p)
	}
	// Odd-step return on a bipartite cycle is 0 (simple walk periodicity).
	if p := TransitionProbability(g, 0, 0, 3, false); p != 0 {
		t.Errorf("p^3(0,0) = %g on bipartite cycle", p)
	}
	// The lazy walk breaks periodicity.
	if p := TransitionProbability(g, 0, 0, 3, true); p <= 0 {
		t.Error("lazy odd-step return should be positive")
	}
}

func TestTransitionProbabilityComplete(t *testing.T) {
	n := 10
	g := graph.Complete(n)
	// p^2(u,u) = 1/(n-1) for the simple walk on K_n.
	if p := TransitionProbability(g, 0, 0, 2, false); math.Abs(p-1.0/9.0) > 1e-12 {
		t.Errorf("K_10 p^2(0,0) = %g, want 1/9", p)
	}
}

func TestExpectedReturnsHypercubeIsConstant(t *testing.T) {
	// The paper's Theorem 5.7 hinges on Σ_{t<=log²n} p̃^t(u,u) = O(1) on
	// the hypercube: verify it stays small as k grows.
	prev := 0.0
	for _, k := range []int{5, 7, 9} {
		g := graph.Hypercube(k)
		T := int(math.Pow(math.Log2(float64(g.N())), 2))
		r := ExpectedReturns(g, 0, T, true)
		if r > 3.2 {
			t.Errorf("hypercube k=%d: expected returns %.3f over log²n steps, want O(1)", k, r)
		}
		if prev != 0 && r > prev+0.3 {
			t.Errorf("expected returns growing with k: %.3f -> %.3f", prev, r)
		}
		prev = r
	}
}

func TestExpectedReturnsCycleGrows(t *testing.T) {
	// On the cycle returns accumulate like sqrt(T): contrast with the
	// hypercube above.
	g := graph.Cycle(64)
	r := ExpectedReturns(g, 0, 400, true)
	if r < 5 {
		t.Errorf("cycle expected returns %.2f over 400 steps, want >> O(1)", r)
	}
}

func TestLemmaC2BoundDominatesExactSetHitting(t *testing.T) {
	// Verify the Lemma C.2 upper bound against exact lazy set-hitting
	// times on regular graphs, across set sizes.
	for _, g := range []*graph.CSR{graph.Hypercube(5), graph.Cycle(32), graph.Complete(32)} {
		sp := SpectralGap(g, 200000, 1e-13)
		for _, size := range []int{1, 2, 4, 8} {
			set := make([]int, size)
			for i := range set {
				set[i] = (i * g.N()) / size // spread the set out
			}
			h, err := HitSetFrom(g, set, true)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for _, v := range h {
				if v > worst {
					worst = v
				}
			}
			bound := LemmaC2Bound(g.N(), size, sp.Lambda2Lazy)
			if worst > bound {
				t.Errorf("%s |S|=%d: exact lazy t_hit %.1f exceeds Lemma C.2 bound %.1f",
					g.Name(), size, worst, bound)
			}
		}
	}
}

func TestLemmaC2BoundMonotoneInSetSize(t *testing.T) {
	// Larger sets are easier to hit; the bound reflects it up to the log
	// term: compare sizes a factor 4 apart where the 1/|S| wins.
	if LemmaC2Bound(1024, 16, 0.5) <= LemmaC2Bound(1024, 64, 0.5) {
		t.Error("bound should shrink for much larger sets")
	}
}
