package markov

import (
	"math"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func TestWalkSpectrumComplete(t *testing.T) {
	// K_n: eigenvalue 1 once, -1/(n-1) with multiplicity n-1.
	n := 10
	s, err := WalkSpectrum(graph.Complete(n))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, s.Values[0], 1, 1e-9, "top eigenvalue")
	for i := 1; i < n; i++ {
		almost(t, s.Values[i], -1.0/float64(n-1), 1e-9, "bulk eigenvalue")
	}
}

func TestWalkSpectrumCycle(t *testing.T) {
	// C_n: eigenvalues cos(2πk/n), k = 0..n-1.
	n := 12
	s, err := WalkSpectrum(graph.Cycle(n))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 0, n)
	for k := 0; k < n; k++ {
		want = append(want, math.Cos(2*math.Pi*float64(k)/float64(n)))
	}
	// Sort want decreasing.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if want[j] > want[i] {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	for i := range want {
		almost(t, s.Values[i], want[i], 1e-9, "cycle eigenvalue")
	}
}

func TestWalkSpectrumHypercube(t *testing.T) {
	// Q_k: eigenvalues 1 - 2i/k with multiplicity C(k, i).
	k := 4
	s, err := WalkSpectrum(graph.Hypercube(k))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, s.Lambda2(), 1-2.0/float64(k), 1e-9, "hypercube lambda2")
	almost(t, s.LambdaMin(), -1, 1e-9, "hypercube bipartite lambda_min")
	if !math.IsInf(s.RelaxationTime(), 1) {
		t.Error("bipartite simple walk should have infinite relaxation time")
	}
}

func TestWalkSpectrumPathStar(t *testing.T) {
	// P_n: eigenvalues cos(πk/(n-1)), k = 0..n-1.
	n := 8
	s, err := WalkSpectrum(graph.Path(n))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, s.Lambda2(), math.Cos(math.Pi/float64(n-1)), 1e-9, "path lambda2")
	// Star: spectrum {1, 0^(n-2), -1}.
	st, err := WalkSpectrum(graph.Star(9))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, st.Lambda2(), 0, 1e-9, "star lambda2")
	almost(t, st.LambdaMin(), -1, 1e-9, "star lambda_min")
}

func TestSpectrumSumIsZero(t *testing.T) {
	// trace(P) = 0 for simple graphs (no self-loops).
	for _, g := range []*graph.CSR{graph.Lollipop(12), graph.CliqueWithHair(9), graph.Cycle(9)} {
		s, err := WalkSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range s.Values {
			sum += v
		}
		almost(t, sum, 0, 1e-8, g.Name()+" trace")
	}
}

func TestSpectrumMatchesPowerIteration(t *testing.T) {
	// The Jacobi λ2 must agree with the power-iteration estimate through
	// the lazy transform λ̃ = (1+λ)/2.
	r := rng.New(5)
	g, err := graph.RandomRegular(48, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := WalkSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	sp := SpectralGap(g, 50000, 1e-13)
	almost(t, (1+s.Lambda2())/2, sp.Lambda2Lazy, 1e-5, "jacobi vs power iteration")
	almost(t, s.LazyGap(), sp.Gap, 1e-5, "lazy gap agreement")
}

func TestEigentimeIdentity(t *testing.T) {
	// The eigentime identity: Σ_v π(v)·H(u,v) = Σ_{k>=2} 1/(1-λ_k),
	// independent of u. Cross-validates the Jacobi spectrum against the
	// Laplacian-pseudo-inverse hitting times.
	for _, g := range []*graph.CSR{graph.Lollipop(10), graph.Complete(8), graph.Cycle(9), graph.Star(8)} {
		s, err := WalkSpectrum(g)
		if err != nil {
			t.Fatal(err)
		}
		var eigentime float64
		for _, lam := range s.Values[1:] {
			eigentime += 1 / (1 - lam)
		}
		h, err := NewHitting(g)
		if err != nil {
			t.Fatal(err)
		}
		pi := Stationary(g)
		for _, u := range []int{0, g.N() - 1} {
			var avg float64
			for v := 0; v < g.N(); v++ {
				avg += pi[v] * h.Hit(u, v)
			}
			almost(t, avg, eigentime, 1e-6, g.Name()+" eigentime identity")
		}
	}
}

func TestLazyGapFormula(t *testing.T) {
	s := &Spectrum{Values: []float64{1, 0.5, -0.2}}
	almost(t, s.LazyGap(), 0.25, 1e-12, "lazy gap arithmetic")
	almost(t, s.RelaxationTime(), 2, 1e-12, "relaxation arithmetic")
}
