package markov

import (
	"math"
	"testing"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.6f, want %.6f (tol %g)", msg, got, want, tol)
	}
}

func TestStationarySumsToOne(t *testing.T) {
	for _, g := range []*graph.CSR{graph.Path(9), graph.Complete(6), graph.Lollipop(12)} {
		pi := Stationary(g)
		var s float64
		for _, p := range pi {
			s += p
		}
		almost(t, s, 1, 1e-12, g.Name()+" stationary sum")
	}
}

func TestStationaryProportionalToDegree(t *testing.T) {
	g := graph.Star(10)
	pi := Stationary(g)
	almost(t, pi[0], 9.0/18.0, 1e-12, "star centre")
	almost(t, pi[3], 1.0/18.0, 1e-12, "star leaf")
}

func TestStepPreservesMass(t *testing.T) {
	g := graph.Lollipop(15)
	cur := make([]float64, g.N())
	next := make([]float64, g.N())
	cur[2] = 1
	for i := 0; i < 50; i++ {
		Step(g, cur, next, i%2 == 0)
		cur, next = next, cur
		var s float64
		for _, p := range cur {
			s += p
		}
		almost(t, s, 1, 1e-9, "mass after step")
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	g := graph.CliqueWithHair(9)
	pi := Stationary(g)
	next := make([]float64, g.N())
	Step(g, pi, next, false)
	almost(t, TVDistance(pi, next), 0, 1e-12, "simple-walk fixed point")
	Step(g, pi, next, true)
	almost(t, TVDistance(pi, next), 0, 1e-12, "lazy-walk fixed point")
}

func TestMixingTimeCompleteIsTiny(t *testing.T) {
	g := graph.Complete(64)
	tm := MixingTime(g, 1000)
	if tm > 10 {
		t.Errorf("K_64 lazy mixing time %d, want O(1)", tm)
	}
}

func TestMixingTimeCycleQuadratic(t *testing.T) {
	t32 := MixingTime(graph.Cycle(32), 1<<20)
	t64 := MixingTime(graph.Cycle(64), 1<<20)
	ratio := float64(t64) / float64(t32)
	// Doubling n should roughly quadruple t_mix = Θ(n²).
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("cycle mixing ratio t(64)/t(32) = %.2f, want ~4", ratio)
	}
}

func TestMixingTimeExactMatchesCandidatesOnCycle(t *testing.T) {
	g := graph.Cycle(17)
	a := MixingTime(g, 1<<16)
	b := MixingTimeExact(g, 1<<16)
	if a != b {
		t.Errorf("vertex-transitive graph: candidate mixing %d != exact %d", a, b)
	}
}

func TestHittingPathQuadratic(t *testing.T) {
	g := graph.Path(20)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	// On the path, H(0, k) = k^2.
	for _, k := range []int{1, 2, 5, 10, 19} {
		almost(t, h.Hit(0, k), float64(k*k), 1e-6, "path H(0,k)")
	}
	// And H(k, 0) = ... by symmetry H(n-1-k', ...); check H(19, 0) = 361.
	almost(t, h.Hit(19, 0), 361, 1e-6, "path H(19,0)")
}

func TestHittingCycleFormula(t *testing.T) {
	n := 16
	g := graph.Cycle(n)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	// On the cycle, H(u, v) = d(n-d) with d the graph distance.
	for d := 1; d <= n/2; d++ {
		almost(t, h.Hit(0, d), float64(d*(n-d)), 1e-6, "cycle H by distance")
	}
}

func TestHittingComplete(t *testing.T) {
	n := 12
	g := graph.Complete(n)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, h.Hit(0, 5), float64(n-1), 1e-6, "K_n hitting time")
	maxH, _, _ := h.Max()
	almost(t, maxH, float64(n-1), 1e-6, "K_n max hitting time")
}

func TestHittingStarEssentialEdge(t *testing.T) {
	n := 10
	g := graph.Star(n)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, h.Hit(1, 0), 1, 1e-6, "leaf to centre")
	almost(t, h.Hit(0, 1), float64(2*n-3), 1e-6, "centre to leaf")
	almost(t, h.Hit(1, 2), float64(2*n-2), 1e-6, "leaf to leaf")
}

func TestCommuteIdentity(t *testing.T) {
	g := graph.Lollipop(14)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 13}, {3, 9}, {6, 7}} {
		u, v := pair[0], pair[1]
		commute := h.Hit(u, v) + h.Hit(v, u)
		almost(t, h.Commute(u, v), commute, 1e-5, "commute identity")
		almost(t, commute, 2*float64(g.M())*h.EffectiveResistance(u, v), 1e-5,
			"commute = 2m R")
	}
}

func TestEffectiveResistanceSeriesOnPath(t *testing.T) {
	g := graph.Path(9)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, h.EffectiveResistance(0, 8), 8, 1e-8, "path resistance = length")
	almost(t, h.EffectiveResistance(2, 5), 3, 1e-8, "path sub-resistance")
}

func TestTreeHitMatchesDense(t *testing.T) {
	g := graph.CompleteBinaryTree(4)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 14}, {14, 0}, {7, 10}, {3, 0}} {
		u, v := pair[0], pair[1]
		almost(t, TreeHit(g, u, v), h.Hit(u, v), 1e-5, "tree hit vs dense")
	}
}

func TestTreeHitRandomTrees(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomTree(24, r)
		h, err := NewHitting(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]int{{0, 23}, {5, 17}, {11, 2}} {
			almost(t, TreeHit(g, pair[0], pair[1]), h.Hit(pair[0], pair[1]), 1e-5,
				"random tree hit")
		}
	}
}

func TestHitSetSingletonMatchesHit(t *testing.T) {
	g := graph.Lollipop(12)
	h, err := NewHitting(g)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := HitSetFrom(g, []int{11}, false)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		almost(t, hs[u], h.Hit(u, 11), 1e-5, "singleton set = vertex hitting")
	}
}

func TestHitSetLazyDoubles(t *testing.T) {
	g := graph.Cycle(11)
	simple, err := HitSetFrom(g, []int{0, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := HitSetFrom(g, []int{0, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	for u := range simple {
		almost(t, lazy[u], 2*simple[u], 1e-6, "lazy set-hitting doubles")
	}
}

func TestHitSetMonotoneInSet(t *testing.T) {
	g := graph.Grid([]int{4, 4}, false)
	small, err := HitSetFrom(g, []int{15}, false)
	if err != nil {
		t.Fatal(err)
	}
	big, err := HitSetFrom(g, []int{15, 12, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	for u := range small {
		if big[u] > small[u]+1e-9 {
			t.Fatalf("enlarging target set increased hitting time at %d", u)
		}
	}
}

func TestHitSetFromDist(t *testing.T) {
	g := graph.Complete(8)
	pi := Stationary(g)
	got, err := HitSetFromDist(g, []int{0}, pi, false)
	if err != nil {
		t.Fatal(err)
	}
	// From stationarity on K_n: with prob 1/n already there, else H = n-1.
	want := (7.0 / 8.0) * 7.0
	almost(t, got, want, 1e-6, "K_8 hit from stationary")
}

func TestSpectralGapComplete(t *testing.T) {
	n := 32
	s := SpectralGap(graph.Complete(n), 5000, 1e-12)
	// Simple K_n: λ2 = -1/(n-1); lazy: (1 - 1/(n-1))/2.
	wantLazy := (1 - 1.0/float64(n-1)) / 2
	almost(t, s.Lambda2Lazy, wantLazy, 1e-6, "K_n lazy lambda2")
}

func TestSpectralGapCycle(t *testing.T) {
	n := 24
	s := SpectralGap(graph.Cycle(n), 200000, 1e-14)
	wantLazy := (1 + math.Cos(2*math.Pi/float64(n))) / 2
	almost(t, s.Lambda2Lazy, wantLazy, 1e-5, "cycle lazy lambda2")
}

func TestSpectralGapHypercube(t *testing.T) {
	k := 6
	s := SpectralGap(graph.Hypercube(k), 50000, 1e-13)
	// Simple hypercube: λ2 = 1 - 2/k; lazy: 1 - 1/k.
	almost(t, s.Lambda2Lazy, 1-1.0/float64(k), 1e-6, "hypercube lazy lambda2")
}

func TestExpanderHasConstantGap(t *testing.T) {
	r := rng.New(77)
	g, err := graph.RandomRegular(256, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	s := SpectralGap(g, 20000, 1e-12)
	if s.Gap < 0.05 {
		t.Errorf("random 4-regular gap %.4f, expected bounded away from 0", s.Gap)
	}
}

func TestConductanceCompleteAndCycle(t *testing.T) {
	// K_4: every cut S with |S|=1: cut=3, vol=3 → 1; |S|=2: cut=4, vol=6 → 2/3.
	almost(t, ConductanceExhaustive(graph.Complete(4)), 2.0/3.0, 1e-12, "K_4 conductance")
	// C_8: best cut is an arc of 4 vertices: cut=2, vol=8 → 1/4.
	almost(t, ConductanceExhaustive(graph.Cycle(8)), 0.25, 1e-12, "C_8 conductance")
}

func TestCheegerRelation(t *testing.T) {
	// Φ²/2 <= gap(simple chain... use lazy gap vs lazy conductance Φ/2.
	for _, g := range []*graph.CSR{graph.Cycle(12), graph.Complete(8), graph.Path(10)} {
		phi := ConductanceExhaustive(g) / 2 // lazy walk halves edge flow
		s := SpectralGap(g, 100000, 1e-13)
		if s.Gap > 2*phi+1e-9 {
			t.Errorf("%s: lazy gap %.4f exceeds 2Φ̃ = %.4f (Cheeger upper)", g.Name(), s.Gap, 2*phi)
		}
		if s.Gap < phi*phi/2-1e-9 {
			t.Errorf("%s: lazy gap %.4f below Φ̃²/2 = %.4f (Cheeger lower)", g.Name(), s.Gap, phi*phi/2)
		}
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	m := NewDense(3)
	vals := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}}
	for i := range vals {
		for j, v := range vals[i] {
			m.Set(i, j, v)
		}
	}
	f, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{3, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual instead of hand-solving.
	for i := range vals {
		var s float64
		for j := range vals[i] {
			s += vals[i][j] * x[j]
		}
		almost(t, s, []float64{3, 5, 5}[i], 1e-10, "LU residual")
	}
}

func TestLUSingularDetected(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Factor(); err == nil {
		t.Fatal("singular matrix factored without error")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	m := NewDense(4)
	r := rng.New(2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, r.Float64())
		}
		m.Add(i, i, 4) // diagonally dominant, well-conditioned
	}
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			almost(t, s, want, 1e-10, "A·A⁻¹ = I")
		}
	}
}

func TestLollipopHittingCubic(t *testing.T) {
	// The lollipop's clique-to-path-end hitting time is Θ(n³); check growth.
	h1, err := NewHitting(graph.Lollipop(16))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHitting(graph.Lollipop(32))
	if err != nil {
		t.Fatal(err)
	}
	a := h1.Hit(0, 15)
	b := h2.Hit(0, 31)
	ratio := b / a
	if ratio < 6 || ratio > 10 {
		t.Errorf("lollipop hitting growth %.2f on doubling, want ~8 (cubic)", ratio)
	}
}
