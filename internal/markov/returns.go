package markov

import (
	"dispersion/internal/graph"
)

// TransitionProbability returns p^t(u, v) for the simple or lazy walk by
// evolving the point distribution at u for t steps. O(t·M) time.
func TransitionProbability(g *graph.CSR, u, v, t int, lazy bool) float64 {
	cur := make([]float64, g.N())
	next := make([]float64, g.N())
	cur[u] = 1
	for s := 0; s < t; s++ {
		Step(g, cur, next, lazy)
		cur, next = next, cur
	}
	return cur[v]
}

// ExpectedReturns returns Σ_{t=0..T} p̃^t(u, u), the expected number of
// visits to u (including time 0) of a length-T lazy walk started at u.
// This is the quantity controlled in the paper's hypercube analysis
// (Theorem 5.7) and the Appendix C set-hitting bounds.
func ExpectedReturns(g *graph.CSR, u, T int, lazy bool) float64 {
	cur := make([]float64, g.N())
	next := make([]float64, g.N())
	cur[u] = 1
	total := 1.0 // t = 0
	for t := 1; t <= T; t++ {
		Step(g, cur, next, lazy)
		cur, next = next, cur
		total += cur[u]
	}
	return total
}

// LemmaC2Bound evaluates the first bound of Lemma C.2 for a regular graph:
//
//	t_hit(v, S) <= 5/(1-e⁻¹) · n(1+⌈log |S|⌉) / ((1-λ2)|S|)
//
// where λ2 is the second eigenvalue of the lazy chain. It is an upper
// bound on the lazy-walk hitting time of any set of the given size from
// any start, used by the Theorem 3.3/3.5 machinery.
func LemmaC2Bound(n, setSize int, lambda2Lazy float64) float64 {
	if setSize < 1 {
		panic("markov: set size must be >= 1")
	}
	// 1 + ceil(log2 |S|); for |S| = 1 the log term is 0.
	logS := 0
	for s := 1; s < setSize; s *= 2 {
		logS++
	}
	const c = 5.0 / (1.0 - 0.36787944117144233) // 5/(1-e⁻¹)
	return c * float64(n) * float64(1+logS) / ((1 - lambda2Lazy) * float64(setSize))
}
