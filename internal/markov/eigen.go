package markov

import (
	"fmt"
	"math"
	"sort"

	"dispersion/internal/graph"
)

// Spectrum holds the full eigenvalue decomposition of the random walk on a
// graph. The walk matrix P = D⁻¹A is similar to the symmetric matrix
// N = D^{-1/2} A D^{-1/2}, so its spectrum is real; eigenvalues are sorted
// in decreasing order (Values[0] = 1 for connected graphs).
type Spectrum struct {
	Values []float64
}

// WalkSpectrum computes the full spectrum of the simple random walk on g
// by Jacobi rotations on the normalised adjacency matrix. O(n³) per sweep
// with a handful of sweeps; intended for n up to ~1000.
func WalkSpectrum(g *graph.CSR) (*Spectrum, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty graph")
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			a[u][v] = 1 / math.Sqrt(du*float64(g.Degree(int(v))))
		}
	}
	vals, err := jacobiEigenvalues(a)
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return &Spectrum{Values: vals}, nil
}

// Lambda2 returns the second-largest eigenvalue of the simple walk.
func (s *Spectrum) Lambda2() float64 {
	if len(s.Values) < 2 {
		return 0
	}
	return s.Values[1]
}

// LambdaMin returns the smallest eigenvalue (-1 exactly iff the graph is
// bipartite).
func (s *Spectrum) LambdaMin() float64 {
	return s.Values[len(s.Values)-1]
}

// LazyGap returns the spectral gap of the lazy chain, 1 - (1+λ2)/2 =
// (1-λ2)/2.
func (s *Spectrum) LazyGap() float64 {
	return (1 - s.Lambda2()) / 2
}

// RelaxationTime returns 1/(1-λ*) for the simple chain, where λ* is the
// largest absolute non-trivial eigenvalue. Infinite for bipartite graphs
// (the simple walk does not mix).
func (s *Spectrum) RelaxationTime() float64 {
	star := math.Max(math.Abs(s.Lambda2()), math.Abs(s.LambdaMin()))
	if star >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - star)
}

// jacobiEigenvalues runs the cyclic Jacobi method on a symmetric matrix,
// destroying it and returning the eigenvalues. Convergence is quadratic;
// the sweep count is capped defensively.
func jacobiEigenvalues(a [][]float64) ([]float64, error) {
	n := len(a)
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius mass.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = a[i][i]
			}
			return vals, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-15 {
					continue
				}
				// Compute the rotation annihilating a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
			}
		}
	}
	return nil, fmt.Errorf("markov: Jacobi did not converge in %d sweeps", maxSweeps)
}
