package markov

import (
	"fmt"
	"math"

	"dispersion/internal/graph"
)

// Hitting holds the all-pairs hitting-time structure of the simple random
// walk on a graph, computed once from the Moore-Penrose pseudo-inverse of
// the graph Laplacian. Construction is O(n^3); queries are O(1).
//
// The identities used (see e.g. Lovász's survey [34] in the paper):
//
//	R(u,v)   = L⁺(u,u) + L⁺(v,v) - 2 L⁺(u,v)           (effective resistance)
//	C(u,v)   = 2|E| · R(u,v)                            (commute time)
//	H(u,v)   = s(u) - s(v) + 2|E|·(L⁺(v,v) - L⁺(u,v))   (hitting time)
//
// where s(u) = Σ_w deg(w)·L⁺(u,w).
type Hitting struct {
	g     *graph.CSR
	pinv  *Dense
	s     []float64
	edges float64
}

// NewHitting computes the hitting-time structure for g. It fails only if
// the dense solve does (which for a connected graph's shifted Laplacian
// does not happen).
func NewHitting(g *graph.CSR) (*Hitting, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty graph")
	}
	// L + J/n is invertible for connected graphs, and
	// (L + J/n)^{-1} = L⁺ + J/n because L⁺ and L share eigenvectors and
	// J/n is the projector onto the kernel.
	m := NewDense(n)
	inv := 1.0 / float64(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			m.Set(u, v, inv)
		}
		m.Add(u, u, float64(g.Degree(u)))
		for _, v := range g.Neighbors(u) {
			m.Add(u, int(v), -1)
		}
	}
	pinv, err := m.Inverse()
	if err != nil {
		return nil, fmt.Errorf("markov: laplacian solve: %w", err)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			pinv.Add(u, v, -inv)
		}
	}
	h := &Hitting{g: g, pinv: pinv, edges: float64(g.M())}
	h.s = make([]float64, n)
	for u := 0; u < n; u++ {
		var acc float64
		for w := 0; w < n; w++ {
			acc += float64(g.Degree(w)) * pinv.At(u, w)
		}
		h.s[u] = acc
	}
	return h, nil
}

// EffectiveResistance returns R(u,v).
func (h *Hitting) EffectiveResistance(u, v int) float64 {
	if u == v {
		return 0
	}
	return h.pinv.At(u, u) + h.pinv.At(v, v) - 2*h.pinv.At(u, v)
}

// Commute returns the commute time C(u,v) = H(u,v) + H(v,u).
func (h *Hitting) Commute(u, v int) float64 {
	return 2 * h.edges * h.EffectiveResistance(u, v)
}

// Hit returns the expected hitting time H(u, v) of v by a simple random
// walk from u.
func (h *Hitting) Hit(u, v int) float64 {
	if u == v {
		return 0
	}
	return h.s[u] - h.s[v] + 2*h.edges*(h.pinv.At(v, v)-h.pinv.At(u, v))
}

// Max returns t_hit(G) = max_{u,v} H(u,v) together with an attaining pair.
func (h *Hitting) Max() (float64, int, int) {
	best, bu, bv := math.Inf(-1), 0, 0
	n := h.g.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if t := h.Hit(u, v); t > best {
				best, bu, bv = t, u, v
			}
		}
	}
	return best, bu, bv
}

// MaxFrom returns max_v H(u, v) for a fixed start u.
func (h *Hitting) MaxFrom(u int) float64 {
	best := 0.0
	for v := 0; v < h.g.N(); v++ {
		if t := h.Hit(u, v); t > best {
			best = t
		}
	}
	return best
}

// HitSetFrom returns the expected time for the simple (or lazy) walk to
// hit the set S, for every start vertex, by solving the absorbing linear
// system (I - Q) h = 1 over the complement of S with dense LU. Entries of
// S get 0. Laziness exactly doubles off-set transition costs, so the lazy
// values are 2x the simple ones; both are offered because the paper's
// Section 3 bounds are stated for the lazy walk.
func HitSetFrom(g *graph.CSR, set []int, lazy bool) ([]float64, error) {
	n := g.N()
	inSet := make([]bool, n)
	for _, v := range set {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("markov: set vertex %d out of range", v)
		}
		inSet[v] = true
	}
	// Index the transient (non-set) states.
	idx := make([]int, n)
	var transient []int
	for v := 0; v < n; v++ {
		if !inSet[v] {
			idx[v] = len(transient)
			transient = append(transient, v)
		}
	}
	if len(transient) == 0 {
		return make([]float64, n), nil
	}
	t := len(transient)
	m := NewDense(t)
	for i, u := range transient {
		m.Set(i, i, 1)
		p := 1.0 / float64(g.Degree(u))
		if lazy {
			p /= 2
			m.Add(i, i, -0.5)
		}
		for _, v := range g.Neighbors(u) {
			if !inSet[int(v)] {
				m.Add(i, idx[v], -p)
			}
		}
	}
	f, err := m.Factor()
	if err != nil {
		return nil, err
	}
	ones := make([]float64, t)
	for i := range ones {
		ones[i] = 1
	}
	sol, err := f.Solve(ones)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, u := range transient {
		out[u] = sol[i]
	}
	return out, nil
}

// HitSetFromDist returns t_hit(mu, S): the expected hitting time of S from
// the initial distribution mu.
func HitSetFromDist(g *graph.CSR, set []int, mu []float64, lazy bool) (float64, error) {
	h, err := HitSetFrom(g, set, lazy)
	if err != nil {
		return 0, err
	}
	var acc float64
	for v, p := range mu {
		acc += p * h[v]
	}
	return acc, nil
}

// TreeHit returns the exact hitting time H(u, v) on a tree in O(n·dist)
// time using the essential-edge lemma ([2, Lemma 5.1] in the paper):
// crossing the edge {a, b} towards v takes 2|A(a,b)| - 1 expected steps,
// where A(a,b) is the component of a after removing the edge. It panics if
// g is not a tree.
func TreeHit(g *graph.CSR, u, v int) float64 {
	if g.M() != g.N()-1 {
		panic("markov: TreeHit requires a tree")
	}
	if u == v {
		return 0
	}
	// Path from u to v via BFS parents from v.
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[v] = int32(v)
	queue := []int32{int32(v)}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Neighbors(int(x)) {
			if parent[y] < 0 {
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	var total float64
	for a := u; a != v; {
		b := int(parent[a])
		// Size of the component containing a after removing {a,b}:
		// count vertices whose path to v passes through a.
		size := subtreeSizeAway(g, a, b)
		total += float64(2*size - 1)
		a = b
	}
	return total
}

// subtreeSizeAway returns the number of vertices in the component of a
// when the tree edge {a, b} is removed.
func subtreeSizeAway(g *graph.CSR, a, b int) int {
	count := 0
	stack := []int32{int32(a)}
	visited := map[int32]bool{int32(a): true, int32(b): true}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, y := range g.Neighbors(int(x)) {
			if !visited[y] {
				visited[y] = true
				stack = append(stack, y)
			}
		}
	}
	return count
}
