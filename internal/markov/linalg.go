package markov

import (
	"errors"
	"fmt"
)

// Dense is a small row-major dense matrix used internally for the linear
// solves behind hitting times. It is deliberately minimal: the analytics
// layer needs LU factorisation with partial pivoting and nothing more.
type Dense struct {
	n    int
	data []float64
}

// NewDense returns an n x n zero matrix.
func NewDense(n int) *Dense {
	return &Dense{n: n, data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Add increments element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.n+j] += v }

// N returns the dimension.
func (m *Dense) N() int { return m.n }

// LU holds an LU factorisation with partial pivoting (PA = LU), produced
// by Factor and consumed by Solve.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorisation of m with partial pivoting. The
// receiver is not modified. It fails if the matrix is numerically
// singular.
func (m *Dense) Factor() (*LU, error) {
	n := m.n
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: choose the largest magnitude in column k.
		p, maxAbs := k, abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := abs(f.lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("markov: singular matrix at pivot %d", k)
		}
		if p != k {
			row0 := f.lu[k*n : k*n+n]
			row1 := f.lu[p*n : p*n+n]
			for j := range row0 {
				row0[j], row1[j] = row1[j], row0[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := f.lu[i*n+k+1 : i*n+n]
			rowK := f.lu[k*n+k+1 : k*n+n]
			for j := range rowI {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for the factored matrix, returning a fresh slice.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, errors.New("markov: rhs dimension mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, l := range row {
			s -= l * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu[i*n+i+1 : i*n+n]
		for j, u := range row {
			s -= u * x[i+1+j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x, nil
}

// Inverse returns the matrix inverse by solving against the identity,
// column by column.
func (m *Dense) Inverse() (*Dense, error) {
	f, err := m.Factor()
	if err != nil {
		return nil, err
	}
	n := m.n
	inv := NewDense(n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
