package markov_test

import (
	"fmt"

	"dispersion/internal/graph"
	"dispersion/internal/markov"
)

// Exact hitting times come from the Laplacian pseudo-inverse: on the path,
// H(0, k) = k².
func ExampleHitting_Hit() {
	g := graph.Path(10)
	h, err := markov.NewHitting(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("H(0,5) = %.0f\n", h.Hit(0, 5))
	fmt.Printf("H(0,9) = %.0f\n", h.Hit(0, 9))
	// Output:
	// H(0,5) = 25
	// H(0,9) = 81
}

// The commute-time identity C(u,v) = 2|E|·R(u,v).
func ExampleHitting_Commute() {
	g := graph.Cycle(8)
	h, err := markov.NewHitting(g)
	if err != nil {
		panic(err)
	}
	// Antipodal points on C_8: resistance 4·4/8 = 2, commute 2·8·2 = 32.
	fmt.Printf("R(0,4) = %.0f, C(0,4) = %.0f\n",
		h.EffectiveResistance(0, 4), h.Commute(0, 4))
	// Output:
	// R(0,4) = 2, C(0,4) = 32
}

// TreeHit computes exact tree hitting times in linear time from the
// essential-edge lemma: on the star, centre to leaf costs 2n-3.
func ExampleTreeHit() {
	g := graph.Star(10)
	fmt.Printf("H(centre, leaf) = %.0f\n", markov.TreeHit(g, 0, 3))
	fmt.Printf("H(leaf, centre) = %.0f\n", markov.TreeHit(g, 3, 0))
	// Output:
	// H(centre, leaf) = 17
	// H(leaf, centre) = 1
}
