// Package markov provides the Markov-chain analytics layer for random walks
// on finite graphs: stationary distributions, distribution evolution,
// total-variation mixing times, spectral gaps, and exact hitting/commute
// times via the Laplacian pseudo-inverse. These are the quantities the
// paper's bounds (Theorems 2-4) are phrased in.
package markov

import (
	"math"

	"dispersion/internal/graph"
)

// Stationary returns the stationary distribution of the simple (and lazy)
// random walk on g: π(v) = deg(v) / (2|E|).
func Stationary(g *graph.CSR) []float64 {
	pi := make([]float64, g.N())
	norm := float64(g.DegreeSum())
	for v := range pi {
		pi[v] = float64(g.Degree(v)) / norm
	}
	return pi
}

// Step advances a probability distribution one step of the walk: dst[v] =
// sum over u ~ v of src[u]/deg(u), mixed with src for the lazy walk
// P̃ = (I+P)/2. src and dst must have length g.N() and must not alias.
func Step(g *graph.CSR, src, dst []float64, lazy bool) {
	for i := range dst {
		dst[i] = 0
	}
	for u := 0; u < g.N(); u++ {
		if src[u] == 0 {
			continue
		}
		share := src[u] / float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			dst[v] += share
		}
	}
	if lazy {
		for v := range dst {
			dst[v] = 0.5*dst[v] + 0.5*src[v]
		}
	}
}

// TVDistance returns the total-variation distance between two
// distributions: half the L1 distance.
func TVDistance(p, q []float64) float64 {
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// MixingTimeFrom returns the smallest t with TV(P̃^t(v,·), π) <= eps for
// the lazy walk started at v, or maxSteps+1 if not reached within
// maxSteps. The lazy walk is used because the simple walk does not mix on
// bipartite graphs (the paper's Section 3.1.1 makes the same switch).
func MixingTimeFrom(g *graph.CSR, v int, eps float64, maxSteps int) int {
	pi := Stationary(g)
	cur := make([]float64, g.N())
	next := make([]float64, g.N())
	cur[v] = 1
	for t := 0; t <= maxSteps; t++ {
		if TVDistance(cur, pi) <= eps {
			return t
		}
		Step(g, cur, next, true)
		cur, next = next, cur
	}
	return maxSteps + 1
}

// MixingTime returns max over a set of candidate start vertices of
// MixingTimeFrom with the standard eps = 1/4. For vertex-transitive graphs
// any start is exact; otherwise the candidates (an extremal-eccentricity
// vertex, a max-degree vertex, a min-degree vertex and vertex 0) capture
// the worst start for every family in this repository. Computing the true
// max over all n starts is O(n·M·t_mix) and available as MixingTimeExact.
func MixingTime(g *graph.CSR, maxSteps int) int {
	cands := candidateStarts(g)
	worst := 0
	for _, v := range cands {
		if t := MixingTimeFrom(g, v, 0.25, maxSteps); t > worst {
			worst = t
		}
	}
	return worst
}

// MixingTimeExact returns the exact worst-case lazy mixing time
// max_v t_mix(v) at eps = 1/4. O(n · M · t_mix) time; intended for small n.
func MixingTimeExact(g *graph.CSR, maxSteps int) int {
	worst := 0
	for v := 0; v < g.N(); v++ {
		if t := MixingTimeFrom(g, v, 0.25, maxSteps); t > worst {
			worst = t
		}
	}
	return worst
}

func candidateStarts(g *graph.CSR) []int {
	maxDeg, minDeg := 0, 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(maxDeg) {
			maxDeg = v
		}
		if g.Degree(v) < g.Degree(minDeg) {
			minDeg = v
		}
	}
	// A vertex of maximum distance from vertex 0 is an eccentric start.
	far := 0
	d := g.BFS(0)
	for v, dv := range d {
		if dv > d[far] {
			far = v
		}
	}
	return dedupe([]int{0, far, maxDeg, minDeg})
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
