package markov

import (
	"math"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// Spectral summarises the spectral quantities of the lazy walk
// P̃ = (I+P)/2 on a graph: its second-largest eigenvalue, the spectral gap
// and the relaxation time. The lazy chain has spectrum in [0, 1], so the
// second-largest eigenvalue is also the second-largest in absolute value.
type Spectral struct {
	Lambda2Lazy   float64 // second eigenvalue of the lazy chain
	Lambda2Simple float64 // corresponding eigenvalue 2λ̃-1 of the simple chain
	Gap           float64 // 1 - Lambda2Lazy
	Relaxation    float64 // 1 / Gap
}

// SpectralGap estimates the lazy chain's second eigenvalue by power
// iteration on the orthogonal complement (in ℓ²(π)) of the constant
// function. For reversible chains the iteration converges geometrically at
// rate λ3/λ2; maxIter bounds the work on slowly mixing graphs, and tol is
// the Rayleigh-quotient convergence threshold.
func SpectralGap(g *graph.CSR, maxIter int, tol float64) Spectral {
	n := g.N()
	pi := Stationary(g)
	r := rng.New(0x5eed)
	f := make([]float64, n)
	for i := range f {
		f[i] = r.Float64() - 0.5
	}
	pf := make([]float64, n)
	lambda, prev := 0.0, math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		projectOutConstant(f, pi)
		normalize(f, pi)
		applyLazy(g, f, pf)
		lambda = dotPi(f, pf, pi)
		if math.Abs(lambda-prev) < tol {
			break
		}
		prev = lambda
		f, pf = pf, f
	}
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	gap := 1 - lambda
	relax := math.Inf(1)
	if gap > 0 {
		relax = 1 / gap
	}
	return Spectral{
		Lambda2Lazy:   lambda,
		Lambda2Simple: 2*lambda - 1,
		Gap:           gap,
		Relaxation:    relax,
	}
}

// applyLazy computes pf = P̃ f, acting on functions: (Pf)(u) is the mean of
// f over the neighbours of u.
func applyLazy(g *graph.CSR, f, pf []float64) {
	for u := 0; u < g.N(); u++ {
		var s float64
		for _, v := range g.Neighbors(u) {
			s += f[v]
		}
		pf[u] = 0.5*f[u] + 0.5*s/float64(g.Degree(u))
	}
}

func projectOutConstant(f, pi []float64) {
	var mean float64
	for v := range f {
		mean += pi[v] * f[v]
	}
	for v := range f {
		f[v] -= mean
	}
}

func normalize(f, pi []float64) {
	var norm float64
	for v := range f {
		norm += pi[v] * f[v] * f[v]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for v := range f {
		f[v] /= norm
	}
}

func dotPi(f, gvec, pi []float64) float64 {
	var s float64
	for v := range f {
		s += pi[v] * f[v] * gvec[v]
	}
	return s
}

// ConductanceExhaustive computes the exact conductance of the simple walk,
// Φ = min over ∅ ≠ S, π(S) <= 1/2 of |E(S, S̄)| / vol(S), by enumerating
// all 2^(n-1) cuts. It panics for n > 24. Used to validate Cheeger-style
// bounds in tests and the Prop 3.9 lower bound on small graphs.
func ConductanceExhaustive(g *graph.CSR) float64 {
	n := g.N()
	if n > 24 {
		panic("markov: ConductanceExhaustive limited to n <= 24")
	}
	vol2 := g.DegreeSum()
	best := math.Inf(1)
	// Fix vertex 0 out of S to halve the enumeration (Φ(S) vs Φ(S̄) are
	// both considered via the π(S) <= 1/2 filter on each complement pair).
	for mask := 1; mask < 1<<(n-1); mask++ {
		volS, volC, cut := 0, 0, 0
		for v := 0; v < n; v++ {
			inS := v > 0 && mask&(1<<(v-1)) != 0
			if inS {
				volS += g.Degree(v)
			} else {
				volC += g.Degree(v)
			}
			for _, u := range g.Neighbors(v) {
				inU := u > 0 && mask&(1<<(u-1)) != 0
				if inS != inU {
					cut++
				}
			}
		}
		cut /= 2 // each cut edge counted from both sides
		for _, vol := range []int{volS, volC} {
			if vol == 0 || 2*vol > vol2 {
				continue
			}
			if phi := float64(cut) / float64(vol); phi < best {
				best = phi
			}
		}
	}
	return best
}
