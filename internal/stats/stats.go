// Package stats provides the statistical toolkit used to turn Monte-Carlo
// trial outputs into the quantities the paper reports: summary statistics
// with confidence intervals, empirical CDFs with stochastic-dominance
// checks, the two-sample Kolmogorov-Smirnov test (for the equality in
// distribution of total steps, Theorem 4.1), and least-squares scaling
// fits for the Θ(·) rows of Table 1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the usual batch of summary statistics over a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	StdDev   float64
	StdErr   float64 // StdDev / sqrt(N)
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.Variance = sq / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
		s.StdErr = s.StdDev / math.Sqrt(float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s
}

// CI95 returns the normal-approximation 95% confidence interval for the
// mean.
func (s Summary) CI95() (lo, hi float64) {
	const z = 1.959963984540054
	return s.Mean - z*s.StdErr, s.Mean + z*s.StdErr
}

// String renders "mean ± halfwidth (n=N)".
func (s Summary) String() string {
	lo, hi := s.CI95()
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, (hi-lo)/2, s.N)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an already sorted
// sample using linear interpolation at position q·(n-1). The input MUST
// be in ascending order — Quantile is the offline oracle that the
// mergeable sketches in package agg are tested against, so a silently
// wrong answer on unsorted data would corrupt every accuracy bound
// downstream. It panics on an empty or unsorted sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: empty sample")
	}
	if !sort.Float64sAreSorted(sorted) {
		panic("stats: Quantile input is not sorted")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample.
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns F(x) = fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// DominatedBy reports whether the distribution of e is stochastically
// dominated by that of other up to slack: F_e(x) >= F_other(x) - slack at
// every sample point. Stochastic domination X ⪯ Y corresponds to
// F_X >= F_Y pointwise; slack absorbs Monte-Carlo noise.
func (e *ECDF) DominatedBy(other *ECDF, slack float64) bool {
	for _, x := range e.sorted {
		if e.At(x) < other.At(x)-slack {
			return false
		}
	}
	for _, x := range other.sorted {
		if e.At(x) < other.At(x)-slack {
			return false
		}
	}
	return true
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic
// D = sup_x |F_a(x) - F_b(x)|.
func KSStatistic(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		if sa[i] <= sb[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value of the two-sample KS test with
// statistic d and sample sizes n and m, using the Kolmogorov distribution
// tail series.
func KSPValue(d float64, n, m int) float64 {
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Q_KS(λ) = 2 Σ_{k>=1} (-1)^{k-1} e^{-2 k² λ²}.
	var p float64
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*lambda*lambda)
		p += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// SameDistribution reports whether the KS test fails to reject equality of
// the two samples' distributions at the given significance level alpha.
func SameDistribution(a, b []float64, alpha float64) bool {
	return KSPValue(KSStatistic(a, b), len(a), len(b)) > alpha
}

// LinearFit holds an ordinary least squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits a least-squares line through the points.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: FitLine needs >= 2 paired points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitPowerLaw fits y = C·x^alpha by least squares on log-log data,
// returning the exponent alpha, the constant C and the log-space R².
// All inputs must be positive.
func FitPowerLaw(xs, ys []float64) (alpha, c, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: FitPowerLaw needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f := FitLine(lx, ly)
	return f.Slope, math.Exp(f.Intercept), f.R2
}

// Histogram bins a sample into k equal-width bins over [min, max] and
// returns bin left edges and counts.
type Histogram struct {
	Edges  []float64
	Counts []int
}

// NewHistogram builds a k-bin histogram of xs.
func NewHistogram(xs []float64, k int) Histogram {
	if len(xs) == 0 || k < 1 {
		panic("stats: bad histogram input")
	}
	s := Summarize(xs)
	width := (s.Max - s.Min) / float64(k)
	if width == 0 {
		width = 1
	}
	h := Histogram{Edges: make([]float64, k), Counts: make([]int, k)}
	for i := range h.Edges {
		h.Edges[i] = s.Min + float64(i)*width
	}
	for _, x := range xs {
		bin := int((x - s.Min) / width)
		if bin >= k {
			bin = k - 1
		}
		if bin < 0 {
			bin = 0
		}
		h.Counts[bin]++
	}
	return h
}

// Fraction returns the proportion of the sample satisfying pred.
func Fraction(xs []float64, pred func(float64) bool) float64 {
	c := 0
	for _, x := range xs {
		if pred(x) {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}
