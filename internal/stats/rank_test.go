package stats

import (
	"math"
	"testing"

	"dispersion/internal/rng"
)

func TestMannWhitneyDetectsShift(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 0.5
	}
	if !StochasticallySmaller(a, b, 0.01) {
		t.Error("failed to detect a < b shift")
	}
	if StochasticallySmaller(b, a, 0.01) {
		t.Error("detected shift in the wrong direction")
	}
}

func TestMannWhitneyNullCalibrated(t *testing.T) {
	// Under the null (equal distributions), p < 0.05 should happen ~5% of
	// the time.
	root := rng.New(2)
	hits := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		r := root.Split(uint64(rep))
		a := make([]float64, 80)
		b := make([]float64, 80)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		if _, p := MannWhitneyU(a, b); p < 0.05 {
			hits++
		}
	}
	frac := float64(hits) / reps
	if frac > 0.10 {
		t.Errorf("null rejection rate %.3f, want ~0.05", frac)
	}
}

func TestMannWhitneyHandlesTies(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	u, p := MannWhitneyU(a, b)
	if math.IsNaN(u) || math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("tie handling produced u=%g p=%g", u, p)
	}
}

func TestMannWhitneyExtremeSeparation(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	u, p := MannWhitneyU(a, b)
	if u != 0 {
		t.Errorf("fully separated samples: U = %g, want 0", u)
	}
	if p > 0.05 {
		t.Errorf("fully separated samples: p = %g", p)
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	root := rng.New(3)
	covered := 0
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		r := root.Split(uint64(rep))
		xs := make([]float64, 120)
		for i := range xs {
			xs[i] = r.ExpFloat64() * 3 // true mean 3
		}
		lo, hi := BootstrapCI(xs, func(s []float64) float64 {
			return Summarize(s).Mean
		}, 0.95, 300, uint64(rep))
		if lo <= 3 && 3 <= hi {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.88 {
		t.Errorf("bootstrap CI covered %.3f, want ~0.95", frac)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	med := func(s []float64) float64 { return Summarize(s).Median }
	lo1, hi1 := BootstrapCI(xs, med, 0.9, 200, 7)
	lo2, hi2 := BootstrapCI(xs, med, 0.9, 200, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic in seed")
	}
}

func TestBootstrapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	BootstrapCI(nil, func([]float64) float64 { return 0 }, 0.9, 100, 1)
}
