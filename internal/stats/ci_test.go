package stats

import (
	"math"
	"strings"
	"testing"

	"dispersion/internal/rng"
)

// --- TQuantile / TCDF / RegIncBeta against published table values ---

func TestTQuantileTableValues(t *testing.T) {
	// Standard two-sided critical values t_{p, df} (e.g. Abramowitz &
	// Stegun table 26.10).
	cases := []struct {
		df, p, want float64
	}{
		{1, 0.975, 12.70620474},
		{2, 0.975, 4.30265273},
		{4, 0.95, 2.13184679},
		{9, 0.975, 2.26215716},
		{10, 0.995, 3.16927267},
		{30, 0.975, 2.04227246},
		{100, 0.975, 1.98397152},
		{5, 0.5, 0},
	}
	for _, c := range cases {
		got := TQuantile(c.df, c.p)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("TQuantile(%g, %g) = %.8f, want %.8f", c.df, c.p, got, c.want)
		}
		// Symmetry: the lower-tail quantile is the negation.
		if c.p != 0.5 {
			if lo := TQuantile(c.df, 1-c.p); math.Abs(lo+c.want) > 1e-6 {
				t.Errorf("TQuantile(%g, %g) = %.8f, want %.8f", c.df, 1-c.p, lo, -c.want)
			}
		}
	}
}

func TestTCDFRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 3, 7, 25.5} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.9, 0.999} {
			q := TQuantile(df, p)
			if back := TCDF(q, df); math.Abs(back-p) > 1e-9 {
				t.Errorf("TCDF(TQuantile(%g, %g)) = %g", df, p, back)
			}
		}
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},          // I_x(1,1) = x
		{2, 1, 0.5, 0.25},         // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},         // I_x(1,2) = 1-(1-x)²
		{0.5, 0.5, 0.5, 0.5},      // arcsine distribution median
		{5, 3, 0.0, 0},            // boundary
		{5, 3, 1.0, 1},            // boundary
		{2, 2, 0.5, 0.5},          // symmetry
		{3, 2, 0.4, 0.1792},       // 4x³-3x⁴ at 0.4: 0.256-0.0768
		{0.5, 0.5, 0.25, 1.0 / 3}, // I_{sin²(π/6)}(½,½) = 2·(π/6)/π
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RegIncBeta(%g, %g, %g) = %.10f, want %.10f", c.a, c.b, c.x, got, c.want)
		}
	}
}

// --- MeanCI ---

func TestMeanCITableValues(t *testing.T) {
	cases := []struct {
		name   string
		xs     []float64
		level  float64
		lo, hi float64
	}{
		// mean 3, sd √2.5, stderr √0.5, t_{.975,4} = 2.7764451 →
		// halfwidth 1.9632432.
		{"one-to-five", []float64{1, 2, 3, 4, 5}, 0.95, 3 - 1.9632432, 3 + 1.9632432},
		// mean 10, sample variance 16/3, stderr 1.1547005,
		// t_{.975,3} = 3.1824463 → halfwidth 3.6747725.
		{"spread-four", []float64{8, 8, 12, 12}, 0.95, 10 - 3.6747725, 10 + 3.6747725},
		// n = 2: mean 1.5, sd √0.5, stderr 0.5, t_{.95,1} = 6.3137515.
		{"pair-90", []float64{1, 2}, 0.90, 1.5 - 3.1568758, 1.5 + 3.1568758},
	}
	for _, c := range cases {
		iv, err := MeanCI(c.xs, c.level)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(iv.Lo-c.lo) > 1e-6 || math.Abs(iv.Hi-c.hi) > 1e-6 {
			t.Errorf("%s: CI = [%.7f, %.7f], want [%.7f, %.7f]", c.name, iv.Lo, iv.Hi, c.lo, c.hi)
		}
		if iv.Level != c.level {
			t.Errorf("%s: level %g, want %g", c.name, iv.Level, c.level)
		}
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	// n = 1: no spread information, degenerate interval at level 0.
	iv, err := MeanCI([]float64{42}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 42 || iv.Hi != 42 || iv.Level != 0 {
		t.Errorf("n=1: got %v", iv)
	}
	// All-equal sample: zero stderr, degenerate interval at the
	// requested level.
	iv, err = MeanCI([]float64{7, 7, 7, 7, 7, 7}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 7 || iv.Hi != 7 || iv.Level != 0.99 {
		t.Errorf("all-equal: got %v", iv)
	}
}

func TestMeanCIRejectsBadInput(t *testing.T) {
	if _, err := MeanCI(nil, 0.95); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := MeanCI([]float64{1, math.NaN(), 3}, 0.95); err == nil {
		t.Error("NaN accepted")
	} else if !strings.Contains(err.Error(), "not finite") {
		t.Errorf("NaN error %q does not name the cause", err)
	}
	if _, err := MeanCI([]float64{1, math.Inf(1)}, 0.95); err == nil {
		t.Error("+Inf accepted")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Error("level 1.5 accepted")
	}
	if _, err := MeanCI([]float64{1, 2}, 0); err == nil {
		t.Error("level 0 accepted")
	}
}

// --- MedianCI ---

func TestMedianCIOrderStatistics(t *testing.T) {
	// n = 10, level 0.95: l = 2 (2·P(Bin(10,½) <= 1) = 22/1024 ≈ 0.0215),
	// interval [x_(2), x_(9)], achieved coverage 1 - 22/1024 =
	// 0.978515625.
	xs := []float64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5}
	iv, err := MedianCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 2 || iv.Hi != 9 {
		t.Errorf("n=10: interval [%g, %g], want [2, 9]", iv.Lo, iv.Hi)
	}
	if math.Abs(iv.Level-0.978515625) > 1e-12 {
		t.Errorf("n=10: achieved level %.9f, want 0.978515625", iv.Level)
	}
	// n = 6, level 0.95: only l = 1 qualifies (2·P(<=1) = 14/64 ≈ 0.22),
	// so the interval is the full range with achieved level 1 - 2/64 =
	// 0.96875.
	iv, err = MedianCI([]float64{4, 1, 6, 2, 5, 3}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 1 || iv.Hi != 6 {
		t.Errorf("n=6: interval [%g, %g], want [1, 6]", iv.Lo, iv.Hi)
	}
	if math.Abs(iv.Level-0.96875) > 1e-12 {
		t.Errorf("n=6: achieved level %.6f, want 0.96875", iv.Level)
	}
}

func TestMedianCIDegenerate(t *testing.T) {
	// n = 1: the only possible interval, with zero achieved coverage.
	iv, err := MedianCI([]float64{5}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 5 || iv.Hi != 5 || iv.Level != 0 {
		t.Errorf("n=1: got %v", iv)
	}
	// All-equal: degenerate interval whatever the order statistics say.
	iv, err = MedianCI([]float64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 3 || iv.Hi != 3 {
		t.Errorf("all-equal: got %v", iv)
	}
}

func TestMedianCIRejectsBadInput(t *testing.T) {
	if _, err := MedianCI(nil, 0.95); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := MedianCI([]float64{math.NaN()}, 0.95); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := MedianCI([]float64{1, 2, 3}, -0.5); err == nil {
		t.Error("negative level accepted")
	}
}

func TestMedianCICoversTrueMedian(t *testing.T) {
	// Coverage check mirroring TestBootstrapCICoversMean: the
	// distribution-free interval should cover the true median (0 for the
	// standard normal) at about its stated level.
	root := rng.New(11)
	covered, reps := 0, 300
	for rep := 0; rep < reps; rep++ {
		r := root.Split(uint64(rep))
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		iv, err := MedianCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(0) {
			covered++
		}
	}
	if frac := float64(covered) / float64(reps); frac < 0.88 {
		t.Errorf("median CI covered %.3f, want ~0.95+", frac)
	}
}

// --- two-sided Mann-Whitney ---

func TestMannWhitneyTwoSided(t *testing.T) {
	// Fully separated samples: strong two-sided evidence either way
	// round.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	if _, p := MannWhitneyTwoSided(a, b); p > 0.001 {
		t.Errorf("separated samples: two-sided p = %g", p)
	}
	if _, p := MannWhitneyTwoSided(b, a); p > 0.001 {
		t.Errorf("separated samples (swapped): two-sided p = %g", p)
	}
	// Identical all-tied samples: U equals its null mean and the test
	// must be inconclusive, not significant.
	c := []float64{5, 5, 5, 5}
	u, p := MannWhitneyTwoSided(c, c)
	want := 4.0 * 4 / 2
	if u != want {
		t.Errorf("all-tied U = %g, want %g", u, want)
	}
	if p != 1 {
		t.Errorf("all-tied two-sided p = %g, want 1", p)
	}
	uo, po := MannWhitneyU(c, c)
	if uo != want || po != 0.5 {
		t.Errorf("all-tied one-sided (u, p) = (%g, %g), want (%g, 0.5)", uo, po, want)
	}
}
