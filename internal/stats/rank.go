package stats

import (
	"math"
	"sort"

	"dispersion/internal/rng"
)

// MannWhitneyU computes the two-sample Mann-Whitney U statistic for the
// hypothesis that a tends to be smaller than b, together with the normal
// approximation one-sided p-value of the alternative "a stochastically
// smaller than b". Ties receive midranks. Suitable for the domination
// claims (Theorems 4.1, 4.7), where a one-sided location test complements
// the ECDF check.
func MannWhitneyU(a, b []float64) (u float64, pSmaller float64) {
	type obs struct {
		v    float64
		from int8
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, x := range a {
		all = append(all, obs{x, 0})
	}
	for _, x := range b {
		all = append(all, obs{x, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie correction bookkeeping.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		tc := float64(j - i)
		tieTerm += tc*tc*tc - tc
		i = j
	}
	var rA float64
	for i, o := range all {
		if o.from == 0 {
			rA += ranks[i]
		}
	}
	nA, nB := float64(len(a)), float64(len(b))
	u = rA - nA*(nA+1)/2
	// Normal approximation with tie-corrected variance.
	mean := nA * nB / 2
	nTot := nA + nB
	variance := nA * nB / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if variance <= 0 {
		// Every observation ties with every other: the data carry no
		// ordering evidence at all, so the test is maximally inconclusive
		// (U must equal its null mean). Guard the comparisons anyway for
		// float safety.
		switch {
		case u < mean:
			return u, 0
		case u > mean:
			return u, 1
		}
		return u, 0.5
	}
	z := (u - mean) / math.Sqrt(variance)
	// One-sided: small U means a's values rank low, so the p-value for
	// the alternative "a smaller" is the lower tail P(U <= u) = Φ(z).
	pSmaller = 0.5 * math.Erfc(-z/math.Sqrt2)
	return u, pSmaller
}

// MannWhitneyTwoSided returns the U statistic and the two-sided p-value
// of the Mann-Whitney test for any location difference between a and b
// (normal approximation with midranks and tie-corrected variance, like
// MannWhitneyU). Identical all-tied samples report p = 1: no evidence of
// a shift in either direction.
func MannWhitneyTwoSided(a, b []float64) (u float64, p float64) {
	u, pSmaller := MannWhitneyU(a, b)
	p = 2 * math.Min(pSmaller, 1-pSmaller)
	if p > 1 {
		p = 1
	}
	return u, p
}

// StochasticallySmaller reports whether sample a is significantly
// stochastically smaller than sample b at level alpha, by the one-sided
// Mann-Whitney test.
func StochasticallySmaller(a, b []float64, alpha float64) bool {
	_, p := MannWhitneyU(a, b)
	return p < alpha
}

// BootstrapCI returns a percentile bootstrap (lo, hi) confidence interval
// at the given level for an arbitrary statistic of the sample,
// deterministic in the seed.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64,
	resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || resamples < 2 || level <= 0 || level >= 1 {
		panic("stats: bad bootstrap input")
	}
	r := rng.New(seed)
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for i := range vals {
		for j := range buf {
			buf[j] = xs[r.Intn(len(xs))]
		}
		vals[i] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha)
}
