package stats

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a two-sided confidence interval for a location parameter.
// Level records the confidence actually achieved, which for the
// distribution-free median interval can differ from the level requested
// (order statistics only admit a discrete set of coverages).
type Interval struct {
	Lo, Hi float64
	Level  float64
}

// Contains reports whether x lies in the closed interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// String renders "[lo, hi] @ level".
func (iv Interval) String() string {
	return fmt.Sprintf("[%.6g, %.6g] @ %.4g", iv.Lo, iv.Hi, iv.Level)
}

// checkSample rejects samples the interval estimators cannot interpret:
// empty input, NaN and ±Inf values. Unlike the panicking oracles above,
// the estimators return errors — they sit on the benchmark-gating path
// where the sample is external data (a results file), not programmer
// input.
func checkSample(xs []float64, level float64) error {
	if len(xs) == 0 {
		return fmt.Errorf("stats: empty sample")
	}
	if !(level > 0 && level < 1) {
		return fmt.Errorf("stats: confidence level %g outside (0, 1)", level)
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("stats: sample[%d] = %g is not finite", i, x)
		}
	}
	return nil
}

// MeanCI returns the two-sided Student-t confidence interval for the
// population mean at the given level. A single observation has no spread
// information: the interval degenerates to [x, x] with Level 0. An
// all-equal sample yields the degenerate interval at the requested level
// (the t interval with zero standard error). Non-finite values are
// rejected with an error.
func MeanCI(xs []float64, level float64) (Interval, error) {
	if err := checkSample(xs, level); err != nil {
		return Interval{}, err
	}
	s := Summarize(xs)
	if s.N == 1 {
		return Interval{Lo: s.Mean, Hi: s.Mean, Level: 0}, nil
	}
	t := TQuantile(float64(s.N-1), 0.5+level/2)
	h := t * s.StdErr
	return Interval{Lo: s.Mean - h, Hi: s.Mean + h, Level: level}, nil
}

// MedianCI returns the distribution-free confidence interval for the
// population median built from order statistics: [x_(l), x_(n+1-l)] with
// l the largest index whose binomial tail keeps coverage at or above the
// requested level. The achieved coverage 1 - 2·P(Bin(n,1/2) <= l-1) is
// reported in Level; for small n even the full range [min, max] may fall
// short of the request, in which case that widest interval is returned
// with its (lower) achieved level. Non-finite values are rejected with an
// error.
func MedianCI(xs []float64, level float64) (Interval, error) {
	if err := checkSample(xs, level); err != nil {
		return Interval{}, err
	}
	n := len(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// Largest l >= 1 with 2·BinomCDF(l-1; n, 1/2) <= 1-level; l = 1
	// (the widest interval) when none qualifies.
	l := 1
	for cand := 2; cand <= (n+1)/2; cand++ {
		if 2*binomCDFHalf(cand-1, n) <= 1-level {
			l = cand
		} else {
			break
		}
	}
	achieved := 1 - 2*binomCDFHalf(l-1, n)
	if achieved < 0 {
		achieved = 0
	}
	return Interval{Lo: sorted[l-1], Hi: sorted[n-l], Level: achieved}, nil
}

// binomCDFHalf returns P(Bin(n, 1/2) <= k), with the empty sum (k < 0)
// equal to 0. Computed through log-space binomial coefficients so large
// n cannot overflow.
func binomCDFHalf(k, n int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var p float64
	logHalfN := -float64(n) * math.Ln2
	for i := 0; i <= k; i++ {
		lc, _ := math.Lgamma(float64(n + 1))
		li, _ := math.Lgamma(float64(i + 1))
		lni, _ := math.Lgamma(float64(n - i + 1))
		p += math.Exp(lc - li - lni + logHalfN)
	}
	if p > 1 {
		p = 1
	}
	return p
}

// TQuantile returns the p-th quantile of Student's t distribution with df
// degrees of freedom (the value t with P(T <= t) = p), by bisection on
// the CDF. It panics on df <= 0 or p outside (0, 1) — these are
// programmer errors, not data.
func TQuantile(df, p float64) float64 {
	if df <= 0 || !(p > 0 && p < 1) {
		panic("stats: TQuantile wants df > 0 and p in (0, 1)")
	}
	if p == 0.5 {
		return 0
	}
	// Symmetry: solve in the upper tail.
	if p < 0.5 {
		return -TQuantile(df, 1-p)
	}
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e18 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-14*(1+hi); i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns P(T <= t) for Student's t distribution with df degrees of
// freedom, through the regularized incomplete beta function.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: TCDF wants df > 0")
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	tail := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) = B(x; a, b)/B(a, b) for a, b > 0 and x in [0, 1], by the
// standard continued-fraction expansion (converges quickly on the side
// x < (a+1)/(a+b+2); the other side uses the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a)).
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 {
		panic("stats: RegIncBeta wants a, b > 0 and x in [0, 1]")
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	lab, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lab - la - lb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		// Even step.
		aa := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
