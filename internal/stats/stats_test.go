package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dispersion/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("variance %.4f, want 2.5", s.Variance)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.StdErr != 0 {
		t.Fatalf("bad singleton summary: %+v", s)
	}
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI should contain the true mean ~95% of the time.
	root := rng.New(1)
	covered := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		r := root.Split(uint64(rep))
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = r.NormFloat64() + 10
		}
		lo, hi := Summarize(xs).CI95()
		if lo <= 10 && 10 <= hi {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("CI95 covered %.3f of the time, want ~0.95", frac)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Quantile(sorted, 0) != 0 || Quantile(sorted, 1) != 10 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(sorted, 0.5) != 5 {
		t.Fatalf("median = %g", Quantile(sorted, 0.5))
	}
	if math.Abs(Quantile(sorted, 0.25)-2.5) > 1e-12 {
		t.Fatalf("q25 = %g", Quantile(sorted, 0.25))
	}
}

func TestQuantileRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile accepted an unsorted sample")
		}
	}()
	Quantile([]float64{3, 1, 2}, 0.5)
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestDominatedBy(t *testing.T) {
	r := rng.New(3)
	small := make([]float64, 2000)
	big := make([]float64, 2000)
	for i := range small {
		small[i] = r.ExpFloat64()
		big[i] = r.ExpFloat64() * 2
	}
	se, be := NewECDF(small), NewECDF(big)
	if !se.DominatedBy(be, 0.05) {
		t.Error("Exp(1) should be dominated by 2·Exp(1)")
	}
	if be.DominatedBy(se, 0.05) {
		t.Error("2·Exp(1) should not be dominated by Exp(1)")
	}
}

func TestKSEqualSamplesAccepted(t *testing.T) {
	r := rng.New(4)
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	if !SameDistribution(a, b, 0.01) {
		t.Errorf("KS rejected identical normals: D=%.4f p=%.4g",
			KSStatistic(a, b), KSPValue(KSStatistic(a, b), len(a), len(b)))
	}
}

func TestKSDifferentSamplesRejected(t *testing.T) {
	r := rng.New(5)
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 0.5
	}
	if SameDistribution(a, b, 0.01) {
		t.Error("KS failed to reject shifted normals")
	}
}

func TestKSStatisticBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]float64, 50)
		b := make([]float64, 70)
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64()
		}
		d := KSStatistic(a, b)
		return d >= 0 && d <= 1
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLine(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-3) > 1e-12 || f.R2 < 0.999999 {
		t.Fatalf("fit %+v, want slope 2 intercept 3", f)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	alpha, c, r2 := FitPowerLaw(xs, ys)
	if math.Abs(alpha-1.5) > 1e-9 || math.Abs(c-3) > 1e-9 || r2 < 0.999999 {
		t.Fatalf("power fit alpha=%.4f c=%.4f r2=%.6f", alpha, c, r2)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	r := rng.New(6)
	var xs, ys []float64
	for _, n := range []float64{64, 128, 256, 512, 1024} {
		xs = append(xs, n)
		ys = append(ys, 2*n*n*(1+0.05*r.NormFloat64()))
	}
	alpha, _, _ := FitPowerLaw(xs, ys)
	if alpha < 1.8 || alpha > 2.2 {
		t.Fatalf("noisy quadratic fit alpha=%.3f", alpha)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost mass: %v", h.Counts)
	}
	if len(h.Edges) != 5 {
		t.Fatalf("edges %v", h.Edges)
	}
}

func TestFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Fraction(xs, func(x float64) bool { return x > 3 }); got != 0.4 {
		t.Fatalf("Fraction = %g, want 0.4", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}
