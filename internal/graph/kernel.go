package graph

import (
	"math/bits"

	"dispersion/internal/rng"
)

// Kernel is a graph's specialized single-step engine: Step(v, r) returns a
// uniformly random neighbour of v, drawn exactly as the generic CSR walk
// draws it — the same RNG calls in the same order, mapping the drawn index
// i to the i-th neighbour of v in sorted CSR order. Swapping kernels
// therefore never changes a simulation's sample path, only its speed.
//
// Every CSR selects its kernel once at Build time: closed-form kernels
// for the families whose neighbour structure is pure arithmetic (complete
// graphs, cycles, paths, hypercubes — no memory touched per step), an
// offsets-free kernel for fixed-degree regular graphs (one adjacency load
// per step), and a fused CSR kernel for everything else (one row-slice
// fetch instead of separate Degree and Neighbor lookups).
type Kernel interface {
	// Step returns a uniformly random neighbour of v. Vertices of degree
	// one move without consuming randomness (matching the generic walk);
	// every other vertex consumes exactly one bounded draw.
	Step(v int32, r *rng.Source) int32
	// WalkUntilVacant runs the IDLA settlement walk entirely inside the
	// kernel: starting from v, it repeatedly Steps (drawing a leading
	// coin per move when lazy is set) while the current vertex is
	// occupied, i.e. while occ[v] == epoch. It returns the final vertex
	// and the number of steps performed. The walk also returns as soon as
	// steps reaches budget, whatever the final vertex's occupancy — the
	// caller treats that as a truncated run. Keeping the whole loop
	// behind one interface call (instead of one call per step) lets each
	// concrete kernel inline its arithmetic and the RNG into the hottest
	// loop of the repository; the draws consumed are exactly those of the
	// equivalent Step loop.
	WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64)
	// StepLane advances every slot listed in idx by one walk move of the
	// batched lane: for each j in idx, a lazy stay-coin is drawn first
	// from slot j's stream when lazy is set (low bit 1 stays — Bool's
	// law), then a uniformly random neighbour of pos[j] is drawn from the
	// same slot stream and written back to pos[j]. Vertices of degree one
	// move without consuming randomness and a stay consumes only its
	// coin, mirroring Step's scalar draw law slot by slot. Occupancy is
	// the lane scheduler's concern: StepLane unconditionally moves every
	// listed slot, and one call per superstep is what amortizes the
	// kernel dispatch across the whole lane.
	StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource)
	// Kind names the kernel family for introspection and tests: one of
	// "complete", "cycle", "path", "hypercube", "regular", "csr",
	// "walias" for weighted alias kernels, or — for the implicit
	// backends — "torus", "circulant", "rregular".
	Kind() string
}

// Kernel returns the step kernel selected for this graph at Build time.
// Hot loops should hoist it out of the loop body.
func (g *CSR) Kernel() Kernel { return g.kernel }

// GenericKernel returns the fused CSR kernel for this graph regardless of
// the kernel Build selected, as the reference implementation for
// kernel-equivalence tests and kernel-vs-generic benchmarks.
func (g *CSR) GenericKernel() Kernel { return csrKernel{g} }

// detectKernel picks the fastest kernel whose closed form provably matches
// the graph's sorted CSR adjacency. Detection verifies the full neighbour
// structure (not just the family name), so relabelled or hand-built copies
// of a family qualify exactly when their adjacency does.
func detectKernel(g *CSR) Kernel {
	n := g.N()
	if n >= 2 && matchesClosedForm(g, completeKernel{n: int32(n)}) {
		return completeKernel{n: int32(n)}
	}
	if n >= 3 && matchesClosedForm(g, cycleKernel{n: int32(n)}) {
		return cycleKernel{n: int32(n)}
	}
	if n >= 2 && matchesClosedForm(g, pathKernel{n: int32(n)}) {
		return pathKernel{n: int32(n)}
	}
	if k := bits.TrailingZeros(uint(n)); n >= 2 && n == 1<<k && 4*len(g.adj) >= hypercubeClosedFormMinBytes {
		hk := hypercubeKernel{k: int32(k)}
		if matchesClosedForm(g, hk) {
			return hk
		}
	}
	if d := g.MaxDegree(); d >= 1 && g.IsRegular() {
		return regularKernel{adj: g.adj, deg: int32(d)}
	}
	return csrKernel{g}
}

// hypercubeClosedFormMinBytes gates the hypercube closed form on the CSR
// adjacency footprint. The kernel's bit-select loop costs more than an
// L1/L2-resident adjacency load (measured ~19ns vs ~8ns on Q_9), but far
// less than the cache misses of a multi-megabyte adjacency (~22ns vs
// ~46ns on Q_16), so small hypercubes take the offsets-free regular
// kernel instead and only cache-hostile ones go arithmetic. Complete
// graphs and cycles need no such gate: their closed forms beat the fused
// CSR load at every size.
const hypercubeClosedFormMinBytes = 1 << 20

// HypercubePrefersCSR reports whether Q_k falls below the closed-form
// footprint gate, i.e. its CSR adjacency is small enough that the
// cache-resident regular kernel beats the bit-select arithmetic. Backend
// routing (graphspec) uses it to decide implicit-vs-CSR for hypercubes.
func HypercubePrefersCSR(k int) bool {
	if k < 1 || k > 30 {
		return true
	}
	return int64(4)*int64(k)<<k < hypercubeClosedFormMinBytes
}

// closedForm is the verification face of an arithmetic kernel: nth(v, i)
// is its claimed i-th sorted neighbour of v and degree(v) its claimed
// degree, checked against the real CSR lists before the kernel is adopted.
type closedForm interface {
	Kernel
	nth(v, i int32) int32
	degree(v int32) int32
}

// matchesClosedForm reports whether the kernel's arithmetic reproduces the
// graph's sorted adjacency exactly, vertex by vertex and index by index.
func matchesClosedForm(g *CSR, k closedForm) bool {
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(v)
		if int32(len(ns)) != k.degree(int32(v)) {
			return false
		}
		for i, u := range ns {
			if u != k.nth(int32(v), int32(i)) {
				return false
			}
		}
	}
	return true
}

// csrKernel is the fused generic kernel: one row-slice fetch per step in
// place of the historical Degree-then-Neighbor pair of bounds-checked CSR
// lookups.
type csrKernel struct{ g *CSR }

// Kind returns "csr".
func (csrKernel) Kind() string { return "csr" }

// Step returns a uniformly random CSR neighbour of v.
func (k csrKernel) Step(v int32, r *rng.Source) int32 {
	ns := k.g.adj[k.g.offsets[v]:k.g.offsets[v+1]]
	if len(ns) == 1 {
		return ns[0]
	}
	return ns[r.Int31n(int32(len(ns)))]
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
//
// Every kernel repeats this identical loop body rather than sharing one
// generic helper: the k.Step call on the concrete receiver is a direct,
// inlinable call, which is the whole point of hoisting the loop behind a
// single interface dispatch.
func (k csrKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one gather-loop move each.
//
// Every kernel's StepLane hand-inlines the bounded-draw law of
// rng.LaneSource.Intn (Lemire multiply-shift rejection on the slot
// stream) instead of calling it: the call would not inline, and the whole
// point of the lane is that the per-slot draw+arithmetic stays branch-thin
// and register-resident so the CPU overlaps the independent slots. The
// closed-form kernels additionally hoist the rejection threshold out of
// the loop, removing the division the scalar path pays per draw.
func (k csrKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	offsets, adj := k.g.offsets, k.g.adj
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		v := pos[j]
		ns := adj[offsets[v]:offsets[v+1]]
		if len(ns) == 1 {
			pos[j] = ns[0]
			continue
		}
		un := uint64(len(ns))
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		if lo < un {
			thresh := -un % un
			for lo < thresh {
				hi, lo = bits.Mul64(lane.Uint64(sj), un)
			}
		}
		pos[j] = ns[hi]
	}
}

// regularKernel serves fixed-degree regular graphs: row v starts at v*deg,
// so a step needs one adjacency load and no offsets lookup at all.
type regularKernel struct {
	adj []int32
	deg int32
}

// Kind returns "regular".
func (regularKernel) Kind() string { return "regular" }

// Step returns a uniformly random neighbour via the dense row layout.
func (k regularKernel) Step(v int32, r *rng.Source) int32 {
	if k.deg == 1 {
		return k.adj[v]
	}
	return k.adj[v*k.deg+r.Int31n(k.deg)]
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k regularKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one dense-row move each.
func (k regularKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	if k.deg == 1 {
		for _, j := range idx {
			if lazy && lane.Uint64(int(j))&1 == 1 {
				continue
			}
			pos[j] = k.adj[pos[j]]
		}
		return
	}
	un := uint64(k.deg)
	thresh := -un % un
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		for lo < thresh {
			hi, lo = bits.Mul64(lane.Uint64(sj), un)
		}
		pos[j] = k.adj[pos[j]*k.deg+int32(hi)]
	}
}

// completeKernel is the closed-form kernel for K_n: the i-th sorted
// neighbour of v is i when i < v and i+1 otherwise, so a step is a draw
// and a compare — no memory touched.
type completeKernel struct{ n int32 }

// Kind returns "complete".
func (completeKernel) Kind() string { return "complete" }

// Step returns a uniformly random neighbour of v in K_n.
func (k completeKernel) Step(v int32, r *rng.Source) int32 {
	if k.n == 2 {
		return 1 - v
	}
	return k.nth(v, r.Int31n(k.n-1))
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k completeKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one draw-and-compare move each.
func (k completeKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	if k.n == 2 {
		for _, j := range idx {
			if lazy && lane.Uint64(int(j))&1 == 1 {
				continue
			}
			pos[j] = 1 - pos[j]
		}
		return
	}
	un := uint64(k.n - 1)
	thresh := -un % un
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		for lo < thresh {
			hi, lo = bits.Mul64(lane.Uint64(sj), un)
		}
		i := int32(hi)
		if i >= pos[j] {
			i++
		}
		pos[j] = i
	}
}

func (k completeKernel) nth(v, i int32) int32 {
	if i < v {
		return i
	}
	return i + 1
}

func (k completeKernel) degree(int32) int32 { return k.n - 1 }

// cycleKernel is the closed-form kernel for the canonical cycle C_n
// (vertex v adjacent to v±1 mod n).
type cycleKernel struct{ n int32 }

// Kind returns "cycle".
func (cycleKernel) Kind() string { return "cycle" }

// Step returns a uniformly random cycle neighbour of v.
func (k cycleKernel) Step(v int32, r *rng.Source) int32 {
	return k.nth(v, r.Int31n(2))
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k cycleKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one ±1 (mod n) move each. A
// two-way draw never rejects (2^64 is divisible by 2), so the drawn index
// is simply the top multiply word.
func (k cycleKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		hi, _ := bits.Mul64(lane.Uint64(sj), 2)
		pos[j] = k.nth(pos[j], int32(hi))
	}
}

func (k cycleKernel) nth(v, i int32) int32 {
	switch v {
	case 0:
		if i == 0 {
			return 1
		}
		return k.n - 1
	case k.n - 1:
		if i == 0 {
			return 0
		}
		return k.n - 2
	default:
		return v - 1 + 2*i
	}
}

func (cycleKernel) degree(int32) int32 { return 2 }

// pathKernel is the closed-form kernel for the canonical path P_n (vertex
// v adjacent to v±1). Endpoints have degree one and move without a draw.
type pathKernel struct{ n int32 }

// Kind returns "path".
func (pathKernel) Kind() string { return "path" }

// Step returns a uniformly random path neighbour of v.
func (k pathKernel) Step(v int32, r *rng.Source) int32 {
	switch v {
	case 0:
		return 1
	case k.n - 1:
		return k.n - 2
	default:
		return v - 1 + 2*r.Int31n(2)
	}
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k pathKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one path move each; endpoints
// move without a draw, exactly as Step does.
func (k pathKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		switch v := pos[j]; v {
		case 0:
			pos[j] = 1
		case k.n - 1:
			pos[j] = k.n - 2
		default:
			hi, _ := bits.Mul64(lane.Uint64(sj), 2)
			pos[j] = v - 1 + 2*int32(hi)
		}
	}
}

func (k pathKernel) nth(v, i int32) int32 {
	switch v {
	case 0:
		return 1
	case k.n - 1:
		return k.n - 2
	default:
		return v - 1 + 2*i
	}
}

func (k pathKernel) degree(v int32) int32 {
	if v == 0 || v == k.n-1 {
		return 1
	}
	return 2
}

// hypercubeKernel is the closed-form kernel for the canonical hypercube
// Q_k (u ~ v iff u xor v is a power of two). The sorted neighbour list of
// v is: v - 2^d over the set bits d of v in descending bit order, then
// v + 2^d over the clear bits in ascending order — selected with pure
// register arithmetic, no memory touched.
type hypercubeKernel struct{ k int32 }

// Kind returns "hypercube".
func (hypercubeKernel) Kind() string { return "hypercube" }

// Step returns a uniformly random hypercube neighbour of v.
func (k hypercubeKernel) Step(v int32, r *rng.Source) int32 {
	if k.k == 1 {
		return v ^ 1
	}
	return k.nth(v, r.Int31n(k.k))
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k hypercubeKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one bit-flip move each.
func (k hypercubeKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	if k.k == 1 {
		for _, j := range idx {
			if lazy && lane.Uint64(int(j))&1 == 1 {
				continue
			}
			pos[j] ^= 1
		}
		return
	}
	un := uint64(k.k)
	thresh := -un % un
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		for lo < thresh {
			hi, lo = bits.Mul64(lane.Uint64(sj), un)
		}
		pos[j] = k.nth(pos[j], int32(hi))
	}
}

func (k hypercubeKernel) nth(v, i int32) int32 {
	s := int32(bits.OnesCount32(uint32(v)))
	if i < s {
		// The (i+1)-th highest set bit of v: clear the top bit i times.
		x := uint32(v)
		for ; i > 0; i-- {
			x &^= 1 << (bits.Len32(x) - 1)
		}
		return v ^ int32(1<<(bits.Len32(x)-1))
	}
	// The (i-s+1)-th lowest clear bit among the k dimensions.
	y := ^uint32(v) & (1<<uint32(k.k) - 1)
	for i -= s; i > 0; i-- {
		y &= y - 1
	}
	return v ^ int32(y&-y)
}

func (k hypercubeKernel) degree(int32) int32 { return k.k }
