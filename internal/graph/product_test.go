package graph

import "testing"

// isomorphicByDegreesAndEdges is a cheap structural comparison sufficient
// for the identity tests below where the vertex correspondence is known
// to be the identity (same index construction).
func sameGraph(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d neighbour sets differ", v)
			}
		}
	}
}

func TestCartesianGridIdentity(t *testing.T) {
	// P_a □ P_b == Grid([a,b]) under row-major indexing.
	sameGraph(t, Cartesian(Path(4), Path(5)), Grid([]int{4, 5}, false))
}

func TestCartesianTorusIdentity(t *testing.T) {
	sameGraph(t, Cartesian(Cycle(4), Cycle(5)), Grid([]int{4, 5}, true))
}

func TestCartesianHypercubeIdentity(t *testing.T) {
	k2 := Path(2) // K_2
	q := k2
	for i := 1; i < 4; i++ {
		q = Cartesian(q, k2)
	}
	h := Hypercube(4)
	if q.N() != h.N() || q.M() != h.M() || !q.IsRegular() {
		t.Fatalf("iterated K_2 product: n=%d m=%d regular=%v", q.N(), q.M(), q.IsRegular())
	}
	// Degree check suffices with regularity + size (both are 4-regular
	// bipartite connected vertex-transitive on 16 vertices).
	if q.Degree(0) != 4 {
		t.Fatalf("product degree %d", q.Degree(0))
	}
}

func TestCartesianConnectedness(t *testing.T) {
	g := Cartesian(Star(4), Cycle(3))
	if !g.IsConnected() {
		t.Fatal("product of connected graphs must be connected")
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// m(G□H) = n_G·m_H + n_H·m_G.
	if g.M() != 4*3+3*3 {
		t.Fatalf("M = %d, want 21", g.M())
	}
}

func TestCombStructure(t *testing.T) {
	g := Comb(5, 3)
	if g.N() != 20 || g.M() != 19 {
		t.Fatalf("comb size %d/%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("comb disconnected")
	}
	// Tooth tips are leaves.
	for i := 0; i < 5; i++ {
		tip := 5 + i*3 + 2
		if g.Degree(tip) != 1 {
			t.Errorf("tooth tip %d degree %d", tip, g.Degree(tip))
		}
	}
	// Interior spine vertices: 2 spine edges + 1 tooth.
	if g.Degree(2) != 3 {
		t.Errorf("interior spine degree %d, want 3", g.Degree(2))
	}
}

func TestCombZeroTeethIsPath(t *testing.T) {
	sameGraph(t, Comb(6, 0), Path(6))
}

func TestBarbellStructure(t *testing.T) {
	g := Barbell(5, 3)
	if g.N() != 12 || !g.IsConnected() {
		t.Fatalf("barbell n=%d connected=%v", g.N(), g.IsConnected())
	}
	// Two cliques of 5: 2*10 edges + 3 bridge edges.
	if g.M() != 23 {
		t.Fatalf("barbell m=%d, want 23", g.M())
	}
	if g.Degree(0) != 4 || g.Degree(11) != 4 {
		t.Error("clique interior degrees wrong")
	}
	// Bridge midpoints have degree 2.
	if g.Degree(5) != 2 {
		t.Errorf("bridge vertex degree %d, want 2", g.Degree(5))
	}
}

func TestBarbellBottleneck(t *testing.T) {
	// Sanity on intent: the clique side of the bridge forms a cut of one
	// edge with large volume, so the conductance is at most 1/vol.
	g := Barbell(4, 2)
	vol := 0
	for v := 0; v < 4; v++ {
		vol += g.Degree(v)
	}
	if 1.0/float64(vol) > 0.09 {
		t.Fatalf("barbell bridge cut not small: 1/%d", vol)
	}
}
