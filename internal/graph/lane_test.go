package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dispersion/internal/rng"
)

// laneFamilies returns one instance of every kernel kind exercising
// StepLane, paired with a structural twin for adjacency checks.
func laneFamilies(t *testing.T) map[string]Graph {
	t.Helper()
	torus, err := ImplicitTorus([]int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	circ, err := ImplicitCirculant(12, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	rreg, err := ImplicitRandomRegular(20, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	wcomp, err := WeightedComplete(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wcyc, err := WeightedCycle(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Graph{
		"complete-8":  Complete(8),
		"cycle-9":     Cycle(9),
		"path-7":      Path(7),
		"hypercube-4": Hypercube(4),
		"star-6":      Star(6),
		"torus-4x5":   torus,
		"circ-12":     circ,
		"rreg-20-4":   rreg,
		"wcomplete-8": wcomp,
		"wcycle-9":    wcyc,
	}
}

// TestStepLaneMovesToNeighbors drives every kernel's StepLane across a
// full lane for many rounds and checks each slot only ever moves along an
// edge (or, lazily, stays put).
func TestStepLaneMovesToNeighbors(t *testing.T) {
	for name, g := range laneFamilies(t) {
		ec, ok := g.(EdgeChecker)
		if !ok {
			t.Fatalf("%s: no EdgeChecker", name)
		}
		kern := g.Kernel()
		for _, lazy := range []bool{false, true} {
			var lane rng.LaneSource
			const width = 32
			lane.Resize(width)
			src := rng.New(99)
			pos := make([]int32, width)
			idx := make([]int32, width)
			for j := 0; j < width; j++ {
				lane.Seed(j, src.Uint64())
				pos[j] = int32(src.Intn(g.N()))
				idx[j] = int32(j)
			}
			prev := make([]int32, width)
			for round := 0; round < 100; round++ {
				copy(prev, pos)
				kern.StepLane(pos, idx[:width-round%3], lazy, &lane)
				for _, j := range idx[:width-round%3] {
					if pos[j] == prev[j] {
						if !lazy && g.Degree(int(prev[j])) > 0 &&
							!ec.HasEdge(int(prev[j]), int(pos[j])) {
							t.Fatalf("%s lazy=%v: slot %d stayed at %d without laziness", name, lazy, j, prev[j])
						}
						continue
					}
					if !ec.HasEdge(int(prev[j]), int(pos[j])) {
						t.Fatalf("%s lazy=%v: slot %d moved %d -> %d (not an edge)", name, lazy, j, prev[j], pos[j])
					}
				}
			}
		}
	}
}

// TestStepLaneDegreeOneNoDraw pins the draw law at degree one: moving a
// slot along its only edge must consume no variates (matching scalar
// Step), so identically seeded lanes stay in lockstep.
func TestStepLaneDegreeOneNoDraw(t *testing.T) {
	for name, g := range map[string]Graph{"path-2": Path(2), "complete-2": Complete(2), "star-3-leaf": Star(3)} {
		var a, b rng.LaneSource
		a.Resize(2)
		b.Resize(2)
		for j := 0; j < 2; j++ {
			a.Seed(j, uint64(j)*31+5)
			b.Seed(j, uint64(j)*31+5)
		}
		// Start both slots on degree-1 vertices (vertex 1 in every family
		// here is a leaf or K_2 endpoint).
		pos := []int32{1, 1}
		idx := []int32{0, 1}
		g.Kernel().StepLane(pos, idx, false, &a)
		for j := 0; j < 2; j++ {
			if g.Degree(int(pos[j])) < 1 {
				t.Fatalf("%s: slot %d landed on isolated vertex %d", name, j, pos[j])
			}
			if got, want := a.Uint64(j), b.Uint64(j); got != want {
				t.Fatalf("%s: slot %d consumed a draw on a degree-1 move", name, j)
			}
		}
	}
}

// chiSquare999 approximates the 99.9th percentile of the chi-square
// distribution with k degrees of freedom (Wilson–Hilferty).
func chiSquare999(k int) float64 {
	fk := float64(k)
	z := 3.0902 // 99.9th percentile of the standard normal
	x := 1 - 2/(9*fk) + z*math.Sqrt(2/(9*fk))
	return fk * x * x * x
}

// TestStepLaneDistribution chi-squares every kernel's StepLane against
// its step law from a fixed vertex: uniform over neighbours for the
// unweighted kernels, the normalised weight law for the alias kernels.
func TestStepLaneDistribution(t *testing.T) {
	for name, g := range laneFamilies(t) {
		// Pick the max-degree vertex so the test covers real branching.
		v := 0
		for u := 1; u < g.N(); u++ {
			if g.Degree(u) > g.Degree(v) {
				v = u
			}
		}
		d := g.Degree(v)
		if d < 2 {
			t.Fatalf("%s: max degree %d", name, d)
		}
		want := make(map[int32]float64, d)
		if w, ok := g.(*WeightedCSR); ok {
			var sum float64
			for _, x := range w.Weights(v) {
				sum += x
			}
			for i, u := range w.Neighbors(v) {
				want[u] = w.Weights(v)[i] / sum
			}
		} else {
			ec := g.(EdgeChecker)
			for u := 0; u < g.N(); u++ {
				if ec.HasEdge(v, u) {
					want[int32(u)] = 1 / float64(d)
				}
			}
		}
		var lane rng.LaneSource
		lane.Resize(1)
		lane.Seed(0, 2718)
		pos := []int32{int32(v)}
		idx := []int32{0}
		draws := 4096 * d
		counts := make(map[int32]int, d)
		kern := g.Kernel()
		for i := 0; i < draws; i++ {
			pos[0] = int32(v)
			kern.StepLane(pos, idx, false, &lane)
			counts[pos[0]]++
		}
		var chi2 float64
		for u, p := range want {
			exp := p * float64(draws)
			diff := float64(counts[u]) - exp
			chi2 += diff * diff / exp
			delete(counts, u)
		}
		if len(counts) != 0 {
			t.Fatalf("%s: draws landed outside the neighbour set: %v", name, counts)
		}
		if lim := chiSquare999(d - 1); chi2 > lim {
			t.Fatalf("%s: chi-square %.2f > %.2f over %d dof", name, chi2, lim, d-1)
		}
	}
}

// TestWeightedAliasMassExact reconstructs each vertex's transition law
// from its alias table and checks it equals the normalised weights up to
// float rounding — the table-level form of the alias correctness claim.
func TestWeightedAliasMassExact(t *testing.T) {
	wcomp, err := WeightedComplete(16, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	wcyc, err := WeightedCycle(11, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*WeightedCSR{wcomp, wcyc} {
		for v := 0; v < g.N(); v++ {
			ns := g.Neighbors(v)
			ws := g.Weights(v)
			d := len(ns)
			var sum float64
			for _, w := range ws {
				sum += w
			}
			mass := make(map[int32]float64, d)
			off := int(g.csr.offsets[v])
			for i := 0; i < d; i++ {
				p := g.prob[off+i]
				if p < 0 || p > 1 {
					t.Fatalf("%s v=%d slot %d: prob %v outside [0,1]", g.Name(), v, i, p)
				}
				mass[ns[i]] += p / float64(d)
				if p < 1 {
					mass[g.alt[off+i]] += (1 - p) / float64(d)
				}
			}
			for i, u := range ns {
				if got, want := mass[u], ws[i]/sum; math.Abs(got-want) > 1e-9 {
					t.Fatalf("%s: P(%d->%d) = %v from alias table, want %v", g.Name(), v, u, got, want)
				}
			}
		}
	}
}

// TestWeightedScalarStepLaw chi-squares the scalar weighted Step against
// the normalised weight law — the satellite acceptance pin for alias
// draws, on the scalar path (TestStepLaneDistribution covers the lane).
func TestWeightedScalarStepLaw(t *testing.T) {
	g, err := WeightedComplete(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	const v = 0
	d := g.Degree(v)
	ws := g.Weights(v)
	var sum float64
	for _, w := range ws {
		sum += w
	}
	src := rng.New(5)
	draws := 8192 * d
	counts := make(map[int32]int, d)
	for i := 0; i < draws; i++ {
		counts[g.Kernel().Step(v, src)]++
	}
	var chi2 float64
	for i, u := range g.Neighbors(v) {
		exp := ws[i] / sum * float64(draws)
		diff := float64(counts[u]) - exp
		chi2 += diff * diff / exp
	}
	if lim := chiSquare999(d - 1); chi2 > lim {
		t.Fatalf("weighted Step chi-square %.2f > %.2f over %d dof", chi2, lim, d-1)
	}
}

// TestWeightedStepLaneMatchesLaneLaws pins the hand-inlined lane loop of
// the alias kernel to the LaneSource's own bounded-draw methods,
// draw for draw.
func TestWeightedStepLaneMatchesLaneLaws(t *testing.T) {
	g, err := WeightedComplete(9, -0.75)
	if err != nil {
		t.Fatal(err)
	}
	for _, lazy := range []bool{false, true} {
		var lane, ref rng.LaneSource
		const width = 16
		lane.Resize(width)
		ref.Resize(width)
		pos := make([]int32, width)
		want := make([]int32, width)
		idx := make([]int32, width)
		for j := 0; j < width; j++ {
			lane.Seed(j, uint64(j)*1009+3)
			ref.Seed(j, uint64(j)*1009+3)
			pos[j] = int32(j % g.N())
			want[j] = pos[j]
			idx[j] = int32(j)
		}
		for round := 0; round < 200; round++ {
			g.Kernel().StepLane(pos, idx, lazy, &lane)
			for j := 0; j < width; j++ {
				if lazy && ref.Bool(j) {
					continue
				}
				v := want[j]
				off := g.csr.offsets[v]
				d := int(g.csr.offsets[v+1] - off)
				i := off + int32(ref.Intn(j, d))
				if ref.Float64(j) < g.prob[i] {
					want[j] = g.csr.adj[i]
				} else {
					want[j] = g.alt[i]
				}
			}
			for j := 0; j < width; j++ {
				if pos[j] != want[j] {
					t.Fatalf("lazy=%v round %d slot %d: StepLane at %d, reference at %d", lazy, round, j, pos[j], want[j])
				}
			}
		}
	}
}

// TestWeightedStructure checks the structural facade of WeightedCSR and
// the Materialize special case.
func TestWeightedStructure(t *testing.T) {
	g, err := WeightedCycle(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 10 {
		t.Fatalf("N=%d M=%d, want 10 10", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("weighted cycle reported disconnected")
	}
	if g.Kernel().Kind() != "walias" {
		t.Fatalf("kernel kind %q, want walias", g.Kernel().Kind())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong on weighted cycle")
	}
	// Edge {1,2} has odd endpoint 1 -> weight 4; {0,1} has even 0 -> 1.
	for i, u := range g.Neighbors(1) {
		want := 1.0
		if u == 2 {
			want = 4.0
		}
		if g.Weights(1)[i] != want {
			t.Fatalf("weight of edge {1,%d} = %v, want %v", u, g.Weights(1)[i], want)
		}
	}
	csr, err := Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if csr != g.CSR() {
		t.Fatal("Materialize did not return the structural twin")
	}
	if csr.Kernel().Kind() == "walias" {
		t.Fatal("structural twin kept the weighted kernel")
	}
}

// TestWeightedBuilderErrors checks weight validation and that structural
// errors still surface through the weighted builder.
func TestWeightedBuilderErrors(t *testing.T) {
	for name, add := range map[string]func(b *WeightedBuilder){
		"zero weight":     func(b *WeightedBuilder) { b.AddEdge(0, 1, 0) },
		"negative weight": func(b *WeightedBuilder) { b.AddEdge(0, 1, -2) },
		"nan weight":      func(b *WeightedBuilder) { b.AddEdge(0, 1, math.NaN()) },
		"inf weight":      func(b *WeightedBuilder) { b.AddEdge(0, 1, math.Inf(1)) },
		"self loop":       func(b *WeightedBuilder) { b.AddEdge(1, 1, 1) },
		"duplicate":       func(b *WeightedBuilder) { b.AddEdge(0, 1, 1); b.AddEdge(1, 0, 2) },
	} {
		b := NewWeightedBuilder("bad", 3)
		add(b)
		if _, err := b.Build(); err == nil {
			t.Fatalf("%s: Build succeeded", name)
		}
	}
	if _, err := WeightedComplete(1, 0); err == nil {
		t.Fatal("WeightedComplete(1, 0) succeeded")
	}
	if _, err := WeightedComplete(4, math.NaN()); err == nil {
		t.Fatal("WeightedComplete with NaN alpha succeeded")
	}
	if _, err := WeightedCycle(2, 1); err == nil {
		t.Fatal("WeightedCycle(2, 1) succeeded")
	}
	if _, err := WeightedCycle(5, 0); err == nil {
		t.Fatal("WeightedCycle with zero bias succeeded")
	}
}

// TestWeightedCompleteAlphaZeroUniform pins the alpha = 0 degenerate
// case: every transition probability collapses to the uniform law.
func TestWeightedCompleteAlphaZeroUniform(t *testing.T) {
	g, err := WeightedComplete(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Weights(v) {
			if w != 1 {
				t.Fatalf("alpha=0 weight %v at vertex %d", w, v)
			}
		}
	}
}

// TestWeightedEdgeListRoundTrip round-trips a weighted graph through the
// text format, including exact weight recovery.
func TestWeightedEdgeListRoundTrip(t *testing.T) {
	g, err := WeightedComplete(6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeightedEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() || got.Name() != g.Name() {
		t.Fatalf("round trip: N=%d M=%d name=%q, want N=%d M=%d name=%q",
			got.N(), got.M(), got.Name(), g.N(), g.M(), g.Name())
	}
	for v := 0; v < g.N(); v++ {
		gw, ww := got.Weights(v), g.Weights(v)
		for i := range ww {
			if gw[i] != ww[i] {
				t.Fatalf("vertex %d slot %d: weight %v != %v after round trip", v, i, gw[i], ww[i])
			}
		}
	}
}

// TestReadWeightedEdgeListErrors checks malformed weighted inputs.
func TestReadWeightedEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":       "",
		"bad header":  "n 4 oops\n0 1 2\n",
		"bad edge":    "wn 4 g\n0 one 2\n",
		"no weight":   "wn 4 g\n0 1\n",
		"zero weight": "wn 4 g\n0 1 0\n",
	} {
		if _, err := ReadWeightedEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: ReadWeightedEdgeList succeeded", name)
		}
	}
	g, err := ReadWeightedEdgeList(strings.NewReader("wn 3\n# comment\n\n0 1 2.5\n1 2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "loaded" || g.M() != 2 {
		t.Fatalf("nameless header: name %q M=%d", g.Name(), g.M())
	}
}
