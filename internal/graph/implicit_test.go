package graph

import (
	"testing"

	"dispersion/internal/rng"
)

// implicitCases pairs every implicit family with an independently built
// CSR twin of the same labelled graph. Twins for torus come from Grid
// (separate edge-enumeration code), cycles/paths/completes/hypercubes
// from their CSR constructors, and circulants/random-regulars from
// Materialize checked against the family definition.
func implicitCases(t *testing.T) []struct {
	name string
	g    *Implicit
	twin *CSR
} {
	t.Helper()
	mk := func(name string, g *Implicit, twin *CSR) struct {
		name string
		g    *Implicit
		twin *CSR
	} {
		return struct {
			name string
			g    *Implicit
			twin *CSR
		}{name, g, twin}
	}
	torus2, err := ImplicitTorus([]int{7, 5})
	if err != nil {
		t.Fatal(err)
	}
	torus3, err := ImplicitTorus([]int{4, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	torus1, err := ImplicitTorus([]int{1, 9, 1})
	if err != nil {
		t.Fatal(err)
	}
	circ, err := ImplicitCirculant(12, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	circHalf, err := ImplicitCirculant(10, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	rreg, err := implicitSimpleRandomRegular(t, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rreg == nil {
		t.Fatal("no collision-free random-regular seed found at n=30, d=4")
	}
	cases := []struct {
		name string
		g    *Implicit
		twin *CSR
	}{
		mk("complete-9", ImplicitComplete(9), Complete(9)),
		mk("complete-2", ImplicitComplete(2), Complete(2)),
		mk("cycle-3", ImplicitCycle(3), Cycle(3)),
		mk("cycle-11", ImplicitCycle(11), Cycle(11)),
		mk("path-2", ImplicitPath(2), Path(2)),
		mk("path-17", ImplicitPath(17), Path(17)),
		mk("hypercube-1", ImplicitHypercube(1), Hypercube(1)),
		mk("hypercube-6", ImplicitHypercube(6), Hypercube(6)),
		mk("torus-7x5", torus2, Grid([]int{7, 5}, true)),
		mk("torus-4x3x5", torus3, Grid([]int{4, 3, 5}, true)),
		mk("torus-1x9x1", torus1, Grid([]int{1, 9, 1}, true)),
	}
	for _, ig := range []*Implicit{circ, circHalf, rreg} {
		twin, err := Materialize(ig)
		if err != nil {
			t.Fatalf("%s: materialize: %v", ig.Name(), err)
		}
		cases = append(cases, mk(ig.Name(), ig, twin))
	}
	return cases
}

// implicitSimpleRandomRegular searches seeds for a cycle union with no
// edge collisions, so the CSR twin exists (multigraph samples cannot be
// materialized); collisions at these sizes are rare, so the search is
// short.
func implicitSimpleRandomRegular(t *testing.T, n, d int) (*Implicit, error) {
	t.Helper()
	for seed := uint64(0); seed < 50; seed++ {
		g, err := ImplicitRandomRegular(n, d, seed)
		if err != nil {
			return nil, err
		}
		if _, err := Materialize(g); err == nil {
			return g, nil
		}
	}
	return nil, nil
}

// Every implicit family's closed form must reproduce its CSR twin's
// sorted adjacency index by index — the anchor property that makes
// implicit streams bit-identical to CSR streams.
func TestImplicitMatchesTwinAdjacency(t *testing.T) {
	for _, tc := range implicitCases(t) {
		if tc.g.N() != tc.twin.N() {
			t.Fatalf("%s: n = %d, twin %d", tc.name, tc.g.N(), tc.twin.N())
		}
		cf := tc.g.Kernel().(closedForm)
		if !matchesClosedForm(tc.twin, cf) {
			t.Fatalf("%s: implicit closed form disagrees with CSR twin adjacency", tc.name)
		}
		for v := 0; v < tc.g.N(); v++ {
			if tc.g.Degree(v) != tc.twin.Degree(v) {
				t.Fatalf("%s: Degree(%d) = %d, twin %d", tc.name, v, tc.g.Degree(v), tc.twin.Degree(v))
			}
		}
	}
}

// Implicit connectivity is computed analytically and must agree with the
// twin's BFS answer; circulants with gcd > 1 are the disconnected case.
func TestImplicitConnectivity(t *testing.T) {
	for _, tc := range implicitCases(t) {
		if tc.g.IsConnected() != tc.twin.IsConnected() {
			t.Fatalf("%s: IsConnected = %v, twin %v", tc.name, tc.g.IsConnected(), tc.twin.IsConnected())
		}
	}
	disc, err := ImplicitCirculant(12, []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if disc.IsConnected() {
		t.Fatal("circulant-12+3+6 (gcd 3) must be disconnected")
	}
	twin, err := Materialize(disc)
	if err != nil {
		t.Fatal(err)
	}
	if twin.IsConnected() {
		t.Fatal("twin of disconnected circulant reports connected")
	}
}

// HasEdge must agree with the twin on every pair.
func TestImplicitHasEdge(t *testing.T) {
	for _, tc := range implicitCases(t) {
		for u := 0; u < tc.g.N(); u++ {
			for v := 0; v < tc.g.N(); v++ {
				if got, want := tc.g.HasEdge(u, v), tc.twin.HasEdge(u, v); got != want {
					t.Fatalf("%s: HasEdge(%d,%d) = %v, twin %v", tc.name, u, v, got, want)
				}
			}
		}
	}
}

// Implicit kernel steps must be bit-identical — same vertices, same draw
// counts — to the twin's generic CSR walk.
func TestImplicitStepBitIdentity(t *testing.T) {
	for _, tc := range implicitCases(t) {
		if !tc.g.IsConnected() {
			continue
		}
		kern := tc.g.Kernel()
		rk, rg := rng.New(42), rng.New(42)
		vk, vg := int32(0), int32(0)
		for step := 0; step < 5000; step++ {
			vk = kern.Step(vk, rk)
			vg = genericStep(tc.twin, vg, rg)
			if vk != vg {
				t.Fatalf("%s: step %d diverged: implicit %d, twin %d", tc.name, step, vk, vg)
			}
			if rk.Uint64() != rg.Uint64() {
				t.Fatalf("%s: step %d consumed different draw counts", tc.name, step)
			}
		}
	}
}

// Implicit WalkUntilVacant must match the explicit step loop on the twin
// across occupancy patterns, lazy and simple, including draw counts.
func TestImplicitWalkUntilVacantBitIdentity(t *testing.T) {
	for _, tc := range implicitCases(t) {
		kern := tc.g.Kernel()
		n := tc.g.N()
		for _, lazy := range []bool{false, true} {
			for trial := uint64(0); trial < 20; trial++ {
				occGen := rng.New(1000 + trial)
				occ := make([]uint8, n)
				const epoch = 3
				for v := range occ {
					if occGen.Bool() {
						occ[v] = epoch
					}
				}
				occ[occGen.Intn(n)] = 0
				start := int32(occGen.Intn(n))

				rw, rs := rng.New(trial), rng.New(trial)
				gotV, gotSteps := kern.WalkUntilVacant(start, lazy, occ, epoch, 1<<40, rw)
				v, steps := start, int64(0)
				for occ[v] == epoch {
					if !lazy || !rs.Bool() {
						v = genericStep(tc.twin, v, rs)
					}
					steps++
				}
				if gotV != v || gotSteps != steps {
					t.Fatalf("%s (lazy=%v, trial %d): walk = (%d, %d), want (%d, %d)",
						tc.name, lazy, trial, gotV, gotSteps, v, steps)
				}
				if rw.Uint64() != rs.Uint64() {
					t.Fatalf("%s (lazy=%v, trial %d): different draw counts", tc.name, lazy, trial)
				}
			}
		}
	}
}

// The budget contract holds for implicit kernels too.
func TestImplicitWalkBudget(t *testing.T) {
	for _, tc := range implicitCases(t) {
		kern := tc.g.Kernel()
		occ := make([]uint8, tc.g.N())
		for v := range occ {
			occ[v] = 1
		}
		for _, budget := range []int64{1, 2, 7} {
			r := rng.New(9)
			if _, steps := kern.WalkUntilVacant(0, false, occ, 1, budget, r); steps != budget {
				t.Fatalf("%s: budget %d walk took %d steps", tc.name, budget, steps)
			}
		}
	}
}

// The Feistel PRP must be a bijection of [0, n) with a working inverse,
// including awkward domain sizes (powers of two, one above, one below).
func TestFeistelPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 17, 63, 64, 65, 1000} {
		for seed := uint64(0); seed < 4; seed++ {
			f := newFeistel(n, seed)
			seen := make([]bool, n)
			for x := 0; x < n; x++ {
				y := f.apply(uint64(x))
				if y >= uint64(n) {
					t.Fatalf("n=%d seed=%d: apply(%d) = %d out of range", n, seed, x, y)
				}
				if seen[y] {
					t.Fatalf("n=%d seed=%d: apply not injective at %d", n, seed, x)
				}
				seen[y] = true
				if back := f.invert(y); back != uint64(x) {
					t.Fatalf("n=%d seed=%d: invert(apply(%d)) = %d", n, seed, x, back)
				}
			}
		}
	}
}

// Seeded random-regular graphs are d-regular unions of Hamiltonian
// cycles: every vertex must have exactly d incident half-edges and the
// graph must be connected by construction (each cycle alone spans it).
func TestImplicitRandomRegularStructure(t *testing.T) {
	for _, d := range []int{2, 4, 6} {
		g, err := ImplicitRandomRegular(40, d, 11)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatalf("d=%d: not connected", d)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != d {
				t.Fatalf("d=%d: Degree(%d) = %d", d, v, g.Degree(v))
			}
		}
		// Neighbour relation is symmetric even with multigraph collisions:
		// u appears in v's list as often as v appears in u's.
		cf := g.Kernel().(closedForm)
		count := func(a, b int32) int {
			c := 0
			for i := int32(0); i < cf.degree(a); i++ {
				if cf.nth(a, i) == b {
					c++
				}
			}
			return c
		}
		for v := int32(0); v < int32(g.N()); v++ {
			for i := int32(0); i < cf.degree(v); i++ {
				u := cf.nth(v, i)
				if u == v {
					t.Fatalf("d=%d: self-loop at %d", d, v)
				}
				if count(v, u) != count(u, v) {
					t.Fatalf("d=%d: asymmetric multiplicity between %d and %d", d, v, u)
				}
			}
		}
	}
}

// Constructor validation: the implicit families reject the shapes the CSR
// constructors reject, plus their own buffer limits.
func TestImplicitValidation(t *testing.T) {
	if _, err := ImplicitTorus([]int{4, 2}); err == nil {
		t.Error("torus side 2 accepted")
	}
	if _, err := ImplicitTorus([]int{1, 1}); err == nil {
		t.Error("torus with no effective side accepted")
	}
	if _, err := ImplicitTorus([]int{3, 3, 3, 3, 3, 3, 3, 3, 3}); err == nil {
		t.Error("torus beyond maxTorusDims accepted")
	}
	if _, err := ImplicitCirculant(10, []int{0}); err == nil {
		t.Error("circulant offset 0 accepted")
	}
	if _, err := ImplicitCirculant(10, []int{6}); err == nil {
		t.Error("circulant offset > n/2 accepted")
	}
	if _, err := ImplicitCirculant(10, []int{2, 2}); err == nil {
		t.Error("duplicate circulant offset accepted")
	}
	if _, err := ImplicitRandomRegular(10, 3, 1); err == nil {
		t.Error("odd degree accepted")
	}
	if _, err := ImplicitRandomRegular(10, 34, 1); err == nil {
		t.Error("degree beyond maxRRegularDegree accepted")
	}
	if _, err := Materialize(Complete(4)); err != nil {
		t.Errorf("Materialize of CSR: %v", err)
	}
}
