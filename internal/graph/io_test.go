package graph

import (
	"bytes"
	"strings"
	"testing"

	"dispersion/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	for _, g := range []*CSR{Path(7), Lollipop(12), Hypercube(4), RandomTree(20, rng.New(1))} {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("%s: round trip changed size: %d/%d -> %d/%d",
				g.Name(), g.N(), g.M(), back.N(), back.M())
		}
		for v := 0; v < g.N(); v++ {
			ns, bs := g.Neighbors(v), back.Neighbors(v)
			if len(ns) != len(bs) {
				t.Fatalf("%s: vertex %d degree changed", g.Name(), v)
			}
			for i := range ns {
				if ns[i] != bs[i] {
					t.Fatalf("%s: vertex %d neighbours changed", g.Name(), v)
				}
			}
		}
		if back.Name() != g.Name() {
			t.Errorf("name not preserved: %q -> %q", g.Name(), back.Name())
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "n 3 tri\n# comment\n0 1\n\n1 2\n0 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("parsed %d/%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"bogus header\n",
		"n 3 x\n0 nonsense\n",
		"n 3 x\n0 7\n", // out of range
		"n 3 x\n1 1\n", // self loop
	} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadEdgeListHeaderWithoutName(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("n 2\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatal("bad parse")
	}
}

func TestWriteDOT(t *testing.T) {
	g := Cycle(4)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, map[int]bool{1: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph", "0 -- 1", "2 -- 3", "fillcolor=gray", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
