package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList serialises the graph as a plain-text edge list:
// a header line "n <vertices> <name>" followed by one "u v" line per edge
// (u < v). The format round-trips through ReadEdgeList.
func (g *CSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d %s\n", g.N(), g.name); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	var n int
	var name string
	header := sc.Text()
	if _, err := fmt.Sscanf(header, "n %d %s", &n, &name); err != nil {
		// The name may be absent.
		if _, err2 := fmt.Sscanf(header, "n %d", &n); err2 != nil {
			return nil, fmt.Errorf("graph: bad header %q", header)
		}
		name = "loaded"
	}
	b := NewBuilder(name, n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge at line %d: %q", line, text)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// WriteEdgeList serialises the weighted graph as a plain-text edge list:
// a header line "wn <vertices> <name>" followed by one "u v w" line per
// edge (u < v). The format round-trips through ReadWeightedEdgeList.
func (g *WeightedCSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "wn %d %s\n", g.N(), g.csr.name); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		off := g.csr.offsets[u]
		for i, v := range g.Neighbors(u) {
			if int32(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, g.w[off+int32(i)]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadWeightedEdgeList parses the format written by
// (*WeightedCSR).WriteEdgeList.
func ReadWeightedEdgeList(r io.Reader) (*WeightedCSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	var n int
	var name string
	header := sc.Text()
	if _, err := fmt.Sscanf(header, "wn %d %s", &n, &name); err != nil {
		// The name may be absent.
		if _, err2 := fmt.Sscanf(header, "wn %d", &n); err2 != nil {
			return nil, fmt.Errorf("graph: bad weighted header %q", header)
		}
		name = "loaded"
	}
	b := NewWeightedBuilder(name, n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		var wt float64
		if _, err := fmt.Sscanf(text, "%d %d %g", &u, &v, &wt); err != nil {
			return nil, fmt.Errorf("graph: bad weighted edge at line %d: %q", line, text)
		}
		b.AddEdge(u, v, wt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// WriteDOT serialises the graph in Graphviz DOT format, optionally
// highlighting a set of vertices (e.g. an IDLA aggregate snapshot).
func (g *CSR) WriteDOT(w io.Writer, highlight map[int]bool) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle];\n",
		strings.ReplaceAll(g.name, "\"", "")); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if highlight[v] {
			if _, err := fmt.Fprintf(bw, "  %d [style=filled fillcolor=gray];\n", v); err != nil {
				return err
			}
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", e[0], e[1]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
