package graph

import "fmt"

// Path returns the path graph P_n on vertices 0..n-1 with edges {i, i+1}.
func Path(n int) *CSR {
	b := NewBuilder(fmt.Sprintf("path-%d", n), n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	// The constructor emits the canonical labelling, so the kernel is known
	// without detectKernel's verification sweep. Degenerate sizes (P_2 =
	// K_2) keep detection, which is O(1) there and preserves the
	// closed-form upgrade.
	if n >= 3 {
		b.hint = func(*CSR) Kernel { return pathKernel{n: int32(n)} }
	}
	return b.MustBuild()
}

// Cycle returns the cycle C_n. It requires n >= 3 to stay simple.
func Cycle(n int) *CSR {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(fmt.Sprintf("cycle-%d", n), n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	// Canonical labelling: skip detection. C_3 = K_3 keeps detection so it
	// still gets the complete-graph kernel.
	if n >= 4 {
		b.hint = func(*CSR) Kernel { return cycleKernel{n: int32(n)} }
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *CSR {
	b := NewBuilder(fmt.Sprintf("complete-%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	if n >= 2 {
		b.hint = func(*CSR) Kernel { return completeKernel{n: int32(n)} }
	}
	return b.MustBuild()
}

// Star returns the star S_n: vertex 0 is the centre joined to 1..n-1.
func Star(n int) *CSR {
	b := NewBuilder(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	// Stars are irregular for n >= 3 (S_2 = K_2 keeps detection).
	if n >= 3 {
		b.hint = func(g *CSR) Kernel { return csrKernel{g} }
	}
	return b.MustBuild()
}

// Grid returns the d-dimensional grid (box) with the given side lengths,
// indexed in row-major order. With torus set, opposite faces are glued,
// producing the d-dimensional torus the paper uses for d >= 2. Sides of
// length 2 with torus would create parallel edges and are rejected.
func Grid(sides []int, torus bool) *CSR {
	n := 1
	for _, s := range sides {
		if s < 1 {
			panic("graph: Grid sides must be >= 1")
		}
		if torus && s == 2 {
			panic("graph: torus with side 2 would create parallel edges")
		}
		n *= s
	}
	kind := "grid"
	if torus {
		kind = "torus"
	}
	b := NewBuilder(fmt.Sprintf("%s-%dd-%d", kind, len(sides), n), n)
	strides := make([]int, len(sides))
	stride := 1
	for d := len(sides) - 1; d >= 0; d-- {
		strides[d] = stride
		stride *= sides[d]
	}
	coords := make([]int, len(sides))
	for v := 0; v < n; v++ {
		for d := range sides {
			if coords[d]+1 < sides[d] {
				b.AddEdge(v, v+strides[d])
			} else if torus && sides[d] > 2 {
				b.AddEdge(v, v-(sides[d]-1)*strides[d])
			}
		}
		// Advance the mixed-radix coordinate counter.
		for d := len(sides) - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] < sides[d] {
				break
			}
			coords[d] = 0
		}
	}
	if torus {
		// A torus is 2·d'-regular, d' the number of effective (side >= 3)
		// dimensions; sides of length 1 contribute nothing. With exactly
		// one effective dimension the labelling degenerates to the
		// canonical cycle C_n; open grids keep detection (their boundary
		// makes the kernel depend on the exact shape).
		eff, deg := 0, 0
		for _, s := range sides {
			if s >= 3 {
				eff++
				deg += 2
			}
		}
		switch {
		case eff == 1 && n >= 4:
			b.hint = func(*CSR) Kernel { return cycleKernel{n: int32(n)} }
		case eff >= 2:
			b.hint = func(g *CSR) Kernel { return regularKernel{adj: g.adj, deg: int32(deg)} }
		}
	}
	return b.MustBuild()
}

// GridIndex converts coordinates into the row-major vertex index used by
// Grid.
func GridIndex(sides, coords []int) int {
	v := 0
	for d, s := range sides {
		v = v*s + coords[d]
	}
	return v
}

// GridCoords inverts GridIndex.
func GridCoords(sides []int, v int) []int {
	coords := make([]int, len(sides))
	for d := len(sides) - 1; d >= 0; d-- {
		coords[d] = v % sides[d]
		v /= sides[d]
	}
	return coords
}

// Hypercube returns the k-dimensional hypercube on n = 2^k vertices, with
// u ~ v iff u xor v is a power of two.
func Hypercube(k int) *CSR {
	if k < 1 || k > 30 {
		panic("graph: Hypercube requires 1 <= k <= 30")
	}
	n := 1 << k
	b := NewBuilder(fmt.Sprintf("hypercube-%d", n), n)
	for v := 0; v < n; v++ {
		for d := 0; d < k; d++ {
			u := v ^ (1 << d)
			if v < u {
				b.AddEdge(v, u)
			}
		}
	}
	// Same footprint gate as detectKernel (adjacency holds n·k int32s):
	// cache-hostile hypercubes go arithmetic, small ones take the
	// offsets-free regular kernel. Q_1 = K_2 keeps detection.
	if k >= 2 {
		if 4*n*k >= hypercubeClosedFormMinBytes {
			b.hint = func(*CSR) Kernel { return hypercubeKernel{k: int32(k)} }
		} else {
			b.hint = func(g *CSR) Kernel { return regularKernel{adj: g.adj, deg: int32(k)} }
		}
	}
	return b.MustBuild()
}

// CompleteBinaryTree returns the complete binary tree with n = 2^levels - 1
// vertices in heap order: the children of v are 2v+1 and 2v+2, the root is
// vertex 0.
func CompleteBinaryTree(levels int) *CSR {
	if levels < 1 || levels > 30 {
		panic("graph: CompleteBinaryTree requires 1 <= levels <= 30")
	}
	n := 1<<levels - 1
	b := NewBuilder(fmt.Sprintf("bintree-%d", n), n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	if levels >= 2 {
		b.hint = func(g *CSR) Kernel { return csrKernel{g} }
	}
	return b.MustBuild()
}

// Lollipop returns the lollipop graph of Proposition 5.16: a clique on
// ceil(n/2) vertices {0..k-1} attached by the single edge {k-1, k} to a
// path on the remaining floor(n/2) vertices. Vertex 0 is a generic clique
// vertex (a valid origin per the proposition); the far end of the path is
// vertex n-1.
func Lollipop(n int) *CSR {
	if n < 4 {
		panic("graph: Lollipop requires n >= 4")
	}
	k := (n + 1) / 2
	b := NewBuilder(fmt.Sprintf("lollipop-%d", n), n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := k - 1; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	// Lollipop(4) degenerates to P_4 and keeps detection for the path
	// kernel upgrade; every larger lollipop is irregular.
	if n >= 5 {
		b.hint = func(g *CSR) Kernel { return csrKernel{g} }
	}
	return b.MustBuild()
}

// LollipopPathEnd returns the vertex at the far end of the lollipop path.
func LollipopPathEnd(n int) int { return n - 1 }

// LollipopPathMid returns the vertex half way down the lollipop's path,
// the target w in the proof of Proposition 5.16.
func LollipopPathMid(n int) int {
	k := (n + 1) / 2
	return k - 1 + (n-k+1)/2
}

// CliqueWithHair returns G1 of Proposition 2.1: the complete graph on
// n-1 vertices {0..n-2} with an extra "hair tip" vertex n-1 attached by a
// single edge to vertex 0. The proposition's origin is vertex 0.
func CliqueWithHair(n int) *CSR {
	if n < 3 {
		panic("graph: CliqueWithHair requires n >= 3")
	}
	b := NewBuilder(fmt.Sprintf("clique+hair-%d", n), n)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n-1; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(0, n-1)
	b.hint = func(g *CSR) Kernel { return csrKernel{g} }
	return b.MustBuild()
}

// HairTip returns the pendant vertex of CliqueWithHair and
// CliqueWithHairOnPimple.
func HairTip(n int) int { return n - 1 }

// CliqueWithHairOnPimple returns G2 of Proposition 2.1: a clique on n-2
// vertices {0..n-3}, a "pimple" vertex v = n-2 adjacent to h-1 clique
// vertices, and the hair tip v* = n-1 attached to v by a single edge. The
// proposition chooses h = n/log n and starts the process at v.
func CliqueWithHairOnPimple(n, h int) *CSR {
	if n < 5 || h < 2 || h > n-2 {
		panic("graph: CliqueWithHairOnPimple requires n >= 5 and 2 <= h <= n-2")
	}
	b := NewBuilder(fmt.Sprintf("clique+pimple-%d-h%d", n, h), n)
	for i := 0; i < n-2; i++ {
		for j := i + 1; j < n-2; j++ {
			b.AddEdge(i, j)
		}
	}
	v := n - 2
	for i := 0; i < h-1; i++ {
		b.AddEdge(v, i)
	}
	b.AddEdge(v, n-1)
	b.hint = func(g *CSR) Kernel { return csrKernel{g} }
	return b.MustBuild()
}

// PimpleVertex returns the pimple vertex v of CliqueWithHairOnPimple, the
// origin used in Proposition 2.1.
func PimpleVertex(n int) int { return n - 2 }

// BinaryTreeWithPath returns the counterexample tree of Proposition 3.8: a
// complete binary tree on 2^levels - 1 vertices with a path of pathLen
// extra vertices attached to the root. Tree vertices keep heap order
// (root 0); path vertices are 2^levels-1 .. 2^levels-1+pathLen-1, with the
// far endpoint last.
func BinaryTreeWithPath(levels, pathLen int) *CSR {
	if levels < 1 || pathLen < 1 {
		panic("graph: BinaryTreeWithPath requires levels >= 1 and pathLen >= 1")
	}
	t := 1<<levels - 1
	n := t + pathLen
	b := NewBuilder(fmt.Sprintf("bintree+path-%d+%d", t, pathLen), n)
	for v := 1; v < t; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	b.AddEdge(0, t)
	for i := t; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	// levels == 1 degenerates to a pure path and keeps detection.
	if levels >= 2 {
		b.hint = func(g *CSR) Kernel { return csrKernel{g} }
	}
	return b.MustBuild()
}
