package graph

import (
	"fmt"
	"math/bits"
	"sort"

	"dispersion/internal/rng"
)

// Implicit is the adjacency-free Graph backend: a generated family whose
// kernel, degrees, and connectivity are pure arithmetic. No edge is ever
// stored, so an Implicit graph costs O(1) memory regardless of n and the
// whole simulation runs in O(particles) — the regime that makes
// million-to-hundred-million-vertex dispersion jobs feasible.
//
// Every implicit kernel obeys the same draw contract as the CSR kernels:
// a step draws exactly one bounded variate (none at degree one) and maps
// the drawn index i to the i-th neighbour in sorted order, so implicit
// streams are bit-identical to the streams of a CSR-built twin of the
// same family. The property suite pins this at small n.
type Implicit struct {
	name      string
	n         int
	kernel    closedForm
	connected bool
}

// N returns the number of vertices.
func (g *Implicit) N() int { return g.n }

// Name returns the human-readable family label.
func (g *Implicit) Name() string { return g.name }

// Degree returns the degree of vertex v, computed from the closed form.
func (g *Implicit) Degree(v int) int { return int(g.kernel.degree(int32(v))) }

// Kernel returns the family's arithmetic step kernel.
func (g *Implicit) Kernel() Kernel { return g.kernel }

// IsConnected reports whether the graph is connected; for implicit
// families the answer is known analytically at construction time.
func (g *Implicit) IsConnected() bool { return g.connected }

// HasEdge reports whether {u, v} is an edge, by scanning u's closed-form
// neighbour list (O(deg) — implicit degrees are small constants).
func (g *Implicit) HasEdge(u, v int) bool {
	d := g.kernel.degree(int32(u))
	for i := int32(0); i < d; i++ {
		if g.kernel.nth(int32(u), i) == int32(v) {
			return true
		}
	}
	return false
}

// ImplicitComplete returns K_n as an implicit graph (n >= 2).
func ImplicitComplete(n int) *Implicit {
	if n < 2 {
		panic("graph: ImplicitComplete requires n >= 2")
	}
	return &Implicit{
		name:      fmt.Sprintf("complete-%d", n),
		n:         n,
		kernel:    completeKernel{n: int32(n)},
		connected: true,
	}
}

// ImplicitCycle returns C_n as an implicit graph (n >= 3).
func ImplicitCycle(n int) *Implicit {
	if n < 3 {
		panic("graph: ImplicitCycle requires n >= 3")
	}
	return &Implicit{
		name:      fmt.Sprintf("cycle-%d", n),
		n:         n,
		kernel:    cycleKernel{n: int32(n)},
		connected: true,
	}
}

// ImplicitPath returns P_n as an implicit graph (n >= 2).
func ImplicitPath(n int) *Implicit {
	if n < 2 {
		panic("graph: ImplicitPath requires n >= 2")
	}
	return &Implicit{
		name:      fmt.Sprintf("path-%d", n),
		n:         n,
		kernel:    pathKernel{n: int32(n)},
		connected: true,
	}
}

// ImplicitHypercube returns Q_k as an implicit graph (1 <= k <= 30).
func ImplicitHypercube(k int) *Implicit {
	if k < 1 || k > 30 {
		panic("graph: ImplicitHypercube requires 1 <= k <= 30")
	}
	return &Implicit{
		name:      fmt.Sprintf("hypercube-%d", 1<<k),
		n:         1 << k,
		kernel:    hypercubeKernel{k: int32(k)},
		connected: true,
	}
}

// maxTorusDims bounds the effective (side >= 3) dimensions of an implicit
// torus so a step's candidate buffer fits on the stack.
const maxTorusDims = 8

// ImplicitTorus returns the d-dimensional torus with the given side
// lengths as an implicit graph, indexed in row-major order exactly like
// Grid(sides, true). Sides of length 1 are allowed and contribute no
// edges; sides of length 2 would create parallel edges and are rejected;
// at least one side must be >= 3 and at most maxTorusDims may be.
func ImplicitTorus(sides []int) (*Implicit, error) {
	n, eff := 1, 0
	for _, s := range sides {
		if s < 1 {
			return nil, fmt.Errorf("graph: torus sides must be >= 1, got %d", s)
		}
		if s == 2 {
			return nil, fmt.Errorf("graph: torus with side 2 would create parallel edges")
		}
		if s >= 3 {
			eff++
		}
		if n > (1<<31-1)/s {
			return nil, fmt.Errorf("graph: torus vertex count overflows int32")
		}
		n *= s
	}
	if eff == 0 {
		return nil, fmt.Errorf("graph: torus needs at least one side >= 3")
	}
	if eff > maxTorusDims {
		return nil, fmt.Errorf("graph: torus supports at most %d effective dimensions, got %d", maxTorusDims, eff)
	}
	g := &Implicit{
		name:      fmt.Sprintf("torus-%dd-%d", len(sides), n),
		n:         n,
		connected: true,
	}
	if eff == 1 {
		// One effective dimension degenerates to the canonical cycle
		// (vertices are consecutively labelled because the other sides
		// are 1), and C_n's dedicated kernel is faster.
		g.kernel = cycleKernel{n: int32(n)}
		return g, nil
	}
	k := torusKernel{n: int32(n)}
	stride := 1
	for d := len(sides) - 1; d >= 0; d-- {
		if sides[d] >= 3 {
			k.sides = append(k.sides, int32(sides[d]))
			k.strides = append(k.strides, int32(stride))
		}
		stride *= sides[d]
	}
	k.deg = int32(2 * eff)
	g.kernel = k
	return g, nil
}

// maxCirculantOffsets bounds the offset set of an implicit circulant so a
// step's candidate buffer fits on the stack.
const maxCirculantOffsets = 16

// ImplicitCirculant returns the circulant graph C_n(S) as an implicit
// graph: vertex v is adjacent to v±s (mod n) for every offset s in S.
// Offsets must be distinct and in [1, n/2]; an offset with 2s = n
// contributes a single neighbour. The graph is connected iff
// gcd(n, s_1, ..., s_k) = 1.
func ImplicitCirculant(n int, offsets []int) (*Implicit, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: circulant requires n >= 3, got %d", n)
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: circulant requires at least one offset")
	}
	if len(offsets) > maxCirculantOffsets {
		return nil, fmt.Errorf("graph: circulant supports at most %d offsets, got %d", maxCirculantOffsets, len(offsets))
	}
	offs := make([]int, len(offsets))
	copy(offs, offsets)
	sort.Ints(offs)
	k := circulantKernel{n: int32(n)}
	gcd := n
	for i, s := range offs {
		if s < 1 || 2*s > n {
			return nil, fmt.Errorf("graph: circulant offset %d out of range [1, %d]", s, n/2)
		}
		if i > 0 && offs[i-1] == s {
			return nil, fmt.Errorf("graph: duplicate circulant offset %d", s)
		}
		k.offs = append(k.offs, int32(s))
		if 2*s == n {
			k.deg++
		} else {
			k.deg += 2
		}
		for s != 0 {
			gcd, s = s, gcd%s
		}
	}
	name := fmt.Sprintf("circulant-%d", n)
	for _, s := range offs {
		name += fmt.Sprintf("+%d", s)
	}
	return &Implicit{name: name, n: n, kernel: k, connected: gcd == 1}, nil
}

// maxRRegularDegree bounds the degree of an implicit random-regular graph
// so a step's candidate buffer fits on the stack.
const maxRRegularDegree = 32

// ImplicitRandomRegular returns a random d-regular graph on n vertices as
// an implicit graph, sampled as the union of d/2 independent seeded
// Hamiltonian cycles: cycle j visits the vertices in the order of a
// Feistel pseudorandom permutation keyed by (seed, j), so the neighbours
// of v are recovered in O(d) arithmetic from the permutation and its
// inverse — no adjacency, no rejection sampling, connected by
// construction. d must be even, 2 <= d <= maxRRegularDegree, n >= 3.
//
// Unlike RandomRegular (configuration model with rejection), the union
// of cycles may repeat an edge with probability O(d²/n); the walk then
// behaves as on a multigraph, stepping to a repeated neighbour with
// proportionally higher probability. At the million-vertex scales this
// backend targets the effect is negligible, and Materialize reports the
// collision explicitly if a CSR twin is requested.
func ImplicitRandomRegular(n, d int, seed uint64) (*Implicit, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: implicit random-regular requires n >= 3, got %d", n)
	}
	if d < 2 || d%2 != 0 || d > maxRRegularDegree {
		return nil, fmt.Errorf("graph: implicit random-regular requires even d in [2, %d], got %d", maxRRegularDegree, d)
	}
	k := rregKernel{n: int32(n), deg: int32(d)}
	for j := 0; j < d/2; j++ {
		k.perms = append(k.perms, newFeistel(n, splitmix(seed, uint64(j))))
	}
	return &Implicit{
		name:      fmt.Sprintf("rregular-%d-d%d-s%d", n, d, seed),
		n:         n,
		kernel:    k,
		connected: true,
	}, nil
}

// Materialize returns a CSR twin of g: the same vertex set and edges in
// sorted-CSR form. A CSR graph is returned as-is; an implicit graph is
// rebuilt edge by edge from its closed form, which costs the O(n·d)
// memory the implicit backend exists to avoid — intended for small-n
// verification twins and the adjacency-hungry analytics (spectra,
// diameters) that have no implicit form. An implicit random-regular
// sample whose cycles collided on an edge is reported as a duplicate-edge
// error.
func Materialize(g Graph) (*CSR, error) {
	if c, ok := g.(*CSR); ok {
		return c, nil
	}
	if w, ok := g.(*WeightedCSR); ok {
		return w.CSR(), nil
	}
	cf, ok := g.Kernel().(closedForm)
	if !ok {
		return nil, fmt.Errorf("graph: cannot materialize %s: kernel %q has no closed form", g.Name(), g.Kernel().Kind())
	}
	b := NewBuilder(g.Name(), g.N())
	for v := 0; v < g.N(); v++ {
		d := cf.degree(int32(v))
		for i := int32(0); i < d; i++ {
			if u := cf.nth(int32(v), i); int32(v) < u {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build()
}

// insertSorted places x into the sorted prefix buf[:i] of a candidate
// buffer, the O(d) insertion step shared by the implicit kernels (d is a
// small constant, so insertion sort beats anything with overhead).
func insertSorted(buf []int32, i int, x int32) {
	j := i
	for j > 0 && buf[j-1] > x {
		buf[j] = buf[j-1]
		j--
	}
	buf[j] = x
}

// torusKernel is the implicit kernel for d-dimensional tori with >= 2
// effective dimensions: the 2d candidate neighbours (v ± stride with
// wraparound per dimension) are computed arithmetically and
// insertion-sorted on the stack, so the drawn index maps to sorted-CSR
// order without any adjacency.
type torusKernel struct {
	n       int32
	sides   []int32
	strides []int32
	deg     int32
}

// Kind returns "torus".
func (torusKernel) Kind() string { return "torus" }

// neighbors fills buf with the sorted neighbour list of v.
func (k torusKernel) neighbors(v int32, buf []int32) {
	i := 0
	for d := range k.sides {
		side, stride := k.sides[d], k.strides[d]
		c := (v / stride) % side
		up := v + stride
		if c == side-1 {
			up = v - (side-1)*stride
		}
		down := v - stride
		if c == 0 {
			down = v + (side-1)*stride
		}
		insertSorted(buf, i, up)
		i++
		insertSorted(buf, i, down)
		i++
	}
}

// Step returns a uniformly random torus neighbour of v.
func (k torusKernel) Step(v int32, r *rng.Source) int32 {
	var buf [2 * maxTorusDims]int32
	k.neighbors(v, buf[:])
	return buf[r.Int31n(k.deg)]
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k torusKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one torus move each, rebuilding
// the stack candidate buffer per slot exactly as Step does per step.
func (k torusKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	un := uint64(k.deg)
	thresh := -un % un
	var buf [2 * maxTorusDims]int32
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		for lo < thresh {
			hi, lo = bits.Mul64(lane.Uint64(sj), un)
		}
		k.neighbors(pos[j], buf[:])
		pos[j] = buf[hi]
	}
}

func (k torusKernel) nth(v, i int32) int32 {
	var buf [2 * maxTorusDims]int32
	k.neighbors(v, buf[:])
	return buf[i]
}

func (k torusKernel) degree(int32) int32 { return k.deg }

// circulantKernel is the implicit kernel for circulant graphs C_n(S):
// candidates v ± s (mod n) per offset s, one candidate when 2s = n,
// insertion-sorted on the stack.
type circulantKernel struct {
	n    int32
	offs []int32
	deg  int32
}

// Kind returns "circulant".
func (circulantKernel) Kind() string { return "circulant" }

// neighbors fills buf with the sorted neighbour list of v.
func (k circulantKernel) neighbors(v int32, buf []int32) {
	i := 0
	for _, s := range k.offs {
		up := v + s
		if up >= k.n {
			up -= k.n
		}
		insertSorted(buf, i, up)
		i++
		if 2*s == k.n {
			continue
		}
		down := v - s
		if down < 0 {
			down += k.n
		}
		insertSorted(buf, i, down)
		i++
	}
}

// Step returns a uniformly random circulant neighbour of v. Degree-one
// circulants (single offset 2s = n) move without consuming randomness,
// matching the generic walk's degree-one shortcut.
func (k circulantKernel) Step(v int32, r *rng.Source) int32 {
	var buf [2 * maxCirculantOffsets]int32
	k.neighbors(v, buf[:])
	if k.deg == 1 {
		return buf[0]
	}
	return buf[r.Int31n(k.deg)]
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k circulantKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one circulant move each;
// degree-one circulants move without a draw, exactly as Step does.
func (k circulantKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	un := uint64(k.deg)
	thresh := -un % un
	var buf [2 * maxCirculantOffsets]int32
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		k.neighbors(pos[j], buf[:])
		if k.deg == 1 {
			pos[j] = buf[0]
			continue
		}
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		for lo < thresh {
			hi, lo = bits.Mul64(lane.Uint64(sj), un)
		}
		pos[j] = buf[hi]
	}
}

func (k circulantKernel) nth(v, i int32) int32 {
	var buf [2 * maxCirculantOffsets]int32
	k.neighbors(v, buf[:])
	return buf[i]
}

func (k circulantKernel) degree(int32) int32 { return k.deg }

// rregKernel is the implicit kernel for seeded random-regular graphs:
// the neighbours of v via Hamiltonian cycle j are π_j(pos±1 mod n) where
// pos = π_j⁻¹(v), computed from the Feistel permutation and its inverse;
// candidates from all d/2 cycles are insertion-sorted on the stack
// (duplicates kept — see ImplicitRandomRegular on multigraph semantics).
type rregKernel struct {
	n     int32
	deg   int32
	perms []feistel
}

// Kind returns "rregular".
func (rregKernel) Kind() string { return "rregular" }

// neighbors fills buf with the sorted neighbour list of v.
func (k rregKernel) neighbors(v int32, buf []int32) {
	n := uint64(k.n)
	i := 0
	for p := range k.perms {
		pos := k.perms[p].invert(uint64(v))
		next := pos + 1
		if next == n {
			next = 0
		}
		prev := pos
		if prev == 0 {
			prev = n
		}
		prev--
		insertSorted(buf, i, int32(k.perms[p].apply(next)))
		i++
		insertSorted(buf, i, int32(k.perms[p].apply(prev)))
		i++
	}
}

// Step returns a uniformly random neighbour of v in the cycle union.
func (k rregKernel) Step(v int32, r *rng.Source) int32 {
	var buf [maxRRegularDegree]int32
	k.neighbors(v, buf[:])
	return buf[r.Int31n(k.deg)]
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget).
func (k rregKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one cycle-union move each.
func (k rregKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	un := uint64(k.deg)
	thresh := -un % un
	var buf [maxRRegularDegree]int32
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		for lo < thresh {
			hi, lo = bits.Mul64(lane.Uint64(sj), un)
		}
		k.neighbors(pos[j], buf[:])
		pos[j] = buf[hi]
	}
}

func (k rregKernel) nth(v, i int32) int32 {
	var buf [maxRRegularDegree]int32
	k.neighbors(v, buf[:])
	return buf[i]
}

func (k rregKernel) degree(int32) int32 { return k.deg }

// splitmix advances a SplitMix64 state by a lane index and finalizes it,
// deriving the per-cycle permutation seeds from the graph seed.
func splitmix(seed, lane uint64) uint64 {
	z := seed + (lane+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
