package graph

import "fmt"

// Cartesian returns the Cartesian product G □ H: vertices are pairs
// (u, h) indexed as u*H.N()+h, with (u,h) ~ (u',h') iff u=u' and h~h', or
// h=h' and u~u'. Grids are products of paths, tori products of cycles,
// and the hypercube is an iterated product of K_2 — the constructor is
// validated against those identities in tests.
func Cartesian(g, h *CSR) *CSR {
	gn, hn := g.N(), h.N()
	b := NewBuilder(fmt.Sprintf("(%s)x(%s)", g.Name(), h.Name()), gn*hn)
	for u := 0; u < gn; u++ {
		base := u * hn
		for x := 0; x < hn; x++ {
			for _, y := range h.Neighbors(x) {
				if x < int(y) {
					b.AddEdge(base+x, base+int(y))
				}
			}
		}
	}
	for x := 0; x < hn; x++ {
		for u := 0; u < gn; u++ {
			for _, v := range g.Neighbors(u) {
				if u < int(v) {
					b.AddEdge(u*hn+x, int(v)*hn+x)
				}
			}
		}
	}
	return b.MustBuild()
}

// Comb returns the comb graph on a spine of length spine with a tooth
// (path) of length tooth hanging from every spine vertex — the comb
// lattice of the IDLA literature ([23] in the paper), a useful stress
// case because hitting times are dominated by teeth. Vertices: spine is
// 0..spine-1; tooth j of spine vertex i occupies spine + i*tooth + j.
func Comb(spine, tooth int) *CSR {
	if spine < 1 || tooth < 0 {
		panic("graph: Comb requires spine >= 1, tooth >= 0")
	}
	n := spine * (tooth + 1)
	b := NewBuilder(fmt.Sprintf("comb-%dx%d", spine, tooth), n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 0; i < spine; i++ {
		prev := i
		for j := 0; j < tooth; j++ {
			cur := spine + i*tooth + j
			b.AddEdge(prev, cur)
			prev = cur
		}
	}
	return b.MustBuild()
}

// Barbell returns two cliques of size k joined by a path of length
// bridge (bridge >= 1 edges, bridge-1 intermediate vertices): the classic
// slow-mixing gadget complementing the lollipop. Vertices 0..k-1 form the
// first clique, the last k vertices the second.
func Barbell(k, bridge int) *CSR {
	if k < 2 || bridge < 1 {
		panic("graph: Barbell requires k >= 2, bridge >= 1")
	}
	n := 2*k + bridge - 1
	b := NewBuilder(fmt.Sprintf("barbell-%d-%d", k, bridge), n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
			b.AddEdge(n-1-i, n-1-j)
		}
	}
	// Path from clique 1's vertex k-1 through the bridge to clique 2's
	// vertex n-k.
	for i := k - 1; i < n-k; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}
