package graph

// feistel is a seeded pseudorandom permutation of [0, n) in O(1) memory:
// a 4-round balanced Feistel network over the smallest even-bit-width
// power-of-two domain covering n, shrunk to [0, n) by cycle-walking
// (re-applying the network while the image lands outside [0, n) — the
// domain is < 4n, so the expected walk length is below 4). Both
// directions are computable, which is what lets rregKernel recover a
// vertex's position in a Hamiltonian cycle without storing it. This is a
// simulation-grade permutation (keyed murmur-style round mixing), not a
// cryptographic one.
type feistel struct {
	n    uint64
	half uint // bits per Feistel half; domain is 1 << (2*half)
	mask uint64
	keys [4]uint64
}

// newFeistel returns the permutation of [0, n) keyed by seed. n >= 1.
func newFeistel(n int, seed uint64) feistel {
	width := 2
	for uint64(1)<<width < uint64(n) {
		width += 2
	}
	f := feistel{n: uint64(n), half: uint(width / 2)}
	f.mask = 1<<f.half - 1
	for i := range f.keys {
		f.keys[i] = splitmix(seed, uint64(i))
	}
	return f
}

// round is the keyed mixing function applied to one Feistel half.
func (f *feistel) round(r, key uint64) uint64 {
	z := r + key
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z & f.mask
}

// permute runs the network forward once over the power-of-two domain.
func (f *feistel) permute(x uint64) uint64 {
	l, r := x>>f.half, x&f.mask
	for i := 0; i < 4; i++ {
		l, r = r, l^f.round(r, f.keys[i])
	}
	return l<<f.half | r
}

// unpermute inverts permute.
func (f *feistel) unpermute(y uint64) uint64 {
	l, r := y>>f.half, y&f.mask
	for i := 3; i >= 0; i-- {
		l, r = r^f.round(l, f.keys[i]), l
	}
	return l<<f.half | r
}

// apply returns π(x) for x in [0, n), cycle-walking off-domain images.
func (f *feistel) apply(x uint64) uint64 {
	for {
		x = f.permute(x)
		if x < f.n {
			return x
		}
	}
}

// invert returns π⁻¹(y) for y in [0, n); the inverse walk retraces the
// forward walk's off-domain excursion in reverse, so invert(apply(x)) = x.
func (f *feistel) invert(y uint64) uint64 {
	for {
		y = f.unpermute(y)
		if y < f.n {
			return y
		}
	}
}
