package graph

import (
	"testing"

	"dispersion/internal/rng"
)

// kernelCases enumerates one graph per kernel family plus adversarial
// near-misses that must fall back to a slower kernel.
func kernelCases(t *testing.T) []struct {
	name string
	g    *CSR
	kind string
} {
	t.Helper()
	random, err := RandomRegular(64, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := GNP(48, 0.2, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		g    *CSR
		kind string
	}{
		{"complete-2", Complete(2), "complete"},
		{"complete-3", Complete(3), "complete"},
		{"complete-17", Complete(17), "complete"},
		{"complete-64", Complete(64), "complete"},
		{"cycle-4", Cycle(4), "cycle"},
		{"cycle-5", Cycle(5), "cycle"},
		{"cycle-97", Cycle(97), "cycle"},
		{"path-2", Path(2), "complete"}, // P_2 = K_2
		{"path-3", Path(3), "path"},
		{"path-63", Path(63), "path"},
		{"hypercube-1", Hypercube(1), "complete"}, // Q_1 = K_2
		// Small hypercubes stay below the closed-form footprint gate and
		// take the offsets-free regular kernel instead.
		{"hypercube-2", Hypercube(2), "regular"},
		{"hypercube-5", Hypercube(5), "regular"},
		{"hypercube-9", Hypercube(9), "regular"},
		{"torus-2d", Grid([]int{8, 8}, true), "regular"},
		{"torus-3d", Grid([]int{4, 4, 4}, true), "regular"},
		{"random-regular", random, "regular"},
		{"star", Star(33), "csr"},
		{"grid-open", Grid([]int{7, 5}, false), "csr"},
		{"bintree", CompleteBinaryTree(5), "csr"},
		{"lollipop", Lollipop(20), "csr"},
		{"clique+hair", CliqueWithHair(16), "csr"},
		{"gnp", gnp, "csr"},
	}
}

// Kernel selection must pick the intended family for canonical
// constructions and fall back for everything else.
func TestKernelSelection(t *testing.T) {
	for _, tc := range kernelCases(t) {
		if got := tc.g.Kernel().Kind(); got != tc.kind {
			t.Errorf("%s: kernel kind = %q, want %q", tc.name, got, tc.kind)
		}
	}
	// K_3 is also C_3; selection must be deterministic (complete wins) and
	// either form must agree with the CSR list anyway.
	if got := Cycle(3).Kernel().Kind(); got != "complete" {
		t.Errorf("cycle-3 kernel kind = %q, want %q (K_3 = C_3)", got, "complete")
	}
	// Above the footprint gate the hypercube goes arithmetic.
	if got := Hypercube(16).Kernel().Kind(); got != "hypercube" {
		t.Errorf("hypercube-16 kernel kind = %q, want %q", got, "hypercube")
	}
}

// The hypercube closed form must reproduce the sorted CSR adjacency for
// every dimension, whether or not selection would adopt it (small cubes
// are gated to the regular kernel purely for speed).
func TestHypercubeClosedFormAllDimensions(t *testing.T) {
	for k := 1; k <= 10; k++ {
		g := Hypercube(k)
		hk := hypercubeKernel{k: int32(k)}
		if !matchesClosedForm(g, hk) {
			t.Fatalf("Q_%d: closed form disagrees with CSR adjacency", k)
		}
		rk, rg := rng.New(uint64(k)), rng.New(uint64(k))
		vk, vg := int32(0), int32(0)
		for step := 0; step < 2000; step++ {
			vk = hk.Step(vk, rk)
			vg = genericStep(g, vg, rg)
			if vk != vg {
				t.Fatalf("Q_%d: step %d diverged: kernel %d, generic %d", k, step, vk, vg)
			}
		}
		if rk.Uint64() != rg.Uint64() {
			t.Fatalf("Q_%d: kernel consumed a different draw count", k)
		}
	}
}

// Every closed-form kernel's nth must reproduce the sorted CSR neighbour
// list index by index (the property the ISSUE pins the whole layer to).
func TestClosedFormMatchesCSRList(t *testing.T) {
	for _, tc := range kernelCases(t) {
		cf, ok := tc.g.Kernel().(closedForm)
		if !ok {
			continue
		}
		for v := 0; v < tc.g.N(); v++ {
			if d := cf.degree(int32(v)); d != int32(tc.g.Degree(v)) {
				t.Fatalf("%s: degree(%d) = %d, want %d", tc.name, v, d, tc.g.Degree(v))
			}
			for i := int32(0); i < int32(tc.g.Degree(v)); i++ {
				if got, want := cf.nth(int32(v), i), tc.g.Neighbor(v, i); got != want {
					t.Fatalf("%s: nth(%d,%d) = %d, want CSR neighbour %d",
						tc.name, v, i, got, want)
				}
			}
		}
	}
}

// genericStep is the historical two-lookup step the kernels must be
// draw-for-draw identical to.
func genericStep(g *CSR, v int32, r *rng.Source) int32 {
	d := int32(g.Degree(int(v)))
	if d == 1 {
		return g.Neighbor(int(v), 0)
	}
	return g.Neighbor(int(v), r.Int31n(d))
}

// Kernel walks must be bit-identical to generic CSR walks: same vertices
// visited AND the same number of random draws consumed (verified by
// checking the two sources stay in lockstep).
func TestKernelStepBitIdentity(t *testing.T) {
	for _, tc := range kernelCases(t) {
		kern := tc.g.Kernel()
		gen := tc.g.GenericKernel()
		rk := rng.New(42)
		rg := rng.New(42)
		rr := rng.New(42)
		vk, vg, vr := int32(0), int32(0), int32(0)
		for step := 0; step < 5000; step++ {
			vk = kern.Step(vk, rk)
			vg = gen.Step(vg, rg)
			vr = genericStep(tc.g, vr, rr)
			if vk != vg || vk != vr {
				t.Fatalf("%s: step %d diverged: kernel %d, fused %d, generic %d",
					tc.name, step, vk, vg, vr)
			}
			if a, b, c := rk.Uint64(), rg.Uint64(), rr.Uint64(); a != b || a != c {
				t.Fatalf("%s: step %d consumed different draw counts", tc.name, step)
			}
			// Resync after the probe draw (all three consumed it).
		}
	}
}

// Kernel steps from every start vertex must produce uniform neighbours
// drawn by the same index mapping: compare one step from each vertex under
// identical sources.
func TestKernelStepEveryVertex(t *testing.T) {
	for _, tc := range kernelCases(t) {
		kern := tc.g.Kernel()
		for v := 0; v < tc.g.N(); v++ {
			if tc.g.Degree(v) == 0 {
				continue
			}
			for trial := uint64(0); trial < 16; trial++ {
				rk, rg := rng.New(trial), rng.New(trial)
				got := kern.Step(int32(v), rk)
				want := genericStep(tc.g, int32(v), rg)
				if got != want {
					t.Fatalf("%s: Step(%d) = %d, want %d (seed %d)",
						tc.name, v, got, want, trial)
				}
				if rk.Uint64() != rg.Uint64() {
					t.Fatalf("%s: Step(%d) consumed a different draw count", tc.name, v)
				}
			}
		}
	}
}

// WalkUntilVacant must be draw-for-draw identical to the equivalent
// step-by-step loop, for both the simple and lazy walks, across random
// occupancy patterns.
func TestWalkUntilVacantBitIdentity(t *testing.T) {
	for _, tc := range kernelCases(t) {
		kern := tc.g.Kernel()
		n := tc.g.N()
		for _, lazy := range []bool{false, true} {
			for trial := uint64(0); trial < 20; trial++ {
				// Random occupancy with at least one vacant vertex.
				occGen := rng.New(1000 + trial)
				occ := make([]uint8, n)
				const epoch = 3
				for v := range occ {
					if occGen.Bool() {
						occ[v] = epoch
					}
				}
				occ[occGen.Intn(n)] = 0
				start := int32(occGen.Intn(n))
				if tc.g.Degree(int(start)) == 0 {
					continue
				}

				rw, rs := rng.New(trial), rng.New(trial)
				gotV, gotSteps := kern.WalkUntilVacant(start, lazy, occ, epoch, 1<<40, rw)
				// Reference: the explicit loop over single steps.
				v, steps := start, int64(0)
				for occ[v] == epoch {
					if !lazy || !rs.Bool() {
						v = genericStep(tc.g, v, rs)
					}
					steps++
				}
				if gotV != v || gotSteps != steps {
					t.Fatalf("%s (lazy=%v, trial %d): walk = (%d, %d), want (%d, %d)",
						tc.name, lazy, trial, gotV, gotSteps, v, steps)
				}
				if rw.Uint64() != rs.Uint64() {
					t.Fatalf("%s (lazy=%v, trial %d): walk consumed a different draw count",
						tc.name, lazy, trial)
				}
			}
		}
	}
}

// A walk that exhausts its budget stops after exactly budget steps, even
// when the last step reached a vacant vertex (the MaxSteps truncation
// contract of the processes).
func TestWalkUntilVacantBudget(t *testing.T) {
	for _, tc := range kernelCases(t) {
		kern := tc.g.Kernel()
		n := tc.g.N()
		// Fully occupied: the walk can never settle, so it must stop on
		// the budget exactly.
		occ := make([]uint8, n)
		for v := range occ {
			occ[v] = 1
		}
		for _, budget := range []int64{1, 2, 7} {
			r := rng.New(9)
			_, steps := kern.WalkUntilVacant(0, false, occ, 1, budget, r)
			if steps != budget {
				t.Fatalf("%s: budget %d walk took %d steps", tc.name, budget, steps)
			}
		}
		// A walk starting on a vacant vertex takes zero steps regardless
		// of budget.
		occ[0] = 0
		r := rng.New(9)
		if v, steps := kern.WalkUntilVacant(0, false, occ, 1, 5, r); v != 0 || steps != 0 {
			t.Fatalf("%s: vacant start walked to (%d, %d)", tc.name, v, steps)
		}
	}
}

// Connectivity is cached at Build time and must match a fresh BFS.
func TestConnectedCache(t *testing.T) {
	if !Complete(5).IsConnected() {
		t.Error("K_5 reported disconnected")
	}
	b := NewBuilder("two-edges", 4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if g.IsConnected() {
		t.Error("disjoint edges reported connected")
	}
}
