package graph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dispersion/internal/rng"
)

// WeightedCSR is an undirected graph with positive edge weights, walked
// under the weighted random-walk law P(u→v) ∝ w({u,v}). The structure is
// a plain CSR (sorted rows, simple graph); on top of it, Build constructs
// one Walker alias table per vertex, so a weighted neighbour draw costs
// O(1) — one bounded index draw plus one acceptance coin — regardless of
// degree, in both the scalar and the batched lane kernels.
//
// Alias-table layout: slot i of vertex v's adjacency row carries an
// acceptance probability prob[i] and an alternative vertex alt[i]; a draw
// picks a uniform slot i and takes the slot's own neighbour with
// probability prob[i], its alias otherwise. The tables are built by
// Vose's O(d) method at Build time and are exact up to float rounding.
//
// WeightedCSR implements Graph and EdgeChecker, so every registered
// dispersion process runs on weighted backends unchanged.
type WeightedCSR struct {
	csr    *CSR
	w      []float64 // edge weight per adjacency slot, aligned with csr.adj
	prob   []float64 // alias acceptance probability per adjacency slot
	alt    []int32   // alias alternative vertex per adjacency slot
	kernel Kernel
}

var (
	_ Graph       = (*WeightedCSR)(nil)
	_ EdgeChecker = (*WeightedCSR)(nil)
)

// N returns the number of vertices.
func (g *WeightedCSR) N() int { return g.csr.N() }

// M returns the number of undirected edges.
func (g *WeightedCSR) M() int { return g.csr.M() }

// Name returns the human-readable family label.
func (g *WeightedCSR) Name() string { return g.csr.Name() }

// Degree returns the degree of vertex v.
func (g *WeightedCSR) Degree(v int) int { return g.csr.Degree(v) }

// Kernel returns the weighted alias step kernel selected at Build time.
func (g *WeightedCSR) Kernel() Kernel { return g.kernel }

// IsConnected reports whether the graph is connected (weights never
// disconnect: they are strictly positive).
func (g *WeightedCSR) IsConnected() bool { return g.csr.IsConnected() }

// HasEdge reports whether {u, v} is an edge.
func (g *WeightedCSR) HasEdge(u, v int) bool { return g.csr.HasEdge(u, v) }

// CSR returns the structural (unweighted) twin sharing this graph's
// vertex set and edges: what the spectral and exact analytics operate on
// when they ignore weights, and what Materialize returns for weighted
// backends.
func (g *WeightedCSR) CSR() *CSR { return g.csr }

// Neighbors returns the sorted neighbour list of v, aliasing internal
// storage.
func (g *WeightedCSR) Neighbors(v int) []int32 { return g.csr.Neighbors(v) }

// Weights returns the edge weights of v's neighbour list, aligned with
// Neighbors(v) and aliasing internal storage.
func (g *WeightedCSR) Weights(v int) []float64 {
	return g.w[g.csr.offsets[v]:g.csr.offsets[v+1]]
}

// WeightedBuilder accumulates weighted edges and produces an immutable
// WeightedCSR. Structural validity (range, self-loops, duplicates) is
// checked exactly as Builder does; weights must additionally be positive
// and finite.
type WeightedBuilder struct {
	n     int
	name  string
	edges []weightedEdge
}

type weightedEdge struct {
	u, v int32
	w    float64
}

// NewWeightedBuilder returns a WeightedBuilder for a graph with n
// vertices.
func NewWeightedBuilder(name string, n int) *WeightedBuilder {
	return &WeightedBuilder{n: n, name: name}
}

// AddEdge records the undirected edge {u, v} with weight w. Endpoint
// order is irrelevant; validity is checked at Build time.
func (b *WeightedBuilder) AddEdge(u, v int, w float64) {
	b.edges = append(b.edges, weightedEdge{u: int32(u), v: int32(v), w: w})
}

// Build validates the accumulated weighted edges, constructs the CSR
// structure, aligns the weights with the sorted rows, and builds the
// per-vertex Walker alias tables.
func (b *WeightedBuilder) Build() (*WeightedCSR, error) {
	sb := NewBuilder(b.name, b.n)
	for _, e := range b.edges {
		if !(e.w > 0) || math.IsInf(e.w, 1) {
			return nil, fmt.Errorf("graph: edge {%d,%d} weight %v (want positive and finite)", e.u, e.v, e.w)
		}
		sb.AddEdge(int(e.u), int(e.v))
	}
	csr, err := sb.Build()
	if err != nil {
		return nil, err
	}
	g := &WeightedCSR{
		csr:  csr,
		w:    make([]float64, len(csr.adj)),
		prob: make([]float64, len(csr.adj)),
		alt:  make([]int32, len(csr.adj)),
	}
	// Align each edge's weight with both sorted adjacency rows.
	for _, e := range b.edges {
		g.setWeight(e.u, e.v, e.w)
		g.setWeight(e.v, e.u, e.w)
	}
	for v := 0; v < b.n; v++ {
		g.buildAlias(v)
	}
	g.kernel = weightedKernel{g: g}
	return g, nil
}

// setWeight stores w in u's row slot for neighbour v (the row is sorted,
// so the slot is found by binary search).
func (g *WeightedCSR) setWeight(u, v int32, w float64) {
	off := g.csr.offsets[u]
	ns := g.csr.adj[off:g.csr.offsets[u+1]]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	g.w[off+int32(i)] = w
}

// buildAlias constructs vertex v's Walker alias table by Vose's method:
// scale the row's weights to mean 1, then pair each deficit slot with a
// surplus slot so every slot resolves a draw with at most one comparison.
func (g *WeightedCSR) buildAlias(v int) {
	off := int(g.csr.offsets[v])
	end := int(g.csr.offsets[v+1])
	d := end - off
	if d == 0 {
		return
	}
	var sum float64
	for _, w := range g.w[off:end] {
		sum += w
	}
	scaled := make([]float64, d)
	small := make([]int32, 0, d)
	large := make([]int32, 0, d)
	for i := 0; i < d; i++ {
		scaled[i] = g.w[off+i] * float64(d) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		g.prob[off+int(s)] = scaled[s]
		g.alt[off+int(s)] = g.csr.adj[off+int(l)]
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly 1 up to rounding; their alias is never taken.
	for _, i := range large {
		g.prob[off+int(i)] = 1
		g.alt[off+int(i)] = g.csr.adj[off+int(i)]
	}
	for _, i := range small {
		g.prob[off+int(i)] = 1
		g.alt[off+int(i)] = g.csr.adj[off+int(i)]
	}
}

// weightedKernel is the Walker alias step kernel: a weighted neighbour
// draw is one bounded slot draw plus one acceptance coin, so a step
// consumes exactly two variates at degree >= 2 (none at degree one, like
// every kernel).
type weightedKernel struct{ g *WeightedCSR }

// Kind returns "walias".
func (weightedKernel) Kind() string { return "walias" }

// Step returns a w-weighted random neighbour of v.
func (k weightedKernel) Step(v int32, r *rng.Source) int32 {
	g := k.g
	off := g.csr.offsets[v]
	d := g.csr.offsets[v+1] - off
	if d == 1 {
		return g.csr.adj[off]
	}
	i := off + r.Int31n(d)
	if r.Float64() < g.prob[i] {
		return g.csr.adj[i]
	}
	return g.alt[i]
}

// WalkUntilVacant walks v to the first vacant vertex (or the budget)
// under the weighted walk law.
func (k weightedKernel) WalkUntilVacant(v int32, lazy bool, occ []uint8, epoch uint8, budget int64, r *rng.Source) (int32, int64) {
	var steps int64
	for occ[v] == epoch {
		if !lazy || !r.Bool() {
			v = k.Step(v, r)
		}
		steps++
		if steps >= budget {
			break
		}
	}
	return v, steps
}

// StepLane advances the listed lane slots one weighted alias move each,
// with the same slot draw + acceptance coin law as Step on the lane
// streams.
func (k weightedKernel) StepLane(pos []int32, idx []int32, lazy bool, lane *rng.LaneSource) {
	g := k.g
	offsets, adj := g.csr.offsets, g.csr.adj
	for _, j := range idx {
		sj := int(j)
		if lazy && lane.Uint64(sj)&1 == 1 {
			continue
		}
		v := pos[j]
		off := offsets[v]
		d := offsets[v+1] - off
		if d == 1 {
			pos[j] = adj[off]
			continue
		}
		un := uint64(d)
		hi, lo := bits.Mul64(lane.Uint64(sj), un)
		if lo < un {
			thresh := -un % un
			for lo < thresh {
				hi, lo = bits.Mul64(lane.Uint64(sj), un)
			}
		}
		i := off + int32(hi)
		// Load both outcomes unconditionally and select: the three table
		// reads (prob, adj, alt) issue in parallel with no data-dependent
		// branch between them, so misses from different lane slots overlap
		// — on multi-MB alias tables this memory-level parallelism is the
		// lane's whole advantage over the scalar walk's serial miss chain.
		accept, alt := adj[i], g.alt[i]
		to := alt
		if float64(lane.Uint64(sj)>>11)*0x1p-53 < g.prob[i] {
			to = accept
		}
		pos[j] = to
	}
}

// WeightedComplete returns K_n with edge weight ((u+1)(v+1))^alpha — the
// degree-biased family: the walk leaves any vertex toward v with
// probability proportional to (v+1)^alpha, so alpha > 0 drags particles
// toward high labels, alpha < 0 toward low ones, and alpha = 0 recovers
// the uniform walk on K_n. n >= 2; alpha must be finite.
func WeightedComplete(n int, alpha float64) (*WeightedCSR, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: weighted complete requires n >= 2, got %d", n)
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("graph: weighted complete alpha %v (want finite)", alpha)
	}
	b := NewWeightedBuilder(fmt.Sprintf("wcomplete-%d-a%g", n, alpha), n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, math.Pow(float64(u+1)*float64(v+1), alpha))
		}
	}
	return b.Build()
}

// WeightedCycle returns C_n with alternating edge weights: edge
// {v, v+1 mod n} has weight bias when v is odd and 1 when v is even, so
// the walk is pulled across the heavy edges. bias = 1 recovers the
// uniform cycle walk. n >= 3; bias must be positive and finite.
func WeightedCycle(n int, bias float64) (*WeightedCSR, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: weighted cycle requires n >= 3, got %d", n)
	}
	if !(bias > 0) || math.IsInf(bias, 1) {
		return nil, fmt.Errorf("graph: weighted cycle bias %v (want positive and finite)", bias)
	}
	b := NewWeightedBuilder(fmt.Sprintf("wcycle-%d-b%g", n, bias), n)
	for v := 0; v < n; v++ {
		w := 1.0
		if v%2 == 1 {
			w = bias
		}
		b.AddEdge(v, (v+1)%n, w)
	}
	return b.Build()
}
