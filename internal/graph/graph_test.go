package graph

import (
	"testing"
	"testing/quick"

	"dispersion/internal/rng"
)

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("x", 3)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuilderRejectsDuplicateEdge(t *testing.T) {
	b := NewBuilder("x", 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder("x", 3)
	b.AddEdge(0, 3)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestBuilderEmptyGraph(t *testing.T) {
	b := NewBuilder("x", 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("zero-vertex graph accepted")
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	g := MustAny(t, Lollipop(11))
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(v)
		for i, u := range ns {
			if i > 0 && ns[i-1] >= u {
				t.Fatalf("neighbours of %d not strictly sorted: %v", v, ns)
			}
			if !g.HasEdge(int(u), v) {
				t.Fatalf("edge {%d,%d} not symmetric", v, u)
			}
		}
	}
}

// MustAny passes through a graph, failing the test on nil; it exists so
// table-driven tests read uniformly for fallible and infallible builders.
func MustAny(t *testing.T, g *CSR) *CSR {
	t.Helper()
	if g == nil {
		t.Fatal("nil graph")
	}
	return g
}

func TestFamilyInvariants(t *testing.T) {
	r := rng.New(1)
	rr, err := RandomRegular(20, 3, r)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	gnp, err := GNP(40, 0.3, r)
	if err != nil {
		t.Fatalf("GNP: %v", err)
	}
	cases := []struct {
		g         *CSR
		wantN     int
		wantM     int
		regular   bool
		bipartite bool
	}{
		{Path(10), 10, 9, false, true},
		{Cycle(10), 10, 10, true, true},
		{Cycle(11), 11, 11, true, false},
		{Complete(8), 8, 28, true, false},
		{Star(9), 9, 8, false, true},
		{Grid([]int{4, 5}, false), 20, 31, false, true},
		{Grid([]int{4, 4}, true), 16, 32, true, true},
		{Grid([]int{3, 3, 3}, true), 27, 81, true, false},
		{Hypercube(4), 16, 32, true, true},
		{CompleteBinaryTree(4), 15, 14, false, true},
		{Lollipop(11), 11, 20, false, false},
		{CliqueWithHair(10), 10, 37, false, false},
		{CliqueWithHairOnPimple(12, 4), 12, 49, false, false},
		{BinaryTreeWithPath(3, 4), 11, 10, false, true},
		{rr, 20, 30, true, false},
		{gnp, 40, gnp.M(), false, gnp.IsBipartite()},
	}
	for _, tc := range cases {
		g := tc.g
		if g.N() != tc.wantN {
			t.Errorf("%s: N = %d, want %d", g.Name(), g.N(), tc.wantN)
		}
		if g.M() != tc.wantM {
			t.Errorf("%s: M = %d, want %d", g.Name(), g.M(), tc.wantM)
		}
		if !g.IsConnected() {
			t.Errorf("%s: not connected", g.Name())
		}
		if g.IsRegular() != tc.regular {
			t.Errorf("%s: IsRegular = %v, want %v", g.Name(), g.IsRegular(), tc.regular)
		}
		if g.IsBipartite() != tc.bipartite {
			t.Errorf("%s: IsBipartite = %v, want %v", g.Name(), g.IsBipartite(), tc.bipartite)
		}
		if g.DegreeSum() != 2*g.M() {
			t.Errorf("%s: DegreeSum %d != 2M %d", g.Name(), g.DegreeSum(), 2*g.M())
		}
	}
}

func TestPathDegrees(t *testing.T) {
	g := Path(6)
	if g.Degree(0) != 1 || g.Degree(5) != 1 {
		t.Error("path endpoints should have degree 1")
	}
	for v := 1; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("interior path vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestCompleteDegrees(t *testing.T) {
	g := Complete(7)
	for v := 0; v < 7; v++ {
		if g.Degree(v) != 6 {
			t.Errorf("K_7 vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestStarStructure(t *testing.T) {
	g := Star(8)
	if g.Degree(0) != 7 {
		t.Errorf("star centre degree %d, want 7", g.Degree(0))
	}
	for v := 1; v < 8; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("star leaf %d degree %d, want 1", v, g.Degree(v))
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	g := Hypercube(5)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			diff := v ^ int(u)
			if diff&(diff-1) != 0 {
				t.Fatalf("hypercube edge {%d,%d} differs in more than one bit", v, u)
			}
		}
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	sides := []int{3, 4, 5}
	for v := 0; v < 60; v++ {
		if got := GridIndex(sides, GridCoords(sides, v)); got != v {
			t.Fatalf("GridIndex(GridCoords(%d)) = %d", v, got)
		}
	}
}

func TestGridTorusDegrees(t *testing.T) {
	g := Grid([]int{5, 5}, true)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("2d torus vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	box := Grid([]int{5, 5}, false)
	if box.Degree(0) != 2 {
		t.Errorf("2d box corner degree %d, want 2", box.Degree(0))
	}
}

func TestBinaryTreeStructure(t *testing.T) {
	g := CompleteBinaryTree(5)
	if g.Degree(0) != 2 {
		t.Errorf("root degree %d, want 2", g.Degree(0))
	}
	leaves := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			leaves++
		}
	}
	if leaves != 16 {
		t.Errorf("binary tree with 5 levels has %d leaves, want 16", leaves)
	}
	if g.M() != g.N()-1 {
		t.Error("tree must have n-1 edges")
	}
}

func TestLollipopStructure(t *testing.T) {
	n := 13
	g := Lollipop(n)
	k := (n + 1) / 2
	// Clique part has degree >= k-1.
	for v := 0; v < k-1; v++ {
		if g.Degree(v) != k-1 {
			t.Errorf("clique vertex %d degree %d, want %d", v, g.Degree(v), k-1)
		}
	}
	if g.Degree(k-1) != k {
		t.Errorf("junction vertex degree %d, want %d", g.Degree(k-1), k)
	}
	if g.Degree(n-1) != 1 {
		t.Errorf("path end degree %d, want 1", g.Degree(n-1))
	}
	mid := LollipopPathMid(n)
	if mid <= k-1 || mid >= n {
		t.Errorf("path mid %d outside path range (%d, %d)", mid, k-1, n)
	}
}

func TestCliqueWithHairStructure(t *testing.T) {
	g := CliqueWithHair(10)
	tip := HairTip(10)
	if g.Degree(tip) != 1 {
		t.Errorf("hair tip degree %d, want 1", g.Degree(tip))
	}
	if !g.HasEdge(0, tip) {
		t.Error("hair must attach to vertex 0")
	}
	if g.Degree(0) != 9 {
		t.Errorf("attachment vertex degree %d, want 9", g.Degree(0))
	}
}

func TestCliqueWithHairOnPimpleStructure(t *testing.T) {
	n, h := 20, 5
	g := CliqueWithHairOnPimple(n, h)
	v := PimpleVertex(n)
	if g.Degree(v) != h {
		t.Errorf("pimple degree %d, want %d (h-1 clique nbrs + hair)", g.Degree(v), h)
	}
	if g.Degree(HairTip(n)) != 1 {
		t.Error("hair tip must have degree 1")
	}
	if !g.HasEdge(v, HairTip(n)) {
		t.Error("hair must attach to pimple")
	}
}

func TestBinaryTreeWithPathStructure(t *testing.T) {
	g := BinaryTreeWithPath(4, 6)
	tN := 15
	if g.N() != tN+6 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != g.N()-1 {
		t.Fatal("must be a tree")
	}
	if !g.HasEdge(0, tN) {
		t.Error("path must attach to the root")
	}
	if g.Degree(g.N()-1) != 1 {
		t.Error("path far end must be a leaf")
	}
}

func TestRandomRegularProperties(t *testing.T) {
	r := rng.New(99)
	for _, tc := range []struct{ n, d int }{{10, 3}, {50, 4}, {100, 3}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), tc.d)
			}
		}
		if !g.IsConnected() {
			t.Fatal("disconnected regular graph returned")
		}
	}
}

func TestRandomRegularRejectsOddProduct(t *testing.T) {
	if _, err := RandomRegular(5, 3, rng.New(1)); err == nil {
		t.Fatal("odd n*d accepted")
	}
}

func TestGNPEdgeCount(t *testing.T) {
	r := rng.New(7)
	n, p := 200, 0.1
	g, err := GNP(n, p, r)
	if err != nil {
		t.Fatal(err)
	}
	want := p * float64(n*(n-1)) / 2
	if float64(g.M()) < want*0.8 || float64(g.M()) > want*1.2 {
		t.Errorf("G(%d,%g) has %d edges, want ~%.0f", n, p, g.M(), want)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		g := RandomTree(n, rng.New(seed))
		return g.N() == n && g.M() == n-1 && g.IsConnected()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiameterKnownValues(t *testing.T) {
	cases := []struct {
		g    *CSR
		want int
	}{
		{Path(10), 9},
		{Cycle(10), 5},
		{Cycle(11), 5},
		{Complete(6), 1},
		{Star(7), 2},
		{Hypercube(6), 6},
		{CompleteBinaryTree(4), 6},
	}
	for _, tc := range cases {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s: diameter %d, want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(8)
	d := g.BFS(0)
	for v := 0; v < 8; v++ {
		if d[v] != int32(v) {
			t.Fatalf("BFS dist to %d = %d", v, d[v])
		}
	}
}

func TestEdgesListing(t *testing.T) {
	g := Cycle(5)
	es := g.Edges()
	if len(es) != 5 {
		t.Fatalf("cycle-5 Edges returned %d", len(es))
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalised", e)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Lollipop(11) // clique 0..5 + path
	sub, remap, err := g.Induced([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The induced subgraph of 4 clique vertices is K_4.
	if sub.N() != 4 || sub.M() != 6 {
		t.Fatalf("induced clique: n=%d m=%d, want 4/6", sub.N(), sub.M())
	}
	if remap[0] != 0 || remap[3] != 3 || remap[10] != -1 {
		t.Fatalf("bad remap: %v", remap)
	}
	// The path tail induces a path.
	tail, _, err := g.Induced([]int{7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if tail.M() != 3 || tail.MaxDegree() != 2 {
		t.Fatalf("induced path: m=%d maxdeg=%d", tail.M(), tail.MaxDegree())
	}
}

func TestInducedErrors(t *testing.T) {
	g := Path(5)
	if _, _, err := g.Induced([]int{0, 0}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, _, err := g.Induced([]int{9}); err == nil {
		t.Error("out of range accepted")
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(9)
	if g.Eccentricity(4) != 4 {
		t.Errorf("centre eccentricity %d, want 4", g.Eccentricity(4))
	}
	if g.Eccentricity(0) != 8 {
		t.Errorf("endpoint eccentricity %d, want 8", g.Eccentricity(0))
	}
}
