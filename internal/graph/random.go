package graph

import (
	"errors"
	"fmt"

	"dispersion/internal/rng"
)

// maxAttempts bounds the rejection loops of the random generators. For the
// parameter regimes used in the experiments a handful of attempts suffice;
// hitting the bound indicates a caller error (e.g. p below the connectivity
// threshold) and is reported rather than looping forever.
const maxAttempts = 1000

// RandomRegular samples a simple d-regular graph on n vertices using the
// configuration model with rejection: d half-edges ("stubs") per vertex are
// paired uniformly at random, and the pairing is rejected if it contains a
// self-loop or parallel edge. For constant d the acceptance probability is
// bounded away from zero, and conditioned on acceptance the graph is
// uniform over simple d-regular graphs — the standard expander family used
// by Theorem 5.5. n·d must be even.
func RandomRegular(n, d int, r *rng.Source) (*CSR, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular requires 1 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular requires n*d even, got n=%d d=%d", n, d)
	}
	stubs := make([]int32, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = int32(i / d)
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		b := NewBuilder(fmt.Sprintf("random-regular-%d-d%d", n, d), n)
		// Regularity is guaranteed by construction; skip detection except
		// at the degenerate degrees where the sample could coincide with a
		// closed-form family (d = 2 can be the canonical cycle, d = n-1 is
		// always K_n).
		if d >= 3 && d < n-1 {
			b.hint = func(g *CSR) Kernel { return regularKernel{adj: g.adj, deg: int32(d)} }
		}
		ok := true
		seen := make(map[[2]int32]bool, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				ok = false
				break
			}
			seen[[2]int32{u, v}] = true
			b.AddEdge(int(u), int(v))
		}
		if !ok {
			continue
		}
		g, err := b.Build()
		if err != nil {
			continue
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, errors.New("graph: RandomRegular failed to produce a connected simple graph")
}

// GNP samples an Erdős–Rényi graph G(n, p) conditioned on connectivity,
// retrying up to maxAttempts times. The paper (Remark 5.6) uses G(n, p)
// with np >= c log n, c > 1, where connectivity holds w.h.p., so the
// conditioning is light.
func GNP(n int, p float64, r *rng.Source) (*CSR, error) {
	if n < 1 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: GNP requires n >= 1 and 0 < p <= 1")
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := NewBuilder(fmt.Sprintf("gnp-%d-p%.4f", n, p), n)
		// Geometric skipping over the n(n-1)/2 potential edges, enumerated
		// as (0,1),(0,2),...,(0,n-1),(1,2),...: the gap to the next present
		// edge is Geometric(p), giving O(pn^2 + n) expected work instead of
		// O(n^2). The linear index is converted to a pair incrementally.
		total := int64(n) * int64(n-1) / 2
		pos := int64(-1)
		row, rowStart := 0, int64(0)
		for {
			pos += r.Geometric(p) + 1
			if pos >= total {
				break
			}
			for pos >= rowStart+int64(n-1-row) {
				rowStart += int64(n - 1 - row)
				row++
			}
			b.AddEdge(row, row+1+int(pos-rowStart))
		}
		g, err := b.Build()
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, errors.New("graph: GNP failed to produce a connected graph (p below threshold?)")
}

// RandomTree samples a uniformly random labelled tree on n vertices by
// decoding a uniform Prüfer sequence.
func RandomTree(n int, r *rng.Source) *CSR {
	if n < 1 {
		panic("graph: RandomTree requires n >= 1")
	}
	b := NewBuilder(fmt.Sprintf("random-tree-%d", n), n)
	if n == 1 {
		return b.MustBuild()
	}
	if n == 2 {
		b.AddEdge(0, 1)
		return b.MustBuild()
	}
	seq := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range seq {
		seq[i] = r.Intn(n)
		deg[seq[i]]++
	}
	// Standard linear-time Prüfer decoding with a moving leaf pointer.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		b.AddEdge(leaf, v)
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// The two remaining degree-1 vertices are leaf and n-1.
	b.AddEdge(leaf, n-1)
	return b.MustBuild()
}
