package graph

import (
	"testing"

	"dispersion/internal/rng"
)

// benchKernel drives steps through the Kernel interface, the dispatch the
// processes use.
func benchKernel(b *testing.B, g *CSR, k Kernel) {
	b.Helper()
	r := rng.New(1)
	v := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = k.Step(v, r)
	}
	_ = v
}

func BenchmarkKernelComplete4096(b *testing.B) {
	benchKernel(b, Complete(4096), Complete(4096).Kernel())
}
func BenchmarkGenericComplete4096(b *testing.B) {
	g := Complete(4096)
	benchKernel(b, g, g.GenericKernel())
}

func BenchmarkKernelHypercube9(b *testing.B) { g := Hypercube(9); benchKernel(b, g, g.Kernel()) }
func BenchmarkGenericHypercube9(b *testing.B) {
	g := Hypercube(9)
	benchKernel(b, g, g.GenericKernel())
}

func BenchmarkKernelHypercube16(b *testing.B) { g := Hypercube(16); benchKernel(b, g, g.Kernel()) }
func BenchmarkGenericHypercube16(b *testing.B) {
	g := Hypercube(16)
	benchKernel(b, g, g.GenericKernel())
}

func BenchmarkKernelTorus3D(b *testing.B) {
	g := Grid([]int{8, 8, 8}, true)
	benchKernel(b, g, g.Kernel())
}
func BenchmarkGenericTorus3D(b *testing.B) {
	g := Grid([]int{8, 8, 8}, true)
	benchKernel(b, g, g.GenericKernel())
}

// Direct concrete-type calls, bypassing the interface: measures how much
// of a kernel's cost is dispatch.
func BenchmarkDirectHypercube9(b *testing.B) {
	k := hypercubeKernel{k: 9}
	r := rng.New(1)
	v := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = k.Step(v, r)
	}
	_ = v
}

func BenchmarkDirectRegularTorus3D(b *testing.B) {
	g := Grid([]int{8, 8, 8}, true)
	k := g.Kernel().(regularKernel)
	r := rng.New(1)
	v := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = k.Step(v, r)
	}
	_ = v
}

func BenchmarkKernelCycle1024(b *testing.B)  { g := Cycle(1024); benchKernel(b, g, g.Kernel()) }
func BenchmarkGenericCycle1024(b *testing.B) { g := Cycle(1024); benchKernel(b, g, g.GenericKernel()) }

func BenchmarkKernelComplete64(b *testing.B) { g := Complete(64); benchKernel(b, g, g.Kernel()) }
func BenchmarkGenericComplete64(b *testing.B) {
	g := Complete(64)
	benchKernel(b, g, g.GenericKernel())
}
