// Package graph provides the finite-graph substrate for the dispersion
// simulator. The simulation stack sees graphs only through the narrow
// Graph interface — size, degree, step kernel, connectivity — which has
// two backends:
//
//   - CSR, a compact compressed-sparse-row adjacency representation with
//     constructors for every graph family analysed in the paper and the
//     traversal utilities (BFS, connectivity, bipartiteness) the
//     analytics need. Memory is O(n·d).
//   - Implicit, an adjacency-free backend for generated families (d-dim
//     torus, circulant, random-regular via seeded permutation
//     composition, and the closed-form families) whose kernel, degree and
//     connectivity are computed analytically. Memory is O(1), opening
//     vertex counts that could never hold a CSR build in RAM.
//
// Vertices are integers in [0, N). Both representations are immutable
// after construction so graphs can be shared freely across goroutines.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is the narrow interface the dispersion processes walk on: the
// vertex count, per-vertex degree, the step kernel selected at build
// time, and the one-time connectivity predicate. Everything a simulation
// touches per trial goes through these five methods, so backends are free
// to answer them from a CSR adjacency or from pure arithmetic.
type Graph interface {
	// N returns the number of vertices.
	N() int
	// Name returns the human-readable family label.
	Name() string
	// Degree returns the degree of vertex v.
	Degree(v int) int
	// Kernel returns the step kernel selected at construction time. Hot
	// loops should hoist it out of the loop body.
	Kernel() Kernel
	// IsConnected reports whether the graph is connected. The answer is
	// computed (or known analytically) at construction time, so the call
	// is free in per-trial input validation.
	IsConnected() bool
}

// EdgeChecker is the optional adjacency test a backend may provide on top
// of Graph; both CSR and Implicit do. Recorded-trajectory validation uses
// it (core.Result.Check).
type EdgeChecker interface {
	// HasEdge reports whether {u, v} is an edge.
	HasEdge(u, v int) bool
}

var (
	_ Graph       = (*CSR)(nil)
	_ EdgeChecker = (*CSR)(nil)
	_ Graph       = (*Implicit)(nil)
	_ EdgeChecker = (*Implicit)(nil)
)

// CSR is an undirected, unweighted graph in CSR form. The neighbour list
// of vertex v is adj[offsets[v]:offsets[v+1]]. Parallel edges and
// self-loops are rejected at construction; all graphs in the paper are
// simple.
type CSR struct {
	name    string
	offsets []int32
	adj     []int32
	// kernel is the step engine selected for this adjacency at Build time
	// (see Kernel); connected caches the one-time BFS connectivity check
	// so per-trial input validation never re-traverses the graph.
	kernel    Kernel
	connected bool
}

// N returns the number of vertices.
func (g *CSR) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *CSR) M() int { return len(g.adj) / 2 }

// Name returns the human-readable family label given at construction.
func (g *CSR) Name() string { return g.name }

// Degree returns the degree of vertex v.
func (g *CSR) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the neighbour list of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *CSR) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Neighbor returns the i-th neighbour of v, for 0 <= i < Degree(v). It is
// the hot call of every random-walk step and is kept free of bounds
// arithmetic beyond the two slice indexes.
func (g *CSR) Neighbor(v int, i int32) int32 {
	return g.adj[g.offsets[v]+i]
}

// MaxDegree returns the maximum vertex degree.
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree.
func (g *CSR) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// IsRegular reports whether every vertex has the same degree.
func (g *CSR) IsRegular() bool {
	return g.N() == 0 || g.MaxDegree() == g.MinDegree()
}

// HasEdge reports whether {u, v} is an edge, by binary search over the
// sorted neighbour list of the lower-degree endpoint.
func (g *CSR) HasEdge(u, v int) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// Edges returns all edges as (u, v) pairs with u < v, in sorted order.
func (g *CSR) Edges() [][2]int32 {
	es := make([][2]int32, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				es = append(es, [2]int32{int32(u), v})
			}
		}
	}
	return es
}

// Builder accumulates edges and produces an immutable CSR. Duplicate
// edges and self-loops cause Build to fail, which keeps random generators
// honest about producing simple graphs.
type Builder struct {
	n     int
	name  string
	edges [][2]int32
	// hint, when non-nil, resolves the kernel the builder's caller knows
	// to be correct for the adjacency it is constructing — the canonical
	// family constructors set it so Build skips detectKernel's O(n·d)
	// closed-form verification sweep. The hint is trusted, not verified:
	// only constructors that emit the canonical labelling may set it.
	// Hand-built graphs have no hint and keep the full structural
	// detection.
	hint func(*CSR) Kernel
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(name string, n int) *Builder {
	return &Builder{n: n, name: name}
}

// AddEdge records the undirected edge {u, v}. Ordering of the endpoints is
// irrelevant. Validity is checked at Build time.
func (b *Builder) AddEdge(u, v int) {
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build validates the accumulated edges and returns the CSR graph.
func (b *Builder) Build() (*CSR, error) {
	if b.n <= 0 {
		return nil, errors.New("graph: builder needs at least one vertex")
	}
	deg := make([]int32, b.n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", u)
		}
		if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		}
		deg[u]++
		deg[v]++
	}
	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	g := &CSR{name: b.name, offsets: offsets, adj: adj}
	// Sort each neighbour list and reject duplicates (parallel edges).
	for v := 0; v < b.n; v++ {
		ns := g.adj[offsets[v]:offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		for i := 1; i < len(ns); i++ {
			if ns[i] == ns[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", v, ns[i])
			}
		}
	}
	g.connected = bfsConnected(g)
	if b.hint != nil {
		g.kernel = b.hint(g)
	} else {
		g.kernel = detectKernel(g)
	}
	return g, nil
}

// MustBuild is Build for statically correct constructions; it panics on
// error and is used by the deterministic family constructors whose inputs
// are validated up front.
func (b *Builder) MustBuild() *CSR {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BFS returns the vector of hop distances from src, with -1 for vertices
// unreachable from src.
func (g *CSR) BFS(src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected. The answer is
// computed once at Build time, so the call is free in per-trial input
// validation.
func (g *CSR) IsConnected() bool { return g.connected }

// bfsConnected is the one-time Build-side connectivity traversal.
func bfsConnected(g *CSR) bool {
	if g.N() == 0 {
		return false
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// IsBipartite reports whether the graph is bipartite (2-colourable). The
// simple random walk is periodic exactly on bipartite graphs, which is why
// the paper's set-hitting bounds switch to lazy walks.
func (g *CSR) IsBipartite() bool {
	color := make([]int8, g.N())
	for s := 0; s < g.N(); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(int(u)) {
				if color[v] == 0 {
					color[v] = -color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false
				}
			}
		}
	}
	return true
}

// Diameter returns the graph diameter via BFS from every vertex. Intended
// for the moderate sizes used in experiments; O(N·M) time.
func (g *CSR) Diameter() int {
	diam := int32(0)
	for v := 0; v < g.N(); v++ {
		for _, d := range g.BFS(v) {
			if d > diam {
				diam = d
			}
		}
	}
	return int(diam)
}

// Eccentricity returns max_u dist(v, u).
func (g *CSR) Eccentricity(v int) int {
	ecc := int32(0)
	for _, d := range g.BFS(v) {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// DegreeSum returns the sum of degrees (2·M); it is the normaliser of the
// stationary distribution π(v) = deg(v) / DegreeSum.
func (g *CSR) DegreeSum() int { return len(g.adj) }

// Induced returns the subgraph induced by the given vertices, relabelled
// 0..len(vertices)-1 in the given order, together with the old-to-new
// vertex mapping (-1 for dropped vertices). Duplicate vertices are
// rejected.
func (g *CSR) Induced(vertices []int) (*CSR, []int, error) {
	remap := make([]int, g.N())
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vertices {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range", v)
		}
		if remap[v] >= 0 {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		remap[v] = i
	}
	b := NewBuilder(g.name+"-induced", len(vertices))
	for _, v := range vertices {
		for _, u := range g.Neighbors(v) {
			if remap[u] >= 0 && remap[v] < remap[u] {
				b.AddEdge(remap[v], remap[u])
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, remap, nil
}
