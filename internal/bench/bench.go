// Package bench is the experiment harness: it contains one registered
// experiment per table row / quantitative claim of the paper (the
// experiment index in DESIGN.md), renders measured-vs-paper comparison
// tables, and exposes the samplers the testing.B benchmarks reuse. Every
// experiment is deterministic given (seed, scale).
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls an experiment run.
type Config struct {
	// Seed roots all randomness; equal seeds reproduce results exactly.
	Seed uint64
	// Scale in (0, 1] shrinks trial counts and graph sizes for smoke
	// runs; 1.0 is the full configuration recorded in EXPERIMENTS.md.
	Scale float64
	// Out receives progress output; nil silences it.
	Out io.Writer
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// scaled shrinks an integer quantity by the config scale with a floor.
func (c Config) scaled(full, min int) int {
	s := c.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	v := int(float64(full) * s)
	if v < min {
		v = min
	}
	return v
}

// Table is a rendered result grid.
type Table struct {
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV writes the table as RFC-4180 CSV (header row first), for
// downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report is the outcome of one experiment.
type Report struct {
	Table   *Table
	Notes   []string
	Pass    bool
	Summary string
}

// Experiment couples a paper claim with the code that checks it.
type Experiment struct {
	ID     string // e.g. "E01"
	Title  string
	Source string // paper reference (table row / theorem)
	Claim  string // the quantitative statement being reproduced
	Run    func(cfg Config) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunAll executes every experiment and writes a full report to w,
// returning the number of failed experiments.
func RunAll(cfg Config, w io.Writer) int {
	failed := 0
	for _, e := range All() {
		fmt.Fprintf(w, "\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "source: %s\nclaim:  %s\n\n", e.Source, e.Claim)
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			failed++
			continue
		}
		if rep.Table != nil {
			rep.Table.Render(w)
		}
		for _, n := range rep.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
		verdict := "PASS"
		if !rep.Pass {
			verdict = "CHECK"
			failed++
		}
		fmt.Fprintf(w, "  %s: %s\n", verdict, rep.Summary)
	}
	return failed
}
