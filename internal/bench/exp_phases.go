package bench

import (
	"fmt"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
	"dispersion/internal/stats"
	"dispersion/internal/walk"
)

func init() {
	register(Experiment{
		ID:     "E20",
		Title:  "Half-settlement within O(t_mix)",
		Source: "Theorem 3.3 (consequence for k = log2 n - 1)",
		Claim:  "in the lazy Parallel-IDLA at least n/2 particles settle within O(t_mix) rounds",
		Run:    runHalfSettlement,
	})
	register(Experiment{
		ID:     "E21",
		Title:  "Mixing-time lower bound",
		Source: "Proposition 3.9",
		Claim:  "t_seq(G) = Ω(t_mix) for lazy walks; the cycle shows the bound is tight up to log n",
		Run:    runMixingLower,
	})
}

func runHalfSettlement(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"graph", "t_mix(TV)", "E[half-settle round]", "ratio/t_mix"}}
	trials := cfg.scaled(150, 40)
	expander, err := graph.RandomRegular(256, 4, rng.New(cfg.Seed^0x2001))
	if err != nil {
		return nil, err
	}
	type fam struct {
		g      *graph.CSR
		mixCap int
	}
	fams := []fam{
		{graph.Hypercube(7), 1 << 12},
		{expander, 1 << 12},
		{graph.Cycle(64), 1 << 18},
		{graph.Grid([]int{10, 10}, true), 1 << 16},
	}
	pass := true
	var worstRatio float64
	for fi, f := range fams {
		tmix := markov.MixingTime(f.g, f.mixCap)
		n := f.g.N()
		rn := walk.NewRunner(cfg.Seed, uint64(0x2010+fi))
		halves := rn.Run(trials, func(_ int, r *rng.Source) float64 {
			res, err := core.Parallel(f.g, 0, core.Options{Lazy: true}, r)
			must(err)
			return float64(res.PhaseClock(n, n/2))
		})
		s := stats.Summarize(halves)
		ratio := s.Mean / float64(tmix)
		if ratio > worstRatio {
			worstRatio = ratio
		}
		tbl.AddRow(f.g.Name(), fmt.Sprint(tmix), fm(s.Mean), fm(ratio))
		// "O(t_mix)" with the theorem's constant 60; empirically the
		// constant is far smaller — require a generous 8.
		if ratio > 8 {
			pass = false
		}
		cfg.printf("E20 %s done\n", f.g.Name())
	}
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("half the particles settle within %.1f·t_mix on every family (theorem constant: 60)",
			worstRatio),
	}, nil
}

func runMixingLower(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "t_mix(TV,lazy)", "E[τ_seq] (lazy)", "τ_seq/t_mix"}}
	trials := cfg.scaled(50, 15)
	sizes := []int{32, 64, 128}
	pass := true
	var ratios []float64
	for _, n := range sizes {
		g := graph.Cycle(n)
		tmix := markov.MixingTime(g, 1<<20)
		seq := MeanDispersion(g, 0, Seq, core.Options{Lazy: true}, trials, cfg.Seed, uint64(0x2101+n))
		ratio := seq.Mean / float64(tmix)
		ratios = append(ratios, ratio)
		tbl.AddRow(fmt.Sprint(n), fmt.Sprint(tmix), fm(seq.Mean), fm(ratio))
		if ratio < 1 {
			pass = false // dispersion must exceed mixing on the cycle
		}
		cfg.printf("E21 n=%d done\n", n)
	}
	// The gap should be Θ(log n): growing but sublinear in n.
	if ratios[len(ratios)-1] < ratios[0] {
		pass = false
	}
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("τ_seq/t_mix grows from %.1f to %.1f: Ω(t_mix) holds and the log n gap is visible",
			ratios[0], ratios[len(ratios)-1]),
	}, nil
}
