package bench

import (
	"fmt"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
	"dispersion/internal/stats"
	"dispersion/internal/walk"
)

// Process selects one of the dispersion-process variants for sampling.
type Process int

// Process variants.
const (
	Seq Process = iota
	Par
	Unif
	CTUnifTime // continuous-time uniform, real-time dispersion
	CTSeqTime  // continuous-time sequential, real-time dispersion
)

// String names the process for table output.
func (p Process) String() string {
	switch p {
	case Seq:
		return "sequential"
	case Par:
		return "parallel"
	case Unif:
		return "uniform"
	case CTUnifTime:
		return "ct-uniform"
	case CTSeqTime:
		return "ct-sequential"
	}
	return fmt.Sprintf("process(%d)", int(p))
}

// SampleDispersion runs `trials` independent realizations of the chosen
// process and returns the dispersion times (real time for the
// continuous-time variants). Trials run across all cores but are
// deterministic in (seed, expID, trial).
func SampleDispersion(g *graph.CSR, origin int, p Process, opt core.Options,
	trials int, seed, expID uint64) []float64 {
	rn := walk.NewRunner(seed, expID)
	return rn.Run(trials, func(_ int, r *rng.Source) float64 {
		switch p {
		case Seq:
			res, err := core.Sequential(g, origin, opt, r)
			must(err)
			return float64(res.Dispersion)
		case Par:
			res, err := core.Parallel(g, origin, opt, r)
			must(err)
			return float64(res.Dispersion)
		case Unif:
			res, err := core.Uniform(g, origin, opt, r)
			must(err)
			return float64(res.Dispersion)
		case CTUnifTime:
			res, err := core.CTUniform(g, origin, opt, r)
			must(err)
			return res.Time
		case CTSeqTime:
			res, err := core.CTSequential(g, origin, opt, r)
			must(err)
			return res.Time
		}
		panic("bench: unknown process")
	})
}

// SampleTotalSteps returns the total number of jumps of all particles per
// trial for the chosen process.
func SampleTotalSteps(g *graph.CSR, origin int, p Process, opt core.Options,
	trials int, seed, expID uint64) []float64 {
	rn := walk.NewRunner(seed, expID)
	return rn.Run(trials, func(_ int, r *rng.Source) float64 {
		var res *core.Result
		var err error
		switch p {
		case Seq:
			res, err = core.Sequential(g, origin, opt, r)
		case Par:
			res, err = core.Parallel(g, origin, opt, r)
		case Unif:
			res, err = core.Uniform(g, origin, opt, r)
		default:
			panic("bench: total steps undefined for " + p.String())
		}
		must(err)
		return float64(res.TotalSteps)
	})
}

// MeanDispersion is SampleDispersion reduced to a Summary.
func MeanDispersion(g *graph.CSR, origin int, p Process, opt core.Options,
	trials int, seed, expID uint64) stats.Summary {
	return stats.Summarize(SampleDispersion(g, origin, p, opt, trials, seed, expID))
}

// SampleCoverTime estimates the cover time of the simple random walk from
// the origin.
func SampleCoverTime(g *graph.CSR, origin int, trials int, seed, expID uint64) stats.Summary {
	rn := walk.NewRunner(seed, expID)
	xs := rn.Run(trials, func(_ int, r *rng.Source) float64 {
		steps, ok := walk.CoverTime(g, origin, 1<<40, r)
		if !ok {
			panic("bench: cover walk capped")
		}
		return float64(steps)
	})
	return stats.Summarize(xs)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// fm formats a float compactly for tables.
func fm(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1e6 || x < 1e-3:
		return fmt.Sprintf("%.3g", x)
	case x >= 100:
		return fmt.Sprintf("%.0f", x)
	case x >= 1:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// within reports |got-want| <= tol·want.
func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol*want
}
