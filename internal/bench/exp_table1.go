package bench

import (
	"fmt"
	"math"

	"dispersion/internal/bounds"
	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
	"dispersion/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E01",
		Title:  "Complete graph constants",
		Source: "Table 1 (complete graph), Theorem 5.2, Lemma 5.1",
		Claim:  "t_seq(K_n) ~ κ_cc·n ≈ 1.2550·n and t_par(K_n) ~ (π²/6)·n ≈ 1.6449·n",
		Run:    runClique,
	})
	register(Experiment{
		ID:     "E02",
		Title:  "Path dispersion and κ_p",
		Source: "Table 1 (path), Theorem 5.4",
		Claim:  "t_seq(P_n) = t_par(P_n)·(1±o(1)) = κ_p·n²·ln n with κ_p ≈ 0.6 (natural log)",
		Run:    runPath,
	})
	register(Experiment{
		ID:     "E03",
		Title:  "Cycle dispersion",
		Source: "Table 1 (cycle), Theorem 5.9",
		Claim:  "t_seq(C_n), t_par(C_n) = Θ(n² log n)",
		Run:    runCycle,
	})
	register(Experiment{
		ID:     "E04",
		Title:  "2-dimensional torus",
		Source: "Table 1 (2-dim grid), Proposition 5.10",
		Claim:  "Ω(n log n) <= t_seq, t_par <= O(n log² n)",
		Run:    runGrid2D,
	})
	register(Experiment{
		ID:     "E05",
		Title:  "3-dimensional torus",
		Source: "Table 1 (d-dim grid, d>2), Theorem 5.11",
		Claim:  "t_seq, t_par = Θ(n)",
		Run:    runGrid3D,
	})
	register(Experiment{
		ID:     "E06",
		Title:  "Hypercube",
		Source: "Table 1 (hypercube), Theorem 5.7",
		Claim:  "t_seq, t_par = Θ(n)",
		Run:    runHypercube,
	})
	register(Experiment{
		ID:     "E07",
		Title:  "Complete binary tree",
		Source: "Table 1 (binary tree), Theorem 5.14",
		Claim:  "t_seq, t_par = Θ(n log² n)",
		Run:    runBinaryTree,
	})
	register(Experiment{
		ID:     "E08",
		Title:  "Expanders",
		Source: "Table 1 (expanders), Theorem 5.5, Remark 5.6",
		Claim:  "t_seq, t_par = Θ(n) for almost-regular expanders (1-λ2 = Ω(1))",
		Run:    runExpander,
	})
	register(Experiment{
		ID:     "E09",
		Title:  "Lollipop worst case",
		Source: "Proposition 5.16, Corollary 3.2",
		Claim:  "τ_seq(lollipop) = Ω(n³ log n), matching the general O(n³ log n) ceiling",
		Run:    runLollipop,
	})
}

func runClique(cfg Config) (*Report, error) {
	kcc := bounds.KappaCC()
	tbl := &Table{Columns: []string{"n", "t_seq/n", "±", "t_par/n", "±", "κ_cc", "π²/6"}}
	sizes := []int{128, 256, 512, 1024}
	trials := cfg.scaled(300, 40)
	var lastSeq, lastPar float64
	for _, n := range sizes {
		g := graph.Complete(n)
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0101)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0102)
		lastSeq = seq.Mean / float64(n)
		lastPar = par.Mean / float64(n)
		tbl.AddRow(fmt.Sprint(n), fm(lastSeq), fm(seq.StdErr/float64(n)),
			fm(lastPar), fm(par.StdErr/float64(n)), fm(kcc), fm(bounds.PiSquaredOver6))
		cfg.printf("E01 n=%d done\n", n)
	}
	pass := within(lastSeq, kcc, 0.08) && within(lastPar, bounds.PiSquaredOver6, 0.08)
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("t_seq/n -> %.4f (κ_cc=%.4f), t_par/n -> %.4f (π²/6=%.4f)",
			lastSeq, kcc, lastPar, bounds.PiSquaredOver6),
		Notes: []string{"finite-size convergence to κ_cc is O(1/log n); the trend is downward toward the constant"},
	}, nil
}

func runPath(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "t_seq", "t_par", "par/seq", "κ_p=t_seq/(n²·ln n)"}}
	sizes := []int{48, 96, 192}
	if cfg.Scale >= 0.9 {
		sizes = []int{64, 128, 256}
	}
	trials := cfg.scaled(60, 15)
	var lastKappa float64
	var ns, ts, ratios []float64
	for _, n := range sizes {
		g := graph.Path(n)
		// Theorem 5.4's source is the endpoint (vertex 0).
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0201)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0202)
		ratios = append(ratios, par.Mean/seq.Mean)
		lastKappa = seq.Mean / (float64(n) * float64(n) * math.Log(float64(n)))
		tbl.AddRow(fmt.Sprint(n), fm(seq.Mean), fm(par.Mean), fm(ratios[len(ratios)-1]), fm(lastKappa))
		ns = append(ns, float64(n))
		ts = append(ts, seq.Mean)
		cfg.printf("E02 n=%d done\n", n)
	}
	alpha, _, r2 := stats.FitPowerLaw(ns, ts)
	lastRatio := ratios[len(ratios)-1]
	// par/seq -> 1 with an O(1/polylog) correction: require it small and
	// not growing with n.
	pass := lastRatio > 0.85 && lastRatio < 1.45 && lastRatio <= ratios[0]+0.05 &&
		lastKappa > 0.4 && lastKappa < 0.85 && alpha > 1.9 && alpha < 2.5
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("κ_p ≈ %.3f (paper ≈ 0.6), par/seq %.3f and shrinking (paper: ->1), growth exponent %.2f",
			lastKappa, lastRatio, alpha),
		Notes: []string{fmt.Sprintf("power-law fit R² = %.4f; the par/seq gap closes like a polylog correction", r2)},
	}, nil
}

func runCycle(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "t_seq", "t_par", "t_seq/(n²·log2 n)", "t_par/(n²·log2 n)"}}
	sizes := []int{48, 96, 192}
	if cfg.Scale >= 0.9 {
		sizes = []int{64, 128, 256}
	}
	trials := cfg.scaled(60, 15)
	var ns, ts []float64
	var normSeq []float64
	for _, n := range sizes {
		g := graph.Cycle(n)
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0301)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0302)
		norm := float64(n) * float64(n) * math.Log2(float64(n))
		tbl.AddRow(fmt.Sprint(n), fm(seq.Mean), fm(par.Mean), fm(seq.Mean/norm), fm(par.Mean/norm))
		ns = append(ns, float64(n))
		ts = append(ts, seq.Mean)
		normSeq = append(normSeq, seq.Mean/norm)
		cfg.printf("E03 n=%d done\n", n)
	}
	alpha, _, _ := stats.FitPowerLaw(ns, ts)
	// Θ(n² log n): exponent slightly above 2, and the normalised values
	// should be flat (within 35% of each other).
	flat := normSeq[len(normSeq)-1]/normSeq[0] > 0.65 && normSeq[len(normSeq)-1]/normSeq[0] < 1.55
	pass := alpha > 1.95 && alpha < 2.6 && flat
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("growth exponent %.2f (Θ(n² log n) ⇒ ~2.2 over this range), normalised values flat", alpha),
	}, nil
}

func runGrid2D(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "side", "t_seq", "t_seq/(n·ln n)", "t_seq/(n·ln² n)"}}
	sides := []int{12, 16, 24}
	if cfg.Scale >= 0.9 {
		sides = []int{16, 24, 32}
	}
	trials := cfg.scaled(60, 15)
	var ns, ts []float64
	for _, s := range sides {
		n := s * s
		g := graph.Grid([]int{s, s}, true)
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0401)
		ln := math.Log(float64(n))
		tbl.AddRow(fmt.Sprint(n), fmt.Sprint(s), fm(seq.Mean),
			fm(seq.Mean/(float64(n)*ln)), fm(seq.Mean/(float64(n)*ln*ln)))
		ns = append(ns, float64(n))
		ts = append(ts, seq.Mean)
		cfg.printf("E04 side=%d done\n", s)
	}
	alpha, _, _ := stats.FitPowerLaw(ns, ts)
	// Between Ω(n log n) and O(n log² n): exponent slightly above 1.
	pass := alpha > 1.0 && alpha < 1.45
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("growth exponent %.2f: consistent with n·polylog(n), between the paper's Ω(n log n) and O(n log² n)",
			alpha),
		Notes: []string{"the true order on the 2d torus is the paper's Open Problem 1"},
	}, nil
}

func runGrid3D(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "side", "t_seq", "t_par", "t_seq/n", "t_par/n"}}
	sides := []int{5, 7, 9}
	if cfg.Scale >= 0.9 {
		sides = []int{6, 8, 10}
	}
	trials := cfg.scaled(60, 15)
	var ns, ts []float64
	var norms []float64
	for _, s := range sides {
		n := s * s * s
		g := graph.Grid([]int{s, s, s}, true)
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0501)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0502)
		tbl.AddRow(fmt.Sprint(n), fmt.Sprint(s), fm(seq.Mean), fm(par.Mean),
			fm(seq.Mean/float64(n)), fm(par.Mean/float64(n)))
		ns = append(ns, float64(n))
		ts = append(ts, seq.Mean)
		norms = append(norms, seq.Mean/float64(n))
		cfg.printf("E05 side=%d done\n", s)
	}
	alpha, _, _ := stats.FitPowerLaw(ns, ts)
	flat := norms[len(norms)-1]/norms[0] > 0.6 && norms[len(norms)-1]/norms[0] < 1.6
	pass := alpha > 0.85 && alpha < 1.25 && flat
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("growth exponent %.2f and flat t/n: Θ(n) as claimed", alpha),
	}, nil
}

func runHypercube(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "k", "t_seq", "t_par", "t_seq/n", "t_par/n"}}
	ks := []int{7, 8, 9}
	if cfg.Scale >= 0.9 {
		ks = []int{8, 9, 10}
	}
	trials := cfg.scaled(80, 20)
	var ns, ts []float64
	var norms []float64
	for _, k := range ks {
		g := graph.Hypercube(k)
		n := g.N()
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0601)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0602)
		tbl.AddRow(fmt.Sprint(n), fmt.Sprint(k), fm(seq.Mean), fm(par.Mean),
			fm(seq.Mean/float64(n)), fm(par.Mean/float64(n)))
		ns = append(ns, float64(n))
		ts = append(ts, seq.Mean)
		norms = append(norms, seq.Mean/float64(n))
		cfg.printf("E06 k=%d done\n", k)
	}
	alpha, _, _ := stats.FitPowerLaw(ns, ts)
	flat := norms[len(norms)-1]/norms[0] > 0.6 && norms[len(norms)-1]/norms[0] < 1.5
	pass := alpha > 0.85 && alpha < 1.2 && flat
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("growth exponent %.2f and flat t/n: Θ(n) as claimed", alpha),
	}, nil
}

func runBinaryTree(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "levels", "t_seq", "t_par", "t_seq/(n·log2²n)", "t_seq/(n·log2 n)"}}
	levels := []int{7, 8, 9}
	if cfg.Scale >= 0.9 {
		levels = []int{8, 9, 10}
	}
	trials := cfg.scaled(60, 15)
	var perLog2, perLog1 []float64
	for _, lv := range levels {
		g := graph.CompleteBinaryTree(lv)
		n := g.N()
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0701)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0702)
		l := math.Log2(float64(n))
		perLog2 = append(perLog2, seq.Mean/(float64(n)*l*l))
		perLog1 = append(perLog1, seq.Mean/(float64(n)*l))
		tbl.AddRow(fmt.Sprint(n), fmt.Sprint(lv), fm(seq.Mean), fm(par.Mean),
			fm(perLog2[len(perLog2)-1]), fm(perLog1[len(perLog1)-1]))
		cfg.printf("E07 levels=%d done\n", lv)
	}
	// Θ(n log² n): t/(n log² n) flat while t/(n log n) keeps growing.
	flat2 := perLog2[len(perLog2)-1]/perLog2[0] > 0.7 && perLog2[len(perLog2)-1]/perLog2[0] < 1.45
	grows1 := perLog1[len(perLog1)-1] > perLog1[0]*1.05
	return &Report{
		Table: tbl,
		Pass:  flat2 && grows1,
		Summary: fmt.Sprintf("t/(n·log²n) flat (%.3f -> %.3f) while t/(n·log n) grows: Θ(n log² n)",
			perLog2[0], perLog2[len(perLog2)-1]),
	}, nil
}

func runExpander(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"graph", "n", "gap(1-λ2)", "t_seq", "t_par", "t_seq/n", "t_par/n"}}
	sizes := []int{128, 256, 512}
	if cfg.Scale >= 0.9 {
		sizes = []int{256, 512, 1024}
	}
	trials := cfg.scaled(80, 20)
	r := rng.New(cfg.Seed ^ 0x0801)
	var norms []float64
	minGap := math.Inf(1)
	for _, n := range sizes {
		g, err := graph.RandomRegular(n, 4, r)
		if err != nil {
			return nil, err
		}
		sp := markov.SpectralGap(g, 20000, 1e-11)
		if sp.Gap < minGap {
			minGap = sp.Gap
		}
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0802)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, 0x0803)
		norms = append(norms, seq.Mean/float64(n))
		tbl.AddRow("4-regular", fmt.Sprint(n), fm(sp.Gap), fm(seq.Mean), fm(par.Mean),
			fm(seq.Mean/float64(n)), fm(par.Mean/float64(n)))
		cfg.printf("E08 rr n=%d done\n", n)
	}
	// G(n,p) above the connectivity threshold (Remark 5.6).
	nGnp := sizes[len(sizes)-1] / 2
	p := 3 * math.Log(float64(nGnp)) / float64(nGnp)
	gnp, err := graph.GNP(nGnp, p, r)
	if err != nil {
		return nil, err
	}
	sp := markov.SpectralGap(gnp, 20000, 1e-11)
	seq := MeanDispersion(gnp, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0804)
	par := MeanDispersion(gnp, 0, Par, core.Options{}, trials, cfg.Seed, 0x0805)
	tbl.AddRow(fmt.Sprintf("G(n,%.3f)", p), fmt.Sprint(nGnp), fm(sp.Gap), fm(seq.Mean), fm(par.Mean),
		fm(seq.Mean/float64(nGnp)), fm(par.Mean/float64(nGnp)))
	flat := norms[len(norms)-1]/norms[0] > 0.6 && norms[len(norms)-1]/norms[0] < 1.6
	pass := minGap > 0.05 && flat
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("spectral gap bounded below (min %.3f) and t/n flat: Θ(n) as claimed", minGap),
	}, nil
}

func runLollipop(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "t_seq", "t_seq/n³", "t_seq/(n³·log2 n)"}}
	sizes := []int{16, 24, 32}
	if cfg.Scale >= 0.9 {
		sizes = []int{16, 24, 32, 48}
	}
	trials := cfg.scaled(40, 10)
	var ns, ts []float64
	for _, n := range sizes {
		g := graph.Lollipop(n)
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x0901)
		n3 := float64(n) * float64(n) * float64(n)
		tbl.AddRow(fmt.Sprint(n), fm(seq.Mean), fm(seq.Mean/n3), fm(seq.Mean/(n3*math.Log2(float64(n)))))
		ns = append(ns, float64(n))
		ts = append(ts, seq.Mean)
		cfg.printf("E09 n=%d done\n", n)
	}
	alpha, _, _ := stats.FitPowerLaw(ns, ts)
	pass := alpha > 2.5 && alpha < 3.8
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("growth exponent %.2f: super-quadratic, consistent with the Θ(n³ log n) worst case",
			alpha),
		Notes: []string{"sizes are small because a single trial costs Θ(n⁴) steps; the exponent is the checkable shape"},
	}, nil
}
