package bench

import (
	"fmt"
	"strconv"
	"strings"

	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// ParseGraph builds a graph from a compact CLI spec:
//
//	path:N  cycle:N  complete:N  star:N  hypercube:K  bintree:LEVELS
//	lollipop:N  hair:N  pimple:N,H  treepath:LEVELS,PATHLEN
//	grid:AxB[xC...]  torus:AxB[xC...]  regular:N,D  gnp:N,P  tree:N
//
// Random families (regular, gnp, tree) are drawn deterministically from
// the given seed.
func ParseGraph(spec string, seed uint64) (*graph.Graph, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("bench: graph spec %q needs kind:args", spec)
	}
	atoi := func(s string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return 0, fmt.Errorf("bench: bad integer %q in spec %q", s, spec)
		}
		return v, nil
	}
	ints := func(s, sep string) ([]int, error) {
		parts := strings.Split(s, sep)
		out := make([]int, len(parts))
		for i, p := range parts {
			v, err := atoi(p)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	r := rng.New(seed)
	switch kind {
	case "path":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.Path(n), nil
	case "cycle":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.Cycle(n), nil
	case "complete":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n), nil
	case "star":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.Star(n), nil
	case "hypercube":
		k, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.Hypercube(k), nil
	case "bintree":
		lv, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.CompleteBinaryTree(lv), nil
	case "lollipop":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.Lollipop(n), nil
	case "hair":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.CliqueWithHair(n), nil
	case "pimple":
		vs, err := ints(arg, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("bench: pimple wants N,H")
		}
		return graph.CliqueWithHairOnPimple(vs[0], vs[1]), nil
	case "treepath":
		vs, err := ints(arg, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("bench: treepath wants LEVELS,PATHLEN")
		}
		return graph.BinaryTreeWithPath(vs[0], vs[1]), nil
	case "grid", "torus":
		sides, err := ints(arg, "x")
		if err != nil {
			return nil, err
		}
		return graph.Grid(sides, kind == "torus"), nil
	case "regular":
		vs, err := ints(arg, ",")
		if err != nil {
			return nil, err
		}
		if len(vs) != 2 {
			return nil, fmt.Errorf("bench: regular wants N,D")
		}
		return graph.RandomRegular(vs[0], vs[1], r)
	case "gnp":
		nStr, pStr, ok := strings.Cut(arg, ",")
		if !ok {
			return nil, fmt.Errorf("bench: gnp wants N,P")
		}
		n, err := atoi(nStr)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(pStr), 64)
		if err != nil {
			return nil, fmt.Errorf("bench: bad probability %q", pStr)
		}
		return graph.GNP(n, p, r)
	case "tree":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return graph.RandomTree(n, r), nil
	}
	return nil, fmt.Errorf("bench: unknown graph kind %q", kind)
}

// ParseProcess maps a CLI name to a Process.
func ParseProcess(name string) (Process, error) {
	switch name {
	case "seq", "sequential":
		return Seq, nil
	case "par", "parallel":
		return Par, nil
	case "unif", "uniform":
		return Unif, nil
	case "ctu", "ct-uniform":
		return CTUnifTime, nil
	case "ctseq", "ct-sequential":
		return CTSeqTime, nil
	}
	return 0, fmt.Errorf("bench: unknown process %q (want seq|par|unif|ctu|ctseq)", name)
}
