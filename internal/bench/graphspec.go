package bench

import (
	"fmt"

	"dispersion/graphspec"
	"dispersion/internal/graph"
)

// ParseGraph builds a graph from a compact CLI spec:
//
//	path:N  cycle:N  complete:N  star:N  hypercube:K  bintree:LEVELS
//	lollipop:N  hair:N  pimple:N,H  treepath:LEVELS,PATHLEN
//	grid:AxB[xC...]  torus:AxB[xC...]  regular:N,D  gnp:N,P  tree:N
//
// Random families (regular, gnp, tree) are drawn deterministically from
// the given seed.
//
// Deprecated: ParseGraph is kept for the internal harness; new code
// should use the public dispersion/graphspec package, which this
// delegates to. The harness experiments need adjacency (exact solvers,
// spectra), so implicit backends are materialized to CSR here.
func ParseGraph(spec string, seed uint64) (*graph.CSR, error) {
	g, err := graphspec.Build(spec, seed)
	if err != nil {
		return nil, err
	}
	return graph.Materialize(g)
}

// ParseProcess maps a CLI name to a Process.
func ParseProcess(name string) (Process, error) {
	switch name {
	case "seq", "sequential":
		return Seq, nil
	case "par", "parallel":
		return Par, nil
	case "unif", "uniform":
		return Unif, nil
	case "ctu", "ct-uniform":
		return CTUnifTime, nil
	case "ctseq", "ct-sequential":
		return CTSeqTime, nil
	}
	return 0, fmt.Errorf("bench: unknown process %q (want seq|par|unif|ctu|ctseq)", name)
}
