package bench

import (
	"fmt"
	"math"

	"dispersion/internal/block"
	"dispersion/internal/bounds"
	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
	"dispersion/internal/stats"
	"dispersion/internal/walk"
)

func init() {
	register(Experiment{
		ID:     "E10",
		Title:  "Stochastic domination and total-steps equality",
		Source: "Theorem 4.1",
		Claim:  "τ_seq ⪯ τ_par (ECDF dominance) while total steps are equal in distribution (KS test)",
		Run:    runDomination,
	})
	register(Experiment{
		ID:     "E11",
		Title:  "Lazy slowdown factor",
		Source: "Theorem 4.3",
		Claim:  "lazy dispersion = (2+o(1))·non-lazy, for both processes",
		Run:    runLazyFactor,
	})
	register(Experiment{
		ID:     "E12",
		Title:  "Continuous-time Uniform vs Parallel",
		Source: "Theorem 4.8",
		Claim:  "τ_CTU = (1+o(1))·τ_par w.h.p. and in expectation",
		Run:    runCTU,
	})
	register(Experiment{
		ID:     "E13",
		Title:  "Non-concentration gadgets",
		Source: "Proposition 2.1",
		Claim:  "clique+hair: Ω(1) mass at O(E[D]/n); clique+hair-on-pimple: Ω(1/n) mass at Ω(E[D]·n)",
		Run:    runConcentration,
	})
	register(Experiment{
		ID:     "E14",
		Title:  "Hitting time is not a lower bound",
		Source: "Proposition 3.8",
		Claim:  "binary tree + n^(1/2-ε) path: t_seq = O(n log² n) while t_hit = Ω(n^(3/2-ε))",
		Run:    runHittingGap,
	})
	register(Experiment{
		ID:     "E15",
		Title:  "No least-action principle",
		Source: "Proposition A.1",
		Claim:  "the modified stopping rule ρ̃ disperses in O(n log n) vs Ω(n²) for the standard rule on clique+hair",
		Run:    runLeastAction,
	})
	register(Experiment{
		ID:     "E16",
		Title:  "Hitting-time upper bound",
		Source: "Theorem 3.1, Corollary 3.2",
		Claim:  "Pr[τ > 6·t_hit·log2 n] <= 1/n²; worst cases are Θ(n³ log n) general / Θ(n² log n) regular",
		Run:    runUpperBounds,
	})
	register(Experiment{
		ID:     "E17",
		Title:  "Tree lower bounds and the star",
		Source: "Theorem 3.7, Theorem 3.6",
		Claim:  "t_seq(T) >= 2n-3 for all trees; t_seq(S_n) ≈ 2·κ_cc·n makes it tight up to a small constant",
		Run:    runTreeBounds,
	})
	register(Experiment{
		ID:     "E18",
		Title:  "Cut & Paste bijection mechanics",
		Source: "Lemma 4.4, Lemma 4.6, Remark 4.5",
		Claim:  "StP/PtS are inverse bijections preserving total length; StP never shortens the longest row",
		Run:    runCutPaste,
	})
	register(Experiment{
		ID:     "E19",
		Title:  "Uniform-IDLA domination",
		Source: "Theorem 4.7",
		Claim:  "the Uniform-IDLA longest walk is stochastically dominated by the Parallel longest walk",
		Run:    runUniformDomination,
	})
}

func runDomination(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"graph", "E[τ_seq]", "E[τ_par]", "ECDF seq⪯par", "MW p (seq<par)", "KS p (total steps)"}}
	trials := cfg.scaled(500, 120)
	graphs := []*graph.CSR{graph.Complete(48), graph.Cycle(24), graph.CompleteBinaryTree(5)}
	pass := true
	var lastP float64
	for gi, g := range graphs {
		base := uint64(0x1000 + gi*16)
		seq := SampleDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, base)
		par := SampleDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, base+1)
		dom := stats.NewECDF(seq).DominatedBy(stats.NewECDF(par), 3/math.Sqrt(float64(trials)))
		_, mwP := stats.MannWhitneyU(seq, par)
		seqTot := SampleTotalSteps(g, 0, Seq, core.Options{}, trials, cfg.Seed, base+2)
		parTot := SampleTotalSteps(g, 0, Par, core.Options{}, trials, cfg.Seed, base+3)
		p := stats.KSPValue(stats.KSStatistic(seqTot, parTot), trials, trials)
		lastP = p
		same := p > 0.01
		tbl.AddRow(g.Name(), fm(stats.Summarize(seq).Mean), fm(stats.Summarize(par).Mean),
			fmt.Sprint(dom), fm(mwP), fm(p))
		// Domination must hold (ECDF), the one-sided rank test must
		// confirm seq < par, and KS must accept equal total-step laws.
		if !dom || !same || mwP > 0.05 {
			pass = false
		}
		cfg.printf("E10 %s done\n", g.Name())
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("domination holds on every family and KS accepts equal total-step laws (last p=%.3f)", lastP),
	}, nil
}

func runLazyFactor(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"graph", "process", "plain", "lazy", "ratio"}}
	trials := cfg.scaled(200, 100)
	type job struct {
		g *graph.CSR
		p Process
	}
	jobs := []job{
		{graph.Cycle(48), Seq}, {graph.Cycle(48), Par},
		{graph.Complete(96), Seq}, {graph.Complete(96), Par},
	}
	pass := true
	var worst float64 = 2
	for ji, j := range jobs {
		base := uint64(0x1100 + ji*4)
		plain := MeanDispersion(j.g, 0, j.p, core.Options{}, trials, cfg.Seed, base)
		lazy := MeanDispersion(j.g, 0, j.p, core.Options{Lazy: true}, trials, cfg.Seed, base+1)
		ratio := lazy.Mean / plain.Mean
		tbl.AddRow(j.g.Name(), j.p.String(), fm(plain.Mean), fm(lazy.Mean), fm(ratio))
		// The dispersion time has Θ(n)-wide fluctuations (the last
		// settlement is geometric), so finite-trial ratios wobble.
		if ratio < 1.6 || ratio > 2.4 {
			pass = false
		}
		if math.Abs(ratio-2) > math.Abs(worst-2) {
			worst = ratio
		}
		cfg.printf("E11 %s/%s done\n", j.g.Name(), j.p)
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("lazy/plain ratios cluster at 2 (worst deviation: %.3f)", worst),
	}, nil
}

func runCTU(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"graph", "E[τ_par]", "E[τ_CTU]", "ratio"}}
	trials := cfg.scaled(200, 50)
	graphs := []*graph.CSR{graph.Complete(128), graph.Hypercube(7)}
	pass := true
	var lastRatio float64
	for gi, g := range graphs {
		base := uint64(0x1200 + gi*4)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, base)
		ctu := MeanDispersion(g, 0, CTUnifTime, core.Options{}, trials, cfg.Seed, base+1)
		lastRatio = ctu.Mean / par.Mean
		tbl.AddRow(g.Name(), fm(par.Mean), fm(ctu.Mean), fm(lastRatio))
		if lastRatio < 0.8 || lastRatio > 1.25 {
			pass = false
		}
		cfg.printf("E12 %s done\n", g.Name())
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: fmt.Sprintf("CTU/parallel ratio ≈ 1 (last %.3f): the coupling of Theorem 4.8 is visible at finite n", lastRatio),
	}, nil
}

func runConcentration(cfg Config) (*Report, error) {
	trials := cfg.scaled(1500, 300)
	n := 96
	tbl := &Table{Columns: []string{"graph", "median", "mean", "P[D <= 20n]", "P[D >= n²/8]"}}

	g1 := graph.CliqueWithHair(n)
	d1 := SampleDispersion(g1, 0, Par, core.Options{}, trials, cfg.Seed, 0x1301)
	s1 := stats.Summarize(d1)
	fracSmall := stats.Fraction(d1, func(x float64) bool { return x <= 20*float64(n) })
	fracBig1 := stats.Fraction(d1, func(x float64) bool { return x >= float64(n*n)/8 })
	tbl.AddRow(g1.Name(), fm(s1.Median), fm(s1.Mean), fm(fracSmall), fm(fracBig1))

	h := int(float64(n) / math.Log(float64(n)))
	g2 := graph.CliqueWithHairOnPimple(n, h)
	d2 := SampleDispersion(g2, graph.PimpleVertex(n), Par, core.Options{}, trials, cfg.Seed, 0x1302)
	s2 := stats.Summarize(d2)
	fracSmall2 := stats.Fraction(d2, func(x float64) bool { return x <= 20*float64(n) })
	fracBig2 := stats.Fraction(d2, func(x float64) bool { return x >= float64(n*n)/8 })
	tbl.AddRow(g2.Name(), fm(s2.Median), fm(s2.Mean), fm(fracSmall2), fm(fracBig2))

	// G1: constant probability of being tiny relative to the mean (the
	// mean is inflated by the Ω(n²) branch), i.e. both branches have
	// constant mass. G2: the big branch has small (≈1/n·poly) mass but
	// must be present over enough trials.
	pass := fracSmall > 0.3 && fracBig1 > 0.1 && fracSmall2 > 0.8 &&
		fracBig2 > 0 && fracBig2 < 0.2
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("hair: bimodal (%.2f small, %.2f large); pimple: rare heavy tail (%.4f at Ω(n²))",
			fracSmall, fracBig1, fracBig2),
		Notes: []string{"neither dispersion time concentrates: Proposition 2.1's two regimes are both visible"},
	}, nil
}

func runHittingGap(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"n", "path len", "t_hit (exact)", "t_seq (sim)", "t_hit/t_seq"}}
	levelss := []int{8, 9, 10}
	if cfg.Scale >= 0.9 {
		levelss = []int{9, 10, 11}
	}
	trials := cfg.scaled(50, 15)
	var ratios []float64
	for _, lv := range levelss {
		treeN := 1<<lv - 1
		k := int(math.Sqrt(float64(treeN))) // ε -> 0 end of the family
		g := graph.BinaryTreeWithPath(lv, k)
		n := g.N()
		// t_hit is exact on trees: worst pair is deep-leaf <-> path end.
		far := n - 1 // path far end
		var thit float64
		for _, u := range []int{treeN - 1, 0, treeN} {
			if h := markov.TreeHit(g, u, far); h > thit {
				thit = h
			}
			if h := markov.TreeHit(g, far, u); h > thit {
				thit = h
			}
		}
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, uint64(0x1400+lv))
		ratio := thit / seq.Mean
		ratios = append(ratios, ratio)
		tbl.AddRow(fmt.Sprint(n), fmt.Sprint(k), fm(thit), fm(seq.Mean), fm(ratio))
		cfg.printf("E14 levels=%d done\n", lv)
	}
	// The gap t_hit/t_seq ~ sqrt(n)/log²n must grow with n.
	growing := ratios[len(ratios)-1] > ratios[0]*1.05
	exceeds := ratios[len(ratios)-1] > 1
	return &Report{
		Table: tbl,
		Pass:  growing && exceeds,
		Summary: fmt.Sprintf("t_hit/t_seq grows (%.2f -> %.2f): hitting time fails as a dispersion lower bound",
			ratios[0], ratios[len(ratios)-1]),
	}, nil
}

func runLeastAction(cfg Config) (*Report, error) {
	n := 96
	g := graph.CliqueWithHair(n)
	tip := int32(graph.HairTip(n))
	threshold := int64(3 * float64(n) * math.Log(float64(n)))
	rule := func(v int32, step int64) bool {
		return v == tip || step >= threshold
	}
	trials := cfg.scaled(400, 100)
	std := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, 0x1501)
	mod := MeanDispersion(g, 0, Seq, core.Options{Rule: rule}, trials, cfg.Seed, 0x1502)
	tbl := &Table{Columns: []string{"rule", "E[τ_seq]", "±"}}
	tbl.AddRow("standard (settle immediately)", fm(std.Mean), fm(std.StdErr))
	tbl.AddRow("ρ̃ (hold out for the hair)", fm(mod.Mean), fm(mod.StdErr))
	pass := mod.Mean < std.Mean*0.8
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("letting walks run longer SPEEDS dispersion: %.0f -> %.0f (no least-action principle)",
			std.Mean, mod.Mean),
	}, nil
}

func runUpperBounds(cfg Config) (*Report, error) {
	tbl := &Table{Columns: []string{"graph", "t_hit", "bound 6·t_hit·log2 n", "max τ_par observed", "margin"}}
	trials := cfg.scaled(120, 30)
	graphs := []*graph.CSR{
		graph.Complete(64), graph.Cycle(64), graph.Path(64), graph.Star(64),
		graph.Hypercube(6), graph.CompleteBinaryTree(6), graph.Lollipop(32),
		graph.Grid([]int{8, 8}, true), graph.Comb(8, 7), graph.Barbell(16, 8),
	}
	pass := true
	for gi, g := range graphs {
		h, err := markov.NewHitting(g)
		if err != nil {
			return nil, err
		}
		thit, _, _ := h.Max()
		bound := bounds.Theorem31(thit, g.N())
		xs := SampleDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, uint64(0x1600+gi))
		worst := stats.Summarize(xs).Max
		tbl.AddRow(g.Name(), fm(thit), fm(bound), fm(worst), fm(bound/worst))
		if worst > bound {
			pass = false
		}
		cfg.printf("E16 %s done\n", g.Name())
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: "every observed dispersion time sits below the Theorem 3.1 ceiling",
		Notes: []string{
			fmt.Sprintf("Corollary 3.2 ceilings at n=64: general %.3g, regular %.3g",
				bounds.Theorem31(bounds.GeneralWorstHitting(64), 64),
				bounds.Theorem31(bounds.RegularWorstHitting(64), 64)),
		},
	}, nil
}

func runTreeBounds(cfg Config) (*Report, error) {
	trials := cfg.scaled(300, 60)
	tbl := &Table{Columns: []string{"tree", "n", "E[τ_seq]", "2n-3", "E[τ_seq]/n"}}
	pass := true

	n := 256
	star := graph.Star(n)
	s := MeanDispersion(star, 0, Seq, core.Options{}, trials, cfg.Seed, 0x1701)
	tbl.AddRow("star", fmt.Sprint(n), fm(s.Mean), fm(bounds.TreeLower(n)), fm(s.Mean/float64(n)))
	twoKcc := 2 * bounds.KappaCC()
	if !within(s.Mean/float64(n), twoKcc, 0.12) {
		pass = false
	}

	r := rng.New(cfg.Seed ^ 0x1702)
	for i := 0; i < 3; i++ {
		rt := graph.RandomTree(64, r)
		rs := MeanDispersion(rt, 0, Seq, core.Options{}, trials, cfg.Seed, uint64(0x1710+i))
		tbl.AddRow(fmt.Sprintf("random tree %d", i), "64", fm(rs.Mean), fm(bounds.TreeLower(64)), fm(rs.Mean/64))
		if rs.Mean < bounds.TreeLower(64)*0.95 {
			pass = false
		}
	}
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("star t_seq/n = %.3f vs 2κ_cc = %.3f; all trees clear the 2n-3 bound",
			s.Mean/float64(n), twoKcc),
	}, nil
}

func runCutPaste(cfg Config) (*Report, error) {
	trials := cfg.scaled(200, 50)
	g := graph.Complete(32)
	rn := walk.NewRunner(cfg.Seed, 0x1801)
	type outcome struct {
		roundTrip, lengthKept, dominates bool
		ratio                            float64
	}
	outcomes := make([]outcome, trials)
	xs := rn.Run(trials, func(i int, r *rng.Source) float64 {
		res, err := core.Sequential(g, 0, core.Options{Record: true}, r)
		must(err)
		b, err := block.FromResult(res)
		must(err)
		orig := b.Clone()
		must(b.StP())
		o := outcome{
			lengthKept: b.TotalLength() == orig.TotalLength(),
			dominates:  b.LongestRow() >= orig.LongestRow(),
			ratio:      float64(b.LongestRow()) / float64(orig.LongestRow()),
		}
		must(b.PtS())
		o.roundTrip = b.Equal(orig)
		outcomes[i] = o
		return o.ratio
	})
	allRT, allLen, allDom := true, true, true
	for _, o := range outcomes {
		allRT = allRT && o.roundTrip
		allLen = allLen && o.lengthKept
		allDom = allDom && o.dominates
	}
	s := stats.Summarize(xs)
	tbl := &Table{Columns: []string{"property", "holds in", "of"}}
	count := func(ok bool) string {
		if ok {
			return fmt.Sprint(trials)
		}
		return "<" + fmt.Sprint(trials)
	}
	tbl.AddRow("PtS(StP(L)) == L", count(allRT), fmt.Sprint(trials))
	tbl.AddRow("total length preserved", count(allLen), fmt.Sprint(trials))
	tbl.AddRow("longest row non-decreasing (Lemma 4.6)", count(allDom), fmt.Sprint(trials))
	return &Report{
		Table: tbl,
		Pass:  allRT && allLen && allDom,
		Summary: fmt.Sprintf("bijection verified on %d recorded runs; mean parallel/sequential longest-row ratio %.3f",
			trials, s.Mean),
	}, nil
}

func runUniformDomination(cfg Config) (*Report, error) {
	trials := cfg.scaled(500, 120)
	tbl := &Table{Columns: []string{"graph", "E[longest] uniform", "E[longest] parallel", "ECDF unif⪯par"}}
	pass := true
	for gi, g := range []*graph.CSR{graph.Complete(64), graph.Cycle(24)} {
		base := uint64(0x1900 + gi*4)
		u := SampleDispersion(g, 0, Unif, core.Options{}, trials, cfg.Seed, base)
		p := SampleDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, base+1)
		dom := stats.NewECDF(u).DominatedBy(stats.NewECDF(p), 3/math.Sqrt(float64(trials)))
		tbl.AddRow(g.Name(), fm(stats.Summarize(u).Mean), fm(stats.Summarize(p).Mean), fmt.Sprint(dom))
		if !dom {
			pass = false
		}
		cfg.printf("E19 %s done\n", g.Name())
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: "uniform longest walk is dominated by parallel, per Theorem 4.7",
	}, nil
}
