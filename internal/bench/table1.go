package bench

import (
	"fmt"
	"io"

	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
)

// Table1Row is one graph family of the paper's Table 1 with measured
// quantities alongside the paper's asymptotic claims.
type Table1Row struct {
	Family     string
	N          int
	Cover      float64 // simulated E[t_cov] from vertex 0
	Hit        float64 // exact max pairwise hitting time
	Mix        int     // lazy TV mixing time (eps = 1/4)
	Tseq       float64 // simulated worst-origin E[τ_seq] (origin 0 heuristic)
	Tpar       float64
	PaperCover string
	PaperHit   string
	PaperMix   string
	PaperDisp  string
}

// Table1 computes the measured analogue of the paper's Table 1 on moderate
// instances of every family. Sizes are chosen so the dense hitting-time
// solve and the Θ(n² log n) simulations stay in seconds at scale 1.
func Table1(cfg Config) ([]Table1Row, error) {
	trials := cfg.scaled(120, 25)
	coverTrials := cfg.scaled(200, 40)
	type fam struct {
		g          *graph.CSR
		origin     int
		mixCap     int
		pc, ph, pm string
		pd         string
	}
	expander, err := graph.RandomRegular(128, 4, rng.New(cfg.Seed^0x7a61))
	if err != nil {
		return nil, err
	}
	fams := []fam{
		{graph.Path(64), 0, 1 << 18, "n²", "n²", "O(n²)", "κ_p·n² log n"},
		{graph.Cycle(64), 0, 1 << 18, "n²/2", "n²/2", "O(n²)", "Θ(n² log n)"},
		{graph.Grid([]int{12, 12}, true), 0, 1 << 16, "Θ(n log² n)", "Θ(n log n)", "Θ(n)", "Ω(n log n), O(n log² n)"},
		{graph.Grid([]int{5, 5, 5}, true), 0, 1 << 14, "Θ(n log n)", "Θ(n)", "Θ(n^(2/3))", "Θ(n)"},
		{graph.Hypercube(7), 0, 1 << 12, "Θ(n log n)", "Θ(n)", "log n·log log n", "Θ(n)"},
		{graph.CompleteBinaryTree(6), 0, 1 << 16, "Θ(n log n)", "Θ(n log n)", "n", "Θ(n log² n)"},
		{graph.Complete(128), 0, 64, "Θ(n log n)", "Θ(n)", "1", "κ_cc·n / (π²/6)·n"},
		{expander, 0, 1 << 12, "Θ(n log n)", "Θ(n)", "O(log n)", "Θ(n)"},
	}
	rows := make([]Table1Row, 0, len(fams))
	for fi, f := range fams {
		h, err := markov.NewHitting(f.g)
		if err != nil {
			return nil, err
		}
		thit, _, _ := h.Max()
		mix := markov.MixingTime(f.g, f.mixCap)
		cover := SampleCoverTime(f.g, f.origin, coverTrials, cfg.Seed, uint64(0x2000+fi*8))
		seq := MeanDispersion(f.g, f.origin, Seq, core.Options{}, trials, cfg.Seed, uint64(0x2001+fi*8))
		par := MeanDispersion(f.g, f.origin, Par, core.Options{}, trials, cfg.Seed, uint64(0x2002+fi*8))
		rows = append(rows, Table1Row{
			Family: f.g.Name(), N: f.g.N(),
			Cover: cover.Mean, Hit: thit, Mix: mix,
			Tseq: seq.Mean, Tpar: par.Mean,
			PaperCover: f.pc, PaperHit: f.ph, PaperMix: f.pm, PaperDisp: f.pd,
		})
		cfg.printf("table1: %s done\n", f.g.Name())
	}
	return rows, nil
}

// RenderTable1 writes the measured Table 1 alongside the paper's claims.
func RenderTable1(rows []Table1Row, w io.Writer) {
	tbl := &Table{Columns: []string{
		"family", "n", "t_cov(sim)", "t_hit(exact)", "t_mix(TV)", "t_seq(sim)", "t_par(sim)", "paper dispersion"}}
	for _, r := range rows {
		tbl.AddRow(r.Family, fmt.Sprint(r.N), fm(r.Cover), fm(r.Hit), fmt.Sprint(r.Mix),
			fm(r.Tseq), fm(r.Tpar), r.PaperDisp)
	}
	tbl.Render(w)
}
