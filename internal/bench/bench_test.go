package bench

import (
	"bytes"
	"strings"
	"testing"

	"dispersion/internal/core"
	"dispersion/internal/graph"
)

// smoke is the scale used by tests: small but large enough that the
// qualitative claims (ratios, exponents, dominance) still hold.
var smoke = Config{Seed: 12345, Scale: 0.25}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 24 (E01..E24)", len(all))
	}
	for i, e := range all {
		want := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09",
			"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
			"E20", "E21", "E22", "E23", "E24"}[i]
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Source == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("E99"); ok {
		t.Fatal("unknown experiment found")
	}
	if _, ok := Get("E01"); !ok {
		t.Fatal("E01 missing")
	}
}

// Fast experiments run as individual tests at smoke scale; the heavyweight
// sweeps (E02-E09) are exercised together in TestRunSweepExperiments with
// -short skipping.

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := e.Run(smoke)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.Summary == "" {
		t.Errorf("%s: empty summary", id)
	}
	if rep.Table == nil || len(rep.Table.Rows) == 0 {
		t.Errorf("%s: empty table", id)
	}
	if !rep.Pass {
		t.Errorf("%s: claim check failed: %s", id, rep.Summary)
	}
	return rep
}

func TestE01Clique(t *testing.T)            { runExp(t, "E01") }
func TestE10Domination(t *testing.T)        { runExp(t, "E10") }
func TestE11LazyFactor(t *testing.T)        { runExp(t, "E11") }
func TestE12CTU(t *testing.T)               { runExp(t, "E12") }
func TestE13Concentration(t *testing.T)     { runExp(t, "E13") }
func TestE15LeastAction(t *testing.T)       { runExp(t, "E15") }
func TestE16UpperBounds(t *testing.T)       { runExp(t, "E16") }
func TestE17TreeBounds(t *testing.T)        { runExp(t, "E17") }
func TestE18CutPaste(t *testing.T)          { runExp(t, "E18") }
func TestE19UniformDomination(t *testing.T) { runExp(t, "E19") }
func TestE24ExactGroundTruth(t *testing.T)  { runExp(t, "E24") }

func TestSweepExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiments are slow; run without -short")
	}
	for _, id := range []string{"E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E14", "E20", "E21", "E22", "E23"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			runExp(t, id)
		})
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("1", "x,y")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Fatalf("bad render:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("want header+rule+2 rows:\n%s", out)
	}
}

func TestScaled(t *testing.T) {
	c := Config{Scale: 0.1}
	if got := c.scaled(100, 5); got != 10 {
		t.Fatalf("scaled(100) at 0.1 = %d", got)
	}
	if got := c.scaled(20, 5); got != 5 {
		t.Fatalf("floor not applied: %d", got)
	}
	c = Config{} // zero scale treated as 1
	if got := c.scaled(100, 5); got != 100 {
		t.Fatalf("zero scale should mean full: %d", got)
	}
}

func TestSamplersDeterministic(t *testing.T) {
	g := graph.Complete(16)
	a := SampleDispersion(g, 0, Seq, core.Options{}, 16, 7, 9)
	b := SampleDispersion(g, 0, Seq, core.Options{}, 16, 7, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampler not deterministic at %d", i)
		}
	}
	c := SampleDispersion(g, 0, Seq, core.Options{}, 16, 7, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different experiment IDs produced identical samples")
	}
}

func TestProcessString(t *testing.T) {
	for _, p := range []Process{Seq, Par, Unif, CTUnifTime, CTSeqTime} {
		if p.String() == "" || strings.HasPrefix(p.String(), "process(") {
			t.Errorf("process %d has no name", int(p))
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 is slow; run without -short")
	}
	rows, err := Table1(smoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("table1 has %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Tpar < r.Tseq*0.8 {
			t.Errorf("%s: t_par %.0f far below t_seq %.0f (violates Theorem 4.1 trend)",
				r.Family, r.Tpar, r.Tseq)
		}
		if r.Hit <= 0 || r.Cover <= 0 {
			t.Errorf("%s: degenerate analytics", r.Family)
		}
		// Dispersion cannot beat... cover time relates loosely; at least
		// check the Theorem 3.1 style ceiling massively holds.
		if r.Tpar > 6*r.Hit*20 {
			t.Errorf("%s: t_par %.0f implausibly above hitting scale", r.Family, r.Tpar)
		}
	}
	var buf bytes.Buffer
	RenderTable1(rows, &buf)
	if !strings.Contains(buf.String(), "hypercube") {
		t.Error("render missing families")
	}
}

func TestRunAllQuickSubset(t *testing.T) {
	// RunAll plumbing: run a tiny private registry through the renderer.
	var buf bytes.Buffer
	e, _ := Get("E18")
	rep, err := e.Run(smoke)
	if err != nil {
		t.Fatal(err)
	}
	rep.Table.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
