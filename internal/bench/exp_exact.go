package bench

import (
	"fmt"

	"dispersion/internal/core"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
	"dispersion/internal/stats"
)

func init() {
	register(Experiment{
		ID:     "E24",
		Title:  "Exact ground truth at small n",
		Source: "Theorem 4.1 (exact check), simulator validation",
		Claim:  "subset-DP exact values match the simulator, and the exact parallel CDF is dominated by the exact sequential CDF pointwise",
		Run:    runExactGroundTruth,
	})
}

func runExactGroundTruth(cfg Config) (*Report, error) {
	trials := cfg.scaled(4000, 800)
	tbl := &Table{Columns: []string{"graph", "E[τ_seq] exact", "E[τ_seq] sim", "E[τ_par] exact", "E[τ_par] sim", "exact domination"}}
	graphs := []*graph.CSR{graph.Complete(6), graph.Cycle(6), graph.Star(6), graph.Path(5)}
	pass := true
	const T = 800
	for gi, g := range graphs {
		es, err := exact.NewSequential(g, 0)
		if err != nil {
			return nil, err
		}
		ep, err := exact.NewParallel(g, 0)
		if err != nil {
			return nil, err
		}
		seqExact, tailS := es.ExpectedDispersion(T)
		parExact, tailP := ep.ExpectedDispersion(T)
		if tailS > 1e-8 || tailP > 1e-8 {
			return nil, fmt.Errorf("bench: exact horizon too short on %s", g.Name())
		}
		base := uint64(0x2400 + gi*4)
		seqSim := stats.Summarize(SampleDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, base))
		parSim := stats.Summarize(SampleDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, base+1))

		// Pointwise CDF domination, zero Monte-Carlo error.
		sc := es.DispersionCDF(T)
		pc := ep.DispersionCDF(T)
		dom := true
		for i := range sc {
			if pc[i] > sc[i]+1e-9 {
				dom = false
				break
			}
		}
		tbl.AddRow(g.Name(), fm(seqExact), fm(seqSim.Mean), fm(parExact), fm(parSim.Mean), fmt.Sprint(dom))
		if !dom ||
			!within(seqSim.Mean, seqExact, 0.05) || !within(parSim.Mean, parExact, 0.05) {
			pass = false
		}
		cfg.printf("E24 %s done\n", g.Name())
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: "simulator agrees with subset-DP exact values; Theorem 4.1 domination holds exactly (no sampling error)",
	}, nil
}
