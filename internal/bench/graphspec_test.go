package bench

import (
	"testing"
)

func TestParseGraphValid(t *testing.T) {
	cases := []struct {
		spec  string
		wantN int
	}{
		{"path:10", 10},
		{"cycle:12", 12},
		{"complete:8", 8},
		{"star:9", 9},
		{"hypercube:4", 16},
		{"bintree:4", 15},
		{"lollipop:10", 10},
		{"hair:9", 9},
		{"pimple:12,4", 12},
		{"treepath:3,4", 11},
		{"grid:3x4", 12},
		{"torus:4x4x4", 64},
		{"regular:16,3", 16},
		{"gnp:30,0.4", 30},
		{"tree:25", 25},
	}
	for _, c := range cases {
		g, err := ParseGraph(c.spec, 1)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("%s: N = %d, want %d", c.spec, g.N(), c.wantN)
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", c.spec)
		}
	}
}

func TestParseGraphDeterministicRandomFamilies(t *testing.T) {
	a, err := ParseGraph("regular:32,3", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseGraph("regular:32,3", 7)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("same seed, different graphs")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestParseGraphInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "nosep", "unknown:5", "path:abc", "pimple:5", "gnp:10",
		"gnp:10,notafloat", "grid:3xq", "regular:7,3", // odd n*d
	} {
		if _, err := ParseGraph(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseProcess(t *testing.T) {
	for name, want := range map[string]Process{
		"seq": Seq, "sequential": Seq, "par": Par, "parallel": Par,
		"unif": Unif, "uniform": Unif, "ctu": CTUnifTime, "ct-uniform": CTUnifTime,
		"ctseq": CTSeqTime, "ct-sequential": CTSeqTime,
	} {
		got, err := ParseProcess(name)
		if err != nil || got != want {
			t.Errorf("ParseProcess(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseProcess("bogus"); err == nil {
		t.Error("bogus process accepted")
	}
}
