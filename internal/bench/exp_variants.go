package bench

import (
	"fmt"

	"dispersion/internal/core"
	"dispersion/internal/graph"
)

func init() {
	register(Experiment{
		ID:     "E22",
		Title:  "Particle-count and origin variants",
		Source: "Section 6.2 (further directions)",
		Claim:  "dispersion grows with the particle count (conjecturally maximal at k=n) and shrinks with uniformly random origins",
		Run:    runVariants,
	})
	register(Experiment{
		ID:     "E23",
		Title:  "Conjecture 6.1 and Open Problem 2",
		Source: "Conjecture 6.1, Open Problem 2",
		Claim:  "t_par <= t_seq + t_cov (conjectured), and t_par/t_seq stays bounded by a constant across families",
		Run:    runConjectures,
	})
}

func runVariants(cfg Config) (*Report, error) {
	trials := cfg.scaled(200, 50)
	tbl := &Table{Columns: []string{"graph", "variant", "E[τ_par]", "±"}}
	pass := true
	for gi, g := range []*graph.CSR{graph.Complete(96), graph.Hypercube(6)} {
		n := g.N()
		var byK []float64
		var lastErr float64
		for ki, k := range []int{n / 4, n / 2, n} {
			s := MeanDispersion(g, 0, Par, core.Options{Particles: k}, trials,
				cfg.Seed, uint64(0x2200+gi*16+ki))
			byK = append(byK, s.Mean)
			lastErr = s.StdErr
			tbl.AddRow(g.Name(), fmt.Sprintf("k=%d", k), fm(s.Mean), fm(s.StdErr))
		}
		// Growth in k (the conjectured maximum at k=n).
		for i := 1; i < len(byK); i++ {
			if byK[i] < byK[i-1]*0.9 {
				pass = false
			}
		}
		rnd := MeanDispersion(g, 0, Par, core.Options{RandomOrigins: true}, trials,
			cfg.Seed, uint64(0x2280+gi))
		tbl.AddRow(g.Name(), "random origins", fm(rnd.Mean), fm(rnd.StdErr))
		// Spreading origins must not be slower than the common origin.
		// On the complete graph the two are equal in distribution up to
		// the instant settlements (every vertex is one hop from
		// everywhere), so allow Monte-Carlo noise.
		if rnd.Mean > byK[len(byK)-1]+3*(rnd.StdErr+lastErr) {
			pass = false
		}
		cfg.printf("E22 %s done\n", g.Name())
	}
	return &Report{
		Table:   tbl,
		Pass:    pass,
		Summary: "dispersion increases with particle count; random origins never slower (and faster where geometry matters)",
	}, nil
}

func runConjectures(cfg Config) (*Report, error) {
	trials := cfg.scaled(150, 40)
	coverTrials := cfg.scaled(150, 40)
	tbl := &Table{Columns: []string{"graph", "t_seq", "t_par", "t_cov", "t_par - t_seq", "t_par/t_seq"}}
	graphs := []*graph.CSR{
		graph.Complete(96), graph.Cycle(48), graph.Star(64),
		graph.Hypercube(6), graph.CompleteBinaryTree(5), graph.Lollipop(24),
		graph.CliqueWithHair(48),
	}
	pass := true
	maxRatio := 0.0
	for gi, g := range graphs {
		base := uint64(0x2300 + gi*8)
		seq := MeanDispersion(g, 0, Seq, core.Options{}, trials, cfg.Seed, base)
		par := MeanDispersion(g, 0, Par, core.Options{}, trials, cfg.Seed, base+1)
		cov := SampleCoverTime(g, 0, coverTrials, cfg.Seed, base+2)
		gap := par.Mean - seq.Mean
		ratio := par.Mean / seq.Mean
		if ratio > maxRatio {
			maxRatio = ratio
		}
		tbl.AddRow(g.Name(), fm(seq.Mean), fm(par.Mean), fm(cov.Mean), fm(gap), fm(ratio))
		// Conjecture 6.1 in expectation, with Monte-Carlo slack.
		noise := 3 * (par.StdErr + seq.StdErr + cov.StdErr)
		if gap > cov.Mean+noise {
			pass = false
		}
		cfg.printf("E23 %s done\n", g.Name())
	}
	// Open Problem 2: is t_par = O(t_seq)? The clique gives ~1.31; no
	// family here should stray far above that.
	if maxRatio > 2 {
		pass = false
	}
	return &Report{
		Table: tbl,
		Pass:  pass,
		Summary: fmt.Sprintf("t_par - t_seq <= t_cov on every family (Conjecture 6.1); max t_par/t_seq = %.2f (Open Problem 2)",
			maxRatio),
		Notes: []string{"both statements are open in the paper; these are empirical checks, not proofs"},
	}, nil
}
