// Package dispersion_test holds the repository-level benchmark harness:
// one testing.B target per Table 1 row / experiment of the paper (the
// experiment index in DESIGN.md maps IDs to targets), plus ablation
// benchmarks for the design decisions called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package dispersion_test

import (
	"context"
	"testing"

	"dispersion"
	"dispersion/agg"
	"dispersion/internal/bench"
	"dispersion/internal/benchsuite"
	"dispersion/internal/block"
	"dispersion/internal/core"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/rng"
	"dispersion/internal/walk"
)

// benchDispersion runs one process realization per iteration and reports
// steps/op via the returned dispersion metric.
func benchDispersion(b *testing.B, g *graph.CSR, origin int, p bench.Process, opt core.Options) {
	b.Helper()
	r := rng.New(uint64(b.N)) // distinct stream per sizing pass
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		switch p {
		case bench.Seq:
			res, err := core.Sequential(g, origin, opt, r)
			if err != nil {
				b.Fatal(err)
			}
			sink += float64(res.Dispersion)
		case bench.Par:
			res, err := core.Parallel(g, origin, opt, r)
			if err != nil {
				b.Fatal(err)
			}
			sink += float64(res.Dispersion)
		case bench.Unif:
			res, err := core.Uniform(g, origin, opt, r)
			if err != nil {
				b.Fatal(err)
			}
			sink += float64(res.Dispersion)
		case bench.CTUnifTime:
			res, err := core.CTUniform(g, origin, opt, r)
			if err != nil {
				b.Fatal(err)
			}
			sink += res.Time
		}
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// --- Table 1 rows (experiments E01-E09) ---

func BenchmarkTable1CliqueSeq(b *testing.B) {
	benchDispersion(b, graph.Complete(512), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1CliquePar(b *testing.B) {
	benchDispersion(b, graph.Complete(512), 0, bench.Par, core.Options{})
}

func BenchmarkTable1PathSeq(b *testing.B) {
	benchDispersion(b, graph.Path(128), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1PathPar(b *testing.B) {
	benchDispersion(b, graph.Path(128), 0, bench.Par, core.Options{})
}

func BenchmarkTable1CycleSeq(b *testing.B) {
	benchDispersion(b, graph.Cycle(128), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1Grid2DSeq(b *testing.B) {
	benchDispersion(b, graph.Grid([]int{16, 16}, true), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1Grid3DSeq(b *testing.B) {
	benchDispersion(b, graph.Grid([]int{8, 8, 8}, true), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1HypercubeSeq(b *testing.B) {
	benchDispersion(b, graph.Hypercube(9), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1BinaryTreeSeq(b *testing.B) {
	benchDispersion(b, graph.CompleteBinaryTree(9), 0, bench.Seq, core.Options{})
}

func BenchmarkTable1ExpanderSeq(b *testing.B) {
	g, err := graph.RandomRegular(512, 4, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	benchDispersion(b, g, 0, bench.Seq, core.Options{})
}

func BenchmarkLollipopSeq(b *testing.B) {
	benchDispersion(b, graph.Lollipop(32), 0, bench.Seq, core.Options{})
}

// --- Coupling experiments (E10-E19) ---

func BenchmarkDomination(b *testing.B) {
	// E10: one paired seq/par sample per iteration.
	g := graph.Complete(64)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sequential(g, 0, core.Options{}, r); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Parallel(g, 0, core.Options{}, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLazyFactor(b *testing.B) {
	benchDispersion(b, graph.Cycle(64), 0, bench.Seq, core.Options{Lazy: true})
}

func BenchmarkCTUvsParallel(b *testing.B) {
	benchDispersion(b, graph.Complete(256), 0, bench.CTUnifTime, core.Options{})
}

func BenchmarkConcentrationGadgets(b *testing.B) {
	benchDispersion(b, graph.CliqueWithHair(96), 0, bench.Par, core.Options{})
}

func BenchmarkHittingGap(b *testing.B) {
	// E14: exact tree hitting time on the counterexample tree.
	g := graph.BinaryTreeWithPath(10, 32)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += markov.TreeHit(g, 0, g.N()-1)
	}
	_ = sink
}

func BenchmarkLeastAction(b *testing.B) {
	n := 96
	tip := int32(graph.HairTip(n))
	rule := func(v int32, step int64) bool { return v == tip || step >= 1500 }
	benchDispersion(b, graph.CliqueWithHair(n), 0, bench.Seq, core.Options{Rule: rule})
}

func BenchmarkUpperBounds(b *testing.B) {
	// E16: the dense all-pairs hitting computation that feeds the bound.
	g := graph.Cycle(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := markov.NewHitting(g)
		if err != nil {
			b.Fatal(err)
		}
		if t, _, _ := h.Max(); t <= 0 {
			b.Fatal("bad hitting time")
		}
	}
}

func BenchmarkTreeLowerBound(b *testing.B) {
	benchDispersion(b, graph.Star(256), 0, bench.Seq, core.Options{})
}

func BenchmarkCutPaste(b *testing.B) {
	// E18: record a sequential history and push it through StP + PtS.
	g := graph.Complete(64)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Sequential(g, 0, core.Options{Record: true}, r)
		if err != nil {
			b.Fatal(err)
		}
		blk, err := block.FromResult(res)
		if err != nil {
			b.Fatal(err)
		}
		if err := blk.StP(); err != nil {
			b.Fatal(err)
		}
		if err := blk.PtS(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniform(b *testing.B) {
	benchDispersion(b, graph.Complete(128), 0, bench.Unif, core.Options{})
}

// --- Ablations (DESIGN.md "key design decisions") ---

// mapGraph is the naive adjacency representation ablated against CSR.
type mapGraph map[int32][]int32

func buildMapGraph(g *graph.CSR) mapGraph {
	m := make(mapGraph, g.N())
	for v := 0; v < g.N(); v++ {
		m[int32(v)] = append([]int32(nil), g.Neighbors(v)...)
	}
	return m
}

func BenchmarkStepCSR(b *testing.B) {
	g := graph.Grid([]int{32, 32}, true)
	r := rng.New(4)
	v := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = walk.Step(g, v, r)
	}
	_ = v
}

func BenchmarkStepMap(b *testing.B) {
	g := graph.Grid([]int{32, 32}, true)
	m := buildMapGraph(g)
	r := rng.New(4)
	v := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns := m[v]
		v = ns[r.Intn(len(ns))]
	}
	_ = v
}

// --- Step-kernel ablations (kernel vs generic CSR dispatch) ---

// benchStepKernel drives one walk through the given kernel; pairing each
// family's selected kernel against the graph's GenericKernel isolates the
// per-step win of closed-form/offsets-free dispatch.
func benchStepKernel(b *testing.B, g *graph.CSR, k graph.Kernel) {
	b.Helper()
	r := rng.New(4)
	v := int32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = k.Step(v, r)
	}
	_ = v
}

func BenchmarkStepKernelClique(b *testing.B) {
	g := graph.Complete(512)
	benchStepKernel(b, g, g.Kernel())
}

func BenchmarkStepGenericClique(b *testing.B) {
	g := graph.Complete(512)
	benchStepKernel(b, g, g.GenericKernel())
}

func BenchmarkStepKernelHypercube16(b *testing.B) {
	g := graph.Hypercube(16)
	benchStepKernel(b, g, g.Kernel())
}

func BenchmarkStepGenericHypercube16(b *testing.B) {
	g := graph.Hypercube(16)
	benchStepKernel(b, g, g.GenericKernel())
}

func BenchmarkStepKernelCycle(b *testing.B) {
	g := graph.Cycle(1 << 16)
	benchStepKernel(b, g, g.Kernel())
}

func BenchmarkStepGenericCycle(b *testing.B) {
	g := graph.Cycle(1 << 16)
	benchStepKernel(b, g, g.GenericKernel())
}

func BenchmarkStepKernelTorus3D(b *testing.B) {
	g := graph.Grid([]int{8, 8, 8}, true)
	benchStepKernel(b, g, g.Kernel())
}

func BenchmarkStepGenericTorus3D(b *testing.B) {
	g := graph.Grid([]int{8, 8, 8}, true)
	benchStepKernel(b, g, g.GenericKernel())
}

// --- Engine steady-state trial throughput (the zero-allocation hot path) ---

// BenchmarkEngineSuite drives every configuration of the checked-in
// benchmark-lab suites file (benchsuites.json) through the public engine
// loop — option resolution, per-worker scratch, kernel dispatch, result
// recycling — one sub-benchmark per configuration, with allocs/op
// expected to sit at ~0 in steady state (the fixed per-run setup
// amortizes across b.N trials). cmd/benchlab measures the very same
// configurations with repeated-sample statistics; this target keeps them
// reachable from plain `go test -bench`, e.g.:
//
//	go test -bench 'EngineSuite/engine/sequential' -benchmem
func BenchmarkEngineSuite(b *testing.B) {
	f, err := benchsuite.Load("benchsuites.json")
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range f.Configs(false) {
		b.Run(cfg.Name, func(b *testing.B) {
			eng := dispersion.Engine{Seed: cfg.Seed, Workers: cfg.Workers, ReuseResults: true}
			job := cfg.Job()
			job.Trials = b.N
			b.ReportAllocs()
			b.ResetTimer()
			err := eng.Run(context.Background(), job, func(dispersion.Trial) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Aggregation overhead (the agg sketches on the engine hot path) ---

// benchEngineSummary is benchEngineTrials with an agg.Summary folded on
// every trial; the delta against the matching raw-callback benchmark is
// the full per-trial cost of streaming aggregation (three sketch Adds
// plus the tallies). ReuseResults stays on: the summary reads only
// scalars, which is exactly the contract the server's summary_only path
// relies on.
func benchEngineSummary(b *testing.B, process, spec string) {
	b.Helper()
	eng := dispersion.Engine{Seed: 1, ReuseResults: true}
	sum := agg.NewSummary()
	b.ReportAllocs()
	b.ResetTimer()
	err := eng.Run(context.Background(), dispersion.Job{
		Process: process, Spec: spec, Trials: b.N,
	}, func(t dispersion.Trial) error {
		sum.Add(t.Result)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if sum.Trials != int64(b.N) {
		b.Fatalf("summary folded %d trials, want %d", sum.Trials, b.N)
	}
}

func BenchmarkEngineCliqueSeqSummary(b *testing.B) {
	benchEngineSummary(b, "sequential", "complete:512")
}

func BenchmarkEngineCycleSeqSummary(b *testing.B) {
	benchEngineSummary(b, "sequential", "cycle:128")
}

// BenchmarkSummaryAdd isolates one Summary.Add from the engine: the
// per-value cost of the exact-sum moments, the quantile sketch, and the
// histogram together.
func BenchmarkSummaryAdd(b *testing.B) {
	res := &dispersion.Result{Process: "sequential", Dispersion: 2219, TotalSteps: 40000}
	sum := agg.NewSummary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Dispersion = int64(1000 + i%2000) // spread across sketch buckets
		sum.Add(res)
	}
}

// BenchmarkSummaryMerge measures folding one populated shard summary
// into an accumulating one — the coordinator's per-shard cost in
// sketch-merge mode.
func BenchmarkSummaryMerge(b *testing.B) {
	shard := agg.NewSummary()
	res := &dispersion.Result{Process: "sequential"}
	for i := 0; i < 10000; i++ {
		res.Dispersion = int64(1000 + i%2000)
		shard.Add(res)
	}
	acc := agg.NewSummary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := acc.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTUHeapVsRounds ablates the event-heap continuous-time engine
// against a Poissonised round-based approximation (each round, every
// unsettled particle moves Poisson(1) times in index order).
func BenchmarkCTUHeap(b *testing.B) {
	benchDispersion(b, graph.Complete(256), 0, bench.CTUnifTime, core.Options{})
}

func BenchmarkCTURoundApprox(b *testing.B) {
	g := graph.Complete(256)
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundApproxCTU(g, 0, r)
	}
}

// roundApproxCTU is the discretised alternative design: time advances in
// unit rounds and each unsettled particle takes Poisson(1) steps per
// round. It loses the exact event ordering that Theorem 4.8's coupling
// needs, which is why the heap engine is the primary implementation.
func roundApproxCTU(g *graph.CSR, origin int, r *rng.Source) int {
	n := g.N()
	occupied := make([]bool, n)
	occupied[origin] = true
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = int32(origin)
	}
	active := make([]int32, 0, n-1)
	for i := 1; i < n; i++ {
		active = append(active, int32(i))
	}
	rounds := 0
	for len(active) > 0 {
		rounds++
		keep := active[:0]
		for _, p := range active {
			settledHere := false
			for s := int64(0); s < r.Poisson(1); s++ {
				pos[p] = walk.Step(g, pos[p], r)
				if !occupied[pos[p]] {
					occupied[pos[p]] = true
					settledHere = true
					break
				}
			}
			if !settledHere {
				keep = append(keep, p)
			}
		}
		active = keep
	}
	return rounds
}

// --- Exact ground-truth benchmarks (E24) ---

func BenchmarkExactSequential(b *testing.B) {
	g := graph.Complete(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := exact.NewSequential(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		if m, _ := e.ExpectedDispersion(400); m <= 0 {
			b.Fatal("bad exact mean")
		}
	}
}

func BenchmarkExactParallel(b *testing.B) {
	// K_5 keeps the collapsed state space small enough for a per-op
	// budget in the tens of milliseconds.
	g := graph.Complete(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := exact.NewParallel(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		if m, _ := e.ExpectedDispersion(300); m <= 0 {
			b.Fatal("bad exact mean")
		}
	}
}

// --- Analytics benchmarks ---

func BenchmarkJacobiSpectrum(b *testing.B) {
	g := graph.CompleteBinaryTree(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := markov.WalkSpectrum(g)
		if err != nil {
			b.Fatal(err)
		}
		if s.Lambda2() <= 0 {
			b.Fatal("bad spectrum")
		}
	}
}

func BenchmarkAllPairsHitting(b *testing.B) {
	g := graph.Grid([]int{12, 12}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := markov.NewHitting(g)
		if err != nil {
			b.Fatal(err)
		}
		if t, _, _ := h.Max(); t <= 0 {
			b.Fatal("bad hitting")
		}
	}
}

func BenchmarkSpectralGap(b *testing.B) {
	g := graph.Hypercube(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := markov.SpectralGap(g, 5000, 1e-10)
		if s.Gap <= 0 {
			b.Fatal("bad gap")
		}
	}
}

func BenchmarkMixingTime(b *testing.B) {
	g := graph.Hypercube(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if markov.MixingTime(g, 1<<12) <= 0 {
			b.Fatal("bad mixing time")
		}
	}
}
