// Package experiments is the public entry point to the paper's
// reproduction suite: one registered experiment per table row /
// quantitative claim of Rivera–Sauerwald–Stauffer–Sylvester (SPAA 2019),
// plus the measured analogue of the paper's Table 1.
//
// It re-exports the internal harness so command-line tools and external
// callers never import internal packages; the experiment implementations
// remain in internal/bench.
package experiments

import (
	"io"

	"dispersion/internal/bench"
)

// Config controls an experiment run (seed, work scale, progress output).
type Config = bench.Config

// Experiment couples a paper claim with the code that checks it.
type Experiment = bench.Experiment

// Report is the outcome of one experiment.
type Report = bench.Report

// Table is a rendered result grid with plain-text and CSV output.
type Table = bench.Table

// Table1Row is one graph-family row of the measured analogue of the
// paper's Table 1.
type Table1Row = bench.Table1Row

// Get returns the experiment registered under the given ID (e.g. "E01").
func Get(id string) (Experiment, bool) { return bench.Get(id) }

// All returns every registered experiment in ID order.
func All() []Experiment { return bench.All() }

// RunAll executes every experiment and writes a full report to w,
// returning the number of failed experiments.
func RunAll(cfg Config, w io.Writer) int { return bench.RunAll(cfg, w) }

// Table1 computes the measured analogue of the paper's Table 1.
func Table1(cfg Config) ([]Table1Row, error) { return bench.Table1(cfg) }

// RenderTable1 writes the rows as an aligned plain-text table.
func RenderTable1(rows []Table1Row, w io.Writer) { bench.RenderTable1(rows, w) }
