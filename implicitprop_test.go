package dispersion_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"dispersion"
	"dispersion/agg"
	"dispersion/internal/bounds"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
	"dispersion/internal/stats"
)

// implicitTwin pairs an implicit backend with the CSR twin holding the
// identical sorted adjacency, so the two are interchangeable inputs for
// any process under the kernel draw contract.
type implicitTwin struct {
	implicit dispersion.Graph
	csr      *graph.CSR
}

func implicitTwins(t *testing.T) map[string]implicitTwin {
	t.Helper()
	twins := make(map[string]implicitTwin)
	add := func(name string, g dispersion.Graph) {
		csr, err := graph.Materialize(g)
		if err != nil {
			t.Fatalf("materialize %s: %v", name, err)
		}
		twins[name] = implicitTwin{implicit: g, csr: csr}
	}
	torus2, err := graph.ImplicitTorus([]int{5, 4})
	if err != nil {
		t.Fatal(err)
	}
	add("torus-5x4", torus2)
	torus3, err := graph.ImplicitTorus([]int{4, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	add("torus-4x3x5", torus3)
	circ, err := graph.ImplicitCirculant(17, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	add("circulant-17", circ)
	add("complete-16", graph.ImplicitComplete(16))
	add("cycle-14", graph.ImplicitCycle(14))
	add("path-13", graph.ImplicitPath(13))
	add("hypercube-4", graph.ImplicitHypercube(4))
	// The permutation construction yields a multigraph with small
	// probability; scan seeds for an instance Materialize accepts as
	// simple.
	for seed := uint64(0); seed < 64; seed++ {
		rr, err := graph.ImplicitRandomRegular(30, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if csr, err := graph.Materialize(rr); err == nil {
			twins["rregular-30"] = implicitTwin{implicit: rr, csr: csr}
			break
		}
	}
	if _, ok := twins["rregular-30"]; !ok {
		t.Fatal("no simple random-regular instance in 64 seeds")
	}
	return twins
}

// TestImplicitProcessTwinBitIdentity pins every registered process
// bit-identical between an implicit backend and its CSR twin: same seed,
// same Result, same number of RNG draws. This is the process-level
// extension of the kernel-level stream identity proved in internal/graph.
func TestImplicitProcessTwinBitIdentity(t *testing.T) {
	for name, twin := range implicitTwins(t) {
		for _, pname := range dispersion.Processes() {
			p, err := dispersion.Lookup(pname)
			if err != nil {
				t.Fatal(err)
			}
			ri, rc := dispersion.NewSource(29), dispersion.NewSource(29)
			resI, err := p.Run(twin.implicit, 0, ri)
			if err != nil {
				t.Fatalf("%s on implicit %s: %v", pname, name, err)
			}
			resC, err := p.Run(twin.csr, 0, rc)
			if err != nil {
				t.Fatalf("%s on CSR %s: %v", pname, name, err)
			}
			if !reflect.DeepEqual(resI, resC) {
				t.Errorf("%s on %s: implicit and CSR results differ", pname, name)
			}
			if ri.Uint64() != rc.Uint64() {
				t.Errorf("%s on %s: implicit and CSR consumed different draw counts", pname, name)
			}
		}
	}
}

// TestImplicitProcessTwinBitIdentityOptions repeats the twin check under
// the option axes that reroute the hot paths: laziness, recording (which
// also exercises trajectory verification against the implicit edge test),
// and sub-n particle counts with random origins.
func TestImplicitProcessTwinBitIdentityOptions(t *testing.T) {
	optionSets := map[string][]dispersion.Option{
		"lazy":   {dispersion.WithLazy()},
		"record": {dispersion.WithRecord()},
		"sparse-origins": {
			dispersion.WithParticles(5),
			dispersion.WithRandomOrigins(),
		},
	}
	for name, twin := range implicitTwins(t) {
		for oname, opts := range optionSets {
			for _, pname := range []string{"sequential", "parallel", "uniform", "ct-uniform"} {
				p, err := dispersion.Lookup(pname)
				if err != nil {
					t.Fatal(err)
				}
				ri, rc := dispersion.NewSource(31), dispersion.NewSource(31)
				resI, err := p.Run(twin.implicit, 0, ri, opts...)
				if err != nil {
					t.Fatalf("%s/%s on implicit %s: %v", pname, oname, name, err)
				}
				resC, err := p.Run(twin.csr, 0, rc, opts...)
				if err != nil {
					t.Fatalf("%s/%s on CSR %s: %v", pname, oname, name, err)
				}
				if !reflect.DeepEqual(resI, resC) {
					t.Errorf("%s/%s on %s: implicit and CSR results differ", pname, oname, name)
				}
				if ri.Uint64() != rc.Uint64() {
					t.Errorf("%s/%s on %s: draw counts differ", pname, oname, name)
				}
				if oname == "record" {
					if err := resI.Check(twin.implicit); err != nil {
						t.Errorf("%s on %s: trajectory check against implicit edge test: %v", pname, name, err)
					}
				}
			}
		}
	}
}

// TestImplicitMakespanWithinTheoryBands simulates dispersion on implicit
// backends and checks the sampled makespans against the paper's bands
// computed from the materialized twin: the mean at least the Theorem 3.6
// expectation floor 2|E|/Δ (with the same slack the bounds package's own
// tests allow for sampling noise), and below the Theorem 3.1 ceiling
// 6·t_hit·log2 n.
func TestImplicitMakespanWithinTheoryBands(t *testing.T) {
	torus, err := graph.ImplicitTorus([]int{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	circ, err := graph.ImplicitCirculant(256, []int{1, 7, 31})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]dispersion.Graph{"torus-16x16": torus, "circulant-256": circ} {
		csr, err := graph.Materialize(g)
		if err != nil {
			t.Fatal(err)
		}
		h, err := markov.NewHitting(csr)
		if err != nil {
			t.Fatal(err)
		}
		thit, _, _ := h.Max()
		ceiling := bounds.Theorem31(thit, g.N())
		floor := bounds.EdgeDegreeLower(csr.M(), csr.MaxDegree())

		eng := dispersion.Engine{Seed: 17, Experiment: 3}
		xs, err := eng.Sample(context.Background(), dispersion.Job{
			Process: "sequential", Graph: g, Trials: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		mean := stats.Summarize(xs).Mean
		if mean < floor*0.9 {
			t.Errorf("%s: mean makespan %v below the 2|E|/Δ floor %v", name, mean, floor)
		}
		if mean > ceiling {
			t.Errorf("%s: mean makespan %v above the Theorem 3.1 ceiling %v", name, mean, ceiling)
		}
	}
}

// TestMillionVertexTorusSummaryOnly is the headline acceptance run: a
// 1024x1024 torus (n = 2^20 > 10^6) dispersing 4096 particles,
// summary-only, through the public engine. The graph is implicit and the
// occupancy sparse, so the whole pipeline must allocate O(particles +
// sketch) — the budget below is ~50x under the >= 20 MiB a materialized
// CSR would cost, and the run itself takes milliseconds.
func TestMillionVertexTorusSummaryOnly(t *testing.T) {
	eng := dispersion.Engine{Seed: 3, Experiment: 11, Workers: 1, ReuseResults: true}
	job := dispersion.Job{
		Process: "sequential",
		Spec:    "torus:1024x1024",
		Trials:  2,
		Options: []dispersion.Option{dispersion.WithParticles(4096)},
	}
	sum := agg.NewSummary()
	run := func() {
		if err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
			sum.Add(tr.Result)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: summary sketches and steady-state buffers

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	run()
	runtime.ReadMemStats(&m1)
	if alloc := int64(m1.TotalAlloc) - int64(m0.TotalAlloc); alloc > 8<<20 {
		t.Errorf("summary-only trials on torus:1024x1024 allocated %d bytes (budget 8 MiB): "+
			"an O(n) graph or occupancy structure leaked into the sparse path", alloc)
	}
	if sum.Trials != 2*int64(job.Trials) {
		t.Fatalf("summary folded %d trials, want %d", sum.Trials, 2*job.Trials)
	}
	if sum.Makespan.Moments.Mean() <= 0 {
		t.Fatal("summary carries no makespan mass")
	}
}
