package dispersion_test

// Property tests pinning every newly registered variant process —
// sequential-geom, sequential-threshold, capacity, capacity-parallel — to
// the extended internal/exact solvers on small ground-truth graphs. The
// Monte-Carlo side runs through Engine.TotalSteps, exercising the kernel +
// scratch + result-recycling hot path end to end; checkMean (from
// exactprop_test.go) asserts agreement within six standard errors under a
// fixed seed. capacity-parallel has no solver of its own: its total-steps
// law equals capacity-sequential's by the abelian (Diaconis-Fulton)
// property, the capacity analogue of Theorem 4.1 — so both processes pin
// to the same multiset DP.

import (
	"math"
	"testing"

	"dispersion"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
)

// variantGraphs extends propGraphs with a path: its degree-one endpoints
// exercise the no-draw step of every kernel and the solvers' handling of
// strongly non-uniform harmonic measures.
func variantGraphs() []struct {
	name string
	g    *graph.CSR
} {
	return []struct {
		name string
		g    *graph.CSR
	}{
		{"complete-5", graph.Complete(5)},
		{"star-5", graph.Star(5)},
		{"path-4", graph.Path(4)},
	}
}

// exactSeqVariant computes the exact E[TotalSteps] of a Sequential-process
// variant, failing the test on solver errors.
func exactSeqVariant(t *testing.T, g *graph.CSR, v exact.SeqVariant) float64 {
	t.Helper()
	want, err := exact.SeqExpectedTotalSteps(g, 0, v)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestExactPropertyGeom(t *testing.T) {
	for _, tc := range variantGraphs() {
		// The explicit parameter and the documented default q = 1/2.
		for _, q := range []float64{0.7, 0} {
			rule := exact.Rule{Kind: exact.RuleGeom, Q: q}
			var opts []dispersion.Option
			if q == 0 {
				rule.Q = 0.5
			} else {
				opts = append(opts, dispersion.WithSettleParam(q))
			}
			want := exactSeqVariant(t, tc.g, exact.SeqVariant{Rule: rule})
			mean, se := sampleTotalSteps(t, dispersion.Job{
				Process: "sequential-geom", Graph: tc.g, Trials: propTrials, Options: opts,
			}, 211)
			checkMean(t, tc.name+"/geom", mean, se, want)
		}
	}
}

func TestExactPropertyThreshold(t *testing.T) {
	for _, tc := range variantGraphs() {
		// The explicit parameter and the documented default T = n.
		for _, T := range []int{3, 0} {
			rule := exact.Rule{Kind: exact.RuleThreshold, T: T}
			var opts []dispersion.Option
			if T == 0 {
				rule.T = tc.g.N()
			} else {
				opts = append(opts, dispersion.WithSettleParam(float64(T)))
			}
			want := exactSeqVariant(t, tc.g, exact.SeqVariant{Rule: rule})
			mean, se := sampleTotalSteps(t, dispersion.Job{
				Process: "sequential-threshold", Graph: tc.g, Trials: propTrials, Options: opts,
			}, 223)
			checkMean(t, tc.name+"/threshold", mean, se, want)
		}
	}
}

// The settle-rule processes compose with the existing variant options.
// Note laziness does NOT simply double a geom run the way it doubles the
// standard process: a lazy stay on a vacant vertex is a fresh standing
// visit and draws a fresh acceptance coin, so the solver models the lazy
// tick chain directly (Rule.Lazy) instead of rescaling.
func TestExactPropertyGeomComposed(t *testing.T) {
	g := graph.Complete(5)
	want := exactSeqVariant(t, g, exact.SeqVariant{
		Rule:      exact.Rule{Kind: exact.RuleGeom, Q: 0.5, Lazy: true},
		Particles: 3,
	})
	mean, se := sampleTotalSteps(t, dispersion.Job{
		Process: "lazy-sequential-geom", Graph: g, Trials: propTrials,
		Options: []dispersion.Option{dispersion.WithParticles(3)},
	}, 227)
	checkMean(t, "complete-5/lazy-geom-particles", mean, se, want)
}

func TestExactPropertyCapacity(t *testing.T) {
	for _, tc := range variantGraphs() {
		// The default capacity (c = 2, k = 2n) and an explicit c = 3 with
		// a partial load.
		for _, cfg := range []struct {
			name string
			c, k int
			opts []dispersion.Option
		}{
			{"default", 2, 0, nil},
			{"c3-partial", 3, 2 * tc.g.N(), []dispersion.Option{
				dispersion.WithCapacity(3), dispersion.WithParticles(2 * tc.g.N()),
			}},
		} {
			want, err := exact.CapacityExpectedTotalSteps(tc.g, 0, cfg.c, cfg.k)
			if err != nil {
				t.Fatal(err)
			}
			mean, se := sampleTotalSteps(t, dispersion.Job{
				Process: "capacity", Graph: tc.g, Trials: propTrials, Options: cfg.opts,
			}, 229)
			checkMean(t, tc.name+"/capacity-"+cfg.name, mean, se, want)
		}
	}
}

// capacity-parallel pins to the capacity-sequential DP through the abelian
// total-steps identity (the capacity analogue of Theorem 4.1).
func TestExactPropertyCapacityParallel(t *testing.T) {
	for _, tc := range variantGraphs() {
		want, err := exact.CapacityExpectedTotalSteps(tc.g, 0, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		mean, se := sampleTotalSteps(t, dispersion.Job{
			Process: "capacity-parallel", Graph: tc.g, Trials: propTrials,
		}, 233)
		checkMean(t, tc.name+"/capacity-parallel", mean, se, want)

		// RandomPriority permutes conflict resolution but cannot change
		// the abelian total-steps law.
		meanRP, seRP := sampleTotalSteps(t, dispersion.Job{
			Process: "capacity-parallel", Graph: tc.g, Trials: propTrials,
			Options: []dispersion.Option{dispersion.WithRandomPriority()},
		}, 239)
		checkMean(t, tc.name+"/capacity-parallel-rp", meanRP, seRP, want)
	}
}

// The one-shot wrappers and registry variants agree with the *Into forms
// the engine drives: same stream, same results.
func TestVariantRegistryMatchesCore(t *testing.T) {
	g := graph.Star(6)
	for _, name := range []string{
		"sequential-geom", "sequential-threshold", "capacity", "capacity-parallel",
	} {
		a, err := dispersion.Run(name, g, 0, 41, dispersion.WithRecord())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := dispersion.Run(name, g, 0, 41, dispersion.WithRecord())
		if err != nil {
			t.Fatal(err)
		}
		if a.Dispersion != b.Dispersion || a.TotalSteps != b.TotalSteps {
			t.Errorf("%s: same seed diverged", name)
		}
		if err := a.Check(g); err != nil {
			t.Errorf("%s: invariant check: %v", name, err)
		}
		wantCap := 1
		if name == "capacity" || name == "capacity-parallel" {
			wantCap = 2
		}
		if a.Capacity != wantCap {
			t.Errorf("%s: Capacity = %d, want %d", name, a.Capacity, wantCap)
		}
	}
}

// Option validation of the new processes.
func TestVariantOptionErrors(t *testing.T) {
	g := graph.Complete(4)
	cases := []struct {
		name string
		proc string
		opts []dispersion.Option
	}{
		{"geom q>1", "sequential-geom", []dispersion.Option{dispersion.WithSettleParam(1.5)}},
		{"geom q<0", "sequential-geom", []dispersion.Option{dispersion.WithSettleParam(-0.5)}},
		{"geom NaN", "sequential-geom", []dispersion.Option{dispersion.WithSettleParam(math.NaN())}},
		{"threshold negative", "sequential-threshold", []dispersion.Option{dispersion.WithSettleParam(-3)}},
		{"threshold NaN", "sequential-threshold", []dispersion.Option{dispersion.WithSettleParam(math.NaN())}},
		{"threshold +Inf", "sequential-threshold", []dispersion.Option{dispersion.WithSettleParam(math.Inf(1))}},
		{"capacity negative", "capacity", []dispersion.Option{dispersion.WithCapacity(-1)}},
		{"capacity overload", "capacity", []dispersion.Option{
			dispersion.WithCapacity(2), dispersion.WithParticles(9),
		}},
		{"capacity-parallel overload", "capacity-parallel", []dispersion.Option{
			dispersion.WithParticles(100),
		}},
	}
	for _, tc := range cases {
		if _, err := dispersion.Run(tc.proc, g, 0, 1, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
