package dispersion_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"dispersion"
	"dispersion/agg"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
)

// TestBatchedSummaryInvariance is the batched determinism contract at the
// engine layer: over 10^4 trials on K_64 (full load) and the 4096-cycle
// (32 particles), the trial summary is byte-identical for every batch
// width, worker count and trial sharding — the batched stream depends
// only on the (seed, experiment, trial) lineage, never on scheduling.
func TestBatchedSummaryInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("10^4-trial invariance sweep")
	}
	const total = 10_000
	for _, tc := range []struct {
		spec string
		opts []dispersion.Option
	}{
		{"complete:64", nil},
		{"cycle:4096", []dispersion.Option{dispersion.WithParticles(32)}},
	} {
		base := dispersion.Job{
			Process: "sequential",
			Spec:    tc.spec,
			Trials:  total,
			Options: append(append([]dispersion.Option(nil), tc.opts...), dispersion.WithBatch(64)),
		}
		_, want := foldSummary(t, dispersion.Engine{Seed: 5, Experiment: 3, Workers: 4}, base)

		// Different batch widths and worker counts over the contiguous
		// range.
		for _, v := range []struct {
			batch, workers int
			reuse          bool
		}{
			{1, 1, false},
			{7, 5, true},
			{256, 2, false},
		} {
			job := base
			job.Options = append(append([]dispersion.Option(nil), tc.opts...), dispersion.WithBatch(v.batch))
			eng := dispersion.Engine{Seed: 5, Experiment: 3, Workers: v.workers, ReuseResults: v.reuse}
			_, got := foldSummary(t, eng, job)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: batch %d workers %d diverged from the baseline summary", tc.spec, v.batch, v.workers)
			}
		}

		// Sharded: two FirstTrial ranges with different batch widths and
		// worker counts, merged.
		merged := agg.NewSummary()
		first := 0
		for i, shard := range []struct {
			trials, batch, workers int
		}{
			{4_000, 32, 3},
			{6_000, 128, 6},
		} {
			job := base
			job.FirstTrial, job.Trials = first, shard.trials
			job.Options = append(append([]dispersion.Option(nil), tc.opts...), dispersion.WithBatch(shard.batch))
			eng := dispersion.Engine{Seed: 5, Experiment: 3, Workers: shard.workers, ReuseResults: i%2 == 0}
			part, _ := foldSummary(t, eng, job)
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
			first += shard.trials
		}
		got, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: sharded batched summary diverged from the contiguous one", tc.spec)
		}
	}
}

// TestBatchedMeanMatchesExact pins the batched path's dispersion mean on
// K_5 against the internal/exact subset DP — the ground-truth side of the
// "distribution-identical to scalar" contract, since the scalar path is
// pinned to the same constant.
func TestBatchedMeanMatchesExact(t *testing.T) {
	g := graph.Complete(5)
	e, err := exact.NewSequential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, tail := e.ExpectedDispersion(400)
	if tail > 1e-9 {
		t.Fatalf("exact computation truncated too early (tail %g)", tail)
	}
	eng := dispersion.Engine{Seed: 11, Experiment: 7}
	xs, err := eng.Sample(context.Background(), dispersion.Job{
		Process: "sequential",
		Graph:   g,
		Trials:  6000,
		Options: []dispersion.Option{dispersion.WithBatch(16)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	got := sum / float64(len(xs))
	if diff := math.Abs(got - mean); diff > 0.05*mean {
		t.Fatalf("batched mean %.4f vs exact %.4f (diff %.4f)", got, mean, diff)
	}
}

// TestBatchedMatchesScalarStats compares the batched and scalar paths as
// estimators on the same jobs: their dispersion and total-steps means
// must agree within a generous multiple of the Monte-Carlo standard
// error. The streams differ (counter-mode vs xoshiro), the laws must not.
func TestBatchedMatchesScalarStats(t *testing.T) {
	const trials = 6000
	for _, tc := range []struct {
		spec string
		opts []dispersion.Option
	}{
		{"complete:64", nil},
		{"cycle:4096", []dispersion.Option{dispersion.WithParticles(32)}},
	} {
		base := dispersion.Job{Process: "sequential", Spec: tc.spec, Trials: trials, Options: tc.opts}
		batched := base
		batched.Options = append(append([]dispersion.Option(nil), tc.opts...), dispersion.WithBatch(64))
		eng := dispersion.Engine{Seed: 3, Experiment: 9}
		for name, sample := range map[string]func(context.Context, dispersion.Job) ([]float64, error){
			"dispersion": eng.Sample,
			"totalsteps": eng.TotalSteps,
		} {
			xs, err := sample(context.Background(), base)
			if err != nil {
				t.Fatal(err)
			}
			ys, err := sample(context.Background(), batched)
			if err != nil {
				t.Fatal(err)
			}
			mx, vx := meanVar(xs)
			my, vy := meanVar(ys)
			se := math.Sqrt(vx/float64(len(xs)) + vy/float64(len(ys)))
			if diff := math.Abs(mx - my); diff > 6*se+1e-9 {
				t.Errorf("%s %s: scalar mean %.4f vs batched %.4f (diff %.4f, 6·se %.4f)",
					tc.spec, name, mx, my, diff, 6*se)
			}
		}
	}
}

// meanVar returns the sample mean and (unbiased) variance of xs.
func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

// TestWeightedRegistry runs every registered process on a weighted
// backend — the alias-table kernel behind graph.WeightedCSR — checks each
// result's structural invariants, and requires the result stream to be
// worker-count invariant, extending the registry determinism suite to
// weighted graphs. Lane-capable processes repeat the run batched.
func TestWeightedRegistry(t *testing.T) {
	g, err := graph.WeightedComplete(12, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range dispersion.Processes() {
		job := dispersion.Job{Process: proc, Graph: g, Trials: 8}
		_, want := foldSummary(t, dispersion.Engine{Seed: 2, Experiment: 4, Workers: 1}, job)
		err := dispersion.Engine{Seed: 2, Experiment: 4, Workers: 5}.Run(context.Background(), job,
			func(tr dispersion.Trial) error { return tr.Result.Check(g) })
		if err != nil {
			t.Fatalf("%s on %s: %v", proc, g.Name(), err)
		}
		_, got := foldSummary(t, dispersion.Engine{Seed: 2, Experiment: 4, Workers: 5}, job)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s on %s: summary depends on worker count", proc, g.Name())
		}

		batched := job
		batched.Options = []dispersion.Option{dispersion.WithBatch(3)}
		err = dispersion.Engine{Seed: 2, Experiment: 4}.Run(context.Background(), batched,
			func(tr dispersion.Trial) error { return tr.Result.Check(g) })
		if isLaneCapable(proc) {
			if err != nil {
				t.Fatalf("%s batched on %s: %v", proc, g.Name(), err)
			}
		} else if err == nil {
			t.Fatalf("%s: WithBatch accepted by a process with no batched form", proc)
		}
	}
}

// isLaneCapable reports whether the process has a batched form
// (Sequential-family only; see WithBatch).
func isLaneCapable(proc string) bool {
	switch proc {
	case "sequential", "sequential-geom", "sequential-threshold", "capacity",
		"lazy-sequential", "lazy-sequential-geom", "lazy-sequential-threshold", "lazy-capacity":
		return true
	}
	return false
}

// TestBatchedManyWorkersSmallB floods the lane scheduler with far more
// workers than lane slots — the CI -race smoke shape — and checks the
// delivery order and per-trial invariants survive.
func TestBatchedManyWorkersSmallB(t *testing.T) {
	g := graph.Complete(16)
	eng := dispersion.Engine{Seed: 13, Experiment: 1, Workers: 16, ReuseResults: true}
	next := 0
	err := eng.Run(context.Background(), dispersion.Job{
		Process: "sequential",
		Graph:   g,
		Trials:  600,
		Options: []dispersion.Option{dispersion.WithBatch(2)},
	}, func(tr dispersion.Trial) error {
		if tr.Index != next {
			t.Fatalf("trial %d delivered out of order (want %d)", tr.Index, next)
		}
		next++
		return tr.Result.Check(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 600 {
		t.Fatalf("delivered %d trials, want 600", next)
	}
}

// TestCapacitiesMatchExact pins WithCapacities runs — scalar and batched
// — against the vector-capacity DP in internal/exact on K_4 and the
// 4-vertex star: the total-steps and dispersion means must match the
// exact constants.
func TestCapacitiesMatchExact(t *testing.T) {
	const trials = 6000
	for _, tc := range []struct {
		g    *graph.CSR
		caps []int
	}{
		{graph.Complete(4), []int{2, 1, 1, 3}},
		{graph.Star(4), []int{1, 2, 1, 2}},
	} {
		wantTotal, err := exact.CapacityVecExpectedTotalSteps(tc.g, 0, tc.caps, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantDisp, tail, err := exact.CapacityVecExpectedDispersion(tc.g, 0, tc.caps, 0, 400)
		if err != nil {
			t.Fatal(err)
		}
		if tail > 1e-9 {
			t.Fatalf("%s: exact dispersion truncated too early (tail %g)", tc.g.Name(), tail)
		}
		for name, opts := range map[string][]dispersion.Option{
			"scalar":  {dispersion.WithCapacities(tc.caps)},
			"batched": {dispersion.WithCapacities(tc.caps), dispersion.WithBatch(16)},
		} {
			eng := dispersion.Engine{Seed: 17, Experiment: 5}
			job := dispersion.Job{Process: "capacity", Graph: tc.g, Trials: trials, Options: opts}
			totals, err := eng.TotalSteps(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			disps, err := eng.Sample(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			mt, _ := meanVar(totals)
			md, _ := meanVar(disps)
			if diff := math.Abs(mt - wantTotal); diff > 0.05*wantTotal+0.05 {
				t.Errorf("%s %s: total-steps mean %.4f vs exact %.4f", tc.g.Name(), name, mt, wantTotal)
			}
			if diff := math.Abs(md - wantDisp); diff > 0.05*wantDisp+0.05 {
				t.Errorf("%s %s: dispersion mean %.4f vs exact %.4f", tc.g.Name(), name, md, wantDisp)
			}
		}
	}
}

// TestBatchedOptionErrors covers the engine-level rejections of WithBatch
// combinations the lane cannot honor.
func TestBatchedOptionErrors(t *testing.T) {
	g := graph.Complete(8)
	run := func(proc string, opts ...dispersion.Option) error {
		return dispersion.Engine{Seed: 1}.Run(context.Background(),
			dispersion.Job{Process: proc, Graph: g, Trials: 4, Options: opts}, nil)
	}
	if err := run("parallel", dispersion.WithBatch(8)); err == nil {
		t.Error("WithBatch accepted on the parallel process")
	}
	if err := run("sequential", dispersion.WithBatch(8), dispersion.WithRecord()); err == nil {
		t.Error("WithBatch + WithRecord accepted")
	}
	if err := run("sequential", dispersion.WithBatch(8),
		dispersion.WithSettleRule(func(v int32, step int64) bool { return true })); err == nil {
		t.Error("WithBatch + WithSettleRule accepted")
	}
	if err := run("sequential", dispersion.WithBatch(-3)); err == nil {
		t.Error("negative batch width accepted")
	}

	// The one-shot Process.Run path rejects the same shapes.
	p, err := dispersion.Lookup("parallel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(g, 0, dispersion.NewSource(1), dispersion.WithBatch(4)); err == nil {
		t.Error("one-shot WithBatch accepted on the parallel process")
	}
}
