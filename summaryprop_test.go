package dispersion_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sort"
	"testing"

	"dispersion"
	"dispersion/agg"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
	"dispersion/internal/stats"
)

// foldSummary runs one job and folds every trial into a fresh
// agg.Summary, returning the summary and its canonical (compact) JSON.
func foldSummary(t *testing.T, eng dispersion.Engine, job dispersion.Job) (*agg.Summary, []byte) {
	t.Helper()
	s := agg.NewSummary()
	err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
		s.Add(tr.Result)
		return nil
	})
	if err != nil {
		t.Fatalf("Engine.Run: %v", err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	return s, b
}

// TestShardSummariesMatchContiguous is the aggregation property test:
// for every registered process, folding each FirstTrial shard into its
// own agg.Summary and merging — in shard order or reversed, with a
// different worker count and result-reuse mode per shard — produces a
// summary byte-identical to the contiguous run's. This extends the
// result-stream bit-identity property of
// TestFirstTrialShardsMatchContiguous to the sketch layer: the sketches
// are pure functions of the trial multiset, not of arrival order.
func TestShardSummariesMatchContiguous(t *testing.T) {
	const total = 24
	splits := [][]int{
		{total},               // one shard: a pure Merge-into-empty no-op
		{8, 9, 7},             // uneven 3-way
		{3, 4, 3, 4, 3, 4, 3}, // 7-way
	}
	for _, proc := range dispersion.Processes() {
		base := dispersion.Job{Process: proc, Spec: "complete:16", Trials: total}
		_, want := foldSummary(t, dispersion.Engine{Seed: 5, Experiment: 2}, base)
		for si, split := range splits {
			parts := make([]*agg.Summary, len(split))
			first := 0
			for k, n := range split {
				eng := dispersion.Engine{
					Seed:         5,
					Experiment:   2,
					Workers:      1 + (si+3*k)%7,
					ReuseResults: k%2 == 0,
				}
				job := base
				job.FirstTrial, job.Trials = first, n
				parts[k], _ = foldSummary(t, eng, job)
				first += n
			}
			for name, order := range map[string][]*agg.Summary{
				"forward":  parts,
				"reversed": reversed(parts),
			} {
				merged := agg.NewSummary()
				for _, p := range order {
					if err := merged.Merge(p); err != nil {
						t.Fatalf("%s split %d: merge: %v", proc, si, err)
					}
				}
				got, err := json.Marshal(merged)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: split %v merged %s diverged from the contiguous summary\ngot  %s\nwant %s",
						proc, split, name, got, want)
				}
			}
		}
	}
}

// reversed returns a reversed copy of parts.
func reversed(parts []*agg.Summary) []*agg.Summary {
	out := make([]*agg.Summary, len(parts))
	for i, p := range parts {
		out[len(parts)-1-i] = p
	}
	return out
}

// TestSummaryMatchesOfflineStats checks the sketch read paths against
// the offline internal/stats toolkit on the same trial multiset,
// including a continuous-time process whose makespans are not integers:
// the moments must agree to float64 rounding, the quantile sketch
// within its documented relative-error budget, and the histogram CDF
// exactly at bucket edges.
func TestSummaryMatchesOfflineStats(t *testing.T) {
	for _, proc := range []string{"sequential", "ct-uniform"} {
		eng := dispersion.Engine{Seed: 9, Experiment: 1}
		job := dispersion.Job{Process: proc, Spec: "complete:24", Trials: 1500}
		sum, _ := foldSummary(t, eng, job)

		xs := make([]float64, 0, job.Trials)
		err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
			xs = append(xs, tr.Result.Makespan())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		off := stats.Summarize(xs)

		m := sum.Makespan.Moments
		if m.N() != int64(off.N) || m.Min() != off.Min || m.Max() != off.Max {
			t.Fatalf("%s: moments n/min/max (%d, %g, %g) vs offline (%d, %g, %g)",
				proc, m.N(), m.Min(), m.Max(), off.N, off.Min, off.Max)
		}
		if diff := math.Abs(m.Mean() - off.Mean); diff > 1e-9*off.Mean {
			t.Errorf("%s: sketch mean %.12g vs offline %.12g", proc, m.Mean(), off.Mean)
		}
		if diff := math.Abs(m.Variance() - off.Variance); diff > 1e-6*off.Variance {
			t.Errorf("%s: sketch variance %.12g vs offline %.12g", proc, m.Variance(), off.Variance)
		}

		sort.Float64s(xs)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			want := stats.Quantile(xs, q)
			got := sum.Makespan.Quantiles.Query(q)
			if want > 0 && math.Abs(got-want) > 1.5*sum.Makespan.Quantiles.Alpha()*want {
				t.Errorf("%s: q%.2f sketch %.6g vs offline %.6g", proc, q, got, want)
			}
		}

		h := sum.Makespan.Histogram
		edge := 8 * h.Width()
		below := 0
		for _, x := range xs {
			if x < edge {
				below++
			}
		}
		if got, want := h.CDF(edge), float64(below)/float64(len(xs)); got != want {
			t.Errorf("%s: CDF(%g) = %.6g, want exact %.6g", proc, edge, got, want)
		}
	}
}

// TestSummaryMeanMatchesExact pins the summary's mean against
// internal/exact ground truth for the sequential process on K_5 and the
// 5-vertex star, mirroring the sharded-sample check of
// TestShardedSampleMatchesExact through the sketch layer.
func TestSummaryMeanMatchesExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.CSR
	}{
		{"complete:5", graph.Complete(5)},
		{"star:5", graph.Star(5)},
	} {
		e, err := exact.NewSequential(tc.g, 0)
		if err != nil {
			t.Fatal(err)
		}
		mean, tail := e.ExpectedDispersion(400)
		if tail > 1e-9 {
			t.Fatalf("%s: exact computation truncated too early (tail %g)", tc.name, tail)
		}
		sum, _ := foldSummary(t,
			dispersion.Engine{Seed: 11, ReuseResults: true},
			dispersion.Job{Process: "sequential", Graph: tc.g, Trials: 6000})
		got := sum.Makespan.Moments.Mean()
		if diff := math.Abs(got - mean); diff > 0.05*mean {
			t.Fatalf("%s: summary mean %.4f vs exact %.4f (diff %.4f)", tc.name, got, mean, diff)
		}
	}
}
