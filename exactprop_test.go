package dispersion_test

// Property tests pinning the simulator's non-default option combinations
// (WithLazy, WithParticles, WithRandomOrigins, and their combinations) to
// internal/exact ground truth on small graphs. The exact package computes
// fixed-origin quantities; the variants are derived from it:
//
//   - Lazy: a lazy chain's jump sequence has the law of the simple chain
//     and each jump costs an independent Geometric(1/2) number of ticks
//     (mean 2), so E[TotalSteps | lazy] = 2 · E[TotalSteps] exactly.
//   - Particles k < n: the k-particle run walks exactly the occupied sets
//     of sizes 1..k-1, so E[TotalSteps] truncates the subset DP at k
//     settlements.
//   - RandomOrigins: each particle starts uniformly; conditional on the
//     occupied set S the walker's settlement law is the harmonic measure
//     from its (uniform) start, giving a subset DP over per-origin exact
//     solvers.
//
// The Monte-Carlo side runs through Engine.TotalSteps, which exercises
// the kernel + scratch + result-recycling hot path end to end.

import (
	"context"
	"math"
	"math/bits"
	"testing"

	"dispersion"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
)

// masksByPopcount returns all n-bit masks ordered by population count,
// the traversal order of every occupied-set DP.
func masksByPopcount(n int) []uint32 {
	masks := make([]uint32, 0, 1<<n)
	for c := 0; c <= n; c++ {
		for m := uint32(0); m < 1<<n; m++ {
			if bits.OnesCount32(m) == c {
				masks = append(masks, m)
			}
		}
	}
	return masks
}

// exactTotalStepsParticles computes E[TotalSteps] of the Sequential
// process with k particles from a fixed origin: the subset DP of
// exact.Sequential.ExpectedTotalSteps truncated after k settlements.
func exactTotalStepsParticles(t *testing.T, g *graph.CSR, origin, k int) float64 {
	t.Helper()
	e, err := exact.NewSequential(g, origin)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	prob := map[uint32]float64{1 << origin: 1}
	var total float64
	for _, s := range masksByPopcount(n) {
		p, ok := prob[s]
		if !ok || bits.OnesCount32(s) >= k {
			continue
		}
		total += p * e.MeanAbsorptionTime(s)
		hm := e.HarmonicMeasure(s)
		for v := 0; v < n; v++ {
			if hm[v] > 0 {
				prob[s|1<<v] += p * hm[v]
			}
		}
	}
	return total
}

// exactTotalStepsRandomOrigins computes E[TotalSteps] of the Sequential
// process with k particles whose starts are independent uniform vertices:
// a subset DP over one exact solver per origin. A particle starting on a
// vacant vertex settles there with zero steps; one starting on an
// occupied vertex u walks with u's absorption law.
func exactTotalStepsRandomOrigins(t *testing.T, g *graph.CSR, k int) float64 {
	t.Helper()
	n := g.N()
	solvers := make([]*exact.Sequential, n)
	for u := 0; u < n; u++ {
		e, err := exact.NewSequential(g, u)
		if err != nil {
			t.Fatal(err)
		}
		solvers[u] = e
	}
	// Particle 0 settles instantly at its uniform start.
	prob := map[uint32]float64{}
	for u := 0; u < n; u++ {
		prob[1<<u] += 1.0 / float64(n)
	}
	var total float64
	for _, s := range masksByPopcount(n) {
		p, ok := prob[s]
		if !ok || bits.OnesCount32(s) >= k {
			continue
		}
		for u := 0; u < n; u++ {
			if s&(1<<u) == 0 {
				// Vacant start: instant settlement, zero steps.
				prob[s|1<<u] += p / float64(n)
				continue
			}
			total += p / float64(n) * solvers[u].MeanAbsorptionTime(s)
			hm := solvers[u].HarmonicMeasure(s)
			for v := 0; v < n; v++ {
				if hm[v] > 0 {
					prob[s|1<<v] += p / float64(n) * hm[v]
				}
			}
		}
	}
	return total
}

// sampleTotalSteps runs the job through the engine and returns the sample
// mean of TotalSteps plus the standard error of that mean.
func sampleTotalSteps(t *testing.T, job dispersion.Job, seed uint64) (mean, stderr float64) {
	t.Helper()
	xs, err := dispersion.Engine{Seed: seed, Experiment: 17}.TotalSteps(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varSum float64
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(varSum / float64(len(xs)-1) / float64(len(xs)))
}

// checkMean asserts the Monte-Carlo mean agrees with the exact value to
// within six standard errors (deterministic given the fixed seed).
func checkMean(t *testing.T, name string, got, stderr, want float64) {
	t.Helper()
	if diff := math.Abs(got - want); diff > 6*stderr+1e-9 {
		t.Errorf("%s: sample mean %.4f vs exact %.4f (|diff| %.4f > 6·SE %.4f)",
			name, got, want, diff, 6*stderr)
	}
}

// propGraphs are the small ground-truth graphs: one vertex-transitive, one
// not (the star's harmonic measures are strongly origin-dependent).
func propGraphs() []struct {
	name string
	g    *graph.CSR
} {
	return []struct {
		name string
		g    *graph.CSR
	}{
		{"complete-5", graph.Complete(5)},
		{"star-5", graph.Star(5)},
	}
}

const propTrials = 6000

func TestExactPropertyLazy(t *testing.T) {
	for _, tc := range propGraphs() {
		e, err := exact.NewSequential(tc.g, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * e.ExpectedTotalSteps()
		mean, se := sampleTotalSteps(t, dispersion.Job{
			Process: "sequential", Graph: tc.g, Trials: propTrials,
			Options: []dispersion.Option{dispersion.WithLazy()},
		}, 101)
		checkMean(t, tc.name+"/lazy", mean, se, want)

		// The lazy-sequential registry variant must agree with the
		// option-set form: same stream, same distribution.
		meanVariant, seVariant := sampleTotalSteps(t, dispersion.Job{
			Process: "lazy-sequential", Graph: tc.g, Trials: propTrials,
		}, 101)
		checkMean(t, tc.name+"/lazy-variant", meanVariant, seVariant, want)
	}
}

func TestExactPropertyParticles(t *testing.T) {
	for _, tc := range propGraphs() {
		n := tc.g.N()
		// Truncating the DP at k = n must reproduce the untruncated DP.
		e, err := exact.NewSequential(tc.g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if full, dp := e.ExpectedTotalSteps(), exactTotalStepsParticles(t, tc.g, 0, n); math.Abs(full-dp) > 1e-6 {
			t.Fatalf("%s: truncated DP at k=n gives %.6f, want %.6f", tc.name, dp, full)
		}
		for _, k := range []int{2, n - 1} {
			want := exactTotalStepsParticles(t, tc.g, 0, k)
			mean, se := sampleTotalSteps(t, dispersion.Job{
				Process: "sequential", Graph: tc.g, Trials: propTrials,
				Options: []dispersion.Option{dispersion.WithParticles(k)},
			}, 103)
			checkMean(t, tc.name+"/particles", mean, se, want)
		}
	}
}

func TestExactPropertyRandomOrigins(t *testing.T) {
	for _, tc := range propGraphs() {
		want := exactTotalStepsRandomOrigins(t, tc.g, tc.g.N())
		mean, se := sampleTotalSteps(t, dispersion.Job{
			Process: "sequential", Graph: tc.g, Trials: propTrials,
			Options: []dispersion.Option{dispersion.WithRandomOrigins()},
		}, 107)
		checkMean(t, tc.name+"/random-origins", mean, se, want)
	}
}

// The combinations compose multiplicatively: lazy doubling applies on top
// of the random-origins truncated DP.
func TestExactPropertyCombined(t *testing.T) {
	for _, tc := range propGraphs() {
		k := tc.g.N() - 1
		want := 2 * exactTotalStepsRandomOrigins(t, tc.g, k)
		mean, se := sampleTotalSteps(t, dispersion.Job{
			Process: "sequential", Graph: tc.g, Trials: propTrials,
			Options: []dispersion.Option{
				dispersion.WithLazy(),
				dispersion.WithRandomOrigins(),
				dispersion.WithParticles(k),
			},
		}, 109)
		checkMean(t, tc.name+"/lazy+random-origins+particles", mean, se, want)
	}
}
