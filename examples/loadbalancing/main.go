// Load balancing: the paper's introduction motivates dispersion as a local
// protocol for resource allocation — jobs arrive at one gateway and walk
// the server network until they find a free server ("QoS load balancing").
// This example compares the two scheduling disciplines on an expander
// datacentre fabric: releasing jobs one at a time (sequential) versus all
// at once (parallel), measuring the makespan (dispersion time) and total
// network traffic (total steps).
package main

import (
	"context"
	"fmt"
	"log"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/internal/graph"
	"dispersion/internal/stats"
)

func main() {
	ctx := context.Background()
	// A 4-regular random network of 512 servers; job gateway at server 0.
	net, err := graphspec.Build("regular:512,4", 99)
	if err != nil {
		log.Fatal(err)
	}
	const trials = 150
	// regular:N,D builds a CSR backend; materialize for the BFS diameter.
	csr, err := graph.Materialize(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s, %d servers, diameter %d\n\n", net.Name(), net.N(), csr.Diameter())

	job := func(process string) dispersion.Job {
		return dispersion.Job{Process: process, Graph: net, Trials: trials}
	}
	engine := func(experiment uint64) dispersion.Engine {
		return dispersion.Engine{Seed: 5, Experiment: experiment}
	}
	seqDisp, err := engine(1).Sample(ctx, job("sequential"))
	if err != nil {
		log.Fatal(err)
	}
	parDisp, err := engine(2).Sample(ctx, job("parallel"))
	if err != nil {
		log.Fatal(err)
	}
	seqTot, err := engine(3).TotalSteps(ctx, job("sequential"))
	if err != nil {
		log.Fatal(err)
	}
	parTot, err := engine(4).TotalSteps(ctx, job("parallel"))
	if err != nil {
		log.Fatal(err)
	}

	ss, ps := stats.Summarize(seqDisp), stats.Summarize(parDisp)
	st, pt := stats.Summarize(seqTot), stats.Summarize(parTot)

	fmt.Println("discipline   slowest job (hops)   total traffic (hops)")
	fmt.Printf("sequential   %-20s %s\n", ss.String(), st.String())
	fmt.Printf("parallel     %-20s %s\n", ps.String(), pt.String())

	fmt.Printf("\nparallel release costs %.1f%% more on the slowest job,\n",
		100*(ps.Mean/ss.Mean-1))
	fmt.Printf("but total traffic is the same in distribution (Theorem 4.1): KS p = %.3f\n",
		stats.KSPValue(stats.KSStatistic(seqTot, parTot), trials, trials))

	// On an expander the makespan is Θ(n) — a constant per server — so
	// local random-walk placement is only a constant factor worse than
	// optimal even with zero coordination (Theorem 5.5).
	fmt.Printf("\nmakespan per server: sequential %.2f, parallel %.2f (Θ(1) on expanders)\n",
		ss.Mean/float64(net.N()), ps.Mean/float64(net.N()))
}
