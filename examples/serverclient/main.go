// Command serverclient demonstrates the dispersion HTTP API end to end:
// it submits a job with POST /v1/jobs, consumes the NDJSON results
// stream, deliberately drops the connection half way, resumes with
// ?from= exactly where it left off, and reports summary statistics.
//
// By default it spins up an in-process server so it runs standalone:
//
//	go run ./examples/serverclient
//
// Point it at a real dispersion-server to exercise the network path:
//
//	go run ./cmd/dispersion-server -addr :8080 &
//	go run ./examples/serverclient -addr http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"dispersion/server"
	"dispersion/sink"
)

func main() {
	var (
		addr    = flag.String("addr", "", "server base URL (empty: run an in-process server)")
		process = flag.String("process", "parallel", "process to run")
		graph   = flag.String("graph", "torus:16x16", "graph family spec")
		trials  = flag.Int("trials", 40, "number of trials")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		m, err := server.NewManager(server.ManagerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		ts := httptest.NewServer(server.New(m))
		defer ts.Close()
		base = ts.URL
		fmt.Println("using in-process server at", base)
	}

	// Submit the job.
	body, err := json.Marshal(server.JobRequest{
		Process: *process,
		Spec:    *graph,
		Trials:  *trials,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		msg := new(bytes.Buffer)
		msg.ReadFrom(resp.Body)
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "submit rejected: %s", msg)
		os.Exit(1)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s: %s on %s, %d trials\n", st.ID, *process, *graph, *trials)

	// Consume the stream, dropping the connection half way through to
	// demonstrate an exact ?from= resume.
	cut := *trials / 2
	trialsSeen := consume(base, st.ID, 0, cut)
	fmt.Printf("... connection dropped after %d results; resuming with ?from=%d\n",
		len(trialsSeen), cut)
	trialsSeen = append(trialsSeen, consume(base, st.ID, cut, -1)...)

	var sum float64
	for _, t := range trialsSeen {
		sum += t.Result.Makespan()
	}
	fmt.Printf("received %d/%d results, mean dispersion time %.4g\n",
		len(trialsSeen), *trials, sum/float64(len(trialsSeen)))

	// Poll the final status.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID)
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("final state %s, %d trials completed\n", st.State, st.Completed)
}

// consume streams NDJSON records starting at from, stopping after limit
// records (limit < 0 drains the stream to completion).
func consume(base, id string, from, limit int) []sink.Record {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", base, id, from))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("results: HTTP %d", resp.StatusCode)
	}
	var out []sink.Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for (limit < 0 || len(out) < limit) && sc.Scan() {
		var rec sink.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			log.Fatal(err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}
