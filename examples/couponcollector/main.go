// Coupon collector: on the complete graph the Sequential-IDLA *is* the
// coupon collector process, and the dispersion time is its longest waiting
// time. This example reproduces the two distinct clique constants of
// Theorem 5.2: κ_cc ≈ 1.2550 for the sequential process and π²/6 ≈ 1.6449
// for the parallel one.
package main

import (
	"fmt"

	"dispersion/internal/bench"
	"dispersion/internal/bounds"
	"dispersion/internal/core"
	"dispersion/internal/stats"

	"dispersion/internal/graph"
)

func main() {
	kcc := bounds.KappaCC()
	fmt.Printf("κ_cc (Lemma 5.1, numeric integral) = %.4f\n", kcc)
	fmt.Printf("π²/6                               = %.4f\n\n", bounds.PiSquaredOver6)

	fmt.Println("n      t_seq/n   t_par/n   (expect -> κ_cc and π²/6)")
	for _, n := range []int{128, 256, 512} {
		g := graph.Complete(n)
		trials := 200
		seq := bench.MeanDispersion(g, 0, bench.Seq, core.Options{}, trials, 7, 1)
		par := bench.MeanDispersion(g, 0, bench.Par, core.Options{}, trials, 7, 2)
		fmt.Printf("%-6d %.4f    %.4f\n", n, seq.Mean/float64(n), par.Mean/float64(n))
	}

	// The sequential dispersion time on K_n is the max of n geometric
	// waiting times — its distribution is far wider than the mean
	// suggests. Show the quartiles for intuition.
	n := 512
	xs := bench.SampleDispersion(graph.Complete(n), 0, bench.Seq, core.Options{}, 400, 11, 3)
	sorted := append([]float64(nil), xs...)
	s := stats.Summarize(sorted)
	fmt.Printf("\nK_%d sequential dispersion: mean %.0f, median %.0f, max %.0f\n",
		n, s.Mean, s.Median, s.Max)
	fmt.Printf("the longest waiting time has heavy upper fluctuations: max/mean = %.2f\n",
		s.Max/s.Mean)
}
