// Coupon collector: on the complete graph the Sequential-IDLA *is* the
// coupon collector process, and the dispersion time is its longest waiting
// time. This example reproduces the two distinct clique constants of
// Theorem 5.2: κ_cc ≈ 1.2550 for the sequential process and π²/6 ≈ 1.6449
// for the parallel one.
package main

import (
	"context"
	"fmt"
	"log"

	"dispersion"
	"dispersion/internal/bounds"
	"dispersion/internal/graph"
	"dispersion/internal/stats"
)

func main() {
	ctx := context.Background()
	kcc := bounds.KappaCC()
	fmt.Printf("κ_cc (Lemma 5.1, numeric integral) = %.4f\n", kcc)
	fmt.Printf("π²/6                               = %.4f\n\n", bounds.PiSquaredOver6)

	sample := func(g dispersion.Graph, process string, trials int, seed, experiment uint64) []float64 {
		eng := dispersion.Engine{Seed: seed, Experiment: experiment}
		xs, err := eng.Sample(ctx, dispersion.Job{Process: process, Graph: g, Trials: trials})
		if err != nil {
			log.Fatal(err)
		}
		return xs
	}

	fmt.Println("n      t_seq/n   t_par/n   (expect -> κ_cc and π²/6)")
	for _, n := range []int{128, 256, 512} {
		g := graph.Complete(n)
		trials := 200
		seq := stats.Summarize(sample(g, "sequential", trials, 7, 1))
		par := stats.Summarize(sample(g, "parallel", trials, 7, 2))
		fmt.Printf("%-6d %.4f    %.4f\n", n, seq.Mean/float64(n), par.Mean/float64(n))
	}

	// The sequential dispersion time on K_n is the max of n geometric
	// waiting times — its distribution is far wider than the mean
	// suggests. Show the quartiles for intuition.
	n := 512
	xs := sample(graph.Complete(n), "sequential", 400, 11, 3)
	s := stats.Summarize(xs)
	fmt.Printf("\nK_%d sequential dispersion: mean %.0f, median %.0f, max %.0f\n",
		n, s.Mean, s.Median, s.Max)
	fmt.Printf("the longest waiting time has heavy upper fluctuations: max/mean = %.2f\n",
		s.Max/s.Mean)
}
