// Variants: the paper's Section 6.2 closes with dispersion variants —
// fewer particles than sites, and per-particle random origins. This
// example sweeps the particle count on an expander and contrasts origin
// policies, then uses the odometer to show where the work concentrates.
package main

import (
	"context"
	"fmt"
	"log"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/internal/stats"
)

func main() {
	ctx := context.Background()
	g, err := graphspec.Build("regular:256,4", 3)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	const trials = 120

	mean := func(experiment uint64, opts ...dispersion.Option) float64 {
		eng := dispersion.Engine{Seed: 9, Experiment: experiment}
		xs, err := eng.Sample(ctx, dispersion.Job{
			Process: "parallel", Graph: g, Trials: trials, Options: opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		return stats.Summarize(xs).Mean
	}

	fmt.Printf("network: %s (n=%d)\n\n", g.Name(), n)
	fmt.Println("particles k    E[τ_par]   (makespan grows with load)")
	for _, k := range []int{n / 8, n / 4, n / 2, n} {
		fmt.Printf("%-14d %.1f\n", k, mean(uint64(k), dispersion.WithParticles(k)))
	}

	fmt.Println("\norigin policy        E[τ_par]")
	fmt.Printf("%-20s %.1f\n", "common origin", mean(1001))
	fmt.Printf("%-20s %.1f\n", "random origins", mean(1002, dispersion.WithRandomOrigins()))

	// The odometer shows the hotspot structure: with a common origin the
	// origin's neighbourhood absorbs most of the traffic.
	res, err := dispersion.Run("parallel", g, 0, 4, dispersion.WithRecord())
	if err != nil {
		log.Fatal(err)
	}
	o, err := dispersion.NewOdometer(g, res)
	if err != nil {
		log.Fatal(err)
	}
	v, c := o.Max()
	fmt.Printf("\nodometer: busiest vertex %d with %d arrivals (origin is 0)\n", v, c)
	fmt.Printf("total arrivals %d = total steps %d + %d placements\n",
		o.Total(), res.TotalSteps, n)
}
