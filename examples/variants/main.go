// Variants: the paper's Section 6.2 closes with dispersion variants —
// fewer particles than sites, and per-particle random origins. This
// example sweeps the particle count on an expander and contrasts origin
// policies, then uses the odometer to show where the work concentrates.
package main

import (
	"fmt"
	"log"

	"dispersion/internal/bench"
	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func main() {
	g, err := graph.RandomRegular(256, 4, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	const trials = 120

	fmt.Printf("network: %s (n=%d)\n\n", g.Name(), n)
	fmt.Println("particles k    E[τ_par]   (makespan grows with load)")
	for _, k := range []int{n / 8, n / 4, n / 2, n} {
		s := bench.MeanDispersion(g, 0, bench.Par, core.Options{Particles: k}, trials, 9, uint64(k))
		fmt.Printf("%-14d %.1f\n", k, s.Mean)
	}

	fmt.Println("\norigin policy        E[τ_par]")
	common := bench.MeanDispersion(g, 0, bench.Par, core.Options{}, trials, 9, 1001)
	random := bench.MeanDispersion(g, 0, bench.Par, core.Options{RandomOrigins: true}, trials, 9, 1002)
	fmt.Printf("%-20s %.1f\n", "common origin", common.Mean)
	fmt.Printf("%-20s %.1f\n", "random origins", random.Mean)

	// The odometer shows the hotspot structure: with a common origin the
	// origin's neighbourhood absorbs most of the traffic.
	res, err := core.Parallel(g, 0, core.Options{Record: true}, rng.New(4))
	if err != nil {
		log.Fatal(err)
	}
	o, err := core.NewOdometer(g, res)
	if err != nil {
		log.Fatal(err)
	}
	v, c := o.Max()
	fmt.Printf("\nodometer: busiest vertex %d with %d arrivals (origin is 0)\n", v, c)
	fmt.Printf("total arrivals %d = total steps %d + %d placements\n",
		o.Total(), res.TotalSteps, n)
}
