// Shape of the aggregate: on the 2-dimensional grid the IDLA aggregate
// converges to a Euclidean ball (the Lawler-Bramson-Griffeath shape
// theorem discussed in Section 1.3) — the geometric fact behind the
// paper's Proposition 5.10 lower bound for the 2d torus. This example
// grows an aggregate from the centre of a grid and renders its shape and
// roundness statistics.
package main

import (
	"fmt"
	"log"
	"math"

	"dispersion"
	"dispersion/internal/graph"
)

func main() {
	const side = 41 // odd, so there is an exact centre
	sides := []int{side, side}
	g := graph.Grid(sides, false)
	centre := graph.GridIndex(sides, []int{side / 2, side / 2})

	res, err := dispersion.Run("sequential", g, centre, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Look at the aggregate when it has ~π r² sites for r = 12: the shape
	// theorem says it should fill the radius-r ball around the centre,
	// give or take logarithmic fluctuations.
	r := 12.0
	k := int(math.Pi * r * r)
	agg := res.AggregateAt(k)
	occupied := map[int]bool{}
	for _, v := range agg {
		occupied[int(v)] = true
	}

	cx, cy := side/2, side/2
	var inside, ball int
	var maxR, sumR float64
	grid := make([][]byte, side)
	for y := range grid {
		grid[y] = make([]byte, side)
		for x := range grid[y] {
			grid[y][x] = '.'
		}
	}
	for v := range occupied {
		c := graph.GridCoords(sides, v)
		dx, dy := float64(c[0]-cy), float64(c[1]-cx)
		d := math.Hypot(dx, dy)
		sumR += d
		if d > maxR {
			maxR = d
		}
		grid[c[0]][c[1]] = '#'
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if math.Hypot(float64(y-cy), float64(x-cx)) <= r {
				ball++
				if occupied[graph.GridIndex(sides, []int{y, x})] {
					inside++
				}
			}
		}
	}
	grid[cy][cx] = 'O'

	fmt.Printf("IDLA aggregate of %d particles on a %dx%d grid (origin O):\n\n", k, side, side)
	for _, row := range grid {
		fmt.Println(string(row))
	}
	fmt.Printf("\ntarget radius r = %.0f (k = ⌊π r²⌋ = %d sites)\n", r, k)
	fmt.Printf("ball coverage:   %.1f%% of the radius-r ball is occupied\n",
		100*float64(inside)/float64(ball))
	fmt.Printf("roundness:       mean radius %.2f, max radius %.2f (max/r = %.2f)\n",
		sumR/float64(k), maxR, maxR/r)
	fmt.Println("\nthe aggregate hugs the disc: the shape-theorem behaviour that makes")
	fmt.Println("the last particles on the 2d torus travel Ω(log n) excursions (Prop 5.10)")
}
