// Command sharded demonstrates trial-range sharding end to end: one
// logical job is fanned out by a shard.Coordinator as disjoint
// FirstTrial ranges across two dispersion servers, the merged stream is
// checkpointed to a JSONL write-ahead log, the coordinator is "killed"
// mid-run, and a fresh coordinator resumes from the checkpoint — with
// the final result set verified bit-for-bit against a single contiguous
// Engine.Run.
//
// It runs standalone with in-process servers:
//
//	go run ./examples/sharded
//
// Point it at real servers to exercise the network path:
//
//	go run ./cmd/dispersion-server -addr :8080 &
//	go run ./cmd/dispersion-server -addr :8081 &
//	go run ./examples/sharded -servers http://localhost:8080,http://localhost:8081
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"dispersion"
	"dispersion/server"
	"dispersion/shard"
	"dispersion/sink"
)

func main() {
	var (
		serverList = flag.String("servers", "", "comma-separated server base URLs (empty: two in-process servers)")
		process    = flag.String("process", "parallel", "process to run")
		graph      = flag.String("graph", "torus:16x16", "graph family spec")
		trials     = flag.Int("trials", 60, "number of trials")
		shards     = flag.Int("shards", 3, "number of trial-range shards")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var servers []string
	if *serverList == "" {
		for i := 0; i < 2; i++ {
			m, err := server.NewManager(server.ManagerOptions{})
			if err != nil {
				log.Fatal(err)
			}
			defer m.Close()
			ts := httptest.NewServer(server.New(m))
			defer ts.Close()
			servers = append(servers, ts.URL)
		}
		fmt.Printf("using %d in-process servers\n", len(servers))
	} else {
		for _, u := range strings.Split(*serverList, ",") {
			if u = strings.TrimSpace(u); u != "" {
				servers = append(servers, u)
			}
		}
	}

	req := server.JobRequest{
		Process: *process, Spec: *graph, Trials: *trials, Seed: *seed,
	}

	// The ground truth: one contiguous run straight through the engine.
	want := render(req)
	fmt.Printf("reference: contiguous Engine.Run produced %d results\n", len(want))

	dir, err := os.MkdirTemp("", "sharded")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "run.jsonl")

	// First coordinator: fan the job out, then die a third of the way in
	// (a callback error stands in for kill -9).
	coord := &shard.Coordinator{Servers: servers, Shards: *shards, Checkpoint: ckpt}
	killed := errors.New("simulated crash")
	crashAt := *trials / 3
	if crashAt < 1 {
		crashAt = 1
	}
	delivered := 0
	err = coord.Run(context.Background(), req, func(dispersion.Trial) error {
		if delivered++; delivered == crashAt {
			return killed
		}
		return nil
	})
	if !errors.Is(err, killed) {
		log.Fatalf("expected the simulated crash, got: %v", err)
	}
	fmt.Printf("coordinator killed after %d results; checkpoint %s survives\n", delivered, filepath.Base(ckpt))

	// Second coordinator: a fresh process would start exactly like this.
	// The checkpointed prefix is replayed from disk and only the missing
	// suffix is resubmitted as advanced-FirstTrial shards.
	resumed := &shard.Coordinator{Servers: servers, Shards: *shards, Checkpoint: ckpt}
	var got []string
	err = resumed.Run(context.Background(), req, func(t dispersion.Trial) error {
		b, err := json.Marshal(sink.Record{Trial: t.Index, Result: t.Result})
		if err != nil {
			return err
		}
		got = append(got, string(b))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed coordinator delivered %d results (%d replayed, %d computed)\n",
		len(got), delivered, len(got)-delivered)

	if len(got) != len(want) {
		log.Fatalf("result count diverged: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("result %d diverged from the contiguous run", i)
		}
	}
	fmt.Printf("OK: %d-shard run over %d servers, killed and resumed, is byte-identical to the contiguous run\n",
		*shards, len(servers))
}

// render runs the logical job contiguously through the engine and
// returns its canonical JSONL lines.
func render(req server.JobRequest) []string {
	eng := dispersion.Engine{Seed: req.Seed, Experiment: req.Experiment}
	var lines []string
	err := eng.Run(context.Background(), dispersion.Job{
		Process: req.Process,
		Spec:    req.Spec,
		Origin:  req.Origin,
		Trials:  req.Trials,
	}, func(t dispersion.Trial) error {
		b, err := json.Marshal(sink.Record{Trial: t.Index, Result: t.Result})
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return lines
}
