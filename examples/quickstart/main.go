// Quickstart: run the two headline dispersion processes through the
// public dispersion facade, inspect the results, and see the Cut & Paste
// coupling of Theorem 4.1 in action on a single recorded history.
package main

import (
	"fmt"
	"log"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/internal/block"
)

func main() {
	// A 12x12 torus: 144 vertices, so 144 particles start at the origin.
	g, err := graphspec.Build("torus:12x12", 1)
	if err != nil {
		log.Fatal(err)
	}
	origin := 0
	seed := uint64(2019) // SPAA 2019

	// Sequential-IDLA: particles walk one at a time. WithRecord keeps the
	// full trajectories for the block transforms below.
	seq, err := dispersion.Run("sequential", g, origin, seed, dispersion.WithRecord())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sequential-IDLA on %s:\n", g.Name())
	fmt.Printf("  dispersion time (longest walk): %d steps\n", seq.Dispersion)
	fmt.Printf("  total steps by all particles:   %d\n", seq.TotalSteps)

	// Parallel-IDLA: all particles move simultaneously each round.
	par, err := dispersion.Run("parallel", g, origin, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Parallel-IDLA on %s:\n", g.Name())
	fmt.Printf("  dispersion time (rounds):       %d\n", par.Dispersion)
	fmt.Printf("  total steps by all particles:   %d\n", par.TotalSteps)

	// Every completed run satisfies the structural invariants: one
	// particle per vertex, consistent step accounting.
	if err := seq.Check(g); err != nil {
		log.Fatal(err)
	}
	if err := par.Check(g); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants: OK")

	// The Cut & Paste bijection (Section 4): transform the recorded
	// sequential history into a parallel history. Total length is
	// preserved and the longest row can only grow (Lemma 4.6) — this is
	// exactly why τ_seq ⪯ τ_par (Theorem 4.1).
	b, err := block.FromTrajectories(seq.Trajectories)
	if err != nil {
		log.Fatal(err)
	}
	before := b.LongestRow()
	if err := b.StP(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cut & Paste (StP): longest row %d -> %d, total length preserved: %v\n",
		before, b.LongestRow(), b.TotalLength() == seq.TotalSteps)
	if err := b.PtS(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PtS(StP(L)) restored the original: longest row %d\n", b.LongestRow())
}
