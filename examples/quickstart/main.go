// Quickstart: run the two headline dispersion processes on a small graph,
// inspect the results, and see the Cut & Paste coupling of Theorem 4.1 in
// action on a single recorded history.
package main

import (
	"fmt"
	"log"

	"dispersion/internal/block"
	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

func main() {
	// A 12x12 torus: 144 vertices, so 144 particles start at the origin.
	g := graph.Grid([]int{12, 12}, true)
	origin := 0
	r := rng.New(2019) // SPAA 2019

	// Sequential-IDLA: particles walk one at a time.
	seq, err := core.Sequential(g, origin, core.Options{Record: true}, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sequential-IDLA on %s:\n", g.Name())
	fmt.Printf("  dispersion time (longest walk): %d steps\n", seq.Dispersion)
	fmt.Printf("  total steps by all particles:   %d\n", seq.TotalSteps)

	// Parallel-IDLA: all particles move simultaneously each round.
	par, err := core.Parallel(g, origin, core.Options{}, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Parallel-IDLA on %s:\n", g.Name())
	fmt.Printf("  dispersion time (rounds):       %d\n", par.Dispersion)
	fmt.Printf("  total steps by all particles:   %d\n", par.TotalSteps)

	// Every completed run satisfies the structural invariants: one
	// particle per vertex, consistent step accounting.
	if err := seq.Check(g); err != nil {
		log.Fatal(err)
	}
	if err := par.Check(g); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants: OK")

	// The Cut & Paste bijection (Section 4): transform the recorded
	// sequential history into a parallel history. Total length is
	// preserved and the longest row can only grow (Lemma 4.6) — this is
	// exactly why τ_seq ⪯ τ_par (Theorem 4.1).
	b, err := block.FromResult(seq)
	if err != nil {
		log.Fatal(err)
	}
	before := b.LongestRow()
	if err := b.StP(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cut & Paste (StP): longest row %d -> %d, total length preserved: %v\n",
		before, b.LongestRow(), b.TotalLength() == seq.TotalSteps)
	if err := b.PtS(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PtS(StP(L)) restored the original: longest row %d\n", b.LongestRow())
}
