// Million-vertex dispersion: the implicit graph backends evaluate
// neighbourhoods by arithmetic instead of stored adjacency, and sparse
// occupancy keeps the per-run state at O(particles), so graph families at
// n = 10^6 and beyond run on a laptop. This example disperses 4096
// particles on a 2048x2048 torus (n ≈ 4.2 million) and on an implicit
// random-regular expander of the same size, folds every trial into a
// mergeable summary, and reports how little memory the whole thing held
// on to — against the hundreds of MiB the adjacency alone would cost.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"dispersion"
	"dispersion/agg"
)

func main() {
	ctx := context.Background()
	const (
		particles = 4096
		trials    = 8
	)
	for _, spec := range []string{"torus:2048x2048", "rregular:4194304,4"} {
		eng := dispersion.Engine{Seed: 7, Experiment: 42, ReuseResults: true}
		sum := agg.NewSummary()
		err := eng.Run(ctx, dispersion.Job{
			Process: "sequential",
			Spec:    spec,
			Trials:  trials,
			Options: []dispersion.Option{dispersion.WithParticles(particles)},
		}, func(t dispersion.Trial) error {
			sum.Add(t.Result)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}

		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Printf("%-20s %d trials of %d particles\n", spec, trials, particles)
		fmt.Printf("  makespan        mean %.0f steps, p99 %.0f\n",
			sum.Makespan.Moments.Mean(), sum.Makespan.Quantiles.Query(0.99))
		fmt.Printf("  live heap       %.1f MiB (adjacency for this size would be hundreds of MiB)\n\n",
			float64(m.HeapAlloc)/(1<<20))
	}
	fmt.Println("The same specs work everywhere a spec string goes: the HTTP")
	fmt.Println("server's summary_only jobs and the shard coordinator's sketch")
	fmt.Println("merge run them in O(particles + sketch) memory per machine.")
}
