// Capacity: the k-particles-per-vertex dispersion workload as a
// load-balancing model. Every vertex is a server with c identical slots;
// c·n particles (requests) start at one ingress vertex and random-walk
// until they find a server below capacity. The walkthrough sweeps the
// capacity on a torus, contrasts the sequential and parallel settlement
// disciplines (whose total traffic shares one law by the abelian
// property), and pins a small instance to the exact occupancy-multiset
// solver via the registered "capacity" process.
//
// Run with: go run ./examples/capacity
package main

import (
	"context"
	"fmt"
	"log"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
	"dispersion/internal/stats"
)

func main() {
	ctx := context.Background()
	g, err := graphspec.Build("torus:16x16", 1)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	const trials = 60

	sample := func(process string, experiment uint64, opts ...dispersion.Option) stats.Summary {
		eng := dispersion.Engine{Seed: 7, Experiment: experiment}
		xs, err := eng.Sample(ctx, dispersion.Job{
			Process: process, Graph: g, Trials: trials, Options: opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		return stats.Summarize(xs)
	}

	fmt.Printf("network: %s (n=%d servers)\n\n", g.Name(), n)
	fmt.Println("slots c   load c*n   E[makespan seq]   E[makespan par]")
	for _, c := range []int{1, 2, 4} {
		seq := sample("capacity", uint64(10+c), dispersion.WithCapacity(c))
		par := sample("capacity-parallel", uint64(20+c), dispersion.WithCapacity(c))
		fmt.Printf("%-9d %-10d %-17.1f %.1f\n", c, c*n, seq.Mean, par.Mean)
	}

	// Partial load: fill only half the slots. The makespan drops sharply
	// because the last requests still find many sub-full servers nearby.
	half := sample("capacity", 31, dispersion.WithCapacity(2), dispersion.WithParticles(n))
	fmt.Printf("\npartial load: c=2 with k=n particles -> E[makespan] %.1f\n", half.Mean)

	// Ground truth on a small instance: the sample mean of the registered
	// process must sit on the exact occupancy-multiset DP.
	k5 := graph.Complete(5)
	eng := dispersion.Engine{Seed: 11, Experiment: 40}
	xs, err := eng.Sample(ctx, dispersion.Job{Process: "capacity", Graph: k5, Trials: 4000})
	if err != nil {
		log.Fatal(err)
	}
	mean, tail, err := exact.CapacityExpectedDispersion(k5, 0, 2, 0, 400)
	if err != nil || tail > 1e-9 {
		log.Fatalf("exact solve: err=%v tail=%g", err, tail)
	}
	fmt.Printf("\nexact check on K_5, c=2: sample mean %.3f vs exact E[makespan] %.3f\n",
		stats.Summarize(xs).Mean, mean)
}
