// Command summary demonstrates the streaming-aggregation subsystem end
// to end: a summary_only job runs on an in-process dispersion server —
// buffering no per-trial results at all — its kilobyte agg.Summary is
// fetched over HTTP, and its mean and quantiles are checked against an
// offline statistics pass over the identical trial set (recomputed
// locally; the engine's determinism makes the two runs the same
// multiset). It then merges per-shard summaries through
// shard.Coordinator.RunSummary and shows the merge is byte-identical
// to the contiguous job's summary.
//
// It runs standalone:
//
//	go run ./examples/summary
//
// Point it at a real server to exercise the network path:
//
//	go run ./cmd/dispersion-server -addr :8080 &
//	go run ./examples/summary -server http://localhost:8080
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	"dispersion"
	"dispersion/agg"
	"dispersion/server"
	"dispersion/shard"
)

func main() {
	var (
		serverURL = flag.String("server", "", "dispersion-server base URL (empty: one in-process server)")
		graph     = flag.String("graph", "complete:64", "graph family spec")
		process   = flag.String("process", "sequential", "process to run")
		trials    = flag.Int("trials", 2000, "number of trials")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	base := *serverURL
	if base == "" {
		m, err := server.NewManager(server.ManagerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		ts := httptest.NewServer(server.New(m))
		defer ts.Close()
		base = ts.URL
		fmt.Println("using one in-process server")
	}

	req := server.JobRequest{
		Process:     *process,
		Spec:        *graph,
		Trials:      *trials,
		Seed:        *seed,
		SummaryOnly: true,
	}

	// 1. Submit the summary_only job and fetch its final summary with a
	// single long-poll; no per-trial line ever crosses the wire.
	st := submit(base, req)
	fmt.Printf("submitted summary_only job %s: %s on %s, %d trials\n", st.ID, req.Process, req.Spec, req.Trials)
	sr := fetchSummary(base, st.ID)
	if sr.State != server.StateDone {
		log.Fatalf("job ended %s", sr.State)
	}
	var sum agg.Summary
	if err := json.Unmarshal(sr.Summary, &sum); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary: %d bytes for %d trials (mean %.4g, q50 %.4g, q99 %.4g, max %.4g)\n",
		len(sr.Summary), sum.Trials,
		sum.Makespan.Moments.Mean(),
		sum.Makespan.Quantiles.Query(0.5),
		sum.Makespan.Quantiles.Query(0.99),
		sum.Makespan.Moments.Max())

	// 2. The results endpoint has nothing: summary_only jobs never
	// buffer, by design.
	resp, err := http.Get(base + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("results endpoint answers %d (Gone): the job kept no per-trial results\n", resp.StatusCode)

	// 3. Check against an offline pass over the identical trial set,
	// recomputed locally — trial i is a pure function of (seed,
	// experiment, i), so this is the same multiset the server folded.
	makespans := recompute(req)
	sort.Float64s(makespans)
	var s float64
	for _, m := range makespans {
		s += m
	}
	mean := s / float64(len(makespans))
	q50 := makespans[(len(makespans)-1)/2]
	fmt.Printf("offline:  mean %.6g vs sketch %.6g (exact)\n", mean, sum.Makespan.Moments.Mean())
	fmt.Printf("          q50  %.6g vs sketch %.6g (within %.0f%%)\n", q50, sum.Makespan.Quantiles.Query(0.5), 100*sum.Makespan.Quantiles.Alpha())
	edge := 4 * sum.Makespan.Histogram.Width()
	below := 0
	for _, m := range makespans {
		if m < edge {
			below++
		}
	}
	fmt.Printf("          CDF(%.0f) %.4f vs sketch %.4f (exact at bucket edges)\n",
		edge, float64(below)/float64(len(makespans)), sum.Makespan.Histogram.CDF(edge))

	// 4. Shard the same logical job and merge the per-shard sketches:
	// the merged summary is byte-identical to the contiguous one.
	coord := &shard.Coordinator{Servers: []string{base}, Shards: 4}
	merged, err := coord.RunSummary(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	mergedJSON, err := json.Marshal(merged)
	if err != nil {
		log.Fatal(err)
	}
	// The HTTP response is indented; compare both in canonical compact
	// marshaling.
	contiguousJSON, err := json.Marshal(&sum)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(mergedJSON, contiguousJSON) {
		log.Fatal("FAIL: merged shard summaries differ from the contiguous job's summary")
	}
	fmt.Println("4-shard merged summary is byte-identical to the contiguous job's summary")
}

// submit POSTs the job and decodes its status.
func submit(base string, req server.JobRequest) server.Status {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

// fetchSummary long-polls the job's summary endpoint until terminal.
func fetchSummary(base, id string) server.SummaryResponse {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/summary?wait=1")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("summary: HTTP %d", resp.StatusCode)
	}
	var sr server.SummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	return sr
}

// recompute reruns the job locally and collects per-trial makespans.
func recompute(req server.JobRequest) []float64 {
	eng := dispersion.Engine{Seed: req.Seed, Experiment: req.Experiment, ReuseResults: true}
	out := make([]float64, 0, req.Trials)
	err := eng.Run(context.Background(), dispersion.Job{
		Process: req.Process,
		Spec:    req.Spec,
		Origin:  req.Origin,
		Trials:  req.Trials,
	}, func(t dispersion.Trial) error {
		out = append(out, t.Result.Makespan())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}
