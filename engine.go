package dispersion

import (
	"context"
	"fmt"
	"math"
	"sync"

	"dispersion/graphspec"
	"dispersion/internal/core"
	"dispersion/internal/walk"
)

// Engine runs many independent trials of a registered process across all
// cores with fully deterministic randomness: trial i of a job always
// draws from the split stream (Seed, Experiment, i), so results are
// bit-for-bit identical for any Workers setting and any GOMAXPROCS.
//
// The zero Engine is ready to use (seed 0, experiment 0, one worker per
// core).
type Engine struct {
	// Seed roots all randomness, including random graph families built
	// from Job.Spec. Equal seeds reproduce results exactly.
	Seed uint64
	// Experiment namespaces the trial streams so different experiments
	// sharing a seed do not correlate.
	Experiment uint64
	// Workers caps the degree of parallelism; 0 means one per core. The
	// setting affects scheduling only, never results.
	Workers int
	// ReuseResults recycles each delivered Result's backing memory for a
	// later trial as soon as the callback returns, making steady-state
	// trials of the built-in processes allocation-free. A callback must
	// then treat the Trial's Result (and every slice it holds) as valid
	// only for the duration of the call, copying anything it keeps.
	// Sample and TotalSteps, which reduce each trial to a scalar, enable
	// it automatically. The default (false) preserves the historical
	// contract: every callback receives a freshly allocated Result it may
	// retain forever. The setting never affects results, only memory.
	ReuseResults bool
}

// Job describes one batch of trials: a process, a graph, and run options.
type Job struct {
	// Process is the registry name of the process to run, e.g.
	// "parallel" or "ctu" (see Processes for the full list).
	Process string
	// Graph is the graph to disperse on. If nil, Spec is parsed and
	// built with the engine seed instead.
	Graph Graph
	// Spec is a textual graph-family spec (see dispersion/graphspec),
	// used when Graph is nil.
	Spec string
	// Origin is the common start vertex (ignored under
	// WithRandomOrigins).
	Origin int
	// Trials is the number of independent realizations to run.
	Trials int
	// FirstTrial offsets the trial range: the job runs trials
	// [FirstTrial, FirstTrial+Trials), and trial i still draws the split
	// stream (Seed, Experiment, i). An offset job's results are therefore
	// bit-identical to the corresponding slice of one contiguous run —
	// the invariant that lets trial ranges shard across jobs and machines
	// (see dispersion/shard). Zero runs [0, Trials) as before.
	FirstTrial int
	// Options configure every trial identically.
	Options []Option
}

// Trial is one realization delivered to an Engine.Run callback.
type Trial struct {
	// Index is the trial number in [FirstTrial, FirstTrial+Trials);
	// callbacks always see indices in increasing order.
	Index int
	// Result is the trial's full outcome.
	Result *Result
}

// Validate checks that the job is well-formed without running it: the
// process must be registered, the job must carry a Graph or a
// syntactically valid Spec, and Trials must be positive. Long-running
// callers (the dispersion HTTP server) use it to reject bad submissions
// before queueing; Engine.Run performs the same checks itself.
//
// Validate does not build the graph, so Spec argument errors (e.g. a
// malformed size) still surface at run time.
func (job Job) Validate() error {
	if _, err := Lookup(job.Process); err != nil {
		return err
	}
	if job.Graph == nil {
		if job.Spec == "" {
			return fmt.Errorf("dispersion: job needs a Graph or a Spec")
		}
		if _, err := graphspec.Parse(job.Spec); err != nil {
			return err
		}
	}
	if job.Trials <= 0 {
		return fmt.Errorf("dispersion: job wants %d trials (need at least 1)", job.Trials)
	}
	if job.FirstTrial < 0 {
		return fmt.Errorf("dispersion: job starts at trial %d (need a non-negative offset)", job.FirstTrial)
	}
	if job.FirstTrial > math.MaxInt-job.Trials {
		return fmt.Errorf("dispersion: trial range [%d,%d+%d) overflows", job.FirstTrial, job.FirstTrial, job.Trials)
	}
	return nil
}

// Run executes job.Trials independent realizations and streams each
// result to the callback in strict trial order, without buffering more
// than a small scheduling window — arbitrarily long runs use bounded
// memory. each may be nil to discard results (e.g. when only checking
// that a configuration runs).
//
// Run stops at the first error — from the context, a trial, or the
// callback — and returns it.
func (e Engine) Run(ctx context.Context, job Job, each func(Trial) error) error {
	if err := job.Validate(); err != nil {
		return err
	}
	p, err := Lookup(job.Process)
	if err != nil {
		return err
	}
	g := job.Graph
	if g == nil {
		g, err = graphspec.Build(job.Spec, e.Seed)
		if err != nil {
			return err
		}
	}
	rn := walk.NewRunner(e.Seed, e.Experiment)
	if e.Workers > 0 {
		rn.SetWorkers(e.Workers)
	}
	if cp, ok := p.(*coreProcess); ok {
		return e.runCore(ctx, rn, cp, g, job, each)
	}
	return walk.StreamFrom(ctx, rn, job.FirstTrial, job.Trials,
		func(i int, r *Source) (*Result, error) {
			// External processes get a private copy of the trial source:
			// the runner reseeds one worker-local generator per trial,
			// and third-party Run implementations may legitimately have
			// retained their *Source under the historical contract.
			src := *r
			return p.Run(g, job.Origin, &src, job.Options...)
		},
		func(i int, res *Result) error {
			if each == nil {
				return nil
			}
			return each(Trial{Index: i, Result: res})
		})
}

// trialCell pairs one trial's internal result buffers with the public
// Result view delivered to the callback, so ReuseResults can recycle both
// together.
type trialCell struct {
	ct  core.CTResult
	out Result
}

// runCore is the hot path for the built-in processes: options are
// resolved once per job instead of once per trial, every worker carries a
// reusable core.Scratch (epoch-stamped occupancy, position/priority
// buffers, event heap), the per-trial RNG stream is reseeded into a
// worker-local source, and — under ReuseResults — result cells cycle
// through a pool. Steady-state trials of a non-Record job then allocate
// nothing. The RNG draws are identical to the generic path's, so results
// are bit-for-bit the same.
func (e Engine) runCore(ctx context.Context, rn *walk.Runner, cp *coreProcess, g Graph, job Job, each func(Trial) error) error {
	opt := buildOptions(append(append([]Option(nil), cp.forced...), job.Options...))
	if opt.Batch != 0 {
		return e.runCoreLane(ctx, rn, cp, g, job, opt, each)
	}
	var pool sync.Pool
	getCell := func() *trialCell { return new(trialCell) }
	if e.ReuseResults {
		getCell = func() *trialCell {
			if cell, ok := pool.Get().(*trialCell); ok {
				return cell
			}
			return new(trialCell)
		}
	}
	return walk.StreamState(ctx, rn, job.FirstTrial, job.Trials,
		core.NewScratch,
		func(i int, r *Source, s *core.Scratch) (*trialCell, error) {
			cell := getCell()
			if err := cp.runInto(g, job.Origin, opt, r, s, &cell.ct); err != nil {
				return nil, err
			}
			cell.out.setCore(&cell.ct, cp.name, cp.continuous)
			return cell, nil
		},
		func(i int, cell *trialCell) error {
			var err error
			if each != nil {
				err = each(Trial{Index: i, Result: &cell.out})
			}
			if e.ReuseResults {
				pool.Put(cell)
			}
			return err
		})
}

// laneCell carries one block of batched trials from a worker to the
// collector: the internal result buffers, the *Result views handed to
// RunLane, the public views delivered to the callback, and the block's
// trial seeds. Under ReuseResults whole cells cycle through a pool.
type laneCell struct {
	res   []core.Result
	ptrs  []*core.Result
	outs  []Result
	seeds []uint64
}

// grow sizes the cell for a block of n trials, reusing backing arrays.
func (c *laneCell) grow(n int) {
	if cap(c.res) < n {
		c.res = make([]core.Result, n)
		c.ptrs = make([]*core.Result, n)
		c.outs = make([]Result, n)
		c.seeds = make([]uint64, n)
	}
	c.res = c.res[:n]
	c.ptrs = c.ptrs[:n]
	c.outs = c.outs[:n]
	c.seeds = c.seeds[:n]
	for i := range c.ptrs {
		c.ptrs[i] = &c.res[i]
	}
}

// runCoreLane is the batched hot path selected by WithBatch: trials are
// grouped into blocks of Batch, each block runs as one core.RunLane lane
// on a worker (SoA particle state, counter-mode slot streams, fused
// StepLane kernels), and the collector unpacks blocks back into
// per-trial deliveries in strict trial order. Trial i's stream is seeded
// from the (Seed, Experiment, i) lineage, so results are bit-identical
// for any Batch, Workers or sharding — and distribution-identical to the
// scalar path.
func (e Engine) runCoreLane(ctx context.Context, rn *walk.Runner, cp *coreProcess, g Graph, job Job, opt core.Options, each func(Trial) error) error {
	if cp.lane == core.LaneNone {
		return fmt.Errorf("dispersion: process %q has no batched form (WithBatch covers the Sequential-family processes)", cp.name)
	}
	b := opt.Batch
	if b < 1 {
		return fmt.Errorf("dispersion: batch width %d (want at least 1)", b)
	}
	end := job.FirstTrial + job.Trials
	numBlocks := (job.Trials + b - 1) / b
	var pool sync.Pool
	getCell := func() *laneCell { return new(laneCell) }
	if e.ReuseResults {
		getCell = func() *laneCell {
			if cell, ok := pool.Get().(*laneCell); ok {
				return cell
			}
			return new(laneCell)
		}
	}
	return walk.StreamState(ctx, rn, 0, numBlocks,
		core.NewScratch,
		func(block int, _ *Source, s *core.Scratch) (*laneCell, error) {
			lo := job.FirstTrial + block*b
			cnt := b
			if lo+cnt > end {
				cnt = end - lo
			}
			cell := getCell()
			cell.grow(cnt)
			for t := 0; t < cnt; t++ {
				cell.seeds[t] = rn.TrialSeed(lo + t)
			}
			if err := core.RunLane(g, job.Origin, opt, cp.lane, cell.seeds, s, cell.ptrs); err != nil {
				return nil, err
			}
			for t := 0; t < cnt; t++ {
				cell.outs[t].setCoreResult(&cell.res[t], cp.name)
			}
			return cell, nil
		},
		func(block int, cell *laneCell) error {
			lo := job.FirstTrial + block*b
			if each != nil {
				for t := range cell.outs {
					if err := each(Trial{Index: lo + t, Result: &cell.outs[t]}); err != nil {
						return err
					}
				}
			}
			if e.ReuseResults {
				pool.Put(cell)
			}
			return nil
		})
}

// Sample runs the job and returns each trial's Makespan — the dispersion
// time on the process's natural scale — in trial order. It is the common
// reduction for statistics over many trials. Sample reduces each trial to
// one scalar, so it always runs with ReuseResults on.
func (e Engine) Sample(ctx context.Context, job Job) ([]float64, error) {
	e.ReuseResults = true
	out := make([]float64, 0, max(job.Trials, 0))
	err := e.Run(ctx, job, func(t Trial) error {
		out = append(out, t.Result.Makespan())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TotalSteps runs the job and returns each trial's total jump count in
// trial order (Theorem 4.1's conserved quantity across the Sequential and
// Parallel processes). Like Sample, it always runs with ReuseResults on.
func (e Engine) TotalSteps(ctx context.Context, job Job) ([]float64, error) {
	e.ReuseResults = true
	out := make([]float64, 0, max(job.Trials, 0))
	err := e.Run(ctx, job, func(t Trial) error {
		out = append(out, float64(t.Result.TotalSteps))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
