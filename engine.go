package dispersion

import (
	"context"
	"fmt"
	"math"

	"dispersion/graphspec"
	"dispersion/internal/walk"
)

// Engine runs many independent trials of a registered process across all
// cores with fully deterministic randomness: trial i of a job always
// draws from the split stream (Seed, Experiment, i), so results are
// bit-for-bit identical for any Workers setting and any GOMAXPROCS.
//
// The zero Engine is ready to use (seed 0, experiment 0, one worker per
// core).
type Engine struct {
	// Seed roots all randomness, including random graph families built
	// from Job.Spec. Equal seeds reproduce results exactly.
	Seed uint64
	// Experiment namespaces the trial streams so different experiments
	// sharing a seed do not correlate.
	Experiment uint64
	// Workers caps the degree of parallelism; 0 means one per core. The
	// setting affects scheduling only, never results.
	Workers int
}

// Job describes one batch of trials: a process, a graph, and run options.
type Job struct {
	// Process is the registry name of the process to run, e.g.
	// "parallel" or "ctu" (see Processes for the full list).
	Process string
	// Graph is the graph to disperse on. If nil, Spec is parsed and
	// built with the engine seed instead.
	Graph *Graph
	// Spec is a textual graph-family spec (see dispersion/graphspec),
	// used when Graph is nil.
	Spec string
	// Origin is the common start vertex (ignored under
	// WithRandomOrigins).
	Origin int
	// Trials is the number of independent realizations to run.
	Trials int
	// FirstTrial offsets the trial range: the job runs trials
	// [FirstTrial, FirstTrial+Trials), and trial i still draws the split
	// stream (Seed, Experiment, i). An offset job's results are therefore
	// bit-identical to the corresponding slice of one contiguous run —
	// the invariant that lets trial ranges shard across jobs and machines
	// (see dispersion/shard). Zero runs [0, Trials) as before.
	FirstTrial int
	// Options configure every trial identically.
	Options []Option
}

// Trial is one realization delivered to an Engine.Run callback.
type Trial struct {
	// Index is the trial number in [FirstTrial, FirstTrial+Trials);
	// callbacks always see indices in increasing order.
	Index int
	// Result is the trial's full outcome.
	Result *Result
}

// Validate checks that the job is well-formed without running it: the
// process must be registered, the job must carry a Graph or a
// syntactically valid Spec, and Trials must be positive. Long-running
// callers (the dispersion HTTP server) use it to reject bad submissions
// before queueing; Engine.Run performs the same checks itself.
//
// Validate does not build the graph, so Spec argument errors (e.g. a
// malformed size) still surface at run time.
func (job Job) Validate() error {
	if _, err := Lookup(job.Process); err != nil {
		return err
	}
	if job.Graph == nil {
		if job.Spec == "" {
			return fmt.Errorf("dispersion: job needs a Graph or a Spec")
		}
		if _, err := graphspec.Parse(job.Spec); err != nil {
			return err
		}
	}
	if job.Trials <= 0 {
		return fmt.Errorf("dispersion: job wants %d trials (need at least 1)", job.Trials)
	}
	if job.FirstTrial < 0 {
		return fmt.Errorf("dispersion: job starts at trial %d (need a non-negative offset)", job.FirstTrial)
	}
	if job.FirstTrial > math.MaxInt-job.Trials {
		return fmt.Errorf("dispersion: trial range [%d,%d+%d) overflows", job.FirstTrial, job.FirstTrial, job.Trials)
	}
	return nil
}

// Run executes job.Trials independent realizations and streams each
// result to the callback in strict trial order, without buffering more
// than a small scheduling window — arbitrarily long runs use bounded
// memory. each may be nil to discard results (e.g. when only checking
// that a configuration runs).
//
// Run stops at the first error — from the context, a trial, or the
// callback — and returns it.
func (e Engine) Run(ctx context.Context, job Job, each func(Trial) error) error {
	if err := job.Validate(); err != nil {
		return err
	}
	p, err := Lookup(job.Process)
	if err != nil {
		return err
	}
	g := job.Graph
	if g == nil {
		g, err = graphspec.Build(job.Spec, e.Seed)
		if err != nil {
			return err
		}
	}
	rn := walk.NewRunner(e.Seed, e.Experiment)
	if e.Workers > 0 {
		rn.SetWorkers(e.Workers)
	}
	return walk.StreamFrom(ctx, rn, job.FirstTrial, job.Trials,
		func(i int, r *Source) (*Result, error) {
			return p.Run(g, job.Origin, r, job.Options...)
		},
		func(i int, res *Result) error {
			if each == nil {
				return nil
			}
			return each(Trial{Index: i, Result: res})
		})
}

// Sample runs the job and returns each trial's Makespan — the dispersion
// time on the process's natural scale — in trial order. It is the common
// reduction for statistics over many trials.
func (e Engine) Sample(ctx context.Context, job Job) ([]float64, error) {
	out := make([]float64, 0, max(job.Trials, 0))
	err := e.Run(ctx, job, func(t Trial) error {
		out = append(out, t.Result.Makespan())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TotalSteps runs the job and returns each trial's total jump count in
// trial order (Theorem 4.1's conserved quantity across the Sequential and
// Parallel processes).
func (e Engine) TotalSteps(ctx context.Context, job Job) ([]float64, error) {
	out := make([]float64, 0, max(job.Trials, 0))
	err := e.Run(ctx, job, func(t Trial) error {
		out = append(out, float64(t.Result.TotalSteps))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
