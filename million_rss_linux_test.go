package dispersion_test

import (
	"context"
	"os"
	"syscall"
	"testing"

	"dispersion"
	"dispersion/agg"
)

// TestMillionVertexSummaryOnlyRSS is the CI memory smoke: a summary-only
// dispersion job on a million-vertex implicit torus must keep the whole
// process under a fixed resident budget. The budget is far above the Go
// runtime and test-harness floor but far below what materialized
// adjacency (~20 MiB) plus per-worker dense occupancy would accumulate at
// this size, so an O(n) structure sneaking back into the sparse path
// fails the step.
//
// Peak RSS is a process-wide high-water mark, so the check only means
// something when this test runs alone in a fresh process; the CI step
// sets DISPERSION_RSS_SMOKE=1 and runs it with -run, and the test skips
// otherwise rather than report a neighbouring test's peak.
func TestMillionVertexSummaryOnlyRSS(t *testing.T) {
	if os.Getenv("DISPERSION_RSS_SMOKE") == "" {
		t.Skip("RSS smoke needs its own process; set DISPERSION_RSS_SMOKE=1 and run with -run")
	}
	eng := dispersion.Engine{Seed: 8, Experiment: 2, ReuseResults: true}
	job := dispersion.Job{
		Process: "sequential",
		Spec:    "torus:1024x1024",
		Trials:  5,
		Options: []dispersion.Option{dispersion.WithParticles(4096)},
	}
	sum := agg.NewSummary()
	if err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
		sum.Add(tr.Result)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Trials != int64(job.Trials) {
		t.Fatalf("summary folded %d trials, want %d", sum.Trials, job.Trials)
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatal(err)
	}
	const budgetKiB = 64 << 10 // 64 MiB; measured peak is ~28 MiB
	if ru.Maxrss > budgetKiB {
		t.Errorf("peak RSS %d KiB exceeds the %d KiB summary-only budget", ru.Maxrss, budgetKiB)
	}
	t.Logf("peak RSS %d KiB (budget %d KiB)", ru.Maxrss, budgetKiB)
}
