package dispersion_test

import (
	"reflect"
	"testing"

	"dispersion"
	"dispersion/internal/core"
	"dispersion/internal/graph"
	"dispersion/internal/rng"
)

// coreRunner invokes the matching internal/core entry point directly,
// returning the discrete result and, for continuous processes, the CT
// wrapper.
type coreRunner func(g graph.Graph, origin int, opt core.Options, r *rng.Source) (*core.Result, *core.CTResult, error)

func discreteRunner(f func(graph.Graph, int, core.Options, *rng.Source) (*core.Result, error)) coreRunner {
	return func(g graph.Graph, origin int, opt core.Options, r *rng.Source) (*core.Result, *core.CTResult, error) {
		res, err := f(g, origin, opt, r)
		return res, nil, err
	}
}

func ctRunner(f func(graph.Graph, int, core.Options, *rng.Source) (*core.CTResult, error)) coreRunner {
	return func(g graph.Graph, origin int, opt core.Options, r *rng.Source) (*core.Result, *core.CTResult, error) {
		res, err := f(g, origin, opt, r)
		if err != nil {
			return nil, nil, err
		}
		return &res.Result, res, err
	}
}

// TestFacadeMatchesCore asserts that every registered process × option
// combination produces byte-identical results through the public facade
// and through the direct internal/core call under the same seed.
func TestFacadeMatchesCore(t *testing.T) {
	g := graph.Grid([]int{8, 8}, true)
	n := g.N()
	rule := func(v int32, step int64) bool { return step >= 3 || v%2 == 0 }

	processes := []struct {
		name string
		opt  core.Options // the forced part of the variant (laziness)
		run  coreRunner
	}{
		{"sequential", core.Options{}, discreteRunner(core.Sequential)},
		{"parallel", core.Options{}, discreteRunner(core.Parallel)},
		{"uniform", core.Options{}, discreteRunner(core.Uniform)},
		{"ct-uniform", core.Options{}, ctRunner(core.CTUniform)},
		{"ct-sequential", core.Options{}, ctRunner(core.CTSequential)},
		{"lazy-sequential", core.Options{Lazy: true}, discreteRunner(core.Sequential)},
		{"lazy-parallel", core.Options{Lazy: true}, discreteRunner(core.Parallel)},
		{"lazy-uniform", core.Options{Lazy: true}, discreteRunner(core.Uniform)},
		{"lazy-ct-uniform", core.Options{Lazy: true}, ctRunner(core.CTUniform)},
		{"lazy-ct-sequential", core.Options{Lazy: true}, ctRunner(core.CTSequential)},
	}
	optionSets := []struct {
		name  string
		opts  []dispersion.Option
		apply func(*core.Options)
	}{
		{"default", nil, func(*core.Options) {}},
		{"record", []dispersion.Option{dispersion.WithRecord()},
			func(o *core.Options) { o.Record = true }},
		{"lazy", []dispersion.Option{dispersion.WithLazy()},
			func(o *core.Options) { o.Lazy = true }},
		{"particles", []dispersion.Option{dispersion.WithParticles(n / 2)},
			func(o *core.Options) { o.Particles = n / 2 }},
		{"random-origins", []dispersion.Option{dispersion.WithRandomOrigins()},
			func(o *core.Options) { o.RandomOrigins = true }},
		{"max-steps", []dispersion.Option{dispersion.WithMaxSteps(64), dispersion.WithRecord()},
			func(o *core.Options) { o.MaxSteps = 64; o.Record = true }},
		{"random-priority", []dispersion.Option{dispersion.WithRandomPriority()},
			func(o *core.Options) { o.RandomPriority = true }},
		{"settle-rule", []dispersion.Option{dispersion.WithSettleRule(rule)},
			func(o *core.Options) { o.Rule = rule }},
		{"combined", []dispersion.Option{
			dispersion.WithRecord(), dispersion.WithParticles(n / 4),
			dispersion.WithRandomOrigins(), dispersion.WithLazy(),
		}, func(o *core.Options) {
			o.Record = true
			o.Particles = n / 4
			o.RandomOrigins = true
			o.Lazy = true
		}},
	}

	for _, pc := range processes {
		p, err := dispersion.Lookup(pc.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", pc.name, err)
		}
		for _, oc := range optionSets {
			t.Run(pc.name+"/"+oc.name, func(t *testing.T) {
				const seed = 12345
				got, err := p.Run(g, 0, dispersion.NewSource(seed), oc.opts...)
				if err != nil {
					t.Fatalf("facade run: %v", err)
				}
				opt := pc.opt
				oc.apply(&opt)
				want, wantCT, err := pc.run(g, 0, opt, rng.New(seed))
				if err != nil {
					t.Fatalf("core run: %v", err)
				}

				if got.Process != pc.name {
					t.Errorf("Process = %q, want %q", got.Process, pc.name)
				}
				if got.Continuous != (wantCT != nil) {
					t.Errorf("Continuous = %v, want %v", got.Continuous, wantCT != nil)
				}
				checkField(t, "Dispersion", got.Dispersion, want.Dispersion)
				checkField(t, "TotalSteps", got.TotalSteps, want.TotalSteps)
				checkField(t, "Steps", got.Steps, want.Steps)
				checkField(t, "SettledAt", got.SettledAt, want.SettledAt)
				checkField(t, "SettleOrder", got.SettleOrder, want.SettleOrder)
				checkField(t, "SettleClock", got.SettleClock, want.SettleClock)
				checkField(t, "Trajectories", got.Trajectories, want.Trajectories)
				checkField(t, "Truncated", got.Truncated, want.Truncated)
				if wantCT != nil {
					checkField(t, "Time", got.Time, wantCT.Time)
					checkField(t, "SettleTimes", got.SettleTimes, wantCT.SettleTimes)
					if got.Makespan() != wantCT.Time {
						t.Errorf("Makespan() = %v, want %v", got.Makespan(), wantCT.Time)
					}
				} else if got.Makespan() != float64(want.Dispersion) {
					t.Errorf("Makespan() = %v, want %v", got.Makespan(), float64(want.Dispersion))
				}
				if !got.Truncated {
					if err := got.Check(g); err != nil {
						t.Errorf("Check: %v", err)
					}
				}
			})
		}
	}
}

func checkField(t *testing.T, name string, got, want any) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestLookupAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"seq": "sequential", "par": "parallel", "unif": "uniform",
		"ctu": "ct-uniform", "ctseq": "ct-sequential",
		"lazy-seq": "lazy-sequential", "lazy-ctu": "lazy-ct-uniform",
		"geom": "sequential-geom", "thresh": "sequential-threshold",
		"cap": "capacity", "cap-par": "capacity-parallel",
		"lazy-geom": "lazy-sequential-geom", "lazy-cap": "lazy-capacity",
	} {
		p, err := dispersion.Lookup(alias)
		if err != nil {
			t.Errorf("Lookup(%q): %v", alias, err)
			continue
		}
		if p.Name() != canonical {
			t.Errorf("Lookup(%q).Name() = %q, want %q", alias, p.Name(), canonical)
		}
	}
	if _, err := dispersion.Lookup("bogus"); err == nil {
		t.Error("Lookup(bogus) succeeded")
	}
}

func TestProcessesRegistry(t *testing.T) {
	names := dispersion.Processes()
	want := []string{
		"capacity", "capacity-parallel", "ct-sequential", "ct-uniform",
		"lazy-capacity", "lazy-capacity-parallel",
		"lazy-ct-sequential", "lazy-ct-uniform",
		"lazy-parallel", "lazy-sequential",
		"lazy-sequential-geom", "lazy-sequential-threshold", "lazy-uniform",
		"parallel", "sequential",
		"sequential-geom", "sequential-threshold", "uniform",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Processes() = %v, want %v", names, want)
	}
	for _, name := range names {
		p, err := dispersion.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		wantCT := name == "ct-uniform" || name == "ct-sequential" ||
			name == "lazy-ct-uniform" || name == "lazy-ct-sequential"
		if p.Continuous() != wantCT {
			t.Errorf("%s: Continuous() = %v, want %v", name, p.Continuous(), wantCT)
		}
	}
}

// TestRunConvenience checks the one-shot Run against an explicit
// Lookup + Process.Run with the same seed.
func TestRunConvenience(t *testing.T) {
	g := graph.Complete(32)
	a, err := dispersion.Run("parallel", g, 0, 7, dispersion.WithRecord())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := dispersion.Lookup("parallel")
	b, err := p.Run(g, 0, dispersion.NewSource(7), dispersion.WithRecord())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Run and Lookup+Process.Run disagree under the same seed")
	}
}

func TestRunErrors(t *testing.T) {
	g := graph.Complete(8)
	if _, err := dispersion.Run("bogus", g, 0, 1); err == nil {
		t.Error("unknown process accepted")
	}
	if _, err := dispersion.Run("sequential", g, 99, 1); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if _, err := dispersion.Run("sequential", g, 0, 1, dispersion.WithParticles(9)); err == nil {
		t.Error("k > n particles accepted")
	}
}

// TestOdometerFacade checks the re-exported odometer against the internal
// one on the same recorded run.
func TestOdometerFacade(t *testing.T) {
	g := graph.Cycle(16)
	res, err := dispersion.Run("sequential", g, 0, 3, dispersion.WithRecord())
	if err != nil {
		t.Fatal(err)
	}
	o, err := dispersion.NewOdometer(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if o.Total() != res.TotalSteps+int64(g.N()) {
		t.Errorf("odometer total %d != steps %d + placements %d",
			o.Total(), res.TotalSteps, g.N())
	}
}
