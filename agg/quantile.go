package agg

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the relative accuracy of a Quantiles sketch built by
// NewQuantiles(0) and of every Summary column: quantile answers are
// within 1% of the corresponding offline sample quantile's value.
const DefaultAlpha = 0.01

// Quantiles is a deterministic mergeable streaming-quantile sketch for
// nonnegative values, DDSketch-shaped: a positive value x lands in the
// geometric bucket i = ⌈log_γ x⌉ covering (γ^(i-1), γ^i], with
// γ = (1+α)/(1-α), and zeros count separately. Reporting the bucket
// midpoint bounds the relative error of any quantile by α.
//
// The sketch state is a pure function of the multiset of added values —
// bucket counts are additive and no randomness is involved — so
// per-shard sketches merged in any order are identical to the sketch of
// the contiguous stream. Size is one counter per occupied bucket:
// O(log(max/min)/α) regardless of stream length.
//
// Create one with NewQuantiles; the zero value is not usable.
type Quantiles struct {
	alpha  float64
	gamma  float64 // (1+alpha)/(1-alpha)
	lgamma float64 // log(gamma)
	n      int64
	zero   int64   // count of values exactly 0
	keys   []int32 // sorted occupied bucket indices
	counts []int64 // counts[i] pairs with keys[i]
}

// NewQuantiles returns an empty sketch with the given relative accuracy
// target in (0, 1); 0 means DefaultAlpha.
func NewQuantiles(alpha float64) *Quantiles {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("agg: quantile accuracy alpha %v outside (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Quantiles{alpha: alpha, gamma: gamma, lgamma: math.Log(gamma)}
}

// Alpha returns the sketch's relative accuracy target.
func (s *Quantiles) Alpha() float64 { return s.alpha }

// N returns the number of values added.
func (s *Quantiles) N() int64 { return s.n }

// Add folds one nonnegative value in; it panics on negative or
// non-finite input.
func (s *Quantiles) Add(x float64) {
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("agg: quantile sketch cannot hold %v (want a finite nonnegative value)", x))
	}
	s.n++
	if x == 0 {
		s.zero++
		return
	}
	s.bump(s.index(x), 1)
}

// index maps a positive value to its bucket.
func (s *Quantiles) index(x float64) int32 {
	return int32(math.Ceil(math.Log(x) / s.lgamma))
}

// bump adds c to bucket key, inserting it in sorted position if absent.
func (s *Quantiles) bump(key int32, c int64) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	if i < len(s.keys) && s.keys[i] == key {
		s.counts[i] += c
		return
	}
	s.keys = append(s.keys, 0)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
	s.counts = append(s.counts, 0)
	copy(s.counts[i+1:], s.counts[i:])
	s.counts[i] = c
}

// Merge folds another sketch in; o is left unchanged. The accuracy
// targets must match — merging sketches with different bucket layouts
// has no exact meaning.
func (s *Quantiles) Merge(o *Quantiles) error {
	if s.alpha != o.alpha {
		return fmt.Errorf("agg: cannot merge quantile sketches with alpha %v and %v", s.alpha, o.alpha)
	}
	s.n += o.n
	s.zero += o.zero
	for i, key := range o.keys {
		s.bump(key, o.counts[i])
	}
	return nil
}

// value returns the representative value of a bucket: the arithmetic
// midpoint of (γ^(i-1), γ^i], within relative distance α of every point
// of the bucket.
func (s *Quantiles) value(key int32) float64 {
	return math.Exp(float64(key-1)*s.lgamma) * (1 + s.gamma) / 2
}

// rank returns the representative value of the r-th smallest element
// (0-indexed).
func (s *Quantiles) rank(r int64) float64 {
	if r < s.zero {
		return 0
	}
	cum := s.zero
	for i, key := range s.keys {
		cum += s.counts[i]
		if r < cum {
			return s.value(key)
		}
	}
	// r == n-1 lands here only through float round-off in Query; answer
	// the maximum bucket.
	return s.value(s.keys[len(s.keys)-1])
}

// Query returns the q-th quantile (0 <= q <= 1) under the same
// position convention as internal/stats.Quantile: linear interpolation
// between the order statistics bracketing position q·(n-1). The answer
// is within relative error Alpha of the interpolated exact sample
// quantile. It panics on an empty sketch.
func (s *Quantiles) Query(q float64) float64 {
	if s.n == 0 {
		panic("agg: quantile query on an empty sketch")
	}
	if q <= 0 {
		return s.rank(0)
	}
	if q >= 1 {
		return s.rank(s.n - 1)
	}
	pos := q * float64(s.n-1)
	lo := int64(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 >= s.n {
		return s.rank(lo)
	}
	return s.rank(lo)*(1-frac) + s.rank(lo+1)*frac
}

// quantilesJSON is the wire form of Quantiles. Keys are serialized in
// sorted order, so equal sketch states serialize to equal bytes.
type quantilesJSON struct {
	// Alpha is the relative accuracy target.
	Alpha float64 `json:"alpha"`
	// N is the number of values added; Zero of them were exactly 0.
	N    int64 `json:"n"`
	Zero int64 `json:"zero,omitempty"`
	// Keys are the occupied bucket indices in ascending order; Counts
	// pairs with them.
	Keys   []int32 `json:"keys"`
	Counts []int64 `json:"counts"`
	// Q50, Q90, Q99 are derived convenience quantiles for dashboards;
	// UnmarshalJSON ignores them.
	Q50 float64 `json:"q50,omitempty"`
	Q90 float64 `json:"q90,omitempty"`
	Q99 float64 `json:"q99,omitempty"`
}

// MarshalJSON renders the sketch (bucket layout plus a few derived
// quantiles).
func (s *Quantiles) MarshalJSON() ([]byte, error) {
	w := quantilesJSON{Alpha: s.alpha, N: s.n, Zero: s.zero, Keys: s.keys, Counts: s.counts}
	if w.Keys == nil {
		w.Keys = []int32{}
	}
	if w.Counts == nil {
		w.Counts = []int64{}
	}
	if s.n > 0 {
		w.Q50, w.Q90, w.Q99 = s.Query(0.5), s.Query(0.9), s.Query(0.99)
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a sketch serialized by MarshalJSON.
func (s *Quantiles) UnmarshalJSON(b []byte) error {
	var w quantilesJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Alpha <= 0 || w.Alpha >= 1 {
		return fmt.Errorf("agg: bad quantile sketch alpha %v", w.Alpha)
	}
	if len(w.Keys) != len(w.Counts) {
		return fmt.Errorf("agg: quantile sketch holds %d keys but %d counts", len(w.Keys), len(w.Counts))
	}
	if !sort.SliceIsSorted(w.Keys, func(i, j int) bool { return w.Keys[i] < w.Keys[j] }) {
		return fmt.Errorf("agg: quantile sketch keys are not sorted")
	}
	*s = *NewQuantiles(w.Alpha)
	s.n, s.zero = w.N, w.Zero
	if len(w.Keys) > 0 {
		s.keys, s.counts = w.Keys, w.Counts
	}
	return nil
}
