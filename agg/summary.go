package agg

import (
	"encoding/json"
	"fmt"

	"dispersion"
)

// MixedProcess is the sentinel Summary.Process value recorded when
// results from more than one process (or capacity) were folded into the
// same summary.
const MixedProcess = "mixed"

// Config parameterizes the sketches a Summary carries. The zero value
// selects the package defaults.
type Config struct {
	// Alpha is the quantile sketches' relative accuracy target; 0 means
	// DefaultAlpha.
	Alpha float64
	// HistBuckets is the makespan histogram's fixed bucket count (even,
	// >= 2); 0 means DefaultHistBuckets.
	HistBuckets int
	// HistWidth is the makespan histogram's initial bucket width; 0
	// means DefaultHistWidth.
	HistWidth float64
}

// Column bundles the sketches tracking one scalar column of the result
// stream (makespan or total steps).
type Column struct {
	// Moments carries count/min/max/mean/variance.
	Moments *Moments
	// Quantiles answers arbitrary quantiles within relative error Alpha.
	Quantiles *Quantiles
	// Histogram is the fixed-bucket empirical CDF; nil on columns that
	// do not carry one (only the makespan column does).
	Histogram *Histogram
}

func newColumn(cfg Config, hist bool) *Column {
	c := &Column{Moments: NewMoments(), Quantiles: NewQuantiles(cfg.Alpha)}
	if hist {
		c.Histogram = NewHistogram(cfg.HistBuckets, cfg.HistWidth)
	}
	return c
}

// Add folds one value into every sketch of the column.
func (c *Column) Add(x float64) {
	c.Moments.Add(x)
	c.Quantiles.Add(x)
	if c.Histogram != nil {
		c.Histogram.Add(x)
	}
}

// Merge folds another column in; o is left unchanged.
func (c *Column) Merge(o *Column) error {
	c.Moments.Merge(o.Moments)
	if err := c.Quantiles.Merge(o.Quantiles); err != nil {
		return err
	}
	if (c.Histogram == nil) != (o.Histogram == nil) {
		return fmt.Errorf("agg: cannot merge a column with a histogram into one without")
	}
	if c.Histogram != nil {
		return c.Histogram.Merge(o.Histogram)
	}
	return nil
}

// columnJSON is the wire form of Column.
type columnJSON struct {
	Moments   *Moments   `json:"moments"`
	Quantiles *Quantiles `json:"quantiles"`
	Histogram *Histogram `json:"histogram,omitempty"`
}

// MarshalJSON renders the column's sketches.
func (c *Column) MarshalJSON() ([]byte, error) {
	return json.Marshal(columnJSON{Moments: c.Moments, Quantiles: c.Quantiles, Histogram: c.Histogram})
}

// UnmarshalJSON restores a column serialized by MarshalJSON.
func (c *Column) UnmarshalJSON(b []byte) error {
	var w columnJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Moments == nil || w.Quantiles == nil {
		return fmt.Errorf("agg: column is missing its moments or quantiles sketch")
	}
	c.Moments, c.Quantiles, c.Histogram = w.Moments, w.Quantiles, w.Histogram
	return nil
}

// Summary is the per-job aggregate: one Column of sketches per scalar
// result field, plus exact identity and tally fields. Like the sketches
// it bundles, a Summary is a pure function of the multiset of Results
// folded in, so shard summaries merged in any order marshal to bytes
// identical to the contiguous run's summary.
//
// Create one with NewSummary or Config.NewSummary; the zero value is
// not usable. A Summary is not safe for concurrent use; callers
// serialize Add/Merge (the server folds under the job lock).
type Summary struct {
	// Process is the registry name of the process whose results were
	// folded in, or MixedProcess if they disagreed.
	Process string
	// Continuous mirrors Result.Continuous of the folded results (false
	// under MixedProcess disagreement).
	Continuous bool
	// Capacity mirrors Result.Capacity (0 under disagreement).
	Capacity int
	// Trials is the number of results folded in; Truncated of them were
	// cut off by a step cap, leaving Unsettled particles in total.
	Trials    int64
	Truncated int64
	Unsettled int64
	// Makespan tracks Result.Makespan() — rounds/steps for discrete
	// processes, real time for continuous ones. It carries the
	// histogram/CDF.
	Makespan *Column
	// TotalSteps tracks Result.TotalSteps.
	TotalSteps *Column

	cfg Config
}

// NewSummary returns an empty summary with default sketch parameters.
func NewSummary() *Summary { return Config{}.NewSummary() }

// NewSummary returns an empty summary with the config's sketch
// parameters.
func (cfg Config) NewSummary() *Summary {
	return &Summary{
		Makespan:   newColumn(cfg, true),
		TotalSteps: newColumn(cfg, false),
		cfg:        cfg,
	}
}

// Add folds one result in. It reads only scalar fields of res and
// retains nothing, so it is safe under Engine.ReuseResults.
func (s *Summary) Add(res *dispersion.Result) {
	if s.Trials == 0 {
		s.Process = res.Process
		s.Continuous = res.Continuous
		s.Capacity = res.Capacity
	} else if s.Process != res.Process || s.Continuous != res.Continuous || s.Capacity != res.Capacity {
		s.markMixed()
	}
	s.Trials++
	if res.Truncated {
		s.Truncated++
	}
	s.Unsettled += int64(res.Unsettled())
	s.Makespan.Add(res.Makespan())
	s.TotalSteps.Add(float64(res.TotalSteps))
}

func (s *Summary) markMixed() {
	s.Process = MixedProcess
	s.Continuous = false
	s.Capacity = 0
}

// Merge folds another summary in; o is left unchanged. An empty
// receiver adopts o's identity fields; otherwise mismatched identities
// degrade to MixedProcess. Sketch layouts (alpha, histogram geometry)
// must match.
func (s *Summary) Merge(o *Summary) error {
	if o.Trials == 0 {
		return nil
	}
	if s.Trials == 0 {
		s.Process = o.Process
		s.Continuous = o.Continuous
		s.Capacity = o.Capacity
	} else if s.Process != o.Process || s.Continuous != o.Continuous || s.Capacity != o.Capacity {
		s.markMixed()
	}
	if err := s.Makespan.Merge(o.Makespan); err != nil {
		return err
	}
	if err := s.TotalSteps.Merge(o.TotalSteps); err != nil {
		return err
	}
	s.Trials += o.Trials
	s.Truncated += o.Truncated
	s.Unsettled += o.Unsettled
	return nil
}

// summaryJSON is the wire form of Summary. Field order is fixed and the
// nested sketches serialize canonically, so summaries over equal result
// multisets marshal to equal bytes.
type summaryJSON struct {
	Process    string  `json:"process"`
	Continuous bool    `json:"continuous,omitempty"`
	Capacity   int     `json:"capacity,omitempty"`
	Trials     int64   `json:"trials"`
	Truncated  int64   `json:"truncated,omitempty"`
	Unsettled  int64   `json:"unsettled,omitempty"`
	Makespan   *Column `json:"makespan"`
	TotalSteps *Column `json:"total_steps"`
}

// MarshalJSON renders the summary canonically: summaries over the same
// result multiset produce byte-identical JSON.
func (s *Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		Process: s.Process, Continuous: s.Continuous, Capacity: s.Capacity,
		Trials: s.Trials, Truncated: s.Truncated, Unsettled: s.Unsettled,
		Makespan: s.Makespan, TotalSteps: s.TotalSteps,
	})
}

// UnmarshalJSON restores a summary serialized by MarshalJSON.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Makespan == nil || w.TotalSteps == nil {
		return fmt.Errorf("agg: summary is missing its makespan or total-steps column")
	}
	if w.Makespan.Histogram == nil {
		return fmt.Errorf("agg: summary makespan column is missing its histogram")
	}
	*s = Summary{
		Process: w.Process, Continuous: w.Continuous, Capacity: w.Capacity,
		Trials: w.Trials, Truncated: w.Truncated, Unsettled: w.Unsettled,
		Makespan: w.Makespan, TotalSteps: w.TotalSteps,
		cfg: Config{
			Alpha:       w.Makespan.Quantiles.Alpha(),
			HistBuckets: w.Makespan.Histogram.Buckets(),
			HistWidth:   w.Makespan.Histogram.w0,
		},
	}
	return nil
}
