package agg

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"
)

// sumScale is the power-of-two fixed-point scale of exactSum: every
// finite float64 is an integer multiple of 2^-1074 with at most 53
// mantissa bits, so x·2^1126 is an integer for all x (the smallest
// decomposition exponent produced by frexp is 2^-1126).
const sumScale = 1126

// exactSum accumulates float64 values exactly: each addend is
// decomposed into its integer mantissa and exponent and added to a
// fixed-point big.Int scaled by 2^sumScale. Integer addition is
// associative and commutative, so a sum over any partition of a
// multiset — one contiguous stream, or per-shard sums merged in any
// order — lands on the identical accumulator state. The float64 value
// is recovered with a single correct rounding at read time.
type exactSum struct {
	acc big.Int
	tmp big.Int // scratch for add, so steady-state adds do not allocate
}

// add folds one finite value into the accumulator. It panics on NaN or
// ±Inf: an exact sum of an infinity does not exist, and silently
// poisoning the accumulator would surface much later as a nonsense
// summary.
func (s *exactSum) add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("agg: cannot accumulate non-finite value %v", x))
	}
	if x == 0 {
		return
	}
	fr, exp := math.Frexp(x) // x = fr·2^exp, 0.5 <= |fr| < 1
	m := int64(fr * (1 << 53))
	// x·2^sumScale = m · 2^(exp-53+sumScale); the shift is >= 0 for
	// every float64 down to the smallest subnormal.
	s.tmp.SetInt64(m)
	s.tmp.Lsh(&s.tmp, uint(exp-53+sumScale))
	s.acc.Add(&s.acc, &s.tmp)
}

// merge folds another accumulator in.
func (s *exactSum) merge(o *exactSum) {
	s.acc.Add(&s.acc, &o.acc)
}

// float returns a big.Float holding the accumulated sum: exact when
// prec is 0 (the precision grows to fit the integer), else rounded to
// prec bits.
func (s *exactSum) float(prec uint) *big.Float {
	f := new(big.Float)
	if prec > 0 {
		f.SetPrec(prec)
	}
	f.SetInt(&s.acc)
	return f.SetMantExp(f, -sumScale)
}

// value returns the accumulated sum rounded once to float64 (±Inf on
// overflow of the float64 range).
func (s *exactSum) value() float64 {
	if s.acc.Sign() == 0 {
		return 0
	}
	v, _ := s.float(0).Float64()
	return v
}

// text renders the accumulated sum exactly as "m*2^k" with m an odd
// decimal integer ("0" for an empty sum). Factoring out the power of
// two keeps the string short — a sum of integer makespans renders as
// the plain integer scaled by 2^0-ish exponents instead of a
// ~340-digit raw accumulator — and the odd-mantissa normal form is
// canonical: equal accumulator states render to equal strings.
func (s *exactSum) text() string {
	if s.acc.Sign() == 0 {
		return "0"
	}
	tz := s.acc.TrailingZeroBits()
	var m big.Int
	m.Rsh(&s.acc, tz)
	return fmt.Sprintf("%s*2^%d", m.String(), int(tz)-sumScale)
}

// setText restores an accumulator serialized by text.
func (s *exactSum) setText(t string) error {
	if t == "0" {
		s.acc.SetInt64(0)
		return nil
	}
	mt, kt, ok := strings.Cut(t, "*2^")
	if !ok {
		return fmt.Errorf("agg: bad exact-sum accumulator %q (want \"m*2^k\")", t)
	}
	k, err := strconv.Atoi(kt)
	if err != nil || k+sumScale < 0 {
		return fmt.Errorf("agg: bad exact-sum exponent in %q", t)
	}
	if _, ok := s.acc.SetString(mt, 10); !ok {
		return fmt.Errorf("agg: bad exact-sum mantissa in %q", t)
	}
	s.acc.Lsh(&s.acc, uint(k+sumScale))
	return nil
}
