package agg

import (
	"encoding/json"
	"fmt"
	"math"
)

// DefaultHistBuckets is the bucket count of a Histogram built by
// NewHistogram(0, ...) and of every Summary makespan column.
const DefaultHistBuckets = 64

// DefaultHistWidth is the initial bucket width of a Histogram built by
// NewHistogram(..., 0).
const DefaultHistWidth = 1

// Histogram is a fixed-bucket-count histogram / empirical CDF over
// nonnegative values. It always holds exactly k buckets of equal width
// covering [0, k·width): when a value lands beyond the range, adjacent
// bucket pairs are collapsed and the width doubles until it fits.
// Because widths only double from a fixed origin, every coarser bucket
// boundary is also a finer one — so the state after any sequence of
// collapses equals the exact histogram of the whole multiset at the
// final width, and Merge (which collapses the finer sketch to the
// coarser width before adding counts) is order-independent.
//
// Create one with NewHistogram; the zero value is not usable.
type Histogram struct {
	k      int     // bucket count, even
	w0     float64 // initial width (merge compatibility key)
	width  float64 // current width: w0·2^j
	n      int64
	counts []int64 // len k
}

// NewHistogram returns an empty histogram with the given bucket count
// (even, at least 2; 0 means DefaultHistBuckets) and initial bucket
// width (positive; 0 means DefaultHistWidth).
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets == 0 {
		buckets = DefaultHistBuckets
	}
	if buckets < 2 || buckets%2 != 0 {
		panic(fmt.Sprintf("agg: histogram bucket count %d is not an even number >= 2", buckets))
	}
	if width == 0 {
		width = DefaultHistWidth
	}
	if width < 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		panic(fmt.Sprintf("agg: histogram bucket width %v is not positive and finite", width))
	}
	return &Histogram{k: buckets, w0: width, width: width, counts: make([]int64, buckets)}
}

// Buckets returns the fixed bucket count.
func (h *Histogram) Buckets() int { return h.k }

// Width returns the current bucket width; bucket i covers
// [i·Width, (i+1)·Width).
func (h *Histogram) Width() float64 { return h.width }

// N returns the number of values added.
func (h *Histogram) N() int64 { return h.n }

// Count returns the number of values in bucket i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// collapse halves the resolution: counts[i] = counts[2i] + counts[2i+1]
// and the width doubles, preserving the exact-histogram invariant.
func (h *Histogram) collapse() {
	half := h.k / 2
	for i := 0; i < half; i++ {
		h.counts[i] = h.counts[2*i] + h.counts[2*i+1]
	}
	for i := half; i < h.k; i++ {
		h.counts[i] = 0
	}
	h.width *= 2
}

// Add folds one nonnegative value in; it panics on negative or
// non-finite input.
func (h *Histogram) Add(x float64) {
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("agg: histogram cannot hold %v (want a finite nonnegative value)", x))
	}
	for x >= float64(h.k)*h.width {
		h.collapse()
	}
	i := int(x / h.width)
	if i >= h.k { // guard the x slightly-below-range float edge
		i = h.k - 1
	}
	h.n++
	h.counts[i]++
}

// Merge folds another histogram in; o is left unchanged. The bucket
// counts and initial widths must match, so the two bucket grids nest.
func (h *Histogram) Merge(o *Histogram) error {
	if h.k != o.k || h.w0 != o.w0 {
		return fmt.Errorf("agg: cannot merge histograms with layouts %d×%v and %d×%v",
			h.k, h.w0, o.k, o.w0)
	}
	// Collapse whichever sketch is finer up to the common (coarser)
	// width. o must stay unchanged, so collapse a copy of its counts.
	for h.width < o.width {
		h.collapse()
	}
	oc, ow := o.counts, o.width
	if ow < h.width {
		oc = append([]int64(nil), oc...)
		for ow < h.width {
			half := h.k / 2
			for i := 0; i < half; i++ {
				oc[i] = oc[2*i] + oc[2*i+1]
			}
			for i := half; i < h.k; i++ {
				oc[i] = 0
			}
			ow *= 2
		}
	}
	h.n += o.n
	for i, c := range oc {
		h.counts[i] += c
	}
	return nil
}

// CDF returns the fraction of added values that are <= x, exact
// whenever x is a bucket edge and linearly interpolated within a
// bucket otherwise. It returns 0 on an empty histogram.
func (h *Histogram) CDF(x float64) float64 {
	if h.n == 0 || x < 0 {
		return 0
	}
	if x >= float64(h.k)*h.width {
		return 1
	}
	i := int(x / h.width)
	if i >= h.k {
		i = h.k - 1
	}
	var below int64
	for j := 0; j < i; j++ {
		below += h.counts[j]
	}
	frac := x/h.width - float64(i)
	return (float64(below) + frac*float64(h.counts[i])) / float64(h.n)
}

// histogramJSON is the wire form of Histogram: the full fixed-length
// counts slice, so equal states serialize to equal bytes.
type histogramJSON struct {
	// Buckets is the fixed bucket count; Width0 the initial width.
	Buckets int     `json:"buckets"`
	Width0  float64 `json:"width0"`
	// Width is the current bucket width (Width0 doubled zero or more
	// times); bucket i covers [i·Width, (i+1)·Width).
	Width float64 `json:"width"`
	// N is the number of values added.
	N int64 `json:"n"`
	// Counts holds all Buckets bucket counts.
	Counts []int64 `json:"counts"`
}

// MarshalJSON renders the histogram.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Buckets: h.k, Width0: h.w0, Width: h.width, N: h.n, Counts: h.counts})
}

// UnmarshalJSON restores a histogram serialized by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Buckets < 2 || w.Buckets%2 != 0 || w.Width0 <= 0 || w.Width <= 0 {
		return fmt.Errorf("agg: bad histogram layout %d×%v (width %v)", w.Buckets, w.Width0, w.Width)
	}
	if len(w.Counts) != w.Buckets {
		return fmt.Errorf("agg: histogram holds %d counts for %d buckets", len(w.Counts), w.Buckets)
	}
	*h = Histogram{k: w.Buckets, w0: w.Width0, width: w.Width, n: w.N, counts: w.Counts}
	return nil
}
