// Package agg provides mergeable online sketches for streaming
// aggregation of dispersion trials: instead of shipping (or buffering) a
// million per-trial Results, a consumer folds each Result into a
// kilobyte-sized Summary as it arrives and merges summaries across
// shards — the server-side aggregation mode of the dispersion HTTP
// server and the sketch-merge mode of the shard coordinator are both
// built on this package.
//
// Three sketches are provided, bundled per scalar column by Summary:
//
//   - Moments — count, min, max, mean and unbiased variance. The sums of
//     x and x² are accumulated in an exact fixed-point integer
//     representation (every float64 is an integer multiple of 2^-1074,
//     so sums fit a big.Int scaled by 2^1126), which makes addition
//     exactly associative and commutative: no Welford-style last-ulp
//     drift between a contiguous run and any shard split.
//   - Quantiles — a deterministic log-bucket quantile sketch (DDSketch
//     shape): values map to geometric buckets of ratio γ = (1+α)/(1-α),
//     so any quantile is answered within relative error α. Bucket
//     counts are purely additive.
//   - Histogram — a fixed-bucket-count makespan histogram / empirical
//     CDF over [0, buckets·width): when a value exceeds the range, the
//     bucket width doubles by collapsing adjacent pairs, so the final
//     state is the exact histogram at the final width. CDF is exact at
//     bucket edges and within one bucket of mass elsewhere.
//
// # Determinism and mergeability
//
// Every sketch state in this package is a pure function of the multiset
// of added values — never of arrival order — and Merge computes exactly
// the state of the combined multiset. Consequently sketches built over
// disjoint trial-range shards and merged (in any order) are
// byte-identical, once serialized, to the sketch of the contiguous run.
// The property-test suite at the repository root pins this for every
// registered process. No randomness is involved, so there is no seed to
// coordinate.
//
// # Error bounds
//
// Count, min, max, truncation/unsettled tallies and the histogram's
// bucket counts are exact. Mean and variance are exact up to one final
// float64 rounding (the accumulators themselves are exact). Quantiles
// carry relative error at most Alpha (default 1%) versus the offline
// internal/stats.Quantile of the same sample, plus the gap between
// adjacent order statistics spanned by its interpolation. The
// histogram's CDF is exact at bucket edges; between edges it
// interpolates linearly within one bucket.
//
// All sketches reject NaN and infinities, and Quantiles and Histogram
// additionally reject negative values (dispersion makespans, step
// counts and times are nonnegative).
package agg
