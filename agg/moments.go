package agg

import (
	"encoding/json"
	"math"
	"math/big"
)

// reportPrec is the big.Float working precision of the mean/variance
// read paths. The accumulators are exact; 256 bits keeps every
// intermediate rounding error more than 200 bits below the final
// float64 rounding, so the reported values are a pure (deterministic)
// function of the accumulator state.
const reportPrec = 256

// Moments is the streaming count/min/max/mean/variance sketch. Unlike
// the classic Welford recurrence — whose running mean picks up
// order-dependent last-ulp rounding — it accumulates Σx and Σx² in an
// exact fixed-point integer representation, so Add is exactly
// associative: merging per-shard Moments reproduces the contiguous
// run's state bit for bit, in any merge order. Mean and variance are
// derived from the exact sums with one final rounding.
//
// The zero value is an empty sketch ready for use.
type Moments struct {
	n        int64
	min, max float64
	sum, sqs exactSum
}

// NewMoments returns an empty Moments sketch.
func NewMoments() *Moments { return &Moments{} }

// Add folds one value in. Like every sketch in this package it panics
// on NaN or ±Inf.
func (m *Moments) Add(x float64) {
	if m.n == 0 || x < m.min {
		m.min = x
	}
	if m.n == 0 || x > m.max {
		m.max = x
	}
	m.n++
	m.sum.add(x)
	m.sqs.add(x * x)
}

// Merge folds another Moments in; o is left unchanged.
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 || o.min < m.min {
		m.min = o.min
	}
	if m.n == 0 || o.max > m.max {
		m.max = o.max
	}
	m.n += o.n
	m.sum.merge(&o.sum)
	m.sqs.merge(&o.sqs)
}

// N returns the number of values added.
func (m *Moments) N() int64 { return m.n }

// Min returns the smallest value added (0 on an empty sketch).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest value added (0 on an empty sketch).
func (m *Moments) Max() float64 { return m.max }

// Sum returns Σx rounded once to float64.
func (m *Moments) Sum() float64 { return m.sum.value() }

// Mean returns the sample mean (0 on an empty sketch), computed from
// the exact sum with a single division.
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	q := m.sum.float(reportPrec)
	q.Quo(q, new(big.Float).SetInt64(m.n))
	v, _ := q.Float64()
	return v
}

// Variance returns the unbiased (n-1 denominator) sample variance,
// computed as (Σx² - (Σx)²/n)/(n-1) from the exact accumulators at
// reportPrec working precision; 0 when fewer than two values were
// added. The result is a deterministic function of the sketch state.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	// Both accumulators carry the 2^sumScale fixed-point scale, so the
	// cross term (Σx)² needs one explicit rescale before it is
	// comparable with Σx².
	s := new(big.Float).SetPrec(reportPrec).SetInt(&m.sum.acc)
	cross := new(big.Float).SetPrec(reportPrec).Mul(s, s)
	cross.SetMantExp(cross, -sumScale)
	cross.Quo(cross, new(big.Float).SetInt64(m.n))
	num := new(big.Float).SetPrec(reportPrec).SetInt(&m.sqs.acc)
	num.Sub(num, cross)
	num.Quo(num, new(big.Float).SetInt64(m.n-1))
	num.SetMantExp(num, -sumScale)
	v, _ := num.Float64()
	if v < 0 { // exact arithmetic can still leave a -0/-ulp residue
		return 0
	}
	return v
}

// StdDev returns the square root of Variance.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// StdErr returns StdDev/√n, the standard error of the mean (0 on an
// empty sketch).
func (m *Moments) StdErr() float64 {
	if m.n == 0 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// momentsJSON is the wire form of Moments: the exact accumulators ride
// along as scaled decimal integers, so a JSON round trip (and therefore
// a shard summary pulled over HTTP and re-merged) loses nothing.
type momentsJSON struct {
	// N is the number of values added.
	N int64 `json:"n"`
	// Min and Max are the exact extremes (0 while N is 0).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Sum and SumSq are the exact Σx and Σx² accumulators, rendered as
	// "m*2^k" with an odd decimal mantissa ("0" when empty).
	Sum   string `json:"sum"`
	SumSq string `json:"sumsq"`
	// Mean, Variance and StdDev are derived convenience fields for
	// dashboards; UnmarshalJSON ignores them in favour of the exact
	// accumulators.
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	StdDev   float64 `json:"stddev"`
}

// MarshalJSON renders the sketch with its exact accumulators plus
// derived mean/variance convenience fields.
func (m *Moments) MarshalJSON() ([]byte, error) {
	return json.Marshal(momentsJSON{
		N: m.n, Min: m.min, Max: m.max,
		Sum: m.sum.text(), SumSq: m.sqs.text(),
		Mean: m.Mean(), Variance: m.Variance(), StdDev: m.StdDev(),
	})
}

// UnmarshalJSON restores a sketch serialized by MarshalJSON.
func (m *Moments) UnmarshalJSON(b []byte) error {
	var w momentsJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	m.n, m.min, m.max = w.N, w.Min, w.Max
	if err := m.sum.setText(w.Sum); err != nil {
		return err
	}
	return m.sqs.setText(w.SumSq)
}
