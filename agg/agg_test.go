package agg

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dispersion"
	"dispersion/internal/stats"
)

func TestExactSumOrderIndependent(t *testing.T) {
	// A sum that defeats naive float64 accumulation: 1e16 + 1 - 1e16
	// loses the 1 if evaluated left to right in float64.
	vals := []float64{1e16, 1, -1e16, 0.1, -0.1, math.SmallestNonzeroFloat64, 1e-300, 2.5e-301}
	rng := rand.New(rand.NewSource(7))
	var want string
	for perm := 0; perm < 20; perm++ {
		order := rng.Perm(len(vals))
		var s exactSum
		for _, i := range order {
			s.add(vals[i])
		}
		if perm == 0 {
			want = s.text()
			continue
		}
		if got := s.text(); got != want {
			t.Fatalf("permutation %d: accumulator %s, want %s", perm, got, want)
		}
	}

	var s exactSum
	s.add(1e16)
	s.add(1)
	s.add(-1e16)
	if got := s.value(); got != 1 {
		t.Fatalf("1e16 + 1 - 1e16 = %v, want exactly 1", got)
	}
}

func TestExactSumMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	var whole exactSum
	for _, v := range vals {
		whole.add(v)
	}
	var a, b, c exactSum
	for i, v := range vals {
		switch i % 3 {
		case 0:
			a.add(v)
		case 1:
			b.add(v)
		default:
			c.add(v)
		}
	}
	// Merge in a scrambled order.
	var merged exactSum
	merged.merge(&c)
	merged.merge(&a)
	merged.merge(&b)
	if merged.text() != whole.text() {
		t.Fatalf("merged accumulator %s != contiguous %s", merged.text(), whole.text())
	}
}

func TestExactSumRoundTrip(t *testing.T) {
	var s exactSum
	s.add(3.7)
	s.add(-1.2e-30)
	var r exactSum
	if err := r.setText(s.text()); err != nil {
		t.Fatal(err)
	}
	if r.text() != s.text() || r.value() != s.value() {
		t.Fatalf("round trip changed the accumulator: %s -> %s", s.text(), r.text())
	}
	if err := r.setText("not a number"); err == nil {
		t.Fatal("setText accepted garbage")
	}
}

func TestExactSumRejectsNonFinite(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("add(%v) did not panic", x)
				}
			}()
			var s exactSum
			s.add(x)
		}()
	}
}

func TestMomentsMatchOfflineStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	m := NewMoments()
	for i := range xs {
		xs[i] = 50 + 10*rng.NormFloat64()
		m.Add(xs[i])
	}
	sum := stats.Summarize(xs)
	if m.N() != int64(len(xs)) || m.Min() != sum.Min || m.Max() != sum.Max {
		t.Fatalf("n/min/max = %d/%v/%v, want %d/%v/%v", m.N(), m.Min(), m.Max(), len(xs), sum.Min, sum.Max)
	}
	// The sketch's mean/variance come from exact sums; the offline
	// Summarize uses naive float64 accumulation, so allow it (not the
	// sketch) a few ulps of drift.
	if math.Abs(m.Mean()-sum.Mean) > 1e-9*math.Abs(sum.Mean) {
		t.Errorf("mean %v, offline %v", m.Mean(), sum.Mean)
	}
	if math.Abs(m.Variance()-sum.Variance) > 1e-9*sum.Variance {
		t.Errorf("variance %v, offline %v", m.Variance(), sum.Variance)
	}
	if m.StdDev() != math.Sqrt(m.Variance()) {
		t.Errorf("stddev %v != sqrt(variance)", m.StdDev())
	}
	wantSE := m.StdDev() / math.Sqrt(float64(len(xs)))
	if m.StdErr() != wantSE {
		t.Errorf("stderr %v, want %v", m.StdErr(), wantSE)
	}
}

func TestMomentsMergeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	whole := NewMoments()
	for _, x := range xs {
		whole.Add(x)
	}
	wantJSON, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range [][]int{{100, 200}, {1, 299}, {150, 151}} {
		parts := []*Moments{NewMoments(), NewMoments(), NewMoments()}
		for i, x := range xs {
			switch {
			case i < cut[0]:
				parts[0].Add(x)
			case i < cut[1]:
				parts[1].Add(x)
			default:
				parts[2].Add(x)
			}
		}
		merged := NewMoments()
		merged.Merge(parts[2])
		merged.Merge(parts[0])
		merged.Merge(parts[1])
		got, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantJSON) {
			t.Fatalf("split %v: merged JSON differs from contiguous:\n%s\n%s", cut, got, wantJSON)
		}
	}
}

func TestMomentsJSONRoundTrip(t *testing.T) {
	m := NewMoments()
	for _, x := range []float64{1.5, 0, 2.25, 1e12} {
		m.Add(x)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var r Moments
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed the JSON:\n%s\n%s", b, b2)
	}
}

func TestQuantilesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 5000)
	q := NewQuantiles(0)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 1000
		q.Add(xs[i])
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := q.Query(p)
		want := stats.Quantile(sorted, p)
		// Documented bound: relative error Alpha versus the exact sample
		// quantile, plus the interpolation gap between the adjacent order
		// statistics. With 5000 samples the gap is far below Alpha·want at
		// interior quantiles; fold both into a 1.5·Alpha budget.
		if math.Abs(got-want) > 1.5*q.Alpha()*want+1e-12 {
			t.Errorf("q%.2f = %v, exact %v (relative error %.4f)", p, got, want, math.Abs(got-want)/want)
		}
	}
}

func TestQuantilesZerosAndSmallN(t *testing.T) {
	q := NewQuantiles(0)
	q.Add(0)
	q.Add(0)
	q.Add(10)
	if got := q.Query(0); got != 0 {
		t.Errorf("q0 = %v, want 0", got)
	}
	if got := q.Query(0.5); got != 0 {
		t.Errorf("q50 of {0,0,10} = %v, want 0", got)
	}
	hi := q.Query(1)
	if math.Abs(hi-10) > DefaultAlpha*10 {
		t.Errorf("q100 = %v, want 10 within alpha", hi)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("query on empty sketch did not panic")
			}
		}()
		NewQuantiles(0).Query(0.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add(-1) did not panic")
			}
		}()
		NewQuantiles(0).Add(-1)
	}()
}

func TestQuantilesMergeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	whole := NewQuantiles(0)
	parts := []*Quantiles{NewQuantiles(0), NewQuantiles(0), NewQuantiles(0), NewQuantiles(0)}
	for i := 0; i < 2000; i++ {
		x := rng.ExpFloat64() * 50
		if i%97 == 0 {
			x = 0
		}
		whole.Add(x)
		parts[i%4].Add(x)
	}
	merged := NewQuantiles(0)
	for _, i := range []int{2, 0, 3, 1} {
		if err := merged.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := json.Marshal(merged)
	want, _ := json.Marshal(whole)
	if !bytes.Equal(got, want) {
		t.Fatalf("merged JSON differs from contiguous:\n%s\n%s", got, want)
	}
	if err := merged.Merge(NewQuantiles(0.05)); err == nil {
		t.Fatal("merge across alpha values did not error")
	}
}

func TestQuantilesJSONRoundTrip(t *testing.T) {
	q := NewQuantiles(0)
	for _, x := range []float64{0, 1, 2, 4, 1000} {
		q.Add(x)
	}
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var r Quantiles
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed the JSON:\n%s\n%s", b, b2)
	}
	var bad Quantiles
	if err := json.Unmarshal([]byte(`{"alpha":0.01,"n":1,"keys":[2,1],"counts":[1,1]}`), &bad); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	if err := json.Unmarshal([]byte(`{"alpha":2,"n":0,"keys":[],"counts":[]}`), &bad); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestHistogramCollapseIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.Float64() * 900 // forces several collapses from width 1
	}
	h := NewHistogram(16, 1)
	for _, x := range xs {
		h.Add(x)
	}
	// Rebuild from scratch at the final width: counts must be identical,
	// because collapsing preserves the exact-histogram invariant.
	ref := NewHistogram(16, h.Width())
	for _, x := range xs {
		ref.Add(x)
	}
	if ref.Width() != h.Width() {
		t.Fatalf("reference collapsed further: %v vs %v", ref.Width(), h.Width())
	}
	for i := 0; i < h.Buckets(); i++ {
		if h.Count(i) != ref.Count(i) {
			t.Fatalf("bucket %d: %d after collapses, %d from scratch", i, h.Count(i), ref.Count(i))
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, x := range []float64{0, 5, 15, 35} {
		h.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {10, 0.5}, {20, 0.75}, {30, 0.75}, {40, 1}, {1000, 1},
		{5, 0.25},   // half through bucket 0, which holds 2 of 4
		{35, 0.875}, // half through bucket 3
	}
	for _, c := range cases {
		if got := h.CDF(c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if NewHistogram(0, 0).CDF(5) != 0 {
		t.Error("empty histogram CDF not 0")
	}
}

func TestHistogramMergeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 40
	}
	whole := NewHistogram(0, 0)
	// Split so the shards see very different ranges (and thus end at
	// different widths): small values first, large last.
	sort.Float64s(xs)
	parts := []*Histogram{NewHistogram(0, 0), NewHistogram(0, 0)}
	for i, x := range xs {
		whole.Add(x)
		parts[i/500].Add(x)
	}
	merged := NewHistogram(0, 0)
	for _, i := range []int{1, 0} {
		if err := merged.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := json.Marshal(merged)
	want, _ := json.Marshal(whole)
	if !bytes.Equal(got, want) {
		t.Fatalf("merged JSON differs from contiguous:\n%s\n%s", got, want)
	}
	if err := merged.Merge(NewHistogram(32, 1)); err == nil {
		t.Fatal("merge across layouts did not error")
	}
	// The finer-than-receiver direction must also leave o unchanged.
	fine := NewHistogram(0, 0)
	fine.Add(1)
	coarse := NewHistogram(0, 0)
	coarse.Add(1e6)
	before, _ := json.Marshal(fine)
	wide := NewHistogram(0, 0)
	wide.Merge(coarse)
	wide.Merge(fine)
	after, _ := json.Marshal(fine)
	if !bytes.Equal(before, after) {
		t.Fatal("Merge mutated its argument")
	}
	if wide.N() != 2 {
		t.Fatalf("merged n = %d, want 2", wide.N())
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(8, 2)
	for _, x := range []float64{0, 3, 100} {
		h.Add(x)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var r Histogram
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed the JSON:\n%s\n%s", b, b2)
	}
	var bad Histogram
	if err := json.Unmarshal([]byte(`{"buckets":3,"width0":1,"width":1,"n":0,"counts":[0,0,0]}`), &bad); err == nil {
		t.Fatal("odd bucket count accepted")
	}
	if err := json.Unmarshal([]byte(`{"buckets":4,"width0":1,"width":1,"n":0,"counts":[0]}`), &bad); err == nil {
		t.Fatal("short counts accepted")
	}
}

// fakeResult builds a synthetic discrete Result for summary tests.
func fakeResult(process string, makespan, total int64, truncated bool) *dispersion.Result {
	settled := []int32{0, 1}
	if truncated {
		settled = []int32{0, -1}
	}
	return &dispersion.Result{
		Process:    process,
		Dispersion: makespan,
		TotalSteps: total,
		SettledAt:  settled,
		Truncated:  truncated,
		Capacity:   1,
	}
}

func TestSummaryAddAndTallies(t *testing.T) {
	s := NewSummary()
	s.Add(fakeResult("sequential", 10, 25, false))
	s.Add(fakeResult("sequential", 20, 55, true))
	if s.Process != "sequential" || s.Trials != 2 || s.Truncated != 1 || s.Unsettled != 1 {
		t.Fatalf("identity/tallies = %q/%d/%d/%d", s.Process, s.Trials, s.Truncated, s.Unsettled)
	}
	if got := s.Makespan.Moments.Mean(); got != 15 {
		t.Errorf("makespan mean %v, want 15", got)
	}
	if got := s.TotalSteps.Moments.Sum(); got != 80 {
		t.Errorf("total-steps sum %v, want 80", got)
	}
	if s.Makespan.Histogram == nil || s.TotalSteps.Histogram != nil {
		t.Error("histogram placement wrong: want on makespan only")
	}
	s.Add(fakeResult("parallel", 5, 9, false))
	if s.Process != MixedProcess {
		t.Errorf("process %q after mixing, want %q", s.Process, MixedProcess)
	}
}

func TestSummaryMergeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	results := make([]*dispersion.Result, 400)
	for i := range results {
		results[i] = fakeResult("sequential", int64(rng.Intn(500)), int64(rng.Intn(2000)), i%37 == 0)
	}
	whole := NewSummary()
	for _, r := range results {
		whole.Add(r)
	}
	want, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	parts := []*Summary{NewSummary(), NewSummary(), NewSummary()}
	for i, r := range results {
		parts[i%3].Add(r)
	}
	merged := NewSummary()
	for _, i := range []int{1, 2, 0} {
		if err := merged.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged JSON differs from contiguous:\n%s\n%s", got, want)
	}

	// Merging an empty summary is a no-op; merging into an empty one
	// adopts the identity.
	if err := merged.Merge(NewSummary()); err != nil {
		t.Fatal(err)
	}
	got2, _ := json.Marshal(merged)
	if !bytes.Equal(got2, want) {
		t.Fatal("merging an empty summary changed the state")
	}
	adopt := NewSummary()
	if err := adopt.Merge(whole); err != nil {
		t.Fatal(err)
	}
	got3, _ := json.Marshal(adopt)
	if !bytes.Equal(got3, want) {
		t.Fatal("merge into empty summary differs from the original")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	s := Config{Alpha: 0.02, HistBuckets: 32, HistWidth: 0.5}.NewSummary()
	s.Add(fakeResult("sequential", 7, 12, false))
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var r Summary
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.cfg != (Config{Alpha: 0.02, HistBuckets: 32, HistWidth: 0.5}) {
		t.Fatalf("restored config %+v", r.cfg)
	}
	b2, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed the JSON:\n%s\n%s", b, b2)
	}
	// A restored summary keeps folding and merging.
	r.Add(fakeResult("sequential", 9, 14, false))
	if r.Trials != 2 {
		t.Fatalf("trials after post-restore Add = %d", r.Trials)
	}
	var bad Summary
	if err := json.Unmarshal([]byte(`{"process":"x","trials":0}`), &bad); err == nil {
		t.Fatal("summary without columns accepted")
	}
}

func TestSummaryMergeLayoutMismatch(t *testing.T) {
	a := NewSummary()
	a.Add(fakeResult("sequential", 1, 1, false))
	b := Config{Alpha: 0.1}.NewSummary()
	b.Add(fakeResult("sequential", 1, 1, false))
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across sketch configs did not error")
	}
}
