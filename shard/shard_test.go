package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dispersion"
	"dispersion/server"
	"dispersion/shard"
	"dispersion/sink"
)

// newServers starts n independent dispersion servers, all torn down with
// the test, and returns their base URLs.
func newServers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		m, err := server.NewManager(server.ManagerOptions{MaxConcurrent: 8})
		if err != nil {
			t.Fatalf("NewManager: %v", err)
		}
		ts := httptest.NewServer(server.New(m))
		t.Cleanup(func() {
			ts.Close()
			m.Close()
		})
		urls[i] = ts.URL
	}
	return urls
}

// direct renders the logical job's expected result lines with a single
// contiguous Engine.Run.
func direct(t *testing.T, req server.JobRequest) []string {
	t.Helper()
	eng := dispersion.Engine{Seed: req.Seed, Experiment: req.Experiment}
	var lines []string
	err := eng.Run(context.Background(), dispersion.Job{
		Process:    req.Process,
		Spec:       req.Spec,
		Origin:     req.Origin,
		Trials:     req.Trials,
		FirstTrial: req.FirstTrial,
	}, func(tr dispersion.Trial) error {
		b, err := json.Marshal(sink.Record{Trial: tr.Index, Result: tr.Result})
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("direct Engine.Run: %v", err)
	}
	return lines
}

// collectLines runs the coordinator and renders every delivered trial as
// its JSONL line.
func collectLines(t *testing.T, c *shard.Coordinator, req server.JobRequest) []string {
	t.Helper()
	var lines []string
	err := c.Run(context.Background(), req, func(tr dispersion.Trial) error {
		b, err := json.Marshal(sink.Record{Trial: tr.Index, Result: tr.Result})
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	return lines
}

// The acceptance path: a K-shard coordinator run over live servers is
// byte-identical to a single contiguous Engine.Run, for K ∈ {1, 3, 7}.
func TestCoordinatorMatchesEngine(t *testing.T) {
	servers := newServers(t, 2)
	req := server.JobRequest{
		Process: "parallel", Spec: "torus:8x8", Trials: 23, Seed: 5, Experiment: 2,
	}
	want := direct(t, req)
	for _, k := range []int{1, 3, 7} {
		c := &shard.Coordinator{Servers: servers, Shards: k}
		if got := collectLines(t, c, req); !reflect.DeepEqual(got, want) {
			t.Fatalf("K=%d: sharded run diverged from contiguous Engine.Run (%d vs %d lines)",
				k, len(got), len(want))
		}
	}
}

// A logical job that is itself offset (FirstTrial > 0) shards correctly
// too: shards of shards are still just ranges.
func TestCoordinatorOffsetLogicalJob(t *testing.T) {
	servers := newServers(t, 1)
	whole := server.JobRequest{
		Process: "sequential", Spec: "complete:32", Trials: 20, Seed: 9,
	}
	wantAll := direct(t, whole)
	off := whole
	off.FirstTrial, off.Trials = 6, 11
	c := &shard.Coordinator{Servers: servers, Shards: 3}
	if got := collectLines(t, c, off); !reflect.DeepEqual(got, wantAll[6:17]) {
		t.Fatal("offset sharded run diverged from the matching slice of the contiguous run")
	}
}

// With a checkpoint configured, the log ends up holding exactly the
// merged result set, and an untouched rerun replays it without
// resubmitting anything.
func TestCheckpointHoldsMergedResults(t *testing.T) {
	servers := newServers(t, 2)
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	req := server.JobRequest{
		Process: "uniform", Spec: "complete:24", Trials: 17, Seed: 3, Experiment: 1,
	}
	want := direct(t, req)
	c := &shard.Coordinator{Servers: servers, Shards: 3, Checkpoint: ckpt}
	if got := collectLines(t, c, req); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpointed run diverged")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Fields(strings.TrimSpace(string(data))); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint file holds %d lines diverging from the run", len(got))
	}

	// Replay-only rerun: point the coordinator at a dead server so any
	// resubmission would fail loudly.
	c2 := &shard.Coordinator{Servers: []string{"http://127.0.0.1:1"}, Shards: 3, Checkpoint: ckpt, Retries: 1}
	if got := collectLines(t, c2, req); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpoint replay diverged")
	}
}

// Killing the coordinator mid-run and resuming from its checkpoint still
// produces the exact contiguous result set, computing only the missing
// suffix.
func TestCheckpointResumeAfterKill(t *testing.T) {
	servers := newServers(t, 2)
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	req := server.JobRequest{
		Process: "parallel", Spec: "complete:48", Trials: 30, Seed: 11, Experiment: 4,
	}
	want := direct(t, req)

	// First run: abort from the callback after 11 deliveries, simulating
	// a kill mid-run. Then corrupt the log with a torn final line,
	// simulating a crash mid-append.
	c := &shard.Coordinator{Servers: servers, Shards: 3, Checkpoint: ckpt}
	killed := errors.New("killed")
	seen := 0
	err := c.Run(context.Background(), req, func(dispersion.Trial) error {
		if seen++; seen == 11 {
			return killed
		}
		return nil
	})
	if !errors.Is(err, killed) {
		t.Fatalf("killed run returned %v", err)
	}
	f, err := os.OpenFile(ckpt, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":999,"res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume in a fresh coordinator (a new process would look like this):
	// replayed prefix + computed suffix must equal the contiguous run.
	c2 := &shard.Coordinator{Servers: servers, Shards: 3, Checkpoint: ckpt}
	if got := collectLines(t, c2, req); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed run diverged from contiguous Engine.Run")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Fields(strings.TrimSpace(string(data))); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpoint after resume diverged from contiguous run")
	}
}

// A checkpoint that belongs to a different logical job — same trial
// indices but another seed, or another trial range — is rejected via its
// .meta sidecar instead of silently merging foreign results.
func TestCheckpointMismatchRejected(t *testing.T) {
	servers := newServers(t, 1)
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	a := server.JobRequest{Process: "parallel", Spec: "complete:16", Trials: 6, Seed: 1}
	c := &shard.Coordinator{Servers: servers, Checkpoint: ckpt}
	if err := c.Run(context.Background(), a, nil); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*server.JobRequest){
		"seed":        func(r *server.JobRequest) { r.Seed = 2 },
		"first_trial": func(r *server.JobRequest) { r.FirstTrial = 3 },
		"spec":        func(r *server.JobRequest) { r.Spec = "complete:17" },
		"options":     func(r *server.JobRequest) { r.Options.Lazy = true },
	} {
		b := a
		mutate(&b)
		if err := c.Run(context.Background(), b, nil); err == nil {
			t.Errorf("checkpoint of a different %s was accepted", name)
		}
	}
	// A log with records but no identifying sidecar is rejected too.
	if err := os.Remove(ckpt + ".meta"); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background(), a, nil); err == nil {
		t.Error("unidentifiable checkpoint was accepted")
	}
}

// cutOnce wraps a server handler and kills the connection of the first
// results stream after a few lines, exercising the coordinator's
// reconnect-with-?from= path.
type cutOnce struct {
	inner    http.Handler
	cutAfter int

	mu      sync.Mutex
	tripped bool
}

func (c *cutOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/results") {
		c.mu.Lock()
		first := !c.tripped
		c.tripped = true
		c.mu.Unlock()
		if first {
			c.inner.ServeHTTP(&cutWriter{ResponseWriter: w, budget: c.cutAfter}, r)
			return
		}
	}
	c.inner.ServeHTTP(w, r)
}

// cutWriter aborts the connection once budget newlines have been sent.
type cutWriter struct {
	http.ResponseWriter
	budget int
}

func (w *cutWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			if w.budget--; w.budget < 0 {
				panic(http.ErrAbortHandler)
			}
		}
	}
	return w.ResponseWriter.Write(p)
}

// Flush keeps the wrapped writer streaming line by line.
func (w *cutWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// A results stream cut mid-flight by the transport is resumed against
// the same job with ?from=, with no gaps, duplicates, or recomputation
// visible to the caller.
func TestRetryReconnectsDroppedStream(t *testing.T) {
	m, err := server.NewManager(server.ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(&cutOnce{inner: server.New(m), cutAfter: 4})
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	req := server.JobRequest{Process: "sequential", Spec: "complete:32", Trials: 12, Seed: 7}
	c := &shard.Coordinator{Servers: []string{ts.URL}, Shards: 1}
	if got := collectLines(t, c, req); !reflect.DeepEqual(got, direct(t, req)) {
		t.Fatal("run over a dropped-and-resumed stream diverged")
	}
}

// A shard whose job is cancelled server-side — the trailer says
// "cancelled", not a transport error — is resubmitted with FirstTrial
// advanced past the results already delivered.
func TestRetryResubmitsDeadJob(t *testing.T) {
	// A single engine worker and a few thousand trials keep the job
	// running for a long, comfortable window, so the cancel below cannot
	// race its completion.
	m, err := server.NewManager(server.ManagerOptions{EngineWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	req := server.JobRequest{
		Process: "sequential", Spec: "complete:256", Trials: 1200, Seed: 13,
	}

	// Cancel the first submitted job once it has produced some results.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			for _, st := range m.List() {
				if st.State == server.StateRunning && st.Completed >= 3 {
					j, _ := m.Get(st.ID)
					j.Cancel()
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	c := &shard.Coordinator{Servers: []string{ts.URL}, Shards: 1}
	got := collectLines(t, c, req)
	<-done
	if want := direct(t, req); !reflect.DeepEqual(got, want) {
		t.Fatal("run with a cancelled-and-resubmitted shard diverged")
	}
	// The recovery really was a second job starting past trial 0.
	jobs := m.List()
	if len(jobs) < 2 {
		t.Fatalf("expected a resubmission, saw %d jobs", len(jobs))
	}
	resub := jobs[len(jobs)-1].Request
	if resub.FirstTrial == 0 || resub.Trials == req.Trials {
		t.Fatalf("resubmission did not advance past delivered results: first_trial=%d trials=%d",
			resub.FirstTrial, resub.Trials)
	}
}

// failTrailer rewrites a "done" results trailer into "failed" after the
// inner handler returns (trailers are flushed afterwards), modelling a
// job that delivered every trial and then died terminally — e.g. a
// server-side archive close failure after the last result.
type failTrailer struct {
	inner http.Handler
}

func (f failTrailer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.inner.ServeHTTP(w, r)
	if strings.HasSuffix(r.URL.Path, "/results") &&
		w.Header().Get(server.TrailerJobState) == string(server.StateDone) {
		w.Header().Set(server.TrailerJobState, string(server.StateFailed))
	}
}

// A shard whose every trial was delivered is complete no matter what
// terminal label the job ends with: no zero-trial resubmission, no
// retry exhaustion, just the full result set.
func TestFullyDeliveredShardSurvivesFailedLabel(t *testing.T) {
	m, err := server.NewManager(server.ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(failTrailer{inner: server.New(m)})
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	req := server.JobRequest{Process: "parallel", Spec: "complete:16", Trials: 8, Seed: 4}
	c := &shard.Coordinator{Servers: []string{ts.URL}, Shards: 2, Retries: 2}
	if got := collectLines(t, c, req); !reflect.DeepEqual(got, direct(t, req)) {
		t.Fatal("run against failed-labelled complete jobs diverged")
	}
}

// A dead server in the pool is routed around: the shard rotates to the
// next server on resubmission.
func TestRetryRotatesDeadServer(t *testing.T) {
	live := newServers(t, 1)
	req := server.JobRequest{Process: "parallel", Spec: "complete:16", Trials: 9, Seed: 2}
	c := &shard.Coordinator{Servers: []string{"http://127.0.0.1:1", live[0]}, Shards: 2}
	if got := collectLines(t, c, req); !reflect.DeepEqual(got, direct(t, req)) {
		t.Fatal("run with a dead server in the pool diverged")
	}
}

// A shard that can make no progress anywhere exhausts its retry budget
// and surfaces an error instead of spinning forever.
func TestRetriesExhausted(t *testing.T) {
	c := &shard.Coordinator{Servers: []string{"http://127.0.0.1:1"}, Retries: 2}
	req := server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 4, Seed: 1}
	err := c.Run(context.Background(), req, nil)
	if err == nil || !strings.Contains(err.Error(), "no progress after 2 attempts") {
		t.Fatalf("err = %v, want retry exhaustion", err)
	}
}

// Malformed logical jobs are rejected locally before anything is
// submitted; a cancelled context aborts the run.
func TestValidationAndCancellation(t *testing.T) {
	servers := newServers(t, 1)
	c := &shard.Coordinator{Servers: servers}
	if err := c.Run(context.Background(), server.JobRequest{Process: "nope", Spec: "complete:8", Trials: 1}, nil); err == nil {
		t.Fatal("unknown process accepted")
	}
	if err := c.Run(context.Background(), server.JobRequest{Process: "parallel", Spec: "complete:8"}, nil); err == nil {
		t.Fatal("zero trials accepted")
	}
	if err := (&shard.Coordinator{}).Run(context.Background(), server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 1}, nil); err == nil {
		t.Fatal("empty server pool accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.Run(ctx, server.JobRequest{Process: "parallel", Spec: "complete:8", Trials: 4}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
