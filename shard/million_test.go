package shard_test

import (
	"bytes"
	"testing"

	"dispersion/server"
	"dispersion/shard"
)

// The sketch-merge mode carries million-vertex implicit families across
// shards: each worker server runs its trial range as a summary_only job on
// the implicit torus (O(particles + sketch) per shard), and the merged
// summary is byte-identical to one contiguous run — the distributed leg of
// the O(particles)-memory acceptance.
func TestRunSummaryMillionVertexImplicit(t *testing.T) {
	servers := newServers(t, 2)
	req := server.JobRequest{
		Process:    "sequential",
		Spec:       "torus:1024x1024",
		Trials:     4,
		Seed:       12,
		Experiment: 5,
		Options:    server.Options{Particles: 4096},
	}
	want := directSummary(t, req)
	c := &shard.Coordinator{Servers: servers, Shards: 2}
	if got := runSummaryJSON(t, c, req); !bytes.Equal(got, want) {
		t.Fatalf("merged million-vertex summary differs from contiguous run:\n%s\n%s", got, want)
	}
}
