package shard_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dispersion"
	"dispersion/agg"
	"dispersion/server"
	"dispersion/shard"
)

// directSummary folds the logical job's trials into a summary with one
// contiguous Engine.Run and returns its canonical JSON.
func directSummary(t *testing.T, req server.JobRequest) []byte {
	t.Helper()
	eng := dispersion.Engine{Seed: req.Seed, Experiment: req.Experiment, ReuseResults: true}
	sum := agg.NewSummary()
	err := eng.Run(context.Background(), dispersion.Job{
		Process:    req.Process,
		Spec:       req.Spec,
		Origin:     req.Origin,
		Trials:     req.Trials,
		FirstTrial: req.FirstTrial,
		Options:    req.Options.Build(),
	}, func(tr dispersion.Trial) error {
		sum.Add(tr.Result)
		return nil
	})
	if err != nil {
		t.Fatalf("direct Engine.Run: %v", err)
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runSummaryJSON runs the coordinator's sketch-merge mode and marshals
// the merged summary.
func runSummaryJSON(t *testing.T, c *shard.Coordinator, req server.JobRequest) []byte {
	t.Helper()
	sum, err := c.RunSummary(context.Background(), req)
	if err != nil {
		t.Fatalf("RunSummary: %v", err)
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The sketch-merge acceptance path: shard-merged summaries are
// byte-identical to the contiguous run's summary, for K ∈ {1, 3, 7}.
func TestRunSummaryMatchesContiguous(t *testing.T) {
	servers := newServers(t, 2)
	req := server.JobRequest{
		Process: "parallel", Spec: "torus:8x8", Trials: 23, Seed: 5, Experiment: 2,
	}
	want := directSummary(t, req)
	for _, k := range []int{1, 3, 7} {
		c := &shard.Coordinator{Servers: servers, Shards: k}
		if got := runSummaryJSON(t, c, req); !bytes.Equal(got, want) {
			t.Fatalf("K=%d: merged summary differs from contiguous run:\n%s\n%s", k, got, want)
		}
	}
}

// An offset logical job (FirstTrial > 0) summarizes its exact slice.
func TestRunSummaryOffsetLogicalJob(t *testing.T) {
	servers := newServers(t, 1)
	req := server.JobRequest{
		Process: "sequential", Spec: "complete:32", Trials: 11, FirstTrial: 6, Seed: 9,
	}
	want := directSummary(t, req)
	c := &shard.Coordinator{Servers: servers, Shards: 3}
	if got := runSummaryJSON(t, c, req); !bytes.Equal(got, want) {
		t.Fatal("offset sharded summary diverged from the contiguous slice's summary")
	}
}

// A summary checkpoint resumes: with only a durable prefix of shard
// records, a rerun recomputes the missing shards and merges to the
// identical summary — and a full WAL replays without touching servers.
func TestRunSummaryCheckpointResume(t *testing.T) {
	servers := newServers(t, 2)
	ckpt := filepath.Join(t.TempDir(), "summary.jsonl")
	req := server.JobRequest{
		Process: "uniform", Spec: "complete:24", Trials: 17, Seed: 3, Experiment: 1,
	}
	c := &shard.Coordinator{Servers: servers, Shards: 3, Checkpoint: ckpt}
	want := runSummaryJSON(t, c, req)

	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("summary WAL holds %d records, want 3", lines)
	}

	// Truncate the WAL to its first record — the footprint of a
	// coordinator killed after one shard — and rerun.
	firstNL := bytes.IndexByte(data, '\n')
	if err := os.WriteFile(ckpt, data[:firstNL+1], 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runSummaryJSON(t, c, req); !bytes.Equal(got, want) {
		t.Fatal("resumed summary differs from the uninterrupted one")
	}

	// A complete WAL replays without any live server.
	offline := &shard.Coordinator{Servers: []string{"http://127.0.0.1:1"}, Shards: 3, Checkpoint: ckpt, Retries: 1}
	if got := runSummaryJSON(t, offline, req); !bytes.Equal(got, want) {
		t.Fatal("WAL replay differs from the live run")
	}
}

// A WAL written under one shard count is rejected under another, and
// the meta sidecar rejects a different request outright.
func TestRunSummaryCheckpointMismatch(t *testing.T) {
	servers := newServers(t, 1)
	ckpt := filepath.Join(t.TempDir(), "summary.jsonl")
	req := server.JobRequest{
		Process: "sequential", Spec: "complete:16", Trials: 12, Seed: 7,
	}
	c := &shard.Coordinator{Servers: servers, Shards: 3, Checkpoint: ckpt}
	runSummaryJSON(t, c, req)

	// Same request, different split: the WAL's shard ranges no longer
	// exist. (The sidecar pins the request, not the shard count.)
	c2 := &shard.Coordinator{Servers: servers, Shards: 2, Checkpoint: ckpt}
	if _, err := c2.RunSummary(context.Background(), req); err == nil || !strings.Contains(err.Error(), "split") {
		t.Fatalf("shard-count mismatch not rejected: %v", err)
	}

	// Different request: rejected by the sidecar.
	other := req
	other.Seed = 99
	if _, err := c.RunSummary(context.Background(), other); err == nil || !strings.Contains(err.Error(), "different job request") {
		t.Fatalf("request mismatch not rejected: %v", err)
	}
}

// A dead server in the pool is rotated past, same as in result mode.
func TestRunSummaryRotatesDeadServer(t *testing.T) {
	live := newServers(t, 1)
	c := &shard.Coordinator{
		Servers: []string{"http://127.0.0.1:1", live[0]},
		Shards:  2,
	}
	req := server.JobRequest{
		Process: "sequential", Spec: "complete:12", Trials: 8, Seed: 2,
	}
	want := directSummary(t, req)
	if got := runSummaryJSON(t, c, req); !bytes.Equal(got, want) {
		t.Fatal("summary with a dead server in the pool diverged")
	}
}
