package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"dispersion"
	"dispersion/server"
	"dispersion/sink"
)

// checkpoint is the coordinator's write-ahead result log: a JSONL file
// of sink.Record lines in trial order, appended before each result is
// handed to the caller and fsynced periodically, so a killed coordinator
// resumes from the last durable prefix without recomputing it.
type checkpoint struct {
	f        *os.File
	enc      *json.Encoder
	unsynced int
}

// syncEvery is how many appended records may accumulate between fsyncs.
// A crash loses at most this many trials of progress — they are simply
// recomputed on resume — while million-trial runs avoid a sync per line.
const syncEvery = 4096

// resumeCheckpoint opens (creating if absent) the JSONL log at path,
// replays every durable record to each, and returns the append handle
// plus the number of records replayed. The log must belong to exactly
// the logical job req describes — its identity is pinned by a
// "<path>.meta" sidecar holding the request JSON, so resuming with a
// different seed, spec, process, options, or trial range is rejected
// instead of silently mixing stale results — and must hold the
// contiguous trial prefix req.FirstTrial, req.FirstTrial+1, ... A
// partial final line — the footprint of a crash mid-append — is
// truncated away, not an error.
func resumeCheckpoint(path string, req server.JobRequest, each func(dispersion.Trial) error) (*checkpoint, int, error) {
	first, trials := req.FirstTrial, req.Trials
	if err := pinRequest(path, req); err != nil {
		return nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var good int64 // byte offset just past the last intact record
	n := 0
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No newline before EOF: an interrupted final append.
			break
		}
		if err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			good += int64(len(line))
			continue
		}
		var rec sink.Record
		if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
			if _, perr := br.Peek(1); perr == io.EOF {
				// A corrupt *final* line is a torn write too; drop it.
				break
			}
			f.Close()
			return nil, 0, fmt.Errorf("checkpoint %s: bad record %d: %w", path, n, uerr)
		}
		if rec.Trial != first+n || n >= trials {
			f.Close()
			return nil, 0, fmt.Errorf("checkpoint %s: holds trial %d at record %d, want trial %d of %d — not this run's checkpoint",
				path, rec.Trial, n, first+n, trials)
		}
		if each != nil {
			if cerr := each(dispersion.Trial{Index: rec.Trial, Result: rec.Result}); cerr != nil {
				f.Close()
				return nil, 0, cerr
			}
		}
		good += int64(len(line))
		n++
	}
	// Drop any torn tail and position appends at the end of the durable
	// prefix.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return &checkpoint{f: f, enc: json.NewEncoder(f)}, n, nil
}

// pinRequest binds the checkpoint to the logical job request via a
// "<path>.meta" sidecar: written on first use, compared on resume. A log
// with records but no sidecar is unidentifiable and rejected.
func pinRequest(path string, req server.JobRequest) error {
	want, err := json.Marshal(req)
	if err != nil {
		return err
	}
	metaPath := path + ".meta"
	existing, err := os.ReadFile(metaPath)
	switch {
	case err == nil:
		if !bytes.Equal(bytes.TrimSpace(existing), want) {
			return fmt.Errorf("checkpoint %s belongs to a different job request (see %s)", path, metaPath)
		}
		return nil
	case errors.Is(err, fs.ErrNotExist):
		if st, serr := os.Stat(path); serr == nil && st.Size() > 0 {
			return fmt.Errorf("checkpoint %s has records but no %s sidecar identifying its request", path, metaPath)
		}
		return os.WriteFile(metaPath, append(want, '\n'), 0o644)
	default:
		return err
	}
}

// Append logs one merged result ahead of its delivery to the caller.
func (c *checkpoint) Append(t dispersion.Trial) error {
	if err := c.enc.Encode(sink.Record{Trial: t.Index, Result: t.Result}); err != nil {
		return err
	}
	c.unsynced++
	if c.unsynced >= syncEvery {
		c.unsynced = 0
		return c.f.Sync()
	}
	return nil
}

// Close syncs and closes the log, reporting any error — the caller must
// not claim durable completion over a failed sync.
func (c *checkpoint) Close() error {
	serr := c.f.Sync()
	cerr := c.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
