package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dispersion"
	"dispersion/agg"
	"dispersion/server"
)

// RunSummary is the coordinator's sketch-merge mode: instead of pulling
// every per-trial result over the network, it submits each shard as a
// summary_only job, long-polls the per-shard summary endpoints, and
// merges the returned sketches into one agg.Summary covering trials
// [req.FirstTrial, req.FirstTrial+req.Trials). Network traffic and
// coordinator memory are O(shards · sketch), not O(trials) — and
// because every sketch in dispersion/agg is a pure function of its
// trial multiset, the merged summary marshals to bytes identical to
// the summary of one contiguous unsharded run of the same request.
//
// req.SummaryOnly is forced on for every shard submission. Retries
// mirror Run: a failed or vanished shard job is resubmitted on the
// next server, with the no-progress budget reset whenever a poll
// observes the shard's completed-trial count advance.
//
// With Checkpoint set, each completed shard's summary is appended to a
// JSONL write-ahead log (pinned to the request by the same
// "<Checkpoint>.meta" sidecar mechanism as Run's result log) and
// fsynced, so a killed coordinator resumes by merging the logged
// shards and recomputing only the rest. The log is not interchangeable
// with Run's result log — use a distinct path per mode.
func (c *Coordinator) RunSummary(ctx context.Context, req server.JobRequest) (*agg.Summary, error) {
	if len(c.Servers) == 0 {
		return nil, errors.New("shard: no servers configured")
	}
	req.SummaryOnly = true
	probe := dispersion.Job{
		Process:    req.Process,
		Spec:       req.Spec,
		Origin:     req.Origin,
		Trials:     req.Trials,
		FirstTrial: req.FirstTrial,
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}

	k := c.Shards
	if k <= 0 {
		k = len(c.Servers)
	}
	if k > req.Trials {
		k = req.Trials
	}
	ranges := splitRange(req.FirstTrial, req.Trials, k)

	have := map[int]json.RawMessage{}
	var wal *summaryWAL
	if c.Checkpoint != "" {
		var err error
		wal, have, err = resumeSummaryWAL(c.Checkpoint, req, ranges)
		if err != nil {
			return nil, err
		}
		defer wal.Close()
	}

	type shardDone struct {
		idx     int
		summary json.RawMessage
		err     error
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan shardDone)
	outstanding := 0
	for i, rg := range ranges {
		if _, ok := have[i]; ok {
			continue
		}
		outstanding++
		go func(idx int, rg trialRange) {
			b, err := c.runShardSummary(runCtx, idx, rg, req)
			select {
			case done <- shardDone{idx: idx, summary: b, err: err}:
			case <-runCtx.Done():
			}
		}(i, rg)
	}
	for ; outstanding > 0; outstanding-- {
		select {
		case d := <-done:
			if d.err != nil {
				rg := ranges[d.idx]
				return nil, fmt.Errorf("shard: shard %d (trials [%d,%d)): %w", d.idx, rg.first, rg.first+rg.trials, d.err)
			}
			if wal != nil {
				if err := wal.Append(d.idx, ranges[d.idx], d.summary); err != nil {
					return nil, fmt.Errorf("shard: summary checkpoint: %w", err)
				}
			}
			have[d.idx] = d.summary
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	merged := agg.NewSummary()
	for i := range ranges {
		var s agg.Summary
		if err := json.Unmarshal(have[i], &s); err != nil {
			return nil, fmt.Errorf("shard: shard %d summary: %w", i, err)
		}
		if err := merged.Merge(&s); err != nil {
			return nil, fmt.Errorf("shard: merge shard %d: %w", i, err)
		}
	}
	if wal != nil {
		if err := wal.Close(); err != nil {
			return nil, fmt.Errorf("shard: summary checkpoint: %w", err)
		}
	}
	return merged, nil
}

// runShardSummary drives one shard of the sketch-merge mode: submit its
// range as a summary_only job, long-poll the summary endpoint until the
// job is terminal, and return the summary JSON. Failures follow Run's
// retry ladder — reconnect to a live job, resubmit (rotating servers)
// a dead or vanished one — with observed completed-trial growth
// counting as progress against the no-progress budget.
func (c *Coordinator) runShardSummary(ctx context.Context, idx int, rg trialRange, req server.JobRequest) (_ json.RawMessage, err error) {
	var (
		jobURL    string
		completed int // latest observed completed-trial count
		fails     int
		throttles int // consecutive 429-throttled submissions
		lastErr   error
	)
	rng := c.shardRNG(idx)
	defer func() {
		if err != nil && jobURL != "" {
			c.cancelJob(jobURL)
		}
	}()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if fails >= c.retries() {
			return nil, fmt.Errorf("no progress after %d attempts: %w", fails, lastErr)
		}
		if fails > 0 {
			select {
			case <-time.After(jitteredBackoff(rng, fails)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if jobURL == "" {
			shardReq := req
			shardReq.FirstTrial = rg.first
			shardReq.Trials = rg.trials
			base := c.Servers[(idx+attempt)%len(c.Servers)]
			st, err := c.submit(ctx, base, shardReq)
			var te *throttleError
			if errors.As(err, &te) && throttles < maxThrottles {
				// Obey the server's 429 Retry-After pacing on the throttle
				// budget, not the no-progress retry budget (see runShard).
				throttles++
				lastErr = err
				select {
				case <-time.After(throttleWait(rng, te.retryAfter)):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				continue
			}
			if err != nil {
				lastErr = err
				fails++
				continue
			}
			throttles = 0
			jobURL = strings.TrimSuffix(base, "/") + "/v1/jobs/" + st.ID
			completed = 0
		}
		sr, err := c.fetchSummary(ctx, jobURL)
		if err != nil {
			if errors.Is(err, errJobGone) {
				jobURL = ""
			}
			lastErr = err
			fails++
			continue
		}
		if sr.Completed > completed {
			completed = sr.Completed
			fails = 0
		}
		switch sr.State {
		case server.StateDone:
			if sr.Completed != rg.trials {
				return nil, fmt.Errorf("job reported done after %d of %d trials", sr.Completed, rg.trials)
			}
			return sr.Summary, nil
		case server.StateFailed, server.StateCancelled:
			lastErr = fmt.Errorf("job ended %s%s", sr.State, c.jobError(ctx, jobURL))
			jobURL = ""
			fails++
		default:
			// The long poll returned early (e.g. its connection was cut
			// before the job finished); poll again.
			lastErr = fmt.Errorf("summary poll ended with job still %s", sr.State)
			fails++
		}
	}
}

// fetchSummary long-polls one job's summary endpoint with ?wait=1.
func (c *Coordinator) fetchSummary(ctx context.Context, jobURL string) (server.SummaryResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, jobURL+"/summary?wait=1", nil)
	if err != nil {
		return server.SummaryResponse{}, err
	}
	resp, err := c.client().Do(hreq)
	if err != nil {
		return server.SummaryResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return server.SummaryResponse{}, errJobGone
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return server.SummaryResponse{}, fmt.Errorf("summary: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var sr server.SummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return server.SummaryResponse{}, fmt.Errorf("summary: %w", err)
	}
	return sr, nil
}

// summaryRecord is one line of the sketch-merge write-ahead log: a
// completed shard's range and summary JSON.
type summaryRecord struct {
	Shard   int             `json:"shard"`
	First   int             `json:"first"`
	Trials  int             `json:"trials"`
	Summary json.RawMessage `json:"summary"`
}

// summaryWAL is the sketch-merge checkpoint: one summaryRecord per
// completed shard, fsynced per append — shard completions are rare
// (seconds to hours apart), so durability per record costs nothing.
type summaryWAL struct {
	f   *os.File
	enc *json.Encoder
}

// resumeSummaryWAL opens (creating if absent) the log at path, pins it
// to req via the "<path>.meta" sidecar, and returns the append handle
// plus the summaries of every durably completed shard, keyed by shard
// index. Records are validated against the current split — the split
// is a pure function of (FirstTrial, Trials, shard count), so a
// mismatch means the log belongs to a different configuration. A torn
// final line (a crash mid-append) is truncated away.
func resumeSummaryWAL(path string, req server.JobRequest, ranges []trialRange) (*summaryWAL, map[int]json.RawMessage, error) {
	if err := pinRequest(path, req); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	have := map[int]json.RawMessage{}
	br := bufio.NewReaderSize(f, 1<<20)
	var good int64
	n := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("summary checkpoint %s: %w", path, rerr)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			good += int64(len(line))
			continue
		}
		var rec summaryRecord
		if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
			if _, perr := br.Peek(1); perr == io.EOF {
				break // torn final line
			}
			f.Close()
			return nil, nil, fmt.Errorf("summary checkpoint %s: bad record %d: %w", path, n, uerr)
		}
		if rec.Shard < 0 || rec.Shard >= len(ranges) ||
			ranges[rec.Shard].first != rec.First || ranges[rec.Shard].trials != rec.Trials {
			f.Close()
			return nil, nil, fmt.Errorf("summary checkpoint %s: record %d covers shard %d trials [%d,%d), which is not part of this split — was the shard count changed?",
				path, n, rec.Shard, rec.First, rec.First+rec.Trials)
		}
		if _, dup := have[rec.Shard]; dup {
			f.Close()
			return nil, nil, fmt.Errorf("summary checkpoint %s: duplicate record for shard %d", path, rec.Shard)
		}
		have[rec.Shard] = rec.Summary
		good += int64(len(line))
		n++
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("summary checkpoint %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("summary checkpoint %s: %w", path, err)
	}
	return &summaryWAL{f: f, enc: json.NewEncoder(f)}, have, nil
}

// Append durably logs one completed shard's summary.
func (w *summaryWAL) Append(idx int, rg trialRange, summary json.RawMessage) error {
	if err := w.enc.Encode(summaryRecord{Shard: idx, First: rg.first, Trials: rg.trials, Summary: summary}); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the log; Append already synced every record. Close is
// idempotent so RunSummary can both check its error on success and
// defer it for cleanup.
func (w *summaryWAL) Close() error {
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	return f.Close()
}
