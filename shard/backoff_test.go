package shard

// backoff_test.go unit-tests the coordinator's retry pacing: jitter
// bounds and decorrelation, throttle-wait clamping, and Retry-After
// parsing. The end-to-end 429 path is covered from outside the package
// in throttle_test.go.

import (
	"testing"
	"time"
)

// Jittered backoff must stay inside [base/2, base) of the exponential
// ladder, and two coordinators with different seeds must produce
// different schedules — the decorrelation that keeps K shard followers
// of one recovering server from retrying in lockstep.
func TestJitteredBackoffDecorrelates(t *testing.T) {
	c1 := &Coordinator{JitterSeed: 1}
	c2 := &Coordinator{JitterSeed: 2}
	rng1, rng2 := c1.shardRNG(0), c2.shardRNG(0)

	const rounds = 8
	var s1, s2 [rounds]time.Duration
	differ := false
	for fails := 1; fails <= rounds; fails++ {
		base := min(250*time.Millisecond<<(fails-1), 5*time.Second)
		s1[fails-1] = jitteredBackoff(rng1, fails)
		s2[fails-1] = jitteredBackoff(rng2, fails)
		for i, d := range []time.Duration{s1[fails-1], s2[fails-1]} {
			if d < base/2 || d >= base {
				t.Errorf("coordinator %d, fails=%d: backoff %v outside [%v, %v)", i+1, fails, d, base/2, base)
			}
		}
		if s1[fails-1] != s2[fails-1] {
			differ = true
		}
	}
	if !differ {
		t.Errorf("two differently-seeded coordinators produced identical schedules %v", s1)
	}

	// Same seed, same shard: the schedule is reproducible.
	r1, r2 := c1.shardRNG(3), (&Coordinator{JitterSeed: 1}).shardRNG(3)
	for fails := 1; fails <= rounds; fails++ {
		if a, b := jitteredBackoff(r1, fails), jitteredBackoff(r2, fails); a != b {
			t.Fatalf("same seed diverged at fails=%d: %v vs %v", fails, a, b)
		}
	}
}

// Distinct shards of one coordinator must also jitter independently.
func TestShardRNGsIndependent(t *testing.T) {
	c := &Coordinator{JitterSeed: 7}
	rng0, rng1 := c.shardRNG(0), c.shardRNG(1)
	same := true
	for fails := 1; fails <= 8; fails++ {
		if jitteredBackoff(rng0, fails) != jitteredBackoff(rng1, fails) {
			same = false
		}
	}
	if same {
		t.Error("shards 0 and 1 produced identical jitter schedules")
	}
}

// Throttle waits must obey the clamp regardless of the server's hint.
func TestThrottleWaitBounds(t *testing.T) {
	rng := (&Coordinator{JitterSeed: 1}).shardRNG(0)
	for _, hint := range []time.Duration{0, time.Millisecond, time.Second, time.Hour} {
		for i := 0; i < 100; i++ {
			d := throttleWait(rng, hint)
			if d < minThrottleWait {
				t.Fatalf("throttleWait(%v) = %v, below the %v floor", hint, d, minThrottleWait)
			}
			if limit := maxThrottleWait + maxThrottleWait/2; d > limit {
				t.Fatalf("throttleWait(%v) = %v, above the jittered %v ceiling", hint, d, limit)
			}
		}
	}
}

// parseRetryAfter reads whole seconds and defaults to 1s otherwise.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"1", time.Second},
		{"30", 30 * time.Second},
		{"0", 0},
		{"", time.Second},
		{"soon", time.Second},
		{"-2", time.Second},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
