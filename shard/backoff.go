package shard

// backoff.go is the coordinator's retry-pacing policy: jittered
// exponential backoff for no-progress attempts, and a separate throttle
// path that honours the server's 429 + Retry-After admission-control
// rejections instead of burning the no-progress retry budget on them.

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"
)

// maxThrottles caps how many consecutive 429 rejections one shard obeys
// before treating sustained throttling as a failure. It is deliberately
// far above the no-progress retry budget: a throttled server is healthy
// and asking for time, not broken.
const maxThrottles = 64

// Throttle waits are clamped to this range regardless of what the
// server's Retry-After header asks for, so a misconfigured (or
// malicious) hint can neither spin-loop the coordinator nor park it for
// hours.
const (
	minThrottleWait = 100 * time.Millisecond
	maxThrottleWait = 30 * time.Second
)

// jitterSeed resolves the coordinator's backoff-jitter seed exactly
// once: the configured JitterSeed, or a random one.
func (c *Coordinator) jitterSeed() uint64 {
	c.seedOnce.Do(func() {
		if c.JitterSeed != 0 {
			c.seed = c.JitterSeed
			return
		}
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			c.seed = binary.LittleEndian.Uint64(b[:])
		}
		if c.seed == 0 {
			c.seed = 1
		}
	})
	return c.seed
}

// shardRNG returns the shard's private jitter source, seeded from the
// coordinator seed and the shard index so schedules are reproducible
// under an explicit JitterSeed yet distinct per shard.
func (c *Coordinator) shardRNG(idx int) *rand.Rand {
	return rand.New(rand.NewPCG(c.jitterSeed(), uint64(idx)))
}

// jitteredBackoff returns the wait before retry number fails (>= 1):
// exponential in fails with a 5s cap, drawn uniformly from
// [base/2, base) so concurrent followers of a recovering server spread
// out instead of retrying in lockstep.
func jitteredBackoff(rng *rand.Rand, fails int) time.Duration {
	base := min(250*time.Millisecond<<(fails-1), 5*time.Second)
	return base/2 + time.Duration(rng.Int64N(int64(base/2)))
}

// throttleWait returns how long to obey a 429's Retry-After hint: the
// hint clamped to [minThrottleWait, maxThrottleWait], plus up to 50%
// jitter so throttled shards do not all come back in the same instant.
func throttleWait(rng *rand.Rand, hint time.Duration) time.Duration {
	hint = min(max(hint, minThrottleWait), maxThrottleWait)
	return hint + time.Duration(rng.Int64N(int64(hint/2)+1))
}

// throttleError reports a 429 Too Many Requests submission rejection:
// the server's admission control shed the job and asked the client to
// come back after retryAfter. The coordinator obeys the hint on a
// separate throttle budget — a throttled submission made no progress,
// but the server is alive and explicitly pacing us, so it must not
// consume the no-progress retry budget reserved for real failures.
type throttleError struct {
	server     string
	retryAfter time.Duration
	msg        string
}

// Error renders the rejection with the server's pacing hint.
func (e *throttleError) Error() string {
	return fmt.Sprintf("submit to %s: throttled (429), retry after %s: %s", e.server, e.retryAfter, e.msg)
}

// parseRetryAfter reads a Retry-After header value as whole seconds
// (the only form the dispersion server emits), defaulting to 1s when
// absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if secs, err := strconv.ParseInt(h, 10, 64); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}
