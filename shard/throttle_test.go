package shard_test

// throttle_test.go covers the coordinator's 429 handling end to end: an
// admission-control rejection with Retry-After must be obeyed as pacing,
// on a budget separate from the no-progress retry ladder.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dispersion"
	"dispersion/server"
	"dispersion/shard"
)

// throttleFirst rejects the first n job submissions with
// 429 + Retry-After: 0, then forwards everything to the real server.
type throttleFirst struct {
	inner http.Handler
	mu    sync.Mutex
	n     int
}

func (h *throttleFirst) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		h.mu.Lock()
		throttle := h.n > 0
		if throttle {
			h.n--
		}
		h.mu.Unlock()
		if throttle {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

// Three consecutive 429s exceed a 2-attempt retry budget, so the run
// only succeeds if throttled submissions are paced on their own budget
// instead of burning no-progress retries.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	m, err := server.NewManager(server.ManagerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(&throttleFirst{inner: server.New(m), n: 3})
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})

	c := &shard.Coordinator{Servers: []string{ts.URL}, Shards: 1, Retries: 2, JitterSeed: 1}
	req := server.JobRequest{Process: "parallel", Spec: "complete:16", Trials: 5, Seed: 3}
	got := 0
	err = c.Run(context.Background(), req, func(tr dispersion.Trial) error {
		if tr.Index != got {
			t.Errorf("trial %d delivered out of order (want %d)", tr.Index, got)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatalf("Run through 3 throttled submissions: %v", err)
	}
	if got != req.Trials {
		t.Fatalf("delivered %d trials, want %d", got, req.Trials)
	}
}
