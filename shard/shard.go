// Package shard fans one logical dispersion job out as disjoint
// trial-range shards across one or more dispersion servers and merges
// the result streams back into a single in-order callback.
//
// The engine's determinism contract makes sharding trivial to state:
// trial i of a job always draws the split random stream
// (seed, experiment, i), so a server.JobRequest with FirstTrial = f and
// Trials = n computes exactly trials [f, f+n) of the one logical run —
// bit-identical to the corresponding slice of a contiguous run. The
// Coordinator splits [FirstTrial, FirstTrial+Trials) into K contiguous
// ranges, submits each as its own job (round-robin over the configured
// servers), consumes the K NDJSON streams concurrently, and delivers the
// merged results in strict trial order, exactly once.
//
// Failures are retried without recomputation: a stream cut by the
// transport reconnects with ?from= advanced past the lines already
// consumed, and a shard whose job dies (server restart, cancellation) is
// resubmitted with FirstTrial advanced past the trials already
// delivered. The server's X-Job-State trailer (server.TrailerJobState)
// is what distinguishes the two cases: a stream that ends with the
// trailer "done" is complete, while "failed"/"cancelled" or a missing
// trailer triggers the retry path.
//
// With Checkpoint set, every merged result is appended to a JSONL
// write-ahead log before it reaches the callback, so a killed
// coordinator resumes exactly where it stopped: on the next Run the log
// is replayed to the callback from disk and only the remaining trial
// range is resubmitted.
//
// RunSummary is the sketch-merge mode: shards run as summary_only jobs,
// only their agg.Summary sketches cross the network, and the merged
// summary is byte-identical to a contiguous run's — see RunSummary.
package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"dispersion"
	"dispersion/server"
	"dispersion/sink"
)

// Coordinator fans one logical job out as disjoint trial-range shards.
// The zero value is not usable: at least one server URL is required.
type Coordinator struct {
	// Servers are the dispersion-server base URLs (e.g.
	// "http://host:8080") the shards are submitted to, round-robin by
	// shard index; retries rotate to the next server.
	Servers []string
	// Shards is K, the number of disjoint trial ranges the job is split
	// into. 0 means one shard per server. K is capped at the trial count.
	Shards int
	// Checkpoint is the path of the JSONL write-ahead result log. A
	// "<Checkpoint>.meta" sidecar pins the log to its job request, so a
	// resume with different coordinates is rejected rather than mixing
	// stale results. Empty disables checkpointing: a killed coordinator
	// then restarts the run from scratch.
	Checkpoint string
	// Client is the HTTP client used for all requests; nil means
	// http.DefaultClient. Do not set a client Timeout: result streams of
	// long jobs are expected to stay open indefinitely.
	Client *http.Client
	// Retries caps the consecutive attempts a shard makes without
	// delivering a single new result before the run is abandoned;
	// attempts that make progress reset the budget. 0 means 5. 429
	// admission-control rejections do not consume this budget: the
	// coordinator obeys the server's Retry-After hint on a separate,
	// larger throttle budget.
	Retries int
	// JitterSeed seeds the backoff jitter deterministically; 0 (the
	// default) draws a random seed, which is what decorrelates the retry
	// schedules of independent coordinators hitting one recovering
	// server. Set it only to make retry timing reproducible in tests.
	JitterSeed uint64

	seedOnce sync.Once
	seed     uint64
}

// trialRange is one shard's slice [first, first+trials) of the logical
// trial range.
type trialRange struct {
	first, trials int
}

// splitRange cuts [first, first+trials) into at most k contiguous
// non-empty ranges of near-equal size. The split depends only on
// (first, trials, k), so shard boundaries are stable across resumes.
func splitRange(first, trials, k int) []trialRange {
	out := make([]trialRange, 0, k)
	for i := 0; i < k; i++ {
		lo := first + i*trials/k
		hi := first + (i+1)*trials/k
		if hi > lo {
			out = append(out, trialRange{first: lo, trials: hi - lo})
		}
	}
	return out
}

// client returns the configured HTTP client.
func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// retries returns the configured no-progress attempt budget.
func (c *Coordinator) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 5
}

// shardStream carries one shard's in-order results to the merger. err is
// set before ch is closed.
type shardStream struct {
	ch  chan dispersion.Trial
	err error
}

// Run executes the logical job described by req — trials
// [req.FirstTrial, req.FirstTrial+req.Trials) of (seed, experiment) —
// across the coordinator's servers and delivers every result to each in
// strict trial order, exactly once: the merged stream is bit-identical
// to a single contiguous Engine.Run (or one unsharded server job) with
// the same coordinates. each may be nil to discard results.
//
// With Checkpoint set, results already in the log are replayed to each
// from disk first and only the remainder is computed, so Run is
// restartable: kill it at any point and call it again with the same
// request. Run returns the first unrecoverable error — a context
// cancellation, a callback or checkpoint error, or a shard that
// exhausted its retry budget.
func (c *Coordinator) Run(ctx context.Context, req server.JobRequest, each func(dispersion.Trial) error) error {
	if len(c.Servers) == 0 {
		return errors.New("shard: no servers configured")
	}
	// Mirror the server's submit-time validation locally so a malformed
	// request fails before any shard is queued anywhere.
	probe := dispersion.Job{
		Process:    req.Process,
		Spec:       req.Spec,
		Origin:     req.Origin,
		Trials:     req.Trials,
		FirstTrial: req.FirstTrial,
	}
	if err := probe.Validate(); err != nil {
		return err
	}

	delivered := 0
	var ckpt *checkpoint
	if c.Checkpoint != "" {
		var err error
		ckpt, delivered, err = resumeCheckpoint(c.Checkpoint, req, each)
		if err != nil {
			return err
		}
	}
	closeCkpt := func() error {
		if ckpt == nil {
			return nil
		}
		cp := ckpt
		ckpt = nil
		return cp.Close()
	}
	defer closeCkpt()
	if delivered == req.Trials {
		return closeCkpt()
	}

	k := c.Shards
	if k <= 0 {
		k = len(c.Servers)
	}
	if k > req.Trials {
		k = req.Trials
	}
	// Split the full logical range so shard boundaries are stable across
	// resumes, then clip away the prefix the checkpoint already holds.
	resumeFrom := req.FirstTrial + delivered
	var ranges []trialRange
	for _, rg := range splitRange(req.FirstTrial, req.Trials, k) {
		end := rg.first + rg.trials
		if end <= resumeFrom {
			continue
		}
		if rg.first < resumeFrom {
			rg = trialRange{first: resumeFrom, trials: end - resumeFrom}
		}
		ranges = append(ranges, rg)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	streams := make([]*shardStream, len(ranges))
	for i := range ranges {
		ss := &shardStream{ch: make(chan dispersion.Trial, 256)}
		streams[i] = ss
		go func(idx int, rg trialRange, ss *shardStream) {
			defer close(ss.ch)
			ss.err = c.runShard(runCtx, idx, rg, req, ss.ch)
		}(i, ranges[i], ss)
	}

	// Merge: shards cover contiguous ranges in index order, so draining
	// them one after another yields the global trial order. Later shards
	// compute (and buffer server-side) while earlier ones drain.
	next := resumeFrom
	for i, ss := range streams {
		for tr := range ss.ch {
			if tr.Index != next {
				return fmt.Errorf("shard: shard %d delivered trial %d, want %d", i, tr.Index, next)
			}
			if ckpt != nil {
				if err := ckpt.Append(tr); err != nil {
					return fmt.Errorf("shard: checkpoint: %w", err)
				}
			}
			if each != nil {
				if err := each(tr); err != nil {
					return err
				}
			}
			next++
		}
		if ss.err != nil {
			rg := ranges[i]
			return fmt.Errorf("shard: shard %d (trials [%d,%d)): %w", i, rg.first, rg.first+rg.trials, ss.err)
		}
	}
	return closeCkpt()
}

// errJobGone reports that a shard's job no longer exists on its server
// (e.g. the server restarted), so reconnecting is pointless and the
// remaining range must be resubmitted.
var errJobGone = errors.New("job no longer exists on its server")

// runShard drives one shard to completion: submit its trial range as a
// job, follow the job's result stream, and on any interruption resume
// without recomputation — reconnect with ?from= while the job is alive,
// resubmit the undelivered remainder (rotating servers) when it is not.
// Results are pushed into ch in trial order.
func (c *Coordinator) runShard(ctx context.Context, idx int, rg trialRange, req server.JobRequest, ch chan<- dispersion.Trial) (err error) {
	var (
		done      int    // trials of this shard already pushed into ch
		jobURL    string // active job, "" when a (re)submit is needed
		streamed  int    // result lines already consumed from the active job
		fails     int    // consecutive attempts with no progress
		throttles int    // consecutive 429-throttled submissions
		lastErr   error
	)
	rng := c.shardRNG(idx)
	// An abandoned exit leaves the active job computing a range nobody
	// will ever consume; cancel it so the server stops burning cores.
	defer func() {
		if err != nil && jobURL != "" {
			c.cancelJob(jobURL)
		}
	}()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if fails >= c.retries() {
			return fmt.Errorf("no progress after %d attempts: %w", fails, lastErr)
		}
		if fails > 0 {
			// Back off after a no-progress attempt so a brief outage — a
			// server restart, say — does not burn the whole retry budget
			// in microseconds. The wait is jittered so K followers of one
			// recovering server spread out instead of retrying in
			// lockstep.
			select {
			case <-time.After(jitteredBackoff(rng, fails)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if jobURL == "" {
			shardReq := req
			shardReq.FirstTrial = rg.first + done
			shardReq.Trials = rg.trials - done
			base := c.Servers[(idx+attempt)%len(c.Servers)]
			st, err := c.submit(ctx, base, shardReq)
			var te *throttleError
			if errors.As(err, &te) && throttles < maxThrottles {
				// Admission control shed the job: the server is healthy
				// and pacing us, so obey its Retry-After hint without
				// consuming the no-progress retry budget.
				throttles++
				lastErr = err
				select {
				case <-time.After(throttleWait(rng, te.retryAfter)):
				case <-ctx.Done():
					return ctx.Err()
				}
				continue
			}
			if err != nil {
				lastErr = err
				fails++
				continue
			}
			throttles = 0
			jobURL = strings.TrimSuffix(base, "/") + "/v1/jobs/" + st.ID
			streamed = 0
		}
		n, state, err := c.follow(ctx, jobURL, streamed, rg.first+done, ch)
		streamed += n
		done += n
		if n > 0 {
			fails = 0
		}
		if done == rg.trials {
			// Every trial of the range is delivered and merged; whatever
			// terminal label the job ends up with afterwards (e.g.
			// "failed" because a server-side archive close failed) cannot
			// change the results, and resubmitting a zero-trial
			// remainder would be rejected anyway.
			return nil
		}
		if err == nil && state == "" {
			// A clean EOF without the trailer (e.g. a trailer-stripping
			// proxy between coordinator and server): the status endpoint
			// disambiguates a finished job from a cut connection.
			if st, ok := c.jobStatus(ctx, jobURL); ok && st.State.Terminal() {
				state = st.State
			}
		}
		switch {
		case err == nil && state == server.StateDone:
			// done == rg.trials returned above, so this stream ended
			// short of the submitted range: a server-side bug.
			return fmt.Errorf("job reported done after %d of %d trials", done, rg.trials)
		case err == nil && (state == server.StateFailed || state == server.StateCancelled):
			// The job is terminally dead; resubmit the rest of the range
			// on the next server. A deterministic failure will exhaust
			// the retry budget and surface here.
			lastErr = fmt.Errorf("job ended %s%s", state, c.jobError(ctx, jobURL))
			jobURL = ""
			fails++
		case errors.Is(err, errJobGone):
			lastErr = err
			jobURL = ""
			fails++
		default:
			// Transport cut (connection drop, truncated line, or a clean
			// EOF without the state trailer): the job itself may be fine,
			// so reconnect to it with ?from= advanced.
			if err == nil {
				err = errors.New("stream ended without a job-state trailer")
			}
			lastErr = err
			fails++
		}
	}
}

// submit POSTs one shard's job request to the given server and returns
// the accepted status.
func (c *Coordinator) submit(ctx context.Context, base string, req server.JobRequest) (server.Status, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return server.Status{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(base, "/")+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return server.Status{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(hreq)
	if err != nil {
		return server.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return server.Status{}, &throttleError{
			server:     base,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			msg:        string(bytes.TrimSpace(msg)),
		}
	}
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return server.Status{}, fmt.Errorf("submit to %s: HTTP %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.Status{}, fmt.Errorf("submit to %s: %w", base, err)
	}
	return st, nil
}

// follow streams the active job's results from line offset from, pushing
// each record into ch and checking that indices continue at wantNext. It
// returns the number of records pushed and, when the stream ended at a
// terminal job state, that state from the X-Job-State trailer; a
// transport-level interruption returns the error instead.
func (c *Coordinator) follow(ctx context.Context, jobURL string, from, wantNext int, ch chan<- dispersion.Trial) (int, server.State, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/results?from=%d", jobURL, from), nil)
	if err != nil {
		return 0, "", err
	}
	resp, err := c.client().Do(hreq)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, "", errJobGone
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, "", fmt.Errorf("results: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	n := 0
	// A plain reader, not a Scanner: record=true result lines have no
	// a-priori size bound, and a fixed cap would misread an oversized
	// line as a transport failure.
	br := bufio.NewReaderSize(resp.Body, 64*1024)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF {
			if len(bytes.TrimSpace(line)) != 0 {
				// Data after the last newline: the connection was cut
				// mid-line; the reconnect re-requests the line whole.
				return n, "", fmt.Errorf("stream cut mid-line at record %d", from+n)
			}
			return n, server.State(resp.Trailer.Get(server.TrailerJobState)), nil
		}
		if rerr != nil {
			return n, "", rerr
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec sink.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, "", fmt.Errorf("bad result line %d: %w", from+n, err)
		}
		if rec.Trial != wantNext+n {
			return n, "", fmt.Errorf("stream out of order: got trial %d, want %d", rec.Trial, wantNext+n)
		}
		select {
		case ch <- dispersion.Trial{Index: rec.Trial, Result: rec.Result}:
		case <-ctx.Done():
			return n, "", ctx.Err()
		}
		n++
	}
}

// cancelJob best-effort DELETEs an abandoned job. It runs on its own
// short-lived context, because cleanup is needed exactly when the run
// context is already dead.
func (c *Coordinator) cancelJob(jobURL string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, jobURL, nil)
	if err != nil {
		return
	}
	resp, err := c.client().Do(hreq)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// jobStatus polls the job's status endpoint, best-effort: ok is false
// when the job is unreachable or undecodable.
func (c *Coordinator) jobStatus(ctx context.Context, jobURL string) (server.Status, bool) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, jobURL, nil)
	if err != nil {
		return server.Status{}, false
	}
	resp, err := c.client().Do(hreq)
	if err != nil {
		return server.Status{}, false
	}
	defer resp.Body.Close()
	var st server.Status
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return server.Status{}, false
	}
	return st, true
}

// jobError fetches the dead job's failure message for error reporting,
// best-effort: it returns "" when the status is unreachable.
func (c *Coordinator) jobError(ctx context.Context, jobURL string) string {
	st, ok := c.jobStatus(ctx, jobURL)
	if !ok || st.Error == "" {
		return ""
	}
	return ": " + st.Error
}
