package dispersion_test

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"dispersion"
	"dispersion/internal/exact"
	"dispersion/internal/graph"
)

// lines renders one job's trials as their canonical JSONL-ish lines so
// runs can be compared bit-for-bit.
func lines(t *testing.T, eng dispersion.Engine, job dispersion.Job) []string {
	t.Helper()
	out := make([]string, 0, job.Trials)
	err := eng.Run(context.Background(), job, func(tr dispersion.Trial) error {
		b, err := json.Marshal(struct {
			Trial  int                `json:"trial"`
			Result *dispersion.Result `json:"result"`
		}{tr.Index, tr.Result})
		if err != nil {
			return err
		}
		out = append(out, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("Engine.Run: %v", err)
	}
	return out
}

// TestFirstTrialShardsMatchContiguous is the sharding property test: for
// every registered process, splitting the trial range into FirstTrial
// shards — several split shapes, a different worker count per shard —
// reproduces the contiguous run bit for bit.
func TestFirstTrialShardsMatchContiguous(t *testing.T) {
	const total = 24
	splits := [][]int{
		{total},               // one shard: FirstTrial plumbing is a no-op
		{8, 9, 7},             // uneven 3-way
		{3, 4, 3, 4, 3, 4, 3}, // 7-way
		{1, 22, 1},            // extreme edges
	}
	for _, proc := range dispersion.Processes() {
		base := dispersion.Job{Process: proc, Spec: "complete:16", Trials: total}
		want := lines(t, dispersion.Engine{Seed: 5, Experiment: 2}, base)
		for si, split := range splits {
			var got []string
			first := 0
			for k, n := range split {
				eng := dispersion.Engine{Seed: 5, Experiment: 2, Workers: 1 + (si+3*k)%7}
				job := base
				job.FirstTrial, job.Trials = first, n
				shard := lines(t, eng, job)
				if len(shard) != n {
					t.Fatalf("%s split %d shard %d: %d lines, want %d", proc, si, k, len(shard), n)
				}
				got = append(got, shard...)
				first += n
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: split %v diverged from the contiguous run", proc, split)
			}
		}
	}
}

// TestFirstTrialValidate pins the submit-time validation of the offset.
func TestFirstTrialValidate(t *testing.T) {
	job := dispersion.Job{Process: "parallel", Spec: "complete:8", Trials: 1, FirstTrial: -1}
	if err := job.Validate(); err == nil {
		t.Fatal("negative FirstTrial validated")
	}
	job.FirstTrial = 1 << 20
	if err := job.Validate(); err != nil {
		t.Fatalf("large FirstTrial rejected: %v", err)
	}
}

// TestShardedSampleMatchesExact checks one sharded configuration against
// internal/exact ground truth: the pooled sample mean of the sequential
// dispersion time on K_6, accumulated across three FirstTrial shards,
// must agree with the exact expectation.
func TestShardedSampleMatchesExact(t *testing.T) {
	g := graph.Complete(6)
	e, err := exact.NewSequential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, tail := e.ExpectedDispersion(400)
	if tail > 1e-9 {
		t.Fatalf("exact computation truncated too early (tail mass %g)", tail)
	}

	const total = 6000
	var sum float64
	n := 0
	for _, rg := range []struct{ first, trials int }{{0, 2000}, {2000, 2500}, {4500, 1500}} {
		eng := dispersion.Engine{Seed: 11, Workers: 1 + rg.first%4}
		err := eng.Run(context.Background(), dispersion.Job{
			Process:    "sequential",
			Graph:      g,
			Trials:     rg.trials,
			FirstTrial: rg.first,
		}, func(tr dispersion.Trial) error {
			sum += float64(tr.Result.Dispersion)
			n++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n != total {
		t.Fatalf("sharded runs delivered %d trials, want %d", n, total)
	}
	got := sum / float64(n)
	// The seed is fixed, so this is a deterministic check; the tolerance
	// is a few standard errors of the Monte-Carlo mean.
	if diff := math.Abs(got - mean); diff > 0.05*mean {
		t.Fatalf("sharded sample mean %.4f vs exact %.4f (diff %.4f)", got, mean, diff)
	}
}
