package dispersion

import "dispersion/internal/core"

// Option configures a single process run. Options compose left to right;
// later options override earlier ones.
type Option func(*config)

// config collects the resolved settings of one run.
type config struct {
	core core.Options
}

// buildOptions folds a list of options into the internal options struct.
func buildOptions(opts []Option) core.Options {
	var c config
	for _, apply := range opts {
		apply(&c)
	}
	return c.core
}

// WithLazy makes every particle move as a lazy random walk (stay with
// probability 1/2). Theorem 4.3: this doubles dispersion up to 1+o(1).
func WithLazy() Option {
	return func(c *config) { c.core.Lazy = true }
}

// WithRecord keeps each particle's full trajectory (the rows of the
// paper's block representation). Memory is O(total steps).
func WithRecord() Option {
	return func(c *config) { c.core.Record = true }
}

// WithParticles disperses k particles instead of one per vertex (the
// Section 6.2 variant with fewer particles than sites). k must be in
// [1, n]; the surplus above n could never settle.
func WithParticles(k int) Option {
	return func(c *config) { c.core.Particles = k }
}

// WithRandomOrigins samples each particle's start vertex uniformly at
// random instead of using the common origin (the Section 6.2 variant). A
// particle starting on an unoccupied vertex settles there with zero steps
// under the standard rule; the settle-rule processes apply their rule to
// that step-0 standing instead.
func WithRandomOrigins() Option {
	return func(c *config) { c.core.RandomOrigins = true }
}

// WithSettleRule overrides the settlement rule in the Sequential process
// (Proposition A.1). The default rule settles immediately on any vacant
// vertex.
func WithSettleRule(rule SettleRule) Option {
	return func(c *config) { c.core.Rule = rule }
}

// WithSettleParam sets the scalar parameter of the registered settle-rule
// processes (Proposition A.1): the per-visit settle probability q of
// "sequential-geom" (default 1/2) and the minimum step count T of
// "sequential-threshold" (default n, the graph size). Zero leaves the
// process default; the standard processes ignore it.
func WithSettleParam(p float64) Option {
	return func(c *config) { c.core.SettleParam = p }
}

// WithCapacity makes every vertex of the capacity processes ("capacity",
// "capacity-parallel") host up to c settled particles, the
// k-particles-per-vertex load-balancing generalization. Zero means the
// default capacity 2; the unit-capacity processes ignore it. By default a
// capacity run disperses c·n particles (filling every vertex to capacity);
// combine with WithParticles for partial loads.
func WithCapacity(c int) Option {
	return func(cfg *config) { cfg.core.Capacity = c }
}

// WithCapacities gives every vertex of the capacity processes its own
// capacity: vertex v hosts up to caps[v] settled particles. The vector
// must have one entry per vertex, each at least 1, and is mutually
// exclusive with WithCapacity. By default a run disperses Sum(caps)
// particles (filling every vertex to its capacity); combine with
// WithParticles for partial loads. Result.Capacity reports the vector's
// maximum. The slice is retained, not copied; callers must not mutate it
// while the run is in flight.
func WithCapacities(caps []int) Option {
	return func(cfg *config) { cfg.core.Capacities = caps }
}

// WithBatch routes the run through the batched execution mode: b trials
// advance together per worker through one structure-of-arrays lane,
// stepped by the graph kernel's fused batched loops. The lane replaces
// the walk's serial load dependency chain with b independent ones, so
// cache misses from different trials overlap — worth 2× and more
// trials/sec where walks are memory-bound (the weighted alias families,
// large adjacency tables), and worth nothing on small cache-resident
// graphs whose scalar loop is already compute-bound.
//
// Determinism contract: a batched trial draws from a counter-mode stream
// seeded by the same (seed, experiment, trial) lineage as the scalar
// path, so batched results are bit-identical for every batch width,
// worker count and trial sharding — but distribution-identical (not
// bit-identical) to the scalar path, whose xoshiro streams they replace.
// Only the Sequential-family processes ("sequential", "sequential-geom",
// "sequential-threshold", "capacity" and their lazy variants) have a
// batched form; WithRecord and WithSettleRule stay scalar-only. Zero
// selects the scalar path.
func WithBatch(b int) Option {
	return func(c *config) { c.core.Batch = b }
}

// WithMaxSteps aborts a run whose total step count exceeds n, marking the
// Result as Truncated; zero means no bound. Guards against misconfigured
// experiments.
func WithMaxSteps(n int64) Option {
	return func(c *config) { c.core.MaxSteps = n }
}

// WithRandomPriority resolves same-round settlement conflicts in the
// Parallel process by a uniformly random priority permutation instead of
// least-index (the σ(L) device in the proof of Theorem 4.2).
func WithRandomPriority() Option {
	return func(c *config) { c.core.RandomPriority = true }
}
