//go:build !race

package dispersion_test

// raceEnabled reports whether this test binary was built with the race
// detector; see race_on_test.go.
const raceEnabled = false
