package dispersion

import (
	"dispersion/internal/core"
)

// Result reports the outcome of a single dispersion-process run. It
// merges the internal discrete and continuous-time result types: the
// real-valued clock fields (Time, SettleTimes) are populated only when
// Continuous is true.
type Result struct {
	// Process is the canonical registry name of the process that produced
	// this result, e.g. "parallel" or "ct-uniform".
	Process string
	// Continuous reports whether the run was a continuous-time process,
	// i.e. whether Time and SettleTimes are meaningful.
	Continuous bool
	// Dispersion is the maximum number of random-walk steps performed by
	// any particle: the paper's τ. For the Parallel process this equals
	// the number of rounds until the last settlement.
	Dispersion int64
	// TotalSteps is the total number of jumps performed by all particles.
	// Theorem 4.1 proves this has the same distribution in the Sequential
	// and Parallel processes.
	TotalSteps int64
	// Steps[i] is the number of steps performed by particle i (in start
	// order for Sequential; fixed labels for Parallel/Uniform).
	Steps []int64
	// SettledAt[i] is the vertex where particle i settled (-1 if the run
	// was truncated before it settled).
	SettledAt []int32
	// SettleOrder lists particle indices in settlement order.
	SettleOrder []int32
	// SettleClock[k] is the process time at which the (k+1)-th settlement
	// happened: round number for Parallel, tick for Uniform, cumulative
	// step count for Sequential, settlement index for the continuous
	// processes (whose real clock is SettleTimes).
	SettleClock []int64
	// Trajectories[i] is particle i's visited vertex sequence including
	// the origin (so len = Steps[i]+1); nil unless WithRecord was given.
	Trajectories [][]int32
	// Truncated reports that WithMaxSteps fired; all counts are then
	// lower bounds.
	Truncated bool
	// Capacity is the per-vertex capacity the run executed under: the
	// resolved c of a capacity process ("capacity", "capacity-parallel"),
	// 1 for the unit-capacity processes.
	Capacity int
	// Time is the real time at which the last particle settled — the
	// paper's τ_c-seq / τ_c-unif. Zero for discrete processes.
	Time float64
	// SettleTimes[k] is the real time of the (k+1)-th settlement; nil for
	// discrete processes.
	SettleTimes []float64
}

// setCore points res at an internal result's buffers (slice headers are
// copied, backing arrays shared — internal runs hand over ownership for
// the one-shot API, or lend it until recycling under Engine.ReuseResults)
// and stamps the process identity. Discrete processes leave the
// continuous-time clock fields of ct untouched, so they are masked off
// here rather than trusted.
func (res *Result) setCore(ct *core.CTResult, process string, continuous bool) {
	res.Process = process
	res.Continuous = continuous
	res.Dispersion = ct.Dispersion
	res.TotalSteps = ct.TotalSteps
	res.Steps = ct.Steps
	res.SettledAt = ct.SettledAt
	res.SettleOrder = ct.SettleOrder
	res.SettleClock = ct.SettleClock
	res.Trajectories = ct.Trajectories
	res.Truncated = ct.Truncated
	res.Capacity = ct.Capacity
	if continuous {
		res.Time = ct.Time
		res.SettleTimes = ct.SettleTimes
	} else {
		res.Time = 0
		res.SettleTimes = nil
	}
}

// setCoreResult is setCore for the discrete-only batched path, which
// produces bare core.Results with no continuous-time clock.
func (res *Result) setCoreResult(r *core.Result, process string) {
	res.Process = process
	res.Continuous = false
	res.Dispersion = r.Dispersion
	res.TotalSteps = r.TotalSteps
	res.Steps = r.Steps
	res.SettledAt = r.SettledAt
	res.SettleOrder = r.SettleOrder
	res.SettleClock = r.SettleClock
	res.Trajectories = r.Trajectories
	res.Truncated = r.Truncated
	res.Capacity = r.Capacity
	res.Time = 0
	res.SettleTimes = nil
}

// core reconstructs the internal view of the result for delegation. The
// slices are shared.
func (res *Result) core() *core.Result {
	return &core.Result{
		Dispersion:   res.Dispersion,
		TotalSteps:   res.TotalSteps,
		Steps:        res.Steps,
		SettledAt:    res.SettledAt,
		SettleOrder:  res.SettleOrder,
		SettleClock:  res.SettleClock,
		Trajectories: res.Trajectories,
		Truncated:    res.Truncated,
		Capacity:     res.Capacity,
	}
}

// Makespan returns the run's dispersion time on its natural scale: the
// real-valued Time for continuous-time processes, and the step/round count
// Dispersion for discrete ones. It is the per-trial metric Engine.Sample
// collects.
func (res *Result) Makespan() float64 {
	if res.Continuous {
		return res.Time
	}
	return float64(res.Dispersion)
}

// Unsettled returns how many particles were left unsettled (only nonzero
// for truncated runs).
func (res *Result) Unsettled() int {
	n := 0
	for _, v := range res.SettledAt {
		if v < 0 {
			n++
		}
	}
	return n
}

// Check verifies the structural invariants every completed dispersion run
// must satisfy: each vertex hosts exactly one settled particle, the
// settlement clock is non-decreasing, the recorded dispersion equals the
// max step count, and recorded trajectories (if any) are genuine walks
// ending at the settlement vertex.
func (res *Result) Check(g Graph) error {
	return res.core().Check(g)
}

// AggregateAt reconstructs the occupied set after the first k settlements,
// in settlement order. Useful for shape inspection (examples/shape2d).
func (res *Result) AggregateAt(k int) []int32 {
	return res.core().AggregateAt(k)
}

// PhaseClock returns the process clock at which the number of unsettled
// particles first dropped below k (the paper's τ(G, k)-style phase time,
// Section 3.1.1) for a run on n vertices. It returns -1 if the run was
// truncated before reaching the phase.
func (res *Result) PhaseClock(n, k int) int64 {
	return res.core().PhaseClock(n, k)
}

// UnsettledAtClock returns how many particles were still unsettled
// strictly after the given clock value.
func (res *Result) UnsettledAtClock(clock int64) int {
	return res.core().UnsettledAtClock(clock)
}
