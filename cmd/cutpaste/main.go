// Command cutpaste demonstrates the paper's Cut & Paste machinery on a
// live recorded history: it prints the worked example from Section 4,
// then records a Sequential-IDLA run on a chosen graph, applies StP
// (Algorithm 1) and PtS (Algorithm 2), and reports the Lemma 4.6
// statistics that drive Theorem 4.1.
//
// Usage:
//
//	cutpaste                      # worked example + default K_12 demo
//	cutpaste -graph cycle:10 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dispersion"
	"dispersion/graphspec"
	"dispersion/internal/block"
)

func main() {
	var (
		graphSpec = flag.String("graph", "complete:12", "graph family spec")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Println("The worked example from Section 4 (vertices 0-indexed):")
	L := &block.Block{Rows: [][]int32{
		{0},
		{0, 1},
		{0, 1, 1, 2},
		{0, 1, 0, 1, 2, 3},
	}}
	printBlock("L", L)
	cp, err := L.CP(3, 1)
	if err != nil {
		fatal(err)
	}
	printBlock("CP_(3,1)(L)", cp)

	g, err := graphspec.Build(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	res, err := dispersion.Run("sequential", g, 0, *seed, dispersion.WithRecord())
	if err != nil {
		fatal(err)
	}
	b, err := block.FromTrajectories(res.Trajectories)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nRecorded Sequential-IDLA on %s (seed %d):\n", g.Name(), *seed)
	printBlock("sequential block", b)
	fmt.Printf("valid sequential (property 3): %v\n", b.IsSequential())

	before := b.LongestRow()
	orig := b.Clone()
	if err := b.StP(); err != nil {
		fatal(err)
	}
	fmt.Println()
	printBlock("StP(block)  — a parallel history", b)
	fmt.Printf("valid parallel (property 4): %v\n", b.IsParallel())
	fmt.Printf("longest row: %d -> %d (Lemma 4.6: never shrinks)\n", before, b.LongestRow())
	fmt.Printf("total length preserved: %v\n", b.TotalLength() == orig.TotalLength())

	if err := b.PtS(); err != nil {
		fatal(err)
	}
	fmt.Printf("PtS(StP(block)) == block: %v (Remark 4.5)\n", b.Equal(orig))
}

func printBlock(label string, b *block.Block) {
	fmt.Printf("%s (rows = particles, cells = visited vertices):\n", label)
	for i, row := range b.Rows {
		fmt.Printf("  %2d |", i)
		for _, v := range row {
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cutpaste:", err)
	os.Exit(2)
}
