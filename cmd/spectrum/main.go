// Command spectrum prints the Markov-chain analytics of a graph family:
// the quantities every bound in the paper is phrased in (hitting time,
// mixing time, spectral gap) together with the Theorem 3.1 dispersion
// ceiling and the Theorem 3.6/3.7 floors.
//
// Usage:
//
//	spectrum -graph hypercube:7
//	spectrum -graph lollipop:32 -mixcap 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"dispersion/graphspec"
	"dispersion/internal/bounds"
	"dispersion/internal/graph"
	"dispersion/internal/markov"
)

func main() {
	var (
		graphSpec = flag.String("graph", "hypercube:7", "graph family spec")
		seed      = flag.Uint64("seed", 1, "seed for random families")
		mixCap    = flag.Int("mixcap", 1<<20, "mixing-time iteration cap")
	)
	flag.Parse()

	built, err := graphspec.Build(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	// Every analytic below is adjacency-hungry (dense solves, spectra,
	// BFS sweeps), so implicit backends are materialized up front; the
	// tool is for the moderate sizes where that is affordable anyway.
	g, err := graph.Materialize(built)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph            %s\n", g.Name())
	fmt.Printf("n, m             %d, %d\n", g.N(), g.M())
	fmt.Printf("degrees          min %d, max %d, regular %v\n",
		g.MinDegree(), g.MaxDegree(), g.IsRegular())
	fmt.Printf("diameter         %d\n", g.Diameter())
	fmt.Printf("bipartite        %v\n", g.IsBipartite())

	if g.N() <= 1024 {
		h, err := markov.NewHitting(g)
		if err != nil {
			fatal(err)
		}
		thit, u, v := h.Max()
		fmt.Printf("t_hit (exact)    %.1f  (argmax pair %d -> %d)\n", thit, u, v)
		fmt.Printf("Thm 3.1 ceiling  6·t_hit·log2 n = %.0f\n", bounds.Theorem31(thit, g.N()))
	} else {
		fmt.Printf("t_hit            skipped (n > 1024; dense solve)\n")
	}

	tmix := markov.MixingTime(g, *mixCap)
	fmt.Printf("t_mix (TV, lazy) %d  (eps = 1/4)\n", tmix)

	if g.N() <= 768 {
		sp, err := markov.WalkSpectrum(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("λ2 (simple walk) %.6f   λ_min %.6f\n", sp.Lambda2(), sp.LambdaMin())
		fmt.Printf("lazy gap         %.6f   relaxation (lazy) %.1f\n",
			sp.LazyGap(), 1/sp.LazyGap())
		fmt.Printf("Prop 3.9 floor   t_seq = Ω(λ̃2/(1-λ̃2)) = Ω(%.1f)\n",
			bounds.MixingLower((1+sp.Lambda2())/2))
	} else {
		sp := markov.SpectralGap(g, 50000, 1e-11)
		fmt.Printf("λ̃2 (power iter) %.6f   lazy gap %.6f\n", sp.Lambda2Lazy, sp.Gap)
	}

	fmt.Printf("Thm 3.6 floor    2|E|/Δ = %.1f\n", bounds.EdgeDegreeLower(g.M(), g.MaxDegree()))
	if g.M() == g.N()-1 {
		fmt.Printf("Thm 3.7 floor    2n-3 = %.0f (tree)\n", bounds.TreeLower(g.N()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spectrum:", err)
	os.Exit(2)
}
