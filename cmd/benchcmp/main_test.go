package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReportFile(t *testing.T, name, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsOneSidedBenchmarks(t *testing.T) {
	oldRep, err := load(writeReportFile(t, "old.json", `{"benchmarks": [
		{"name": "Shared", "metrics": {"ns/op": 200}},
		{"name": "Gone", "metrics": {"ns/op": 50}}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	newRep, err := load(writeReportFile(t, "new.json", `{"benchmarks": [
		{"name": "Shared", "metrics": {"ns/op": 100}},
		{"name": "Fresh", "metrics": {"ns/op": 75}}
	]}`))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	compare(&buf, oldRep, newRep)
	out := buf.String()

	for _, want := range []string{
		"added",   // Fresh appears only in new
		"removed", // Gone appears only in old
		"2.00x",   // Shared halved its ns/op
		"1 benchmark(s) only in NEW, 1 only in OLD",
		"benchlab -gate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rows come out in sorted name order: Fresh, Gone, Shared.
	if f, g := strings.Index(out, "Fresh"), strings.Index(out, "Gone"); f > g {
		t.Errorf("rows not sorted by name:\n%s", out)
	}
}

func TestCompareIdenticalReportsOmitSummary(t *testing.T) {
	rep, err := load(writeReportFile(t, "same.json", `{"benchmarks": [
		{"name": "Only", "metrics": {"ns/op": 10}}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	compare(&buf, rep, rep)
	out := buf.String()
	if strings.Contains(out, "only in") {
		t.Errorf("summary line printed with no one-sided benchmarks:\n%s", out)
	}
	if !strings.Contains(out, "1.00x") {
		t.Errorf("missing 1.00x speedup for identical reports:\n%s", out)
	}
}

func TestLoadRejectsMalformedReport(t *testing.T) {
	if _, err := load(writeReportFile(t, "bad.json", `{"benchmarks": [`)); err == nil {
		t.Fatal("malformed report accepted")
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
