// Command benchcmp compares two one-shot benchmark sweep reports (the
// legacy {"benchmarks": [...]} JSON the retired benchjson tool emitted)
// and prints a per-benchmark table of old vs new ns/op with the speedup
// factor, so CI logs show the repository's perf trajectory against the
// committed BENCH_baseline.json on every run.
//
// Usage:
//
//	benchcmp OLD.json NEW.json
//
// Benchmarks present in only one report are listed as added/removed rows
// and tallied in a trailing summary line, so one-sided entries cannot
// hide inside a long table. The comparison is informational —
// single-iteration CI sweeps are noisy and the two reports may come from
// different machines — so the exit status is 0 whenever both inputs
// parse.
//
// Deprecated: for pass/fail decisions use `benchlab -gate OLD NEW`
// (cmd/benchlab), which reruns each configuration many times and only
// fails on statistically significant, material regressions. benchcmp
// stays for eyeballing legacy one-shot sweeps.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// report mirrors the legacy one-shot sweep document.
type report struct {
	// Benchmarks holds one parsed entry per benchmark result line.
	Benchmarks []entry `json:"benchmarks"`
}

// entry is one benchmark's parsed result.
type entry struct {
	// Name is the benchmark name without the Benchmark prefix.
	Name string `json:"name"`
	// Metrics maps reported units (ns/op, allocs/op, ...) to values.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newRep, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	compare(os.Stdout, oldRep, newRep)
}

// load parses one legacy sweep report, indexing entries by name.
func load(path string) (map[string]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]entry, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		out[e.Name] = e
	}
	return out, nil
}

// compare prints the old-vs-new table plus added/removed benchmarks,
// ending with a summary of one-sided entries and a pointer at the
// statistically sound replacement.
func compare(w io.Writer, oldRep, newRep map[string]entry) {
	names := make([]string, 0, len(oldRep)+len(newRep))
	seen := map[string]bool{}
	for name := range oldRep {
		names = append(names, name)
		seen[name] = true
	}
	for name := range newRep {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-36s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "speedup")
	added, removed := 0, 0
	for _, name := range names {
		o, inOld := oldRep[name]
		n, inNew := newRep[name]
		switch {
		case !inOld:
			added++
			fmt.Fprintf(w, "%-36s %14s %14.0f %8s\n", name, "-", n.Metrics["ns/op"], "added")
		case !inNew:
			removed++
			fmt.Fprintf(w, "%-36s %14.0f %14s %8s\n", name, o.Metrics["ns/op"], "-", "removed")
		default:
			ons, nns := o.Metrics["ns/op"], n.Metrics["ns/op"]
			speedup := "n/a"
			if ons > 0 && nns > 0 {
				speedup = fmt.Sprintf("%.2fx", ons/nns)
			}
			fmt.Fprintf(w, "%-36s %14.0f %14.0f %8s\n", name, ons, nns, speedup)
		}
	}
	if added > 0 || removed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) only in NEW, %d only in OLD\n", added, removed)
	}
	fmt.Fprintln(w, "note: benchcmp is informational; for statistical regression gating use: benchlab -gate OLD NEW")
}
